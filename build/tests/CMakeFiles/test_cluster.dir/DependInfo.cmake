
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/cluster_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/cluster_test.cpp.o.d"
  "/root/repo/tests/cluster/coherency_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/coherency_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/coherency_test.cpp.o.d"
  "/root/repo/tests/cluster/config_bridge_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/config_bridge_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/config_bridge_test.cpp.o.d"
  "/root/repo/tests/cluster/gather_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/gather_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/gather_test.cpp.o.d"
  "/root/repo/tests/cluster/merge_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/merge_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/merge_test.cpp.o.d"
  "/root/repo/tests/cluster/rename_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/rename_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/rename_test.cpp.o.d"
  "/root/repo/tests/cluster/selector_test.cpp" "tests/CMakeFiles/test_cluster.dir/cluster/selector_test.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/cluster/selector_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/mantle_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/balancers/CMakeFiles/mantle_balancers.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mantle_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mantle_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mds/CMakeFiles/mantle_mds.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/mantle_store.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mantle_sim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mantle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
