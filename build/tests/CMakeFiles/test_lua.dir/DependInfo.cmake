
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lua/interp_test.cpp" "tests/CMakeFiles/test_lua.dir/lua/interp_test.cpp.o" "gcc" "tests/CMakeFiles/test_lua.dir/lua/interp_test.cpp.o.d"
  "/root/repo/tests/lua/lexer_test.cpp" "tests/CMakeFiles/test_lua.dir/lua/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/test_lua.dir/lua/lexer_test.cpp.o.d"
  "/root/repo/tests/lua/parser_test.cpp" "tests/CMakeFiles/test_lua.dir/lua/parser_test.cpp.o" "gcc" "tests/CMakeFiles/test_lua.dir/lua/parser_test.cpp.o.d"
  "/root/repo/tests/lua/robustness_test.cpp" "tests/CMakeFiles/test_lua.dir/lua/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/test_lua.dir/lua/robustness_test.cpp.o.d"
  "/root/repo/tests/lua/stdlib_test.cpp" "tests/CMakeFiles/test_lua.dir/lua/stdlib_test.cpp.o" "gcc" "tests/CMakeFiles/test_lua.dir/lua/stdlib_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lua/CMakeFiles/mantle_lua.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mantle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
