file(REMOVE_RECURSE
  "CMakeFiles/test_lua.dir/lua/interp_test.cpp.o"
  "CMakeFiles/test_lua.dir/lua/interp_test.cpp.o.d"
  "CMakeFiles/test_lua.dir/lua/lexer_test.cpp.o"
  "CMakeFiles/test_lua.dir/lua/lexer_test.cpp.o.d"
  "CMakeFiles/test_lua.dir/lua/parser_test.cpp.o"
  "CMakeFiles/test_lua.dir/lua/parser_test.cpp.o.d"
  "CMakeFiles/test_lua.dir/lua/robustness_test.cpp.o"
  "CMakeFiles/test_lua.dir/lua/robustness_test.cpp.o.d"
  "CMakeFiles/test_lua.dir/lua/stdlib_test.cpp.o"
  "CMakeFiles/test_lua.dir/lua/stdlib_test.cpp.o.d"
  "test_lua"
  "test_lua.pdb"
  "test_lua[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lua.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
