# Empty compiler generated dependencies file for test_lua.
# This may be replaced when dependencies are built.
