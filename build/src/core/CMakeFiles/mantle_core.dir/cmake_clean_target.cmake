file(REMOVE_RECURSE
  "libmantle_core.a"
)
