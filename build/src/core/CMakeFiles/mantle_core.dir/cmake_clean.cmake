file(REMOVE_RECURSE
  "CMakeFiles/mantle_core.dir/mantle.cpp.o"
  "CMakeFiles/mantle_core.dir/mantle.cpp.o.d"
  "libmantle_core.a"
  "libmantle_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mantle_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
