file(REMOVE_RECURSE
  "libmantle_common.a"
)
