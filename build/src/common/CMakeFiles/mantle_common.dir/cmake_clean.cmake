file(REMOVE_RECURSE
  "CMakeFiles/mantle_common.dir/config.cpp.o"
  "CMakeFiles/mantle_common.dir/config.cpp.o.d"
  "CMakeFiles/mantle_common.dir/rng.cpp.o"
  "CMakeFiles/mantle_common.dir/rng.cpp.o.d"
  "CMakeFiles/mantle_common.dir/time.cpp.o"
  "CMakeFiles/mantle_common.dir/time.cpp.o.d"
  "CMakeFiles/mantle_common.dir/timeline.cpp.o"
  "CMakeFiles/mantle_common.dir/timeline.cpp.o.d"
  "libmantle_common.a"
  "libmantle_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mantle_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
