# Empty dependencies file for mantle_common.
# This may be replaced when dependencies are built.
