# Empty dependencies file for mantle_store.
# This may be replaced when dependencies are built.
