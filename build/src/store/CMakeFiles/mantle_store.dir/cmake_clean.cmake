file(REMOVE_RECURSE
  "CMakeFiles/mantle_store.dir/object_store.cpp.o"
  "CMakeFiles/mantle_store.dir/object_store.cpp.o.d"
  "libmantle_store.a"
  "libmantle_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mantle_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
