file(REMOVE_RECURSE
  "libmantle_store.a"
)
