file(REMOVE_RECURSE
  "CMakeFiles/mantle_balancers.dir/builtin.cpp.o"
  "CMakeFiles/mantle_balancers.dir/builtin.cpp.o.d"
  "CMakeFiles/mantle_balancers.dir/feedback.cpp.o"
  "CMakeFiles/mantle_balancers.dir/feedback.cpp.o.d"
  "libmantle_balancers.a"
  "libmantle_balancers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mantle_balancers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
