# Empty dependencies file for mantle_balancers.
# This may be replaced when dependencies are built.
