file(REMOVE_RECURSE
  "libmantle_balancers.a"
)
