# Empty compiler generated dependencies file for mantle_workloads.
# This may be replaced when dependencies are built.
