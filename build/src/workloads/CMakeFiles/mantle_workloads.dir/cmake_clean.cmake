file(REMOVE_RECURSE
  "CMakeFiles/mantle_workloads.dir/compile.cpp.o"
  "CMakeFiles/mantle_workloads.dir/compile.cpp.o.d"
  "CMakeFiles/mantle_workloads.dir/create_heavy.cpp.o"
  "CMakeFiles/mantle_workloads.dir/create_heavy.cpp.o.d"
  "CMakeFiles/mantle_workloads.dir/maildir.cpp.o"
  "CMakeFiles/mantle_workloads.dir/maildir.cpp.o.d"
  "CMakeFiles/mantle_workloads.dir/trace.cpp.o"
  "CMakeFiles/mantle_workloads.dir/trace.cpp.o.d"
  "libmantle_workloads.a"
  "libmantle_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mantle_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
