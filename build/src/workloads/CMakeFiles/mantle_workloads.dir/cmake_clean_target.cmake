file(REMOVE_RECURSE
  "libmantle_workloads.a"
)
