# Empty compiler generated dependencies file for mantle_lua.
# This may be replaced when dependencies are built.
