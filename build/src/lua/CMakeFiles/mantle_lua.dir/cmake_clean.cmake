file(REMOVE_RECURSE
  "CMakeFiles/mantle_lua.dir/interp.cpp.o"
  "CMakeFiles/mantle_lua.dir/interp.cpp.o.d"
  "CMakeFiles/mantle_lua.dir/lexer.cpp.o"
  "CMakeFiles/mantle_lua.dir/lexer.cpp.o.d"
  "CMakeFiles/mantle_lua.dir/parser.cpp.o"
  "CMakeFiles/mantle_lua.dir/parser.cpp.o.d"
  "CMakeFiles/mantle_lua.dir/stdlib.cpp.o"
  "CMakeFiles/mantle_lua.dir/stdlib.cpp.o.d"
  "CMakeFiles/mantle_lua.dir/value.cpp.o"
  "CMakeFiles/mantle_lua.dir/value.cpp.o.d"
  "libmantle_lua.a"
  "libmantle_lua.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mantle_lua.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
