file(REMOVE_RECURSE
  "libmantle_lua.a"
)
