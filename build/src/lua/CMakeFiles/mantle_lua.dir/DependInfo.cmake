
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lua/interp.cpp" "src/lua/CMakeFiles/mantle_lua.dir/interp.cpp.o" "gcc" "src/lua/CMakeFiles/mantle_lua.dir/interp.cpp.o.d"
  "/root/repo/src/lua/lexer.cpp" "src/lua/CMakeFiles/mantle_lua.dir/lexer.cpp.o" "gcc" "src/lua/CMakeFiles/mantle_lua.dir/lexer.cpp.o.d"
  "/root/repo/src/lua/parser.cpp" "src/lua/CMakeFiles/mantle_lua.dir/parser.cpp.o" "gcc" "src/lua/CMakeFiles/mantle_lua.dir/parser.cpp.o.d"
  "/root/repo/src/lua/stdlib.cpp" "src/lua/CMakeFiles/mantle_lua.dir/stdlib.cpp.o" "gcc" "src/lua/CMakeFiles/mantle_lua.dir/stdlib.cpp.o.d"
  "/root/repo/src/lua/value.cpp" "src/lua/CMakeFiles/mantle_lua.dir/value.cpp.o" "gcc" "src/lua/CMakeFiles/mantle_lua.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mantle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
