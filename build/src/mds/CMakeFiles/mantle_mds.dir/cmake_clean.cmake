file(REMOVE_RECURSE
  "CMakeFiles/mantle_mds.dir/namespace.cpp.o"
  "CMakeFiles/mantle_mds.dir/namespace.cpp.o.d"
  "libmantle_mds.a"
  "libmantle_mds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mantle_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
