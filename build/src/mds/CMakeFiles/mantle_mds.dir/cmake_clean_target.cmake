file(REMOVE_RECURSE
  "libmantle_mds.a"
)
