# Empty compiler generated dependencies file for mantle_mds.
# This may be replaced when dependencies are built.
