file(REMOVE_RECURSE
  "CMakeFiles/mantle_cluster.dir/balancer.cpp.o"
  "CMakeFiles/mantle_cluster.dir/balancer.cpp.o.d"
  "CMakeFiles/mantle_cluster.dir/cluster.cpp.o"
  "CMakeFiles/mantle_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/mantle_cluster.dir/config_bridge.cpp.o"
  "CMakeFiles/mantle_cluster.dir/config_bridge.cpp.o.d"
  "libmantle_cluster.a"
  "libmantle_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mantle_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
