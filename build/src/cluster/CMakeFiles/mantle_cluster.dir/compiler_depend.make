# Empty compiler generated dependencies file for mantle_cluster.
# This may be replaced when dependencies are built.
