file(REMOVE_RECURSE
  "libmantle_cluster.a"
)
