
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/balancer.cpp" "src/cluster/CMakeFiles/mantle_cluster.dir/balancer.cpp.o" "gcc" "src/cluster/CMakeFiles/mantle_cluster.dir/balancer.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/cluster/CMakeFiles/mantle_cluster.dir/cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/mantle_cluster.dir/cluster.cpp.o.d"
  "/root/repo/src/cluster/config_bridge.cpp" "src/cluster/CMakeFiles/mantle_cluster.dir/config_bridge.cpp.o" "gcc" "src/cluster/CMakeFiles/mantle_cluster.dir/config_bridge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mds/CMakeFiles/mantle_mds.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/mantle_store.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mantle_sim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mantle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
