file(REMOVE_RECURSE
  "CMakeFiles/mantle_sim_core.dir/engine.cpp.o"
  "CMakeFiles/mantle_sim_core.dir/engine.cpp.o.d"
  "libmantle_sim_core.a"
  "libmantle_sim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mantle_sim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
