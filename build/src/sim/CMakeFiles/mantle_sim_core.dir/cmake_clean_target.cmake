file(REMOVE_RECURSE
  "libmantle_sim_core.a"
)
