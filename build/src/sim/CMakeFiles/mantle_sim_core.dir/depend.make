# Empty dependencies file for mantle_sim_core.
# This may be replaced when dependencies are built.
