file(REMOVE_RECURSE
  "libmantle_sim.a"
)
