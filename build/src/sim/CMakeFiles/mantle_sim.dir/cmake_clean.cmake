file(REMOVE_RECURSE
  "CMakeFiles/mantle_sim.dir/client.cpp.o"
  "CMakeFiles/mantle_sim.dir/client.cpp.o.d"
  "CMakeFiles/mantle_sim.dir/scenario.cpp.o"
  "CMakeFiles/mantle_sim.dir/scenario.cpp.o.d"
  "libmantle_sim.a"
  "libmantle_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mantle_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
