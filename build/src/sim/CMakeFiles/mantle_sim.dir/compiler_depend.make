# Empty compiler generated dependencies file for mantle_sim.
# This may be replaced when dependencies are built.
