file(REMOVE_RECURSE
  "CMakeFiles/fig10_adaptable.dir/fig10_adaptable.cpp.o"
  "CMakeFiles/fig10_adaptable.dir/fig10_adaptable.cpp.o.d"
  "fig10_adaptable"
  "fig10_adaptable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_adaptable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
