# Empty dependencies file for fig10_adaptable.
# This may be replaced when dependencies are built.
