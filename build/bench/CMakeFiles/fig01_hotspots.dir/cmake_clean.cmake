file(REMOVE_RECURSE
  "CMakeFiles/fig01_hotspots.dir/fig01_hotspots.cpp.o"
  "CMakeFiles/fig01_hotspots.dir/fig01_hotspots.cpp.o.d"
  "fig01_hotspots"
  "fig01_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
