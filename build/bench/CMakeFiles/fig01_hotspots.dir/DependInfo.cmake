
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig01_hotspots.cpp" "bench/CMakeFiles/fig01_hotspots.dir/fig01_hotspots.cpp.o" "gcc" "bench/CMakeFiles/fig01_hotspots.dir/fig01_hotspots.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mantle_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mantle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/balancers/CMakeFiles/mantle_balancers.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mantle_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/lua/CMakeFiles/mantle_lua.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mantle_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mantle_sim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mds/CMakeFiles/mantle_mds.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/mantle_store.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mantle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
