# Empty compiler generated dependencies file for fig01_hotspots.
# This may be replaced when dependencies are built.
