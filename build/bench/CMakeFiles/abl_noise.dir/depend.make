# Empty dependencies file for abl_noise.
# This may be replaced when dependencies are built.
