file(REMOVE_RECURSE
  "CMakeFiles/fig09_compile_speedup.dir/fig09_compile_speedup.cpp.o"
  "CMakeFiles/fig09_compile_speedup.dir/fig09_compile_speedup.cpp.o.d"
  "fig09_compile_speedup"
  "fig09_compile_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_compile_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
