# Empty compiler generated dependencies file for fig09_compile_speedup.
# This may be replaced when dependencies are built.
