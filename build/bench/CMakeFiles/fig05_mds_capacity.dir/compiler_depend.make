# Empty compiler generated dependencies file for fig05_mds_capacity.
# This may be replaced when dependencies are built.
