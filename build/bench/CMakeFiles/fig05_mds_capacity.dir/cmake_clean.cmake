file(REMOVE_RECURSE
  "CMakeFiles/fig05_mds_capacity.dir/fig05_mds_capacity.cpp.o"
  "CMakeFiles/fig05_mds_capacity.dir/fig05_mds_capacity.cpp.o.d"
  "fig05_mds_capacity"
  "fig05_mds_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_mds_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
