# Empty dependencies file for tab01_policies.
# This may be replaced when dependencies are built.
