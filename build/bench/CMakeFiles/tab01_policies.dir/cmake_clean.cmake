file(REMOVE_RECURSE
  "CMakeFiles/tab01_policies.dir/tab01_policies.cpp.o"
  "CMakeFiles/tab01_policies.dir/tab01_policies.cpp.o.d"
  "tab01_policies"
  "tab01_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
