# Empty compiler generated dependencies file for abl_need_min.
# This may be replaced when dependencies are built.
