file(REMOVE_RECURSE
  "CMakeFiles/abl_need_min.dir/abl_need_min.cpp.o"
  "CMakeFiles/abl_need_min.dir/abl_need_min.cpp.o.d"
  "abl_need_min"
  "abl_need_min.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_need_min.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
