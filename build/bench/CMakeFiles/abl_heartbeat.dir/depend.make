# Empty dependencies file for abl_heartbeat.
# This may be replaced when dependencies are built.
