file(REMOVE_RECURSE
  "CMakeFiles/abl_heartbeat.dir/abl_heartbeat.cpp.o"
  "CMakeFiles/abl_heartbeat.dir/abl_heartbeat.cpp.o.d"
  "abl_heartbeat"
  "abl_heartbeat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_heartbeat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
