file(REMOVE_RECURSE
  "CMakeFiles/fig07_spill_timeline.dir/fig07_spill_timeline.cpp.o"
  "CMakeFiles/fig07_spill_timeline.dir/fig07_spill_timeline.cpp.o.d"
  "fig07_spill_timeline"
  "fig07_spill_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_spill_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
