# Empty compiler generated dependencies file for fig07_spill_timeline.
# This may be replaced when dependencies are built.
