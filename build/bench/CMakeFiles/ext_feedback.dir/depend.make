# Empty dependencies file for ext_feedback.
# This may be replaced when dependencies are built.
