# Empty compiler generated dependencies file for abl_selectors.
# This may be replaced when dependencies are built.
