file(REMOVE_RECURSE
  "CMakeFiles/abl_selectors.dir/abl_selectors.cpp.o"
  "CMakeFiles/abl_selectors.dir/abl_selectors.cpp.o.d"
  "abl_selectors"
  "abl_selectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_selectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
