# Empty compiler generated dependencies file for fig03_locality.
# This may be replaced when dependencies are built.
