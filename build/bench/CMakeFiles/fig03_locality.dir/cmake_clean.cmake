file(REMOVE_RECURSE
  "CMakeFiles/fig03_locality.dir/fig03_locality.cpp.o"
  "CMakeFiles/fig03_locality.dir/fig03_locality.cpp.o.d"
  "fig03_locality"
  "fig03_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
