# Empty dependencies file for fig04_reproducibility.
# This may be replaced when dependencies are built.
