file(REMOVE_RECURSE
  "CMakeFiles/fig04_reproducibility.dir/fig04_reproducibility.cpp.o"
  "CMakeFiles/fig04_reproducibility.dir/fig04_reproducibility.cpp.o.d"
  "fig04_reproducibility"
  "fig04_reproducibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_reproducibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
