# Empty dependencies file for compile_cluster.
# This may be replaced when dependencies are built.
