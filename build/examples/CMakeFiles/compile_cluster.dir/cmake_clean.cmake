file(REMOVE_RECURSE
  "CMakeFiles/compile_cluster.dir/compile_cluster.cpp.o"
  "CMakeFiles/compile_cluster.dir/compile_cluster.cpp.o.d"
  "compile_cluster"
  "compile_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
