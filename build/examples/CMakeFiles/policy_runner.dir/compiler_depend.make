# Empty compiler generated dependencies file for policy_runner.
# This may be replaced when dependencies are built.
