file(REMOVE_RECURSE
  "CMakeFiles/policy_runner.dir/policy_runner.cpp.o"
  "CMakeFiles/policy_runner.dir/policy_runner.cpp.o.d"
  "policy_runner"
  "policy_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
