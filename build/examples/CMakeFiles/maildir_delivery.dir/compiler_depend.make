# Empty compiler generated dependencies file for maildir_delivery.
# This may be replaced when dependencies are built.
