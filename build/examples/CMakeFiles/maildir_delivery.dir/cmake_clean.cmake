file(REMOVE_RECURSE
  "CMakeFiles/maildir_delivery.dir/maildir_delivery.cpp.o"
  "CMakeFiles/maildir_delivery.dir/maildir_delivery.cpp.o.d"
  "maildir_delivery"
  "maildir_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maildir_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
