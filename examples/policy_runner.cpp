/// policy_runner: a small CLI for experimenting with balancer policies —
/// the "study different strategies on the same storage system" loop from
/// the paper, as a tool. Loads the five Mantle hooks from files (or uses
/// a named built-in), validates them, runs a chosen workload on a chosen
/// cluster size, and prints the outcome.
///
/// Usage:
///   policy_runner [--mds N] [--clients N] [--files N] [--workload create|shared|compile]
///                 [--policy greedy|greedy_even|fill_spill|adaptable|original]
///                 [--metaload FILE] [--mdsload FILE] [--when FILE]
///                 [--where FILE] [--howmuch FILE] [--seed N] [--validate-only]
///
/// Example: run your own `when` policy against the shared-dir create storm:
///   echo 'if MDSs[whoami+1] and MDSs[whoami]["load"]>.01 and
///         MDSs[whoami+1]["load"]<.01 then targets[whoami+1]=allmetaload/2 end' > my.when
///   ./policy_runner --mds 2 --workload shared --when my.when

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "cluster/config_bridge.hpp"
#include "core/mantle.hpp"
#include "sim/scenario.hpp"
#include "workloads/compile.hpp"
#include "workloads/create_heavy.hpp"
#include "workloads/maildir.hpp"

using namespace mantle;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  int num_mds = 2;
  int clients = 4;
  std::size_t files = 10000;
  std::uint64_t seed = 1;
  std::string workload = "shared";
  bool validate_only = false;
  core::MantlePolicy policy = core::scripts::greedy_spill();
  mantle::Config overrides;  // --set key=value tunables (config_bridge)

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--mds") num_mds = std::atoi(next());
    else if (arg == "--clients") clients = std::atoi(next());
    else if (arg == "--files") files = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--seed") seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--workload") workload = next();
    else if (arg == "--validate-only") validate_only = true;
    else if (arg == "--policy") {
      const std::string name = next();
      if (name == "greedy") policy = core::scripts::greedy_spill();
      else if (name == "greedy_even") policy = core::scripts::greedy_spill_even();
      else if (name == "fill_spill") policy = core::scripts::fill_and_spill();
      else if (name == "adaptable") policy = core::scripts::adaptable();
      else if (name == "original") policy = core::scripts::original();
      else {
        std::fprintf(stderr, "unknown policy %s\n", name.c_str());
        return 1;
      }
    } else if (arg == "--set") {
      if (overrides.inject_args(next()) == 0) {
        std::fprintf(stderr, "--set expects key=value\n");
        return 1;
      }
    } else if (arg == "--metaload") policy.metaload = slurp(next());
    else if (arg == "--mdsload") policy.mdsload = slurp(next());
    else if (arg == "--when") policy.when = slurp(next());
    else if (arg == "--where") policy.where = slurp(next());
    else if (arg == "--howmuch") policy.howmuch = slurp(next());
    else {
      std::fprintf(stderr, "unknown flag %s (see header comment)\n", arg.c_str());
      return 1;
    }
  }

  const std::string err = core::validate_policy(policy);
  if (!err.empty()) {
    std::fprintf(stderr, "policy rejected: %s\n", err.c_str());
    return 1;
  }
  std::printf("policy validated OK\n");
  if (validate_only) return 0;

  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = num_mds;
  cfg.cluster.seed = seed;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.split_size = 2500;
  for (const std::string& k : cluster::unknown_config_keys(overrides))
    std::fprintf(stderr, "warning: unknown --set key '%s'\n", k.c_str());
  cfg.cluster = cluster::apply_config(cfg.cluster, overrides);
  sim::Scenario s(cfg);
  s.cluster().set_balancer_all(
      [&](int) { return std::make_unique<core::MantleBalancer>(policy); });

  for (int c = 0; c < clients; ++c) {
    if (workload == "shared") {
      s.add_client(workloads::make_shared_create_workload(c, "/shared", files, 100));
    } else if (workload == "create") {
      s.add_client(workloads::make_private_create_workload(c, files, 100));
    } else if (workload == "compile") {
      workloads::CompileOptions opt;
      opt.root = "/client" + std::to_string(c);
      s.add_client(std::make_unique<workloads::CompileWorkload>(opt));
    } else if (workload == "maildir") {
      s.add_client(workloads::make_maildir_workload(c, files, 150));
    } else {
      std::fprintf(stderr, "unknown workload %s\n", workload.c_str());
      return 1;
    }
  }

  s.run();

  std::printf("runtime           %.2f s\n", to_seconds(s.makespan()));
  std::printf("throughput        %.0f ops/s\n", s.aggregate_throughput());
  const auto lat = s.pooled_latencies_ms();
  std::printf("latency           %.3f ms mean, %.3f ms p99\n", lat.mean(),
              lat.percentile(0.99));
  std::printf("migrations        %zu\n", s.cluster().migrations().size());
  std::printf("forwards          %llu\n",
              static_cast<unsigned long long>(s.cluster().total_forwards()));
  std::printf("sessions flushed  %llu\n",
              static_cast<unsigned long long>(s.cluster().total_sessions_flushed()));
  for (int m = 0; m < s.cluster().num_mds(); ++m)
    std::printf("mds%-2d served     %llu\n", m,
                static_cast<unsigned long long>(s.cluster().node(m).stats().completed));
  auto* mb = dynamic_cast<core::MantleBalancer*>(s.cluster().node(0).balancer());
  if (mb != nullptr && mb->hook_errors() > 0)
    std::printf("hook errors       %llu (last: %s)\n",
                static_cast<unsigned long long>(mb->hook_errors()),
                mb->last_error().c_str());
  return 0;
}
