/// Record/replay: capture a workload as a portable text trace, then
/// replay the identical op stream against two different balancers and
/// compare — the controlled-experiment loop the paper's §4.4 calls for
/// ("quantify the effect that policies have on performance by running a
/// suite of workloads over different balancers").
///
/// Build & run:   ./build/examples/trace_replay

#include <cstdio>
#include <memory>

#include "balancers/builtin.hpp"
#include "core/mantle.hpp"
#include "sim/scenario.hpp"
#include "workloads/create_heavy.hpp"
#include "workloads/trace.hpp"

using namespace mantle;

namespace {

double replay(const std::vector<std::vector<sim::WorkOp>>& traces,
              const char* label, cluster::MdsCluster::BalancerFactory factory) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 2;
  cfg.cluster.seed = 99;  // identical seed: the only variable is the policy
  cfg.cluster.split_size = 2000;
  cfg.cluster.bal_interval = kSec;
  sim::Scenario s(cfg);
  if (factory) s.cluster().set_balancer_all(factory);
  for (const auto& t : traces)
    s.add_client(std::make_unique<workloads::TraceWorkload>(t, 100));
  s.run();
  std::printf("%-24s %.2f s, %llu forwards, %zu migrations\n", label,
              to_seconds(s.makespan()),
              static_cast<unsigned long long>(s.cluster().total_forwards()),
              s.cluster().migrations().size());
  return to_seconds(s.makespan());
}

}  // namespace

int main() {
  // 1. Record: drain a generator workload into a trace.
  std::vector<std::vector<sim::WorkOp>> traces;
  for (int c = 0; c < 4; ++c) {
    Rng rng(1000 + static_cast<std::uint64_t>(c));
    auto wl = workloads::make_shared_create_workload(c, "/shared", 8000);
    traces.push_back(workloads::record_workload(*wl, rng));
  }

  // 2. Serialize + parse round trip (this is what you would write to a
  //    file and check into your experiment repo).
  const std::string text = workloads::format_trace(traces[0]);
  std::printf("trace[0]: %zu ops, %zu bytes serialized; first lines:\n",
              traces[0].size(), text.size());
  std::printf("%.*s...\n\n", 120, text.c_str());
  traces[0] = workloads::parse_trace(text);

  // 3. Replay the identical traces under three policies.
  const double base = replay(traces, "no balancer", nullptr);
  const double greedy = replay(traces, "greedy spill (Lua)", [](int) {
    return std::make_unique<core::MantleBalancer>(core::scripts::greedy_spill());
  });
  const double fs = replay(traces, "fill & spill (Lua)", [](int) {
    return std::make_unique<core::MantleBalancer>(core::scripts::fill_and_spill());
  });

  std::printf("\nspeedup vs no balancer: greedy %+.1f%%, fill&spill %+.1f%%\n",
              (base / greedy - 1.0) * 100.0, (base / fs - 1.0) * 100.0);
  return 0;
}
