/// Domain scenario: a mail-spool cluster. Delivery agents create each
/// message in tmp/ and rename it into new/ (maildir semantics). Renames
/// are exactly the operation CephFS's client-session machinery is most
/// sensitive to, so this shows the rename path, shared-spool
/// fragmentation, and a balancer keeping delivery latency flat.
///
/// Build & run:   ./build/examples/maildir_delivery

#include <cstdio>
#include <memory>

#include "core/mantle.hpp"
#include "sim/scenario.hpp"
#include "workloads/maildir.hpp"

using namespace mantle;

int main() {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 2;
  cfg.cluster.seed = 77;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.split_size = 3000;
  sim::Scenario scenario(cfg);

  scenario.cluster().set_balancer_all([](int) {
    return std::make_unique<core::MantleBalancer>(core::scripts::fill_and_spill());
  });

  const int agents = 4;
  for (int c = 0; c < agents; ++c)
    scenario.add_client(workloads::make_maildir_workload(c, 8000, 150));

  scenario.run();

  std::printf("delivered %d x 8000 messages in %.1f s (%.0f metadata ops/s)\n",
              agents, to_seconds(scenario.makespan()),
              scenario.aggregate_throughput());
  const auto lat = scenario.pooled_latencies_ms();
  std::printf("op latency: mean %.3f ms, p99 %.3f ms\n", lat.mean(),
              lat.percentile(0.99));

  auto& ns = scenario.cluster().ns();
  for (int c = 0; c < agents; ++c) {
    const auto tmp = ns.resolve("/mail" + std::to_string(c) + "/tmp");
    const auto fresh = ns.resolve("/mail" + std::to_string(c) + "/new");
    std::printf("agent %d: tmp/=%zu entries, new/=%zu entries\n", c,
                tmp.found ? ns.dir(tmp.ino)->num_entries() : 0,
                fresh.found ? ns.dir(fresh.ino)->num_entries() : 0);
  }
  std::printf("migrations %zu, sessions flushed %llu, forwards %llu\n",
              scenario.cluster().migrations().size(),
              static_cast<unsigned long long>(
                  scenario.cluster().total_sessions_flushed()),
              static_cast<unsigned long long>(scenario.cluster().total_forwards()));
  return 0;
}
