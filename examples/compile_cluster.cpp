/// Domain scenario: a build farm. Five users compile source trees on a
/// 3-MDS cluster balanced by the Adaptable policy (Listing 4). Shows the
/// per-phase hotspot structure, the balancer reacting to it, and the
/// per-directory heat you would feed into a Figure-1-style dashboard.
///
/// Build & run:   ./build/examples/compile_cluster

#include <cstdio>
#include <memory>

#include "core/mantle.hpp"
#include "sim/scenario.hpp"
#include "workloads/compile.hpp"

using namespace mantle;

int main() {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 3;
  cfg.cluster.seed = 2026;
  cfg.cluster.bal_interval = kSec;
  sim::Scenario scenario(cfg);

  scenario.cluster().set_balancer_all([](int) {
    return std::make_unique<core::MantleBalancer>(core::scripts::adaptable());
  });

  for (int c = 0; c < 5; ++c) {
    workloads::CompileOptions opt;
    opt.root = "/user" + std::to_string(c);
    opt.files_per_dir = 25;
    opt.compile_ops = 5000;
    opt.read_ops = 1000;
    opt.link_rounds = 6;
    scenario.add_client(std::make_unique<workloads::CompileWorkload>(opt));
  }

  // Sample per-MDS ownership and the hottest directories once a second.
  scenario.add_probe(kSec, [&](Time now) {
    auto& cluster = scenario.cluster();
    const auto entries = cluster.auth_entry_counts();
    std::printf("t=%4.0fs  dentries per MDS:", to_seconds(now));
    for (const std::size_t e : entries) std::printf(" %6zu", e);
    // Hottest top-level user tree right now.
    double best = 0.0;
    std::string who = "-";
    for (int c = 0; c < 5; ++c) {
      const auto res = cluster.ns().resolve("/user" + std::to_string(c));
      if (!res.found) continue;
      const double h = cluster.ns().nested_pop(res.ino, mds::MetaOp::IRD, now) +
                       cluster.ns().nested_pop(res.ino, mds::MetaOp::IWR, now);
      if (h > best) {
        best = h;
        who = "/user" + std::to_string(c);
      }
    }
    std::printf("   hottest=%s (%.0f)\n", who.c_str(), best);
  });

  scenario.run();

  std::printf("\ncompile farm finished in %.1f s\n",
              to_seconds(scenario.makespan()));
  for (const auto& client : scenario.clients())
    std::printf("  user%d: %.1f s, %llu ops, %llu forwards seen\n",
                client->id(), to_seconds(client->runtime()),
                static_cast<unsigned long long>(client->ops_completed()),
                static_cast<unsigned long long>(client->forwards_seen()));
  std::printf("migrations: %zu, sessions flushed: %llu\n",
              scenario.cluster().migrations().size(),
              static_cast<unsigned long long>(
                  scenario.cluster().total_sessions_flushed()));
  return 0;
}
