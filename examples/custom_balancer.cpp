/// Authoring a custom balancer: the point of Mantle is that new policies
/// are a few lines of Lua, not a kernel of C++. This example builds a
/// *memory-aware* spill policy that no stock balancer implements: it
/// keeps metadata local until the MDS cache is under pressure, then
/// ships load to the peer with the most free memory. It also shows the
/// validator rejecting broken policies, and `injectargs`-style hook
/// replacement at runtime.
///
/// Build & run:   ./build/examples/custom_balancer

#include <cstdio>
#include <memory>

#include "core/mantle.hpp"
#include "sim/scenario.hpp"
#include "workloads/create_heavy.hpp"

using namespace mantle;

int main() {
  // --- The validator stops bad policies before they reach an MDS --------
  {
    core::MantlePolicy broken;
    broken.when = "while 1 do end";  // the paper's motivating hazard
    std::printf("injecting `while 1 do end`... validator says: %s\n\n",
                core::validate_policy(broken).c_str());

    core::MantlePolicy typo;
    typo.metaload = "IWR +";  // syntax error
    std::printf("injecting `IWR +`... validator says: %s\n\n",
                core::validate_policy(typo).c_str());
  }

  // --- A memory-aware balancer ------------------------------------------
  core::MantlePolicy policy;
  policy.metaload = "IWR + IRD";
  policy.mdsload = "MDSs[i]['all']";
  // Spill when my cache is above 60% occupancy; pick the peer with the
  // most free memory; ship enough to even out the *memory*, not the load.
  policy.when = R"lua(
    go = 0
    if MDSs[whoami]["mem"] > 60 then
      best = 0; bestfree = 0
      for i = 1, #MDSs do
        if i ~= whoami and (100 - MDSs[i]["mem"]) > bestfree then
          best = i; bestfree = 100 - MDSs[i]["mem"]
        end
      end
      if best ~= 0 then
        go = 1
        targets[best] = MDSs[whoami]["load"] / 2
      end
    end
  )lua";
  policy.howmuch = "{\"big_first\",\"big_small\"}";

  const std::string err = core::validate_policy(policy);
  if (!err.empty()) {
    std::fprintf(stderr, "unexpected rejection: %s\n", err.c_str());
    return 1;
  }
  std::printf("memory-aware policy validated OK\n");

  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 3;
  cfg.cluster.seed = 7;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.split_size = 2000;
  // Shrink the modelled cache so the policy has something to react to.
  cfg.cluster.mem_capacity_entries = 30000;
  sim::Scenario scenario(cfg);
  scenario.cluster().set_balancer_all(
      [&](int) { return std::make_unique<core::MantleBalancer>(policy); });

  for (int c = 0; c < 4; ++c)
    scenario.add_client(workloads::make_private_create_workload(c, 15000, 120));
  scenario.run();

  std::printf("ran %.1f s; %zu migrations triggered by memory pressure\n",
              to_seconds(scenario.makespan()),
              scenario.cluster().migrations().size());
  const auto entries = scenario.cluster().auth_entry_counts();
  for (std::size_t m = 0; m < entries.size(); ++m)
    std::printf("mds%zu holds %zu dentries\n", m, entries[m]);

  // --- Live re-injection (`ceph tell mds.N injectargs ...`) --------------
  auto* balancer = dynamic_cast<core::MantleBalancer*>(
      scenario.cluster().node(0).balancer());
  std::printf("\nreplacing the when-hook at runtime: %s\n",
              balancer->inject("mds_bal_when", "return false").empty()
                  ? "accepted"
                  : "rejected");
  std::printf("replacing it with garbage: %s\n",
              balancer->inject("mds_bal_when", "if if if").empty()
                  ? "accepted (bug!)"
                  : "rejected, old policy kept");
  return 0;
}
