/// Quickstart: stand up a simulated CephFS metadata cluster, inject a
/// Mantle balancing policy written in Lua, drive it with clients, and
/// read the results.
///
/// Build & run:   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/mantle.hpp"
#include "sim/scenario.hpp"
#include "workloads/create_heavy.hpp"

using namespace mantle;

int main() {
  // 1. Configure a 2-MDS cluster. All times are simulated microseconds.
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 2;
  cfg.cluster.seed = 42;
  cfg.cluster.split_size = 2000;     // fragment directories past 2k entries
  cfg.cluster.bal_interval = kSec;   // balance every simulated second
  sim::Scenario scenario(cfg);

  // 2. Write a balancing policy. This is Listing 1 from the paper
  //    (Greedy Spill): when I have load and my neighbour has none, send
  //    half of it over, shipping half my dirfrags.
  core::MantlePolicy policy;
  policy.metaload = "IWR";                  // dirfrag load = inode writes
  policy.mdsload = "MDSs[i]['all']";        // MDS load = all metadata load
  policy.when = R"(
    if MDSs[whoami+1] ~= nil and MDSs[whoami]["load"] > .01 and
       MDSs[whoami+1]["load"] < .01 then
      targets[whoami+1] = allmetaload/2
    end
  )";
  policy.howmuch = "{\"half\"}";

  // 3. Validate before injecting — a bad policy (syntax error, infinite
  //    loop, runtime fault) is rejected here instead of wedging an MDS.
  const std::string err = core::validate_policy(policy);
  if (!err.empty()) {
    std::fprintf(stderr, "policy rejected: %s\n", err.c_str());
    return 1;
  }
  scenario.cluster().set_balancer_all([&](int) {
    return std::make_unique<core::MantleBalancer>(policy);
  });

  // 4. Attach closed-loop clients: four creators hammering one shared
  //    directory (the GIGA+-style stress case).
  for (int c = 0; c < 4; ++c)
    scenario.add_client(
        workloads::make_shared_create_workload(c, "/shared", 10000, 100));

  // 5. Run to completion and inspect.
  scenario.run();

  std::printf("finished in %.2f simulated seconds\n",
              to_seconds(scenario.makespan()));
  std::printf("aggregate throughput: %.0f metadata ops/s\n",
              scenario.aggregate_throughput());
  const auto lat = scenario.pooled_latencies_ms();
  std::printf("latency: mean %.3f ms, p99 %.3f ms\n", lat.mean(),
              lat.percentile(0.99));

  auto& cluster = scenario.cluster();
  for (int m = 0; m < cluster.num_mds(); ++m)
    std::printf("mds%d served %llu requests (%llu forwards out)\n", m,
                static_cast<unsigned long long>(cluster.node(m).stats().completed),
                static_cast<unsigned long long>(cluster.node(m).stats().forwards_out));

  std::printf("migrations:\n");
  for (const auto& mig : cluster.migrations())
    std::printf("  t=%.1fs  mds%d -> mds%d  %zu entries\n",
                to_seconds(mig.started), mig.from, mig.to, mig.entries);
  return 0;
}
