#include "common/config.hpp"

#include <gtest/gtest.h>

namespace mantle {
namespace {

TEST(Config, GetWithDefault) {
  Config c;
  EXPECT_EQ(c.get("missing", "fallback"), "fallback");
  c.set("k", "v");
  EXPECT_EQ(c.get("k", "fallback"), "v");
  EXPECT_TRUE(c.contains("k"));
  EXPECT_FALSE(c.contains("missing"));
}

TEST(Config, TypedAccessors) {
  Config c;
  c.set_double("d", 2.5);
  c.set_int("i", -7);
  c.set_bool("b", true);
  EXPECT_DOUBLE_EQ(c.get_double("d", 0.0), 2.5);
  EXPECT_EQ(c.get_int("i", 0), -7);
  EXPECT_TRUE(c.get_bool("b", false));
}

TEST(Config, UnparsableFallsBackToDefault) {
  Config c;
  c.set("d", "not-a-number");
  EXPECT_DOUBLE_EQ(c.get_double("d", 1.25), 1.25);
  EXPECT_EQ(c.get_int("d", 9), 9);
  EXPECT_TRUE(c.get_bool("d", true));
}

TEST(Config, BoolSpellings) {
  Config c;
  for (const char* t : {"true", "1", "yes", "on"}) {
    c.set("k", t);
    EXPECT_TRUE(c.get_bool("k", false)) << t;
  }
  for (const char* f : {"false", "0", "no", "off"}) {
    c.set("k", f);
    EXPECT_FALSE(c.get_bool("k", true)) << f;
  }
}

TEST(Config, InjectArgsParsesPairs) {
  Config c;
  // Mirrors `ceph tell mds.0 injectargs ...` from the paper's Section 3.1.
  EXPECT_EQ(c.inject_args("mds_bal_metaload=IWR mds_bal_interval=10"), 2);
  EXPECT_EQ(c.get("mds_bal_metaload"), "IWR");
  EXPECT_EQ(c.get_int("mds_bal_interval", 0), 10);
}

TEST(Config, InjectArgsSkipsMalformedTokens) {
  Config c;
  EXPECT_EQ(c.inject_args("novalue =leadingeq good=1"), 1);
  EXPECT_EQ(c.get_int("good", 0), 1);
  EXPECT_FALSE(c.contains("novalue"));
}

TEST(Config, FindDistinguishesUnsetFromEmpty) {
  Config c;
  EXPECT_FALSE(c.find("k").has_value());
  c.set("k", "");
  ASSERT_TRUE(c.find("k").has_value());
  EXPECT_EQ(*c.find("k"), "");
}

}  // namespace
}  // namespace mantle
