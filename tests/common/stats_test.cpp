#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace mantle {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(OnlineStats, KnownMeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_NEAR(s.variance(), 18.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), 1.2909944487, 1e-9);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(s.percentile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 1e-9);
}

TEST(SampleSet, PercentileOfEmptyIsZero) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
}

TEST(SampleSet, PercentileUnsortedInput) {
  SampleSet s;
  for (double x : {9.0, 1.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 5.0);
}

}  // namespace
}  // namespace mantle
