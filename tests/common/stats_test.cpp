#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace mantle {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(OnlineStats, KnownMeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_NEAR(s.variance(), 18.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), 1.2909944487, 1e-9);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(s.percentile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 1e-9);
}

TEST(SampleSet, PercentileOfEmptyIsZero) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
}

TEST(SampleSet, PercentileUnsortedInput) {
  SampleSet s;
  for (double x : {9.0, 1.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 5.0);
}

TEST(ReservoirSample, ExactBelowCapacity) {
  ReservoirSample r(100);
  for (int i = 1; i <= 50; ++i) r.add(static_cast<double>(i));
  EXPECT_EQ(r.count(), 50u);
  EXPECT_EQ(r.retained(), 50u);
  SampleSet exact;
  for (int i = 1; i <= 50; ++i) exact.add(static_cast<double>(i));
  for (double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(r.percentile(p), exact.percentile(p)) << "p=" << p;
}

TEST(ReservoirSample, MomentsAreExactRegardlessOfEviction) {
  ReservoirSample r(16);  // tiny reservoir, heavy eviction
  OnlineStats exact;
  Rng rng(99);
  for (int i = 0; i < 100'000; ++i) {
    const double x = rng.exponential(5.0);
    r.add(x);
    exact.add(x);
  }
  EXPECT_EQ(r.count(), 100'000u);
  EXPECT_EQ(r.retained(), 16u);
  EXPECT_DOUBLE_EQ(r.mean(), exact.mean());
  EXPECT_DOUBLE_EQ(r.stddev(), exact.stddev());
  EXPECT_DOUBLE_EQ(r.min(), exact.min());
  EXPECT_DOUBLE_EQ(r.max(), exact.max());
}

// The claim behind bounding Client latency memory: at the default
// capacity, quantiles estimated from the reservoir drift by less than 1%
// against the exact (keep-everything) answer on a seeded 200k-sample
// stream. Drift is measured in rank space — the estimated p-quantile must
// really be the (p ± 0.01)-quantile of the full stream — because that is
// the guarantee a reservoir can make: value-space error additionally
// divides by the local density, which for a heavy latency tail inflates
// an 0.5%-rank wobble into several percent of milliseconds. The stream is
// a lognormal-ish latency shape (2% of samples in a 10x tail), the
// hardest case for a uniform reservoir. Deterministic: fixed Rng seed,
// fixed eviction seed.
TEST(ReservoirSample, QuantileDriftUnderOnePercentAtDefaultCapacity) {
  ReservoirSample r;  // kDefaultCapacity = 4096
  SampleSet exact;
  Rng rng(0x5ca1e);
  for (int i = 0; i < 200'000; ++i) {
    const double base = rng.exponential(8.0);
    const double tail = rng.next_double() < 0.02 ? rng.exponential(80.0) : 0.0;
    const double x = 0.5 + base + tail;
    r.add(x);
    exact.add(x);
  }
  EXPECT_EQ(r.retained(), ReservoirSample::kDefaultCapacity);

  std::vector<double> sorted = exact.samples();
  std::sort(sorted.begin(), sorted.end());
  const auto rank_of = [&](double x) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    return static_cast<double>(it - sorted.begin()) /
           static_cast<double>(sorted.size());
  };
  for (double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    const double got = r.percentile(p);
    const double drift = std::abs(rank_of(got) - p);
    EXPECT_LT(drift, 0.01) << "p=" << p << " reservoir=" << got
                           << " sits at exact rank " << rank_of(got);
  }
}

TEST(ReservoirSample, SameSeedIsDeterministic) {
  const auto run = [] {
    ReservoirSample r(64, 1234);
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) r.add(rng.next_double());
    return r.samples();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mantle
