#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mantle {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto x = r.uniform(10, 20);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform(5, 5), 5u);
}

TEST(Rng, UniformCoversRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, GaussianMoments) {
  Rng r(99);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.gaussian(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r(5);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(0.5);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(123);
  Rng child = parent.fork();
  // Child stream differs from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next_u64() == child.next_u64());
  EXPECT_LT(same, 3);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mantle
