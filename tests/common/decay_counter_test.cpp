#include "common/decay_counter.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mantle {
namespace {

TEST(DecayRate, HalfLifeRoundTrips) {
  const DecayRate rate(5.0);
  EXPECT_NEAR(rate.half_life(), 5.0, 1e-12);
}

TEST(DecayRate, FactorAtHalfLifeIsHalf) {
  const DecayRate rate(5.0);
  EXPECT_NEAR(rate.decay_factor(5.0), 0.5, 1e-12);
  EXPECT_NEAR(rate.decay_factor(10.0), 0.25, 1e-12);
  EXPECT_NEAR(rate.decay_factor(0.0), 1.0, 1e-12);
}

TEST(DecayCounter, StartsAtZero) {
  const DecayRate rate(5.0);
  DecayCounter c;
  EXPECT_DOUBLE_EQ(c.get(0, rate), 0.0);
  EXPECT_DOUBLE_EQ(c.get(100 * kSec, rate), 0.0);
}

TEST(DecayCounter, HitAccumulatesWithoutTimeAdvance) {
  const DecayRate rate(5.0);
  DecayCounter c;
  c.hit(kSec, rate);
  c.hit(kSec, rate);
  c.hit(kSec, rate, 3.0);
  EXPECT_DOUBLE_EQ(c.get(kSec, rate), 5.0);
}

TEST(DecayCounter, ValueHalvesAfterHalfLife) {
  const DecayRate rate(5.0);
  DecayCounter c;
  c.hit(0, rate, 8.0);
  EXPECT_NEAR(c.get(5 * kSec, rate), 4.0, 1e-9);
  EXPECT_NEAR(c.get(10 * kSec, rate), 2.0, 1e-9);
  EXPECT_NEAR(c.get(15 * kSec, rate), 1.0, 1e-9);
}

TEST(DecayCounter, NeverDecaysBackwards) {
  const DecayRate rate(5.0);
  DecayCounter c;
  c.hit(10 * kSec, rate, 4.0);
  // Querying at an earlier time must not change the value.
  EXPECT_DOUBLE_EQ(c.get(5 * kSec, rate), 4.0);
  EXPECT_NEAR(c.get(15 * kSec, rate), 2.0, 1e-9);
}

TEST(DecayCounter, TinyValuesSnapToZero) {
  const DecayRate rate(1.0);
  DecayCounter c;
  c.hit(0, rate, 1.0);
  // After 60 half-lives the value underflows the 1e-9 floor.
  EXPECT_DOUBLE_EQ(c.get(60 * kSec, rate), 0.0);
}

TEST(DecayCounter, ScaleSplitsHeatProportionally) {
  const DecayRate rate(5.0);
  DecayCounter c;
  c.hit(kSec, rate, 10.0);
  c.scale(kSec, rate, 0.25);
  EXPECT_DOUBLE_EQ(c.get(kSec, rate), 2.5);
}

// Regression: scale() must apply pending decay *before* multiplying. The
// old scale(f) multiplied the stale raw value, so a counter that had not
// been observed recently handed out a share of heat that should already
// have decayed away; the raw value after the call exposes the difference
// (decay commutes with the multiply, so get() alone cannot tell them
// apart until the next decay window).
TEST(DecayCounter, ScaleDecaysToScaleTimeFirst) {
  const DecayRate rate(5.0);
  DecayCounter c;
  c.hit(0, rate, 8.0);
  // One half-life later the observable value is 4.0; scaling by 0.5 must
  // land on 2.0 — not 8.0 * 0.5 = 4.0 stored with a stale timestamp.
  c.scale(5 * kSec, rate, 0.5);
  EXPECT_NEAR(c.raw(), 2.0, 1e-9);
  EXPECT_NEAR(c.get(5 * kSec, rate), 2.0, 1e-9);
  EXPECT_NEAR(c.get(10 * kSec, rate), 1.0, 1e-9);
}

TEST(DecayCounter, MergeAddsValues) {
  const DecayRate rate(5.0);
  DecayCounter a;
  DecayCounter b;
  a.hit(kSec, rate, 2.0);
  b.hit(kSec, rate, 3.0);
  a.get(kSec, rate);
  b.get(kSec, rate);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get(kSec, rate), 5.0);
}

TEST(DecayCounter, InterleavedHitsDecayIndependently) {
  const DecayRate rate(5.0);
  DecayCounter c;
  c.hit(0, rate, 4.0);
  c.hit(5 * kSec, rate, 4.0);  // old 4 decayed to 2, plus new 4 = 6
  EXPECT_NEAR(c.get(5 * kSec, rate), 6.0, 1e-9);
  EXPECT_NEAR(c.get(10 * kSec, rate), 3.0, 1e-9);
}

TEST(DecayCounter, ResetClears) {
  const DecayRate rate(5.0);
  DecayCounter c;
  c.hit(0, rate, 100.0);
  c.reset(2 * kSec);
  EXPECT_DOUBLE_EQ(c.get(2 * kSec, rate), 0.0);
  c.hit(2 * kSec, rate);
  EXPECT_DOUBLE_EQ(c.get(2 * kSec, rate), 1.0);
}

// Property-style sweep: for any half-life and elapsed time, the decayed
// value equals v * 2^(-dt/hl).
class DecayProperty : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DecayProperty, MatchesClosedForm) {
  const auto [half_life, dt] = GetParam();
  const DecayRate rate(half_life);
  DecayCounter c;
  c.hit(0, rate, 7.0);
  const Time t = from_seconds(dt);
  const double expect = 7.0 * std::pow(0.5, to_seconds(t) / half_life);
  EXPECT_NEAR(c.get(t, rate), expect < 1e-9 ? 0.0 : expect, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecayProperty,
    ::testing::Combine(::testing::Values(0.5, 1.0, 5.0, 30.0),
                       ::testing::Values(0.0, 0.1, 1.0, 2.5, 7.0, 20.0)));

}  // namespace
}  // namespace mantle
