#include "common/timeline.hpp"

#include <gtest/gtest.h>

namespace mantle {
namespace {

TEST(Timeline, RecordsIntoBuckets) {
  Timeline tl(kSec);
  tl.record(0);
  tl.record(500 * kMsec);
  tl.record(kSec);
  EXPECT_EQ(tl.size(), 2u);
  EXPECT_DOUBLE_EQ(tl.value(0), 2.0);
  EXPECT_DOUBLE_EQ(tl.value(1), 1.0);
  EXPECT_DOUBLE_EQ(tl.value(99), 0.0);
}

TEST(Timeline, RateNormalizesByWidth) {
  Timeline tl(2 * kSec);
  for (int i = 0; i < 10; ++i) tl.record(kSec, 1.0);
  EXPECT_DOUBLE_EQ(tl.rate(0), 5.0);  // 10 events over 2 seconds
}

TEST(Timeline, WeightsAccumulate) {
  Timeline tl(kSec);
  tl.record(0, 2.5);
  tl.record(100, 1.5);
  EXPECT_DOUBLE_EQ(tl.value(0), 4.0);
  EXPECT_DOUBLE_EQ(tl.total(), 4.0);
}

TEST(Timeline, ResampleAveragesRates) {
  Timeline tl(kSec);
  // 4 seconds of data at 10, 20, 30, 40 events/sec.
  for (int s = 0; s < 4; ++s)
    for (int i = 0; i < (s + 1) * 10; ++i) tl.record(static_cast<Time>(s) * kSec);
  const auto coarse = tl.resample_rates(2);
  ASSERT_EQ(coarse.size(), 2u);
  EXPECT_DOUBLE_EQ(coarse[0], 15.0);
  EXPECT_DOUBLE_EQ(coarse[1], 35.0);
}

TEST(Timeline, ResampleEmpty) {
  Timeline tl(kSec);
  const auto coarse = tl.resample_rates(3);
  ASSERT_EQ(coarse.size(), 3u);
  EXPECT_DOUBLE_EQ(coarse[0], 0.0);
}

TEST(Timeline, FormatTime) {
  EXPECT_EQ(format_time(0), "0:00.000");
  EXPECT_EQ(format_time(90 * kSec + 250 * kMsec), "1:30.250");
}

TEST(Timeline, RenderSeriesTableHasHeaderAndRows) {
  Timeline a(kSec);
  Timeline b(kSec);
  a.record(0, 10);
  b.record(kSec, 20);
  const auto txt = render_series_table({{"mds0", &a}, {"mds1", &b}}, kSec);
  EXPECT_NE(txt.find("mds0"), std::string::npos);
  EXPECT_NE(txt.find("mds1"), std::string::npos);
  EXPECT_NE(txt.find("0:00.000"), std::string::npos);
  EXPECT_NE(txt.find("0:01.000"), std::string::npos);
}

}  // namespace
}  // namespace mantle
