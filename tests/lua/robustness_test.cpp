#include <cmath>
#include <gtest/gtest.h>

#include "lua/interp.hpp"

/// Edge cases and abuse-resistance for luam: policies come from
/// administrators, so the interpreter must fail cleanly, never crash,
/// and keep error messages actionable.

namespace mantle::lua {
namespace {

Value run1(Interp& in, const std::string& src) {
  RunResult r = in.run(src);
  EXPECT_TRUE(r.ok) << r.error;
  return r.first();
}

TEST(Robustness, DeeplyNestedTables) {
  Interp in;
  const char* src = R"(
    local t = {}
    local cur = t
    for i = 1, 50 do cur.next = {} cur = cur.next end
    cur.value = 42
    cur = t
    for i = 1, 50 do cur = cur.next end
    return cur.value
  )";
  EXPECT_DOUBLE_EQ(run1(in, src).number(), 42.0);
}

TEST(Robustness, ClosuresShareLoopVariableScope) {
  Interp in;
  // Each numeric-for iteration gets a fresh scope, so closures capture
  // distinct variables (Lua semantics).
  const char* src = R"(
    local fns = {}
    for i = 1, 3 do fns[i] = function() return i end end
    return fns[1]() * 100 + fns[2]() * 10 + fns[3]()
  )";
  EXPECT_DOUBLE_EQ(run1(in, src).number(), 123.0);
}

TEST(Robustness, LongConcatChain) {
  Interp in;
  const char* src = R"(
    local s = ''
    for i = 1, 200 do s = s .. 'x' end
    return #s
  )";
  EXPECT_DOUBLE_EQ(run1(in, src).number(), 200.0);
}

TEST(Robustness, FractionalForStep) {
  Interp in;
  EXPECT_DOUBLE_EQ(
      run1(in, "local n=0 for i=0,1,0.25 do n=n+1 end return n").number(), 5.0);
}

TEST(Robustness, NegativeZeroAndInfinities) {
  Interp in;
  EXPECT_TRUE(run1(in, "return 0 == -0").boolean());
  EXPECT_TRUE(run1(in, "return 1/0 > 1e308").boolean());
  EXPECT_FALSE(run1(in, "return (0/0) == (0/0)").boolean());  // NaN
}

TEST(Robustness, NaNTableKeyRejected) {
  Interp in;
  RunResult r = in.run("local t = {} t[0/0] = 1");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("NaN"), std::string::npos);
}

TEST(Robustness, ErrorLineNumbersSurviveMultilineScripts) {
  Interp in;
  RunResult r = in.run("x = 1\ny = 2\nz = missing_fn()\n", "balancer");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("balancer:3"), std::string::npos) << r.error;
}

TEST(Robustness, GlobalsIsolatedBetweenInterpreters) {
  Interp a;
  Interp b;
  a.run("leak = 42");
  EXPECT_TRUE(b.run("return leak").first().is_nil());
}

TEST(Robustness, HugeStringRepWithinBudget) {
  Interp in;
  in.set_budget(1000000);
  RunResult r = in.run("return #string.rep('ab', 10000)");
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.first().number(), 20000.0);
}

TEST(Robustness, RecursiveTablePrintDoesNotHang) {
  Interp in;
  // Self-referencing tables must not recurse in tostring.
  RunResult r = in.run("local t = {} t.self = t return tostring(t)");
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.first().str().find("table"), std::string::npos);
}

TEST(Robustness, ManySmallRunsDoNotLeakState) {
  Interp in;
  in.set_budget(100000);
  for (int i = 0; i < 500; ++i) {
    RunResult r = in.run("local x = " + std::to_string(i) + " return x");
    ASSERT_TRUE(r.ok);
    EXPECT_DOUBLE_EQ(r.first().number(), static_cast<double>(i));
  }
}

TEST(Robustness, BudgetExhaustionInsideFunctionCall) {
  Interp in;
  in.set_budget(5000);
  RunResult r = in.run(
      "function spin() while true do end end\n"
      "spin()");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("budget"), std::string::npos);
}

TEST(Robustness, BreakOutsideLoopIsHarmlessNoCrash) {
  // Lua 5.1 rejects this at parse time; we accept either a parse error
  // or a clean no-op, but never a crash.
  Interp in;
  RunResult r = in.run("break");
  (void)r;
  SUCCEED();
}

TEST(Robustness, MixedNumericStringKeysStayDistinct) {
  Interp in;
  const char* src = R"(
    local t = {}
    t[1] = 'num'
    t['1'] = 'str'
    return t[1] .. '/' .. t['1']
  )";
  EXPECT_EQ(run1(in, src).str(), "num/str");
}

TEST(Robustness, WhileConditionBudgetCharged) {
  // Budget must be charged on the condition itself, not only the body:
  // `while expensive() do end` with an empty body still terminates.
  Interp in;
  in.set_budget(10000);
  RunResult r = in.run("local i = 0 while i < 1e9 do i = i + 1 end");
  EXPECT_FALSE(r.ok);
}

class ArithmeticIdentity : public ::testing::TestWithParam<double> {};

TEST_P(ArithmeticIdentity, ModuloMatchesLuaDefinition) {
  // a % b == a - floor(a/b)*b for all sign combinations.
  Interp in;
  const double a = GetParam();
  for (const double b : {3.0, -3.0, 2.5, -2.5}) {
    char src[128];
    std::snprintf(src, sizeof(src), "return %.17g %% %.17g", a, b);
    RunResult r = in.run(src);
    ASSERT_TRUE(r.ok) << r.error;
    const double expect = a - std::floor(a / b) * b;
    EXPECT_NEAR(r.first().number(), expect, 1e-12) << a << " % " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ArithmeticIdentity,
                         ::testing::Values(7.0, -7.0, 0.5, -0.5, 0.0, 100.25));

}  // namespace
}  // namespace mantle::lua
