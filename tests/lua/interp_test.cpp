#include "lua/interp.hpp"

#include <gtest/gtest.h>

namespace mantle::lua {
namespace {

/// Run a chunk and return the first value of its top-level `return`.
Value run1(Interp& in, const std::string& src) {
  RunResult r = in.run(src);
  EXPECT_TRUE(r.ok) << r.error;
  return r.first();
}

double num(Interp& in, const std::string& src) {
  const Value v = run1(in, src);
  EXPECT_TRUE(v.is_number()) << "got " << v.type_name();
  return v.is_number() ? v.number() : 0.0;
}

TEST(Interp, Arithmetic) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "return 1+2*3"), 7.0);
  EXPECT_DOUBLE_EQ(num(in, "return (1+2)*3"), 9.0);
  EXPECT_DOUBLE_EQ(num(in, "return 10/4"), 2.5);
  EXPECT_DOUBLE_EQ(num(in, "return 7%3"), 1.0);
  EXPECT_DOUBLE_EQ(num(in, "return -7%3"), 2.0);  // Lua sign-of-divisor rule
  EXPECT_DOUBLE_EQ(num(in, "return 2^10"), 1024.0);
  EXPECT_DOUBLE_EQ(num(in, "return -2^2"), -4.0);     // ^ binds tighter than unary -
  EXPECT_DOUBLE_EQ(num(in, "return 2^3^2"), 512.0);   // right-associative
  EXPECT_DOUBLE_EQ(num(in, "return 1 - 2 - 3"), -4.0);  // left-associative
}

TEST(Interp, NumericStringCoercion) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "return '2' + 3"), 5.0);
  EXPECT_DOUBLE_EQ(num(in, "return '2.5' * '2'"), 5.0);
  RunResult r = in.run("return 'abc' + 1");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("arithmetic"), std::string::npos);
}

TEST(Interp, Comparisons) {
  Interp in;
  EXPECT_TRUE(run1(in, "return 1 < 2").boolean());
  EXPECT_FALSE(run1(in, "return 2 <= 1").boolean());
  EXPECT_TRUE(run1(in, "return 'a' < 'b'").boolean());
  EXPECT_TRUE(run1(in, "return 1 ~= 2").boolean());
  EXPECT_TRUE(run1(in, "return nil == nil").boolean());
  // Different types are never equal (and == does not coerce).
  EXPECT_FALSE(run1(in, "return 1 == '1'").boolean());
  // Ordering mixed types is an error.
  EXPECT_FALSE(in.run("return 1 < 'x'").ok);
}

TEST(Interp, LogicalOperatorsReturnOperands) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "return false or 5"), 5.0);
  EXPECT_DOUBLE_EQ(num(in, "return nil and 1 or 7"), 7.0);
  EXPECT_TRUE(run1(in, "return 1 and true").boolean());
  EXPECT_TRUE(run1(in, "return not nil").boolean());
  EXPECT_FALSE(run1(in, "return not 0").boolean());  // 0 is truthy in Lua
}

TEST(Interp, ShortCircuitSkipsEvaluation) {
  Interp in;
  // If `and` didn't short-circuit this would index nil and fail.
  EXPECT_FALSE(run1(in, "return false and missing_table[1]").truthy());
  EXPECT_TRUE(run1(in, "return true or missing_table[1]").truthy());
}

TEST(Interp, Concat) {
  Interp in;
  EXPECT_EQ(run1(in, "return 'a' .. 'b' .. 1").str(), "ab1");
  EXPECT_EQ(run1(in, "return 1 .. 2").str(), "12");
  EXPECT_FALSE(in.run("return {} .. 'x'").ok);
}

TEST(Interp, GlobalsAndLocals) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "x = 4 return x"), 4.0);
  EXPECT_DOUBLE_EQ(num(in, "return x"), 4.0);  // globals persist across run()
  EXPECT_DOUBLE_EQ(num(in, "local x = 9 return x"), 9.0);
  EXPECT_DOUBLE_EQ(num(in, "return x"), 4.0);  // local did not clobber global
  EXPECT_TRUE(run1(in, "return undefined_global").is_nil());
}

TEST(Interp, LocalScopingInBlocks) {
  Interp in;
  const char* src = R"(
    local a = 1
    do local a = 2 end
    if true then local a = 3 end
    return a
  )";
  EXPECT_DOUBLE_EQ(num(in, src), 1.0);
}

TEST(Interp, MultipleAssignment) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "a, b = 1, 2 return a + b"), 3.0);
  // Extra values are dropped; missing values become nil.
  EXPECT_TRUE(run1(in, "c, d = 1 return d").is_nil());
  EXPECT_DOUBLE_EQ(num(in, "local p, q = 5, 6 return p * q"), 30.0);
}

TEST(Interp, IfElseifElse) {
  Interp in;
  const char* src = R"(
    function grade(x)
      if x > 10 then return "big"
      elseif x > 5 then return "mid"
      else return "small" end
    end
    return grade(%d)
  )";
  char buf[512];
  std::snprintf(buf, sizeof(buf), src, 20);
  EXPECT_EQ(run1(in, buf).str(), "big");
  std::snprintf(buf, sizeof(buf), src, 7);
  EXPECT_EQ(run1(in, buf).str(), "mid");
  std::snprintf(buf, sizeof(buf), src, 1);
  EXPECT_EQ(run1(in, buf).str(), "small");
}

TEST(Interp, WhileLoop) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "local s=0 local i=1 while i<=10 do s=s+i i=i+1 end return s"), 55.0);
}

TEST(Interp, WhileWithBreak) {
  Interp in;
  EXPECT_DOUBLE_EQ(
      num(in, "local i=0 while true do i=i+1 if i==5 then break end end return i"),
      5.0);
}

TEST(Interp, RepeatUntilSeesBodyLocals) {
  Interp in;
  // The `until` condition references a local declared inside the body.
  // iterations: n=0 done=false n=1; n=1 false n=2; n=2 false n=3;
  // n=3 done=true n=4 -> stop with n==4.
  EXPECT_DOUBLE_EQ(
      num(in, "local n=0 repeat local done = n>=3 n=n+1 until done return n"),
      4.0);
}

TEST(Interp, NumericFor) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "local s=0 for i=1,5 do s=s+i end return s"), 15.0);
  EXPECT_DOUBLE_EQ(num(in, "local s=0 for i=10,1,-2 do s=s+i end return s"), 30.0);
  EXPECT_DOUBLE_EQ(num(in, "local s=0 for i=5,1 do s=s+1 end return s"), 0.0);
  EXPECT_FALSE(in.run("for i=1,10,0 do end").ok);  // zero step
}

TEST(Interp, NumericForVariableIsPerIteration) {
  Interp in;
  // Mutating the loop variable must not affect iteration count.
  EXPECT_DOUBLE_EQ(num(in, "local n=0 for i=1,3 do i = 100 n=n+1 end return n"), 3.0);
}

TEST(Interp, GenericForPairs) {
  Interp in;
  const char* src = R"(
    local t = {} t["a"]=1 t["b"]=2 t[1]=10
    local sum = 0
    local count = 0
    for k, v in pairs(t) do sum = sum + v count = count + 1 end
    return sum + count
  )";
  EXPECT_DOUBLE_EQ(num(in, src), 16.0);
}

TEST(Interp, GenericForIpairsStopsAtHole) {
  Interp in;
  const char* src = R"(
    local t = {10, 20, 30}
    t[5] = 50  -- unreachable via ipairs
    local s = 0
    for i, v in ipairs(t) do s = s + v end
    return s
  )";
  EXPECT_DOUBLE_EQ(num(in, src), 60.0);
}

TEST(Interp, Tables) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "local t = {1,2,3} return #t"), 3.0);
  EXPECT_DOUBLE_EQ(num(in, "local t = {x=5, [2+2]=7} return t.x + t[4]"), 12.0);
  EXPECT_TRUE(run1(in, "local t = {} return t[1]").is_nil());
  EXPECT_DOUBLE_EQ(num(in, "local t = {} t[1]=1 t[2]=2 t[2]=nil return #t"), 1.0);
}

TEST(Interp, NestedTables) {
  Interp in;
  const char* src = R"(
    local MDSs = {}
    MDSs[1] = {} MDSs[1]["load"] = 3.5
    MDSs[2] = {} MDSs[2]["load"] = 1.5
    return MDSs[1]["load"] + MDSs[2]["load"]
  )";
  EXPECT_DOUBLE_EQ(num(in, src), 5.0);
}

TEST(Interp, LengthOperator) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "return #'hello'"), 5.0);
  EXPECT_DOUBLE_EQ(num(in, "local t={} t[1]=1 t[3]=3 return #t"), 1.0);
  EXPECT_FALSE(in.run("return #42").ok);
}

TEST(Interp, Functions) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "function f(a, b) return a - b end return f(10, 4)"), 6.0);
  EXPECT_DOUBLE_EQ(num(in, "local g = function(x) return x * x end return g(9)"), 81.0);
  // Missing args become nil; extra args are dropped.
  EXPECT_TRUE(run1(in, "function h(a, b) return b end return h(1)").is_nil());
  EXPECT_DOUBLE_EQ(num(in, "function k(a) return a end return k(1, 2, 3)"), 1.0);
}

TEST(Interp, Recursion) {
  Interp in;
  EXPECT_DOUBLE_EQ(
      num(in, "function fact(n) if n<=1 then return 1 end return n*fact(n-1) end return fact(10)"),
      3628800.0);
}

TEST(Interp, LocalFunctionCanRecurse) {
  Interp in;
  const char* src = R"(
    local function fib(n)
      if n < 2 then return n end
      return fib(n-1) + fib(n-2)
    end
    return fib(12)
  )";
  EXPECT_DOUBLE_EQ(num(in, src), 144.0);
}

TEST(Interp, ClosuresCaptureByReference) {
  Interp in;
  const char* src = R"(
    local function counter()
      local n = 0
      return function() n = n + 1 return n end
    end
    local c = counter()
    c() c()
    return c()
  )";
  EXPECT_DOUBLE_EQ(num(in, src), 3.0);
}

TEST(Interp, MultipleReturnValues) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "function mr() return 1, 2, 3 end local a,b,c = mr() return a+b+c"), 6.0);
  // Only the last call in an expression list expands.
  EXPECT_DOUBLE_EQ(num(in, "function mr() return 1, 2 end local a,b,c = mr(), 10 return b"), 10.0);
  EXPECT_TRUE(run1(in, "function mr() return 1, 2 end local a,b,c = mr(), 10 return c").is_nil());
  // In the middle of a list a call contributes one value.
  EXPECT_DOUBLE_EQ(num(in, "function mr() return 5, 6 end local t = {mr(), mr()} return #t"), 3.0);
}

TEST(Interp, MethodCalls) {
  Interp in;
  const char* src = R"(
    local obj = { factor = 3 }
    function obj:scale(x) return self.factor * x end
    return obj:scale(7)
  )";
  EXPECT_DOUBLE_EQ(num(in, src), 21.0);
}

TEST(Interp, TableSortWithComparator) {
  Interp in;
  const char* src = R"(
    local t = {5, 1, 4, 2, 3}
    table.sort(t, function(a, b) return a > b end)
    return t[1] * 10 + t[5]
  )";
  EXPECT_DOUBLE_EQ(num(in, src), 51.0);
}

TEST(Interp, RuntimeErrorsAreCaptured) {
  Interp in;
  RunResult r = in.run("local t = nil\nreturn t.x");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("policy:2"), std::string::npos);
  EXPECT_NE(r.error.find("index"), std::string::npos);
}

TEST(Interp, CallingNonFunctionFails) {
  Interp in;
  RunResult r = in.run("return not_a_function(1)");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not_a_function"), std::string::npos);
}

TEST(Interp, StackOverflowIsCaught) {
  Interp in;
  RunResult r = in.run("function f() return f() end return f()");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("stack overflow"), std::string::npos);
}

TEST(Interp, BudgetStopsInfiniteLoop) {
  // The paper's motivating safety example: `while 1` must not hang the MDS.
  Interp in;
  in.set_budget(10000);
  RunResult r = in.run("while 1 do end");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("budget"), std::string::npos);
}

TEST(Interp, BudgetAllowsNormalPolicies) {
  Interp in;
  in.set_budget(100000);
  EXPECT_DOUBLE_EQ(num(in, "local s=0 for i=1,100 do s=s+i end return s"), 5050.0);
}

TEST(Interp, BudgetResetsBetweenRuns) {
  Interp in;
  in.set_budget(5000);
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(in.run("local s=0 for i=1,100 do s=s+i end").ok);
}

TEST(Interp, HostFunctionRegistration) {
  Interp in;
  in.set_function("twice", [](std::vector<Value>& args, Interp&) {
    return std::vector<Value>{Value(args.at(0).number() * 2.0)};
  });
  EXPECT_DOUBLE_EQ(num(in, "return twice(21)"), 42.0);
}

TEST(Interp, HostGlobalsVisibleToScript) {
  Interp in;
  in.set_global("whoami", Value(2.0));
  auto mdss = make_table();
  auto m1 = make_table();
  m1->set(Value("load"), Value(7.5));
  mdss->set(Value(2.0), Value(m1));
  in.set_global("MDSs", Value(mdss));
  EXPECT_DOUBLE_EQ(num(in, "return MDSs[whoami]['load']"), 7.5);
}

TEST(Interp, ScriptResultsReadableFromHost) {
  Interp in;
  auto targets = make_table();
  in.set_global("targets", Value(targets));
  EXPECT_TRUE(in.run("targets[2] = 13.5").ok);
  EXPECT_DOUBLE_EQ(targets->get(Value(2.0)).number(), 13.5);
}

TEST(Interp, PrintGoesToCapturedOutput) {
  Interp in;
  EXPECT_TRUE(in.run("print('hello', 42)").ok);
  EXPECT_EQ(in.output(), "hello\t42\n");
}

TEST(Interp, EvalExpression) {
  Interp in;
  RunResult r = in.eval("1 + 2 * 3");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.first().number(), 7.0);
}

TEST(Interp, CallLuaFunctionFromHost) {
  Interp in;
  ASSERT_TRUE(in.run("function addmul(a, b) return a + b, a * b end").ok);
  RunResult r = in.call(in.get_global("addmul"), {Value(3.0), Value(4.0)});
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.values.size(), 2u);
  EXPECT_DOUBLE_EQ(r.values[0].number(), 7.0);
  EXPECT_DOUBLE_EQ(r.values[1].number(), 12.0);
}

TEST(Interp, CheckSyntaxAcceptsAndRejects) {
  EXPECT_EQ(check_syntax("x = 1 if x > 0 then x = 2 end"), "");
  EXPECT_NE(check_syntax("if x > 0 then"), "");      // unterminated if
  EXPECT_NE(check_syntax("x = = 1"), "");            // bad expression
  EXPECT_NE(check_syntax("1 + 2"), "");              // expression is not a statement
}

TEST(Interp, StepsUsedIsReported) {
  Interp in;
  in.run("local s = 0 for i=1,10 do s = s + 1 end");
  EXPECT_GT(in.steps_used(), 10u);
}

}  // namespace
}  // namespace mantle::lua
