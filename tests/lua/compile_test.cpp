/// Tests for the compile-once pipeline: the CompiledChunk API, slot
/// resolution (lexical scoping through the resolver), parse-time constant
/// folding, and the reusable frame pool. The point of most of these is
/// differential: a source run through compile()+run(CompiledChunk) must
/// behave exactly like the legacy parse-per-call run(string) path.

#include <gtest/gtest.h>

#include <cmath>

#include "lua/interp.hpp"

namespace mantle::lua {
namespace {

TEST(CompiledChunk, CompileOnceRunMany) {
  Interp in;
  const CompiledChunk cc = compile("x = (x or 0) + 1 return x");
  ASSERT_TRUE(cc.ok()) << cc.error;
  for (int i = 1; i <= 100; ++i) {
    RunResult r = in.run(cc);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_DOUBLE_EQ(r.first().number(), static_cast<double>(i));
  }
}

TEST(CompiledChunk, SameChunkRunsOnDifferentInterps) {
  const CompiledChunk cc = compile_expr("1 + n");
  ASSERT_TRUE(cc.ok()) << cc.error;
  Interp a;
  Interp b;
  a.set_global("n", Value(1.0));
  b.set_global("n", Value(41.0));
  EXPECT_DOUBLE_EQ(a.run(cc).first().number(), 2.0);
  EXPECT_DOUBLE_EQ(b.run(cc).first().number(), 42.0);
}

TEST(CompiledChunk, CompileErrorIsCapturedNotThrown) {
  const CompiledChunk cc = compile("return ((", "broken");
  EXPECT_FALSE(cc.ok());
  EXPECT_FALSE(cc.error.empty());
  // Running the failed chunk yields a failed result with the same message.
  Interp in;
  RunResult r = in.run(cc);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, cc.error);
  EXPECT_EQ(in.steps_used(), 0u);  // budget accounting resets regardless
}

TEST(CompiledChunk, ExprWrapperBuiltAtCompileTime) {
  // compile_expr wraps once; the result is an ordinary chunk returning
  // the expression value.
  const CompiledChunk cc = compile_expr("2 * 21");
  ASSERT_TRUE(cc.ok()) << cc.error;
  Interp in;
  EXPECT_DOUBLE_EQ(in.run(cc).first().number(), 42.0);
  // Errors in the wrapped form carry the caller's chunk name.
  const CompiledChunk bad = compile_expr("1 +", "myexpr");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("myexpr"), std::string::npos);
}

TEST(CompiledChunk, LegacyStringApiStillWorks) {
  Interp in;
  EXPECT_DOUBLE_EQ(in.run("return 6 * 7").first().number(), 42.0);
  EXPECT_DOUBLE_EQ(in.eval("6 * 7").first().number(), 42.0);
}

// --- Constant folding ----------------------------------------------------
// Folding happens in the parser, so these go through the normal run path;
// what they pin down is that folded arithmetic matches the interpreter's
// runtime formulas exactly (same mod/pow semantics, same negatives).

TEST(ConstantFolding, FoldedArithmeticMatchesRuntime) {
  Interp in;
  // Each pair: literal-only expression (folded at parse time) vs the same
  // computation fed through globals (evaluated at run time).
  in.set_global("a", Value(7.0));
  in.set_global("b", Value(-3.0));
  const char* folded[] = {"return 7 + -3", "return 7 - -3", "return 7 * -3",
                          "return 7 / -3", "return 7 % -3", "return 7 ^ -3"};
  const char* runtime[] = {"return a + b", "return a - b", "return a * b",
                           "return a / b", "return a % b", "return a ^ b"};
  for (int i = 0; i < 6; ++i) {
    RunResult f = in.run(folded[i]);
    RunResult r = in.run(runtime[i]);
    ASSERT_TRUE(f.ok) << f.error;
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_DOUBLE_EQ(f.first().number(), r.first().number()) << folded[i];
  }
}

TEST(ConstantFolding, FoldedExpressionsCostFewerSteps) {
  Interp in;
  in.run("return 1 + 2 + 3 + 4");  // literals: folds to a single constant
  const std::uint64_t folded_steps = in.steps_used();
  in.run("return a + a + a + a");  // names: full tree walk at runtime
  const std::uint64_t runtime_steps = in.steps_used();
  EXPECT_LT(folded_steps, runtime_steps);
}

TEST(ConstantFolding, DivisionByLiteralZeroFolds) {
  Interp in;
  RunResult r = in.run("return 1 / 0");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(std::isinf(r.first().number()));
  r = in.run("return 0 / 0");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(std::isnan(r.first().number()));
}

TEST(ConstantFolding, ConcatAndComparisonsAreNotFolded) {
  // Only arithmetic on two number literals folds; everything else keeps
  // its runtime behavior (including error messages).
  Interp in;
  EXPECT_EQ(in.run("return 1 .. 2").first().str(), "12");
  EXPECT_TRUE(in.run("return 1 < 2").first().boolean());
}

// --- Slot resolution -----------------------------------------------------

TEST(SlotResolution, ShadowingInNestedBlocks) {
  Interp in;
  RunResult r = in.run(R"(
    local x = 1
    do
      local x = 2
      do local x = 3 end
      y = x
    end
    return x, y
  )");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.values.size(), 2u);
  EXPECT_DOUBLE_EQ(r.values[0].number(), 1.0);
  EXPECT_DOUBLE_EQ(r.values[1].number(), 2.0);
}

TEST(SlotResolution, LocalInitializerSeesOuterBinding) {
  // `local x = x` reads the *outer* x (global here), then shadows it.
  Interp in;
  in.set_global("x", Value(10.0));
  RunResult r = in.run("local x = x + 1 return x");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.first().number(), 11.0);
  EXPECT_DOUBLE_EQ(in.get_global("x").number(), 10.0);  // global untouched
}

TEST(SlotResolution, UseBeforeDeclarationIsGlobal) {
  // A name read lexically before its `local` declaration resolves outward
  // (to the global), even on later loop iterations when the slot holds a
  // stale value from the previous pass.
  Interp in;
  in.set_global("x", Value(100.0));
  RunResult r = in.run(R"(
    sum = 0
    for i = 1, 3 do
      sum = sum + x      -- global x, never the local below
      local x = i * 1000
    end
    return sum
  )");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.first().number(), 300.0);
}

TEST(SlotResolution, LocalFunctionSeesItselfButPlainLocalDoesNot) {
  Interp in;
  // `local function f` is in scope inside its own body (recursion works).
  RunResult r = in.run(R"(
    local function fact(n)
      if n <= 1 then return 1 end
      return n * fact(n - 1)
    end
    return fact(5)
  )");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.first().number(), 120.0);

  // `local f = function() ... end` sees the *outer* f inside the body.
  in.set_global("g", Value());  // make sure the global is nil
  r = in.run(R"(
    local g = function() return g end
    return g()
  )");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.first().is_nil());
}

TEST(SlotResolution, RepeatUntilSeesBodyLocals) {
  Interp in;
  RunResult r = in.run(R"(
    n = 0
    repeat
      n = n + 1
      local done = n >= 4
    until done
    return n
  )");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.first().number(), 4.0);
}

TEST(SlotResolution, ClosuresCapturePerIterationVariables) {
  // Loop bodies that create closures get a fresh frame per iteration, so
  // each closure sees its own copy of the loop-body locals.
  Interp in;
  RunResult r = in.run(R"(
    fns = {}
    for i = 1, 3 do
      local v = i * 10
      fns[i] = function() return v end
    end
    return fns[1]() + fns[2]() + fns[3]()
  )");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.first().number(), 60.0);
}

TEST(SlotResolution, ClosureCapturesSurviveChunkEnd) {
  // The captured frame (and the function's AST) must outlive the run that
  // created the closure.
  Interp in;
  {
    const CompiledChunk cc =
        compile("local secret = 42 getter = function() return secret end");
    ASSERT_TRUE(cc.ok()) << cc.error;
    ASSERT_TRUE(in.run(cc).ok);
  }  // CompiledChunk destroyed here; the closure keeps the AST alive
  RunResult r = in.run("return getter()");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.first().number(), 42.0);
}

TEST(SlotResolution, DeepLexicalNestingWalksHops) {
  Interp in;
  RunResult r = in.run(R"(
    local a = 1
    function outer()
      local b = 2
      local function middle()
        local c = 4
        local function inner() return a + b + c end
        return inner()
      end
      return middle()
    end
    return outer()
  )");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.first().number(), 7.0);
}

// --- Frame pool ----------------------------------------------------------

TEST(FramePool, PooledFramesStartNil) {
  // A function frame recycled from the pool must not leak values from a
  // previous call: an unpassed parameter is nil, not whatever the slot
  // held last time.
  Interp in;
  ASSERT_TRUE(in.run("function f(p, q) return q end").ok);
  const Value f = in.get_global("f");
  RunResult r = in.call(f, {Value(1.0), Value(99.0)});
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.first().number(), 99.0);
  r = in.call(f, {Value(1.0)});  // q omitted: frame reused, slot must be nil
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.first().is_nil());
}

TEST(FramePool, RecursionAndLoopsReuseFrames) {
  Interp in;
  const CompiledChunk cc = compile(R"(
    function fib(n)
      if n < 2 then return n end
      return fib(n - 1) + fib(n - 2)
    end
    acc = 0
    for i = 1, 50 do acc = acc + fib(10) end
    return acc
  )");
  ASSERT_TRUE(cc.ok()) << cc.error;
  RunResult r = in.run(cc);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.first().number(), 50.0 * 55.0);
}

}  // namespace
}  // namespace mantle::lua
