#include <gtest/gtest.h>

#include "lua/interp.hpp"

namespace mantle::lua {
namespace {

Value run1(Interp& in, const std::string& src) {
  RunResult r = in.run(src);
  EXPECT_TRUE(r.ok) << r.error;
  return r.first();
}

double num(Interp& in, const std::string& src) {
  const Value v = run1(in, src);
  EXPECT_TRUE(v.is_number()) << "got " << v.type_name();
  return v.is_number() ? v.number() : 0.0;
}

TEST(Stdlib, MaxMinGlobals) {
  // Table 2 of the paper: max(a,b), min(a,b) are env globals.
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "return max(3, 7)"), 7.0);
  EXPECT_DOUBLE_EQ(num(in, "return min(3, 7)"), 3.0);
  EXPECT_DOUBLE_EQ(num(in, "return max(1, 5, 2, 4)"), 5.0);
  EXPECT_FALSE(in.run("return max({}, 1)").ok);
}

TEST(Stdlib, TypeAndToString) {
  Interp in;
  EXPECT_EQ(run1(in, "return type(nil)").str(), "nil");
  EXPECT_EQ(run1(in, "return type(1)").str(), "number");
  EXPECT_EQ(run1(in, "return type('s')").str(), "string");
  EXPECT_EQ(run1(in, "return type({})").str(), "table");
  EXPECT_EQ(run1(in, "return type(print)").str(), "function");
  EXPECT_EQ(run1(in, "return tostring(42)").str(), "42");
  EXPECT_EQ(run1(in, "return tostring(2.5)").str(), "2.5");
  EXPECT_EQ(run1(in, "return tostring(true)").str(), "true");
}

TEST(Stdlib, ToNumber) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "return tonumber('3.5')"), 3.5);
  EXPECT_TRUE(run1(in, "return tonumber('zzz')").is_nil());
  EXPECT_TRUE(run1(in, "return tonumber({})").is_nil());
}

TEST(Stdlib, AssertAndError) {
  Interp in;
  EXPECT_TRUE(in.run("assert(true)").ok);
  RunResult r = in.run("assert(false, 'boom')");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("boom"), std::string::npos);
  r = in.run("error('custom failure')");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("custom failure"), std::string::npos);
}

TEST(Stdlib, MathBasics) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "return math.floor(2.7)"), 2.0);
  EXPECT_DOUBLE_EQ(num(in, "return math.ceil(2.1)"), 3.0);
  EXPECT_DOUBLE_EQ(num(in, "return math.abs(-4)"), 4.0);
  EXPECT_DOUBLE_EQ(num(in, "return math.sqrt(81)"), 9.0);
  EXPECT_DOUBLE_EQ(num(in, "return math.pow(2, 8)"), 256.0);
  EXPECT_DOUBLE_EQ(num(in, "return math.fmod(7, 3)"), 1.0);
  EXPECT_GT(num(in, "return math.huge"), 1e300);
  EXPECT_NEAR(num(in, "return math.exp(1)"), 2.718281828, 1e-8);
  EXPECT_NEAR(num(in, "return math.log(math.exp(2))"), 2.0, 1e-12);
}

TEST(Stdlib, MathRandomIsDeterministicPerSeed) {
  Interp a;
  Interp b;
  a.seed_random(7);
  b.seed_random(7);
  const double x = num(a, "return math.random()");
  const double y = num(b, "return math.random()");
  EXPECT_DOUBLE_EQ(x, y);
  EXPECT_GE(x, 0.0);
  EXPECT_LT(x, 1.0);
  // Ranged forms respect bounds.
  for (int i = 0; i < 50; ++i) {
    const double v = num(a, "return math.random(3, 5)");
    EXPECT_GE(v, 3.0);
    EXPECT_LE(v, 5.0);
  }
}

TEST(Stdlib, StringOps) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "return string.len('abcd')"), 4.0);
  EXPECT_EQ(run1(in, "return string.sub('balancer', 1, 3)").str(), "bal");
  EXPECT_EQ(run1(in, "return string.sub('balancer', -3)").str(), "cer");
  EXPECT_EQ(run1(in, "return string.upper('mds')").str(), "MDS");
  EXPECT_EQ(run1(in, "return string.lower('MDS')").str(), "mds");
  EXPECT_EQ(run1(in, "return string.rep('ab', 3)").str(), "ababab");
}

TEST(Stdlib, StringFind) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "return string.find('greedy_spill', 'spill')"), 8.0);
  EXPECT_TRUE(run1(in, "return string.find('abc', 'zzz')").is_nil());
}

TEST(Stdlib, StringFormat) {
  Interp in;
  EXPECT_EQ(run1(in, "return string.format('%d reqs', 42)").str(), "42 reqs");
  EXPECT_EQ(run1(in, "return string.format('%.2f', 3.14159)").str(), "3.14");
  EXPECT_EQ(run1(in, "return string.format('%s=%g', 'load', 0.5)").str(), "load=0.5");
  EXPECT_EQ(run1(in, "return string.format('%5d|', 42)").str(), "   42|");
  EXPECT_EQ(run1(in, "return string.format('100%%')").str(), "100%");
  EXPECT_FALSE(in.run("return string.format('%y', 1)").ok);
}

TEST(Stdlib, TableInsertRemove) {
  Interp in;
  const char* src = R"(
    local t = {}
    table.insert(t, 'a')
    table.insert(t, 'b')
    table.insert(t, 1, 'front')
    local popped = table.remove(t)      -- 'b'
    local shifted = table.remove(t, 1)  -- 'front'
    return shifted .. popped .. t[1] .. #t
  )";
  EXPECT_EQ(run1(in, src).str(), "frontba1");
}

TEST(Stdlib, TableConcat) {
  Interp in;
  EXPECT_EQ(run1(in, "return table.concat({'a','b','c'}, '-')").str(), "a-b-c");
  EXPECT_EQ(run1(in, "return table.concat({})").str(), "");
  EXPECT_EQ(run1(in, "return table.concat({1, 2}, ',')").str(), "1,2");
}

TEST(Stdlib, TableSortDefaultOrder) {
  Interp in;
  const char* src = R"(
    local t = {3, 1, 2}
    table.sort(t)
    return t[1] * 100 + t[2] * 10 + t[3]
  )";
  EXPECT_DOUBLE_EQ(num(in, src), 123.0);
}

TEST(Stdlib, PairsCoversNumericAndStringKeys) {
  Interp in;
  const char* src = R"(
    local t = {}
    t[2] = 'two' t[1] = 'one' t['z'] = 'zee' t['a'] = 'ay'
    local keys = ''
    for k, v in pairs(t) do keys = keys .. tostring(k) end
    return keys
  )";
  // Numeric keys first (ordered), then string keys (ordered).
  EXPECT_EQ(run1(in, src).str(), "12az");
}

TEST(Stdlib, NextOnEmptyTable) {
  Interp in;
  EXPECT_TRUE(run1(in, "return next({})").is_nil());
}

TEST(Stdlib, PcallCatchesErrors) {
  Interp in;
  const char* src = R"(
    local ok, err = pcall(function() return nil + 1 end)
    return tostring(ok) .. '|' .. tostring(string.find(err, 'arithmetic') ~= nil)
  )";
  EXPECT_EQ(run1(in, src).str(), "false|true");
}

TEST(Stdlib, PcallPassesThroughResults) {
  Interp in;
  const char* src = R"(
    local ok, a, b = pcall(function(x) return x, x * 2 end, 21)
    return (ok and a + b) or -1
  )";
  EXPECT_DOUBLE_EQ(num(in, src), 63.0);
}

TEST(Stdlib, PcallOnNonFunction) {
  Interp in;
  EXPECT_EQ(run1(in, "local ok = pcall(42) return tostring(ok)").str(), "false");
}

TEST(Stdlib, PcallDoesNotDefeatTheBudget) {
  // A policy cannot hide an infinite loop behind pcall: the budget is
  // global to the run, so the wrapped loop still terminates the chunk.
  Interp in;
  in.set_budget(20000);
  RunResult r = in.run("pcall(function() while true do end end) while true do end");
  EXPECT_FALSE(r.ok);
}

TEST(Stdlib, SelectCountAndSlice) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "return select('#', 'a', 'b', 'c')"), 3.0);
  EXPECT_EQ(run1(in, "return select(2, 'a', 'b', 'c')").str(), "b");
  EXPECT_DOUBLE_EQ(num(in, "local x, y = select(2, 10, 20, 30) return x + y"), 50.0);
  EXPECT_FALSE(in.run("return select(0, 'a')").ok);
}

TEST(Stdlib, Unpack) {
  Interp in;
  EXPECT_DOUBLE_EQ(num(in, "local a, b, c = unpack({7, 8, 9}) return a*100+b*10+c"),
                   789.0);
  EXPECT_DOUBLE_EQ(num(in, "local x, y = unpack({1, 2, 3, 4}, 2, 3) return x*10+y"),
                   23.0);
  EXPECT_DOUBLE_EQ(num(in, "return max(unpack({3, 9, 4}))"), 9.0);
}

}  // namespace
}  // namespace mantle::lua
