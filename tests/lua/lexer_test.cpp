#include "lua/lexer.hpp"

#include <gtest/gtest.h>

#include "lua/value.hpp"

namespace mantle::lua {
namespace {

std::vector<Tok> kinds(const std::string& src) {
  std::vector<Tok> out;
  for (const Token& t : tokenize(src, "t")) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyChunkIsJustEof) {
  EXPECT_EQ(kinds(""), std::vector<Tok>{Tok::Eof});
  EXPECT_EQ(kinds("   \n\t "), std::vector<Tok>{Tok::Eof});
}

TEST(Lexer, Keywords) {
  const auto k = kinds("if then else elseif end while do for in repeat until "
                       "function local return break and or not nil true false");
  const std::vector<Tok> expect = {
      Tok::If, Tok::Then, Tok::Else, Tok::Elseif, Tok::End, Tok::While,
      Tok::Do, Tok::For, Tok::In, Tok::Repeat, Tok::Until, Tok::Function,
      Tok::Local, Tok::Return, Tok::Break, Tok::And, Tok::Or, Tok::Not,
      Tok::Nil, Tok::True, Tok::False, Tok::Eof};
  EXPECT_EQ(k, expect);
}

TEST(Lexer, NamesAreNotKeywords) {
  const auto toks = tokenize("whoami MDSs _x x1 iff", "t");
  ASSERT_EQ(toks.size(), 6u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(toks[i].kind, Tok::Name);
  EXPECT_EQ(toks[0].text, "whoami");
  EXPECT_EQ(toks[4].text, "iff");
}

TEST(Lexer, NumberForms) {
  const auto toks = tokenize("1 42 3.14 .01 1e3 2.5e-2 0xff", "t");
  ASSERT_EQ(toks.size(), 8u);
  EXPECT_DOUBLE_EQ(toks[0].number, 1.0);
  EXPECT_DOUBLE_EQ(toks[1].number, 42.0);
  EXPECT_DOUBLE_EQ(toks[2].number, 3.14);
  EXPECT_DOUBLE_EQ(toks[3].number, 0.01);  // leading-dot literal from Listing 1
  EXPECT_DOUBLE_EQ(toks[4].number, 1000.0);
  EXPECT_DOUBLE_EQ(toks[5].number, 0.025);
  EXPECT_DOUBLE_EQ(toks[6].number, 255.0);
}

TEST(Lexer, StringsAndEscapes) {
  const auto toks = tokenize(R"( "load" 'auth' "a\nb" "q\"q" '\65' )", "t");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0].text, "load");
  EXPECT_EQ(toks[1].text, "auth");
  EXPECT_EQ(toks[2].text, "a\nb");
  EXPECT_EQ(toks[3].text, "q\"q");
  EXPECT_EQ(toks[4].text, "A");
}

TEST(Lexer, OperatorsIncludingCompound) {
  const auto k = kinds("== ~= <= >= < > = .. ... . # ^ % + - * / ( ) { } [ ] ; : ,");
  const std::vector<Tok> expect = {
      Tok::Eq, Tok::Ne, Tok::Le, Tok::Ge, Tok::Lt, Tok::Gt, Tok::Assign,
      Tok::Concat, Tok::Ellipsis, Tok::Dot, Tok::Hash, Tok::Caret,
      Tok::Percent, Tok::Plus, Tok::Minus, Tok::Star, Tok::Slash,
      Tok::LParen, Tok::RParen, Tok::LBrace, Tok::RBrace, Tok::LBracket,
      Tok::RBracket, Tok::Semi, Tok::Colon, Tok::Comma, Tok::Eof};
  EXPECT_EQ(k, expect);
}

TEST(Lexer, LineComments) {
  const auto k = kinds("x = 1 -- Metadata load\ny = 2");
  const std::vector<Tok> expect = {Tok::Name, Tok::Assign, Tok::Number,
                                   Tok::Name, Tok::Assign, Tok::Number,
                                   Tok::Eof};
  EXPECT_EQ(k, expect);
}

TEST(Lexer, BlockComments) {
  const auto k = kinds("a --[[ spans\nlines ]] b");
  const std::vector<Tok> expect = {Tok::Name, Tok::Name, Tok::Eof};
  EXPECT_EQ(k, expect);
}

TEST(Lexer, TracksLineNumbers) {
  const auto toks = tokenize("a\nb\n\nc", "t");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, ErrorsCarryChunkAndLine) {
  try {
    tokenize("x = 1\ny = \"unterminated", "mypolicy");
    FAIL() << "expected LuaError";
  } catch (const LuaError& e) {
    EXPECT_NE(std::string(e.what()).find("mypolicy:2"), std::string::npos);
  }
}

TEST(Lexer, RejectsStrayTilde) {
  EXPECT_THROW(tokenize("a ~ b", "t"), LuaError);
}

TEST(Lexer, RejectsBadEscape) {
  EXPECT_THROW(tokenize(R"("bad \z escape")", "t"), LuaError);
}

TEST(Lexer, RejectsUnterminatedBlockComment) {
  EXPECT_THROW(tokenize("--[[ never closed", "t"), LuaError);
}

TEST(Lexer, RejectsMalformedHex) {
  EXPECT_THROW(tokenize("0x", "t"), LuaError);
}

TEST(Lexer, ListingOneLexesCleanly) {
  // Verbatim Greedy Spill from the paper (Listing 1).
  const char* src = R"(
-- Metadata load
metaload = IWR
-- Metadata server load
mdsload = MDSs[i]["all"]
-- When policy
if MDSs[whoami]["load"]>.01 and
   MDSs[whoami+1]["load"]<.01 then
-- Where policy
targets[whoami+1]=allmetaload/2
-- Howmuch policy
end
)";
  EXPECT_NO_THROW(tokenize(src, "listing1"));
}

}  // namespace
}  // namespace mantle::lua
