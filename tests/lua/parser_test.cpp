#include "lua/parser.hpp"

#include <gtest/gtest.h>

#include "lua/value.hpp"

namespace mantle::lua {
namespace {

bool parses(const std::string& src) {
  try {
    parse(src, "t");
    return true;
  } catch (const LuaError&) {
    return false;
  }
}

TEST(Parser, EmptyChunk) { EXPECT_TRUE(parses("")); }

TEST(Parser, Statements) {
  EXPECT_TRUE(parses("x = 1"));
  EXPECT_TRUE(parses("x, y = 1, 2"));
  EXPECT_TRUE(parses("local a, b = 1"));
  EXPECT_TRUE(parses("f()"));
  EXPECT_TRUE(parses("t.a.b[1]()"));
  EXPECT_TRUE(parses("do x = 1 end"));
  EXPECT_TRUE(parses("while x do y() end"));
  EXPECT_TRUE(parses("repeat y() until x"));
  EXPECT_TRUE(parses("for i = 1, 10 do end"));
  EXPECT_TRUE(parses("for i = 1, 10, 2 do end"));
  EXPECT_TRUE(parses("for k, v in pairs(t) do end"));
  EXPECT_TRUE(parses("if a then b() elseif c then d() else e() end"));
  EXPECT_TRUE(parses("return"));
  EXPECT_TRUE(parses("return 1, 2"));
  EXPECT_TRUE(parses("while true do break end"));
}

TEST(Parser, Semicolons) {
  EXPECT_TRUE(parses("x = 1; y = 2;"));
  EXPECT_TRUE(parses(";;"));
}

TEST(Parser, FunctionForms) {
  EXPECT_TRUE(parses("function f() end"));
  EXPECT_TRUE(parses("function f(a, b) return a end"));
  EXPECT_TRUE(parses("function t.a.b() end"));
  EXPECT_TRUE(parses("function t:m(x) return self end"));
  EXPECT_TRUE(parses("local function f() end"));
  EXPECT_TRUE(parses("f = function(...) end"));
}

TEST(Parser, CallArgumentForms) {
  EXPECT_TRUE(parses("f 'literal'"));
  EXPECT_TRUE(parses("f {1, 2}"));
  EXPECT_TRUE(parses("obj:method(1)"));
  EXPECT_TRUE(parses("obj:method 'x'"));
}

TEST(Parser, TableConstructors) {
  EXPECT_TRUE(parses("t = {}"));
  EXPECT_TRUE(parses("t = {1, 2, 3}"));
  EXPECT_TRUE(parses("t = {a = 1, [2] = 3, 'pos'}"));
  EXPECT_TRUE(parses("t = {1, 2,}"));   // trailing comma
  EXPECT_TRUE(parses("t = {1; 2}"));    // semicolon separator
  EXPECT_TRUE(parses("t = {\"half\",\"small\",\"big\",\"big_small\"}"));
}

TEST(Parser, RejectsSyntaxErrors) {
  EXPECT_FALSE(parses("x ="));
  EXPECT_FALSE(parses("if x then"));
  EXPECT_FALSE(parses("while do end"));
  EXPECT_FALSE(parses("for i do end"));
  EXPECT_FALSE(parses("function"));
  EXPECT_FALSE(parses("1 + 2"));          // expression is not a statement
  EXPECT_FALSE(parses("x + 1 = 2"));      // non-assignable lhs
  EXPECT_FALSE(parses("f() = 3"));        // call is not assignable
  EXPECT_FALSE(parses("return 1 x = 2")); // code after return
  EXPECT_FALSE(parses("end"));
  EXPECT_FALSE(parses("local 1 = x"));
}

TEST(Parser, ErrorsMentionChunkAndLine) {
  try {
    parse("x = 1\nif then end", "balancer.lua");
    FAIL() << "expected LuaError";
  } catch (const LuaError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("balancer.lua:2"), std::string::npos) << msg;
  }
}

TEST(Parser, PaperListingsParse) {
  // Listing 2: Greedy Spill Evenly (completed with `end`).
  const char* listing2 = R"(
    t=((#MDSs-whoami+1)/2)+whoami
    if t>#MDSs then t=whoami end
    while t~=whoami and MDSs[t]["load"]<.01 do t=t-1 end
    if MDSs[whoami]["load"]>.01 and MDSs[t]["load"]<.01 then
      targets[t]=MDSs[whoami]["load"]/2
    end
  )";
  EXPECT_TRUE(parses(listing2));

  // Listing 3: Fill and Spill.
  const char* listing3 = R"(
    wait=RDState(); go = 0;
    if MDSs[whoami]["cpu"]>48 then
      if wait>0 then WRState(wait-1)
      else WRState(2); go=1; end
    else WRState(2) end
    if go==1 then
      targets[whoami+1] = MDSs[whoami]["load"]/4
    end
  )";
  EXPECT_TRUE(parses(listing3));

  // Listing 4: Adaptable Balancer.
  const char* listing4 = R"(
    metaload = IWR + IRD
    max=0
    for i=1,#MDSs do
      max = max(MDSs[i]["load"], max)
    end
    myLoad = MDSs[whoami]["load"]
    if myLoad>total/2 and myLoad>=max then
      targetLoad=total/#MDSs
      for i=1,#MDSs do
        if MDSs[i]["load"]<targetLoad then
          targets[i]=targetLoad-MDSs[i]["load"]
        end
      end
    end
  )";
  EXPECT_TRUE(parses(listing4));
}

}  // namespace
}  // namespace mantle::lua
