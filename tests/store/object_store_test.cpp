#include "store/object_store.hpp"

#include <gtest/gtest.h>

namespace mantle::store {
namespace {

TEST(ObjectStore, WriteThenRead) {
  ObjectStore os;
  EXPECT_TRUE(os.write_full("obj.a", "hello").ok);
  std::string out;
  const OpResult r = os.read("obj.a", &out);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(out, "hello");
  EXPECT_GT(r.latency, 0u);
}

TEST(ObjectStore, ReadMissingFails) {
  ObjectStore os;
  std::string out;
  EXPECT_FALSE(os.read("nope", &out).ok);
}

TEST(ObjectStore, AppendConcatenates) {
  ObjectStore os;
  os.append("log", "aa");
  os.append("log", "bb");
  std::string out;
  ASSERT_TRUE(os.read("log", &out).ok);
  EXPECT_EQ(out, "aabb");
}

TEST(ObjectStore, OverwriteReplaces) {
  ObjectStore os;
  os.write_full("o", "v1");
  os.write_full("o", "v2");
  std::string out;
  ASSERT_TRUE(os.read("o", &out).ok);
  EXPECT_EQ(out, "v2");
}

TEST(ObjectStore, OmapSetGetRemove) {
  ObjectStore os;
  os.omap_set("dirfrag.1", "fileA", "ino=5");
  os.omap_set("dirfrag.1", "fileB", "ino=6");
  std::string v;
  ASSERT_TRUE(os.omap_get("dirfrag.1", "fileA", &v).ok);
  EXPECT_EQ(v, "ino=5");
  EXPECT_TRUE(os.omap_remove("dirfrag.1", "fileA").ok);
  EXPECT_FALSE(os.omap_get("dirfrag.1", "fileA", &v).ok);
  EXPECT_TRUE(os.omap_get("dirfrag.1", "fileB", &v).ok);
}

TEST(ObjectStore, OmapListSortedByKey) {
  ObjectStore os;
  os.omap_set("d", "z", "1");
  os.omap_set("d", "a", "2");
  std::vector<std::pair<std::string, std::string>> all;
  ASSERT_TRUE(os.omap_list("d", &all).ok);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "a");
  EXPECT_EQ(all[1].first, "z");
}

TEST(ObjectStore, RemoveDeletesObject) {
  ObjectStore os;
  os.write_full("o", "x");
  EXPECT_TRUE(os.remove("o").ok);
  EXPECT_FALSE(os.exists("o"));
  EXPECT_FALSE(os.remove("o").ok);  // second remove reports missing
}

TEST(ObjectStore, StatsAccumulate) {
  ObjectStore os;
  os.write_full("a", "12345");
  std::string out;
  os.read("a", &out);
  os.omap_set("a", "k", "vv");
  const StoreStats& st = os.stats();
  EXPECT_EQ(st.writes, 1u);
  EXPECT_EQ(st.reads, 1u);
  EXPECT_EQ(st.omap_writes, 1u);
  EXPECT_EQ(st.bytes_written, 5u + 3u);
  EXPECT_EQ(st.bytes_read, 5u);
}

TEST(LatencyModel, CostGrowsWithSize) {
  const LatencyModel m;
  EXPECT_GT(m.write_cost(1 << 20, nullptr), m.write_cost(0, nullptr));
  EXPECT_GT(m.read_cost(1 << 20, nullptr), m.read_cost(0, nullptr));
  // Writes cost more than reads at equal size (replication ack).
  EXPECT_GT(m.write_cost(4096, nullptr), m.read_cost(4096, nullptr));
}

TEST(LatencyModel, DeterministicWithoutRng) {
  const LatencyModel m;
  EXPECT_EQ(m.read_cost(512, nullptr), m.read_cost(512, nullptr));
}

TEST(LatencyModel, JitterStaysBounded) {
  LatencyModel m;
  m.jitter_frac = 0.10;
  Rng rng(42);
  const Time base = m.read_cost(1024, nullptr);
  for (int i = 0; i < 200; ++i) {
    const Time t = m.read_cost(1024, &rng);
    EXPECT_GE(t, static_cast<Time>(static_cast<double>(base) * 0.89));
    EXPECT_LE(t, static_cast<Time>(static_cast<double>(base) * 1.11));
  }
}

TEST(Journal, AppendAssignsSequenceNumbers) {
  ObjectStore os;
  Journal j(os, "mds0.journal");
  std::uint64_t s0 = 99;
  std::uint64_t s1 = 99;
  j.append("EExport subtree=5", &s0);
  j.append("EImport subtree=5", &s1);
  EXPECT_EQ(s0, 0u);
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(j.live_entries(), 2u);
  EXPECT_EQ(j.next_seq(), 2u);
}

TEST(Journal, TrimDropsOldEntries) {
  ObjectStore os;
  Journal j(os, "mds0.journal");
  for (int i = 0; i < 5; ++i) j.append("ev" + std::to_string(i));
  j.trim(3);
  EXPECT_EQ(j.live_entries(), 2u);
  EXPECT_EQ(j.trimmed_to(), 3u);
  const auto ents = j.entries();
  ASSERT_EQ(ents.size(), 2u);
  EXPECT_EQ(ents[0].first, 3u);
  EXPECT_EQ(ents[0].second, "ev3");
}

TEST(Journal, BacksOntoObjectStore) {
  ObjectStore os;
  Journal j(os, "mds1.journal");
  j.append("abc");
  j.append("def");
  std::string raw;
  ASSERT_TRUE(os.read("mds1.journal", &raw).ok);
  EXPECT_EQ(raw, "abcdef");
}

TEST(Journal, ReplayAfterTrimSeesOnlyLiveEntries) {
  // The recovery path replays entries() after a crash: trimmed events must
  // not reappear, and the survivors keep their original sequence numbers.
  ObjectStore os;
  Journal j(os, "mds0.journal");
  for (int i = 0; i < 10; ++i) j.append("EExport frag=" + std::to_string(i));
  j.trim(6);
  j.append("EImportStart frag=10");  // post-trim appends keep counting up
  std::uint64_t seq = 0;
  j.append("EImportCommit frag=10", &seq);
  EXPECT_EQ(seq, 11u);

  const auto replay = j.entries();
  ASSERT_EQ(replay.size(), 6u);  // seqs 6..9 plus the two new events
  EXPECT_EQ(replay.front().first, 6u);
  EXPECT_EQ(replay.front().second, "EExport frag=6");
  EXPECT_EQ(replay.back().first, 11u);
  EXPECT_EQ(replay.back().second, "EImportCommit frag=10");
  for (const auto& [s, ev] : replay) EXPECT_GE(s, j.trimmed_to());
}

TEST(Journal, TrimIsIdempotentAndMonotonic) {
  ObjectStore os;
  Journal j(os, "mds0.journal");
  for (int i = 0; i < 4; ++i) j.append("e" + std::to_string(i));
  j.trim(3);
  j.trim(3);  // repeat: no-op
  EXPECT_EQ(j.live_entries(), 1u);
  EXPECT_EQ(j.trimmed_to(), 3u);
  j.trim(1);  // going backwards must not resurrect entries
  EXPECT_EQ(j.live_entries(), 1u);
  EXPECT_EQ(j.trimmed_to(), 3u);
}

TEST(Journal, TrimToEndEmptiesReplaySet) {
  // The cluster trims a dead rank's journal to next_seq() after takeover:
  // a later restart of that rank replays nothing.
  ObjectStore os;
  Journal j(os, "mds2.journal");
  for (int i = 0; i < 7; ++i) j.append("ETakeoverish" + std::to_string(i));
  j.trim(j.next_seq());
  EXPECT_EQ(j.live_entries(), 0u);
  EXPECT_TRUE(j.entries().empty());
  // The journal is still usable afterwards.
  std::uint64_t seq = 0;
  j.append("ERestart", &seq);
  EXPECT_EQ(seq, 7u);
  EXPECT_EQ(j.live_entries(), 1u);
}

TEST(ObjectStore, FaultHookFailsOpWithoutMutating) {
  ObjectStore os;
  ASSERT_TRUE(os.write_full("keep", "v1").ok);
  os.set_fault_hook([](StoreOp, const std::string&) { return true; });
  EXPECT_FALSE(os.write_full("keep", "v2").ok);
  EXPECT_FALSE(os.remove("keep").ok);
  os.set_fault_hook(nullptr);
  std::string data;
  ASSERT_TRUE(os.read("keep", &data).ok);
  EXPECT_EQ(data, "v1") << "faulted ops must leave state untouched";
  EXPECT_EQ(os.stats().faults_injected, 2u);
}

TEST(ObjectStore, FaultHookSeesOpKindAndOid) {
  ObjectStore os;
  std::vector<std::pair<StoreOp, std::string>> seen;
  os.set_fault_hook([&](StoreOp op, const std::string& oid) {
    seen.emplace_back(op, oid);
    return false;  // observe only
  });
  os.write_full("a", "x");
  std::string tmp;
  os.read("a", &tmp);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, StoreOp::Write);
  EXPECT_EQ(seen[0].second, "a");
  EXPECT_EQ(seen[1].first, StoreOp::Read);
}

}  // namespace
}  // namespace mantle::store
