#include <gtest/gtest.h>

#include "cluster/balancer.hpp"

namespace mantle::cluster {
namespace {

std::vector<ExportCandidate> make_candidates(std::vector<double> loads) {
  // Candidates arrive sorted by descending load, as gather_candidates
  // guarantees.
  std::sort(loads.begin(), loads.end(), std::greater<>());
  std::vector<ExportCandidate> out;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    ExportCandidate c;
    c.frag = {static_cast<mantle::mds::InodeId>(i + 2), {}};
    c.load = loads[i];
    c.entries = 10;
    out.push_back(c);
  }
  return out;
}

TEST(Selector, BigFirstStopsAtTarget) {
  const auto c = make_candidates({50, 30, 20, 10});
  const auto picks = run_selector("big_first", c, 60.0);
  ASSERT_EQ(picks.size(), 2u);  // 50 + 30 = 80 >= 60
  EXPECT_DOUBLE_EQ(selection_load(c, picks), 80.0);
}

TEST(Selector, SmallFirstStopsAtTarget) {
  const auto c = make_candidates({50, 30, 20, 10});
  const auto picks = run_selector("small_first", c, 25.0);
  EXPECT_DOUBLE_EQ(selection_load(c, picks), 30.0);  // 10 + 20
}

TEST(Selector, HalfIgnoresTarget) {
  const auto c = make_candidates({50, 30, 20, 10});
  const auto picks = run_selector("half", c, 1.0);
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_DOUBLE_EQ(selection_load(c, picks), 80.0);  // first half: 50+30
  // Odd counts round up.
  const auto c5 = make_candidates({5, 4, 3, 2, 1});
  EXPECT_EQ(run_selector("half", c5, 1.0).size(), 3u);
}

TEST(Selector, UnknownNamePicksNothing) {
  const auto c = make_candidates({10, 5});
  EXPECT_TRUE(run_selector("nonsense", c, 5.0).empty());
}

TEST(Selector, EmptyOrZeroTarget) {
  EXPECT_TRUE(run_selector("big_first", {}, 10.0).empty());
  const auto c = make_candidates({10});
  EXPECT_TRUE(run_selector("big_first", c, 0.0).empty());
}

TEST(Selector, PaperSection223Example) {
  // The paper's anecdote: dirfrag loads 12.7, 13.3, 13.3, 14.6, 15.7,
  // 13.5, 13.7, 14.6 with target 55.6. The original balancer scaled the
  // target by 0.8 (mds_bal_need_min) and so shipped only 3 dirfrags,
  // 15.7 + 14.6 + 14.6 = 44.9, instead of half the load. Against the
  // unscaled target, big_small gets closest and Mantle picks it (the
  // paper quotes a distance of 0.5; our alternation lands at 0.7 —
  // 15.7 + 12.7 + 14.6 + 13.3 = 56.3 — which still wins by a wide margin;
  // see EXPERIMENTS.md).
  const auto c = make_candidates({12.7, 13.3, 13.3, 14.6, 15.7, 13.5, 13.7, 14.6});
  const double target = 55.6;

  const auto scaled = run_selector("big_first", c, target * 0.8);
  ASSERT_EQ(scaled.size(), 3u);
  EXPECT_NEAR(selection_load(c, scaled), 44.9, 1e-9);

  const auto bs = run_selector("big_small", c, target);
  EXPECT_NEAR(selection_load(c, bs), 56.3, 1e-9);

  const auto best = best_selection({"big_first", "small_first", "big_small", "half"},
                                   c, target);
  EXPECT_NEAR(selection_load(c, best), 56.3, 1e-9);  // big_small wins
}

TEST(Selector, BestSelectionFallsBackAcrossSelectors) {
  const auto c = make_candidates({40, 35, 25});
  // target 50: big_first -> 75 (dist 25); small_first -> 60 (dist 10);
  // big_small -> 40+25 = 65 (dist 15); half -> 75.
  const auto best = best_selection({"big_first", "small_first", "big_small", "half"},
                                   c, 50.0);
  EXPECT_DOUBLE_EQ(selection_load(c, best), 60.0);
}

TEST(Selector, BestSelectionEmptyWhenNothingPicks) {
  EXPECT_TRUE(best_selection({"big_first"}, {}, 10.0).empty());
  const auto c = make_candidates({10});
  EXPECT_TRUE(best_selection({"bogus"}, c, 10.0).empty());
}

}  // namespace
}  // namespace mantle::cluster
