#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "balancers/builtin.hpp"

namespace mantle::cluster {
namespace {

using mantle::mds::DirFragId;
using mantle::mds::frag_t;
using mantle::mds::InodeId;
using mantle::mds::kNoInode;

struct Harness {
  sim::Engine engine;
  MdsCluster cluster;
  std::vector<Reply> replies;

  explicit Harness(int num_mds, ClusterConfig cfg = {})
      : cluster(engine, [&] {
          cfg.num_mds = num_mds;
          return cfg;
        }()) {
    cluster.set_reply_handler([this](const Reply& r) { replies.push_back(r); });
  }

  /// Issue one request and run the engine dry; returns the reply.
  Reply do_op(OpType op, InodeId dir, const std::string& name,
              mantle::mds::MdsRank guess = 0, int client = 0) {
    static std::uint64_t next_id = 1;
    Request r;
    r.id = next_id++;
    r.client = client;
    r.op = op;
    r.dir = dir;
    r.name = name;
    r.issued_at = engine.now();
    const std::size_t before = replies.size();
    cluster.client_submit(std::move(r), guess);
    engine.run();
    EXPECT_EQ(replies.size(), before + 1);
    return replies.back();
  }
};

TEST(Cluster, ServesCreateAndLookup) {
  Harness h(1);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "dir");
  ASSERT_TRUE(mk.ok);
  const InodeId dir = mk.result_ino;
  EXPECT_TRUE(h.do_op(OpType::Create, dir, "file").ok);
  EXPECT_TRUE(h.do_op(OpType::Lookup, dir, "file").ok);
  EXPECT_FALSE(h.do_op(OpType::Lookup, dir, "missing").ok);
  EXPECT_TRUE(h.do_op(OpType::Readdir, dir, "").ok);
  EXPECT_TRUE(h.do_op(OpType::Unlink, dir, "file").ok);
  EXPECT_FALSE(h.do_op(OpType::Lookup, dir, "file").ok);
}

TEST(Cluster, RepliesTakeTimeAndCarryServer) {
  Harness h(1);
  const Reply r = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d");
  EXPECT_GT(r.finished_at, r.issued_at);
  EXPECT_EQ(r.served_by, 0);
  EXPECT_EQ(r.hops, 0);
}

TEST(Cluster, UnknownDirectoryFails) {
  Harness h(1);
  const Reply r = h.do_op(OpType::Create, 424242, "x");
  EXPECT_FALSE(r.ok);
}

TEST(Cluster, RootAuthorityStartsAtRankZero) {
  Harness h(3);
  EXPECT_EQ(h.cluster.auth_of({h.cluster.ns().root(), frag_t()}), 0);
  EXPECT_EQ(h.cluster.subtree_roots().size(), 1u);
  EXPECT_EQ(h.cluster.roots_of(0).size(), 1u);
  EXPECT_TRUE(h.cluster.roots_of(1).empty());
}

TEST(Cluster, MisdirectedRequestForwards) {
  Harness h(2);
  // Everything is owned by rank 0, but the client guesses rank 1.
  const Reply r = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d", /*guess=*/1);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.served_by, 0);
  EXPECT_EQ(r.hops, 1);
  EXPECT_EQ(h.cluster.node(1).stats().forwards_out, 1u);
  EXPECT_EQ(h.cluster.node(0).stats().hits, 1u);
}

TEST(Cluster, ExportMovesAuthorityAndSubtree) {
  Harness h(2);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "proj");
  const InodeId proj = mk.result_ino;
  const Reply sub = h.do_op(OpType::Mkdir, proj, "sub");
  const InodeId subdir = sub.result_ino;
  h.do_op(OpType::Create, subdir, "f");

  const DirFragId frag{proj, frag_t()};
  ASSERT_TRUE(h.cluster.export_subtree(frag, 1));
  h.engine.run();

  EXPECT_EQ(h.cluster.auth_of(frag), 1);
  EXPECT_EQ(h.cluster.auth_of({subdir, frag_t()}), 1);
  // Root stays with rank 0.
  EXPECT_EQ(h.cluster.auth_of({h.cluster.ns().root(), frag_t()}), 0);
  ASSERT_EQ(h.cluster.migrations().size(), 1u);
  EXPECT_EQ(h.cluster.migrations()[0].entries, 2u);  // "sub" + "f"
  EXPECT_EQ(h.cluster.subtree_roots().at(frag), 1);
  EXPECT_EQ(h.cluster.node(0).stats().exports, 1u);
  EXPECT_EQ(h.cluster.node(1).stats().imports, 1u);
}

TEST(Cluster, ExportToSelfOrInvalidRankRejected) {
  Harness h(2);
  const DirFragId root{h.cluster.ns().root(), frag_t()};
  EXPECT_FALSE(h.cluster.export_subtree(root, 0));   // already owner
  EXPECT_FALSE(h.cluster.export_subtree(root, 7));   // no such rank
  EXPECT_FALSE(h.cluster.export_subtree({999, frag_t()}, 1));  // no such frag
}

TEST(Cluster, RequestsDuringMigrationAreDeferredThenServedByImporter) {
  Harness h(2);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d");
  const InodeId dir = mk.result_ino;
  // Bulk up the subtree so the migration takes a while.
  for (int i = 0; i < 200; ++i) h.do_op(OpType::Create, dir, "f" + std::to_string(i));

  ASSERT_TRUE(h.cluster.export_subtree({dir, frag_t()}, 1));
  EXPECT_TRUE(h.cluster.is_frozen({dir, frag_t()}));

  // Issue a request mid-migration; it must be answered by the importer.
  Request r;
  r.id = 999999;
  r.client = 0;
  r.op = OpType::Create;
  r.dir = dir;
  r.name = "late";
  r.issued_at = h.engine.now();
  h.cluster.client_submit(std::move(r), 0);
  h.engine.run();

  ASSERT_FALSE(h.replies.empty());
  const Reply& last = h.replies.back();
  EXPECT_EQ(last.req_id, 999999u);
  EXPECT_TRUE(last.ok);
  EXPECT_EQ(last.served_by, 1);
  EXPECT_FALSE(h.cluster.is_frozen({dir, frag_t()}));
}

TEST(Cluster, MigrationFlushesSessionsAndStallsClients) {
  Harness h(2);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d", 0, /*client=*/0);
  const InodeId dir = mk.result_ino;
  h.do_op(OpType::Create, dir, "a", 0, /*client=*/1);
  h.do_op(OpType::Create, dir, "b", 0, /*client=*/2);

  ASSERT_TRUE(h.cluster.export_subtree({dir, frag_t()}, 1));
  h.engine.run();

  // Clients 0, 1, 2 all had sessions with the exporter.
  EXPECT_EQ(h.cluster.total_sessions_flushed(), 3u);
  ASSERT_EQ(h.cluster.migrations().size(), 1u);
  EXPECT_EQ(h.cluster.migrations()[0].sessions_flushed, 3u);
}

TEST(Cluster, MigrationDurationScalesWithEntries) {
  Harness big(2);
  Harness small(2);
  for (auto* h : {&big, &small}) {
    const Reply mk = h->do_op(OpType::Mkdir, h->cluster.ns().root(), "d");
    const int files = h == &big ? 500 : 5;
    for (int i = 0; i < files; ++i)
      h->do_op(OpType::Create, mk.result_ino, "f" + std::to_string(i));
    const InodeId dir = mk.result_ino;
    ASSERT_TRUE(h->cluster.export_subtree({dir, frag_t()}, 1));
    h->engine.run();
  }
  const auto dur = [](const Harness& h) {
    const MigrationRecord& m = h.cluster.migrations().at(0);
    return m.finished - m.started;
  };
  EXPECT_GT(dur(big), dur(small));
}

TEST(Cluster, DirfragSplitsAtThreshold) {
  ClusterConfig cfg;
  cfg.split_size = 100;
  cfg.split_bits = 3;
  Harness h(1, cfg);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "big");
  const InodeId dir = mk.result_ino;
  for (int i = 0; i < 150; ++i)
    h.do_op(OpType::Create, dir, "f" + std::to_string(i));
  // The single fragment must have split into 8 (2^3) once it crossed 100.
  EXPECT_EQ(h.cluster.ns().dir(dir)->frags.size(), 8u);
  EXPECT_EQ(h.cluster.ns().dir(dir)->num_entries(), 150u);
}

TEST(Cluster, SplitOfSubtreeRootPreservesRootSet) {
  ClusterConfig cfg;
  cfg.split_size = 50;
  Harness h(2, cfg);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d");
  const InodeId dir = mk.result_ino;
  // Make it a subtree root owned by rank 1, then grow it past the split.
  ASSERT_TRUE(h.cluster.export_subtree({dir, frag_t()}, 1));
  h.engine.run();
  for (int i = 0; i < 80; ++i)
    h.do_op(OpType::Create, dir, "f" + std::to_string(i), /*guess=*/1);
  // The root entry for the whole frag is replaced by its children, all
  // owned by rank 1.
  EXPECT_EQ(h.cluster.subtree_roots().count({dir, frag_t()}), 0u);
  EXPECT_EQ(h.cluster.roots_of(1).size(), 8u);
  EXPECT_EQ(h.cluster.auth_entry_counts()[1], 80u);
}

TEST(Cluster, SubtreePopFiltersByOwner) {
  Harness h(2);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "a");
  const InodeId a = mk.result_ino;
  const Reply mkb = h.do_op(OpType::Mkdir, a, "b");
  const InodeId b = mkb.result_ino;
  for (int i = 0; i < 10; ++i) h.do_op(OpType::Create, b, "f" + std::to_string(i));

  // Give /a/b to rank 1; /a stays with rank 0.
  ASSERT_TRUE(h.cluster.export_subtree({b, frag_t()}, 1));
  h.engine.run();

  const Time now = h.engine.now();
  const PopSnapshot mine = h.cluster.subtree_pop({a, frag_t()}, 0, now);
  const PopSnapshot all = h.cluster.subtree_pop({a, frag_t()},
                                                mantle::mds::kNoRank, now);
  const PopSnapshot theirs = h.cluster.subtree_pop({b, frag_t()}, 1, now);
  // Rank 0's view of /a excludes the nested foreign subtree /a/b.
  EXPECT_LT(mine.iwr, all.iwr);
  EXPECT_GT(theirs.iwr, 0.0);  // the creates heated /a/b
  EXPECT_EQ(h.cluster.subtree_entry_count({a, frag_t()}, 0), 1u);   // just "b"
  EXPECT_EQ(h.cluster.subtree_entry_count({b, frag_t()}, 1), 10u);  // the files
}

TEST(Cluster, FragContains) {
  Harness h(1);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "a");
  const Reply mkb = h.do_op(OpType::Mkdir, mk.result_ino, "b");
  const DirFragId root{h.cluster.ns().root(), frag_t()};
  const DirFragId a{mk.result_ino, frag_t()};
  const DirFragId b{mkb.result_ino, frag_t()};
  EXPECT_TRUE(h.cluster.frag_contains(root, a));
  EXPECT_TRUE(h.cluster.frag_contains(root, b));
  EXPECT_TRUE(h.cluster.frag_contains(a, b));
  EXPECT_FALSE(h.cluster.frag_contains(a, root));
  EXPECT_FALSE(h.cluster.frag_contains(b, a));
  EXPECT_TRUE(h.cluster.frag_contains(a, a));
}

TEST(Cluster, JournalsRecordMigrationEvents) {
  Harness h(2);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d");
  ASSERT_TRUE(h.cluster.export_subtree({mk.result_ino, frag_t()}, 1));
  h.engine.run();
  std::string j0;
  ASSERT_TRUE(h.cluster.object_store().read("mds0.journal", &j0).ok);
  EXPECT_NE(j0.find("EExport"), std::string::npos);
  EXPECT_NE(j0.find("EExportCommit"), std::string::npos);
  std::string j1;
  ASSERT_TRUE(h.cluster.object_store().read("mds1.journal", &j1).ok);
  EXPECT_NE(j1.find("EImportStart"), std::string::npos);
  EXPECT_NE(j1.find("EImportCommit"), std::string::npos);
}

TEST(Cluster, TickProducesHeartbeatMetrics) {
  Harness h(2);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d");
  for (int i = 0; i < 50; ++i)
    h.do_op(OpType::Create, mk.result_ino, "f" + std::to_string(i));
  HeartbeatPayload hb = h.cluster.node(0).measure();
  EXPECT_EQ(hb.rank, 0);
  EXPECT_GT(hb.auth_metaload, 0.0);
  EXPECT_GE(hb.all_metaload, hb.auth_metaload);
  EXPECT_GE(hb.mem_pct, 0.0);
  // Rank 1 owns nothing.
  HeartbeatPayload hb1 = h.cluster.node(1).measure();
  EXPECT_DOUBLE_EQ(hb1.auth_metaload, 0.0);
}

}  // namespace
}  // namespace mantle::cluster
