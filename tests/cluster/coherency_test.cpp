#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace mantle::cluster {
namespace {

using mantle::mds::frag_t;
using mantle::mds::InodeId;

struct Harness {
  sim::Engine engine;
  MdsCluster cluster;
  std::vector<Reply> replies;

  explicit Harness(int num_mds, ClusterConfig cfg = {})
      : cluster(engine, [&] {
          cfg.num_mds = num_mds;
          return cfg;
        }()) {
    cluster.set_reply_handler([this](const Reply& r) { replies.push_back(r); });
  }

  Reply do_op(OpType op, InodeId dir, const std::string& name,
              mantle::mds::MdsRank guess = 0, int client = 0) {
    static std::uint64_t next_id = 1;
    Request r;
    r.id = next_id++;
    r.client = client;
    r.op = op;
    r.dir = dir;
    r.name = name;
    r.issued_at = engine.now();
    cluster.client_submit(std::move(r), guess);
    engine.run();
    return replies.back();
  }
};

TEST(Coherency, RemotePrefixOpsCountedAfterMigration) {
  Harness h(2);
  const InodeId d = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d").result_ino;
  h.do_op(OpType::Create, d, "before");
  EXPECT_EQ(h.cluster.node(0).stats().remote_prefix_ops, 0u);

  // Move /d to mds1; its parent dentry stays with mds0, so every op mds1
  // now serves pays the replicated-prefix tax.
  ASSERT_TRUE(h.cluster.export_subtree({d, frag_t()}, 1));
  h.engine.run();
  const Reply r = h.do_op(OpType::Create, d, "after", /*guess=*/1);
  EXPECT_EQ(r.served_by, 1);
  EXPECT_EQ(h.cluster.node(1).stats().remote_prefix_ops, 1u);
}

TEST(Coherency, ScatterGatherCostScalesWithSharers) {
  // Same op on a directory whose fragments span 1 vs 3 MDS nodes: the
  // 3-sharer create takes strictly longer.
  auto timed_create = [](int sharers) {
    ClusterConfig cfg;
    cfg.svc_jitter = 0.0;  // deterministic timing
    Harness h(3, cfg);
    const InodeId d =
        h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d").result_ino;
    for (int i = 0; i < 64; ++i) h.do_op(OpType::Create, d, "f" + std::to_string(i));
    h.cluster.ns().split({d, frag_t()}, 2, h.engine.now());
    if (sharers >= 2) {
      const auto& frags = h.cluster.ns().dir(d)->frags;
      auto it = frags.begin();
      std::vector<frag_t> fs;
      for (const auto& [f, df] : frags) fs.push_back(f);
      (void)it;
      h.cluster.export_subtree({d, fs[0]}, 1);
      if (sharers >= 3) h.cluster.export_subtree({d, fs[1]}, 2);
      h.engine.run();
    }
    // Create through the still-mds0-owned fragment.
    std::string name = "probe";
    int suffix = 0;
    while (h.cluster.auth_of(h.cluster.ns().frag_of(d, name)) != 0)
      name = "probe" + std::to_string(++suffix);
    // Probe from a client with no prior session: immune to the
    // session-flush stall caused by the setup migrations.
    const Reply r = h.do_op(OpType::Create, d, name, 0, /*client=*/7);
    EXPECT_TRUE(r.ok);
    return r.finished_at - r.issued_at;
  };
  const Time t1 = timed_create(1);
  const Time t2 = timed_create(2);
  const Time t3 = timed_create(3);
  EXPECT_GT(t2, t1);
  EXPECT_GT(t3, t2);
  // Quadratic growth: the 3-sharer penalty is 4x the 2-sharer one.
  ClusterConfig ref;
  EXPECT_EQ(t2 - t1, ref.svc_scatter_gather);
  EXPECT_EQ(t3 - t1, 4 * ref.svc_scatter_gather);
}

TEST(Coherency, ReadsDoNotPayScatterGather) {
  ClusterConfig cfg;
  cfg.svc_jitter = 0.0;
  Harness h(2, cfg);
  const InodeId d = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d").result_ino;
  for (int i = 0; i < 32; ++i) h.do_op(OpType::Create, d, "f" + std::to_string(i));
  const Reply before = h.do_op(OpType::Getattr, d, "f0", 0, /*client=*/7);
  // Split and spread the dir over both nodes.
  h.cluster.ns().split({d, frag_t()}, 1, h.engine.now());
  std::vector<frag_t> fs;
  for (const auto& [f, df] : h.cluster.ns().dir(d)->frags) fs.push_back(f);
  h.cluster.export_subtree({d, fs[1]}, 1);
  h.engine.run();
  // A getattr served by the original authority costs the same as before.
  std::string name = "f0";
  for (int i = 0; i < 32; ++i) {
    name = "f" + std::to_string(i);
    if (h.cluster.auth_of(h.cluster.ns().frag_of(d, name)) == 0) break;
  }
  const Reply after = h.do_op(OpType::Getattr, d, name, 0, /*client=*/8);
  EXPECT_EQ(after.finished_at - after.issued_at,
            before.finished_at - before.issued_at);
}

TEST(Coherency, ReplyCarriesServingFragment) {
  Harness h(1);
  const InodeId d = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d").result_ino;
  for (int i = 0; i < 10; ++i) h.do_op(OpType::Create, d, "f" + std::to_string(i));
  h.cluster.ns().split({d, frag_t()}, 2, h.engine.now());
  const Reply r = h.do_op(OpType::Lookup, d, "f3");
  EXPECT_TRUE(r.frag.contains(mantle::mds::hash_dentry_name("f3")));
  EXPECT_EQ(r.frag.bits(), 2);
}

TEST(Jitter, TicksAndHeartbeatsAreSeedDeterministic) {
  // Ticks re-arm themselves forever, so this test must run the engine
  // only up to a horizon (engine.run() would never drain after start()).
  auto run_sig = [](std::uint64_t seed) {
    ClusterConfig cfg;
    cfg.seed = seed;
    cfg.bal_interval = 100 * mantle::kMsec;
    Harness h(3, cfg);
    const InodeId d =
        h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d").result_ino;
    for (int i = 0; i < 50; ++i)
      h.do_op(OpType::Create, d, "f" + std::to_string(i));
    h.cluster.start();
    h.engine.run_until(h.engine.now() + mantle::kSec);
    // Signature: the (jittered) time of the last dispatched tick.
    return h.engine.now();
  };
  const Time a = run_sig(5);
  EXPECT_EQ(a, run_sig(5));
  EXPECT_GT(a, 0u);
}

}  // namespace
}  // namespace mantle::cluster
