#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/scenario.hpp"
#include "workloads/create_heavy.hpp"

namespace mantle::cluster {
namespace {

using mantle::mds::frag_t;
using mantle::mds::InodeId;

struct Harness {
  sim::Engine engine;
  MdsCluster cluster;

  explicit Harness(int num_mds, ClusterConfig cfg = {})
      : cluster(engine, [&] {
          cfg.num_mds = num_mds;
          return cfg;
        }()) {
    cluster.set_reply_handler([](const Reply&) {});
  }

  InodeId mkdir(InodeId parent, const std::string& name) {
    return cluster.ns().mkdir(parent, name, engine.now());
  }
};

TEST(Merge, SmallFragmentedDirMergesBack) {
  ClusterConfig cfg;
  cfg.merge_size = 50;
  Harness h(1, cfg);
  const InodeId d = h.mkdir(h.cluster.ns().root(), "d");
  for (int i = 0; i < 10; ++i) h.cluster.ns().create(d, "f" + std::to_string(i), 0);
  h.cluster.ns().split({d, frag_t()}, 3, 0);
  ASSERT_EQ(h.cluster.ns().dir(d)->frags.size(), 8u);
  EXPECT_TRUE(h.cluster.maybe_merge(d));
  EXPECT_EQ(h.cluster.ns().dir(d)->frags.size(), 1u);
  EXPECT_EQ(h.cluster.ns().dir(d)->num_entries(), 10u);
}

TEST(Merge, RefusesAboveThreshold) {
  ClusterConfig cfg;
  cfg.merge_size = 5;
  Harness h(1, cfg);
  const InodeId d = h.mkdir(h.cluster.ns().root(), "d");
  for (int i = 0; i < 10; ++i) h.cluster.ns().create(d, "f" + std::to_string(i), 0);
  h.cluster.ns().split({d, frag_t()}, 2, 0);
  EXPECT_FALSE(h.cluster.maybe_merge(d));
  EXPECT_EQ(h.cluster.ns().dir(d)->frags.size(), 4u);
}

TEST(Merge, RefusesAcrossAuthBoundary) {
  Harness h(2);
  const InodeId d = h.mkdir(h.cluster.ns().root(), "d");
  h.cluster.ns().split({d, frag_t()}, 1, 0);
  std::vector<frag_t> fs;
  for (const auto& [f, df] : h.cluster.ns().dir(d)->frags) fs.push_back(f);
  ASSERT_TRUE(h.cluster.export_subtree({d, fs[0]}, 1));
  h.engine.run();
  // Fragments now owned by different ranks: merging is impossible.
  EXPECT_FALSE(h.cluster.maybe_merge(d));
}

TEST(Merge, CollapsesSubtreeRootEntries) {
  Harness h(2);
  const InodeId d = h.mkdir(h.cluster.ns().root(), "d");
  h.cluster.ns().split({d, frag_t()}, 1, 0);
  std::vector<frag_t> fs;
  for (const auto& [f, df] : h.cluster.ns().dir(d)->frags) fs.push_back(f);
  ASSERT_TRUE(h.cluster.export_subtree({d, fs[0]}, 1));
  h.engine.run();
  ASSERT_TRUE(h.cluster.export_subtree({d, fs[1]}, 1));
  h.engine.run();
  // Both fragments are separate subtree roots owned by rank 1.
  EXPECT_EQ(h.cluster.roots_of(1).size(), 2u);
  ASSERT_TRUE(h.cluster.maybe_merge(d));
  // The two roots collapse into one covering the whole directory.
  const auto roots = h.cluster.roots_of(1);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], (mantle::mds::DirFragId{d, frag_t()}));
  EXPECT_EQ(h.cluster.auth_of({d, frag_t()}), 1);
}

TEST(Merge, SingleFragmentIsNoOp) {
  Harness h(1);
  const InodeId d = h.mkdir(h.cluster.ns().root(), "d");
  EXPECT_FALSE(h.cluster.maybe_merge(d));
}

TEST(Merge, CreateDeleteCycleMergesViaUnlinkPath) {
  // End to end: a create storm fragments the directory; deleting
  // everything merges it back through the Unlink completion hook.
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 1;
  cfg.cluster.split_size = 200;
  cfg.cluster.merge_size = 60;
  sim::Scenario s(cfg);
  workloads::CreateHeavyWorkload::Options opt;
  opt.dir = "/spool";
  opt.num_files = 500;
  opt.think_mean = 20;
  opt.unlink_after = true;
  s.add_client(std::make_unique<workloads::CreateHeavyWorkload>(opt));
  s.run();
  const auto res = s.cluster().ns().resolve("/spool");
  ASSERT_TRUE(res.found);
  EXPECT_EQ(s.cluster().ns().dir(res.ino)->num_entries(), 0u);
  EXPECT_EQ(s.cluster().ns().dir(res.ino)->frags.size(), 1u)
      << "fragments should have merged back as the dir emptied";
  EXPECT_EQ(s.client(0).ops_failed(), 0u);
}

}  // namespace
}  // namespace mantle::cluster
