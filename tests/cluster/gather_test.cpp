#include <gtest/gtest.h>

#include "balancers/builtin.hpp"
#include "cluster/cluster.hpp"

/// Tests for the namespace-partitioning mechanism: export-candidate
/// gathering with drill-down ("subtrees are divided and migrated only if
/// their ancestors are too popular to migrate", §3.2).

namespace mantle::cluster {
namespace {

using mantle::mds::frag_t;
using mantle::mds::InodeId;
using mantle::mds::MetaOp;

struct Harness {
  sim::Engine engine;
  MdsCluster cluster;
  balancers::AdaptableBalancer policy;  // metaload = IWR + IRD

  explicit Harness(int num_mds = 2) : cluster(engine, [&] {
    ClusterConfig cfg;
    cfg.num_mds = num_mds;
    return cfg;
  }()) {
    cluster.set_reply_handler([](const Reply&) {});
  }

  InodeId mkdir(InodeId parent, const std::string& name) {
    return cluster.ns().mkdir(parent, name, engine.now());
  }

  void heat(InodeId dir, const std::string& name, int hits) {
    const auto id = cluster.ns().frag_of(dir, name);
    for (int i = 0; i < hits; ++i)
      cluster.ns().record_op(id, MetaOp::IWR, engine.now());
  }
};

TEST(Gather, RootAloneWhenCold) {
  Harness h;
  const auto pool = h.cluster.gather_candidates(0, 100.0, h.policy, 0);
  // Nothing hot and nothing below the root: pool is empty or negligible.
  double total = 0.0;
  for (const auto& c : pool) total += c.load;
  EXPECT_DOUBLE_EQ(total, 0.0);
}

TEST(Gather, DrillsIntoHotRoot) {
  Harness h;
  const InodeId a = h.mkdir(h.cluster.ns().root(), "a");
  const InodeId b = h.mkdir(h.cluster.ns().root(), "b");
  h.cluster.ns().create(a, "fa", 0);
  h.cluster.ns().create(b, "fb", 0);
  h.heat(a, "fa", 60);
  h.heat(b, "fb", 40);

  // Target 50 out of ~100 total: the root (load ~100) is too big to ship
  // whole, so the pool must contain the child subtrees instead.
  const auto pool = h.cluster.gather_candidates(0, 50.0, h.policy, h.engine.now());
  ASSERT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool[0].frag.ino, a);  // sorted by descending load
  EXPECT_EQ(pool[1].frag.ino, b);
  EXPECT_NEAR(pool[0].load, 60.0, 1.0);
  EXPECT_NEAR(pool[1].load, 40.0, 1.0);
  EXPECT_EQ(pool[0].entries, 1u);
}

TEST(Gather, KeepsWholeSubtreeWhenItFitsTheTarget) {
  Harness h;
  const InodeId a = h.mkdir(h.cluster.ns().root(), "a");
  const InodeId deep = h.mkdir(a, "deep");
  h.cluster.ns().create(deep, "f", 0);
  h.heat(deep, "f", 30);
  const InodeId b = h.mkdir(h.cluster.ns().root(), "b");
  h.cluster.ns().create(b, "g", 0);
  h.heat(b, "g", 25);

  // Root load ~55 exceeds the target (35) and drills; both children fit
  // whole, so /a is offered as one candidate with its nested subtree —
  // no needless descent into /a/deep.
  const auto pool = h.cluster.gather_candidates(0, 35.0, h.policy, h.engine.now());
  ASSERT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool[0].frag.ino, a);
  EXPECT_NEAR(pool[0].load, 30.0, 1.0);
  EXPECT_EQ(pool[0].entries, 2u);  // "deep" + "f"
  EXPECT_EQ(pool[1].frag.ino, b);
}

TEST(Gather, HotFlatDirectoryIsExportableAsIs) {
  Harness h;
  const InodeId hot = h.mkdir(h.cluster.ns().root(), "hot");
  for (int i = 0; i < 20; ++i) {
    h.cluster.ns().create(hot, "f" + std::to_string(i), 0);
    h.heat(hot, "f" + std::to_string(i), 10);
  }
  // Target far below the flat directory's load: nothing to drill into
  // (no subdirectories), so the dirfrag itself stays in the pool.
  const auto pool = h.cluster.gather_candidates(0, 10.0, h.policy, h.engine.now());
  ASSERT_FALSE(pool.empty());
  EXPECT_EQ(pool[0].frag.ino, hot);
  EXPECT_NEAR(pool[0].load, 200.0, 2.0);
}

TEST(Gather, SkipsFrozenSubtrees) {
  Harness h;
  const InodeId a = h.mkdir(h.cluster.ns().root(), "a");
  const InodeId b = h.mkdir(h.cluster.ns().root(), "b");
  h.cluster.ns().create(a, "fa", 0);
  h.cluster.ns().create(b, "fb", 0);
  h.heat(a, "fa", 50);
  h.heat(b, "fb", 50);
  // Freeze /a by starting its migration.
  ASSERT_TRUE(h.cluster.export_subtree({a, frag_t()}, 1));
  const auto pool = h.cluster.gather_candidates(0, 40.0, h.policy, h.engine.now());
  for (const auto& c : pool) EXPECT_NE(c.frag.ino, a);
}

TEST(Gather, ExcludesForeignSubtrees) {
  Harness h;
  const InodeId a = h.mkdir(h.cluster.ns().root(), "a");
  const InodeId b = h.mkdir(h.cluster.ns().root(), "b");
  h.cluster.ns().create(a, "fa", 0);
  h.cluster.ns().create(b, "fb", 0);
  ASSERT_TRUE(h.cluster.export_subtree({b, frag_t()}, 1));
  h.engine.run();
  h.heat(a, "fa", 50);
  h.heat(b, "fb", 50);
  // Rank 0's candidates never include rank 1's subtree /b.
  const auto pool = h.cluster.gather_candidates(0, 40.0, h.policy, h.engine.now());
  for (const auto& c : pool) EXPECT_NE(c.frag.ino, b);
  // And rank 1's pool is exactly /b.
  const auto pool1 = h.cluster.gather_candidates(1, 40.0, h.policy, h.engine.now());
  ASSERT_FALSE(pool1.empty());
  EXPECT_EQ(pool1[0].frag.ino, b);
}

TEST(Gather, DrillDepthIsBounded) {
  Harness h;
  // A pathological 12-deep chain of hot directories.
  InodeId cur = h.cluster.ns().root();
  for (int i = 0; i < 12; ++i) cur = h.mkdir(cur, "lvl" + std::to_string(i));
  h.cluster.ns().create(cur, "leaf", 0);
  h.heat(cur, "leaf", 100);
  // Tiny target forces drilling at every level; the bound stops it.
  const auto pool = h.cluster.gather_candidates(0, 0.5, h.policy, h.engine.now());
  ASSERT_FALSE(pool.empty());  // bounded drill still yields candidates
}

}  // namespace
}  // namespace mantle::cluster
