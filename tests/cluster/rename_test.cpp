#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "mds/namespace.hpp"

namespace mantle::cluster {
namespace {

using mantle::mds::frag_t;
using mantle::mds::InodeId;
using mantle::mds::kNoInode;
using mantle::mds::Namespace;

// -- mechanism level ---------------------------------------------------------

TEST(NamespaceRename, FileWithinDirectory) {
  Namespace ns;
  const InodeId d = ns.mkdir(ns.root(), "d", 0);
  const InodeId f = ns.create(d, "old", 0);
  ASSERT_TRUE(ns.rename(d, "old", d, "new"));
  EXPECT_EQ(ns.lookup(d, "old"), kNoInode);
  EXPECT_EQ(ns.lookup(d, "new"), f);
  EXPECT_EQ(ns.path_of(f), "/d/new");
}

TEST(NamespaceRename, FileAcrossDirectories) {
  Namespace ns;
  const InodeId a = ns.mkdir(ns.root(), "a", 0);
  const InodeId b = ns.mkdir(ns.root(), "b", 0);
  const InodeId f = ns.create(a, "file", 0);
  ASSERT_TRUE(ns.rename(a, "file", b, "file"));
  EXPECT_EQ(ns.lookup(a, "file"), kNoInode);
  EXPECT_EQ(ns.lookup(b, "file"), f);
  EXPECT_EQ(ns.inode(f)->parent, b);
}

TEST(NamespaceRename, DirectoryMovesWholeSubtree) {
  Namespace ns;
  const InodeId a = ns.mkdir(ns.root(), "a", 0);
  const InodeId b = ns.mkdir(ns.root(), "b", 0);
  const InodeId sub = ns.mkdir(a, "sub", 0);
  const InodeId f = ns.create(sub, "f", 0);
  ASSERT_TRUE(ns.rename(a, "sub", b, "moved"));
  EXPECT_EQ(ns.path_of(f), "/b/moved/f");
  EXPECT_TRUE(ns.resolve("/b/moved/f").found);
  EXPECT_FALSE(ns.resolve("/a/sub").found);
  // subtree_dirs bookkeeping followed the move.
  const auto under_b = ns.subtree_dirs(b);
  EXPECT_NE(std::find(under_b.begin(), under_b.end(), sub), under_b.end());
  const auto under_a = ns.subtree_dirs(a);
  EXPECT_EQ(std::find(under_a.begin(), under_a.end(), sub), under_a.end());
}

TEST(NamespaceRename, Failures) {
  Namespace ns;
  const InodeId a = ns.mkdir(ns.root(), "a", 0);
  const InodeId b = ns.mkdir(a, "b", 0);
  ns.create(a, "exists", 0);
  EXPECT_FALSE(ns.rename(a, "missing", a, "x"));        // no source
  EXPECT_FALSE(ns.rename(a, "b", a, "exists"));         // dst taken
  EXPECT_FALSE(ns.rename(a, "b", 424242, "x"));         // bad dst dir
  EXPECT_FALSE(ns.rename(ns.root(), "a", b, "loop"));   // cycle: a into a/b
  EXPECT_FALSE(ns.rename(ns.root(), "a", a, "self"));   // dir into itself
  EXPECT_TRUE(ns.resolve("/a/b").found);                // nothing changed
}

// -- cluster level -------------------------------------------------------------

struct Harness {
  sim::Engine engine;
  MdsCluster cluster;
  std::vector<Reply> replies;

  explicit Harness(int num_mds, ClusterConfig cfg = {})
      : cluster(engine, [&] {
          cfg.num_mds = num_mds;
          return cfg;
        }()) {
    cluster.set_reply_handler([this](const Reply& r) { replies.push_back(r); });
  }

  Reply rename(InodeId src, const std::string& sname, InodeId dst,
               const std::string& dname, int client = 0) {
    static std::uint64_t next_id = 900000;
    Request r;
    r.id = next_id++;
    r.client = client;
    r.op = OpType::Rename;
    r.dir = src;
    r.name = sname;
    r.dst_dir = dst;
    r.dst_name = dname;
    r.issued_at = engine.now();
    cluster.client_submit(std::move(r), 0);
    engine.run();
    return replies.back();
  }

  Reply do_op(OpType op, InodeId dir, const std::string& name, int client = 0) {
    static std::uint64_t next_id = 1;
    Request r;
    r.id = next_id++;
    r.client = client;
    r.op = op;
    r.dir = dir;
    r.name = name;
    r.issued_at = engine.now();
    cluster.client_submit(std::move(r), 0);
    engine.run();
    return replies.back();
  }
};

TEST(ClusterRename, LocalRenameSucceeds) {
  Harness h(1);
  const InodeId d = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d").result_ino;
  h.do_op(OpType::Create, d, "f");
  const Reply r = h.rename(d, "f", d, "g");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(h.cluster.ns().lookup(d, "g"), r.result_ino);
  EXPECT_EQ(h.cluster.total_sessions_flushed(), 0u);  // files don't flush
}

TEST(ClusterRename, CrossAuthDirectoryRenameFlushesSessions) {
  Harness h(2);
  const InodeId a = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "a").result_ino;
  const InodeId b = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "b").result_ino;
  const InodeId sub = h.do_op(OpType::Mkdir, a, "sub", /*client=*/1).result_ino;
  // Move /b to mds1 so the rename destination is foreign.
  ASSERT_TRUE(h.cluster.export_subtree({b, frag_t()}, 1));
  h.engine.run();
  ASSERT_EQ(h.cluster.total_sessions_flushed(), 2u);  // from the migration

  const Reply r = h.rename(a, "sub", b, "sub");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(h.cluster.ns().inode(sub)->parent, b);
  // The slave rename of a *directory* flushed the sessions again.
  EXPECT_GT(h.cluster.total_sessions_flushed(), 2u);
  // And the moved subtree followed its new parent's authority.
  EXPECT_EQ(h.cluster.auth_of({sub, frag_t()}), 1);
}

TEST(ClusterRename, CrossAuthRenameCostsMoreThanLocal) {
  ClusterConfig cfg;
  cfg.svc_jitter = 0.0;
  Harness h(2, cfg);
  const InodeId a = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "a").result_ino;
  const InodeId b = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "b").result_ino;
  h.do_op(OpType::Create, a, "f1");
  h.do_op(OpType::Create, a, "f2");

  const Reply local = h.rename(a, "f1", a, "f1x");
  ASSERT_TRUE(h.cluster.export_subtree({b, frag_t()}, 1));
  h.engine.run();
  const Reply remote = h.rename(a, "f2", b, "f2x");
  ASSERT_TRUE(local.ok);
  ASSERT_TRUE(remote.ok);
  EXPECT_GT(remote.finished_at - remote.issued_at,
            local.finished_at - local.issued_at);
}

TEST(ClusterRename, FailedRenameReportsError) {
  Harness h(1);
  const InodeId d = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d").result_ino;
  h.do_op(OpType::Create, d, "f");
  h.do_op(OpType::Create, d, "g");
  const Reply r = h.rename(d, "f", d, "g");  // destination exists
  EXPECT_FALSE(r.ok);
  EXPECT_NE(h.cluster.ns().lookup(d, "f"), kNoInode);
}

}  // namespace
}  // namespace mantle::cluster
