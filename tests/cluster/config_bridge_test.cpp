#include "cluster/config_bridge.hpp"

#include <gtest/gtest.h>

namespace mantle::cluster {
namespace {

TEST(ConfigBridge, DefaultsPassThrough) {
  const ClusterConfig base;
  const mantle::Config empty;
  const ClusterConfig out = apply_config(base, empty);
  EXPECT_EQ(out.split_size, base.split_size);
  EXPECT_EQ(out.bal_interval, base.bal_interval);
  EXPECT_EQ(out.num_mds, base.num_mds);
}

TEST(ConfigBridge, CephVocabularyKeys) {
  mantle::Config cfg;
  cfg.inject_args(
      "mds_bal_interval=5 mds_bal_split_size=10000 mds_bal_fragment_bits=4 "
      "mds_bal_need_min=0.8 mds_bal_merge_size=10");
  const ClusterConfig out = apply_config(ClusterConfig{}, cfg);
  EXPECT_EQ(out.bal_interval, 5 * kSec);  // seconds, like CephFS
  EXPECT_EQ(out.split_size, 10000u);
  EXPECT_EQ(out.split_bits, 4);
  EXPECT_DOUBLE_EQ(out.need_min_factor, 0.8);
  EXPECT_EQ(out.merge_size, 10u);
}

TEST(ConfigBridge, SimKeys) {
  mantle::Config cfg;
  cfg.inject_args(
      "sim_num_mds=5 sim_seed=99 sim_net_latency_us=250 sim_svc_create_us=300 "
      "sim_cpu_noise_pct=12.5 sim_session_flush_stall_us=5000 "
      "sim_trace_capacity=64");
  const ClusterConfig out = apply_config(ClusterConfig{}, cfg);
  EXPECT_EQ(out.num_mds, 5);
  EXPECT_EQ(out.seed, 99u);
  EXPECT_EQ(out.net_latency, 250u);
  EXPECT_EQ(out.svc_create, 300u);
  EXPECT_DOUBLE_EQ(out.cpu_noise_pct, 12.5);
  EXPECT_EQ(out.session_flush_stall, 5000u);
  EXPECT_EQ(out.trace_capacity, 64u);
}

TEST(ConfigBridge, FractionalBalInterval) {
  mantle::Config cfg;
  cfg.set("mds_bal_interval", "0.5");
  EXPECT_EQ(apply_config(ClusterConfig{}, cfg).bal_interval, 500 * kMsec);
}

TEST(ConfigBridge, UnknownKeysReported) {
  mantle::Config cfg;
  cfg.inject_args("mds_bal_split_size=1 mds_bal_metaload=IWR typo_key=3");
  const auto unknown = unknown_config_keys(cfg);
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo_key");
}

TEST(ConfigBridge, PolicyHooksAreNotUnknown) {
  mantle::Config cfg;
  cfg.inject_args("mds_bal_when=x mds_bal_where=y mds_bal_howmuch=z");
  EXPECT_TRUE(unknown_config_keys(cfg).empty());
}

TEST(ConfigBridge, HardeningKeys) {
  mantle::Config cfg;
  cfg.inject_args(
      "mds_bal_export_retry_max=5 mds_bal_export_retry_base_us=20000 "
      "mds_bal_export_retry_cap_us=2000000 mds_bal_export_stuck_ticks=7 "
      "mds_bal_hb_stale_guard=false mds_bal_laggy_readmit_ticks=3 "
      "mds_bal_laggy_factor=4.5");
  const ClusterConfig out = apply_config(ClusterConfig{}, cfg);
  EXPECT_EQ(out.export_retry_max, 5);
  EXPECT_EQ(out.export_retry_base, 20 * kMsec);
  EXPECT_EQ(out.export_retry_cap, 2 * kSec);
  EXPECT_EQ(out.export_stuck_ticks, 7);
  EXPECT_FALSE(out.hb_stale_guard);
  EXPECT_EQ(out.laggy_readmit_ticks, 3);
  EXPECT_DOUBLE_EQ(out.laggy_factor, 4.5);
  // None of the hardening keys should count as unknown.
  EXPECT_TRUE(unknown_config_keys(cfg).empty());
}

TEST(ConfigBridge, HardeningDefaultsPassThrough) {
  const ClusterConfig base;
  const ClusterConfig out = apply_config(base, mantle::Config{});
  EXPECT_EQ(out.export_retry_max, base.export_retry_max);
  EXPECT_EQ(out.export_retry_base, base.export_retry_base);
  EXPECT_EQ(out.export_retry_cap, base.export_retry_cap);
  EXPECT_EQ(out.export_stuck_ticks, base.export_stuck_ticks);
  EXPECT_TRUE(out.hb_stale_guard);
  EXPECT_EQ(out.laggy_readmit_ticks, base.laggy_readmit_ticks);
}

TEST(ConfigBridge, UnparsableValuesKeepDefaults) {
  mantle::Config cfg;
  cfg.set("mds_bal_split_size", "banana");
  const ClusterConfig out = apply_config(ClusterConfig{}, cfg);
  EXPECT_EQ(out.split_size, ClusterConfig{}.split_size);
}

}  // namespace
}  // namespace mantle::cluster
