#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"

/// Graceful-degradation hardening: the stale-epoch heartbeat guard, the
/// bounded export retry with exponential backoff, the stuck-export
/// watchdog and laggy-peer readmission hysteresis. Each test drives the
/// cluster directly (no scenario harness) so the failure modes are
/// constructed exactly, not hoped for.

namespace mantle::cluster {
namespace {

using mantle::mds::DirFragId;
using mantle::mds::frag_t;
using mantle::mds::InodeId;

struct Harness {
  sim::Engine engine;
  MdsCluster cluster;
  std::vector<Reply> replies;

  explicit Harness(int num_mds, ClusterConfig cfg = {})
      : cluster(engine, [&] {
          cfg.num_mds = num_mds;
          return cfg;
        }()) {
    cluster.set_reply_handler([this](const Reply& r) { replies.push_back(r); });
  }

  Reply do_op(OpType op, InodeId dir, const std::string& name) {
    static std::uint64_t next_id = 1;
    Request r;
    r.id = next_id++;
    r.client = 0;
    r.op = op;
    r.dir = dir;
    r.name = name;
    r.issued_at = engine.now();
    const std::size_t before = replies.size();
    cluster.client_submit(std::move(r), 0);
    engine.run();
    EXPECT_EQ(replies.size(), before + 1);
    return replies.back();
  }

  /// A directory with `files` entries under the root, owned by rank 0.
  DirFragId make_dir(const std::string& name, int files) {
    const Reply mk = do_op(OpType::Mkdir, cluster.ns().root(), name);
    EXPECT_TRUE(mk.ok);
    for (int i = 0; i < files; ++i)
      EXPECT_TRUE(do_op(OpType::Create, mk.result_ino,
                        "f" + std::to_string(i))
                      .ok);
    return {mk.result_ino, frag_t()};
  }

  std::size_t trace_count(obs::EventKind kind) const {
    std::size_t n = 0;
    for (const auto& e : cluster.trace().snapshot()) n += e.kind == kind;
    return n;
  }
};

HeartbeatPayload make_hb(mds::MdsRank rank, std::uint64_t epoch,
                         Time sent_at) {
  HeartbeatPayload hb;
  hb.rank = rank;
  hb.epoch = epoch;
  hb.sent_at = sent_at;
  hb.all_metaload = 1.0;
  return hb;
}

// ---------------------------------------------------------------------------
// Stale-epoch heartbeat guard (the seeded chaos bug, asserted directly).
// ---------------------------------------------------------------------------

TEST(Hardening, StaleEpochHeartbeatRejectedAfterCrash) {
  Harness h(3);
  auto& observer = h.cluster.node(1);

  observer.on_heartbeat(make_hb(0, 0, 100));
  EXPECT_EQ(observer.heartbeats()[0].sent_at, 100u);

  // Rank 0 dies: its next incarnation is epoch 1. A heartbeat duplicated
  // or delayed from before the crash still carries epoch 0.
  ASSERT_TRUE(h.cluster.crash_mds(0));
  EXPECT_EQ(h.cluster.crash_epoch(0), 1u);

  observer.on_heartbeat(make_hb(0, 0, 200));
  EXPECT_EQ(observer.heartbeats()[0].sent_at, 100u) << "stale epoch applied";
  EXPECT_EQ(h.cluster.stale_heartbeats_rejected(), 1u);
  EXPECT_EQ(h.trace_count(obs::EventKind::HeartbeatStaleRejected), 1u);

  // The new incarnation's payloads pass.
  observer.on_heartbeat(make_hb(0, 1, 300));
  EXPECT_EQ(observer.heartbeats()[0].sent_at, 300u);
  EXPECT_EQ(h.cluster.stale_heartbeats_rejected(), 1u);
}

TEST(Hardening, SameEpochOutOfOrderHeartbeatRejected) {
  Harness h(2);
  auto& observer = h.cluster.node(1);

  observer.on_heartbeat(make_hb(0, 0, 500));
  observer.on_heartbeat(make_hb(0, 0, 400));  // reordered in the network
  EXPECT_EQ(observer.heartbeats()[0].sent_at, 500u);
  EXPECT_EQ(h.cluster.stale_heartbeats_rejected(), 1u);

  // An exact duplicate (same epoch, same timestamp) is idempotent, not
  // stale: applying it changes nothing, so it is not counted.
  observer.on_heartbeat(make_hb(0, 0, 500));
  EXPECT_EQ(h.cluster.stale_heartbeats_rejected(), 1u);
}

TEST(Hardening, GuardOffRegressionAppliesStaleState) {
  // The seeded bug the chaos engine must rediscover via --no-stale-guard:
  // with the guard disabled, a pre-crash heartbeat overwrites fresher
  // post-crash state in the observer's table.
  ClusterConfig cfg;
  cfg.hb_stale_guard = false;
  Harness h(3, cfg);
  auto& observer = h.cluster.node(1);

  observer.on_heartbeat(make_hb(0, 1, 300));
  observer.on_heartbeat(make_hb(0, 0, 200));  // stale incarnation
  EXPECT_EQ(observer.heartbeats()[0].sent_at, 200u) << "guard unexpectedly on";
  EXPECT_EQ(observer.heartbeats()[0].epoch, 0u);
  EXPECT_EQ(h.cluster.stale_heartbeats_rejected(), 0u);
}

// ---------------------------------------------------------------------------
// Bounded export retry with exponential backoff.
// ---------------------------------------------------------------------------

TEST(Hardening, CrashAbortedExportRetriesAndCommits) {
  ClusterConfig cfg;
  cfg.export_retry_base = 10 * kMsec;
  cfg.export_retry_cap = 100 * kMsec;
  cfg.export_retry_max = 6;  // enough budget to outlast the replay window
  Harness h(3, cfg);
  const DirFragId d = h.make_dir("exported", 20);

  ASSERT_TRUE(h.cluster.export_subtree(d, 1));
  ASSERT_EQ(h.cluster.active_migration_count(), 1u);

  // The importer dies mid-2PC: the export aborts (no orphaned state) and
  // a retry is armed with backoff.
  ASSERT_TRUE(h.cluster.crash_mds(1));
  EXPECT_EQ(h.cluster.active_migration_count(), 0u);
  ASSERT_EQ(h.cluster.aborted_migrations().size(), 1u);
  EXPECT_EQ(h.cluster.aborted_migrations()[0].frag, d);
  EXPECT_GE(h.trace_count(obs::EventKind::ExportRetry), 1u);

  // Once the importer is back, a re-attempt lands the subtree there.
  ASSERT_TRUE(h.cluster.restart_mds(1));
  h.engine.run();
  bool committed = false;
  for (const auto& m : h.cluster.migrations())
    committed |= m.frag == d && m.to == 1;
  EXPECT_TRUE(committed) << "retry never re-exported the subtree";
  EXPECT_EQ(h.cluster.subtree_roots().at(d), 1);
}

TEST(Hardening, ExportRetryBudgetIsBounded) {
  ClusterConfig cfg;
  cfg.export_retry_base = 10 * kMsec;
  cfg.export_retry_cap = 40 * kMsec;
  cfg.export_retry_max = 2;
  Harness h(3, cfg);
  const DirFragId d = h.make_dir("exported", 20);

  ASSERT_TRUE(h.cluster.export_subtree(d, 1));
  ASSERT_TRUE(h.cluster.crash_mds(1));
  // The importer never comes back: every re-attempt is refused and
  // re-arms, until the budget is spent. The engine must run dry instead
  // of retrying forever.
  h.engine.run();
  EXPECT_LE(h.trace_count(obs::EventKind::ExportRetry),
            static_cast<std::size_t>(cfg.export_retry_max));
  EXPECT_EQ(h.cluster.active_migration_count(), 0u);
  for (const auto& m : h.cluster.migrations()) EXPECT_NE(m.frag, d);
}

// ---------------------------------------------------------------------------
// Stuck-export watchdog.
// ---------------------------------------------------------------------------

TEST(Hardening, StuckExportAbortedByWatchdog) {
  ClusterConfig cfg;
  cfg.bal_interval = 50 * kMsec;
  cfg.export_stuck_ticks = 1;   // wedged after one balance interval
  cfg.mig_base = 10 * kSec;     // the 2PC itself would take 10 s
  Harness h(3, cfg);
  const DirFragId d = h.make_dir("stuck", 20);

  ASSERT_TRUE(h.cluster.export_subtree(d, 1));
  h.engine.run();

  // Aborted by the watchdog, not committed; authority never moved and the
  // subtree is not left frozen (a new export of it is admissible).
  ASSERT_EQ(h.cluster.aborted_migrations().size(), 1u);
  EXPECT_TRUE(h.cluster.migrations().empty());
  EXPECT_EQ(h.cluster.auth_of(d), 0);
  EXPECT_FALSE(h.cluster.is_frozen(d));
  // A watchdog abort is not a crash abort: no retry is armed.
  EXPECT_EQ(h.trace_count(obs::EventKind::ExportRetry), 0u);
}

// ---------------------------------------------------------------------------
// Laggy-peer readmission hysteresis.
// ---------------------------------------------------------------------------

/// Captures the ClusterView each balance tick; orders no migrations.
struct CaptureBalancer final : Balancer {
  std::vector<ClusterView>* views;
  explicit CaptureBalancer(std::vector<ClusterView>* v) : views(v) {}
  std::string name() const override { return "capture"; }
  double metaload(const PopSnapshot&) const override { return 0.0; }
  double mdsload(const HeartbeatPayload& hb) const override {
    return hb.all_metaload;
  }
  bool when(const ClusterView& view) override {
    views->push_back(view);
    return false;
  }
  std::vector<double> where(const ClusterView&) override { return {}; }
  std::vector<std::string> howmuch() const override { return {}; }
};

TEST(Hardening, LaggyPeerReadmittedOnlyAfterFreshStreak) {
  ClusterConfig cfg;
  cfg.bal_interval = 100 * kMsec;
  cfg.laggy_factor = 3.0;  // laggy past 300 ms of silence
  cfg.laggy_readmit_ticks = 2;
  cfg.bal_min_load = 0.0;  // ensure when() (and thus capture) runs each tick
  Harness h(2, cfg);
  std::vector<ClusterView> views;
  h.cluster.set_balancer(0, std::make_unique<CaptureBalancer>(&views));

  // A fresh tick feeds node 0 a just-sent heartbeat from rank 1; a stale
  // tick instead lets sim time run past the laggy window so the last
  // heartbeat ages out.
  auto tick_fresh = [&] {
    h.cluster.node(0).on_heartbeat(make_hb(1, 0, h.engine.now()));
    h.cluster.node(0).tick();
    h.engine.run();  // drain the tick's own heartbeat sends
    return views.back().alive[1] != 0;
  };
  auto tick_stale = [&] {
    h.engine.schedule_after(400 * kMsec, [] {});
    h.engine.run();
    h.cluster.node(0).tick();
    h.engine.run();
    return views.back().alive[1] != 0;
  };

  // Two consecutive fresh ticks are needed before the peer is trusted.
  EXPECT_FALSE(tick_fresh());
  EXPECT_TRUE(tick_fresh());

  // One stale tick evicts it and resets the streak...
  EXPECT_FALSE(tick_stale());
  // ...so one fresh heartbeat is NOT enough to come back (hysteresis):
  EXPECT_FALSE(tick_fresh());
  EXPECT_TRUE(tick_fresh());

  // An evicted peer contributes zero load to the view.
  ASSERT_GE(views.size(), 3u);
  EXPECT_EQ(views[2].loads[1], 0.0);
}

TEST(Hardening, DefaultReadmitIsImmediate) {
  // laggy_readmit_ticks = 1 preserves the pre-hysteresis behavior: one
  // fresh heartbeat readmits the peer on the next tick.
  ClusterConfig cfg;
  cfg.bal_interval = 100 * kMsec;
  cfg.laggy_factor = 3.0;
  cfg.bal_min_load = 0.0;
  Harness h(2, cfg);
  std::vector<ClusterView> views;
  h.cluster.set_balancer(0, std::make_unique<CaptureBalancer>(&views));

  h.cluster.node(0).on_heartbeat(make_hb(1, 0, h.engine.now()));
  h.cluster.node(0).tick();
  h.engine.run();
  EXPECT_NE(views.back().alive[1], 0);
}

}  // namespace
}  // namespace mantle::cluster
