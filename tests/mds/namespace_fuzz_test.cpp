#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "mds/namespace.hpp"

/// Randomized consistency check: apply long random sequences of
/// mkdir/create/unlink/rename/split/merge against both the Namespace and
/// a trivial reference model (path-keyed map), then verify they agree and
/// that structural invariants hold. This is the property suite that
/// protects the migration/fragmentation mechanisms from aliasing bugs.

namespace mantle::mds {
namespace {

struct RefEntry {
  bool is_dir = false;
};

class FuzzModel {
 public:
  FuzzModel() { ref_["/"] = {true}; }

  Namespace& ns() { return ns_; }

  // Every mutation goes through both the namespace and the reference map;
  // both must agree on success.
  void mkdir(const std::string& parent, const std::string& name) {
    const bool ref_ok = ref_.count(parent) && ref_.at(parent).is_dir &&
                        !ref_.count(join(parent, name));
    const auto res = ns_.resolve(parent);
    const InodeId ino =
        res.found && res.is_dir ? ns_.mkdir(res.ino, name, 0) : kNoInode;
    ASSERT_EQ(ino != kNoInode, ref_ok) << "mkdir " << join(parent, name);
    if (ref_ok) ref_[join(parent, name)] = {true};
  }

  void create(const std::string& parent, const std::string& name) {
    const bool ref_ok = ref_.count(parent) && ref_.at(parent).is_dir &&
                        !ref_.count(join(parent, name));
    const auto res = ns_.resolve(parent);
    const InodeId ino =
        res.found && res.is_dir ? ns_.create(res.ino, name, 0) : kNoInode;
    ASSERT_EQ(ino != kNoInode, ref_ok) << "create " << join(parent, name);
    if (ref_ok) ref_[join(parent, name)] = {false};
  }

  void unlink(const std::string& parent, const std::string& name) {
    const std::string path = join(parent, name);
    bool ref_ok = ref_.count(path) != 0;
    if (ref_ok && ref_.at(path).is_dir) {
      // Only empty directories are removable.
      for (const auto& [p, e] : ref_)
        if (p != path && p.rfind(path + "/", 0) == 0) {
          ref_ok = false;
          break;
        }
    }
    const auto res = ns_.resolve(parent);
    const bool ok = res.found && ns_.remove(res.ino, name);
    ASSERT_EQ(ok, ref_ok) << "unlink " << path;
    if (ref_ok) ref_.erase(path);
  }

  void rename(const std::string& sparent, const std::string& sname,
              const std::string& dparent, const std::string& dname) {
    const std::string spath = join(sparent, sname);
    const std::string dpath = join(dparent, dname);
    bool ref_ok = ref_.count(spath) && ref_.count(dparent) &&
                  ref_.at(dparent).is_dir && !ref_.count(dpath);
    // Cycle: destination inside (or equal to) the moved subtree.
    if (ref_ok && ref_.at(spath).is_dir &&
        (dpath == spath || dparent == spath ||
         dparent.rfind(spath + "/", 0) == 0))
      ref_ok = false;
    const auto src = ns_.resolve(sparent);
    const auto dst = ns_.resolve(dparent);
    const bool ok = src.found && dst.found &&
                    ns_.rename(src.ino, sname, dst.ino, dname);
    ASSERT_EQ(ok, ref_ok) << "rename " << spath << " -> " << dpath;
    if (!ref_ok) return;
    // Move the entry and all descendants in the reference map.
    std::map<std::string, RefEntry> moved;
    for (auto it = ref_.begin(); it != ref_.end();) {
      if (it->first == spath || it->first.rfind(spath + "/", 0) == 0) {
        moved[dpath + it->first.substr(spath.size())] = it->second;
        it = ref_.erase(it);
      } else {
        ++it;
      }
    }
    ref_.insert(moved.begin(), moved.end());
  }

  void split_random(Rng& rng) {
    const std::string dir = random_dir(rng);
    const auto res = ns_.resolve(dir);
    ASSERT_TRUE(res.found);
    const Dir* d = ns_.dir(res.ino);
    // Split the first leaf fragment by 1-2 bits (structure only; the
    // visible namespace must not change).
    const frag_t f = d->frags.begin()->first;
    ns_.split({res.ino, f}, static_cast<std::uint8_t>(1 + rng.uniform(0, 1)), 0);
  }

  void merge_random(Rng& rng) {
    const std::string dir = random_dir(rng);
    const auto res = ns_.resolve(dir);
    ASSERT_TRUE(res.found);
    ns_.merge(res.ino, frag_t(), 0);
  }

  std::string random_dir(Rng& rng) const {
    std::vector<std::string> dirs;
    for (const auto& [p, e] : ref_)
      if (e.is_dir) dirs.push_back(p);
    return dirs[rng.uniform(0, dirs.size() - 1)];
  }

  std::string random_path(Rng& rng) const {
    std::vector<std::string> all;
    for (const auto& [p, e] : ref_)
      if (p != "/") all.push_back(p);
    if (all.empty()) return "";
    return all[rng.uniform(0, all.size() - 1)];
  }

  static std::string join(const std::string& parent, const std::string& name) {
    return parent == "/" ? "/" + name : parent + "/" + name;
  }

  static std::pair<std::string, std::string> split_parent(const std::string& p) {
    const auto pos = p.find_last_of('/');
    std::string parent = p.substr(0, pos);
    if (parent.empty()) parent = "/";
    return {parent, p.substr(pos + 1)};
  }

  /// Full cross-check of the namespace against the reference model.
  void verify() const {
    // 1. Every reference path resolves, with the right type and path_of.
    for (const auto& [path, entry] : ref_) {
      const auto res = ns_.resolve(path);
      ASSERT_TRUE(res.found) << path;
      EXPECT_EQ(res.is_dir, entry.is_dir) << path;
      EXPECT_EQ(ns_.path_of(res.ino), path);
    }
    // 2. Inode counts agree (reference includes "/").
    EXPECT_EQ(ns_.num_inodes(), ref_.size());
    // 3. Every directory's fragments partition the hash space: each
    //    dentry lives in exactly the fragment covering its hash, and
    //    readdir sees exactly the reference children.
    for (const auto& [path, entry] : ref_) {
      if (!entry.is_dir) continue;
      const auto res = ns_.resolve(path);
      const Dir* d = ns_.dir(res.ino);
      ASSERT_NE(d, nullptr) << path;
      std::set<std::string> expect;
      for (const auto& [p, e] : ref_) {
        if (p == path || p.rfind(path == "/" ? "/" : path + "/", 0) != 0)
          continue;
        const auto [par, name] = split_parent(p);
        if (par == path) expect.insert(name);
      }
      const auto listed = ns_.readdir(res.ino);
      EXPECT_EQ(std::set<std::string>(listed.begin(), listed.end()), expect)
          << path;
      for (const auto& [f, df] : d->frags)
        for (const auto& [name, ino] : df.dentries)
          EXPECT_TRUE(f.contains(hash_dentry_name(name)))
              << path << "/" << name << " in wrong fragment";
    }
  }

 private:
  Namespace ns_;
  std::map<std::string, RefEntry> ref_;
};

class NamespaceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NamespaceFuzz, RandomOpsKeepModelAndNamespaceInAgreement) {
  Rng rng(GetParam());
  FuzzModel m;
  for (int step = 0; step < 1200; ++step) {
    const double u = rng.next_double();
    const std::string name = "n" + std::to_string(rng.uniform(0, 60));
    if (u < 0.25) {
      m.mkdir(m.random_dir(rng), name);
    } else if (u < 0.55) {
      m.create(m.random_dir(rng), name);
    } else if (u < 0.70) {
      const std::string victim = m.random_path(rng);
      if (!victim.empty()) {
        const auto [parent, vname] = FuzzModel::split_parent(victim);
        m.unlink(parent, vname);
      }
    } else if (u < 0.85) {
      const std::string src = m.random_path(rng);
      if (!src.empty()) {
        const auto [sparent, sname] = FuzzModel::split_parent(src);
        m.rename(sparent, sname, m.random_dir(rng),
                 "r" + std::to_string(rng.uniform(0, 60)));
      }
    } else if (u < 0.93) {
      m.split_random(rng);
    } else {
      m.merge_random(rng);
    }
    if (::testing::Test::HasFatalFailure()) return;
    if (step % 300 == 299) m.verify();
  }
  m.verify();
}

INSTANTIATE_TEST_SUITE_P(Seeds, NamespaceFuzz,
                         ::testing::Values(1, 2, 3, 7, 11, 23, 42, 1999));

}  // namespace
}  // namespace mantle::mds
