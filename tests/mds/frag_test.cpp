#include <gtest/gtest.h>

#include "mds/types.hpp"

namespace mantle::mds {
namespace {

TEST(Frag, RootContainsEverything) {
  const frag_t root;
  EXPECT_TRUE(root.is_root());
  EXPECT_TRUE(root.contains(0u));
  EXPECT_TRUE(root.contains(0xffffffffu));
  EXPECT_TRUE(root.contains(hash_dentry_name("anything")));
}

TEST(Frag, SplitByOneBitPartitions) {
  const frag_t root;
  const frag_t left = root.child(0, 1);
  const frag_t right = root.child(1, 1);
  EXPECT_EQ(left.bits(), 1);
  EXPECT_EQ(right.bits(), 1);
  EXPECT_TRUE(left.contains(0x00000000u));
  EXPECT_TRUE(left.contains(0x7fffffffu));
  EXPECT_FALSE(left.contains(0x80000000u));
  EXPECT_TRUE(right.contains(0x80000000u));
  EXPECT_TRUE(right.contains(0xffffffffu));
  EXPECT_FALSE(right.contains(0x7fffffffu));
}

TEST(Frag, SplitByThreeBitsMakesEightDisjointChildren) {
  // The paper: "the first iteration fragments into 2^3 = 8 dirfrags".
  const frag_t root;
  for (std::uint32_t h : {0u, 0x12345678u, 0x80000000u, 0xdeadbeefu, 0xffffffffu}) {
    int covering = 0;
    for (std::uint32_t i = 0; i < 8; ++i)
      covering += root.child(i, 3).contains(h) ? 1 : 0;
    EXPECT_EQ(covering, 1) << "hash " << h;
  }
}

TEST(Frag, ParentInvertsChild) {
  const frag_t root;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const frag_t c = root.child(i, 3);
    EXPECT_EQ(c.parent(3), root);
    EXPECT_EQ(c.index_under_parent(3), i);
  }
  const frag_t deep = root.child(5, 3).child(2, 2);
  EXPECT_EQ(deep.bits(), 5);
  EXPECT_EQ(deep.parent(2), root.child(5, 3));
  EXPECT_EQ(deep.index_under_parent(2), 2u);
}

TEST(Frag, ContainsFragIsReflexiveAndHierarchical) {
  const frag_t root;
  const frag_t a = root.child(1, 1);
  const frag_t aa = a.child(0, 1);
  EXPECT_TRUE(root.contains(a));
  EXPECT_TRUE(root.contains(aa));
  EXPECT_TRUE(a.contains(aa));
  EXPECT_TRUE(a.contains(a));
  EXPECT_FALSE(aa.contains(a));
  EXPECT_FALSE(a.contains(root.child(0, 1)));
}

TEST(Frag, NestedSplitsPreservePartition) {
  // Split root into 4, then split child 2 into 4 again: the 7 leaves must
  // still partition the hash space.
  const frag_t root;
  std::vector<frag_t> leaves;
  for (std::uint32_t i = 0; i < 4; ++i)
    if (i != 2) leaves.push_back(root.child(i, 2));
  for (std::uint32_t i = 0; i < 4; ++i)
    leaves.push_back(root.child(2, 2).child(i, 2));
  for (std::uint32_t h = 0; h < 64; ++h) {
    const std::uint32_t hash = h * 0x04000001u;
    int covering = 0;
    for (const frag_t f : leaves) covering += f.contains(hash) ? 1 : 0;
    EXPECT_EQ(covering, 1) << "hash " << hash;
  }
}

TEST(Frag, OrderingIsDeterministic) {
  const frag_t root;
  EXPECT_LT(root.child(0, 1), root.child(1, 1));
  EXPECT_EQ(root.child(0, 1), root.child(0, 1));
}

TEST(Frag, StrRendering) {
  const frag_t root;
  EXPECT_EQ(root.str(), "0x00000000/0");
  EXPECT_EQ(root.child(1, 1).str(), "0x80000000/1");
}

TEST(Hash, StableAndSpread) {
  EXPECT_EQ(hash_dentry_name("file1"), hash_dentry_name("file1"));
  EXPECT_NE(hash_dentry_name("file1"), hash_dentry_name("file2"));
  // Names should spread across a 3-bit split reasonably (not all in one).
  int buckets[8] = {0};
  const frag_t root;
  for (int i = 0; i < 800; ++i) {
    const std::uint32_t h = hash_dentry_name("file" + std::to_string(i));
    for (std::uint32_t b = 0; b < 8; ++b)
      if (root.child(b, 3).contains(h)) ++buckets[b];
  }
  for (int b = 0; b < 8; ++b) {
    EXPECT_GT(buckets[b], 40) << "bucket " << b;
    EXPECT_LT(buckets[b], 200) << "bucket " << b;
  }
}

TEST(DirFragId, Ordering) {
  const DirFragId a{1, frag_t()};
  const DirFragId b{1, frag_t().child(1, 1)};
  const DirFragId c{2, frag_t()};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (DirFragId{1, frag_t()}));
}

}  // namespace
}  // namespace mantle::mds
