#include "mds/namespace.hpp"

#include <gtest/gtest.h>

namespace mantle::mds {
namespace {

TEST(SplitPath, Forms) {
  EXPECT_TRUE(split_path("/").empty());
  EXPECT_TRUE(split_path("").empty());
  EXPECT_EQ(split_path("/a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_path("a/b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_path("//a///b/"), (std::vector<std::string>{"a", "b"}));
}

TEST(Namespace, RootExists) {
  Namespace ns;
  EXPECT_EQ(ns.root(), kRootInode);
  ASSERT_NE(ns.inode(kRootInode), nullptr);
  EXPECT_TRUE(ns.inode(kRootInode)->is_dir);
  ASSERT_NE(ns.dir(kRootInode), nullptr);
  EXPECT_EQ(ns.dir(kRootInode)->frags.size(), 1u);
}

TEST(Namespace, MkdirAndCreate) {
  Namespace ns;
  const InodeId d = ns.mkdir(ns.root(), "proj", 0);
  ASSERT_NE(d, kNoInode);
  const InodeId f = ns.create(d, "main.c", 0);
  ASSERT_NE(f, kNoInode);
  EXPECT_TRUE(ns.inode(d)->is_dir);
  EXPECT_FALSE(ns.inode(f)->is_dir);
  EXPECT_EQ(ns.lookup(ns.root(), "proj"), d);
  EXPECT_EQ(ns.lookup(d, "main.c"), f);
  EXPECT_EQ(ns.lookup(d, "missing"), kNoInode);
}

TEST(Namespace, DuplicateNamesRejected) {
  Namespace ns;
  ASSERT_NE(ns.mkdir(ns.root(), "a", 0), kNoInode);
  EXPECT_EQ(ns.mkdir(ns.root(), "a", 0), kNoInode);
  EXPECT_EQ(ns.create(ns.root(), "a", 0), kNoInode);
}

TEST(Namespace, CreateUnderFileFails) {
  Namespace ns;
  const InodeId f = ns.create(ns.root(), "file", 0);
  EXPECT_EQ(ns.create(f, "x", 0), kNoInode);
  EXPECT_EQ(ns.mkdir(f, "x", 0), kNoInode);
}

TEST(Namespace, ResolvePath) {
  Namespace ns;
  const InodeId a = ns.mkdir(ns.root(), "a", 0);
  const InodeId b = ns.mkdir(a, "b", 0);
  const InodeId c = ns.create(b, "c.txt", 0);
  const Resolution r = ns.resolve("/a/b/c.txt");
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.ino, c);
  EXPECT_FALSE(r.is_dir);
  ASSERT_EQ(r.steps.size(), 3u);
  EXPECT_EQ(r.steps[0].frag.ino, ns.root());
  EXPECT_EQ(r.steps[1].frag.ino, a);
  EXPECT_EQ(r.steps[2].frag.ino, b);
  EXPECT_EQ(r.steps[2].component, "c.txt");
}

TEST(Namespace, ResolveRoot) {
  Namespace ns;
  const Resolution r = ns.resolve("/");
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.ino, kRootInode);
  EXPECT_TRUE(r.is_dir);
  EXPECT_TRUE(r.steps.empty());
}

TEST(Namespace, ResolveMissingReportsPartialSteps) {
  Namespace ns;
  ns.mkdir(ns.root(), "a", 0);
  const Resolution r = ns.resolve("/a/nope/deeper");
  EXPECT_FALSE(r.found);
  ASSERT_EQ(r.steps.size(), 2u);  // consulted root then a
  EXPECT_EQ(r.missing_at, 1u);
}

TEST(Namespace, ReaddirListsAllFragments) {
  Namespace ns;
  const InodeId d = ns.mkdir(ns.root(), "dir", 0);
  for (int i = 0; i < 100; ++i)
    ASSERT_NE(ns.create(d, "f" + std::to_string(i), 0), kNoInode);
  ns.split({d, frag_t()}, 3, 0);
  const auto names = ns.readdir(d);
  EXPECT_EQ(names.size(), 100u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Namespace, RemoveFileAndEmptyDir) {
  Namespace ns;
  const InodeId d = ns.mkdir(ns.root(), "d", 0);
  const InodeId f = ns.create(d, "f", 0);
  (void)f;
  EXPECT_FALSE(ns.remove(ns.root(), "d"));  // not empty
  EXPECT_TRUE(ns.remove(d, "f"));
  EXPECT_TRUE(ns.remove(ns.root(), "d"));
  EXPECT_EQ(ns.lookup(ns.root(), "d"), kNoInode);
  EXPECT_FALSE(ns.remove(ns.root(), "d"));  // already gone
}

TEST(Namespace, PathOf) {
  Namespace ns;
  const InodeId a = ns.mkdir(ns.root(), "usr", 0);
  const InodeId b = ns.mkdir(a, "lib", 0);
  EXPECT_EQ(ns.path_of(ns.root()), "/");
  EXPECT_EQ(ns.path_of(a), "/usr");
  EXPECT_EQ(ns.path_of(b), "/usr/lib");
}

TEST(Namespace, SplitRedistributesDentriesByHash) {
  Namespace ns;
  const InodeId d = ns.mkdir(ns.root(), "big", 0);
  for (int i = 0; i < 1000; ++i) ns.create(d, "file" + std::to_string(i), 0);
  const auto kids = ns.split({d, frag_t()}, 3, 0);
  ASSERT_EQ(kids.size(), 8u);
  const Dir* dd = ns.dir(d);
  ASSERT_EQ(dd->frags.size(), 8u);
  std::size_t total = 0;
  for (const auto& [fg, df] : dd->frags) {
    total += df.dentries.size();
    for (const auto& [name, ino] : df.dentries)
      EXPECT_TRUE(fg.contains(hash_dentry_name(name)));
  }
  EXPECT_EQ(total, 1000u);
  // Lookups still work post-split.
  EXPECT_NE(ns.lookup(d, "file123"), kNoInode);
  EXPECT_NE(ns.lookup(d, "file999"), kNoInode);
}

TEST(Namespace, SplitScalesHeat) {
  Namespace ns;
  const InodeId d = ns.mkdir(ns.root(), "hot", 0);
  const DirFragId root_frag{d, frag_t()};
  for (int i = 0; i < 64; ++i) ns.record_op(root_frag, MetaOp::IWR, kSec);
  const auto kids = ns.split(root_frag, 2, kSec);
  ASSERT_EQ(kids.size(), 4u);
  double total = 0.0;
  for (const frag_t k : kids) total += ns.frag_pop({d, k}, MetaOp::IWR, kSec);
  EXPECT_NEAR(total, 64.0, 1e-6);
  EXPECT_NEAR(ns.frag_pop({d, kids[0]}, MetaOp::IWR, kSec), 16.0, 1e-6);
}

TEST(Namespace, SplitInheritsAuth) {
  Namespace ns;
  const InodeId d = ns.mkdir(ns.root(), "x", 0);
  ns.frag({d, frag_t()})->auth = 2;
  const auto kids = ns.split({d, frag_t()}, 1, 0);
  for (const frag_t k : kids) EXPECT_EQ(ns.frag({d, k})->auth, 2);
}

TEST(Namespace, SplitNonLeafFails) {
  Namespace ns;
  const InodeId d = ns.mkdir(ns.root(), "x", 0);
  ns.split({d, frag_t()}, 1, 0);
  // The root fragment no longer exists; splitting it again is a no-op.
  EXPECT_TRUE(ns.split({d, frag_t()}, 1, 0).empty());
}

TEST(Namespace, MergeRestoresSingleFragment) {
  Namespace ns;
  const InodeId d = ns.mkdir(ns.root(), "m", 0);
  for (int i = 0; i < 100; ++i) ns.create(d, "f" + std::to_string(i), 0);
  ns.split({d, frag_t()}, 3, 0);
  ASSERT_EQ(ns.dir(d)->frags.size(), 8u);
  EXPECT_TRUE(ns.merge(d, frag_t(), 0));
  ASSERT_EQ(ns.dir(d)->frags.size(), 1u);
  EXPECT_EQ(ns.dir(d)->num_entries(), 100u);
  EXPECT_NE(ns.lookup(d, "f42"), kNoInode);
  EXPECT_FALSE(ns.merge(d, frag_t(), 0));  // nothing left to merge
}

TEST(Namespace, MergePreservesHeat) {
  Namespace ns;
  const InodeId d = ns.mkdir(ns.root(), "m", 0);
  const auto kids = ns.split({d, frag_t()}, 2, 0);
  for (const frag_t k : kids)
    for (int i = 0; i < 10; ++i) ns.record_op({d, k}, MetaOp::IRD, kSec);
  ASSERT_TRUE(ns.merge(d, frag_t(), kSec));
  EXPECT_NEAR(ns.frag_pop({d, frag_t()}, MetaOp::IRD, kSec), 40.0, 1e-6);
}

TEST(Namespace, RecordOpBumpsFragAndAncestors) {
  Namespace ns;
  const InodeId a = ns.mkdir(ns.root(), "a", 0);
  const InodeId b = ns.mkdir(a, "b", 0);
  const DirFragId bf{b, frag_t()};
  for (int i = 0; i < 5; ++i) ns.record_op(bf, MetaOp::IWR, kSec);
  EXPECT_NEAR(ns.frag_pop(bf, MetaOp::IWR, kSec), 5.0, 1e-9);
  EXPECT_NEAR(ns.nested_pop(b, MetaOp::IWR, kSec), 5.0, 1e-9);
  EXPECT_NEAR(ns.nested_pop(a, MetaOp::IWR, kSec), 5.0, 1e-9);
  EXPECT_NEAR(ns.nested_pop(ns.root(), MetaOp::IWR, kSec), 5.0, 1e-9);
  // Sibling subtree sees nothing.
  const InodeId c = ns.mkdir(ns.root(), "c", 0);
  EXPECT_DOUBLE_EQ(ns.nested_pop(c, MetaOp::IWR, kSec), 0.0);
}

TEST(Namespace, HeatDecaysOverTime) {
  Namespace ns(DecayRate(5.0));
  const InodeId d = ns.mkdir(ns.root(), "d", 0);
  const DirFragId df{d, frag_t()};
  for (int i = 0; i < 8; ++i) ns.record_op(df, MetaOp::IRD, 0);
  EXPECT_NEAR(ns.frag_pop(df, MetaOp::IRD, 5 * kSec), 4.0, 1e-6);
  EXPECT_NEAR(ns.nested_pop(ns.root(), MetaOp::IRD, 10 * kSec), 2.0, 1e-6);
}

TEST(Namespace, SubtreeDirsAndEntries) {
  Namespace ns;
  const InodeId a = ns.mkdir(ns.root(), "a", 0);
  const InodeId b = ns.mkdir(a, "b", 0);
  const InodeId c = ns.mkdir(a, "c", 0);
  ns.create(b, "f1", 0);
  ns.create(c, "f2", 0);
  ns.create(c, "f3", 0);
  const auto dirs = ns.subtree_dirs(a);
  EXPECT_EQ(dirs.size(), 3u);  // a, b, c
  // a has dentries {b, c}; b has {f1}; c has {f2, f3}.
  EXPECT_EQ(ns.subtree_entries(a), 5u);
  EXPECT_EQ(ns.subtree_entries(b), 1u);
  const auto all = ns.subtree_dirs(ns.root());
  EXPECT_EQ(all.size(), 4u);
}

TEST(Namespace, CephfsMetaloadFormula) {
  Namespace ns;
  const InodeId d = ns.mkdir(ns.root(), "d", 0);
  const DirFragId df{d, frag_t()};
  ns.record_op(df, MetaOp::IRD, kSec);      // weight 1
  ns.record_op(df, MetaOp::IWR, kSec);      // weight 2
  ns.record_op(df, MetaOp::READDIR, kSec);  // weight 1
  ns.record_op(df, MetaOp::FETCH, kSec);    // weight 2
  ns.record_op(df, MetaOp::STORE, kSec);    // weight 4
  const DirFrag* f = ns.frag(df);
  ASSERT_NE(f, nullptr);
  EXPECT_NEAR(f->pop.cephfs_metaload(kSec, ns.decay_rate()), 10.0, 1e-9);
}

TEST(Namespace, FragOfPointsAtCoveringFragment) {
  Namespace ns;
  const InodeId d = ns.mkdir(ns.root(), "d", 0);
  ns.create(d, "hello", 0);
  ns.split({d, frag_t()}, 3, 0);
  const DirFragId id = ns.frag_of(d, "hello");
  EXPECT_EQ(id.ino, d);
  EXPECT_TRUE(id.frag.contains(hash_dentry_name("hello")));
  ASSERT_NE(ns.frag(id), nullptr);
  EXPECT_EQ(ns.frag(id)->dentries.count("hello"), 1u);
}

// Parameterized sweep: split / merge round-trips preserve all dentries for
// several directory sizes and split widths.
class SplitMergeRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplitMergeRoundTrip, PreservesDentries) {
  const auto [entries, bits] = GetParam();
  Namespace ns;
  const InodeId d = ns.mkdir(ns.root(), "dir", 0);
  for (int i = 0; i < entries; ++i)
    ASSERT_NE(ns.create(d, "n" + std::to_string(i), 0), kNoInode);
  ns.split({d, frag_t()}, static_cast<std::uint8_t>(bits), 0);
  EXPECT_EQ(ns.dir(d)->frags.size(), 1u << bits);
  EXPECT_EQ(ns.dir(d)->num_entries(), static_cast<std::size_t>(entries));
  ASSERT_TRUE(ns.merge(d, frag_t(), 0));
  EXPECT_EQ(ns.dir(d)->num_entries(), static_cast<std::size_t>(entries));
  for (int i = 0; i < entries; ++i)
    EXPECT_NE(ns.lookup(d, "n" + std::to_string(i)), kNoInode);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitMergeRoundTrip,
    ::testing::Combine(::testing::Values(0, 1, 10, 257),
                       ::testing::Values(1, 2, 3, 5)));

}  // namespace
}  // namespace mantle::mds
