#include "balancers/builtin.hpp"

#include <gtest/gtest.h>

namespace mantle::balancers {
namespace {

using mantle::mds::kNoRank;

/// A view with the given per-rank loads (mdsload already applied).
ClusterView make_view(int whoami, std::vector<double> all_loads,
                      std::vector<double> cpu = {}) {
  ClusterView v;
  v.whoami = whoami;
  v.mdss.resize(all_loads.size());
  v.loads.resize(all_loads.size());
  for (std::size_t i = 0; i < all_loads.size(); ++i) {
    v.mdss[i].rank = static_cast<int>(i);
    v.mdss[i].all_metaload = all_loads[i];
    v.mdss[i].auth_metaload = all_loads[i];
    v.mdss[i].cpu_pct = i < cpu.size() ? cpu[i] : 0.0;
    v.loads[i] = all_loads[i];  // balancers under test use "all" as load
    v.total_load += all_loads[i];
  }
  return v;
}

// ---------------------------------------------------------------------------
// OriginalBalancer
// ---------------------------------------------------------------------------

TEST(Original, MetaloadMatchesTable1) {
  OriginalBalancer b;
  const PopSnapshot p{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(b.metaload(p), 1 + 2 * 2 + 3 + 2 * 4 + 4 * 5.0);
}

TEST(Original, MdsloadMatchesTable1) {
  OriginalBalancer b;
  HeartbeatPayload hb;
  hb.auth_metaload = 100.0;
  hb.all_metaload = 150.0;
  hb.req_rate = 42.0;
  hb.queue_len = 3.0;
  EXPECT_DOUBLE_EQ(b.mdsload(hb), 0.8 * 100 + 0.2 * 150 + 42 + 30);
}

TEST(Original, WhenTriggersAboveAverage) {
  OriginalBalancer b;
  EXPECT_TRUE(b.when(make_view(0, {90, 10, 20})));
  EXPECT_FALSE(b.when(make_view(1, {90, 10, 20})));
  EXPECT_FALSE(b.when(make_view(0, {40, 40, 40})));  // exactly average
}

TEST(Original, WhereSplitsExcessByDeficit) {
  OriginalBalancer b;
  // avg = 40; my excess = 50; deficits: mds1 = 30, mds2 = 20.
  const auto t = b.where(make_view(0, {90, 10, 20}));
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_NEAR(t[1], 50.0 * 30 / 50, 1e-9);
  EXPECT_NEAR(t[2], 50.0 * 20 / 50, 1e-9);
}

TEST(Original, WhereNothingWhenUnderloaded) {
  OriginalBalancer b;
  const auto t = b.where(make_view(1, {90, 10, 20}));
  for (const double x : t) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Original, WhenThrashesEpsilonAboveMean) {
  // Characterisation of the thrash the paper blames on the original
  // balancer (Section 6 / Figure 10 discussion): *any* excess above the
  // mean triggers when(), even one far too small to ever pay for a
  // migration, so a near-balanced cluster keeps shuffling tiny slivers.
  OriginalBalancer b;
  const double eps = 1e-9;
  const auto v = make_view(0, {100.0 + eps, 100.0, 100.0});
  EXPECT_TRUE(b.when(v));
  const auto t = b.where(v);
  ASSERT_EQ(t.size(), 3u);
  const double shipped = t[1] + t[2];
  EXPECT_GT(shipped, 0.0);      // it really does ask to export...
  EXPECT_LT(shipped, 1e-8);     // ...a negligible sliver, every tick
  // And the mirror image: exactly at the mean it stays quiet.
  EXPECT_FALSE(b.when(make_view(0, {100, 100, 100})));
}

// ---------------------------------------------------------------------------
// GreedySpillBalancer (Listing 1)
// ---------------------------------------------------------------------------

TEST(GreedySpill, SpillsToEmptyNeighbour) {
  GreedySpillBalancer b;
  EXPECT_TRUE(b.when(make_view(0, {100, 0})));
  const auto t = b.where(make_view(0, {100, 0}));
  EXPECT_DOUBLE_EQ(t[1], 50.0);
}

TEST(GreedySpill, QuietWhenNeighbourLoaded) {
  GreedySpillBalancer b;
  EXPECT_FALSE(b.when(make_view(0, {100, 60})));
}

TEST(GreedySpill, QuietWhenIdle) {
  GreedySpillBalancer b;
  EXPECT_FALSE(b.when(make_view(0, {0.001, 0})));
}

TEST(GreedySpill, LastRankHasNoNeighbour) {
  GreedySpillBalancer b;
  EXPECT_FALSE(b.when(make_view(1, {0, 100})));
}

TEST(GreedySpill, ChainsAcrossCluster) {
  // Spill runs along the chain: each spills to its successor, giving the
  // uneven 1/2, 1/4, 1/8, 1/8 split of Figure 7 (top).
  GreedySpillBalancer b;
  EXPECT_TRUE(b.when(make_view(0, {100, 0, 0, 0})));
  EXPECT_TRUE(b.when(make_view(1, {50, 50, 0, 0})));
  EXPECT_TRUE(b.when(make_view(2, {50, 25, 25, 0})));
  EXPECT_FALSE(b.when(make_view(3, {50, 25, 12.5, 12.5})));
}

// ---------------------------------------------------------------------------
// GreedySpillEvenBalancer (Listing 2)
// ---------------------------------------------------------------------------

TEST(GreedySpillEven, BisectTargets) {
  // 1-based formula t = (N - w + 1)/2 + w.
  EXPECT_EQ(GreedySpillEvenBalancer::bisect_target(0, 4), 2);   // w1=1 -> t=3
  EXPECT_EQ(GreedySpillEvenBalancer::bisect_target(2, 4), 3);   // w1=3 -> t=4
  EXPECT_EQ(GreedySpillEvenBalancer::bisect_target(1, 4), kNoRank);  // 3.5
  EXPECT_EQ(GreedySpillEvenBalancer::bisect_target(3, 4), kNoRank);  // 4.5
  EXPECT_EQ(GreedySpillEvenBalancer::bisect_target(0, 2), 1);   // w1=1 -> t=2
}

TEST(GreedySpillEven, BisectTargetRank0AllSizes) {
  // From rank 0 the bisection lands on rank n/2 for even n and is
  // undefined (fractional 1-based index) for odd n — including the
  // degenerate single-MDS cluster.
  const auto t = [](int n) {
    return GreedySpillEvenBalancer::bisect_target(0, n);
  };
  EXPECT_EQ(t(1), kNoRank);
  EXPECT_EQ(t(2), 1);
  EXPECT_EQ(t(3), kNoRank);
  EXPECT_EQ(t(4), 2);
  EXPECT_EQ(t(5), kNoRank);
  EXPECT_EQ(t(6), 3);
  EXPECT_EQ(t(7), kNoRank);
  EXPECT_EQ(t(8), 4);
  EXPECT_EQ(t(9), kNoRank);
  EXPECT_EQ(t(10), 5);
}

TEST(GreedySpillEven, BisectTargetMidRanks) {
  // Spot checks off rank 0: t1 = (n - w1 + 1)/2 + w1 when integral.
  EXPECT_EQ(GreedySpillEvenBalancer::bisect_target(2, 8), 5);   // t1 = 6
  EXPECT_EQ(GreedySpillEvenBalancer::bisect_target(4, 8), 6);   // t1 = 7
  EXPECT_EQ(GreedySpillEvenBalancer::bisect_target(6, 8), 7);   // t1 = 8
  EXPECT_EQ(GreedySpillEvenBalancer::bisect_target(7, 8), kNoRank);  // 8.5
  EXPECT_EQ(GreedySpillEvenBalancer::bisect_target(4, 10), 7);  // t1 = 8
  EXPECT_EQ(GreedySpillEvenBalancer::bisect_target(5, 10), kNoRank);  // 8.5
}

TEST(GreedySpillEven, ProducesEvenSplitIn3Rounds) {
  // Round 1: only mds0 loaded -> ships half to mds2.
  GreedySpillEvenBalancer b0;
  ASSERT_TRUE(b0.when(make_view(0, {100, 0, 0, 0})));
  EXPECT_DOUBLE_EQ(b0.where(make_view(0, {100, 0, 0, 0}))[2], 50.0);

  // Round 2: mds0 (50) walks back from loaded mds2 to empty mds1;
  //          mds2 (50) ships half to mds3.
  ASSERT_TRUE(b0.when(make_view(0, {50, 0, 50, 0})));
  EXPECT_DOUBLE_EQ(b0.where(make_view(0, {50, 0, 50, 0}))[1], 25.0);
  GreedySpillEvenBalancer b2;
  ASSERT_TRUE(b2.when(make_view(2, {50, 0, 50, 0})));
  EXPECT_DOUBLE_EQ(b2.where(make_view(2, {50, 0, 50, 0}))[3], 25.0);

  // Round 3: 25 everywhere -> nobody moves.
  EXPECT_FALSE(b0.when(make_view(0, {25, 25, 25, 25})));
  EXPECT_FALSE(b2.when(make_view(2, {25, 25, 25, 25})));
}

// ---------------------------------------------------------------------------
// FillSpillBalancer (Listing 3)
// ---------------------------------------------------------------------------

TEST(FillSpill, HoldsForConsecutiveOverloadedTicks) {
  FillSpillBalancer b;  // hold_iterations = 2
  const auto hot = make_view(0, {100, 0}, {80, 5});
  // The hold starts armed: spilling begins only on the third consecutive
  // overloaded tick, then the hold re-arms.
  EXPECT_FALSE(b.when(hot));  // wait 2 -> 1
  EXPECT_FALSE(b.when(hot));  // wait 1 -> 0
  EXPECT_TRUE(b.when(hot));   // fires, re-arms
  EXPECT_FALSE(b.when(hot));
  EXPECT_FALSE(b.when(hot));
  EXPECT_TRUE(b.when(hot));   // fires again
}

TEST(FillSpill, CoolCpuResetsHold) {
  FillSpillBalancer b;
  const auto hot = make_view(0, {100, 0}, {80, 5});
  const auto cool = make_view(0, {100, 0}, {20, 5});
  EXPECT_FALSE(b.when(hot));
  EXPECT_FALSE(b.when(cool));  // resets wait
  EXPECT_FALSE(b.when(hot));
  EXPECT_FALSE(b.when(hot));
  EXPECT_TRUE(b.when(hot));
}

// Regression: the hold counter used to start disarmed, so the *first*
// overloaded tick spilled immediately — a single hot sample after any
// cool spell triggered a migration, defeating the "consecutive
// confirmations" the policy exists to require.
TEST(FillSpill, InterruptedStreakMustRearmFully) {
  FillSpillBalancer b;
  const auto hot = make_view(0, {100, 0}, {80, 5});
  const auto cool = make_view(0, {100, 0}, {20, 5});
  EXPECT_FALSE(b.when(hot));
  EXPECT_FALSE(b.when(hot));   // one tick away from firing
  EXPECT_FALSE(b.when(cool));  // streak broken
  EXPECT_FALSE(b.when(hot));   // must NOT fire: the hold re-armed in full
  EXPECT_FALSE(b.when(hot));
  EXPECT_TRUE(b.when(hot));
}

TEST(FillSpill, FreshBalancerStartsArmed) {
  FillSpillBalancer b;
  EXPECT_EQ(b.state_wait(), FillSpillBalancer::Options{}.hold_iterations);
  FillSpillBalancer::Options opt;
  opt.hold_iterations = 5;
  FillSpillBalancer c(opt);
  EXPECT_EQ(c.state_wait(), 5);
}

TEST(FillSpill, SpillsConfiguredFraction) {
  FillSpillBalancer::Options opt;
  opt.spill_fraction = 0.10;
  FillSpillBalancer b(opt);
  const auto v = make_view(0, {200, 0}, {80, 5});
  ASSERT_FALSE(b.when(v));
  ASSERT_FALSE(b.when(v));
  ASSERT_TRUE(b.when(v));
  EXPECT_DOUBLE_EQ(b.where(v)[1], 20.0);
}

TEST(FillSpill, ThresholdRespected) {
  FillSpillBalancer::Options opt;
  opt.cpu_threshold = 90.0;
  FillSpillBalancer b(opt);
  // Never fires below the threshold, even past the hold window.
  for (int i = 0; i < 5; ++i)
    EXPECT_FALSE(b.when(make_view(0, {100, 0}, {85, 5})));
}

// ---------------------------------------------------------------------------
// AdaptableBalancer (Listing 4)
// ---------------------------------------------------------------------------

TEST(Adaptable, OnlyMajorityHolderMigrates) {
  AdaptableBalancer b;
  EXPECT_TRUE(b.when(make_view(0, {80, 10, 10})));
  EXPECT_FALSE(b.when(make_view(1, {80, 10, 10})));
  // 45 < total/2=50: no one migrates even though imbalanced.
  EXPECT_FALSE(b.when(make_view(0, {45, 30, 25})));
}

TEST(Adaptable, WhereFillsEveryDeficit) {
  AdaptableBalancer b;
  const auto t = b.where(make_view(0, {80, 10, 10}));
  // target load = 100/3 ~ 33.3; both others get topped up toward it.
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_NEAR(t[1], 100.0 / 3.0 - 10.0, 0.01);
  EXPECT_NEAR(t[2], 100.0 / 3.0 - 10.0, 0.01);
}

TEST(Adaptable, ConservativeGateDelaysMigration) {
  AdaptableBalancer::Options opt;
  opt.mode = AdaptableBalancer::Mode::kConservative;
  opt.min_offload = 100.0;
  AdaptableBalancer b(opt);
  EXPECT_FALSE(b.when(make_view(0, {80, 10, 10})));   // below the gate
  EXPECT_TRUE(b.when(make_view(0, {200, 10, 10})));   // spike crosses it
}

TEST(Adaptable, TooAggressiveFiresOnAnyImbalance) {
  AdaptableBalancer::Options opt;
  opt.mode = AdaptableBalancer::Mode::kTooAggressive;
  AdaptableBalancer b(opt);
  EXPECT_TRUE(b.when(make_view(0, {45, 30, 25})));
  EXPECT_FALSE(b.when(make_view(2, {45, 30, 25})));
}

// ---------------------------------------------------------------------------
// Degenerate views: every balancer must survive an empty cluster view
// (all peers laggy/dead) and an all-idle one without dividing by zero.
// ---------------------------------------------------------------------------

TEST(Degenerate, EmptyViewNeverMigrates) {
  const ClusterView empty = make_view(0, {});
  OriginalBalancer orig;
  EXPECT_FALSE(orig.when(empty));
  EXPECT_TRUE(orig.where(empty).empty());
  GreedySpillBalancer greedy;
  EXPECT_FALSE(greedy.when(empty));
  EXPECT_TRUE(greedy.where(empty).empty());
  GreedySpillEvenBalancer even;
  EXPECT_FALSE(even.when(empty));
  EXPECT_TRUE(even.where(empty).empty());
  FillSpillBalancer fill;
  EXPECT_FALSE(fill.when(empty));
  EXPECT_TRUE(fill.where(empty).empty());
  AdaptableBalancer adapt;
  EXPECT_FALSE(adapt.when(empty));
  EXPECT_TRUE(adapt.where(empty).empty());
  HashBalancer hash;
  EXPECT_FALSE(hash.when(empty));
  EXPECT_TRUE(hash.where(empty).empty());
}

// Regression: a view can carry a whoami outside [0, size()) — e.g. the
// local rank's own heartbeat was judged laggy and filtered out, or the
// cluster shrank under the balancer. Indexing view.loads[whoami] was UB;
// every builtin must now treat such a view as "nothing to do".
TEST(Degenerate, OutOfRangeSelfRankIsIgnored) {
  for (const int whoami : {-1, 2, 7}) {
    auto v = make_view(0, {100, 0}, {80, 5});
    v.whoami = whoami;
    OriginalBalancer orig;
    EXPECT_FALSE(orig.when(v)) << "whoami=" << whoami;
    for (const double t : orig.where(v)) EXPECT_DOUBLE_EQ(t, 0.0);
    GreedySpillBalancer greedy;
    EXPECT_FALSE(greedy.when(v)) << "whoami=" << whoami;
    for (const double t : greedy.where(v)) EXPECT_DOUBLE_EQ(t, 0.0);
    GreedySpillEvenBalancer even;
    EXPECT_FALSE(even.when(v)) << "whoami=" << whoami;
    for (const double t : even.where(v)) EXPECT_DOUBLE_EQ(t, 0.0);
    FillSpillBalancer fill;
    EXPECT_FALSE(fill.when(v)) << "whoami=" << whoami;
    for (const double t : fill.where(v)) EXPECT_DOUBLE_EQ(t, 0.0);
    AdaptableBalancer adapt;
    EXPECT_FALSE(adapt.when(v)) << "whoami=" << whoami;
    for (const double t : adapt.where(v)) EXPECT_DOUBLE_EQ(t, 0.0);
    HashBalancer hash;
    EXPECT_FALSE(hash.when(v)) << "whoami=" << whoami;
    for (const double t : hash.where(v)) EXPECT_DOUBLE_EQ(t, 0.0);
  }
}

TEST(Degenerate, AllIdleClusterStaysQuiet) {
  // total_load == 0: nobody is above average, and where() must not turn a
  // zero total deficit into NaN targets.
  const ClusterView idle = make_view(0, {0, 0, 0});
  OriginalBalancer orig;
  EXPECT_FALSE(orig.when(idle));
  for (const double t : orig.where(idle)) EXPECT_DOUBLE_EQ(t, 0.0);
  AdaptableBalancer adapt;
  EXPECT_FALSE(adapt.when(idle));
  for (const double t : adapt.where(idle)) EXPECT_DOUBLE_EQ(t, 0.0);
  HashBalancer hash;
  EXPECT_FALSE(hash.when(idle));
  for (const double t : hash.where(idle)) EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(Degenerate, SingleRankClusterNeverExports) {
  const ClusterView solo = make_view(0, {1000});
  OriginalBalancer orig;
  EXPECT_FALSE(orig.when(solo));  // alone means exactly average
  for (const double t : orig.where(solo)) EXPECT_DOUBLE_EQ(t, 0.0);
  AdaptableBalancer adapt;
  if (adapt.when(solo)) {
    for (const double t : adapt.where(solo)) EXPECT_DOUBLE_EQ(t, 0.0);
  }
}

}  // namespace
}  // namespace mantle::balancers
