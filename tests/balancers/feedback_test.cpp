#include "balancers/feedback.hpp"

#include <gtest/gtest.h>

namespace mantle::balancers {
namespace {

cluster::ClusterView view_of(int whoami, std::vector<double> loads) {
  cluster::ClusterView v;
  v.whoami = whoami;
  v.mdss.resize(loads.size());
  v.loads = loads;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    v.mdss[i].rank = static_cast<int>(i);
    v.mdss[i].all_metaload = loads[i];
    v.total_load += loads[i];
  }
  return v;
}

TEST(Feedback, QuietWhenBalanced) {
  FeedbackBalancer b;
  EXPECT_FALSE(b.when(view_of(0, {25, 25, 25, 25})));
  EXPECT_DOUBLE_EQ(b.last_output(), 0.0);
}

TEST(Feedback, QuietWhenUnderloaded) {
  FeedbackBalancer b;
  EXPECT_FALSE(b.when(view_of(1, {90, 5, 5})));
}

TEST(Feedback, FiresWhenOverloaded) {
  FeedbackBalancer b;
  const auto v = view_of(0, {90, 5, 5});
  ASSERT_TRUE(b.when(v));
  EXPECT_GT(b.last_output(), 0.0);
  const auto t = b.where(v);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_GT(t[1], 0.0);
  EXPECT_GT(t[2], 0.0);
  EXPECT_NEAR(t[1], t[2], 1e-9);  // equal deficits -> equal shares
  // Never asks to ship more than its own load.
  EXPECT_LE(t[1] + t[2], 90.0);
}

TEST(Feedback, OutputShrinksAsBalanceApproaches) {
  FeedbackBalancer b;
  ASSERT_TRUE(b.when(view_of(0, {90, 5, 5})));
  const double big = b.last_output();
  // Cluster is now much closer to balance.
  ASSERT_TRUE(b.when(view_of(0, {50, 25, 25})));
  const double small = b.last_output();
  EXPECT_LT(small, big);
}

TEST(Feedback, IntegralAccumulatesUnderPersistentError) {
  FeedbackBalancer::Options opt;
  opt.ewma_alpha = 1.0;  // no smoothing: isolate the integral term
  FeedbackBalancer b(opt);
  const auto v = view_of(0, {60, 20, 20});
  ASSERT_TRUE(b.when(v));
  const double first = b.last_output();
  ASSERT_TRUE(b.when(v));
  const double second = b.last_output();
  EXPECT_GT(second, first);  // integral winding up
  EXPECT_LE(b.integral(), 1.0);
}

TEST(Feedback, IntegralBleedsInsideDeadband) {
  FeedbackBalancer::Options opt;
  opt.ewma_alpha = 1.0;
  FeedbackBalancer b(opt);
  b.when(view_of(0, {60, 20, 20}));
  b.when(view_of(0, {60, 20, 20}));
  const double wound = b.integral();
  ASSERT_GT(wound, 0.0);
  b.when(view_of(0, {34, 33, 33}));  // inside the deadband
  EXPECT_LT(b.integral(), wound);
}

TEST(Feedback, EwmaDampsSingleSampleSpikes) {
  FeedbackBalancer::Options opt;
  opt.ewma_alpha = 0.2;  // heavy smoothing
  FeedbackBalancer damped(opt);
  FeedbackBalancer raw(FeedbackBalancer::Options{.kp = 0.6,
                                                 .ki = 0.15,
                                                 .deadband = 0.05,
                                                 .ewma_alpha = 1.0,
                                                 .integral_cap = 1.0});
  // Long balanced history, then one spiky sample.
  for (int i = 0; i < 10; ++i) {
    damped.when(view_of(0, {34, 33, 33}));
    raw.when(view_of(0, {34, 33, 33}));
  }
  const auto spike = view_of(0, {70, 15, 15});
  raw.when(spike);
  damped.when(spike);
  EXPECT_LT(damped.last_output(), raw.last_output());
}

TEST(Feedback, SingleMdsNeverFires) {
  FeedbackBalancer b;
  EXPECT_FALSE(b.when(view_of(0, {100})));
}

}  // namespace
}  // namespace mantle::balancers
