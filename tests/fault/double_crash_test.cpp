#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "chaos/invariant.hpp"
#include "cluster/cluster.hpp"
#include "obs/trace.hpp"

/// Back-to-back crash of the same rank: the second crash lands while the
/// rank is still replaying its journal from the first one. The takeover
/// and replay timers of the first incarnation must not fire into the
/// second (that is what crash epochs guard), every invariant must hold
/// once the dust settles, and each crash arc must get its own causal
/// span so the timeline shows two distinct recovery episodes.

namespace mantle::fault {
namespace {

using cluster::ClusterConfig;
using cluster::MdsCluster;
using cluster::OpType;
using cluster::RecoveryEvent;
using cluster::Reply;
using cluster::Request;
using mantle::mds::DirFragId;
using mantle::mds::frag_t;
using mantle::mds::InodeId;

struct Harness {
  sim::Engine engine;
  MdsCluster cluster;
  std::vector<Reply> replies;
  std::uint64_t next_id = 1;

  explicit Harness(int num_mds, ClusterConfig cfg = {})
      : cluster(engine, [&] {
          cfg.num_mds = num_mds;
          return cfg;
        }()) {
    cluster.set_reply_handler([this](const Reply& r) { replies.push_back(r); });
  }

  Reply do_op(OpType op, InodeId dir, const std::string& name) {
    Request r;
    r.id = next_id++;
    r.client = 0;
    r.op = op;
    r.dir = dir;
    r.name = name;
    r.issued_at = engine.now();
    const std::size_t before = replies.size();
    cluster.client_submit(std::move(r), 0);
    engine.run();
    EXPECT_EQ(replies.size(), before + 1);
    return replies.back();
  }

  std::size_t recovery_count(RecoveryEvent::Kind kind,
                             mantle::mds::MdsRank rank) const {
    std::size_t n = 0;
    for (const auto& e : cluster.recovery_log())
      n += e.kind == kind && e.rank == rank;
    return n;
  }
};

TEST(DoubleCrash, CrashDuringReplayRecoversCleanly) {
  Harness h(3);

  // Give rank 1 a subtree of its own so both the takeover path and the
  // replay path have real state to move.
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d");
  ASSERT_TRUE(mk.ok);
  for (int i = 0; i < 20; ++i)
    ASSERT_TRUE(h.do_op(OpType::Create, mk.result_ino,
                        "f" + std::to_string(i))
                    .ok);
  const DirFragId d{mk.result_ino, frag_t()};
  ASSERT_TRUE(h.cluster.export_subtree(d, 1));
  h.engine.run();
  ASSERT_EQ(h.cluster.auth_of(d), 1);

  // First crash; let the survivors complete the takeover.
  ASSERT_TRUE(h.cluster.crash_mds(1));
  h.engine.run();
  EXPECT_EQ(h.cluster.crash_epoch(1), 1u);

  // Restart, then crash again a moment later — well inside the replay
  // window (replay_base is 50 ms) — and bring it back once more.
  ASSERT_TRUE(h.cluster.restart_mds(1));
  h.engine.schedule_after(10 * kMsec,
                          [&h] { ASSERT_TRUE(h.cluster.crash_mds(1)); });
  h.engine.schedule_after(200 * kMsec,
                          [&h] { ASSERT_TRUE(h.cluster.restart_mds(1)); });
  h.engine.run();

  // The rank is serving again and its second replay completed.
  EXPECT_TRUE(h.cluster.is_up(1));
  EXPECT_EQ(h.cluster.crash_epoch(1), 2u);
  EXPECT_EQ(h.recovery_count(RecoveryEvent::Kind::Crash, 1), 2u);
  EXPECT_GE(h.recovery_count(RecoveryEvent::Kind::ReplayComplete, 1), 1u);

  // Namespace still serves and every cluster invariant holds, including
  // the quiesce set (no open migration, drained dead letters).
  EXPECT_TRUE(h.do_op(OpType::Lookup, mk.result_ino, "f0").ok);
  chaos::InvariantChecker chk(h.cluster);
  chk.check_quiesce(h.engine.now());
  EXPECT_TRUE(chk.ok()) << chk.violations()[0].invariant << ": "
                        << chk.violations()[0].detail;
}

TEST(DoubleCrash, EachCrashArcGetsItsOwnRecoverySpan) {
  Harness h(3);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d");
  ASSERT_TRUE(mk.ok);

  ASSERT_TRUE(h.cluster.crash_mds(1));
  ASSERT_TRUE(h.cluster.restart_mds(1));
  h.engine.schedule_after(10 * kMsec,
                          [&h] { ASSERT_TRUE(h.cluster.crash_mds(1)); });
  h.engine.schedule_after(200 * kMsec,
                          [&h] { ASSERT_TRUE(h.cluster.restart_mds(1)); });
  h.engine.run();

  // Two Crash trace events for rank 1, with two distinct spans; every
  // recovery-arc event (restart, takeover, replay) belongs to one of them.
  std::set<obs::SpanId> crash_spans;
  std::size_t arc_events = 0;
  for (const auto& e : h.cluster.trace().snapshot()) {
    if (e.rank != 1) continue;
    switch (e.kind) {
      case obs::EventKind::Crash:
        crash_spans.insert(e.span);
        break;
      case obs::EventKind::Restart:
      case obs::EventKind::TakeoverStart:
      case obs::EventKind::TakeoverComplete:
      case obs::EventKind::ReplayComplete:
        ++arc_events;
        EXPECT_TRUE(crash_spans.count(e.span))
            << obs::event_kind_name(e.kind) << " outside any crash span";
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(crash_spans.size(), 2u);
  EXPECT_FALSE(crash_spans.count(obs::kNoSpan));
  EXPECT_GE(arc_events, 2u);
}

}  // namespace
}  // namespace mantle::fault
