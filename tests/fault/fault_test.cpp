#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include "balancers/builtin.hpp"

namespace mantle::fault {
namespace {

using cluster::ClusterConfig;
using cluster::MdsCluster;
using cluster::OpType;
using cluster::RecoveryEvent;
using cluster::Reply;
using cluster::Request;
using mantle::mds::DirFragId;
using mantle::mds::frag_t;
using mantle::mds::InodeId;

struct Harness {
  sim::Engine engine;
  MdsCluster cluster;
  std::vector<Reply> replies;
  std::uint64_t next_id = 1;

  explicit Harness(int num_mds, ClusterConfig cfg = {})
      : cluster(engine, [&] {
          cfg.num_mds = num_mds;
          return cfg;
        }()) {
    cluster.set_reply_handler([this](const Reply& r) { replies.push_back(r); });
  }

  void submit(OpType op, InodeId dir, const std::string& name,
              mantle::mds::MdsRank guess = 0) {
    Request r;
    r.id = next_id++;
    r.client = 0;
    r.op = op;
    r.dir = dir;
    r.name = name;
    r.issued_at = engine.now();
    cluster.client_submit(std::move(r), guess);
  }

  Reply do_op(OpType op, InodeId dir, const std::string& name,
              mantle::mds::MdsRank guess = 0) {
    const std::size_t before = replies.size();
    submit(op, dir, name, guess);
    engine.run();
    EXPECT_EQ(replies.size(), before + 1);
    return replies.back();
  }

  /// Count recovery events of one kind.
  std::size_t recovery_count(RecoveryEvent::Kind kind) const {
    std::size_t n = 0;
    for (const auto& e : cluster.recovery_log()) n += e.kind == kind;
    return n;
  }
};

TEST(Fault, CrashAndRestartFlipLiveness) {
  Harness h(3);
  EXPECT_TRUE(h.cluster.is_up(0));
  EXPECT_EQ(h.cluster.num_up(), 3);

  EXPECT_TRUE(h.cluster.crash_mds(1));
  EXPECT_FALSE(h.cluster.is_up(1));
  EXPECT_EQ(h.cluster.num_up(), 2);
  EXPECT_FALSE(h.cluster.crash_mds(1)) << "already down";

  EXPECT_TRUE(h.cluster.restart_mds(1));
  EXPECT_FALSE(h.cluster.is_up(1)) << "replaying, not serving yet";
  h.engine.run();  // replay completes
  EXPECT_TRUE(h.cluster.is_up(1));
  EXPECT_EQ(h.cluster.num_up(), 3);
  EXPECT_FALSE(h.cluster.restart_mds(1)) << "not down";
}

TEST(Fault, PickUpRankSkipsDeadRanks) {
  Harness h(3);
  EXPECT_EQ(h.cluster.pick_up_rank(0), 1);
  h.cluster.crash_mds(1);
  EXPECT_EQ(h.cluster.pick_up_rank(0), 2);
  h.cluster.crash_mds(0);
  EXPECT_EQ(h.cluster.pick_up_rank(2), 2) << "only survivor, even if avoided";
}

TEST(Fault, CrashDropsQueuedRequestsAndLogsIt) {
  Harness h(1);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d");
  ASSERT_TRUE(mk.ok);
  // Pile up requests, then kill the rank before the engine runs them.
  for (int i = 0; i < 5; ++i)
    h.submit(OpType::Create, mk.result_ino, "f" + std::to_string(i));
  h.engine.run_until(h.engine.now() + h.cluster.config().net_latency + 1);
  const std::size_t before = h.replies.size();
  h.cluster.crash_mds(0);
  h.engine.run();
  EXPECT_EQ(h.replies.size(), before) << "no replies from a dead rank";
  EXPECT_GT(h.cluster.requests_dropped(), 0u);
  ASSERT_EQ(h.recovery_count(RecoveryEvent::Kind::Crash), 1u);
}

TEST(Fault, RestartReplayTimeGrowsWithJournal) {
  // Journal length enters the replay duration linearly. Journals hold
  // migration events, not client ops, so seed entries directly.
  auto replay_time = [](std::size_t entries) {
    Harness h(2, [] {
      ClusterConfig cfg;
      cfg.takeover_on_crash = false;
      return cfg;
    }());
    for (std::size_t i = 0; i < entries; ++i)
      h.cluster.journal(0).append("EExport frag " + std::to_string(i));
    h.cluster.crash_mds(0);
    const Time t0 = h.engine.now();
    h.cluster.restart_mds(0);
    h.engine.run();
    const auto& log = h.cluster.recovery_log();
    EXPECT_GE(log.size(), 3u);  // Crash, RestartStart, ReplayComplete
    const auto& done = log.back();
    EXPECT_EQ(done.kind, RecoveryEvent::Kind::ReplayComplete);
    return done.at - t0;
  };

  Harness probe(1);
  const ClusterConfig& cfg = probe.cluster.config();
  EXPECT_EQ(replay_time(0), cfg.replay_base);
  EXPECT_EQ(replay_time(40), cfg.replay_base + 40 * cfg.replay_per_entry);
  EXPECT_GT(replay_time(40), replay_time(5));
}

TEST(Fault, TakeoverMovesSubtreesToSurvivor) {
  Harness h(3);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "proj");
  const InodeId proj = mk.result_ino;
  h.do_op(OpType::Create, proj, "f");
  const DirFragId frag{proj, frag_t()};
  ASSERT_TRUE(h.cluster.export_subtree(frag, 2));
  h.engine.run();
  ASSERT_EQ(h.cluster.auth_of(frag), 2);

  h.cluster.crash_mds(2);
  h.engine.run();  // replay + adoption
  EXPECT_EQ(h.cluster.auth_of(frag), 0) << "lowest up rank adopts";
  EXPECT_EQ(h.recovery_count(RecoveryEvent::Kind::TakeoverStart), 1u);
  EXPECT_EQ(h.recovery_count(RecoveryEvent::Kind::TakeoverComplete), 1u);
  // The subtree is serviceable on the survivor.
  EXPECT_TRUE(h.do_op(OpType::Create, proj, "g", 0).ok);
}

TEST(Fault, RestartBeforeTakeoverKeepsSubtrees) {
  Harness h(3, [] {
    ClusterConfig cfg;
    cfg.takeover_on_crash = false;  // survivors leave the subtree alone
    return cfg;
  }());
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "proj");
  const InodeId proj = mk.result_ino;
  const DirFragId frag{proj, frag_t()};
  ASSERT_TRUE(h.cluster.export_subtree(frag, 1));
  h.engine.run();

  h.cluster.crash_mds(1);
  // A request for the dead subtree parks instead of vanishing.
  h.submit(OpType::Create, proj, "x", 0);
  h.engine.run();
  EXPECT_EQ(h.cluster.auth_of(frag), 1) << "no takeover configured";

  const std::size_t before = h.replies.size();
  h.cluster.restart_mds(1);
  h.engine.run();
  EXPECT_TRUE(h.cluster.is_up(1));
  ASSERT_EQ(h.replies.size(), before + 1) << "parked request re-injected";
  EXPECT_TRUE(h.replies.back().ok);
}

TEST(Fault, MigrationAbortsWhenImporterDies) {
  Harness h(2);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "proj");
  const InodeId proj = mk.result_ino;
  for (int i = 0; i < 20; ++i)
    h.do_op(OpType::Create, proj, "f" + std::to_string(i));
  const DirFragId frag{proj, frag_t()};
  ASSERT_TRUE(h.cluster.export_subtree(frag, 1));

  // Requests arriving mid-migration are deferred on the frozen subtree.
  h.submit(OpType::Create, proj, "during", 0);
  h.engine.run_until(h.engine.now() + h.cluster.config().net_latency * 3);
  ASSERT_TRUE(h.cluster.is_frozen(frag));

  h.cluster.crash_mds(1);  // importer dies mid-2PC
  h.engine.run();
  ASSERT_EQ(h.cluster.aborted_migrations().size(), 1u);
  EXPECT_EQ(h.cluster.aborted_migrations()[0].to, 1);
  EXPECT_TRUE(h.cluster.migrations().empty()) << "nothing committed";
  EXPECT_EQ(h.cluster.auth_of(frag), 0) << "rollback: exporter keeps subtree";
  EXPECT_FALSE(h.cluster.is_frozen(frag));
  // The deferred request was re-injected and served by the exporter.
  ASSERT_FALSE(h.replies.empty());
  EXPECT_TRUE(h.replies.back().ok);
  EXPECT_EQ(h.replies.back().served_by, 0);
  EXPECT_EQ(h.recovery_count(RecoveryEvent::Kind::MigrationAborted), 1u);
}

TEST(Fault, MigrationAbortsWhenExporterDies) {
  Harness h(3);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "proj");
  const InodeId proj = mk.result_ino;
  h.do_op(OpType::Create, proj, "f");
  const DirFragId frag{proj, frag_t()};
  ASSERT_TRUE(h.cluster.export_subtree(frag, 1));
  h.engine.run();
  ASSERT_EQ(h.cluster.auth_of(frag), 1);

  // Second migration 1 -> 2; kill the exporter mid-flight.
  ASSERT_TRUE(h.cluster.export_subtree(frag, 2));
  ASSERT_TRUE(h.cluster.is_frozen(frag));
  h.cluster.crash_mds(1);
  h.engine.run();
  ASSERT_EQ(h.cluster.aborted_migrations().size(), 1u);
  EXPECT_EQ(h.cluster.aborted_migrations()[0].from, 1);
  EXPECT_FALSE(h.cluster.is_frozen(frag));
  // Takeover replays mds1's journal and hands its subtrees to mds0.
  EXPECT_EQ(h.cluster.auth_of(frag), 0);
  EXPECT_TRUE(h.do_op(OpType::Create, proj, "after", 0).ok);
}

TEST(Fault, ExportRefusedTowardDeadRank) {
  Harness h(2);
  const Reply mk = h.do_op(OpType::Mkdir, h.cluster.ns().root(), "d");
  h.cluster.crash_mds(1);
  EXPECT_FALSE(h.cluster.export_subtree({mk.result_ino, frag_t()}, 1));
}

TEST(Fault, InjectorSchedulesCrashAndRestart) {
  Harness h(2);
  FaultPlan plan;
  plan.crashes.push_back({10 * kSec, 1});
  plan.restarts.push_back({20 * kSec, 1});
  FaultInjector inj(plan);
  inj.arm(h.cluster);

  h.engine.run_until(15 * kSec);
  EXPECT_FALSE(h.cluster.is_up(1));
  h.engine.run_until(60 * kSec);
  h.engine.run();
  EXPECT_TRUE(h.cluster.is_up(1));
  EXPECT_EQ(inj.counters().crashes, 1u);
  EXPECT_EQ(inj.counters().restarts, 1u);
}

TEST(Fault, InjectorDropsHeartbeats) {
  Harness h(2, [] {
    ClusterConfig cfg;
    cfg.bal_interval = kSec;
    return cfg;
  }());
  FaultPlan plan;
  plan.hb_drop_prob = 1.0;  // lose every heartbeat
  FaultInjector inj(plan);
  inj.arm(h.cluster);
  h.cluster.set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  h.cluster.start();
  h.engine.run_until(10 * kSec);
  EXPECT_GT(inj.counters().hb_dropped, 0u);
  EXPECT_EQ(inj.counters().hb_duplicated, 0u);
}

TEST(Fault, InjectorFailsStoreOpsInWindow) {
  Harness h(1);
  FaultPlan plan;
  plan.store_fail_prob = 1.0;
  plan.store_fail_from = 0;
  plan.store_fail_until = 0;  // unbounded
  FaultInjector inj(plan);
  inj.arm(h.cluster);

  auto& store = h.cluster.object_store();
  EXPECT_FALSE(store.write_full("oid", "data").ok);
  EXPECT_FALSE(store.exists("oid")) << "failed op must not mutate";
  EXPECT_GT(store.stats().faults_injected, 0u);
  EXPECT_EQ(inj.counters().store_faults, store.stats().faults_injected);
}

TEST(Fault, ClusterViewAliveHelpers) {
  cluster::ClusterView view;
  view.mdss.resize(3);
  EXPECT_TRUE(view.is_alive(0)) << "empty alive = everyone presumed up";
  EXPECT_EQ(view.alive_count(), 3u);
  view.alive = {1, 0, 1};
  EXPECT_TRUE(view.is_alive(0));
  EXPECT_FALSE(view.is_alive(1));
  EXPECT_EQ(view.alive_count(), 2u);
}

}  // namespace
}  // namespace mantle::fault
