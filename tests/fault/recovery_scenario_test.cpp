#include <gtest/gtest.h>

#include "balancers/builtin.hpp"
#include "fault/fault.hpp"
#include "sim/scenario.hpp"
#include "workloads/create_heavy.hpp"

/// The PR's acceptance scenario: kill 1 of 3 MDS ranks in the middle of a
/// create-heavy workload and assert the recovery contract — aborted
/// migrations re-inject their deferred requests, no client op is lost,
/// survivors stop targeting the dead rank, throughput recovers — plus
/// bitwise determinism of the whole fault timeline across two runs.

namespace mantle::fault {
namespace {

using cluster::MigrationRecord;
using cluster::RecoveryEvent;

constexpr int kDeadRank = 1;

struct ScenarioOpts {
  std::uint64_t seed = 1;
  std::size_t files_per_client = 30000;
  Time crash_at = 8 * kSec;
  Time restart_at = 16 * kSec;
};

struct RunResult {
  Time makespan = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::vector<MigrationRecord> migrations;
  std::vector<MigrationRecord> aborted;
  std::vector<RecoveryEvent> recovery;
  FaultCounters counters;
  Time recovered_at = 0;            // dead rank serving again
  double pre_fault_tput = 0.0;      // completed ops/s in [2s, crash)
  double post_recovery_tput = 0.0;  // same-length window after recovery
};

RunResult run_scenario(const ScenarioOpts& o) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 3;
  cfg.cluster.seed = o.seed;
  cfg.cluster.bal_interval = kSec;  // balance often: migrations mid-run
  cfg.cluster.split_size = 300;
  cfg.cluster.laggy_factor = 3.0;
  cfg.retry.timeout = 2 * kSec;     // clients survive the dead rank
  cfg.max_time = 10 * kMinute;
  sim::Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  for (int c = 0; c < 6; ++c)
    s.add_client(workloads::make_shared_create_workload(
        c, "/shared", o.files_per_client, /*think=*/200));

  FaultPlan plan;
  plan.seed = o.seed;
  plan.crashes.push_back({o.crash_at, kDeadRank});
  plan.restarts.push_back({o.restart_at, kDeadRank});
  FaultInjector inj(plan);
  inj.arm(s.cluster());

  // Sample completed-op counts to compute windowed throughput.
  std::vector<std::pair<Time, std::uint64_t>> samples;
  s.add_probe(kSec / 2, [&](Time t) {
    samples.emplace_back(t, s.cluster().total_completed());
  });

  RunResult r;
  r.makespan = s.run();
  for (const auto& c : s.clients()) {
    r.completed += c->ops_completed();
    r.failed += c->ops_failed();
    r.retries += c->retries();
  }
  r.migrations = s.cluster().migrations();
  r.aborted = s.cluster().aborted_migrations();
  r.recovery = s.cluster().recovery_log();
  r.counters = inj.counters();

  r.recovered_at = o.restart_at;
  for (const auto& e : r.recovery)
    if (e.kind == RecoveryEvent::Kind::ReplayComplete) r.recovered_at = e.at;

  auto ops_at = [&](Time t) -> double {
    std::uint64_t prev = 0;
    for (const auto& [st, n] : samples) {
      if (st > t) break;
      prev = n;
    }
    return static_cast<double>(prev);
  };
  const double pre_w = to_seconds(o.crash_at - 2 * kSec);
  r.pre_fault_tput = (ops_at(o.crash_at) - ops_at(2 * kSec)) / pre_w;
  const Time w0 = r.recovered_at + 2 * kSec;
  const Time w1 = w0 + (o.crash_at - 2 * kSec);
  r.post_recovery_tput = (ops_at(w1) - ops_at(w0)) / pre_w;
  return r;
}

TEST(RecoveryScenario, KillOneOfThreeMidWorkload) {
  const ScenarioOpts o{/*seed=*/11};
  const RunResult r = run_scenario(o);

  // The run completed inside the horizon: every client got every op
  // answered (possibly via retries), i.e. nothing was lost for good.
  ASSERT_LT(r.makespan, 10 * kMinute);
  // Sanity: the workload actually spanned the outage and the recovery.
  ASSERT_GT(r.makespan, r.recovered_at + 4 * kSec)
      << "scenario finished too early to exercise recovery";

  // (b) No request lost: 6 clients x (1 mkdir + N creates) all resolved.
  // The shared-dir mkdir races mean up to 5 losing mkdirs fail at their
  // clients (same as the fault-free shared-dir scenario); nothing else may
  // fail, because at-least-once retries absorb the crash.
  EXPECT_EQ(r.completed + r.failed, 6u * (o.files_per_client + 1));
  EXPECT_LE(r.failed, 5u) << "only losing mkdirs may fail";
  EXPECT_GT(r.retries, 0u) << "ops in flight at the crash must have retried";
  EXPECT_EQ(r.counters.crashes, 1u);
  EXPECT_EQ(r.counters.restarts, 1u);

  // (a) Any migration in flight at the crash aborted, tagged with the dead
  // rank, at the crash time. (Deferred requests were re-injected — covered
  // by (b): none of them may be lost.)
  for (const auto& m : r.aborted) {
    EXPECT_TRUE(m.from == kDeadRank || m.to == kDeadRank);
    EXPECT_GE(m.finished, o.crash_at);
    EXPECT_LE(m.finished, o.crash_at + kSec);
  }

  // (c) Survivors stop targeting the dead rank: no migration toward it
  // starts while it is down (mechanism refusal + laggy view exclusion).
  for (const auto& m : r.migrations) {
    if (m.started > o.crash_at && m.started < r.recovered_at) {
      EXPECT_NE(m.to, kDeadRank)
          << "export toward a dead rank at t=" << m.started;
    }
  }

  // The recovery log tells the story in order: crash first, then replay
  // completion once the rank restarted.
  ASSERT_FALSE(r.recovery.empty());
  EXPECT_EQ(r.recovery.front().kind, RecoveryEvent::Kind::Crash);
  EXPECT_EQ(r.recovery.front().rank, kDeadRank);
  bool replay_done = false;
  for (const auto& e : r.recovery)
    replay_done |= e.kind == RecoveryEvent::Kind::ReplayComplete &&
                   e.rank == kDeadRank;
  EXPECT_TRUE(replay_done);

  // (d) Post-recovery throughput within 10% of the pre-fault steady state
  // (or better: recovery may leave the cluster better balanced).
  ASSERT_GT(r.pre_fault_tput, 0.0);
  EXPECT_GE(r.post_recovery_tput, 0.9 * r.pre_fault_tput)
      << "pre=" << r.pre_fault_tput << " post=" << r.post_recovery_tput;
}

TEST(RecoveryScenario, DeterministicAcrossRuns) {
  // Same seed + same FaultPlan => identical migration records, identical
  // recovery event sequence, identical client-visible outcome.
  ScenarioOpts o;
  o.seed = 23;
  o.files_per_client = 8000;
  o.crash_at = 3 * kSec;
  o.restart_at = 6 * kSec;
  const RunResult a = run_scenario(o);
  const RunResult b = run_scenario(o);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.recovery, b.recovery);

  // A different seed perturbs the timeline (sanity check that the
  // comparison above is not vacuous).
  ScenarioOpts o2 = o;
  o2.seed = 24;
  const RunResult c = run_scenario(o2);
  EXPECT_NE(a.makespan, c.makespan);
}

TEST(RecoveryScenario, HeartbeatFaultsDoNotLoseRequests) {
  // A flaky network (drops, dups, delays) plus transient store failures
  // must degrade balancing, never correctness.
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 3;
  cfg.cluster.seed = 5;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.split_size = 300;
  cfg.retry.timeout = 2 * kSec;
  sim::Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  // Big enough that the run spans many balancer rounds: each round sends
  // num_mds*(num_mds-1) heartbeats, and every fault kind must trigger.
  for (int c = 0; c < 3; ++c)
    s.add_client(
        workloads::make_shared_create_workload(c, "/shared", 20000, 200));

  FaultPlan plan;
  plan.seed = 5;
  plan.hb_drop_prob = 0.4;
  plan.hb_duplicate_prob = 0.3;
  plan.hb_delay_prob = 0.5;
  plan.hb_delay_max = 2 * kSec;
  plan.store_fail_prob = 0.01;
  FaultInjector inj(plan);
  inj.arm(s.cluster());

  const Time makespan = s.run();
  ASSERT_LT(makespan, cfg.max_time);
  std::uint64_t completed = 0, failed = 0;
  for (const auto& c : s.clients()) {
    completed += c->ops_completed();
    failed += c->ops_failed();
  }
  EXPECT_EQ(completed + failed, 3u * 20001u);
  EXPECT_LE(failed, 2u);
  EXPECT_GT(inj.counters().hb_dropped, 0u);
  EXPECT_GT(inj.counters().hb_duplicated, 0u);
  EXPECT_GT(inj.counters().hb_delayed, 0u);
  EXPECT_GT(inj.counters().store_faults, 0u);
}

}  // namespace
}  // namespace mantle::fault
