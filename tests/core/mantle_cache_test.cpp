/// Tests for the compile-once policy pipeline in MantleBalancer: each hook
/// is parsed exactly once per injection, re-injection invalidates the
/// cached program (and is counted + traced), and a buggy replacement
/// policy degrades to "no migration" — never to a stale cached decision.

#include "core/mantle.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mantle::core {
namespace {

using cluster::ClusterView;
using cluster::PopSnapshot;

ClusterView make_view(int whoami, std::vector<double> loads) {
  ClusterView v;
  v.whoami = whoami;
  v.mdss.resize(loads.size());
  v.loads.resize(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    v.mdss[i].rank = static_cast<int>(i);
    v.mdss[i].all_metaload = loads[i];
    v.mdss[i].auth_metaload = loads[i];
    v.loads[i] = loads[i];
    v.total_load += loads[i];
  }
  return v;
}

TEST(MantleCache, TenThousandEvalsParseOnce) {
  // The regression the pipeline exists to prevent: the old eval() path
  // re-built "return (<src>)" and re-parsed it on every single call.
  MantleBalancer b(MantlePolicy{"IRD + 2*IWR", "", "", "", ""});
  EXPECT_EQ(b.cache_stats().parses, 1u);
  EXPECT_EQ(b.cache_stats().misses, 1u);
  PopSnapshot p;
  p.ird = 1.0;
  p.iwr = 2.0;
  for (int i = 0; i < 10000; ++i) EXPECT_DOUBLE_EQ(b.metaload(p), 5.0);
  EXPECT_EQ(b.cache_stats().parses, 1u);  // still exactly one parse
  EXPECT_EQ(b.cache_stats().hits, 10000u);
  EXPECT_EQ(b.cache_stats().recompiles, 0u);
  EXPECT_EQ(b.hook_errors(), 0u);
}

TEST(MantleCache, EveryHookOfAFullPolicyCompilesOnce) {
  MantleBalancer b(scripts::original());
  EXPECT_EQ(b.cache_stats().misses, 5u);  // one per non-empty hook
  const auto view = make_view(0, {90, 10, 20});
  for (int i = 0; i < 100; ++i) {
    PopSnapshot p;
    b.metaload(p);
    b.mdsload(view.mdss[1]);
    if (b.when(view)) b.where(view);
    b.howmuch();
  }
  EXPECT_EQ(b.cache_stats().misses, 5u);
  EXPECT_EQ(b.cache_stats().recompiles, 0u);
  EXPECT_EQ(b.hook_errors(), 0u);
}

TEST(MantleCache, ChunkFormCostsOneExtraParse) {
  // A metaload hook that is not a bare expression fails the expression
  // parse once, then compiles as a chunk — two parses total, ever.
  MantleBalancer b(MantlePolicy{"metaload = IRD + IWR", "", "", "", ""});
  EXPECT_EQ(b.cache_stats().parses, 2u);
  PopSnapshot p;
  p.ird = 3.0;
  p.iwr = 4.0;
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(b.metaload(p), 7.0);
  EXPECT_EQ(b.cache_stats().parses, 2u);
}

TEST(MantleCache, ReinjectionInvalidatesAndNextTickUsesNewPolicy) {
  MantleBalancer b(MantlePolicy{"IWR", "", "", "", ""});
  PopSnapshot p;
  p.ird = 100.0;
  p.iwr = 7.0;
  EXPECT_DOUBLE_EQ(b.metaload(p), 7.0);
  EXPECT_EQ(b.cache_stats().recompiles, 0u);

  ASSERT_EQ(b.inject("mds_bal_metaload", "IRD"), "");
  EXPECT_EQ(b.cache_stats().recompiles, 1u);
  // The very next evaluation runs the new program, not the cached old one.
  EXPECT_DOUBLE_EQ(b.metaload(p), 100.0);

  // Re-injecting the identical source is a no-op for the cache.
  ASSERT_EQ(b.inject("mds_bal_metaload", "IRD"), "");
  EXPECT_EQ(b.cache_stats().recompiles, 1u);
}

TEST(MantleCache, RejectedInjectionLeavesCacheAndPolicyUntouched) {
  MantleBalancer b(MantlePolicy{"IWR", "", "", "", ""});
  const auto before = b.cache_stats();
  EXPECT_NE(b.inject("mds_bal_metaload", "while 1 do end"), "");
  EXPECT_EQ(b.cache_stats().recompiles, before.recompiles);
  EXPECT_EQ(b.policy().metaload, "IWR");
  PopSnapshot p;
  p.iwr = 7.0;
  EXPECT_DOUBLE_EQ(b.metaload(p), 7.0);
}

TEST(MantleCache, BuggyReplacementDegradesToNoMigrationNotStaleDecision) {
  // Start with a when policy that reliably says "migrate".
  MantlePolicy policy;
  policy.mdsload = "MDSs[i][\"all\"]";
  policy.when = "go = 1 targets[2] = MDSs[whoami][\"load\"] / 2";
  MantleBalancer b(policy);
  auto small = make_view(0, {100, 0, 0});
  ASSERT_TRUE(b.when(small));

  // Replace it with a policy that is fine on the 3-rank validation probe
  // but blows up on larger clusters (whoami 5 calls an undefined global).
  const char* buggy = R"(
    if whoami == 5 then boom() end
    go = 1
    targets[2] = MDSs[whoami]["load"] / 2
  )";
  ASSERT_EQ(b.inject("mds_bal_when", buggy), "");

  // On a small view the new policy still works...
  small = make_view(0, {100, 0, 0});
  EXPECT_TRUE(b.when(small));

  // ...and on the view that triggers the bug the balancer degrades to "no
  // migration" and counts the error — it must NOT replay the old cached
  // program or the previous tick's decision.
  const std::uint64_t errs = b.hook_errors();
  auto big = make_view(4, {0, 0, 0, 0, 100});
  EXPECT_FALSE(b.when(big));
  EXPECT_GT(b.hook_errors(), errs);
  // where() after a failed when() ships nothing.
  for (const double t : b.where(big)) EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(MantleCache, CountersExportToRegistryAndRecompileIsTraced) {
  obs::MetricsRegistry metrics;
  obs::TraceSink trace;
  MantleBalancer b(scripts::original());
  // Construction-time compiles predate the attach; the registry counters
  // must be reconciled, not lost.
  b.attach_observability(&metrics, &trace);
  EXPECT_EQ(metrics.counter("mantle_policy_cache_misses_total").value(), 5u);
  EXPECT_EQ(metrics.counter("mantle_policy_cache_hits_total").value(), 0u);

  PopSnapshot p;
  b.metaload(p);
  EXPECT_EQ(metrics.counter("mantle_policy_cache_hits_total").value(), 1u);

  ASSERT_EQ(b.inject("mds_bal_metaload", "IRD + IWR"), "");
  EXPECT_EQ(metrics.counter("mantle_policy_cache_recompiles_total").value(),
            1u);
  bool saw_recompile = false;
  for (const auto& ev : trace.snapshot()) {
    if (ev.kind == obs::EventKind::PolicyRecompile) {
      saw_recompile = true;
      EXPECT_EQ(ev.detail, "metaload");
    }
  }
  EXPECT_TRUE(saw_recompile);
}

}  // namespace
}  // namespace mantle::core
