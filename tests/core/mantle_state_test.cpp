#include <gtest/gtest.h>

#include "core/mantle.hpp"

namespace mantle::core {
namespace {

using cluster::ClusterView;

ClusterView hot_view() {
  ClusterView v;
  v.whoami = 0;
  v.mdss.resize(2);
  v.mdss[0].rank = 0;
  v.mdss[0].all_metaload = 100.0;
  v.mdss[0].cpu_pct = 80.0;
  v.mdss[1].rank = 1;
  v.loads = {100.0, 0.0};
  v.total_load = 100.0;
  return v;
}

MantlePolicy counting_policy() {
  // Counts its own invocations through WRstate/RDstate.
  MantlePolicy p;
  p.metaload = "IWR";
  p.mdsload = "MDSs[i]['all']";
  p.when = R"(
    n = RDstate()
    WRstate(n + 1)
    return false
  )";
  return p;
}

TEST(MantleState, DefaultsToZeroAndPersistsInMemory) {
  MantleBalancer b(counting_policy());
  const auto v = hot_view();
  for (int i = 0; i < 5; ++i) b.when(v);
  // Read the counter back via a different hook evaluation.
  MantlePolicy probe = counting_policy();
  probe.when = "return RDstate() >= 5";
  EXPECT_EQ(b.inject("mds_bal_when", probe.when), "");
  EXPECT_TRUE(b.when(v));
  EXPECT_EQ(b.hook_errors(), 0u) << b.last_error();
}

TEST(MantleState, DurableStateSurvivesReconstruction) {
  store::ObjectStore store;
  MantleBalancer::Options opt;
  opt.state_store = &store;
  opt.state_oid = "mantle.state.mds0";

  {
    MantleBalancer b(counting_policy(), opt);
    const auto v = hot_view();
    for (int i = 0; i < 3; ++i) b.when(v);
    EXPECT_EQ(b.hook_errors(), 0u) << b.last_error();
  }
  // "Restart" the MDS: a new balancer recovers the counter from the
  // object store instead of starting from zero.
  MantlePolicy probe = counting_policy();
  probe.when = "return RDstate() == 3";
  MantleBalancer b2(probe, opt);
  EXPECT_TRUE(b2.when(hot_view()));
  EXPECT_EQ(b2.hook_errors(), 0u) << b2.last_error();
}

TEST(MantleState, DurableStateHandlesStringsAndBooleans) {
  store::ObjectStore store;
  MantleBalancer::Options opt;
  opt.state_store = &store;
  opt.state_oid = "state";

  MantlePolicy p;
  p.when = "WRstate('phase-two') return false";
  {
    MantleBalancer b(p, opt);
    b.when(hot_view());
  }
  MantlePolicy probe;
  probe.when = "return RDstate() == 'phase-two'";
  MantleBalancer b2(probe, opt);
  EXPECT_TRUE(b2.when(hot_view()));

  MantlePolicy pb;
  pb.when = "WRstate(true) return false";
  {
    MantleBalancer b(pb, opt);
    b.when(hot_view());
  }
  MantlePolicy probe2;
  probe2.when = "return RDstate() == true";
  MantleBalancer b3(probe2, opt);
  EXPECT_TRUE(b3.when(hot_view()));
}

TEST(MantleState, MissingObjectMeansFreshState) {
  store::ObjectStore store;
  MantleBalancer::Options opt;
  opt.state_store = &store;
  opt.state_oid = "never-written";
  MantlePolicy probe;
  probe.when = "return RDstate() == 0";
  MantleBalancer b(probe, opt);
  EXPECT_TRUE(b.when(hot_view()));
}

TEST(MantleState, FillAndSpillRunsDurable) {
  store::ObjectStore store;
  MantleBalancer::Options opt;
  opt.state_store = &store;
  opt.state_oid = "fs-state";
  MantleBalancer b(scripts::fill_and_spill(48.0, 0.25), opt);
  const auto v = hot_view();
  EXPECT_FALSE(b.when(v));   // first hot tick arms the hold
  EXPECT_FALSE(b.when(v));   // second hot tick still holds
  // The hold counter is in the store now.
  std::string raw;
  ASSERT_TRUE(store.read("fs-state", &raw).ok);
  EXPECT_EQ(raw[0], 'n');
  EXPECT_TRUE(b.when(v));    // third consecutive hot tick fires
  EXPECT_EQ(b.hook_errors(), 0u) << b.last_error();
}

}  // namespace
}  // namespace mantle::core
