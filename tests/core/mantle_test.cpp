#include "core/mantle.hpp"

#include <gtest/gtest.h>

#include "balancers/builtin.hpp"

namespace mantle::core {
namespace {

using cluster::ClusterView;
using cluster::HeartbeatPayload;
using cluster::PopSnapshot;

ClusterView make_view(int whoami, std::vector<double> loads,
                      std::vector<double> cpu = {}) {
  ClusterView v;
  v.whoami = whoami;
  v.mdss.resize(loads.size());
  v.loads.resize(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    v.mdss[i].rank = static_cast<int>(i);
    v.mdss[i].all_metaload = loads[i];
    v.mdss[i].auth_metaload = loads[i];
    v.mdss[i].cpu_pct = i < cpu.size() ? cpu[i] : 0.0;
    v.loads[i] = loads[i];
    v.total_load += loads[i];
  }
  return v;
}

TEST(Mantle, MetaloadExpression) {
  MantleBalancer b(MantlePolicy{"IWR", "", "", "", ""});
  PopSnapshot p;
  p.iwr = 12.5;
  p.ird = 100.0;  // ignored by this policy
  EXPECT_DOUBLE_EQ(b.metaload(p), 12.5);
  EXPECT_EQ(b.hook_errors(), 0u);
}

TEST(Mantle, MetaloadChunkAssignmentForm) {
  // "mds_bal_metaload IWR" is an expression, but chunk form works too.
  MantleBalancer b(MantlePolicy{"metaload = IRD + 2*IWR", "", "", "", ""});
  PopSnapshot p;
  p.ird = 3.0;
  p.iwr = 4.0;
  EXPECT_DOUBLE_EQ(b.metaload(p), 11.0);
}

TEST(Mantle, MetaloadTable1Formula) {
  MantleBalancer b(scripts::original());
  const PopSnapshot p{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(b.metaload(p), 1 + 4 + 3 + 8 + 20.0);
}

TEST(Mantle, MdsloadSeesMdssAtIndexI) {
  MantleBalancer b(scripts::original());
  HeartbeatPayload hb;
  hb.rank = 2;  // arbitrary: the hook must find MDSs[i] regardless of rank
  hb.auth_metaload = 100.0;
  hb.all_metaload = 150.0;
  hb.req_rate = 42.0;
  hb.queue_len = 3.0;
  EXPECT_DOUBLE_EQ(b.mdsload(hb), 0.8 * 100 + 0.2 * 150 + 42 + 30);
  EXPECT_EQ(b.hook_errors(), 0u);
}

TEST(Mantle, WhenThenFragmentForm) {
  // Table 1's when is literally "if my load > total/#MDSs then".
  MantleBalancer b(scripts::original());
  EXPECT_TRUE(b.when(make_view(0, {90, 10, 20})));
  EXPECT_FALSE(b.when(make_view(1, {90, 10, 20})));
  EXPECT_EQ(b.hook_errors(), 0u);
}

TEST(Mantle, WhenGoConventionForm) {
  MantlePolicy p;
  p.when = "go = 0 if MDSs[whoami]['load'] > 50 then go = 1 end";
  MantleBalancer b(p);
  EXPECT_TRUE(b.when(make_view(0, {60, 0})));
  EXPECT_FALSE(b.when(make_view(0, {40, 0})));
}

TEST(Mantle, WhenReturnConventionForm) {
  MantlePolicy p;
  p.when = "return MDSs[whoami]['load'] > total/2";
  MantleBalancer b(p);
  EXPECT_TRUE(b.when(make_view(0, {60, 10})));
  EXPECT_FALSE(b.when(make_view(1, {60, 10})));
}

TEST(Mantle, CombinedWhenWhereFillsTargets) {
  // Listing 1 style: the when chunk fills targets itself.
  MantleBalancer b(scripts::greedy_spill());
  const auto v = make_view(0, {100, 0});
  ASSERT_TRUE(b.when(v));
  const auto t = b.where(v);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t[1], 50.0);
  EXPECT_EQ(b.hook_errors(), 0u);
}

TEST(Mantle, SeparateWhereHook) {
  MantleBalancer b(scripts::original());
  const auto v = make_view(0, {90, 10, 20});
  ASSERT_TRUE(b.when(v));
  const auto t = b.where(v);
  EXPECT_NEAR(t[1], 50.0 * 30 / 50, 1e-9);
  EXPECT_NEAR(t[2], 50.0 * 20 / 50, 1e-9);
}

TEST(Mantle, HowmuchParsesSelectorList) {
  MantleBalancer b(scripts::adaptable());
  const auto names = b.howmuch();
  EXPECT_EQ(names, (std::vector<std::string>{"half", "small", "big", "big_small"}));
}

TEST(Mantle, HowmuchDefaultsWhenEmpty) {
  MantleBalancer b(MantlePolicy{});
  EXPECT_EQ(b.howmuch(), std::vector<std::string>{"big_first"});
}

TEST(Mantle, StateSurvivesAcrossTicks) {
  // Fill & Spill's WRstate/RDstate hold counter (Listing 3).
  MantleBalancer b(scripts::fill_and_spill(48.0, 0.25));
  const auto hot = make_view(0, {100, 0}, {80, 5});
  EXPECT_FALSE(b.when(hot));   // streak 0 -> 1: first hot tick arms
  EXPECT_FALSE(b.when(hot));   // streak 1 -> 2
  EXPECT_TRUE(b.when(hot));    // third consecutive hot tick fires
  EXPECT_FALSE(b.when(hot));   // streak reset: holds again
  EXPECT_FALSE(b.when(hot));
  EXPECT_TRUE(b.when(hot));    // fires again
  const auto t = b.where(hot);
  EXPECT_DOUBLE_EQ(t[1], 25.0);
  EXPECT_EQ(b.hook_errors(), 0u);
}

TEST(Mantle, BrokenHookIsContainedNotFatal) {
  MantlePolicy p;
  p.metaload = "IWR +";  // would not parse as expression or chunk...
  // validate rejects it, so build with a bad-at-runtime one instead:
  p.metaload = "nonexistent_table['x']";
  MantleBalancer b(p);
  EXPECT_DOUBLE_EQ(b.metaload(PopSnapshot{}), 0.0);
  EXPECT_GT(b.hook_errors(), 0u);
  EXPECT_FALSE(b.last_error().empty());
}

TEST(Mantle, WhereClampsNegativeAndNonFiniteTargets) {
  // A buggy policy writing NaN/inf/negative amounts must degrade to "send
  // nothing to that rank", counted via hook_errors, never crash or export
  // garbage into the migration machinery.
  MantlePolicy p;
  p.when = "go = 1";
  p.where = "targets[1] = 0/0 targets[2] = -50 targets[3] = 7";
  MantleBalancer b(p);
  const auto v = make_view(0, {90, 10, 20});
  ASSERT_TRUE(b.when(v));
  const auto t = b.where(v);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0], 0.0) << "NaN clamps to 0";
  EXPECT_DOUBLE_EQ(t[1], 0.0) << "negative clamps to 0";
  EXPECT_DOUBLE_EQ(t[2], 7.0) << "sane target untouched";
  EXPECT_GE(b.hook_errors(), 2u);
  EXPECT_FALSE(b.last_error().empty());
}

TEST(Mantle, WhereIgnoresOutOfRangeAndStringTargets) {
  MantlePolicy p;
  p.when = "go = 1";
  // Index 9 is beyond the 3-rank cluster; 0 is below the 1-based range;
  // a string key never names a rank. All are dropped, all are counted.
  p.where = "targets[9] = 5 targets[0] = 5 targets['mds1'] = 5 targets[2] = 3";
  MantleBalancer b(p);
  const auto v = make_view(0, {90, 10, 20});
  ASSERT_TRUE(b.when(v));
  const auto t = b.where(v);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(t[1], 3.0) << "in-range target survives the bad ones";
  EXPECT_DOUBLE_EQ(t[2], 0.0);
  EXPECT_GE(b.hook_errors(), 3u);
}

TEST(Mantle, WhenFilledTargetsAreSanitizedToo) {
  // Listings 1-2 style: the when chunk fills targets itself. The same
  // sanitization applies before the cached targets reach the cluster.
  MantlePolicy p;
  p.when = "targets[2] = -1 targets[8] = 100 go = 1";
  MantleBalancer b(p);
  const auto v = make_view(0, {90, 10});
  // All candidate targets were bad, so when() reports nothing to migrate
  // unless the hook said go explicitly — it did, so when() is true but
  // where() hands back all-zero targets.
  ASSERT_TRUE(b.when(v));
  const auto t = b.where(v);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(t[1], 0.0);
  EXPECT_GE(b.hook_errors(), 2u);
}

TEST(Mantle, InfiniteLoopHookIsKilledByBudget) {
  MantlePolicy p;
  p.when = "while 1 do end";
  MantleBalancer::Options opt;
  opt.budget = 10000;
  MantleBalancer b(p, opt);
  EXPECT_FALSE(b.when(make_view(0, {10, 0})));
  EXPECT_GT(b.hook_errors(), 0u);
  EXPECT_NE(b.last_error().find("budget"), std::string::npos);
}

TEST(Mantle, InjectReplacesHookAfterValidation) {
  MantleBalancer b(scripts::greedy_spill());
  EXPECT_EQ(b.inject("mds_bal_metaload", "IRD + IWR"), "");
  PopSnapshot p;
  p.ird = 1.0;
  p.iwr = 2.0;
  EXPECT_DOUBLE_EQ(b.metaload(p), 3.0);
  // Bad injections are rejected and leave the policy untouched.
  EXPECT_NE(b.inject("mds_bal_metaload", "IWR +"), "");
  EXPECT_DOUBLE_EQ(b.metaload(p), 3.0);
  EXPECT_NE(b.inject("mds_bal_bogus_key", "1"), "");
}

TEST(MantleValidate, AcceptsAllPaperPolicies) {
  EXPECT_EQ(validate_policy(scripts::original()), "");
  EXPECT_EQ(validate_policy(scripts::greedy_spill()), "");
  EXPECT_EQ(validate_policy(scripts::greedy_spill_even()), "");
  EXPECT_EQ(validate_policy(scripts::fill_and_spill()), "");
  EXPECT_EQ(validate_policy(scripts::adaptable()), "");
}

TEST(MantleValidate, RejectsSyntaxErrors) {
  MantlePolicy p;
  p.when = "if then";
  EXPECT_NE(validate_policy(p), "");
}

TEST(MantleValidate, RejectsInfiniteLoops) {
  // The paper's motivating example: "the administrator can inject bad
  // policies (e.g. while 1) that brings the whole system down".
  MantlePolicy p;
  p.when = "while 1 do end";
  const std::string err = validate_policy(p, 100000);
  EXPECT_NE(err.find("budget"), std::string::npos) << err;
}

TEST(MantleValidate, RejectsRuntimeFaults) {
  MantlePolicy p;
  p.when = "x = MDSs[whoami]['load'] + {}";  // arithmetic on a table
  EXPECT_NE(validate_policy(p), "");
}

// ===========================================================================
// Differential tests: each paper policy expressed in Lua must decide
// exactly as its native C++ twin across a grid of cluster states.
// ===========================================================================

class Differential : public ::testing::TestWithParam<int> {};

/// The effective decision of a balancer on a view: did it choose to
/// migrate (when() passed AND some target got load), and where. `when()`
/// returning true with all-zero targets is a no-op in the mechanism, so
/// equivalence is judged on the net effect.
bool decides(cluster::Balancer& b, const ClusterView& v,
             std::vector<double>* targets) {
  if (!b.when(v)) return false;
  *targets = b.where(v);
  for (const double x : *targets)
    if (x > 0.0) return true;
  return false;
}

std::vector<ClusterView> state_grid(int n) {
  std::vector<std::vector<double>> load_sets = {
      std::vector<double>(static_cast<std::size_t>(n), 0.0),
      {},  // filled below
  };
  load_sets.pop_back();
  // A few characteristic load shapes.
  std::vector<std::vector<double>> shapes;
  std::vector<double> one(static_cast<std::size_t>(n), 0.0);
  one[0] = 100.0;
  shapes.push_back(one);
  std::vector<double> even(static_cast<std::size_t>(n), 25.0);
  shapes.push_back(even);
  std::vector<double> skew;
  for (int i = 0; i < n; ++i) skew.push_back(100.0 / (1 << i));
  shapes.push_back(skew);
  std::vector<double> rev;
  for (int i = 0; i < n; ++i) rev.push_back(static_cast<double>(i) * 10.0);
  shapes.push_back(rev);
  shapes.push_back(std::vector<double>(static_cast<std::size_t>(n), 0.0));

  std::vector<ClusterView> views;
  for (const auto& s : shapes)
    for (int w = 0; w < n; ++w)
      views.push_back(make_view(w, s, std::vector<double>(s.begin(), s.end())));
  return views;
}

template <typename Native, typename PolicyFn>
void expect_equivalent(int n, PolicyFn make_policy) {
  for (const ClusterView& v : state_grid(n)) {
    Native native;
    MantleBalancer script(make_policy());
    std::vector<double> nt;
    std::vector<double> st;
    const bool nd = decides(native, v, &nt);
    const bool sd = decides(script, v, &st);
    EXPECT_EQ(nd, sd) << "whoami=" << v.whoami << " n=" << n;
    if (nd && sd) {
      ASSERT_EQ(nt.size(), st.size());
      for (std::size_t i = 0; i < nt.size(); ++i)
        EXPECT_NEAR(nt[i], st[i], 1e-9) << "target " << i;
    }
    EXPECT_EQ(script.hook_errors(), 0u) << script.last_error();
  }
}

TEST_P(Differential, GreedySpillMatchesNative) {
  expect_equivalent<balancers::GreedySpillBalancer>(
      GetParam(), [] { return scripts::greedy_spill(); });
}

TEST_P(Differential, GreedySpillEvenMatchesNative) {
  expect_equivalent<balancers::GreedySpillEvenBalancer>(
      GetParam(), [] { return scripts::greedy_spill_even(); });
}

TEST_P(Differential, AdaptableMatchesNative) {
  expect_equivalent<balancers::AdaptableBalancer>(
      GetParam(), [] { return scripts::adaptable(); });
}

TEST_P(Differential, OriginalMatchesNative) {
  expect_equivalent<balancers::OriginalBalancer>(
      GetParam(), [] { return scripts::original(); });
}

TEST_P(Differential, FillSpillMatchesNativeOverTime) {
  const int n = GetParam();
  // Stateful policy: drive both through the same tick sequence.
  balancers::FillSpillBalancer native;
  MantleBalancer script(scripts::fill_and_spill());
  std::vector<double> loads(static_cast<std::size_t>(n), 0.0);
  loads[0] = 100.0;
  std::vector<double> hot_cpu(static_cast<std::size_t>(n), 5.0);
  hot_cpu[0] = 80.0;
  std::vector<double> cool_cpu(static_cast<std::size_t>(n), 5.0);
  const bool seq[] = {true, true, true, false, true, true, true, true, true};
  for (const bool hot : seq) {
    const ClusterView v = make_view(0, loads, hot ? hot_cpu : cool_cpu);
    std::vector<double> nt;
    std::vector<double> st;
    const bool nd = decides(native, v, &nt);
    const bool sd = decides(script, v, &st);
    EXPECT_EQ(nd, sd);
    if (nd && sd) {
      for (std::size_t i = 0; i < nt.size(); ++i) EXPECT_NEAR(nt[i], st[i], 1e-9);
    }
  }
  EXPECT_EQ(script.hook_errors(), 0u) << script.last_error();
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, Differential, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mantle::core
