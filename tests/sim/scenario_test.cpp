#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include "balancers/builtin.hpp"
#include "core/mantle.hpp"
#include "workloads/compile.hpp"
#include "workloads/create_heavy.hpp"

namespace mantle::sim {
namespace {

TEST(Scenario, SingleClientSingleMdsCompletes) {
  ScenarioConfig cfg;
  cfg.cluster.num_mds = 1;
  Scenario s(cfg);
  s.add_client(workloads::make_private_create_workload(0, 500, /*think=*/100));
  const Time makespan = s.run();
  EXPECT_GT(makespan, 0u);
  EXPECT_TRUE(s.client(0).done());
  EXPECT_EQ(s.client(0).ops_completed(), 501u);  // mkdir + 500 creates
  EXPECT_EQ(s.client(0).ops_failed(), 0u);
  EXPECT_EQ(s.cluster().total_completed(), 501u);
  EXPECT_GT(s.aggregate_throughput(), 0.0);
  // The namespace holds what was created.
  EXPECT_EQ(s.cluster().ns().subtree_entries(s.cluster().ns().root()), 501u);
}

TEST(Scenario, DeterministicForSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    ScenarioConfig cfg;
    cfg.cluster.num_mds = 2;
    cfg.cluster.seed = seed;
    Scenario s(cfg);
    s.cluster().set_balancer_all(
        [](int) { return std::make_unique<balancers::GreedySpillBalancer>(); });
    s.add_client(workloads::make_private_create_workload(0, 800, 100));
    s.add_client(workloads::make_private_create_workload(1, 800, 100));
    return s.run();
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));  // different seed, different timeline
}

TEST(Scenario, LatenciesAreRecorded) {
  ScenarioConfig cfg;
  cfg.cluster.num_mds = 1;
  Scenario s(cfg);
  s.add_client(workloads::make_private_create_workload(0, 200, 50));
  s.run();
  const auto lat = s.pooled_latencies_ms();
  EXPECT_EQ(lat.count(), 201u);
  EXPECT_GT(lat.mean(), 0.0);
  // One request = 2 network hops + service; well under a millisecond when
  // unloaded.
  EXPECT_LT(lat.percentile(0.5), 5.0);
}

TEST(Scenario, MoreClientsRaiseLatencyUnderSaturation) {
  auto mean_latency = [](int clients) {
    ScenarioConfig cfg;
    cfg.cluster.num_mds = 1;
    Scenario s(cfg);
    for (int c = 0; c < clients; ++c)
      s.add_client(workloads::make_private_create_workload(c, 400, 300));
    s.run();
    return s.pooled_latencies_ms().mean();
  };
  const double lat1 = mean_latency(1);
  const double lat8 = mean_latency(8);
  EXPECT_GT(lat8, lat1 * 1.5) << "queueing should inflate latency";
}

TEST(Scenario, GreedySpillMigratesSharedDirectory) {
  ScenarioConfig cfg;
  cfg.cluster.num_mds = 2;
  cfg.cluster.split_size = 300;       // split early so there is something to ship
  cfg.cluster.bal_interval = kSec;    // balance often in this short test
  Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::GreedySpillBalancer>(); });
  // Enough work that several balancer ticks (1 s apart, with jitter) land
  // mid-run and the importer gets time to serve afterwards.
  for (int c = 0; c < 4; ++c)
    s.add_client(workloads::make_shared_create_workload(c, "/shared", 4000, 100));
  s.run();
  EXPECT_FALSE(s.cluster().migrations().empty());
  // Both MDS nodes ended up serving requests.
  EXPECT_GT(s.cluster().node(0).stats().completed, 0u);
  EXPECT_GT(s.cluster().node(1).stats().completed, 0u);
  EXPECT_GT(s.cluster().total_sessions_flushed(), 0u);
  // All creates landed despite migrations (4 x 4000 + 1 mkdir; the three
  // losing mkdirs count as failed at the clients, not in the namespace).
  EXPECT_EQ(s.cluster().ns().subtree_entries(s.cluster().ns().root()),
            1u + 4u * 4000u);
}

TEST(Scenario, MantleScriptBalancerDrivesMigrationEndToEnd) {
  ScenarioConfig cfg;
  cfg.cluster.num_mds = 2;
  cfg.cluster.split_size = 300;
  cfg.cluster.bal_interval = kSec;
  Scenario s(cfg);
  s.cluster().set_balancer_all([](int) {
    return std::make_unique<core::MantleBalancer>(core::scripts::greedy_spill());
  });
  // Enough work that several balancer ticks (1 s apart) land mid-run.
  for (int c = 0; c < 4; ++c)
    s.add_client(workloads::make_shared_create_workload(c, "/shared", 4000, 100));
  s.run();
  EXPECT_FALSE(s.cluster().migrations().empty());
  auto* mb = dynamic_cast<core::MantleBalancer*>(s.cluster().node(0).balancer());
  ASSERT_NE(mb, nullptr);
  EXPECT_EQ(mb->hook_errors(), 0u) << mb->last_error();
}

TEST(Scenario, CompileWorkloadRunsAllPhases) {
  ScenarioConfig cfg;
  cfg.cluster.num_mds = 1;
  Scenario s(cfg);
  workloads::CompileOptions opt;
  opt.root = "/client0";
  opt.files_per_dir = 10;
  opt.compile_ops = 300;
  opt.read_ops = 100;
  opt.link_rounds = 2;
  s.add_client(std::make_unique<workloads::CompileWorkload>(opt));
  s.run();
  EXPECT_TRUE(s.client(0).done());
  EXPECT_EQ(s.client(0).ops_failed(), 0u);
  // The tree exists: root + 15 top-level dirs.
  const auto res = s.cluster().ns().resolve("/client0/kernel");
  EXPECT_TRUE(res.found);
  // Readdirs from the link phase heated READDIR counters somewhere.
  EXPECT_GT(s.cluster().ns().nested_pop(s.cluster().ns().root(),
                                        mds::MetaOp::READDIR, s.makespan()),
            0.0);
}

TEST(Scenario, ProbesFireAtInterval) {
  ScenarioConfig cfg;
  cfg.cluster.num_mds = 1;
  Scenario s(cfg);
  s.add_client(workloads::make_private_create_workload(0, 3000, 200));
  int fired = 0;
  s.add_probe(100 * kMsec, [&](Time) { ++fired; });
  s.run();
  EXPECT_GT(fired, 3);
}

TEST(Scenario, ForwardsHappenWhenClientCacheGoesStale) {
  ScenarioConfig cfg;
  cfg.cluster.num_mds = 2;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.split_size = 200;
  Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::GreedySpillBalancer>(); });
  for (int c = 0; c < 4; ++c)
    s.add_client(workloads::make_shared_create_workload(c, "/shared", 1500, 50));
  s.run();
  if (!s.cluster().migrations().empty()) {
    // After any migration, some request must have chased the moved frag.
    EXPECT_GT(s.cluster().total_forwards(), 0u);
  }
}

}  // namespace
}  // namespace mantle::sim
