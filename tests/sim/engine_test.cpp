#include "sim/engine.hpp"

#include <gtest/gtest.h>

namespace mantle::sim {
namespace {

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, SameTimestampIsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine e;
  Time seen = 0;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150u);
}

TEST(Engine, PastTimesClampToNow) {
  Engine e;
  Time seen = 0;
  e.schedule_at(100, [&] {
    e.schedule_at(10, [&] { seen = e.now(); });  // "10" is in the past
  });
  e.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine e;
  int fired = 0;
  for (Time t = 0; t < 100; t += 10) e.schedule_at(t, [&] { ++fired; });
  e.run_until(45);
  EXPECT_EQ(fired, 5);  // t = 0,10,20,30,40
  EXPECT_EQ(e.pending(), 5u);
  e.run();
  EXPECT_EQ(fired, 10);
}

TEST(Engine, EventsCanRescheduleThemselves) {
  Engine e;
  int count = 0;
  std::function<void()> self = [&] {
    ++count;
    if (count < 5) e.schedule_after(10, self);
  };
  e.schedule_at(0, self);
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 40u);
}

TEST(Engine, DispatchCountReported) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(static_cast<Time>(i), [] {});
  EXPECT_EQ(e.run(), 7u);
  EXPECT_TRUE(e.empty());
}

// Regression: `now_ + delay` used to wrap around on huge delays (e.g. a
// disabled-timeout sentinel), scheduling the event in the past. It now
// saturates at the kTimeMax "never" sentinel and the event is dropped.
TEST(Engine, ScheduleAfterSaturatesInsteadOfWrapping) {
  Engine e;
  bool fired_now = false;
  e.schedule_at(100, [&] {
    e.schedule_after(kTimeMax - 10, [&] { fired_now = true; });
  });
  e.run();
  EXPECT_FALSE(fired_now);  // parked at "never", not wrapped into the past
  EXPECT_EQ(e.saturated_events(), 1u);
  EXPECT_TRUE(e.empty());  // dropped, not leaked as pending
  EXPECT_EQ(e.now(), 100u);
}

TEST(Engine, ScheduleAtTimeMaxIsNever) {
  Engine e;
  bool fired = false;
  e.schedule_at(kTimeMax, [&] { fired = true; });
  EXPECT_TRUE(e.empty());
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.saturated_events(), 1u);
}

// run_until dispatches every event with when <= horizon; when work
// remains beyond the horizon the clock catches up to it, so
// horizon-sliced drivers always make forward progress even while the
// event stream is sparse.
TEST(Engine, RunUntilCatchesClockUpToHorizon) {
  Engine e;
  int fired = 0;
  e.schedule_at(1000, [&] { ++fired; });
  e.run_until(10);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(e.now(), 10u);  // clock caught up, event still pending
  EXPECT_EQ(e.pending(), 1u);
  e.run_until(1000);  // boundary: when == horizon fires
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 1000u);
}

TEST(Engine, RunUntilDrainedLeavesClockAtLastEvent) {
  Engine e;
  e.schedule_at(50, [] {});
  e.run_until(5000);
  EXPECT_EQ(e.now(), 50u);  // drained: now() stays at the last event
}

// Same-timestamp FIFO survives interleaved far-future scheduling: events
// landing in the top tier, a rung and the bottom tier at the same `when`
// still dispatch in scheduling order. Regression for the const-moved
// priority_queue::top() of the old heap engine, which invoked a copy
// (silently, via the const ref) and could reorder same-key callbacks.
TEST(Engine, SameTimestampFifoAcrossTiers) {
  Engine e;
  std::vector<int> order;
  // Spread scheduling over several ladder restarts.
  for (int i = 0; i < 4; ++i)
    e.schedule_at(1000, [&order, i] { order.push_back(i); });
  e.schedule_at(10, [&] {
    for (int i = 4; i < 8; ++i)
      e.schedule_at(1000, [&order, i] { order.push_back(i); });
  });
  e.schedule_at(999, [&] {
    for (int i = 8; i < 12; ++i)
      e.schedule_at(1000, [&order, i] { order.push_back(i); });
  });
  e.run();
  ASSERT_EQ(order.size(), 12u);
  for (int i = 0; i < 12; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, PoolRecyclesSlots) {
  Engine e;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i)
      e.schedule_after(static_cast<Time>(i), [] {});
    e.run();
  }
  const auto s = e.pool_stats();
  EXPECT_EQ(s.live, 0u);
  EXPECT_EQ(s.peak_live, 100u);     // rounds reuse the same slots
  EXPECT_EQ(s.capacity, 4096u);     // a single chunk was enough
  EXPECT_GT(s.bytes_reserved, 0u);
}

}  // namespace
}  // namespace mantle::sim
