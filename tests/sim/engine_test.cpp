#include "sim/engine.hpp"

#include <gtest/gtest.h>

namespace mantle::sim {
namespace {

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, SameTimestampIsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine e;
  Time seen = 0;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150u);
}

TEST(Engine, PastTimesClampToNow) {
  Engine e;
  Time seen = 0;
  e.schedule_at(100, [&] {
    e.schedule_at(10, [&] { seen = e.now(); });  // "10" is in the past
  });
  e.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine e;
  int fired = 0;
  for (Time t = 0; t < 100; t += 10) e.schedule_at(t, [&] { ++fired; });
  e.run_until(45);
  EXPECT_EQ(fired, 5);  // t = 0,10,20,30,40
  EXPECT_EQ(e.pending(), 5u);
  e.run();
  EXPECT_EQ(fired, 10);
}

TEST(Engine, EventsCanRescheduleThemselves) {
  Engine e;
  int count = 0;
  std::function<void()> self = [&] {
    ++count;
    if (count < 5) e.schedule_after(10, self);
  };
  e.schedule_at(0, self);
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 40u);
}

TEST(Engine, DispatchCountReported) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(static_cast<Time>(i), [] {});
  EXPECT_EQ(e.run(), 7u);
  EXPECT_TRUE(e.empty());
}

}  // namespace
}  // namespace mantle::sim
