#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "balancers/builtin.hpp"
#include "sim/scenario.hpp"
#include "sim/shard.hpp"
#include "workloads/create_heavy.hpp"

/// ShardRuntime contract tests. The load-bearing property is that the
/// epoch schedule — and therefore anything observable — is a pure
/// function of (config, seeds, S, L): the thread count K only changes
/// which worker runs which shard slice, never what order events merge.

namespace mantle::sim {
namespace {

ShardRuntime::Config make_cfg(int shards, int threads, Time lookahead) {
  ShardRuntime::Config c;
  c.shards = shards;
  c.threads = threads;
  c.lookahead = lookahead;
  return c;
}

TEST(ShardRuntime, ClampsDegenerateConfig) {
  ShardRuntime rt(make_cfg(/*shards=*/0, /*threads=*/8, /*lookahead=*/0));
  EXPECT_EQ(rt.num_shards(), 1);
  EXPECT_EQ(rt.num_threads(), 1);  // threads clamp to shard count
  EXPECT_GE(rt.lookahead(), 1);
}

TEST(ShardRuntime, RankToShardMappingCoversNonDivisibleCounts) {
  ShardRuntime rt(make_cfg(3, 1, kMsec));
  // 5 ranks over 3 shards: 0,1,2,0,1 — every rank lands on a valid shard.
  for (int r = 0; r < 5; ++r) {
    const int s = rt.shard_of_rank(r);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 3);
  }
  EXPECT_EQ(rt.shard_of_rank(3), 0);
  EXPECT_EQ(rt.shard_of_rank(4), 1);
}

TEST(ShardRuntime, SerialLanePostsReachShardQueues) {
  // Shard events in *different epochs* execute in timestamp order; within
  // one epoch the shards are independent (that is the parallelism), so
  // pick a lookahead smaller than the gap to pin the ordering.
  ShardRuntime rt(make_cfg(2, 1, /*lookahead=*/3));
  std::vector<int> hits;
  // From the serial lane (no phase A running), posts go directly into
  // the shard queues and execute during phase A of their epoch.
  rt.post_shard_after(0, 10, [&]() { hits.push_back(0); });
  rt.post_shard_after(1, 5, [&]() { hits.push_back(1); });
  rt.run_until(kSec);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 1);  // earlier epoch first
  EXPECT_EQ(hits[1], 0);
  EXPECT_TRUE(rt.empty());
}

TEST(ShardRuntime, CrossShardPostsLandAtTheRequestedTime) {
  ShardRuntime rt(make_cfg(2, 1, /*lookahead=*/10));
  Time seen_global = 0;
  Time seen_shard = 0;
  // Shard 0's event posts to the global lane and to shard 1 with a
  // delay larger than the lookahead: both must still fire at the exact
  // requested simulated time, in a later epoch.
  rt.post_shard_after(0, 3, [&]() {
    rt.post_global_after(25, [&]() { seen_global = rt.global().now(); });
    rt.post_shard_after(1, 25, [&]() { seen_shard = rt.shard_engine(1).now(); });
  });
  rt.run_until(kSec);
  EXPECT_EQ(seen_global, 28);
  EXPECT_EQ(seen_shard, 28);
}

TEST(ShardRuntime, GlobalMergeOrderIsCanonicalAcrossSourceShards) {
  // Two shards post to the global lane at the *same* timestamp; the
  // merge must order them (when, src_shard, seq), i.e. shard 0's posts
  // before shard 1's, each shard's posts in its own dispatch order.
  ShardRuntime rt(make_cfg(2, 1, kMsec));
  std::vector<std::string> order;
  rt.post_shard_after(1, 5, [&]() {
    rt.post_global_after(10, [&]() { order.push_back("s1/a"); });
    rt.post_global_after(10, [&]() { order.push_back("s1/b"); });
  });
  rt.post_shard_after(0, 5, [&]() {
    rt.post_global_after(10, [&]() { order.push_back("s0/a"); });
  });
  rt.run_until(kSec);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "s0/a");
  EXPECT_EQ(order[1], "s1/a");
  EXPECT_EQ(order[2], "s1/b");
}

/// Drive a ping-pong workload across S shards and record, on the global
/// lane only (so recording itself is race-free), the (time, tag) stream.
std::vector<std::pair<Time, int>> pingpong_trace(int shards, int threads) {
  ShardRuntime rt(make_cfg(shards, threads, /*lookahead=*/7));
  auto log = std::make_shared<std::vector<std::pair<Time, int>>>();
  // Each shard s runs a self-re-arming event that reports to the global
  // lane and occasionally pokes its neighbour — exercising same-shard
  // re-arm, cross-shard posts and global posts together.
  struct Hop {
    ShardRuntime* rt;
    std::shared_ptr<std::vector<std::pair<Time, int>>> log;
    int s;
    int left;
    void operator()() const {
      const int tag = s * 1000 + left;
      auto* lg = log.get();
      ShardRuntime* r = rt;
      r->post_global_after(2, [lg, tag, r]() {
        lg->emplace_back(r->global().now(), tag);
      });
      if (left > 0) {
        const int next = (s + 1) % r->num_shards();
        r->post_shard_after(next, 5, Hop{r, log, next, left - 1});
        r->post_shard_after(s, 3, Hop{r, log, s, left - 1});
      }
    }
  };
  for (int s = 0; s < shards; ++s)
    rt.post_shard_after(s, s + 1, Hop{&rt, log, s, 6});
  rt.run_until(10 * kSec);
  return *log;
}

TEST(ShardRuntime, ThreadCountNeverChangesTheMergedSchedule) {
  const auto serial = pingpong_trace(4, 1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, pingpong_trace(4, 2));
  EXPECT_EQ(serial, pingpong_trace(4, 4));
  // Oversubscribed K clamps to S and must behave like K = S.
  EXPECT_EQ(serial, pingpong_trace(4, 8));
}

TEST(ShardRuntime, AggregateAccountingSpansAllLanes) {
  ShardRuntime rt(make_cfg(2, 1, kMsec));
  int ran = 0;
  rt.post_shard_after(0, 1, [&]() { ++ran; });
  rt.post_shard_after(1, 1, [&]() { ++ran; });
  rt.global().schedule_after(1, [&]() { ++ran; });
  EXPECT_EQ(rt.pending(), 3u);
  EXPECT_FALSE(rt.empty());
  rt.run_until(kSec);
  EXPECT_EQ(ran, 3);
  EXPECT_TRUE(rt.empty());
  EXPECT_EQ(rt.pending(), 0u);
  // Pool stats aggregate across lanes: three events were live at once.
  EXPECT_GE(rt.pool_stats().peak_live, 3u);
}

/// End-to-end: a small sharded scenario runs to completion and produces
/// the same client-visible results at any thread count.
std::pair<Time, std::uint64_t> run_sharded_scenario(int shards, int threads) {
  ScenarioConfig cfg;
  cfg.cluster.num_mds = 4;
  cfg.cluster.seed = 99;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.shards = shards;
  cfg.threads = threads;
  cfg.max_time = 2 * kMinute;
  Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  for (int c = 0; c < 3; ++c)
    s.add_client(workloads::make_shared_create_workload(
        c, "/shared", /*files=*/1500, /*think=*/100));
  const Time makespan = s.run();
  std::uint64_t ops = 0;
  for (const auto& cl : s.clients()) {
    EXPECT_TRUE(cl->done());
    ops += cl->ops_completed();
  }
  return {makespan, ops};
}

TEST(ShardRuntime, ScenarioCompletesIdenticallyAtAnyThreadCount) {
  const auto serial = run_sharded_scenario(2, 1);
  EXPECT_GT(serial.second, 0u);
  EXPECT_EQ(serial, run_sharded_scenario(2, 2));
}

TEST(ShardRuntime, ScenarioAutoLookaheadStaysUnderHeartbeatLatency) {
  ScenarioConfig cfg;
  cfg.cluster.num_mds = 2;
  cfg.cluster.shards = 2;
  Scenario s(cfg);
  ASSERT_NE(s.runtime(), nullptr);
  const Time hb_min = static_cast<Time>(
      static_cast<double>(cfg.cluster.hb_delay) *
      (1.0 - cfg.cluster.hb_jitter_frac));
  EXPECT_LE(s.runtime()->lookahead(), hb_min);
  EXPECT_GE(s.runtime()->lookahead(), 1);
}

}  // namespace
}  // namespace mantle::sim
