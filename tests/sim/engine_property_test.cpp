#include <gtest/gtest.h>

#include <queue>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"

/// Property test for the ladder-queue engine: against a reference binary
/// heap, the dispatch order over thousands of random schedules — with
/// nested rescheduling and random run_until slices — must be identical,
/// element for element. This is the exact-(when, seq)-order guarantee the
/// Figure 4 reproduction rests on: determinism comes from the queue, so
/// the queue must be a drop-in total order.

namespace mantle::sim {
namespace {

/// Reference model: the old engine's (when, seq) min-heap.
class RefQueue {
 public:
  void push(Time when, std::uint64_t id) { q_.emplace(when, seq_++, id); }
  bool empty() const { return q_.empty(); }
  Time top_when() const { return std::get<0>(q_.top()); }
  std::uint64_t pop() {
    const auto [when, seq, id] = q_.top();
    q_.pop();
    (void)when;
    (void)seq;
    return id;
  }

 private:
  using Key = std::tuple<Time, std::uint64_t, std::uint64_t>;
  std::priority_queue<Key, std::vector<Key>, std::greater<>> q_;
  std::uint64_t seq_ = 0;
};

TEST(EngineProperty, MatchesReferenceHeapOrder) {
  Rng rng(0xdecade);
  Engine e;
  RefQueue ref;
  std::vector<std::uint64_t> engine_order;
  std::vector<std::uint64_t> ref_order;
  std::uint64_t next_id = 0;

  // Mixed horizon profile: short hops, bucket-width jumps and far-future
  // leaps, so events land in the bottom tier, every rung depth and the
  // top tier.
  const auto random_delay = [&]() -> Time {
    switch (rng.uniform(0, 3)) {
      case 0: return rng.uniform(0, 50);
      case 1: return rng.uniform(0, 5'000);
      case 2: return rng.uniform(0, 1'000'000);
      default: return rng.uniform(0, 500'000'000);
    }
  };

  // Each dispatched event may reschedule fresh events (nested schedules),
  // mirrored into the reference model with the same ids and times. A
  // dedicated RNG decides the fan-out so both models see the same stream.
  Rng fanout_rng(0xfa11);
  std::vector<std::pair<Time, std::uint64_t>> pending_children;
  const auto spawn_children = [&](Time now) {
    pending_children.clear();
    const std::uint64_t n = fanout_rng.uniform(0, 2);
    for (std::uint64_t i = 0; i < n; ++i) {
      Time d = 0;
      switch (fanout_rng.uniform(0, 2)) {
        case 0: d = fanout_rng.uniform(0, 100); break;
        case 1: d = fanout_rng.uniform(0, 10'000); break;
        default: d = fanout_rng.uniform(0, 10'000'000); break;
      }
      pending_children.emplace_back(now + d, next_id++);
    }
  };

  std::function<void(std::uint64_t)> on_fire = [&](std::uint64_t id) {
    engine_order.push_back(id);
    spawn_children(e.now());
    for (const auto& [when, cid] : pending_children)
      e.schedule_at(when, [&on_fire, cid] { on_fire(cid); });
  };

  // Seed both models with 10k random schedules.
  for (int i = 0; i < 10'000; ++i) {
    const Time when = random_delay();
    const std::uint64_t id = next_id++;
    e.schedule_at(when, [&on_fire, id] { on_fire(id); });
    ref.push(when, id);
  }

  // Drain in random run_until slices. The reference replays the engine's
  // child spawns: fanout_rng is consumed in dispatch order, which both
  // models share if and only if the order matches — verified id by id.
  Rng slice_rng(0x511ce);
  Time horizon = 0;
  while (!e.empty()) {
    horizon += slice_rng.uniform(1, 20'000'000);
    e.run_until(horizon);
  }

  // Replay the reference: same initial events, same fanout stream.
  Rng ref_fanout(0xfa11);
  while (!ref.empty()) {
    const Time now = ref.top_when();
    const std::uint64_t id = ref.pop();
    ref_order.push_back(id);
    const std::uint64_t n = ref_fanout.uniform(0, 2);
    for (std::uint64_t i = 0; i < n; ++i) {
      Time d = 0;
      switch (ref_fanout.uniform(0, 2)) {
        case 0: d = ref_fanout.uniform(0, 100); break;
        case 1: d = ref_fanout.uniform(0, 10'000); break;
        default: d = ref_fanout.uniform(0, 10'000'000); break;
      }
      ref.push(now + d, 0);  // id patched below
    }
  }

  // The reference cannot know the engine's child ids up front (they are
  // assigned in dispatch order), so compare the initial 10k prefix by id
  // and the overall shape by (count, multiset of fire times implied by
  // the matching prefix). The prefix check is the strong one: any
  // ordering bug reorders seeded events long before children matter.
  ASSERT_EQ(engine_order.size(), ref_order.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < ref_order.size(); ++i)
    if (ref_order[i] != 0 && engine_order[i] != ref_order[i]) ++mismatches;
  EXPECT_EQ(mismatches, 0u);
}

/// Same-run bit-determinism: two engines fed the same schedule dispatch
/// identically, including through rung shattering and ladder restarts.
TEST(EngineProperty, TwoRunsIdentical) {
  const auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    Engine e;
    std::vector<std::pair<Time, int>> fired;
    for (int i = 0; i < 5'000; ++i) {
      const Time when = rng.uniform(0, 100'000'000);
      e.schedule_at(when, [&fired, i, &e] { fired.emplace_back(e.now(), i); });
    }
    e.run();
    return fired;
  };
  EXPECT_EQ(run(7), run(7));
}

}  // namespace
}  // namespace mantle::sim
