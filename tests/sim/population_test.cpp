#include "sim/population.hpp"

#include <gtest/gtest.h>

#include "balancers/builtin.hpp"
#include "sim/scenario.hpp"
#include "workloads/create_heavy.hpp"

namespace mantle::sim {
namespace {

PopulationConfig small_pop() {
  PopulationConfig pc;
  pc.modeled_clients = 10'000;
  pc.ops_per_client = 1.0;
  pc.sim_rate = 500.0;
  pc.duration = 2 * kSec;
  pc.tick = 50 * kMsec;
  pc.create_frac = 0.4;
  pc.dirs = {"/popA/d0", "/popA/d1", "/popA/d2"};
  return pc;
}

TEST(ClientPopulation, RunsToCompletionAndScalesWeight) {
  ScenarioConfig cfg;
  cfg.cluster.num_mds = 2;
  cfg.cluster.seed = 7;
  cfg.max_time = 30 * kSec;
  Scenario s(cfg);
  const int id = s.add_population(small_pop());
  s.run();

  ClientPopulation& p = s.population(id);
  EXPECT_TRUE(p.done());
  EXPECT_EQ(p.outstanding(), 0u);
  EXPECT_GT(p.arrivals(), 100u);
  EXPECT_GT(p.sim_ops_completed(), 0u);
  // 10k clients at 1 op/s sampled at 500 sim req/s: each simulated
  // request stands for 20 modeled ops.
  EXPECT_EQ(p.weight(), 20u);
  EXPECT_EQ(p.modeled_ops_completed(), p.sim_ops_completed() * 20u);
  EXPECT_EQ(p.stale_replies(), 0u);  // no faults, no retries, no dupes
  EXPECT_GT(p.latencies_ms().count(), 0u);
  EXPECT_GT(p.latencies_ms().mean(), 0.0);
  const double hit = p.hit_rate_estimate();
  EXPECT_GE(hit, 0.0);
  EXPECT_LE(hit, 1.0);
}

TEST(ClientPopulation, SameSeedRunsAreIdentical) {
  const auto run = [] {
    ScenarioConfig cfg;
    cfg.cluster.num_mds = 4;
    cfg.cluster.seed = 42;
    cfg.cluster.bal_interval = kSec;
    cfg.cluster.split_size = 500;
    cfg.max_time = 30 * kSec;
    Scenario s(cfg);
    s.cluster().set_balancer_all(
        [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
    s.add_client(workloads::make_private_create_workload(0, 40, 100));
    s.add_population(small_pop());
    s.run();
    return s.cluster().metrics().to_json();
  };
  EXPECT_EQ(run(), run());
}

TEST(ClientPopulation, CoexistsWithObjectClients) {
  ScenarioConfig cfg;
  cfg.cluster.num_mds = 2;
  cfg.cluster.seed = 3;
  cfg.max_time = 30 * kSec;
  Scenario s(cfg);
  const int cid = s.add_client(workloads::make_private_create_workload(0, 30, 100));
  const int pid = s.add_population(small_pop());
  ASSERT_NE(cid, pid);
  s.run();

  EXPECT_TRUE(s.client(cid).done());
  EXPECT_TRUE(s.population(pid).done());
  EXPECT_THROW(s.client(pid), std::out_of_range);
  EXPECT_THROW(s.population(cid), std::out_of_range);
  // Pooled results cover both kinds.
  const auto lat = s.pooled_latencies_ms();
  EXPECT_GT(lat.count(), s.client(cid).latencies_ms().retained());
  EXPECT_GT(s.aggregate_throughput(), 0.0);
}

// Migrations leave the population's learned map stale, so some requests
// bounce (hops > 0) and the hit model re-learns — the same forward
// dynamics object clients see, at aggregate scale.
TEST(ClientPopulation, SeesForwardsAcrossMigrations) {
  ScenarioConfig cfg;
  cfg.cluster.num_mds = 4;
  cfg.cluster.seed = 11;
  cfg.cluster.bal_interval = 500 * kMsec;
  cfg.cluster.split_size = 200;
  cfg.max_time = 60 * kSec;
  Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  PopulationConfig pc = small_pop();
  pc.sim_rate = 2000.0;
  pc.duration = 5 * kSec;
  pc.create_frac = 0.6;
  const int pid = s.add_population(pc);
  s.run();

  ClientPopulation& p = s.population(pid);
  EXPECT_TRUE(p.done());
  EXPECT_GT(s.cluster().migrations().size(), 0u);
  EXPECT_GT(p.forwards_seen(), 0u);
}

}  // namespace
}  // namespace mantle::sim
