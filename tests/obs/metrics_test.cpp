#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace mantle::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Histogram, BucketsAreCumulativeAtExport) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (le is inclusive)
  h.observe(5.0);    // <= 10
  h.observe(500.0);  // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 506.5);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + implicit +Inf
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(Histogram, SortsUnorderedBounds) {
  Histogram h({100.0, 1.0, 10.0});
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_DOUBLE_EQ(h.bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.bounds()[2], 100.0);
}

TEST(FormatMetricValue, IntegersPrintWithoutFraction) {
  EXPECT_EQ(format_metric_value(0.0), "0");
  EXPECT_EQ(format_metric_value(42.0), "42");
  EXPECT_EQ(format_metric_value(-3.0), "-3");
  EXPECT_EQ(format_metric_value(0.5), "0.5");
}

TEST(FormatMetricValue, NonFiniteIsPrometheusCompatible) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(format_metric_value(inf), "1e999");
  EXPECT_EQ(format_metric_value(-inf), "-1e999");
  EXPECT_EQ(format_metric_value(std::nan("")), "0");
}

TEST(Registry, GetOrCreateReturnsSameHandle) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x_total", "help");
  Counter& b = reg.counter("x_total");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, KindCollisionYieldsScratchAndIsCounted) {
  MetricsRegistry reg;
  reg.counter("thing");
  // Re-registering the same name as a gauge must not crash and must not
  // alias the counter; the collision is surfaced as its own metric.
  Gauge& g = reg.gauge("thing");
  g.set(7.0);
  EXPECT_EQ(reg.counter(kCollisionCounterName).value(), 1u);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("obs_registry_collisions_total 1"), std::string::npos);
}

TEST(Registry, CounterNamesListsCountersInNameOrder) {
  MetricsRegistry reg;
  reg.counter("b_total");
  reg.gauge("a_gauge");
  reg.counter("a_total");
  reg.histogram("h_ms", {1.0});
  const std::vector<std::string> names = reg.counter_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a_total");
  EXPECT_EQ(names[1], "b_total");
}

TEST(Registry, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("b_requests_total", "requests served").inc(3);
  reg.gauge("a_depth").set(1.5);
  Histogram& h = reg.histogram("c_lat_ms", {1.0, 10.0}, "latency");
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  const std::string prom = reg.to_prometheus();
  // Name-ordered: gauge "a_depth" first despite late registration.
  EXPECT_LT(prom.find("a_depth"), prom.find("b_requests_total"));
  EXPECT_NE(prom.find("# HELP b_requests_total requests served\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE b_requests_total counter\n"), std::string::npos);
  EXPECT_NE(prom.find("b_requests_total 3\n"), std::string::npos);
  EXPECT_NE(prom.find("a_depth 1.5\n"), std::string::npos);
  EXPECT_NE(prom.find("c_lat_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(prom.find("c_lat_ms_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(prom.find("c_lat_ms_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(prom.find("c_lat_ms_sum 55.5\n"), std::string::npos);
  EXPECT_NE(prom.find("c_lat_ms_count 3\n"), std::string::npos);
}

TEST(Registry, JsonExport) {
  MetricsRegistry reg;
  reg.counter("ops_total").inc(2);
  reg.gauge("depth").set(4.0);
  reg.histogram("lat", {1.0}).observe(0.5);
  const std::string js = reg.to_json();
  EXPECT_NE(js.find("\"counters\":{\"ops_total\":2}"), std::string::npos);
  EXPECT_NE(js.find("\"gauges\":{\"depth\":4}"), std::string::npos);
  EXPECT_NE(js.find("\"lat\":{\"buckets\":[{\"le\":1,\"count\":1},"
                    "{\"le\":\"+Inf\",\"count\":0}],\"sum\":0.5,\"count\":1,"
                    "\"quantiles\":{\"p50\":" + format_metric_value(0.5) +
                    ",\"p95\":" + format_metric_value(0.95) +
                    ",\"p99\":" + format_metric_value(0.99) + "}}"),
            std::string::npos);
}

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  for (int i = 0; i < 10; ++i) h.observe(0.5);   // bucket [0,1]
  for (int i = 0; i < 80; ++i) h.observe(5.0);   // bucket (1,10]
  for (int i = 0; i < 10; ++i) h.observe(50.0);  // bucket (10,100]
  // p50: rank 50 of 100 lands 40/80 into the (1,10] bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0 + 9.0 * (40.0 / 80.0));
  // p95: rank 95 lands 5/10 into the (10,100] bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 10.0 + 90.0 * (5.0 / 10.0));
  // p05 interpolates from 0 inside the first bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.05), 0.5);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  // Everything in the +Inf bucket clamps to the largest finite bound.
  Histogram inf_only({1.0, 2.0});
  inf_only.observe(100.0);
  EXPECT_DOUBLE_EQ(inf_only.quantile(0.99), 2.0);
  // Free-function form over raw buckets, q clamped into [0,1].
  EXPECT_DOUBLE_EQ(estimate_quantile({4.0}, {2, 0}, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(estimate_quantile({}, {}, 0.5), 0.0);
}

TEST(Registry, EmptyRegistryExportsValidShells) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.to_prometheus(), "");
  EXPECT_EQ(reg.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(Registry, ExportsAreDeterministicAcrossRegistrationOrder) {
  MetricsRegistry a;
  a.counter("x").inc(1);
  a.gauge("y").set(2);
  MetricsRegistry b;
  b.gauge("y").set(2);
  b.counter("x").inc(1);
  EXPECT_EQ(a.to_prometheus(), b.to_prometheus());
  EXPECT_EQ(a.to_json(), b.to_json());
}

// The registry is hammered from the parallel seed sweep: concurrent
// registration, updates and exports must be race-free (run under TSan in
// CI) and must not lose counts.
TEST(Registry, ConcurrentHammerLosesNothing) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter("shared_total").inc();
        reg.counter("per_thread_" + std::to_string(t)).inc();
        reg.gauge("last_iter").set(i);
        reg.histogram("obs", {10.0, 100.0}).observe(i % 128);
        if (i % 256 == 0) {
          (void)reg.to_prometheus();
          (void)reg.to_json();
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(reg.counter("shared_total").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(reg.counter("per_thread_" + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIters));
  EXPECT_EQ(reg.histogram("obs", {10.0, 100.0}).count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace mantle::obs
