#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "balancers/builtin.hpp"
#include "fault/fault.hpp"
#include "obs/analyze.hpp"
#include "obs/profile.hpp"
#include "obs/provenance.hpp"
#include "sim/scenario.hpp"
#include "workloads/create_heavy.hpp"

/// The decision provenance flight recorder: bounded capture, JSON
/// round-trips, digest stability, byte-identical same-seed dumps (plain
/// and fault-injected, with the wall-clock profiler enabled so its
/// existence provably cannot leak into the dumps), and the --explain
/// renderer pinned against a committed golden mini-dump.

#ifndef MANTLE_TEST_DATA_DIR
#define MANTLE_TEST_DATA_DIR "tests/obs/data"
#endif

namespace mantle::obs {
namespace {

DecisionRecord sample_record(int rank = 0, Time at = 1 * kSec) {
  DecisionRecord rec;
  rec.at = at;
  rec.rank = rank;
  rec.span = 42;
  rec.policy = "mantle";
  rec.min_load = 0.01;
  rec.mdss = {{10.0, 12.0, 55.5, 3.25, 2.0, 100.0},
              {1.0, 1.5, 10.0, 0.5, 0.0, 7.0}};
  rec.loads = {12.0, 1.5};
  rec.alive = {1, 1};
  rec.total_load = 13.5;
  rec.go = true;
  rec.targets = {0.0, 5.25};
  rec.selectors = {"big_first", "small_first"};
  ProvenanceShipment ship;
  ship.target = 1;
  ship.goal = 5.25;
  ship.pool = 3;
  ship.shipped = 4.75;
  ship.picks.push_back({"10000:*", 4.75, 1200});
  rec.ships.push_back(ship);
  rec.lua_steps = 321;
  rec.hook_errors = 1;
  rec.cache_hits = 5;
  rec.cache_misses = 2;
  rec.cache_recompiles = 1;
  rec.digest = input_digest(rec);
  return rec;
}

TEST(ProvenanceRecorder, BoundsAndDropAccounting) {
  ProvenanceRecorder rec(2);
  EXPECT_TRUE(rec.record(sample_record(0)));
  EXPECT_TRUE(rec.record(sample_record(1)));
  EXPECT_FALSE(rec.record(sample_record(2)));
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.dropped(), 1u);
  EXPECT_NE(rec.to_json().find("\"dropped\":1"), std::string::npos);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(ProvenanceRecorder, JsonRoundTripsEveryField) {
  ProvenanceRecorder rec(8);
  ASSERT_TRUE(rec.record(sample_record()));
  const std::string json = rec.to_json();
  const std::vector<DecisionRecord> back = parse_provenance_json(json);
  ASSERT_EQ(back.size(), 1u);
  const DecisionRecord& r = back[0];
  const DecisionRecord want = sample_record();
  EXPECT_EQ(r.at, want.at);
  EXPECT_EQ(r.rank, want.rank);
  EXPECT_EQ(r.span, want.span);
  EXPECT_EQ(r.policy, want.policy);
  EXPECT_EQ(r.min_load, want.min_load);
  ASSERT_EQ(r.mdss.size(), want.mdss.size());
  for (std::size_t i = 0; i < want.mdss.size(); ++i) {
    EXPECT_EQ(r.mdss[i].auth_metaload, want.mdss[i].auth_metaload);
    EXPECT_EQ(r.mdss[i].all_metaload, want.mdss[i].all_metaload);
    EXPECT_EQ(r.mdss[i].cpu_pct, want.mdss[i].cpu_pct);
    EXPECT_EQ(r.mdss[i].mem_pct, want.mdss[i].mem_pct);
    EXPECT_EQ(r.mdss[i].queue_len, want.mdss[i].queue_len);
    EXPECT_EQ(r.mdss[i].req_rate, want.mdss[i].req_rate);
  }
  EXPECT_EQ(r.loads, want.loads);
  EXPECT_EQ(r.alive, want.alive);
  EXPECT_EQ(r.total_load, want.total_load);
  EXPECT_EQ(r.digest, want.digest);
  EXPECT_EQ(r.truncated, want.truncated);
  EXPECT_EQ(r.go, want.go);
  EXPECT_EQ(r.targets, want.targets);
  EXPECT_EQ(r.selectors, want.selectors);
  ASSERT_EQ(r.ships.size(), 1u);
  EXPECT_EQ(r.ships[0].target, want.ships[0].target);
  EXPECT_EQ(r.ships[0].goal, want.ships[0].goal);
  EXPECT_EQ(r.ships[0].pool, want.ships[0].pool);
  EXPECT_EQ(r.ships[0].shipped, want.ships[0].shipped);
  ASSERT_EQ(r.ships[0].picks.size(), 1u);
  EXPECT_EQ(r.ships[0].picks[0].frag, want.ships[0].picks[0].frag);
  EXPECT_EQ(r.ships[0].picks[0].load, want.ships[0].picks[0].load);
  EXPECT_EQ(r.ships[0].picks[0].entries, want.ships[0].picks[0].entries);
  EXPECT_EQ(r.lua_steps, want.lua_steps);
  EXPECT_EQ(r.hook_errors, want.hook_errors);
  EXPECT_EQ(r.cache_hits, want.cache_hits);
  EXPECT_EQ(r.cache_misses, want.cache_misses);
  EXPECT_EQ(r.cache_recompiles, want.cache_recompiles);

  // Round-tripped records re-serialize byte-identically: the CLI path
  // (parse a dump, replay it) sees exactly what the run recorded.
  ProvenanceRecorder again(8);
  ASSERT_TRUE(again.record(r));
  EXPECT_EQ(again.to_json(), json);
}

TEST(ProvenanceDigest, StableAndInputSensitive) {
  const DecisionRecord a = sample_record();
  EXPECT_EQ(a.digest.size(), 16u);
  EXPECT_EQ(input_digest(a), input_digest(a));

  DecisionRecord b = sample_record();
  b.mdss[1].cpu_pct += 1e-9;
  EXPECT_NE(input_digest(a), input_digest(b));

  // Outputs are deliberately excluded: two runs that saw the same
  // inputs but decided differently (a what-if diff) share the digest.
  DecisionRecord c = sample_record();
  c.go = false;
  c.targets.clear();
  c.ships.clear();
  EXPECT_EQ(input_digest(a), input_digest(c));
}

struct ProvDump {
  std::string provenance_json;
  std::string trace_json;
  std::string metrics_json;
  std::uint64_t records = 0;
};

ProvDump run_scenario(std::uint64_t seed, bool faulty,
                      std::size_t provenance_capacity = 0) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 3;
  cfg.cluster.seed = seed;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.split_size = 300;
  if (provenance_capacity > 0)
    cfg.cluster.provenance_capacity = provenance_capacity;
  cfg.max_time = 2 * kMinute;
  std::unique_ptr<fault::FaultInjector> inj;
  if (faulty) {
    cfg.cluster.laggy_factor = 3.0;
    cfg.retry.timeout = 2 * kSec;
    cfg.max_time = 3 * kMinute;
  }
  sim::Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  for (int c = 0; c < 3; ++c)
    s.add_client(workloads::make_shared_create_workload(
        c, "/shared", /*files=*/4000, /*think=*/200));
  if (faulty) {
    fault::FaultPlan plan;
    plan.seed = seed;
    plan.crashes.push_back({kSec, 1});
    plan.restarts.push_back({2 * kSec, 1});
    plan.hb_drop_prob = 0.05;
    plan.hb_duplicate_prob = 0.02;
    inj = std::make_unique<fault::FaultInjector>(plan);
    inj->arm(s.cluster());
  }
  s.run();
  ProvDump d;
  d.provenance_json = s.cluster().provenance().to_json();
  d.trace_json = s.cluster().trace().to_json();
  d.metrics_json = s.cluster().metrics().to_json();
  d.records = s.cluster().provenance().size();
  return d;
}

TEST(ProvenanceDeterminism, SameSeedDumpsAreByteIdentical) {
  // The profiler measures the real clock while these runs execute; if
  // any wall-time number leaked into the dumps this comparison would be
  // flaky, so running it enabled is part of the assertion.
  Profiler::instance().set_enabled(true);
  const ProvDump a = run_scenario(7, /*faulty=*/false);
  const ProvDump b = run_scenario(7, /*faulty=*/false);
  EXPECT_GT(a.records, 0u);
  EXPECT_NE(a.trace_json.find("\"kind\":\"provenance-decision\""),
            std::string::npos);
  EXPECT_NE(a.metrics_json.find("mantle_provenance_records_total"),
            std::string::npos);
  EXPECT_EQ(a.provenance_json, b.provenance_json);
  EXPECT_EQ(a.trace_json, b.trace_json);

  const ProvDump c = run_scenario(8, /*faulty=*/false);
  EXPECT_NE(a.provenance_json, c.provenance_json);
}

TEST(ProvenanceDeterminism, FaultInjectedDumpsAreByteIdentical) {
  Profiler::instance().set_enabled(true);
  const ProvDump a = run_scenario(11, /*faulty=*/true);
  const ProvDump b = run_scenario(11, /*faulty=*/true);
  EXPECT_GT(a.records, 0u);
  EXPECT_EQ(a.provenance_json, b.provenance_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(ProvenanceDeterminism, CapacityDropsAreDeterministic) {
  const ProvDump a = run_scenario(7, /*faulty=*/false, /*capacity=*/4);
  const ProvDump b = run_scenario(7, /*faulty=*/false, /*capacity=*/4);
  const auto records = parse_provenance_json(a.provenance_json);
  EXPECT_EQ(records.size(), 4u);
  EXPECT_NE(a.provenance_json.find("\"dropped\":"), std::string::npos);
  EXPECT_EQ(a.provenance_json, b.provenance_json);
  EXPECT_NE(a.metrics_json.find("mantle_provenance_dropped_total"),
            std::string::npos);
}

std::string read_data_file(const std::string& name) {
  const std::string path = std::string(MANTLE_TEST_DATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ProvenanceExplain, GoldenMiniDump) {
  // The committed mini-dump pins both the dump format (it must still
  // parse) and the narrative rendering, byte for byte.
  const auto records = parse_provenance_json(read_data_file(
      "mini.provenance.json"));
  ASSERT_EQ(records.size(), 2u);
  const auto events = parse_trace_json(read_data_file("mini.trace.json"));
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(render_explain(records, events, {}),
            read_data_file("mini.explain.txt"));
}

TEST(ProvenanceExplain, FiltersByTickAndRank) {
  const auto records = parse_provenance_json(read_data_file(
      "mini.provenance.json"));
  ExplainOptions opt;
  opt.rank = 1;
  const std::string by_rank = render_explain(records, {}, opt);
  EXPECT_NE(by_rank.find("rank 1"), std::string::npos);
  EXPECT_EQ(by_rank.find("] rank 0 "), std::string::npos);

  ExplainOptions none;
  none.rank = 99;
  EXPECT_NE(render_explain(records, {}, none).find("0 decision(s)"),
            std::string::npos);
}

TEST(Profiler, ScopedPhasesAccumulateAndNest) {
  Profiler& prof = Profiler::instance();
  prof.set_enabled(true);
  prof.reset();
  {
    ScopedPhase outer(ProfilePhase::ClusterTick);
    ScopedPhase inner(ProfilePhase::HookEval);
  }
  const auto tick = prof.stats(ProfilePhase::ClusterTick);
  const auto hook = prof.stats(ProfilePhase::HookEval);
  EXPECT_EQ(tick.scopes, 1u);
  EXPECT_EQ(hook.scopes, 1u);
  // Nested self-time accounting: the parent's self time excludes the
  // child's wall time.
  EXPECT_GE(tick.wall_ns, hook.wall_ns);
  EXPECT_LE(tick.self_ns, tick.wall_ns);
  const std::string table = prof.table();
  EXPECT_NE(table.find("cluster-tick"), std::string::npos);
  EXPECT_NE(table.find("hook-eval"), std::string::npos);
  const std::string json = prof.to_json();
  EXPECT_NE(json.find("mantle_profile_cluster_tick_scopes_total"),
            std::string::npos);
  prof.reset();
  EXPECT_EQ(prof.stats(ProfilePhase::ClusterTick).scopes, 0u);
}

TEST(Profiler, DisabledScopesRecordNothing) {
  Profiler& prof = Profiler::instance();
  prof.set_enabled(false);
  prof.reset();
  { ScopedPhase scope(ProfilePhase::TraceIo); }
  EXPECT_EQ(prof.stats(ProfilePhase::TraceIo).scopes, 0u);
  prof.set_enabled(true);
}

}  // namespace
}  // namespace mantle::obs
