#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "balancers/builtin.hpp"
#include "fault/fault.hpp"
#include "sim/scenario.hpp"
#include "workloads/create_heavy.hpp"

/// The observability layer's reproducibility contract: timestamps come
/// from the simulated clock and exporters use fixed formatting, so two
/// runs with identical (seed, config) — including one with fault
/// injection — must serialize to byte-identical metrics snapshots and
/// event timelines.

namespace mantle::obs {
namespace {

struct ObsDump {
  std::string prom;
  std::string metrics_json;
  std::string trace_json;
  std::size_t trace_events = 0;
};

ObsDump run_plain(std::uint64_t seed) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 3;
  cfg.cluster.seed = seed;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.split_size = 300;
  cfg.max_time = 2 * kMinute;
  sim::Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  for (int c = 0; c < 3; ++c)
    s.add_client(workloads::make_shared_create_workload(
        c, "/shared", /*files=*/4000, /*think=*/200));
  s.run();
  ObsDump d;
  d.prom = s.cluster().metrics().to_prometheus();
  d.metrics_json = s.cluster().metrics().to_json();
  d.trace_json = s.cluster().trace().to_json();
  d.trace_events = s.cluster().trace().size();
  return d;
}

ObsDump run_faulty(std::uint64_t seed) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 3;
  cfg.cluster.seed = seed;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.split_size = 300;
  cfg.cluster.laggy_factor = 3.0;
  cfg.retry.timeout = 2 * kSec;
  cfg.max_time = 3 * kMinute;
  sim::Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  for (int c = 0; c < 3; ++c)
    s.add_client(workloads::make_shared_create_workload(
        c, "/shared", /*files=*/4000, /*think=*/200));
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.crashes.push_back({kSec, 1});
  plan.restarts.push_back({2 * kSec, 1});
  plan.hb_drop_prob = 0.05;
  plan.hb_duplicate_prob = 0.02;
  fault::FaultInjector inj(plan);
  inj.arm(s.cluster());
  s.run();
  ObsDump d;
  d.prom = s.cluster().metrics().to_prometheus();
  d.metrics_json = s.cluster().metrics().to_json();
  d.trace_json = s.cluster().trace().to_json();
  d.trace_events = s.cluster().trace().size();
  return d;
}

TEST(ObsDeterminism, PlainRunSnapshotsAreByteIdentical) {
  const ObsDump a = run_plain(7);
  const ObsDump b = run_plain(7);
  // The instrumentation must actually have fired, or byte-equality of
  // empty snapshots would prove nothing.
  EXPECT_GT(a.trace_events, 0u);
  EXPECT_NE(a.prom.find("mds_heartbeats_sent_total"), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"kind\":\"when\""), std::string::npos);
  EXPECT_EQ(a.prom, b.prom);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(ObsDeterminism, FaultInjectedRunSnapshotsAreByteIdentical) {
  const ObsDump a = run_faulty(11);
  const ObsDump b = run_faulty(11);
  EXPECT_NE(a.trace_json.find("\"kind\":\"crash\""), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"kind\":\"fault-injected\""),
            std::string::npos);
  EXPECT_NE(a.prom.find("faults_injected_total"), std::string::npos);
  EXPECT_EQ(a.prom, b.prom);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(ObsDeterminism, DifferentSeedsDiverge) {
  // Sanity check on the check itself: the snapshot is sensitive to the
  // seed, so byte-equality above is not vacuous.
  const ObsDump a = run_plain(7);
  const ObsDump c = run_plain(8);
  EXPECT_NE(a.trace_json, c.trace_json);
}

}  // namespace
}  // namespace mantle::obs
