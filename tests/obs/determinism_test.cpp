#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "balancers/builtin.hpp"
#include "fault/fault.hpp"
#include "obs/analyze.hpp"
#include "obs/profile.hpp"
#include "sim/scenario.hpp"
#include "workloads/create_heavy.hpp"

/// The observability layer's reproducibility contract: timestamps come
/// from the simulated clock, span ids are allocated in dispatch order
/// and exporters use fixed formatting, so two runs with identical
/// (seed, config) — including one with fault injection — must serialize
/// to byte-identical metrics snapshots, event timelines (plain and
/// Perfetto) and analysis reports.

namespace mantle::obs {
namespace {

struct ObsDump {
  std::string prom;
  std::string metrics_json;
  std::string trace_json;
  std::string perfetto_json;
  std::string analysis_json;
  std::vector<std::string> counter_names;
  std::size_t trace_events = 0;
  std::uint64_t dropped = 0;
};

ObsDump snapshot_of(sim::Scenario& s) {
  ObsDump d;
  d.prom = s.cluster().metrics().to_prometheus();
  d.metrics_json = s.cluster().metrics().to_json();
  d.trace_json = s.cluster().trace().to_json();
  d.perfetto_json = s.cluster().trace().to_perfetto();
  const auto counters = parse_metrics_counters(d.metrics_json);
  d.analysis_json = analyze(s.cluster().trace(), {}, &counters).to_json();
  d.counter_names = s.cluster().metrics().counter_names();
  d.trace_events = s.cluster().trace().size();
  d.dropped = s.cluster().trace().dropped_events();
  return d;
}

ObsDump run_plain(std::uint64_t seed, std::size_t trace_capacity = 0) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 3;
  cfg.cluster.seed = seed;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.split_size = 300;
  if (trace_capacity > 0) cfg.cluster.trace_capacity = trace_capacity;
  cfg.max_time = 2 * kMinute;
  sim::Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  for (int c = 0; c < 3; ++c)
    s.add_client(workloads::make_shared_create_workload(
        c, "/shared", /*files=*/4000, /*think=*/200));
  s.run();
  return snapshot_of(s);
}

ObsDump run_faulty(std::uint64_t seed) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 3;
  cfg.cluster.seed = seed;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.split_size = 300;
  cfg.cluster.laggy_factor = 3.0;
  cfg.retry.timeout = 2 * kSec;
  cfg.max_time = 3 * kMinute;
  sim::Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  for (int c = 0; c < 3; ++c)
    s.add_client(workloads::make_shared_create_workload(
        c, "/shared", /*files=*/4000, /*think=*/200));
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.crashes.push_back({kSec, 1});
  plan.restarts.push_back({2 * kSec, 1});
  plan.hb_drop_prob = 0.05;
  plan.hb_duplicate_prob = 0.02;
  fault::FaultInjector inj(plan);
  inj.arm(s.cluster());
  s.run();
  return snapshot_of(s);
}

TEST(ObsDeterminism, PlainRunSnapshotsAreByteIdentical) {
  const ObsDump a = run_plain(7);
  const ObsDump b = run_plain(7);
  // The instrumentation must actually have fired, or byte-equality of
  // empty snapshots would prove nothing.
  EXPECT_GT(a.trace_events, 0u);
  EXPECT_NE(a.prom.find("mds_heartbeats_sent_total"), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"kind\":\"when\""), std::string::npos);
  // Spans must actually be threaded, or byte-equality of span-free
  // timelines would not cover the causal layer.
  EXPECT_NE(a.trace_json.find("\"span\":"), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"parent\":"), std::string::npos);
  EXPECT_NE(a.perfetto_json.find("\"cat\":\"migration\""), std::string::npos);
  EXPECT_EQ(a.prom, b.prom);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.perfetto_json, b.perfetto_json);
  EXPECT_EQ(a.analysis_json, b.analysis_json);
}

TEST(ObsDeterminism, FaultInjectedRunSnapshotsAreByteIdentical) {
  const ObsDump a = run_faulty(11);
  const ObsDump b = run_faulty(11);
  EXPECT_NE(a.trace_json.find("\"kind\":\"crash\""), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"kind\":\"fault-injected\""),
            std::string::npos);
  EXPECT_NE(a.prom.find("faults_injected_total"), std::string::npos);
  EXPECT_EQ(a.prom, b.prom);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.perfetto_json, b.perfetto_json);
  EXPECT_EQ(a.analysis_json, b.analysis_json);
}

TEST(ObsDeterminism, DifferentSeedsDiverge) {
  // Sanity check on the check itself: the snapshot is sensitive to the
  // seed, so byte-equality above is not vacuous.
  const ObsDump a = run_plain(7);
  const ObsDump c = run_plain(8);
  EXPECT_NE(a.trace_json, c.trace_json);
  EXPECT_NE(a.perfetto_json, c.perfetto_json);
}

TEST(ObsDeterminism, TruncatedTimelinesAreByteIdentical) {
  // Overflow accounting: with a tiny injected bound the sink drops the
  // tail deterministically — both runs drop the same count and the
  // truncated timeline still serializes byte-for-byte.
  const ObsDump a = run_plain(7, /*trace_capacity=*/32);
  const ObsDump b = run_plain(7, /*trace_capacity=*/32);
  EXPECT_EQ(a.trace_events, 32u);
  EXPECT_GT(a.dropped, 0u);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.perfetto_json, b.perfetto_json);
  EXPECT_EQ(a.analysis_json, b.analysis_json);
  // The truncated timeline is a strict prefix of the unbounded one.
  const ObsDump full = run_plain(7);
  EXPECT_EQ(full.dropped, 0u);
  EXPECT_GT(full.trace_events, a.trace_events);
  EXPECT_EQ(full.trace_json.compare(1, a.trace_json.size() - 2,
                                    a.trace_json, 1,
                                    a.trace_json.size() - 2),
            0)
      << "bounded timeline is not a prefix of the unbounded one";
}

TEST(ObsLint, EveryRegisteredCounterEndsInTotal) {
  // Prometheus naming convention, enforced over a fully instrumented
  // run: the faulty scenario touches request, heartbeat, balancer,
  // migration, dirfrag, dead-letter, recovery, fault and provenance
  // counters.
  const ObsDump d = run_faulty(11);
  ASSERT_GT(d.counter_names.size(), 10u);
  constexpr const char* kSuffix = "_total";
  bool saw_provenance = false;
  for (const std::string& name : d.counter_names) {
    ASSERT_GE(name.size(), std::string(kSuffix).size());
    EXPECT_EQ(name.substr(name.size() - std::string(kSuffix).size()), kSuffix)
        << "counter '" << name << "' violates the _total suffix convention";
    if (name.rfind("mantle_provenance_", 0) == 0) saw_provenance = true;
  }
  EXPECT_TRUE(saw_provenance)
      << "provenance counters missing from an instrumented run";
}

TEST(ObsLint, EveryEventKindHasAKebabName) {
  // Every kind through kLastEventKind must render a real name (the "?"
  // fallback would leak into dumps) in kebab-case, including the
  // provenance-* kinds added with the flight recorder.
  bool saw_provenance = false;
  for (int k = 0; k <= static_cast<int>(kLastEventKind); ++k) {
    const std::string name = event_kind_name(static_cast<EventKind>(k));
    EXPECT_NE(name, "?") << "event kind " << k << " has no name";
    for (const char c : name)
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '-')
          << "event kind name '" << name << "' is not kebab-case";
    if (name.rfind("provenance-", 0) == 0) saw_provenance = true;
  }
  EXPECT_TRUE(saw_provenance) << "no provenance-* trace kind registered";
}

TEST(ObsLint, ProfilePhaseNamesFollowConventions) {
  // Phase names are kebab-case; their derived metric names carry the
  // mantle_profile_ prefix and the _total counter suffix.
  for (int p = 0; p < kNumProfilePhases; ++p) {
    const auto phase = static_cast<ProfilePhase>(p);
    const std::string name = profile_phase_name(phase);
    EXPECT_FALSE(name.empty());
    for (const char c : name)
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '-')
          << "phase name '" << name << "' is not kebab-case";
    const std::string metric = profile_metric_name(phase);
    EXPECT_EQ(metric.rfind("mantle_profile_", 0), 0u) << metric;
    constexpr const char* kSuffix = "_total";
    ASSERT_GE(metric.size(), std::string(kSuffix).size());
    EXPECT_EQ(metric.substr(metric.size() - std::string(kSuffix).size()),
              kSuffix)
        << "profile metric '" << metric << "' violates the counter suffix";
  }
}

}  // namespace
}  // namespace mantle::obs
