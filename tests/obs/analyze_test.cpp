#include "obs/analyze.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "balancers/builtin.hpp"
#include "obs/metrics.hpp"
#include "sim/scenario.hpp"
#include "workloads/create_heavy.hpp"

/// The trace-analytics engine: per-tick series, run summary, the four
/// anomaly detectors (each exercised by a synthetic timeline built to
/// trip exactly it), the dump parsers, and the causal-span threading the
/// analyzer depends on.

namespace mantle::obs {
namespace {

TraceEvent make(Time at, EventKind kind, int rank = -1, int peer = -1,
                std::string detail = {},
                std::vector<std::pair<std::string, double>> fields = {},
                SpanId span = kNoSpan, SpanId parent = kNoSpan) {
  TraceEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.rank = rank;
  ev.peer = peer;
  ev.span = span;
  ev.parent = parent;
  ev.detail = std::move(detail);
  ev.fields = std::move(fields);
  return ev;
}

// ---------------------------------------------------------------------------
// Detectors, one synthetic timeline each
// ---------------------------------------------------------------------------

TEST(Detectors, PingPongTripsOnSustainedBouncing) {
  AnalyzeConfig cfg;
  cfg.tick = kSec;
  // One subtree bouncing 0<->1 every 100 ms: commit then immediate
  // re-export back, ping_pong_min_reversals times over.
  std::vector<TraceEvent> evs;
  Time t = 0;
  int from = 0;
  int to = 1;
  SpanId span = 1;
  for (std::uint64_t i = 0; i <= cfg.ping_pong_min_reversals; ++i) {
    evs.push_back(make(t, EventKind::ExportStart, from, to, "1.0x00000000/0",
                       {{"entries", 10.0}}, span));
    evs.push_back(make(t + 50 * kMsec, EventKind::ExportCommit, from, to,
                       "1.0x00000000/0", {{"entries", 10.0}}, span));
    t += 100 * kMsec;
    std::swap(from, to);
    ++span;
  }
  const Report rep = analyze(evs, cfg);
  EXPECT_EQ(rep.count("ping-pong"), 1u);  // one finding per subtree
  EXPECT_EQ(rep.tripped(), 1);
}

TEST(Detectors, SingleReversalIsTolerated) {
  // A->B, then B->A once (load legitimately moved back): no finding.
  std::vector<TraceEvent> evs;
  evs.push_back(make(0, EventKind::ExportStart, 0, 1, "1.0x00000000/0", {}, 1));
  evs.push_back(
      make(10 * kMsec, EventKind::ExportCommit, 0, 1, "1.0x00000000/0", {}, 1));
  evs.push_back(
      make(20 * kMsec, EventKind::ExportStart, 1, 0, "1.0x00000000/0", {}, 2));
  evs.push_back(
      make(30 * kMsec, EventKind::ExportCommit, 1, 0, "1.0x00000000/0", {}, 2));
  const Report rep = analyze(evs);
  EXPECT_EQ(rep.count("ping-pong"), 0u);
  EXPECT_EQ(rep.tripped(), 0);
}

TEST(Detectors, ThrashTripsOnGoTicksShippingNothing) {
  AnalyzeConfig cfg;
  // Rank 0 decides to migrate every tick but the where hook ships zero.
  std::vector<TraceEvent> evs;
  for (std::uint64_t i = 0; i < cfg.thrash_min_run; ++i) {
    const Time t = i * cfg.tick;
    const SpanId span = static_cast<SpanId>(i + 1);
    evs.push_back(make(t, EventKind::WhenDecision, 0, -1, "",
                       {{"go", 1.0}, {"my_load", 5.0}}, span));
    evs.push_back(make(t + 1, EventKind::WhereDecision, 0, -1, "",
                       {{"targets_total", 0.0}, {"shipped_total", 0.0}},
                       span));
  }
  const Report rep = analyze(evs, cfg);
  EXPECT_EQ(rep.count("thrash"), 1u);
  EXPECT_EQ(rep.tripped(), 1);

  // Shipping load on one of the ticks resets the run: no finding.
  evs[3].fields = {{"targets_total", 1.0}, {"shipped_total", 2.5}};
  const Report ok = analyze(evs, cfg);
  EXPECT_EQ(ok.count("thrash"), 0u);
}

TEST(Detectors, StuckExportTripsWhenNeverResolved) {
  std::vector<TraceEvent> evs;
  evs.push_back(make(kSec, EventKind::ExportStart, 0, 1, "1.0x00000000/0",
                     {{"entries", 5.0}}, 7));
  // A second migration that resolves normally must NOT be reported.
  evs.push_back(make(2 * kSec, EventKind::ExportStart, 1, 2, "2.0x00000000/0",
                     {{"entries", 5.0}}, 8));
  evs.push_back(make(3 * kSec, EventKind::ExportCommit, 1, 2, "2.0x00000000/0",
                     {{"entries", 5.0}}, 8));
  const Report rep = analyze(evs);
  ASSERT_EQ(rep.count("stuck-export"), 1u);
  EXPECT_EQ(rep.tripped(), 1);
  // The finding names the stuck span's subtree.
  bool found = false;
  for (const Anomaly& a : rep.anomalies)
    if (a.detector == "stuck-export") {
      EXPECT_EQ(a.span, 7);
      EXPECT_NE(a.detail.find("1.0x00000000/0"), std::string::npos);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(Detectors, AbortResolvesAnExport) {
  std::vector<TraceEvent> evs;
  evs.push_back(make(kSec, EventKind::ExportStart, 0, 1, "1.0x00000000/0",
                     {{"entries", 5.0}}, 7));
  evs.push_back(
      make(2 * kSec, EventKind::ExportAbort, 0, 1, "migration-aborted", {}, 7));
  const Report rep = analyze(evs);
  EXPECT_EQ(rep.count("stuck-export"), 0u);
  EXPECT_EQ(rep.exports_aborted, 1u);
}

TEST(Detectors, DeadLetterLeakTripsWhenParkedOutnumberFlushed) {
  std::vector<TraceEvent> evs;
  evs.push_back(make(kSec, EventKind::DeadLetterParked, 1, -1,
                     "1.0x00000000/0", {{"req", 1.0}}, 3));
  evs.push_back(make(kSec, EventKind::DeadLetterParked, 1, -1,
                     "1.0x00000000/0", {{"req", 2.0}}, 4));
  evs.push_back(make(2 * kSec, EventKind::DeadLetterFlushed, 1, -1,
                     "1.0x00000000/0", {{"req", 1.0}}, 3));
  const Report rep = analyze(evs);
  EXPECT_EQ(rep.parked, 2u);
  EXPECT_EQ(rep.flushed, 1u);
  EXPECT_EQ(rep.count("dead-letter-leak"), 1u);
  EXPECT_EQ(rep.tripped(), 1);

  // Flushing the second request clears it.
  evs.push_back(make(3 * kSec, EventKind::DeadLetterFlushed, 1, -1,
                     "1.0x00000000/0", {{"req", 2.0}}, 4));
  EXPECT_EQ(analyze(evs).count("dead-letter-leak"), 0u);
}

// ---------------------------------------------------------------------------
// Series and summary metrics
// ---------------------------------------------------------------------------

TEST(Series, PerTickLoadAndImbalanceCv) {
  std::vector<TraceEvent> evs;
  // Two ranks report loads via heartbeats: tick 0 balanced, tick 1 skewed.
  evs.push_back(
      make(100, EventKind::HeartbeatSent, 0, 1, "", {{"load", 4.0}}));
  evs.push_back(
      make(200, EventKind::HeartbeatSent, 1, 0, "", {{"load", 4.0}}));
  evs.push_back(
      make(kSec + 100, EventKind::HeartbeatSent, 0, 1, "", {{"load", 8.0}}));
  evs.push_back(
      make(kSec + 200, EventKind::HeartbeatSent, 1, 0, "", {{"load", 0.0}}));
  const Report rep = analyze(evs);
  ASSERT_EQ(rep.ticks, 2u);
  ASSERT_EQ(rep.num_ranks, 2);
  EXPECT_DOUBLE_EQ(rep.series[0].load[0], 4.0);
  EXPECT_DOUBLE_EQ(rep.series[0].load[1], 4.0);
  EXPECT_DOUBLE_EQ(rep.series[0].cv, 0.0);  // perfectly balanced
  EXPECT_DOUBLE_EQ(rep.series[1].load[0], 8.0);
  EXPECT_DOUBLE_EQ(rep.series[1].load[1], 0.0);
  EXPECT_DOUBLE_EQ(rep.series[1].cv, 1.0);  // stddev 4 / mean 4
  EXPECT_DOUBLE_EQ(rep.cv_max, 1.0);
  EXPECT_DOUBLE_EQ(rep.cv_mean, 0.5);
}

TEST(Series, SilentTicksCarryLoadsForward) {
  std::vector<TraceEvent> evs;
  evs.push_back(make(0, EventKind::HeartbeatSent, 0, 1, "", {{"load", 2.0}}));
  evs.push_back(make(0, EventKind::HeartbeatSent, 1, 0, "", {{"load", 6.0}}));
  // Nothing for 3 ticks, then one event to extend the timeline.
  evs.push_back(make(3 * kSec + 1, EventKind::HeartbeatSent, 0, 1, "",
                     {{"load", 2.0}}));
  const Report rep = analyze(evs);
  ASSERT_EQ(rep.ticks, 4u);
  for (std::uint64_t t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(rep.series[t].load[0], 2.0) << "tick " << t;
    EXPECT_DOUBLE_EQ(rep.series[t].load[1], 6.0) << "tick " << t;
  }
}

TEST(Summary, MigrationChurnSplitDepthAndLocality) {
  std::vector<TraceEvent> evs;
  evs.push_back(make(100, EventKind::ExportStart, 0, 1, "1.0x00000000/0",
                     {{"entries", 40.0}}, 1));
  evs.push_back(make(500, EventKind::ExportCommit, 0, 1, "1.0x00000000/0",
                     {{"entries", 40.0}}, 1));
  // A split of a 3-bit fragment into 8 children reaches 6 bits.
  evs.push_back(make(kSec + 1, EventKind::DirfragSplit, 1, -1,
                     "1.0x20000000/3", {{"fragments", 8.0}}));
  evs.push_back(make(kSec + 2, EventKind::DirfragMerge, 1, -1,
                     "1.0x00000000/0"));
  const std::map<std::string, double> counters = {
      {"mds_requests_completed_total", 90.0}, {"mds_forwards_total", 10.0}};
  const Report rep = analyze(evs, {}, &counters);
  EXPECT_EQ(rep.ticks, 2u);
  EXPECT_EQ(rep.exports_started, 1u);
  EXPECT_EQ(rep.exports_committed, 1u);
  EXPECT_EQ(rep.entries_shipped, 40u);
  EXPECT_DOUBLE_EQ(rep.churn, 0.5);  // 1 start / 2 ticks
  EXPECT_EQ(rep.splits, 1u);
  EXPECT_EQ(rep.merges, 1u);
  EXPECT_EQ(rep.max_split_depth, 6);
  ASSERT_TRUE(rep.has_locality);
  EXPECT_DOUBLE_EQ(rep.locality_ratio, 0.9);
  EXPECT_EQ(rep.tripped(), 0);
}

TEST(Summary, EmptyTimeline) {
  const Report rep = analyze(std::vector<TraceEvent>{});
  EXPECT_EQ(rep.events, 0u);
  EXPECT_EQ(rep.ticks, 0u);
  EXPECT_EQ(rep.tripped(), 0);
  EXPECT_NE(rep.to_json().find("\"events\":0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Parsers: the analyzer must consume what the sinks emit
// ---------------------------------------------------------------------------

TEST(Parse, TraceJsonRoundTrip) {
  TraceSink sink;
  const SpanId parent = sink.next_span();
  const SpanId span = sink.next_span();
  sink.event(100, EventKind::ExportStart, 0, 2, "1.0x80000000/1",
             {{"entries", 12.0}, {"eta_ms", 3.5}}, span, parent);
  sink.event(200, EventKind::Crash, 1);
  sink.event(300, EventKind::FaultInjected, -1, -1, "hb\"drop\"");
  const auto parsed = parse_trace_json(sink.to_json());
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].at, 100u);
  EXPECT_EQ(parsed[0].kind, EventKind::ExportStart);
  EXPECT_EQ(parsed[0].rank, 0);
  EXPECT_EQ(parsed[0].peer, 2);
  EXPECT_EQ(parsed[0].span, span);
  EXPECT_EQ(parsed[0].parent, parent);
  EXPECT_EQ(parsed[0].detail, "1.0x80000000/1");
  ASSERT_EQ(parsed[0].fields.size(), 2u);
  EXPECT_EQ(parsed[0].fields[0].first, "entries");
  EXPECT_DOUBLE_EQ(parsed[0].fields[0].second, 12.0);
  EXPECT_DOUBLE_EQ(parsed[0].fields[1].second, 3.5);
  EXPECT_EQ(parsed[1].kind, EventKind::Crash);
  EXPECT_EQ(parsed[1].rank, 1);
  EXPECT_EQ(parsed[1].peer, -1);
  EXPECT_EQ(parsed[1].span, kNoSpan);
  EXPECT_EQ(parsed[2].detail, "hb\"drop\"");
}

TEST(Parse, AnalyzingParsedDumpMatchesAnalyzingLiveSink) {
  TraceSink sink;
  const SpanId s1 = sink.next_span();
  sink.event(100, EventKind::WhenDecision, 0, -1, "",
             {{"go", 1.0}, {"my_load", 3.0}}, s1);
  sink.event(200, EventKind::ExportStart, 0, 1, "1.0x00000000/0",
             {{"entries", 4.0}}, 2, s1);
  sink.event(kSec, EventKind::ExportCommit, 0, 1, "1.0x00000000/0",
             {{"entries", 4.0}}, 2);
  const Report live = analyze(sink);
  const Report parsed = analyze(parse_trace_json(sink.to_json()));
  EXPECT_EQ(live.to_json(), parsed.to_json());
}

TEST(Parse, MetricsCounters) {
  MetricsRegistry reg;
  reg.counter("a_total").inc(3);
  reg.counter("b_total").inc(5);
  reg.gauge("g").set(1.5);
  reg.histogram("h_ms", {1.0}).observe(0.5);
  const auto counters = parse_metrics_counters(reg.to_json());
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_DOUBLE_EQ(counters.at("a_total"), 3.0);
  EXPECT_DOUBLE_EQ(counters.at("b_total"), 5.0);
}

TEST(Parse, GarbageIsNotFatal) {
  EXPECT_TRUE(parse_trace_json("not json at all").empty());
  EXPECT_TRUE(parse_trace_json("[{\"kind\":\"no-such-kind\",\"t_us\":1}]")
                  .empty());
  EXPECT_TRUE(parse_metrics_counters("{\"counters\":").empty());
  // A truncated array still yields the complete prefix.
  const auto partial = parse_trace_json(
      "[{\"t_us\":1,\"kind\":\"crash\",\"rank\":0},{\"t_us\":2,\"ki");
  ASSERT_EQ(partial.size(), 1u);
  EXPECT_EQ(partial[0].kind, EventKind::Crash);
}

// ---------------------------------------------------------------------------
// Span threading through a real scenario
// ---------------------------------------------------------------------------

TEST(Spans, ThreadedThroughScenario) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 3;
  cfg.cluster.seed = 7;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.split_size = 300;
  cfg.max_time = 2 * kMinute;
  sim::Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  for (int c = 0; c < 3; ++c)
    s.add_client(workloads::make_shared_create_workload(
        c, "/shared", /*files=*/3000, /*think=*/200));
  s.run();

  EXPECT_GT(s.cluster().trace().spans_allocated(), 0u);
  std::size_t starts = 0;
  for (const TraceEvent& ev : s.cluster().trace().snapshot()) {
    switch (ev.kind) {
      case EventKind::WhenDecision:
        // Every balancer tick carries its own span.
        EXPECT_GE(ev.span, 0);
        break;
      case EventKind::WhereDecision:
        // The where satellite: totals always present, even when zero.
        EXPECT_TRUE([&] {
          bool t = false;
          bool sh = false;
          for (const auto& [k, v] : ev.fields) {
            t = t || k == "targets_total";
            sh = sh || k == "shipped_total";
          }
          return t && sh;
        }()) << "where event misses targets_total/shipped_total";
        EXPECT_GE(ev.span, 0);
        break;
      case EventKind::ExportStart:
        ++starts;
        // Migration spans are children of the deciding balancer tick.
        EXPECT_GE(ev.span, 0);
        EXPECT_GE(ev.parent, 0);
        EXPECT_NE(ev.span, ev.parent);
        break;
      case EventKind::ExportCommit:
        EXPECT_GE(ev.span, 0);
        break;
      default:
        break;
    }
  }
  ASSERT_GT(starts, 0u) << "scenario produced no migrations to check";

  // Every migration span resolves: the stuck-export detector agrees.
  const Report rep = analyze(s.cluster().trace());
  EXPECT_EQ(rep.count("stuck-export"), 0u);
  EXPECT_GT(rep.spans, 0u);
}

}  // namespace
}  // namespace mantle::obs
