#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace mantle::obs {
namespace {

TEST(Trace, RecordsInOrder) {
  TraceSink sink;
  sink.event(10, EventKind::HeartbeatSent, 0, 1);
  sink.event(20, EventKind::WhenDecision, 0, -1, "", {{"go", 1.0}});
  ASSERT_EQ(sink.size(), 2u);
  const auto evs = sink.snapshot();
  EXPECT_EQ(evs[0].at, 10u);
  EXPECT_EQ(evs[0].kind, EventKind::HeartbeatSent);
  EXPECT_EQ(evs[0].peer, 1);
  EXPECT_EQ(evs[1].at, 20u);
  ASSERT_EQ(evs[1].fields.size(), 1u);
  EXPECT_EQ(evs[1].fields[0].first, "go");
  EXPECT_DOUBLE_EQ(evs[1].fields[0].second, 1.0);
}

TEST(Trace, CapacityCapCountsDrops) {
  TraceSink sink(2);
  sink.event(1, EventKind::HeartbeatSent);
  sink.event(2, EventKind::HeartbeatSent);
  sink.event(3, EventKind::HeartbeatSent);
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped_events(), 1u);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped_events(), 0u);
}

TEST(Trace, JsonOmitsAbsentParts) {
  TraceSink sink;
  sink.event(5, EventKind::Crash);  // no rank/peer/detail/fields
  EXPECT_EQ(sink.to_json(), "[{\"t_us\":5,\"kind\":\"crash\"}]");
}

TEST(Trace, JsonFullEvent) {
  TraceSink sink;
  sink.event(7, EventKind::ExportStart, 0, 2, "100:0*",
             {{"entries", 12.0}, {"eta_ms", 3.5}});
  EXPECT_EQ(sink.to_json(),
            "[{\"t_us\":7,\"kind\":\"export-start\",\"rank\":0,\"peer\":2,"
            "\"detail\":\"100:0*\",\"fields\":{\"entries\":12,"
            "\"eta_ms\":3.5}}]");
}

TEST(Trace, JsonCarriesSpanAndParent) {
  TraceSink sink;
  const SpanId parent = sink.next_span();
  const SpanId span = sink.next_span();
  EXPECT_EQ(parent, 1);
  EXPECT_EQ(span, 2);
  EXPECT_EQ(sink.spans_allocated(), 2u);
  sink.event(9, EventKind::ExportStart, 1, 2, "f", {}, span, parent);
  EXPECT_EQ(sink.to_json(),
            "[{\"t_us\":9,\"kind\":\"export-start\",\"rank\":1,\"peer\":2,"
            "\"span\":2,\"parent\":1,\"detail\":\"f\"}]");
  sink.clear();
  // clear() resets the span counter too, so reruns number identically.
  EXPECT_EQ(sink.spans_allocated(), 0u);
  EXPECT_EQ(sink.next_span(), 1);
}

TEST(Trace, PerfettoHasTracksAndMigrationPairs) {
  TraceSink sink;
  const SpanId tick = sink.next_span();
  const SpanId mig = sink.next_span();
  sink.event(100, EventKind::WhenDecision, 0, -1, "", {{"go", 1.0}}, tick);
  sink.event(200, EventKind::ExportStart, 0, 1, "f", {{"entries", 3.0}}, mig,
             tick);
  sink.event(900, EventKind::ExportCommit, 0, 1, "f", {{"entries", 3.0}},
             mig);
  const std::string p = sink.to_perfetto();
  // Process/thread metadata: one track per rank plus a cluster track.
  EXPECT_NE(p.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(p.find("{\"name\":\"mantle\"}"), std::string::npos);
  EXPECT_NE(p.find("{\"name\":\"mds0\"}"), std::string::npos);
  EXPECT_NE(p.find("{\"name\":\"mds1\"}"), std::string::npos);
  // The migration renders as an async begin/end pair keyed by its span.
  EXPECT_NE(p.find("\"ph\":\"b\",\"cat\":\"migration\",\"id\":2"),
            std::string::npos);
  EXPECT_NE(p.find("\"ph\":\"e\",\"cat\":\"migration\",\"id\":2"),
            std::string::npos);
  // Every event also lands as an instant on its rank's track.
  EXPECT_NE(p.find("\"name\":\"when\""), std::string::npos);
  EXPECT_NE(p.find("\"name\":\"export-start\""), std::string::npos);
  EXPECT_NE(p.find("\"name\":\"export-commit\""), std::string::npos);
}

TEST(Trace, JsonEscapesDetail) {
  TraceSink sink;
  sink.event(1, EventKind::FaultInjected, -1, -1, "a\"b\\c");
  const std::string js = sink.to_json();
  EXPECT_NE(js.find("\"detail\":\"a\\\"b\\\\c\""), std::string::npos);
}

TEST(Trace, EmptySinkIsEmptyArray) {
  TraceSink sink;
  EXPECT_EQ(sink.to_json(), "[]");
}

TEST(Trace, EveryKindHasAName) {
  for (int k = 0; k <= static_cast<int>(EventKind::FaultInjected); ++k) {
    const char* name = event_kind_name(static_cast<EventKind>(k));
    EXPECT_STRNE(name, "?") << "kind " << k;
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

// Concurrent appends (parallel seed sweeps share nothing, but a single
// scenario's probes may record from helper threads) must be race-free;
// run under TSan in CI.
TEST(Trace, ConcurrentRecordIsSafe) {
  TraceSink sink;
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&sink, t] {
      for (int i = 0; i < kIters; ++i)
        sink.event(i, EventKind::HeartbeatSent, t);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(sink.size() + sink.dropped_events(),
            static_cast<std::size_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace mantle::obs
