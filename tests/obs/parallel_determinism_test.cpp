#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "balancers/builtin.hpp"
#include "chaos/chaos.hpp"
#include "fault/fault.hpp"
#include "obs/analyze.hpp"
#include "obs/profile.hpp"
#include "sim/scenario.hpp"
#include "workloads/compile.hpp"
#include "workloads/create_heavy.hpp"

/// The sharded engine's contract (ISSUE 10): the worker-thread count K
/// is an execution detail. For a fixed (config, seeds, shards,
/// lookahead), a K-thread run must produce byte-identical MANTLE_OBS_DIR
/// artifacts — Prometheus text, metrics JSON, event timeline, Perfetto
/// export and the analysis report — to the serial (K=1) run of the same
/// sharded schedule. These tests are the oracle the parallelism is
/// developed against; they also run under TSan in CI, which is what
/// certifies the phase-A concurrency (and the wall-clock profiler, which
/// stays enabled throughout) as race-free rather than merely lucky.

namespace mantle::obs {
namespace {

struct ObsDump {
  std::string prom;
  std::string metrics_json;
  std::string trace_json;
  std::string perfetto_json;
  std::string analysis_json;
  std::vector<std::string> counter_names;
  std::size_t trace_events = 0;
};

ObsDump snapshot_of(sim::Scenario& s) {
  ObsDump d;
  d.prom = s.cluster().metrics().to_prometheus();
  d.metrics_json = s.cluster().metrics().to_json();
  d.trace_json = s.cluster().trace().to_json();
  d.perfetto_json = s.cluster().trace().to_perfetto();
  const auto counters = parse_metrics_counters(d.metrics_json);
  d.analysis_json = analyze(s.cluster().trace(), {}, &counters).to_json();
  d.counter_names = s.cluster().metrics().counter_names();
  d.trace_events = s.cluster().trace().size();
  return d;
}

void expect_dumps_equal(const ObsDump& a, const ObsDump& b,
                        const std::string& what) {
  EXPECT_EQ(a.prom, b.prom) << what << ": prometheus text diverged";
  EXPECT_EQ(a.metrics_json, b.metrics_json) << what << ": metrics json";
  EXPECT_EQ(a.trace_json, b.trace_json) << what << ": trace json";
  EXPECT_EQ(a.perfetto_json, b.perfetto_json) << what << ": perfetto";
  EXPECT_EQ(a.analysis_json, b.analysis_json) << what << ": analysis";
  EXPECT_EQ(a.counter_names, b.counter_names) << what << ": counter set";
}

sim::ScenarioConfig base_cfg(std::uint64_t seed, int num_mds, int shards,
                             int threads) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = num_mds;
  cfg.cluster.seed = seed;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.split_size = 300;
  cfg.cluster.shards = shards;
  cfg.threads = threads;
  cfg.max_time = 2 * kMinute;
  return cfg;
}

void add_create_clients(sim::Scenario& s, int n, std::size_t files) {
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  for (int c = 0; c < n; ++c)
    s.add_client(workloads::make_shared_create_workload(
        c, "/shared", files, /*think=*/200));
}

ObsDump run_create_heavy(int shards, int threads, int num_mds = 4) {
  auto cfg = base_cfg(7, num_mds, shards, threads);
  sim::Scenario s(cfg);
  add_create_clients(s, 3, 2500);
  s.run();
  return snapshot_of(s);
}

ObsDump run_compile(int shards, int threads) {
  auto cfg = base_cfg(21, 4, shards, threads);
  cfg.max_time = 4 * kMinute;
  sim::Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  workloads::CompileOptions opt;
  opt.compile_ops = 1200;
  opt.read_ops = 400;
  opt.link_rounds = 2;
  for (int c = 0; c < 2; ++c)
    s.add_client(workloads::make_compile_workload(c, opt));
  s.run();
  return snapshot_of(s);
}

ObsDump run_faulty(int shards, int threads, std::uint64_t* hb_faults = nullptr) {
  // 5 ranks over 3 shards exercises the non-divisible mapping together
  // with crash/restart (serial lane) and probabilistic heartbeat faults
  // (fired from phase-A shard lanes through the per-sender fault rngs).
  auto cfg = base_cfg(11, 5, shards, threads);
  // The run only spans a few simulated seconds; tick fast and fault
  // hard so the heartbeat fault path sees real traffic.
  cfg.cluster.bal_interval = 250 * kMsec;
  cfg.cluster.laggy_factor = 3.0;
  cfg.retry.timeout = 2 * kSec;
  cfg.max_time = 3 * kMinute;
  sim::Scenario s(cfg);
  add_create_clients(s, 3, 2500);
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.crashes.push_back({kSec, 1});
  plan.restarts.push_back({2 * kSec, 1});
  plan.hb_drop_prob = 0.2;
  plan.hb_duplicate_prob = 0.1;
  plan.hb_delay_prob = 0.2;
  plan.hb_delay_max = 20 * kMsec;
  fault::FaultInjector inj(plan);
  inj.arm(s.cluster());
  s.run();
  if (hb_faults != nullptr)
    *hb_faults = inj.counters().hb_dropped + inj.counters().hb_duplicated +
                 inj.counters().hb_delayed;
  return snapshot_of(s);
}

/// Window-based chaos injector over a generated ChaosSchedule: pure data
/// consulted against the simulated clock, no randomness of its own —
/// safe to evaluate from phase-A shard lanes, counters aside.
class WindowFaults final : public cluster::NetworkFaults {
 public:
  WindowFaults(chaos::ChaosSchedule sched, cluster::MdsCluster& cluster)
      : sched_(std::move(sched)), cluster_(cluster) {
    cluster_.set_network_faults(this);
    for (const chaos::ChaosEvent& e : sched_.events) {
      if (e.kind == chaos::FaultKind::Crash)
        cluster_.sched_at(e.at, [this, e]() { cluster_.crash_mds(e.rank); });
      else if (e.kind == chaos::FaultKind::Restart)
        cluster_.sched_at(e.at, [this, e]() { cluster_.restart_mds(e.rank); });
    }
  }

  std::uint64_t fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

  bool drop_heartbeat(mds::MdsRank from, mds::MdsRank) override {
    return in_window(chaos::FaultKind::HbDrop, from) != nullptr;
  }
  bool duplicate_heartbeat(mds::MdsRank from, mds::MdsRank) override {
    return in_window(chaos::FaultKind::HbDup, from) != nullptr;
  }
  Time extra_heartbeat_delay(mds::MdsRank from, mds::MdsRank) override {
    const chaos::ChaosEvent* e = in_window(chaos::FaultKind::HbDelay, from);
    return e != nullptr ? e->delay : 0;
  }

 private:
  const chaos::ChaosEvent* in_window(chaos::FaultKind kind,
                                     mds::MdsRank rank) {
    const Time now = cluster_.sim_now();
    for (const chaos::ChaosEvent& e : sched_.events) {
      if (e.kind != kind || e.rank != rank) continue;
      if (now >= e.at && now < e.until) {
        fired_.fetch_add(1, std::memory_order_relaxed);
        return &e;
      }
    }
    return nullptr;
  }

  chaos::ChaosSchedule sched_;
  cluster::MdsCluster& cluster_;
  std::atomic<std::uint64_t> fired_{0};
};

ObsDump run_chaos_scheduled(int shards, int threads,
                            std::uint64_t* fired = nullptr) {
  auto cfg = base_cfg(31, 4, shards, threads);
  cfg.retry.timeout = 2 * kSec;
  cfg.max_time = 3 * kMinute;
  sim::Scenario s(cfg);
  add_create_clients(s, 3, 2000);
  // A seed whose schedule contains heartbeat-fault windows (not only
  // crash/restart/store events), so the phase-A fault path is exercised.
  chaos::ChaosSchedule sched =
      chaos::generate_schedule(/*seed=*/31, /*num_mds=*/4, /*max_events=*/5);
  sched.events.push_back({chaos::FaultKind::HbDrop, 0, kSec, 30 * kSec, 0});
  sched.events.push_back(
      {chaos::FaultKind::HbDelay, 2, 5 * kSec, 40 * kSec, 15 * kMsec});
  WindowFaults wf(std::move(sched), s.cluster());
  s.run();
  if (fired != nullptr) *fired = wf.fired();
  return snapshot_of(s);
}

TEST(ParallelDeterminism, CreateHeavyDumpsIndependentOfThreadCount) {
  const ObsDump serial = run_create_heavy(/*shards=*/4, /*threads=*/1);
  ASSERT_GT(serial.trace_events, 0u);
  ASSERT_NE(serial.prom.find("mds_heartbeats_sent_total"), std::string::npos);
  ASSERT_NE(serial.trace_json.find("\"span\":"), std::string::npos);
  expect_dumps_equal(serial, run_create_heavy(4, 2), "K=2");
  expect_dumps_equal(serial, run_create_heavy(4, 4), "K=4");
  // Oversubscribed K clamps to the shard count and must change nothing.
  expect_dumps_equal(serial, run_create_heavy(4, 8), "K=8(clamped)");
}

TEST(ParallelDeterminism, CompileDumpsIndependentOfThreadCount) {
  const ObsDump serial = run_compile(/*shards=*/4, /*threads=*/1);
  ASSERT_GT(serial.trace_events, 0u);
  expect_dumps_equal(serial, run_compile(4, 2), "K=2");
  expect_dumps_equal(serial, run_compile(4, 4), "K=4");
}

TEST(ParallelDeterminism, FaultInjectedDumpsIndependentOfThreadCount) {
  std::uint64_t hb1 = 0, hb4 = 0;
  const ObsDump serial = run_faulty(/*shards=*/3, /*threads=*/1, &hb1);
  // The fault machinery must actually have fired or the comparison
  // proves nothing about the phase-A fault path.
  EXPECT_GT(hb1, 0u);
  EXPECT_NE(serial.trace_json.find("\"kind\":\"crash\""), std::string::npos);
  expect_dumps_equal(serial, run_faulty(3, 2), "K=2");
  expect_dumps_equal(serial, run_faulty(3, 4, &hb4), "K=4");
  // Per-sender fault streams: the tally is K-independent too.
  EXPECT_EQ(hb1, hb4);
}

TEST(ParallelDeterminism, ChaosScheduledDumpsIndependentOfThreadCount) {
  std::uint64_t fired = 0;
  const ObsDump serial = run_chaos_scheduled(/*shards=*/4, /*threads=*/1,
                                             &fired);
  EXPECT_GT(fired, 0u);
  expect_dumps_equal(serial, run_chaos_scheduled(4, 2), "K=2");
  expect_dumps_equal(serial, run_chaos_scheduled(4, 4), "K=4");
}

TEST(ParallelDeterminism, ShardCountNotDividingRanksStaysDeterministic) {
  // 4 MDS over 3 shards: shard 0 owns ranks {0, 3}, the others one each.
  const ObsDump serial = run_create_heavy(/*shards=*/3, /*threads=*/1,
                                          /*num_mds=*/4);
  ASSERT_GT(serial.trace_events, 0u);
  expect_dumps_equal(serial, run_create_heavy(3, 2, 4), "K=2");
  expect_dumps_equal(serial, run_create_heavy(3, 3, 4), "K=3");
}

TEST(ParallelDeterminism, ProfilerStaysOutOfDumpsUnderThreads) {
  // The wall-clock phase profiler is process-wide and stays enabled
  // during the threaded runs above; here we assert it both (a) actually
  // accumulated samples from the parallel phases and (b) leaked nothing
  // into the deterministic dumps (its numbers vary run to run).
  Profiler::instance().reset();
  const ObsDump a = run_create_heavy(4, 4);
  const auto stats = Profiler::instance().stats(ProfilePhase::ClusterTick);
  EXPECT_GT(stats.scopes, 0u);
  EXPECT_EQ(a.prom.find("mantle_profile_"), std::string::npos);
  EXPECT_EQ(a.metrics_json.find("mantle_profile_"), std::string::npos);
  expect_dumps_equal(a, run_create_heavy(4, 4), "profiled re-run");
}

TEST(ParallelLint, ShardedCounterFoldMatchesClassicTotals) {
  // The shard-local counter cells must fold to the same totals the
  // classic single-queue engine produces for workload-level counters
  // whose semantics the sharded schedule preserves exactly (client ops
  // either complete or the run is broken; scheduling-sensitive counters
  // like balancer picks legitimately differ between the two schedules).
  auto classic_cfg = base_cfg(7, 4, /*shards=*/0, /*threads=*/1);
  sim::Scenario classic(classic_cfg);
  add_create_clients(classic, 3, 2500);
  classic.run();
  const auto classic_counters =
      parse_metrics_counters(classic.cluster().metrics().to_json());

  const ObsDump sharded = run_create_heavy(4, 4);
  const auto sharded_counters = parse_metrics_counters(sharded.metrics_json);

  const auto total = [](const std::map<std::string, double>& m,
                        const std::string& k) {
    const auto it = m.find(k);
    return it == m.end() ? -1.0 : it->second;
  };
  for (const char* name : {"mds_requests_completed_total"}) {
    EXPECT_GT(total(sharded_counters, name), 0.0) << name;
    EXPECT_EQ(total(sharded_counters, name), total(classic_counters, name))
        << name;
  }
  // Every registered counter still obeys the Prometheus lint when the
  // values come from folded shard cells.
  for (const std::string& name : sharded.counter_names)
    EXPECT_EQ(name.substr(name.size() - 6), "_total") << name;
}

}  // namespace
}  // namespace mantle::obs
