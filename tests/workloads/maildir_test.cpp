#include "workloads/maildir.hpp"
#include "workloads/trace.hpp"

#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace mantle::workloads {
namespace {

using cluster::OpType;

TEST(Maildir, SetupThenCreateRenamePairs) {
  Rng rng(1);
  MaildirWorkload::Options opt;
  opt.root = "/mail0";
  opt.num_messages = 3;
  opt.readdir_every = 2;
  MaildirWorkload wl(opt);

  auto op = wl.next(rng);
  ASSERT_TRUE(op);
  EXPECT_EQ(op->op, OpType::Mkdir);
  EXPECT_EQ(op->name, "mail0");
  EXPECT_EQ(wl.next(rng)->name, "tmp");
  EXPECT_EQ(wl.next(rng)->name, "new");

  // msg0: create + rename.
  op = wl.next(rng);
  EXPECT_EQ(op->op, OpType::Create);
  EXPECT_EQ(op->dir_path, "/mail0/tmp");
  EXPECT_EQ(op->name, "msg0");
  op = wl.next(rng);
  EXPECT_EQ(op->op, OpType::Rename);
  EXPECT_EQ(op->dir_path, "/mail0/tmp");
  EXPECT_EQ(op->dst_dir_path, "/mail0/new");
  EXPECT_EQ(op->dst_name, "msg0");

  // msg1: create + rename, then the periodic readdir of new/.
  EXPECT_EQ(wl.next(rng)->op, OpType::Create);
  EXPECT_EQ(wl.next(rng)->op, OpType::Rename);
  op = wl.next(rng);
  EXPECT_EQ(op->op, OpType::Readdir);
  EXPECT_EQ(op->dir_path, "/mail0/new");

  // msg2, then done.
  EXPECT_EQ(wl.next(rng)->op, OpType::Create);
  EXPECT_EQ(wl.next(rng)->op, OpType::Rename);
  op = wl.next(rng);
  EXPECT_EQ(op->op, OpType::Readdir);
  EXPECT_FALSE(wl.next(rng).has_value());
}

TEST(Maildir, EndToEndDeliveryLandsInNew) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 1;
  sim::Scenario s(cfg);
  s.add_client(make_maildir_workload(0, 300, 20));
  s.run();
  EXPECT_EQ(s.client(0).ops_failed(), 0u);
  auto& ns = s.cluster().ns();
  const auto tmp = ns.resolve("/mail0/tmp");
  const auto fresh = ns.resolve("/mail0/new");
  ASSERT_TRUE(tmp.found);
  ASSERT_TRUE(fresh.found);
  EXPECT_EQ(ns.dir(tmp.ino)->num_entries(), 0u);
  EXPECT_EQ(ns.dir(fresh.ino)->num_entries(), 300u);
  EXPECT_TRUE(ns.resolve("/mail0/new/msg299").found);
}

TEST(Maildir, TraceRoundTripPreservesRenames) {
  Rng rng(2);
  auto wl = make_maildir_workload(1, 5);
  const auto ops = record_workload(*wl, rng);
  const std::string text = format_trace(ops);
  const auto parsed = parse_trace(text);
  ASSERT_EQ(parsed.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(parsed[i].op, ops[i].op);
    EXPECT_EQ(parsed[i].dst_dir_path, ops[i].dst_dir_path);
    EXPECT_EQ(parsed[i].dst_name, ops[i].dst_name);
  }
}

}  // namespace
}  // namespace mantle::workloads
