#include <gtest/gtest.h>

#include "workloads/compile.hpp"
#include "workloads/create_heavy.hpp"
#include "workloads/trace.hpp"

namespace mantle::workloads {
namespace {

using cluster::OpType;

TEST(CreateHeavy, EmitsMkdirThenCreates) {
  Rng rng(1);
  auto wl = make_private_create_workload(3, 5);
  auto first = wl->next(rng);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->op, OpType::Mkdir);
  EXPECT_EQ(first->dir_path, "/");
  EXPECT_EQ(first->name, "client3");
  for (int i = 0; i < 5; ++i) {
    auto op = wl->next(rng);
    ASSERT_TRUE(op.has_value());
    EXPECT_EQ(op->op, OpType::Create);
    EXPECT_EQ(op->dir_path, "/client3");
    EXPECT_EQ(op->name, "f" + std::to_string(i));
  }
  EXPECT_FALSE(wl->next(rng).has_value());
}

TEST(CreateHeavy, SharedDirNamesAreClientUnique) {
  Rng rng(1);
  auto a = make_shared_create_workload(0, "/shared", 2);
  auto b = make_shared_create_workload(1, "/shared", 2);
  a->next(rng);  // mkdir
  b->next(rng);  // mkdir
  const auto fa = a->next(rng);
  const auto fb = b->next(rng);
  ASSERT_TRUE(fa && fb);
  EXPECT_NE(fa->name, fb->name);
  EXPECT_EQ(fa->dir_path, "/shared");
  EXPECT_EQ(fb->dir_path, "/shared");
}

TEST(CreateHeavy, ThinkTimeIsPositiveAndSeeded) {
  Rng r1(9);
  Rng r2(9);
  CreateHeavyWorkload::Options opt;
  opt.think_mean = 500;
  CreateHeavyWorkload w1(opt);
  CreateHeavyWorkload w2(opt);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(w1.think_time(r1), w2.think_time(r2));
}

TEST(Compile, PhasesProgressInOrder) {
  Rng rng(1);
  CompileOptions opt;
  opt.root = "/c";
  opt.files_per_dir = 4;
  opt.compile_ops = 50;
  opt.read_ops = 20;
  opt.link_rounds = 1;
  CompileWorkload wl(opt);

  EXPECT_EQ(wl.phase(), CompileWorkload::Phase::Untar);
  std::size_t untar_ops = 0;
  std::size_t mkdirs = 0;
  while (wl.phase() == CompileWorkload::Phase::Untar) {
    auto op = wl.next(rng);
    ASSERT_TRUE(op.has_value());
    ++untar_ops;
    if (op->op == OpType::Mkdir) ++mkdirs;
    ASSERT_LT(untar_ops, 10000u);
  }
  // Root mkdir + one per tree directory.
  EXPECT_EQ(mkdirs, compile_tree_spec().size() + 1);

  std::size_t compile_ops = 0;
  while (wl.phase() == CompileWorkload::Phase::Compile) {
    auto op = wl.next(rng);
    ASSERT_TRUE(op.has_value());
    EXPECT_NE(op->op, OpType::Readdir);
    ++compile_ops;
  }
  EXPECT_EQ(compile_ops, opt.compile_ops);

  while (wl.phase() == CompileWorkload::Phase::Read) {
    auto op = wl.next(rng);
    ASSERT_TRUE(op.has_value());
    EXPECT_EQ(op->op, OpType::Getattr);
  }

  std::size_t readdirs = 0;
  while (wl.phase() == CompileWorkload::Phase::Link) {
    auto op = wl.next(rng);
    ASSERT_TRUE(op.has_value());
    EXPECT_EQ(op->op, OpType::Readdir);
    ++readdirs;
  }
  EXPECT_EQ(readdirs, compile_tree_spec().size() * opt.link_rounds);
  EXPECT_FALSE(wl.next(rng).has_value());
}

TEST(Compile, HotDirsDominateCompilePhase) {
  Rng rng(42);
  CompileOptions opt;
  opt.files_per_dir = 4;
  opt.compile_ops = 4000;
  opt.root = "/c";
  CompileWorkload wl(opt);
  // Drain untar.
  while (wl.phase() == CompileWorkload::Phase::Untar) wl.next(rng);
  std::map<std::string, int> dir_hits;
  while (wl.phase() == CompileWorkload::Phase::Compile) {
    auto op = wl.next(rng);
    ASSERT_TRUE(op.has_value());
    ++dir_hits[op->dir_path];
  }
  // arch+kernel+fs+mm should absorb well over half of the compile ops,
  // reproducing the Figure 1 hotspot structure.
  const int hot = dir_hits["/c/arch"] + dir_hits["/c/kernel"] +
                  dir_hits["/c/fs"] + dir_hits["/c/mm"];
  EXPECT_GT(hot, 4000 / 2);
}

TEST(Compile, TreeSpecWeightsArePlausible) {
  double total = 0.0;
  for (const auto& d : compile_tree_spec()) {
    EXPECT_GT(d.hot_weight, 0.0);
    EXPECT_GT(d.size_factor, 0.0);
    total += d.hot_weight;
  }
  EXPECT_NEAR(total, 1.0, 0.25);
}

TEST(Trace, RoundTripsThroughText) {
  std::vector<sim::WorkOp> ops = {
      {OpType::Mkdir, "/", "a"},
      {OpType::Create, "/a", "f1"},
      {OpType::Readdir, "/a", ""},
      {OpType::Unlink, "/a", "f1"},
  };
  const std::string text = format_trace(ops);
  const auto parsed = parse_trace(text);
  ASSERT_EQ(parsed.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(parsed[i].op, ops[i].op);
    EXPECT_EQ(parsed[i].dir_path, ops[i].dir_path);
    EXPECT_EQ(parsed[i].name, ops[i].name);
  }
}

TEST(Trace, ParseSkipsCommentsAndBlanks) {
  const auto ops = parse_trace("# header\n\ncreate /d f\n");
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].op, OpType::Create);
}

TEST(Trace, ParseRejectsGarbage) {
  EXPECT_THROW(parse_trace("fly /d x"), std::runtime_error);
  EXPECT_THROW(parse_trace("create"), std::runtime_error);
}

TEST(Trace, RecordAndReplayMatchOriginal) {
  Rng rng(5);
  auto wl = make_private_create_workload(0, 10);
  const auto ops = record_workload(*wl, rng);
  EXPECT_EQ(ops.size(), 11u);  // mkdir + 10 creates
  TraceWorkload replay(ops);
  Rng rng2(5);
  for (const auto& expected : ops) {
    auto got = replay.next(rng2);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->name, expected.name);
  }
  EXPECT_FALSE(replay.next(rng2).has_value());
}

}  // namespace
}  // namespace mantle::workloads
