#include <gtest/gtest.h>

#include <memory>

#include "balancers/builtin.hpp"
#include "chaos/invariant.hpp"
#include "sim/scenario.hpp"
#include "workloads/create_heavy.hpp"

/// Scale smoke: the full 512-rank configuration from the fig_scale sweep,
/// shortened, with the chaos invariant checker polled throughout. This is
/// the guard against "it runs fast but the cluster state is garbage" —
/// every dirfrag auth-unique, fragments tiling, heat conserved, at 32x the
/// rank count the rest of the suite exercises.

namespace mantle::chaos {
namespace {

TEST(ScaleSmoke, InvariantsHoldAt512Ranks) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 512;
  cfg.cluster.seed = 20260808;
  cfg.cluster.bal_interval = mantle::kSec;
  cfg.cluster.split_size = 400;
  cfg.max_time = 30 * mantle::kSec;
  sim::Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });

  // A couple of object clients plus mean-field populations, like the
  // fig_scale points: enough concurrent create flow to trigger splits and
  // migrations across many ranks within a short horizon.
  for (int c = 0; c < 2; ++c)
    s.add_client(workloads::make_private_create_workload(c, 60, 50));
  for (int p = 0; p < 4; ++p) {
    sim::PopulationConfig pc;
    pc.modeled_clients = 250'000;
    pc.sim_rate = 1500.0;
    pc.duration = 2 * mantle::kSec;
    pc.tick = 100 * mantle::kMsec;
    pc.create_frac = 0.7;
    for (int d = 0; d < 8; ++d)
      pc.dirs.push_back("/smoke" + std::to_string(p) + "/d" + std::to_string(d));
    s.add_population(pc);
  }

  InvariantChecker chk(s.cluster());
  s.add_probe(mantle::kSec, [&](mantle::Time now) { chk.check_tick(now); });
  s.run();
  chk.check_quiesce(s.engine().now());

  ASSERT_TRUE(chk.ok()) << chk.violations()[0].invariant << ": "
                        << chk.violations()[0].detail;
  EXPECT_GT(chk.checks(), 0u);
  for (int p = 2; p < 6; ++p) EXPECT_TRUE(s.population(p).done());
  // The run must actually have spread work: this smoke is worthless if
  // everything stayed on rank 0.
  EXPECT_GT(s.cluster().migrations().size(), 0u);
}

}  // namespace
}  // namespace mantle::chaos
