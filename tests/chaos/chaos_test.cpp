#include <gtest/gtest.h>

#include <string>

#include "chaos/chaos.hpp"

/// End-to-end properties of the chaos engine itself: schedule generation
/// is deterministic, a healthy HEAD survives a run, the seeded
/// stale-heartbeat bug is rediscovered when the guard is disabled, and
/// the shrinker reduces the offending schedule to a tiny reproducer.

namespace mantle::chaos {
namespace {

TEST(Chaos, ScheduleGenerationIsDeterministic) {
  const ChaosSchedule a = generate_schedule(42, 3, 5);
  const ChaosSchedule b = generate_schedule(42, 3, 5);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_TRUE(a.events[i] == b.events[i]) << "event " << i << " differs: "
                                            << a.events[i].str() << " vs "
                                            << b.events[i].str();
  }

  // Schedules are non-trivial and time-ordered so injection is a simple
  // forward walk.
  ASSERT_GE(a.events.size(), 1u);
  ASSERT_LE(a.events.size(), 5u);
  for (std::size_t i = 1; i < a.events.size(); ++i)
    EXPECT_LE(a.events[i - 1].at, a.events[i].at);

  // A different seed explores a different schedule.
  const ChaosSchedule c = generate_schedule(43, 3, 5);
  EXPECT_NE(a.str(), c.str());
}

TEST(Chaos, HeadSurvivesAFaultSchedule) {
  const ChaosSchedule sched = generate_schedule(42, 3, 5);
  const RunOutcome out = run_schedule(ScenarioKind::CreateHeavy, sched);
  EXPECT_FALSE(out.violated) << out.first.invariant << ": "
                             << out.first.detail;
  EXPECT_GT(out.checks, 0u);
  EXPECT_GT(out.faults_injected, 0u);
}

TEST(Chaos, SeededStaleHeartbeatBugIsFoundAndShrinks) {
  // With the stale-epoch guard reverted, the sweep that is clean at HEAD
  // finds an hb-regressed violation within a few schedules, and the
  // delta-debugger shrinks the offending schedule to a handful of events.
  ChaosConfig cfg;
  cfg.seed = 7;
  cfg.iters = 12;
  cfg.hb_stale_guard = false;
  cfg.max_violations = 1;
  const ChaosResult res = run_chaos(cfg);

  ASSERT_FALSE(res.ok());
  ASSERT_EQ(res.violations.size(), 1u);
  const ChaosViolation& v = res.violations[0];
  EXPECT_EQ(v.invariant, "hb-regressed");
  EXPECT_LE(v.shrunk.events.size(), 3u);
  EXPECT_GE(v.shrunk.events.size(), 1u);
  EXPECT_LE(v.shrunk.events.size(), v.original_events);

  // The reproducer names everything needed to replay the failure.
  const std::string repro = v.reproducer();
  EXPECT_NE(repro.find("seed="), std::string::npos);
  EXPECT_NE(repro.find("hb-regressed"), std::string::npos);
}

TEST(Chaos, SameSeedProducesByteIdenticalCorpus) {
  ChaosConfig cfg;
  cfg.seed = 7;
  cfg.iters = 12;
  cfg.hb_stale_guard = false;  // violations make the corpus non-trivial
  cfg.max_violations = 8;
  const ChaosResult a = run_chaos(cfg);
  const ChaosResult b = run_chaos(cfg);
  EXPECT_EQ(a.corpus(), b.corpus());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
}

TEST(Chaos, CleanRunReportsCounters) {
  ChaosConfig cfg;
  cfg.seed = 3;
  cfg.iters = 6;  // two schedules per scenario
  const ChaosResult res = run_chaos(cfg);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.schedules, 6u);
  EXPECT_EQ(res.violations.size(), 0u);
  EXPECT_GT(res.checks, 0u);
  EXPECT_EQ(res.shrink_runs, 0u);
}

}  // namespace
}  // namespace mantle::chaos
