#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/invariant.hpp"
#include "cluster/cluster.hpp"
#include "mds/namespace.hpp"
#include "obs/trace.hpp"

/// The invariant checker is the oracle of every chaos run: these tests
/// pin down that it stays silent on a healthy cluster and that each
/// deliberately corrupted property is called out by name.

namespace mantle::chaos {
namespace {

using cluster::ClusterConfig;
using cluster::MdsCluster;
using cluster::OpType;
using cluster::Reply;
using cluster::Request;
using mantle::mds::DirFragId;
using mantle::mds::frag_t;
using mantle::mds::InodeId;

struct Harness {
  sim::Engine engine;
  MdsCluster cluster;
  std::vector<Reply> replies;

  explicit Harness(int num_mds, ClusterConfig cfg = {})
      : cluster(engine, [&] {
          cfg.num_mds = num_mds;
          return cfg;
        }()) {
    cluster.set_reply_handler([this](const Reply& r) { replies.push_back(r); });
  }

  Reply do_op(OpType op, InodeId dir, const std::string& name) {
    static std::uint64_t next_id = 1;
    Request r;
    r.id = next_id++;
    r.client = 0;
    r.op = op;
    r.dir = dir;
    r.name = name;
    r.issued_at = engine.now();
    cluster.client_submit(std::move(r), 0);
    engine.run();
    return replies.back();
  }

  /// Build a little namespace so the cover/heat walks have work to do.
  InodeId populate() {
    const Reply mk = do_op(OpType::Mkdir, cluster.ns().root(), "d");
    EXPECT_TRUE(mk.ok);
    for (int i = 0; i < 8; ++i)
      EXPECT_TRUE(
          do_op(OpType::Create, mk.result_ino, "f" + std::to_string(i)).ok);
    return mk.result_ino;
  }
};

bool has_violation(const InvariantChecker& chk, const std::string& name) {
  for (const auto& v : chk.violations())
    if (v.invariant == name) return true;
  return false;
}

TEST(Invariant, HealthyClusterPassesTickAndQuiesce) {
  Harness h(3);
  h.populate();
  InvariantChecker chk(h.cluster);
  chk.check_tick(h.engine.now());
  chk.check_quiesce(h.engine.now());
  EXPECT_TRUE(chk.ok()) << chk.violations()[0].invariant << ": "
                        << chk.violations()[0].detail;
  EXPECT_GT(chk.checks(), 0u);
}

TEST(Invariant, AuthAnnotationDisagreeingWithSubtreeMapIsCaught) {
  Harness h(3);
  const InodeId d = h.populate();
  // The subtree map says rank 0 owns everything; flip one frag's auth
  // annotation behind the cluster's back.
  h.cluster.ns().frag({d, frag_t()})->auth = 2;

  InvariantChecker chk(h.cluster);
  chk.check_tick(h.engine.now());
  EXPECT_FALSE(chk.ok());
  EXPECT_TRUE(has_violation(chk, "auth-mismatch"));

  // The breakage is mirrored into the trace for timeline reconstruction.
  bool traced = false;
  for (const auto& e : h.cluster.trace().snapshot())
    traced |= e.kind == obs::EventKind::InvariantViolation;
  EXPECT_TRUE(traced);
}

TEST(Invariant, MintedHeatIsCaught) {
  Harness h(3);
  const InodeId d = h.populate();
  // Hitting a fragment's own popularity without the ancestor walk mints
  // heat that no parent ever accumulated.
  h.cluster.ns().frag({d, frag_t()})->pop.hit(
      mds::MetaOp::FETCH, h.engine.now(), h.cluster.ns().decay_rate());

  InvariantChecker chk(h.cluster);
  chk.check_tick(h.engine.now());
  EXPECT_TRUE(has_violation(chk, "heat-not-conserved"));
}

TEST(Invariant, HeartbeatRegressionIsCaughtWhenGuardIsOff) {
  ClusterConfig cfg;
  cfg.hb_stale_guard = false;
  Harness h(3, cfg);

  // Rank 0 really does crash and come back, so epoch 1 payloads are
  // legitimate (feeding a made-up epoch would trip hb-epoch-future).
  ASSERT_TRUE(h.cluster.crash_mds(0));
  ASSERT_TRUE(h.cluster.restart_mds(0));
  h.engine.run();

  cluster::HeartbeatPayload hb;
  hb.rank = 0;
  hb.epoch = 1;
  hb.sent_at = h.engine.now();
  h.cluster.node(1).on_heartbeat(hb);

  InvariantChecker chk(h.cluster);
  chk.check_tick(h.engine.now());
  ASSERT_TRUE(chk.ok()) << chk.violations()[0].invariant << ": "
                        << chk.violations()[0].detail;

  hb.epoch = 0;  // a delayed pre-crash payload lands and regresses state
  hb.sent_at = h.engine.now() / 2;
  h.cluster.node(1).on_heartbeat(hb);
  chk.check_tick(h.engine.now());
  EXPECT_TRUE(has_violation(chk, "hb-regressed"));
}

TEST(Invariant, GuardPreventsHeartbeatRegression) {
  Harness h(3);  // hb_stale_guard defaults on
  ASSERT_TRUE(h.cluster.crash_mds(0));
  ASSERT_TRUE(h.cluster.restart_mds(0));
  h.engine.run();

  cluster::HeartbeatPayload hb;
  hb.rank = 0;
  hb.epoch = 1;
  hb.sent_at = h.engine.now();
  h.cluster.node(1).on_heartbeat(hb);
  hb.epoch = 0;
  hb.sent_at = h.engine.now() / 2;
  h.cluster.node(1).on_heartbeat(hb);  // rejected by the guard

  InvariantChecker chk(h.cluster);
  chk.check_tick(h.engine.now());
  EXPECT_TRUE(chk.ok()) << chk.violations()[0].invariant << ": "
                        << chk.violations()[0].detail;
}

TEST(Invariant, QuiesceRequiresEveryRankUp) {
  Harness h(3);
  h.populate();
  ASSERT_TRUE(h.cluster.crash_mds(1));
  h.engine.run();

  InvariantChecker chk(h.cluster);
  chk.check_quiesce(h.engine.now());
  EXPECT_TRUE(has_violation(chk, "quiesce-rank-down"));
}

}  // namespace
}  // namespace mantle::chaos
