#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/mantle.hpp"
#include "obs/provenance.hpp"
#include "safety/whatif.hpp"
#include "sim/scenario.hpp"
#include "workloads/create_heavy.hpp"

/// What-if replay: the recorded hook inputs of a real run fed back
/// through a candidate policy. The identity property (same policy =>
/// zero diffs) is the correctness anchor — it proves the replay
/// reconstructs the exact view the live balancer saw; divergent
/// candidates must diff deterministically.

namespace mantle::safety {
namespace {

std::vector<obs::DecisionRecord> record_run(std::uint64_t seed) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 3;
  cfg.cluster.seed = seed;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.split_size = 300;
  cfg.max_time = 2 * kMinute;
  sim::Scenario s(cfg);
  s.cluster().set_balancer_all([](int) {
    return std::make_unique<core::MantleBalancer>(core::scripts::original());
  });
  for (int c = 0; c < 3; ++c)
    s.add_client(workloads::make_shared_create_workload(
        c, "/shared", /*files=*/4000, /*think=*/200));
  s.run();
  return s.cluster().provenance().snapshot();
}

TEST(Whatif, IdenticalPolicyReplaysWithZeroDiffs) {
  const auto records = record_run(7);
  ASSERT_FALSE(records.empty());
  const WhatifResult res = whatif_replay(records, core::scripts::original());
  EXPECT_EQ(res.decisions, records.size());
  EXPECT_EQ(res.replayed, records.size());
  EXPECT_EQ(res.skipped_truncated, 0u);
  EXPECT_EQ(res.diff_count(), 0u) << res.to_table();
  EXPECT_TRUE(res.diffs.empty());
}

TEST(Whatif, IdentityHoldsThroughTheDumpFormat) {
  // The CLI path parses a dump instead of consuming live records; the
  // %.17g round-trip must preserve exact equality of the replay.
  const auto records = record_run(7);
  obs::ProvenanceRecorder rec(records.size());
  for (const auto& r : records) ASSERT_TRUE(rec.record(r));
  const auto parsed = obs::parse_provenance_json(rec.to_json());
  ASSERT_EQ(parsed.size(), records.size());
  const WhatifResult res = whatif_replay(parsed, core::scripts::original());
  EXPECT_EQ(res.diff_count(), 0u) << res.to_table();
}

TEST(Whatif, DivergentPolicyDiffsDeterministically) {
  // A hand-built decision where the recorded balancer held but a
  // greedy-spill candidate (when: my load > .01 and the idle right
  // neighbour's load < .01) clearly fires: the diff must be non-empty
  // and byte-stable across replays.
  obs::DecisionRecord rec;
  rec.at = 10 * kSec;
  rec.rank = 0;
  rec.span = 5;
  rec.policy = "mantle";
  rec.min_load = 0.01;
  rec.mdss = {{50.0, 60.0, 90.0, 10.0, 4.0, 500.0},
              {0.0, 0.0, 5.0, 1.0, 0.0, 10.0}};
  rec.loads = {60.0, 1.0};
  rec.alive = {1, 1};
  rec.total_load = 61.0;
  rec.go = false;  // the recorded policy decided to hold
  rec.digest = obs::input_digest(rec);

  const std::vector<obs::DecisionRecord> records{rec};
  const WhatifResult a =
      whatif_replay(records, core::scripts::greedy_spill());
  EXPECT_GT(a.diff_count(), 0u);
  EXPECT_EQ(a.go_flips, 1u);
  ASSERT_EQ(a.diffs.size(), 1u);
  EXPECT_EQ(a.diffs[0].field, "go");
  EXPECT_EQ(a.diffs[0].recorded, "hold");
  EXPECT_EQ(a.diffs[0].replayed, "go");
  EXPECT_EQ(a.diffs[0].digest, rec.digest);

  const WhatifResult b =
      whatif_replay(records, core::scripts::greedy_spill());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_table(), b.to_table());
}

TEST(Whatif, TruncatedRecordsAreSkippedNotReplayed) {
  obs::DecisionRecord rec;
  rec.at = kSec;
  rec.rank = 0;
  rec.min_load = 0.01;
  rec.total_load = 5.0;
  rec.truncated = true;  // per-rank tables elided at capture time
  const WhatifResult res =
      whatif_replay({rec}, core::scripts::original());
  EXPECT_EQ(res.decisions, 1u);
  EXPECT_EQ(res.replayed, 0u);
  EXPECT_EQ(res.skipped_truncated, 1u);
  EXPECT_EQ(res.diff_count(), 0u);
}

TEST(Whatif, JsonAndTableAreWellFormed) {
  const WhatifResult empty =
      whatif_replay({}, core::scripts::original());
  EXPECT_EQ(empty.to_json(),
            "{\"summary\":{\"decisions\":0,\"diff_count\":0,\"go_flips\":0,"
            "\"hook_errors\":0,\"replayed\":0,\"selector_diffs\":0,"
            "\"skipped_truncated\":0,\"target_diffs\":0},\"diffs\":[]}");
  EXPECT_NE(empty.to_table().find("0 decision(s)"), std::string::npos);
}

}  // namespace
}  // namespace mantle::safety
