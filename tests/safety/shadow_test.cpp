#include "safety/shadow.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mantle::safety {
namespace {

using obs::EventKind;
using obs::TraceEvent;

/// A synthetic recording of a hotspot run: rank 0's load grows by 10 per
/// tick while ranks 1..n-1 idle, and every rank runs one balancer tick
/// per interval. This is the healthy-workload shape every reasonable
/// policy must survive: the growth is organic (monotone heartbeats, no
/// recorded migrations), so any oscillation on the shadow timeline is
/// the candidate's own doing.
std::vector<TraceEvent> hotspot_trace(int ticks = 20, int nranks = 3) {
  obs::TraceSink sink;
  double hot = 0.0;
  for (int k = 0; k < ticks; ++k) {
    const Time t = static_cast<Time>(k + 1) * 1'000'000;
    hot += 10.0;
    sink.event(t, EventKind::HeartbeatSent, 0, -1, {},
               {{"load", hot}, {"cpu", 35.0}});
    for (int r = 1; r < nranks; ++r)
      sink.event(t, EventKind::HeartbeatSent, r, -1, {},
                 {{"load", 0.0}, {"cpu", 5.0}});
    for (int r = 0; r < nranks; ++r)
      sink.event(t + 1000, EventKind::WhenDecision, r, -1, {},
                 {{"go", 0.0}});
  }
  return sink.snapshot();
}

core::MantlePolicy ping_pong_policy() {
  core::MantlePolicy p;
  p.mdsload = "MDSs[i][\"all\"]";
  p.when = "return true";
  p.where =
      "for j = 1, #MDSs do targets[j] = 0 end\n"
      "local peer = whoami == 1 and 2 or 1\n"
      "targets[peer] = MDSs[whoami][\"all\"] + 10\n";
  p.howmuch = "{\"big_first\"}";
  return p;
}

core::MantlePolicy thrash_policy() {
  core::MantlePolicy p;
  p.mdsload = "MDSs[i][\"all\"]";
  p.when = "return true";  // go every tick...
  p.where = "for j = 1, #MDSs do targets[j] = 0 end";  // ...ship nothing
  p.howmuch = "{\"big_first\"}";
  return p;
}

TEST(ShadowTest, PaperPoliciesAccepted) {
  const std::vector<TraceEvent> rec = hotspot_trace();
  for (const char* name :
       {"original", "greedy", "greedy_even", "fill_spill", "adaptable"}) {
    core::MantlePolicy p;
    ASSERT_EQ(load_policy(name, p), "") << name;
    const ShadowVerdict v = shadow_evaluate(rec, p);
    EXPECT_TRUE(v.accepted) << name << ": " << v.reason;
    EXPECT_EQ(v.ticks_replayed, 60u) << name;  // 20 intervals x 3 ranks
    EXPECT_EQ(v.num_ranks, 3) << name;
  }
}

TEST(ShadowTest, PingPongPolicyRejected) {
  const ShadowVerdict v = shadow_evaluate(hotspot_trace(), ping_pong_policy());
  EXPECT_FALSE(v.accepted);
  EXPECT_NE(v.reason.find("ping-pong"), std::string::npos) << v.reason;
  EXPECT_GE(v.report.count("ping-pong"), 1u);
}

TEST(ShadowTest, ThrashPolicyRejected) {
  const ShadowVerdict v = shadow_evaluate(hotspot_trace(), thrash_policy());
  EXPECT_FALSE(v.accepted);
  EXPECT_NE(v.reason.find("thrash"), std::string::npos) << v.reason;
}

TEST(ShadowTest, InputDependentLoopRejectedOnBudget) {
  // Loops unconditionally once replayed — the budget backstop must
  // convert that into a rejection rather than a hang.
  core::MantlePolicy p;
  p.when = "while total > -1 do end\nreturn false";
  ShadowConfig cfg;
  cfg.budget = 1 << 12;  // keep the test fast
  const ShadowVerdict v = shadow_evaluate(hotspot_trace(), p, cfg);
  EXPECT_FALSE(v.accepted);
  EXPECT_NE(v.reason.find("budget"), std::string::npos) << v.reason;
  EXPECT_GT(v.budget_exhaustions, 0u);
}

TEST(ShadowTest, EmptyRecordingRejected) {
  core::MantlePolicy p;
  ASSERT_EQ(load_policy("original", p), "");
  const ShadowVerdict v = shadow_evaluate({}, p);
  EXPECT_FALSE(v.accepted);
  EXPECT_NE(v.reason.find("no balancer ticks"), std::string::npos) << v.reason;
}

TEST(ShadowTest, VerdictJsonDeterministic) {
  const std::vector<TraceEvent> rec = hotspot_trace();
  const ShadowVerdict a = shadow_evaluate(rec, ping_pong_policy());
  const ShadowVerdict b = shadow_evaluate(rec, ping_pong_policy());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_json().rfind("{\"accepted\":", 0), 0u);
}

TEST(ShadowTest, GateComposesValidationAndReplay) {
  const std::vector<TraceEvent> rec = hotspot_trace();

  core::MantlePolicy good;
  ASSERT_EQ(load_policy("greedy", good), "");
  EXPECT_EQ(gate_injection(rec, good), "");

  // Unconditional infinite loop: caught by stage 1 (validate_policy),
  // never reaches the replay.
  core::MantlePolicy loop;
  loop.when = "while 1 do end";
  const std::string err = gate_injection(rec, loop);
  EXPECT_NE(err.find("validation failed"), std::string::npos) << err;

  // Well-formed but harmful: passes validation, rejected by the replay.
  const std::string harm = gate_injection(rec, ping_pong_policy());
  EXPECT_NE(harm.find("shadow evaluation rejected"), std::string::npos)
      << harm;
}

TEST(ShadowTest, MetricsAndVerdictEventEmitted) {
  obs::MetricsRegistry metrics;
  obs::TraceSink verdicts;
  const std::vector<TraceEvent> rec = hotspot_trace();

  core::MantlePolicy good;
  ASSERT_EQ(load_policy("original", good), "");
  shadow_evaluate(rec, good, {}, &metrics, &verdicts);
  shadow_evaluate(rec, ping_pong_policy(), {}, &metrics, &verdicts);

  EXPECT_EQ(metrics.counter("mantle_shadow_evaluations_total").value(), 2u);
  EXPECT_EQ(metrics.counter("mantle_shadow_rejections_total").value(), 1u);

  const std::vector<TraceEvent> evs = verdicts.snapshot();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].kind, EventKind::ShadowVerdict);
  EXPECT_EQ(evs[0].detail, "accepted");
  EXPECT_EQ(evs[1].detail, "rejected");
}

TEST(ShadowTest, LoadPolicyParsesSectionFiles) {
  const std::string path = testing::TempDir() + "/shadow_test.policy";
  {
    std::ofstream out(path);
    out << "-- comment before the first section is fine\n"
        << "[metaload]\nIRD + IWR\n"
        << "[when]\nreturn true\n"
        << "[where]\ntargets[1] = 0\n";
  }
  core::MantlePolicy p;
  ASSERT_EQ(load_policy(path, p), "");
  EXPECT_EQ(p.metaload, "IRD + IWR\n");
  EXPECT_EQ(p.when, "return true\n");
  EXPECT_EQ(p.where, "targets[1] = 0\n");
  EXPECT_TRUE(p.mdsload.empty());

  {
    std::ofstream out(path);
    out << "[bogus]\nx\n";
  }
  EXPECT_NE(load_policy(path, p).find("unknown policy section"),
            std::string::npos);

  {
    std::ofstream out(path);
    out << "just some text, no section\n";
  }
  EXPECT_NE(load_policy(path, p).find("must start with a [hook] section"),
            std::string::npos);

  EXPECT_NE(load_policy("/nonexistent/policy/file", p)
                .find("cannot open policy file"),
            std::string::npos);
}

}  // namespace
}  // namespace mantle::safety
