#include "safety/fuzz.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "balancers/builtin.hpp"
#include "cluster/balancer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mantle::safety {
namespace {

TEST(FuzzTest, FixedSeedRunsClean) {
  // The acceptance gate: a healthy build survives hostile inputs. The CI
  // job runs the full 10k; here a denser-than-quick slice keeps the test
  // under the ctest timeout while still covering every level many times.
  FuzzConfig cfg;
  cfg.seed = 1;
  cfg.iters = 2400;
  const FuzzResult r = run_fuzz(cfg);
  EXPECT_EQ(r.iterations, 2400u);
  EXPECT_GT(r.checks, r.iterations);  // several invariants per case
  EXPECT_TRUE(r.ok()) << r.corpus();
}

TEST(FuzzTest, SameSeedSameCorpus) {
  // Determinism is what makes a fuzz failure actionable: the reported
  // corpus must be byte-identical across runs of the same config.
  FuzzConfig cfg;
  cfg.seed = 42;
  cfg.iters = 900;
  const FuzzResult a = run_fuzz(cfg);
  const FuzzResult b = run_fuzz(cfg);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.corpus(), b.corpus());
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(FuzzTest, DifferentSeedsDiverge) {
  FuzzConfig a;
  a.seed = 2;
  a.iters = 300;
  FuzzConfig b = a;
  b.seed = 3;
  // Same case count, different cases: the checks tally is input-shaped
  // (e.g. how many ranks each view carries), so a seed change moves it.
  EXPECT_NE(run_fuzz(a).checks, run_fuzz(b).checks);
}

TEST(FuzzTest, MetricsCounted) {
  obs::MetricsRegistry metrics;
  FuzzConfig cfg;
  cfg.seed = 7;
  cfg.iters = 120;
  const FuzzResult r = run_fuzz(cfg, &metrics);
  EXPECT_EQ(metrics.counter("mantle_fuzz_iterations_total").value(), 120u);
  EXPECT_EQ(metrics.counter("mantle_fuzz_crashes_total").value(),
            r.failures.size());
}

// Regression: fuzzing found (seed 1, level "view") that summing many
// near-DBL_MAX loads overflows total_load to +inf, turning the per-rank
// deficit into an infinite export goal. where() must fail toward "export
// nothing" on a non-finite mean instead.
TEST(FuzzTest, RegressionOverflowedTotalLoadYieldsFiniteTargets) {
  cluster::ClusterView view;
  const std::size_t n = 111;
  view.whoami = 0;
  view.mdss.resize(n);
  view.loads.assign(n, 1e307);
  view.loads[0] = 1e308;  // the "overloaded" self
  view.total_load = 0.0;
  for (double l : view.loads) view.total_load += l;  // -> +inf
  ASSERT_TRUE(std::isinf(view.total_load));

  balancers::AdaptableBalancer adaptable;
  for (const double t : adaptable.where(view)) {
    EXPECT_TRUE(std::isfinite(t));
    EXPECT_GE(t, 0.0);
  }
  balancers::HashBalancer hash;
  for (const double t : hash.where(view)) {
    EXPECT_TRUE(std::isfinite(t));
    EXPECT_GE(t, 0.0);
  }
}

// Regression companion: a NaN mean (NaN load leaking into total_load)
// must also fail toward "export nothing" in the original policy's twin.
TEST(FuzzTest, RegressionNanTotalLoadExportsNothing) {
  cluster::ClusterView view;
  view.whoami = 0;
  view.mdss.resize(3);
  view.loads = {100.0, 0.0, 0.0};
  view.total_load = std::nan("");

  balancers::OriginalBalancer original;
  for (const double t : original.where(view)) EXPECT_EQ(t, 0.0);
}

}  // namespace
}  // namespace mantle::safety
