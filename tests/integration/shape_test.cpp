#include <gtest/gtest.h>

#include "balancers/builtin.hpp"
#include "core/mantle.hpp"
#include "sim/scenario.hpp"
#include "workloads/compile.hpp"
#include "workloads/create_heavy.hpp"

/// Shape-regression suite: the paper's qualitative results, pinned as
/// assertions on small-but-sufficient runs. If a refactor of the cost
/// model or the balancing mechanics breaks a reproduced crossover, these
/// fail long before anyone re-reads EXPERIMENTS.md.

namespace mantle {
namespace {

struct RunOut {
  double runtime_s = 0.0;
  double throughput = 0.0;
  double mean_lat_ms = 0.0;
  std::uint64_t migrations = 0;
  std::uint64_t forwards = 0;
  std::vector<std::uint64_t> per_mds;
};

RunOut run_shared_create(int num_mds, cluster::MdsCluster::BalancerFactory f,
                         std::size_t files = 8000, std::uint64_t seed = 11) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = num_mds;
  cfg.cluster.seed = seed;
  cfg.cluster.split_size = 2500;
  cfg.cluster.bal_interval = kSec;
  sim::Scenario s(cfg);
  if (f) s.cluster().set_balancer_all(f);
  for (int c = 0; c < 4; ++c)
    s.add_client(workloads::make_shared_create_workload(c, "/shared", files, 100));
  s.run();
  RunOut out;
  out.runtime_s = to_seconds(s.makespan());
  out.throughput = s.aggregate_throughput();
  out.mean_lat_ms = s.pooled_latencies_ms().mean();
  out.migrations = s.cluster().migrations().size();
  out.forwards = s.cluster().total_forwards();
  for (int m = 0; m < num_mds; ++m)
    out.per_mds.push_back(s.cluster().node(m).stats().completed);
  return out;
}

cluster::MdsCluster::BalancerFactory lua(core::MantlePolicy (*p)()) {
  return [p](int) { return std::make_unique<core::MantleBalancer>(p()); };
}

// -- Figure 5 shape ----------------------------------------------------------

TEST(Shape, SingleMdsSaturatesAndLatencyClimbs) {
  auto run_n = [](int clients) {
    sim::ScenarioConfig cfg;
    cfg.cluster.num_mds = 1;
    sim::Scenario s(cfg);
    for (int c = 0; c < clients; ++c)
      s.add_client(workloads::make_private_create_workload(c, 4000, 350));
    s.run();
    return std::pair<double, double>{s.aggregate_throughput(),
                                     s.pooled_latencies_ms().mean()};
  };
  const auto [t1, l1] = run_n(1);
  const auto [t4, l4] = run_n(4);
  const auto [t7, l7] = run_n(7);
  // Near-linear to 4 clients...
  EXPECT_GT(t4, 3.3 * t1);
  // ...then saturation: 7 clients deliver far less than 7/4 of 4 clients.
  EXPECT_LT(t7, 1.45 * t4);
  // Latency rises monotonically with offered load.
  EXPECT_GT(l4, l1);
  EXPECT_GT(l7, l4 * 1.3);
}

// -- Figure 7/8 shapes ---------------------------------------------------------

TEST(Shape, GreedySpillTwoMdsBeatsFourMds) {
  const RunOut base = run_shared_create(1, nullptr);
  const RunOut two = run_shared_create(2, lua(core::scripts::greedy_spill));
  const RunOut four = run_shared_create(4, lua(core::scripts::greedy_spill));
  // Spilling to 2 is no worse than ~2% vs baseline; spreading the same
  // directory over 4 is clearly worse than 2 (the Figure 8 crossover).
  EXPECT_LT(two.runtime_s, base.runtime_s * 1.02);
  EXPECT_GT(four.runtime_s, two.runtime_s * 1.03);
}

TEST(Shape, GreedySpillChainIsUneven) {
  const RunOut four = run_shared_create(4, lua(core::scripts::greedy_spill));
  // Every MDS got work, in a decreasing chain from rank 0.
  ASSERT_EQ(four.per_mds.size(), 4u);
  EXPECT_GT(four.per_mds[0], four.per_mds[3]);
  EXPECT_GT(four.per_mds[1] + four.per_mds[2], four.per_mds[3]);
}

TEST(Shape, FillSpillUsesSubsetOfNodes) {
  const RunOut four = run_shared_create(
      4, lua(+[] { return core::scripts::fill_and_spill(48.0, 0.25); }));
  ASSERT_EQ(four.per_mds.size(), 4u);
  // At least one MDS stays (almost) unused — the paper's "only uses a
  // subset of the MDS nodes".
  std::uint64_t least = four.per_mds[0];
  for (const auto c : four.per_mds) least = std::min(least, c);
  const std::uint64_t total = 4 * 8000 + 4;
  EXPECT_LT(least, total / 20);
}

TEST(Shape, FillSpill25BeatsFillSpill10) {
  const RunOut s25 = run_shared_create(
      2, lua(+[] { return core::scripts::fill_and_spill(48.0, 0.25); }));
  const RunOut s10 = run_shared_create(
      2, lua(+[] { return core::scripts::fill_and_spill(48.0, 0.10); }));
  EXPECT_LE(s25.runtime_s, s10.runtime_s * 1.01);
}

// -- Figure 10 shape ---------------------------------------------------------

TEST(Shape, TooAggressiveChurnsMoreThanAdaptable) {
  auto run_compile = [](cluster::MdsCluster::BalancerFactory f) {
    sim::ScenarioConfig cfg;
    cfg.cluster.num_mds = 5;
    cfg.cluster.seed = 31;
    cfg.cluster.bal_interval = kSec;
    sim::Scenario s(cfg);
    s.cluster().set_balancer_all(std::move(f));
    for (int c = 0; c < 5; ++c) {
      workloads::CompileOptions o;
      o.root = "/client" + std::to_string(c);
      o.files_per_dir = 15;
      o.compile_ops = 2000;
      o.read_ops = 400;
      o.link_rounds = 4;
      s.add_client(std::make_unique<workloads::CompileWorkload>(o));
    }
    s.run();
    return std::pair<std::size_t, std::uint64_t>{
        s.cluster().migrations().size(), s.cluster().total_forwards()};
  };
  const auto [mig_adapt, fwd_adapt] = run_compile(lua(core::scripts::adaptable));
  const auto [mig_aggr, fwd_aggr] = run_compile([](int) {
    balancers::AdaptableBalancer::Options o;
    o.mode = balancers::AdaptableBalancer::Mode::kTooAggressive;
    return std::make_unique<balancers::AdaptableBalancer>(o);
  });
  EXPECT_GT(mig_aggr, mig_adapt * 2) << "too-aggressive must thrash";
  EXPECT_GT(fwd_aggr, fwd_adapt);
}

// -- Locality shape (Figure 3) ---------------------------------------------------

TEST(Shape, ScatteringHotDirectoriesCausesForwards) {
  // Manually scatter a tree's dirfrags across 3 MDS and compare forwards
  // against whole-subtree placement, as fig03_locality does at full size.
  auto run_spread = [](bool scatter) {
    sim::ScenarioConfig cfg;
    cfg.cluster.num_mds = 3;
    sim::Scenario s(cfg);
    workloads::CompileOptions opt;
    opt.root = "/client0";
    opt.files_per_dir = 15;
    opt.compile_ops = 2000;
    opt.read_ops = 300;
    opt.link_rounds = 2;
    auto wl = std::make_unique<workloads::CompileWorkload>(opt);
    auto* raw = wl.get();
    s.add_client(std::move(wl));
    bool placed = false;
    s.add_probe(200 * kMsec, [&, raw, scatter](Time now) {
      if (placed || raw->phase() == workloads::CompileWorkload::Phase::Untar)
        return;
      placed = true;
      int rr = 0;
      for (const auto& d : workloads::compile_tree_spec()) {
        const auto res = s.cluster().ns().resolve(std::string("/client0/") + d.name);
        if (!res.found) continue;
        if (!scatter) {
          const int t = rr++ % 3;
          if (t != 0) s.cluster().export_subtree({res.ino, mds::frag_t()}, t);
        } else {
          const auto kids = s.cluster().ns().split({res.ino, mds::frag_t()}, 2, now);
          for (const mds::frag_t k : kids) {
            const int t = rr++ % 3;
            if (t != s.cluster().auth_of({res.ino, k}))
              s.cluster().export_subtree({res.ino, k}, t);
          }
        }
      }
    });
    s.run();
    return s.cluster().total_forwards();
  };
  const auto fwd_whole = run_spread(false);
  const auto fwd_scatter = run_spread(true);
  EXPECT_GT(fwd_scatter, fwd_whole * 3 + 10);
}

// -- Determinism --------------------------------------------------------------

TEST(Shape, WholeScenarioIsSeedDeterministic) {
  const RunOut a = run_shared_create(3, lua(core::scripts::greedy_spill), 4000, 9);
  const RunOut b = run_shared_create(3, lua(core::scripts::greedy_spill), 4000, 9);
  EXPECT_EQ(a.runtime_s, b.runtime_s);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.forwards, b.forwards);
  EXPECT_EQ(a.per_mds, b.per_mds);
}

}  // namespace
}  // namespace mantle
