/// Figure 9 — "For the compile workload, 3 clients do not overload the
/// MDS nodes so distribution is only a penalty. The speedup for
/// distributing metadata with 5 clients suggests that an MDS with 3
/// clients is slightly overloaded."
///
/// N clients each compile their own source tree; the Adaptable balancer
/// (Listing 4, via Mantle) decides when to distribute. Reported: runtime
/// and speedup vs 1 MDS for 3 and 5 clients across 1..5 MDS nodes.

#include "harness.hpp"

using namespace mantle;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);

  auto run_config = [&](int clients, int num_mds) {
    sim::ScenarioConfig cfg;
    cfg.cluster.num_mds = num_mds;
    cfg.cluster.seed = 21;
    cfg.cluster.bal_interval = quick ? kSec : 4 * kSec;
    sim::Scenario s(cfg);
    if (num_mds > 1) {
      s.cluster().set_balancer_all([](int) {
        return std::make_unique<core::MantleBalancer>(core::scripts::adaptable());
      });
    }
    workloads::CompileOptions opt;
    opt.files_per_dir = quick ? 15 : 40;
    opt.compile_ops = quick ? 2500 : 12000;
    opt.read_ops = quick ? 500 : 2500;
    opt.link_rounds = quick ? 4 : 8;
    for (int c = 0; c < clients; ++c) {
      workloads::CompileOptions o = opt;
      o.root = "/client" + std::to_string(c);
      s.add_client(std::make_unique<workloads::CompileWorkload>(o));
    }
    s.run();
    bench::dump_observability("fig09_compile_speedup", cfg.cluster.seed, s);
    struct Out {
      double runtime;
      std::uint64_t migrations;
      std::uint64_t forwards;
    };
    return Out{to_seconds(s.makespan()), s.cluster().migrations().size(),
               s.cluster().total_forwards()};
  };

  std::printf("# Figure 9: compile workload, Adaptable balancer (Listing 4, Lua)\n");
  std::printf("%8s %5s %12s %10s %8s %10s\n", "clients", "MDS", "runtime(s)",
              "speedup", "migs", "forwards");
  for (const int clients : {3, 5}) {
    double base = 0.0;
    for (int num_mds = 1; num_mds <= 5; ++num_mds) {
      const auto out = run_config(clients, num_mds);
      if (num_mds == 1) base = out.runtime;
      const double speedup = (base / out.runtime - 1.0) * 100.0;
      std::printf("%8d %5d %12.1f %+9.1f%% %8llu %10llu\n", clients, num_mds,
                  out.runtime, speedup,
                  static_cast<unsigned long long>(out.migrations),
                  static_cast<unsigned long long>(out.forwards));
    }
  }
  std::printf(
      "\n# paper shape: with 3 clients every multi-MDS setup is a penalty;\n"
      "# with 5 clients distribution pays off and 3 MDS nodes are as\n"
      "# efficient as 4 or 5 (the balancer stops migrating once no single\n"
      "# MDS holds the majority of the load)\n");
  return 0;
}
