/// Ablation — dirfrag selector set (DESIGN.md §5.3, paper §3.2).
///
/// The original balancer is "limited to one heuristic (biggest first)";
/// Mantle runs a list of selectors and keeps whichever lands closest to
/// the target load. This harness measures the shipping error of
/// big_first alone vs the full selector list over many randomized
/// candidate sets, plus the paper's concrete §2.2.3 instance.

#include <cinttypes>

#include "harness.hpp"

using namespace mantle;

namespace {

std::vector<cluster::ExportCandidate> random_candidates(Rng& rng, int n) {
  std::vector<cluster::ExportCandidate> out;
  for (int i = 0; i < n; ++i) {
    cluster::ExportCandidate c;
    c.frag = {static_cast<mds::InodeId>(i + 2), {}};
    c.load = rng.uniform_real(5.0, 20.0);
    c.entries = 10;
    out.push_back(c);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.load > b.load; });
  return out;
}

}  // namespace

int main() {
  std::printf("# Ablation: dirfrag selector strategies\n");
  const std::vector<std::string> full = {"big_first", "small_first",
                                         "big_small", "half"};
  const std::vector<std::string> big_only = {"big_first"};

  Rng rng(99);
  for (const int n : {4, 8, 16, 64}) {
    OnlineStats err_big;
    OnlineStats err_full;
    OnlineStats err_big_scaled;  // with the 0.8 need_min fudge
    for (int trial = 0; trial < 2000; ++trial) {
      const auto cands = random_candidates(rng, n);
      double total = 0.0;
      for (const auto& c : cands) total += c.load;
      const double target = total / 2.0;

      const auto b = cluster::best_selection(big_only, cands, target);
      err_big.add(std::fabs(cluster::selection_load(cands, b) - target) / target);
      const auto bs = cluster::best_selection(big_only, cands, target * 0.8);
      err_big_scaled.add(std::fabs(cluster::selection_load(cands, bs) - target) / target);
      const auto f = cluster::best_selection(full, cands, target);
      err_full.add(std::fabs(cluster::selection_load(cands, f) - target) / target);
    }
    std::printf(
        "n=%-3d  mean relative shipping error: big_first %.3f | big_first"
        " x0.8 target %.3f | full selector list %.3f\n",
        n, err_big.mean(), err_big_scaled.mean(), err_full.mean());
  }

  std::printf("\n# the paper's exact instance (dirfrag loads of section 2.2.3):\n");
  std::vector<double> loads{12.7, 13.3, 13.3, 14.6, 15.7, 13.5, 13.7, 14.6};
  std::sort(loads.rbegin(), loads.rend());
  std::vector<cluster::ExportCandidate> cands;
  for (std::size_t i = 0; i < loads.size(); ++i)
    cands.push_back({{static_cast<mds::InodeId>(i + 2), {}}, loads[i], 1});
  const double target = 55.6;
  for (const auto& [name, sels] :
       std::vector<std::pair<const char*, std::vector<std::string>>>{
           {"big_first (x0.8 target, original)", big_only},
           {"full list (mantle)", full}}) {
    const bool scaled = sels.size() == 1;
    const auto picks =
        cluster::best_selection(sels, cands, scaled ? target * 0.8 : target);
    std::printf("  %-36s ships %zu frags, load %.1f (target %.1f)\n", name,
                picks.size(), cluster::selection_load(cands, picks), target);
  }
  return 0;
}
