/// Ablation — the mds_bal_need_min target fudge (DESIGN.md §5.4).
///
/// §2.2.3: the original balancer scales its target load by 0.8 "to
/// account for the noise in load measurements", which made it ship 3
/// dirfrags instead of half the load. This harness runs the original
/// balancer with need_min factors {0.6, 0.8, 1.0} and reports how far
/// post-migration cluster balance lands from even, plus runtime.

#include "harness.hpp"

using namespace mantle;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::size_t files = quick ? 6000 : 25000;
  const std::vector<std::uint64_t> seeds = {21, 22, 23};

  std::printf("# Ablation: need_min target scaling (original balancer, 2 MDS)\n");
  std::printf("%8s %12s %9s %12s %16s\n", "factor", "runtime(s)", "rt sd",
              "migrations", "imbalance");

  for (const double factor : {0.6, 0.8, 1.0}) {
    OnlineStats runtime;
    OnlineStats migs;
    OnlineStats imbalance;  // |share(mds0) - 0.5| of served requests
    for (const std::uint64_t seed : seeds) {
      sim::ScenarioConfig cfg;
      cfg.cluster.num_mds = 2;
      cfg.cluster.seed = seed;
      cfg.cluster.bal_interval = kSec;
      cfg.cluster.split_size = quick ? 2500 : 12500;
      cfg.cluster.need_min_factor = factor;
      sim::Scenario s(cfg);
      s.cluster().set_balancer_all(
          [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
      for (int c = 0; c < 4; ++c)
        s.add_client(workloads::make_shared_create_workload(c, "/shared", files, 100));
      s.run();
      bench::dump_observability("abl_need_min", cfg.cluster.seed, s);
      runtime.add(to_seconds(s.makespan()));
      migs.add(static_cast<double>(s.cluster().migrations().size()));
      const double total = static_cast<double>(s.cluster().total_completed());
      const double share0 =
          static_cast<double>(s.cluster().node(0).stats().completed) / total;
      imbalance.add(std::fabs(share0 - 0.5));
    }
    std::printf("%8.1f %12.1f %9.2f %12.1f %15.3f\n", factor, runtime.mean(),
                runtime.stddev(), migs.mean(), imbalance.mean());
  }
  std::printf(
      "\n# expectation: factor < 1 under-ships (higher residual imbalance),\n"
      "# the paper's section 2.2.3 complaint about mds_bal_need_min\n");
  return 0;
}
