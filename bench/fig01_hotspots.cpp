/// Figure 1 — "Metadata hotspots ... have spatial and temporal locality
/// when compiling the Linux source code."
///
/// One client compiles the modelled source tree on one MDS. Every few
/// seconds the harness samples each top-level directory's decayed
/// (IRD + IWR) heat and prints a heat map: rows = time, columns =
/// directories, cells = 0-9 shading (the paper's shades of red).
/// Expected shape: a moving front across all directories during untar,
/// then persistent hotspots in arch/kernel/fs/mm during the compile
/// phase, then a broad readdir band while linking.

#include <algorithm>
#include <cmath>
#include <map>

#include "harness.hpp"

using namespace mantle;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);

  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 1;
  // Balance every simulated second (quick runs last only a few seconds)
  // so the policy hooks actually evaluate during the scenario.
  cfg.cluster.bal_interval = kSec;
  sim::Scenario s(cfg);
  // Run the paper's original policy through the real interpreter. With a
  // single MDS the when() condition (load > total/#MDSs) is never true, so
  // the heat map is unchanged — but the full compile-once pipeline is
  // exercised, and the dumped metrics let CI assert that the five hooks
  // are compiled exactly once for the whole run.
  s.cluster().set_balancer_all([](int) {
    return std::make_unique<core::MantleBalancer>(core::scripts::original());
  });

  workloads::CompileOptions opt;
  opt.root = "/client0";
  opt.files_per_dir = quick ? 20 : 60;
  opt.compile_ops = quick ? 2000 : 20000;
  opt.read_ops = quick ? 500 : 4000;
  opt.link_rounds = quick ? 4 : 12;
  s.add_client(std::make_unique<workloads::CompileWorkload>(opt));

  const auto& spec = workloads::compile_tree_spec();
  struct Sample {
    double t;
    std::vector<double> heat;
  };
  std::vector<Sample> samples;

  const Time interval = quick ? kSec : 2 * kSec;
  s.add_probe(interval, [&](Time now) {
    Sample smp;
    smp.t = to_seconds(now);
    auto& ns = s.cluster().ns();
    for (const auto& d : spec) {
      const auto res = ns.resolve(std::string("/client0/") + d.name);
      double h = 0.0;
      if (res.found) {
        h = ns.nested_pop(res.ino, mds::MetaOp::IRD, now) +
            ns.nested_pop(res.ino, mds::MetaOp::IWR, now) +
            ns.nested_pop(res.ino, mds::MetaOp::READDIR, now);
      }
      smp.heat.push_back(h);
    }
    samples.push_back(std::move(smp));
  });

  s.run();
  bench::dump_observability("fig01_hotspots", cfg.cluster.seed, s);

  std::printf("# Figure 1: per-directory metadata heat while compiling\n");
  std::printf("# heat = decayed IRD+IWR+READDIR (exponential decay, 5 s half-life)\n");
  double max_heat = 1e-9;
  for (const auto& smp : samples)
    for (const double h : smp.heat) max_heat = std::max(max_heat, h);

  std::printf("%7s |", "t(s)");
  for (const auto& d : spec) std::printf(" %-8.8s", d.name);
  std::printf("\n");
  for (const auto& smp : samples) {
    std::printf("%7.1f |", smp.t);
    for (const double h : smp.heat) {
      const int shade =
          h <= 0.0 ? 0
                   : std::min(9, 1 + static_cast<int>(8.0 * std::sqrt(h / max_heat)));
      if (shade == 0)
        std::printf(" .       ");
      else
        std::printf(" %d%-7.0f", shade, h);
    }
    std::printf("\n");
  }

  // Summary: which directories absorbed the most heat overall.
  std::printf("\n# total heat per directory (descending)\n");
  std::vector<std::pair<double, std::string>> totals;
  for (std::size_t d = 0; d < spec.size(); ++d) {
    double sum = 0.0;
    for (const auto& smp : samples) sum += smp.heat[d];
    totals.emplace_back(sum, spec[d].name);
  }
  std::sort(totals.rbegin(), totals.rend());
  for (const auto& [sum, name] : totals)
    std::printf("%-10s %10.1f\n", name.c_str(), sum);
  mantle::bench::print_phase_profile();
  return 0;
}
