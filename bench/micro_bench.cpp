/// Microbenchmarks (google-benchmark): the cost of the moving parts —
/// luam policy evaluation (the paper argues LuaJIT is fast enough for a
/// 10 s balancing tick; we verify the same holds for luam), decay
/// counters, dirfrag math, namespace ops and the event engine.

#include <benchmark/benchmark.h>

#include "balancers/builtin.hpp"
#include "common/decay_counter.hpp"
#include "core/mantle.hpp"
#include "mds/namespace.hpp"
#include "sim/engine.hpp"

using namespace mantle;

namespace {

cluster::ClusterView sample_view(int n) {
  cluster::ClusterView v;
  v.whoami = 0;
  v.mdss.resize(static_cast<std::size_t>(n));
  v.loads.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& hb = v.mdss[static_cast<std::size_t>(i)];
    hb.rank = i;
    hb.auth_metaload = i == 0 ? 1000 : 10;
    hb.all_metaload = i == 0 ? 1200 : 10;
    hb.cpu_pct = 50;
    hb.queue_len = 3;
    hb.req_rate = 500;
    v.loads[static_cast<std::size_t>(i)] = hb.all_metaload;
    v.total_load += hb.all_metaload;
  }
  return v;
}

void BM_DecayCounterHit(benchmark::State& state) {
  const DecayRate rate(5.0);
  DecayCounter c;
  Time t = 0;
  for (auto _ : state) {
    c.hit(t, rate);
    t += 100;
  }
  benchmark::DoNotOptimize(c.raw());
}
BENCHMARK(BM_DecayCounterHit);

void BM_FragPick(benchmark::State& state) {
  mds::Namespace ns;
  const auto dir = ns.mkdir(ns.root(), "d", 0);
  for (int i = 0; i < 1000; ++i) ns.create(dir, "f" + std::to_string(i), 0);
  ns.split({dir, mds::frag_t()}, 3, 0);
  const mds::Dir* d = ns.dir(dir);
  std::uint32_t h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(&d->pick_frag(h));
    h += 0x9e3779b9u;
  }
}
BENCHMARK(BM_FragPick);

void BM_NamespaceCreate(benchmark::State& state) {
  mds::Namespace ns;
  const auto dir = ns.mkdir(ns.root(), "d", 0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ns.create(dir, "file" + std::to_string(i++), 0));
  }
}
BENCHMARK(BM_NamespaceCreate);

void BM_NamespaceResolveDeep(benchmark::State& state) {
  mds::Namespace ns;
  mds::InodeId cur = ns.root();
  std::string path;
  for (int i = 0; i < 8; ++i) {
    cur = ns.mkdir(cur, "level" + std::to_string(i), 0);
    path += "/level" + std::to_string(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ns.resolve(path));
  }
}
BENCHMARK(BM_NamespaceResolveDeep);

void BM_EngineScheduleDispatch(benchmark::State& state) {
  sim::Engine e;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) e.schedule_after(static_cast<Time>(i), [] {});
    e.run();
  }
}
BENCHMARK(BM_EngineScheduleDispatch);

void BM_NativeBalancerTickDecision(benchmark::State& state) {
  balancers::OriginalBalancer b;
  const auto view = sample_view(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    if (b.when(view)) benchmark::DoNotOptimize(b.where(view));
  }
}
BENCHMARK(BM_NativeBalancerTickDecision)->Arg(3)->Arg(16)->Arg(64);

void BM_MantleBalancerTickDecision(benchmark::State& state) {
  core::MantleBalancer b(core::scripts::original());
  const auto view = sample_view(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    if (b.when(view)) benchmark::DoNotOptimize(b.where(view));
  }
}
BENCHMARK(BM_MantleBalancerTickDecision)->Arg(3)->Arg(16)->Arg(64);

void BM_MantleMetaload(benchmark::State& state) {
  core::MantleBalancer b(core::scripts::original());
  cluster::PopSnapshot pop{10, 20, 5, 2, 1};
  for (auto _ : state) benchmark::DoNotOptimize(b.metaload(pop));
}
BENCHMARK(BM_MantleMetaload);

void BM_LuaFib(benchmark::State& state) {
  lua::Interp in;
  in.run("function fib(n) if n<2 then return n end return fib(n-1)+fib(n-2) end");
  const lua::Value fib = in.get_global("fib");
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.call(fib, {lua::Value(15.0)}));
  }
}
BENCHMARK(BM_LuaFib);

void BM_SelectorBestSelection(benchmark::State& state) {
  std::vector<cluster::ExportCandidate> cands;
  for (int i = 0; i < 64; ++i)
    cands.push_back({{static_cast<mds::InodeId>(i + 2), {}},
                     100.0 / (i + 1), 10});
  const std::vector<std::string> names{"big_first", "small_first", "big_small", "half"};
  for (auto _ : state)
    benchmark::DoNotOptimize(cluster::best_selection(names, cands, 150.0));
}
BENCHMARK(BM_SelectorBestSelection);

}  // namespace

BENCHMARK_MAIN();
