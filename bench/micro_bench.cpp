/// Microbenchmarks (google-benchmark): the cost of the moving parts —
/// luam policy evaluation (the paper argues LuaJIT is fast enough for a
/// 10 s balancing tick; we verify the same holds for luam), decay
/// counters, dirfrag math, namespace ops and the event engine.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "balancers/builtin.hpp"
#include "harness.hpp"
#include "common/decay_counter.hpp"
#include "core/mantle.hpp"
#include "mds/namespace.hpp"
#include "sim/engine.hpp"

using namespace mantle;

namespace {

cluster::ClusterView sample_view(int n) {
  cluster::ClusterView v;
  v.whoami = 0;
  v.mdss.resize(static_cast<std::size_t>(n));
  v.loads.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& hb = v.mdss[static_cast<std::size_t>(i)];
    hb.rank = i;
    hb.auth_metaload = i == 0 ? 1000 : 10;
    hb.all_metaload = i == 0 ? 1200 : 10;
    hb.cpu_pct = 50;
    hb.queue_len = 3;
    hb.req_rate = 500;
    v.loads[static_cast<std::size_t>(i)] = hb.all_metaload;
    v.total_load += hb.all_metaload;
  }
  return v;
}

void BM_DecayCounterHit(benchmark::State& state) {
  const DecayRate rate(5.0);
  DecayCounter c;
  Time t = 0;
  for (auto _ : state) {
    c.hit(t, rate);
    t += 100;
  }
  benchmark::DoNotOptimize(c.raw());
}
BENCHMARK(BM_DecayCounterHit);

void BM_FragPick(benchmark::State& state) {
  mds::Namespace ns;
  const auto dir = ns.mkdir(ns.root(), "d", 0);
  for (int i = 0; i < 1000; ++i) ns.create(dir, "f" + std::to_string(i), 0);
  ns.split({dir, mds::frag_t()}, 3, 0);
  const mds::Dir* d = ns.dir(dir);
  std::uint32_t h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(&d->pick_frag(h));
    h += 0x9e3779b9u;
  }
}
BENCHMARK(BM_FragPick);

void BM_NamespaceCreate(benchmark::State& state) {
  mds::Namespace ns;
  const auto dir = ns.mkdir(ns.root(), "d", 0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ns.create(dir, "file" + std::to_string(i++), 0));
  }
}
BENCHMARK(BM_NamespaceCreate);

void BM_NamespaceResolveDeep(benchmark::State& state) {
  mds::Namespace ns;
  mds::InodeId cur = ns.root();
  std::string path;
  for (int i = 0; i < 8; ++i) {
    cur = ns.mkdir(cur, "level" + std::to_string(i), 0);
    path += "/level" + std::to_string(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ns.resolve(path));
  }
}
BENCHMARK(BM_NamespaceResolveDeep);

void BM_EngineScheduleDispatch(benchmark::State& state) {
  sim::Engine e;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) e.schedule_after(static_cast<Time>(i), [] {});
    e.run();
  }
}
BENCHMARK(BM_EngineScheduleDispatch);

void BM_NativeBalancerTickDecision(benchmark::State& state) {
  balancers::OriginalBalancer b;
  const auto view = sample_view(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    if (b.when(view)) benchmark::DoNotOptimize(b.where(view));
  }
}
BENCHMARK(BM_NativeBalancerTickDecision)->Arg(3)->Arg(16)->Arg(64);

void BM_MantleBalancerTickDecision(benchmark::State& state) {
  core::MantleBalancer b(core::scripts::original());
  const auto view = sample_view(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    if (b.when(view)) benchmark::DoNotOptimize(b.where(view));
  }
}
BENCHMARK(BM_MantleBalancerTickDecision)->Arg(3)->Arg(16)->Arg(64);

void BM_MantleMetaload(benchmark::State& state) {
  core::MantleBalancer b(core::scripts::original());
  cluster::PopSnapshot pop{10, 20, 5, 2, 1};
  for (auto _ : state) benchmark::DoNotOptimize(b.metaload(pop));
}
BENCHMARK(BM_MantleMetaload);

// --- Compile-once pipeline ---------------------------------------------
// The pre-PR interpreter re-lexed and re-parsed the hook source on every
// evaluation (and eval() additionally rebuilt the "return (<src>)" wrapper
// string per call). BM_LuaReparseEval keeps that path alive for comparison;
// BM_LuaCompiledEval is the same expression through a CompiledChunk.

constexpr const char* kMdsloadExpr =
    "0.8*MDSs[i][\"auth\"] + 0.2*MDSs[i][\"all\"]"
    " + MDSs[i][\"req\"] + 10*MDSs[i][\"q\"]";

lua::Interp& mdsload_env() {
  static lua::Interp in = [] {
    lua::Interp i;
    i.run("MDSs = {}; MDSs[1] = {auth=1000, all=1200, req=500, q=3}; i = 1");
    return i;
  }();
  return in;
}

void BM_LuaReparseEval(benchmark::State& state) {
  lua::Interp& in = mdsload_env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.eval(kMdsloadExpr, "mdsload"));
  }
}
BENCHMARK(BM_LuaReparseEval);

void BM_LuaCompiledEval(benchmark::State& state) {
  lua::Interp& in = mdsload_env();
  const lua::CompiledChunk cc = lua::compile_expr(kMdsloadExpr, "mdsload");
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.run(cc));
  }
}
BENCHMARK(BM_LuaCompiledEval);

void BM_LuaFib(benchmark::State& state) {
  lua::Interp in;
  in.run("function fib(n) if n<2 then return n end return fib(n-1)+fib(n-2) end");
  const lua::Value fib = in.get_global("fib");
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.call(fib, {lua::Value(15.0)}));
  }
}
BENCHMARK(BM_LuaFib);

void BM_SelectorBestSelection(benchmark::State& state) {
  std::vector<cluster::ExportCandidate> cands;
  for (int i = 0; i < 64; ++i)
    cands.push_back({{static_cast<mds::InodeId>(i + 2), {}},
                     100.0 / (i + 1), 10});
  const std::vector<std::string> names{"big_first", "small_first", "big_small", "half"};
  for (auto _ : state)
    benchmark::DoNotOptimize(cluster::best_selection(names, cands, 150.0));
}
BENCHMARK(BM_SelectorBestSelection);

// --- Per-hook benchmarks over the paper's four policies ------------------
// One benchmark per (hook, policy), with when/where additionally swept
// over 2/5/16-rank views. Names are stable ("BM_MantleHook/<hook>/<policy>
// [/<ranks>]"), so BENCH_micro.json files from different commits can be
// compared entry by entry.

struct NamedPolicy {
  const char* name;
  core::MantlePolicy policy;
};

const std::vector<NamedPolicy>& paper_policies() {
  static const std::vector<NamedPolicy> ps = {
      {"original", core::scripts::original()},
      {"greedy_spill", core::scripts::greedy_spill()},
      {"greedy_spill_even", core::scripts::greedy_spill_even()},
      {"fill_and_spill", core::scripts::fill_and_spill()},
  };
  return ps;
}

void register_hook_benchmarks() {
  static const int kRankCounts[] = {2, 5, 16};
  for (const NamedPolicy& np : paper_policies()) {
    const std::string prefix = std::string("BM_MantleHook/");
    benchmark::RegisterBenchmark(
        (prefix + "metaload/" + np.name).c_str(),
        [&np](benchmark::State& st) {
          core::MantleBalancer b(np.policy);
          const cluster::PopSnapshot pop{10, 20, 5, 2, 1};
          for (auto _ : st) benchmark::DoNotOptimize(b.metaload(pop));
        });
    benchmark::RegisterBenchmark(
        (prefix + "mdsload/" + np.name).c_str(),
        [&np](benchmark::State& st) {
          core::MantleBalancer b(np.policy);
          const auto view = sample_view(2);
          for (auto _ : st) benchmark::DoNotOptimize(b.mdsload(view.mdss[1]));
        });
    benchmark::RegisterBenchmark(
        (prefix + "howmuch/" + np.name).c_str(),
        [&np](benchmark::State& st) {
          core::MantleBalancer b(np.policy);
          for (auto _ : st) benchmark::DoNotOptimize(b.howmuch());
        });
    for (const int n : kRankCounts) {
      benchmark::RegisterBenchmark(
          (prefix + "when/" + np.name + "/" + std::to_string(n)).c_str(),
          [&np, n](benchmark::State& st) {
            core::MantleBalancer b(np.policy);
            const auto view = sample_view(n);
            for (auto _ : st) benchmark::DoNotOptimize(b.when(view));
          });
      benchmark::RegisterBenchmark(
          (prefix + "where/" + np.name + "/" + std::to_string(n)).c_str(),
          [&np, n](benchmark::State& st) {
            core::MantleBalancer b(np.policy);
            const auto view = sample_view(n);
            b.when(view);  // combined policies fill targets here
            for (auto _ : st) benchmark::DoNotOptimize(b.where(view));
          });
    }
  }
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): understands --quick (short
// measurement window for CI) and defaults JSON output to BENCH_micro.json
// so every run leaves a comparable artifact.
int main(int argc, char** argv) {
  std::vector<std::string> args_storage;
  bool has_out = false;
  bool quick = false;
  args_storage.reserve(static_cast<std::size_t>(argc) + 3);
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
      continue;
    }
    if (a.rfind("--benchmark_out=", 0) == 0) has_out = true;
    args_storage.push_back(a);
  }
  if (!has_out) {
    args_storage.push_back("--benchmark_out=BENCH_micro.json");
    args_storage.push_back("--benchmark_out_format=json");
  }
  // Note: this benchmark version wants a plain double here, not "0.02s".
  if (quick) args_storage.push_back("--benchmark_min_time=0.02");

  std::vector<char*> args;
  args.reserve(args_storage.size());
  for (std::string& a : args_storage) args.push_back(a.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  register_hook_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  mantle::bench::print_phase_profile();
  return 0;
}
