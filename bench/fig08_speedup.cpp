/// Figure 8 — "The per-client speedup or slowdown shows whether
/// distributing metadata is worthwhile. Spilling load to 3 or 4 MDS
/// nodes degrades performance but spilling to 2 MDS nodes improves
/// performance."
///
/// Same workload as Figure 7 (4 clients, one shared directory). For each
/// balancer and cluster size, speedup = runtime(1 MDS) / runtime. Also
/// reported: session flushes (the paper's explanation for the slowdown —
/// 157/323/458/788/936 sessions for its five setups) and the Fill &
/// Spill spill-fraction sweep (§4.2: spilling 25% beats 10%).

#include "harness.hpp"

using namespace mantle;

namespace {

struct Config {
  const char* label;
  int num_mds;
  bench::BalancerFactory factory;
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::size_t files = quick ? 8000 : 40000;
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{11, 12} : std::vector<std::uint64_t>{11, 12, 13};

  auto make_spec = [&](int num_mds, bench::BalancerFactory f) {
    bench::RunSpec spec;
    spec.label = "fig08_speedup";
    spec.num_mds = num_mds;
    spec.base.split_size = quick ? 2500 : 12500;
    spec.base.bal_interval = quick ? kSec : 4 * kSec;
    spec.balancer = std::move(f);
    spec.add_clients = [files](sim::Scenario& s) {
      for (int c = 0; c < 4; ++c)
        s.add_client(workloads::make_shared_create_workload(c, "/shared", files, 100));
    };
    return spec;
  };

  // Baseline: everything on one MDS.
  const bench::SeededStats base = bench::run_seeds_parallel(make_spec(1, nullptr), seeds);
  std::printf("# Figure 8: per-client speedup vs 1 MDS (4 clients, shared dir)\n");
  std::printf("%-34s %5s %10s %9s %9s %10s %9s\n", "balancer", "MDS",
              "runtime(s)", "rt sd", "speedup", "sessions", "migs");
  std::printf("%-34s %5d %10.1f %9.2f %8.1f%% %10.0f %9.1f\n", "none (baseline)",
              1, base.runtime.mean(), base.runtime.stddev(), 0.0,
              base.sessions.mean(), base.migrations.mean());

  const std::vector<Config> configs = {
      {"greedy spill", 2,
       [](int) { return std::make_unique<core::MantleBalancer>(core::scripts::greedy_spill()); }},
      {"greedy spill", 3,
       [](int) { return std::make_unique<core::MantleBalancer>(core::scripts::greedy_spill()); }},
      {"greedy spill", 4,
       [](int) { return std::make_unique<core::MantleBalancer>(core::scripts::greedy_spill()); }},
      {"greedy spill evenly", 4,
       [](int) { return std::make_unique<core::MantleBalancer>(core::scripts::greedy_spill_even()); }},
      {"fill & spill (25%)", 2,
       [](int) { return std::make_unique<core::MantleBalancer>(core::scripts::fill_and_spill(48.0, 0.25)); }},
      {"fill & spill (25%)", 4,
       [](int) { return std::make_unique<core::MantleBalancer>(core::scripts::fill_and_spill(48.0, 0.25)); }},
      {"fill & spill (10%)", 4,
       [](int) { return std::make_unique<core::MantleBalancer>(core::scripts::fill_and_spill(48.0, 0.10)); }},
  };

  for (const Config& c : configs) {
    const bench::SeededStats st = bench::run_seeds_parallel(make_spec(c.num_mds, c.factory), seeds);
    const double speedup = (base.runtime.mean() / st.runtime.mean() - 1.0) * 100.0;
    std::printf("%-34s %5d %10.1f %9.2f %+8.1f%% %10.0f %9.1f\n", c.label,
                c.num_mds, st.runtime.mean(), st.runtime.stddev(), speedup,
                st.sessions.mean(), st.migrations.mean());
  }

  std::printf(
      "\n# paper shape: +~10%% at 2 MDS; -5%% / -20%% spilling unevenly to 3 / 4;\n"
      "# spilling evenly to 4 is worst (up to -40%%) but most stable; Fill &\n"
      "# Spill gets +6%% using only a subset of the nodes, and 25%% spill beats 10%%.\n"
      "# Session flushes grow with distribution (paper: 157/323/458/788/936).\n");
  return 0;
}
