#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "balancers/builtin.hpp"
#include "core/mantle.hpp"
#include "obs/profile.hpp"
#include "sim/scenario.hpp"
#include "workloads/compile.hpp"
#include "workloads/create_heavy.hpp"

/// \file harness.hpp
/// Shared plumbing for the figure-reproduction harnesses. Each bench/
/// binary regenerates one table or figure from the paper: it builds the
/// paper's setup out of the simulator, runs it, and prints the same rows
/// or series the paper reports (see EXPERIMENTS.md for the mapping and
/// the paper-vs-measured comparison).

namespace mantle::bench {

/// Scale knob: figure harnesses accept an optional argv[1] "--quick" to
/// shrink workloads (used in CI); default sizes match EXPERIMENTS.md.
inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--quick") return true;
  return false;
}

struct RunResult {
  double makespan_s = 0.0;
  double throughput = 0.0;       // completed ops/s
  double mean_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double latency_stddev_ms = 0.0;
  std::uint64_t forwards = 0;
  std::uint64_t hits = 0;
  std::uint64_t migrations = 0;
  std::uint64_t sessions_flushed = 0;
  std::uint64_t total_ops = 0;
  std::vector<double> client_runtime_s;
  std::vector<std::uint64_t> per_mds_completed;
};

using BalancerFactory = cluster::MdsCluster::BalancerFactory;
using ScenarioTweak = std::function<void(sim::Scenario&)>;

struct RunSpec {
  int num_mds = 1;
  std::uint64_t seed = 1;
  cluster::ClusterConfig base;  // further cluster knobs
  BalancerFactory balancer;     // null = no balancing (pure single-auth)
  std::function<void(sim::Scenario&)> add_clients;
  ScenarioTweak before_run;     // e.g. install probes
  std::string label;            // observability dump prefix (default "run")
};

/// Short FNV-1a digest of everything that determines a dump's contents:
/// the label, the seed and every ClusterConfig field (hashed field by
/// field, not as raw struct memory, so padding bytes can't leak in).
/// Used to uniquify dump filenames deterministically: the same
/// (label, seed, config) always maps to the same name — and if two runs
/// share all three, their dump contents are byte-identical anyway, so
/// the overwrite is harmless.
inline std::string obs_dump_digest(const std::string& label,
                                   std::uint64_t seed,
                                   const cluster::ClusterConfig& c) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  const auto byte = [&h](unsigned char b) {
    h ^= b;
    h *= 1099511628211ull;  // FNV prime
  };
  const auto u = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
  };
  const auto d = [&](double x) {
    std::uint64_t v = 0;
    std::memcpy(&v, &x, sizeof v);
    u(v);
  };
  for (const char ch : label) byte(static_cast<unsigned char>(ch));
  u(seed);
  u(static_cast<std::uint64_t>(c.num_mds));
  u(c.seed);
  u(c.net_latency), u(c.svc_create), u(c.svc_mkdir), u(c.svc_getattr);
  u(c.svc_lookup), u(c.svc_readdir), u(c.svc_unlink), u(c.svc_forward);
  u(c.svc_remote_prefix), u(c.svc_scatter_gather);
  d(c.svc_jitter);
  u(c.bal_interval), u(c.hb_delay), u(c.tick_jitter);
  d(c.hb_jitter_frac), d(c.cpu_noise_pct), d(c.bal_min_load);
  d(c.need_min_factor);
  u(static_cast<std::uint64_t>(c.max_drill_depth));
  d(c.too_big_factor);
  u(c.split_size), u(c.split_bits), u(c.merge_size);
  u(c.mig_base), u(c.mig_per_entry), u(c.session_flush_stall);
  d(c.mem_capacity_entries);
  d(c.laggy_factor);
  u(c.replay_base), u(c.replay_per_entry);
  u(c.takeover_on_crash ? 1 : 0);
  u(c.hb_stale_guard ? 1 : 0);
  u(static_cast<std::uint64_t>(c.export_retry_max));
  u(c.export_retry_base), u(c.export_retry_cap);
  u(static_cast<std::uint64_t>(c.export_stuck_ticks));
  u(static_cast<std::uint64_t>(c.laggy_readmit_ticks));
  u(c.trace_capacity);
  u(c.provenance_capacity), u(c.provenance_max_ranks);
  // Sharded-engine schedule parameters. The shard count and lookahead
  // change the event schedule (and so the dumps); the worker-thread
  // count K must not, and is deliberately absent.
  u(static_cast<std::uint64_t>(c.shards));
  u(c.lookahead);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%08x",
                static_cast<unsigned>(h ^ (h >> 32)));
  return buf;
}

/// With MANTLE_OBS_DIR set, dump the scenario's metrics snapshot
/// (Prometheus text + JSON) and its event timeline (plain JSON +
/// Chrome-trace/Perfetto JSON) into that directory as
/// <label>-seed<seed>-<digest>.{prom,metrics.json,trace.json,perfetto.json}
/// where <digest> is obs_dump_digest(). run_scenario() calls this
/// automatically; benches that drive a sim::Scenario by hand call it
/// after run(). Both names and contents are pure functions of
/// (label, seed, config), so a dump directory is byte-stable across
/// reruns — including under run_seeds_parallel().
inline void dump_observability(const std::string& label, std::uint64_t seed,
                               sim::Scenario& s) {
  const char* dir = std::getenv("MANTLE_OBS_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "obs: cannot create %s: %s\n", dir,
                 ec.message().c_str());
    return;
  }
  const std::string stem =
      std::string(dir) + "/" + (label.empty() ? "run" : label) + "-seed" +
      std::to_string(seed) + "-" +
      obs_dump_digest(label, seed, s.cluster().config());
  const auto write = [&](const std::string& path, const std::string& body) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << body;
  };
  {
    obs::ScopedPhase prof(obs::ProfilePhase::TraceIo);
    write(stem + ".prom", s.cluster().metrics().to_prometheus());
    write(stem + ".metrics.json", s.cluster().metrics().to_json());
    write(stem + ".trace.json", s.cluster().trace().to_json());
    write(stem + ".perfetto.json", s.cluster().trace().to_perfetto());
    write(stem + ".provenance.json", s.cluster().provenance().to_json());
  }
  // Opt-in wall-clock side files. Deliberately separate from the
  // deterministic dump set above: profile numbers are real-time
  // measurements and would break byte-identical same-seed dumps.
  const char* prof_dump = std::getenv("MANTLE_PROFILE_DUMP");
  if (prof_dump != nullptr && *prof_dump != '\0' &&
      std::string(prof_dump) != "0") {
    write(stem + ".profile.json", obs::Profiler::instance().to_json());
    write(stem + ".profile.perfetto.json",
          s.cluster().trace().to_perfetto(&obs::Profiler::instance()));
  }
}

/// Print the wall-clock phase profile accumulated so far (bench binaries
/// call this after their runs; stdout only, never part of the dumps).
inline void print_phase_profile() {
  if (!obs::Profiler::instance().enabled()) return;
  // stderr, not stdout: bench stdout stays a pure function of
  // (seed, config) so `bench --quick | diff` determinism probes hold;
  // wall-clock numbers vary run to run by nature.
  std::fprintf(stderr, "\n## wall-clock phase profile\n%s",
               obs::Profiler::instance().table().c_str());
}

inline void dump_observability(const RunSpec& spec, sim::Scenario& s) {
  dump_observability(spec.label, spec.seed, s);
}

inline RunResult run_scenario(const RunSpec& spec,
                              std::unique_ptr<sim::Scenario>* keep = nullptr) {
  sim::ScenarioConfig cfg;
  cfg.cluster = spec.base;
  cfg.cluster.num_mds = spec.num_mds;
  cfg.cluster.seed = spec.seed;
  auto owned = std::make_unique<sim::Scenario>(cfg);
  sim::Scenario& s = *owned;
  if (spec.balancer) s.cluster().set_balancer_all(spec.balancer);
  spec.add_clients(s);
  if (spec.before_run) spec.before_run(s);
  s.run();
  dump_observability(spec, s);

  RunResult r;
  r.makespan_s = to_seconds(s.makespan());
  r.throughput = s.aggregate_throughput();
  const auto lat = s.pooled_latencies_ms();
  r.mean_latency_ms = lat.mean();
  r.p99_latency_ms = lat.percentile(0.99);
  r.latency_stddev_ms = lat.stddev();
  r.forwards = s.cluster().total_forwards();
  r.hits = s.cluster().total_hits();
  r.migrations = s.cluster().migrations().size();
  r.sessions_flushed = s.cluster().total_sessions_flushed();
  r.total_ops = s.cluster().total_completed();
  for (const auto& c : s.clients())
    r.client_runtime_s.push_back(to_seconds(c->runtime()));
  for (int m = 0; m < s.cluster().num_mds(); ++m)
    r.per_mds_completed.push_back(s.cluster().node(m).stats().completed);
  if (keep != nullptr) *keep = std::move(owned);
  return r;
}

/// Mean / stddev of client runtimes over several seeds (the paper reports
/// runtime standard deviation as its stability metric).
struct SeededStats {
  OnlineStats runtime;
  OnlineStats throughput;
  OnlineStats forwards;
  OnlineStats sessions;
  OnlineStats migrations;
};

inline SeededStats run_seeds(RunSpec spec, const std::vector<std::uint64_t>& seeds) {
  SeededStats out;
  for (const std::uint64_t seed : seeds) {
    spec.seed = seed;
    const RunResult r = run_scenario(spec);
    out.runtime.add(r.makespan_s);
    out.throughput.add(r.throughput);
    out.forwards.add(static_cast<double>(r.forwards));
    out.sessions.add(static_cast<double>(r.sessions_flushed));
    out.migrations.add(static_cast<double>(r.migrations));
  }
  return out;
}

/// Parallel seed sweep: every scenario is self-contained (own engine,
/// cluster, clients, RNG streams), so independent seeds run on worker
/// threads. Results are accumulated in seed order, so the output is
/// bit-identical to the serial run_seeds().
inline SeededStats run_seeds_parallel(const RunSpec& spec,
                                      const std::vector<std::uint64_t>& seeds) {
  std::vector<RunResult> results(seeds.size());
  std::vector<std::thread> workers;
  std::atomic<std::size_t> next{0};
  const unsigned n_threads =
      std::min<unsigned>(std::max(1u, std::thread::hardware_concurrency()),
                         static_cast<unsigned>(seeds.size()));
  workers.reserve(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= seeds.size()) return;
        RunSpec local = spec;
        local.seed = seeds[i];
        results[i] = run_scenario(local);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  SeededStats out;
  for (const RunResult& r : results) {
    out.runtime.add(r.makespan_s);
    out.throughput.add(r.throughput);
    out.forwards.add(static_cast<double>(r.forwards));
    out.sessions.add(static_cast<double>(r.sessions_flushed));
    out.migrations.add(static_cast<double>(r.migrations));
  }
  return out;
}

/// Per-MDS throughput series sampled on a fixed grid, rendered like the
/// stacked curves of Figures 4, 7 and 10.
inline void print_throughput_series(sim::Scenario& s, Time step,
                                    const std::string& label) {
  std::printf("## %s — metadata req/s per MDS (sampled every %.0f s)\n",
              label.c_str(), to_seconds(step));
  std::printf("%8s", "t(s)");
  for (int m = 0; m < s.cluster().num_mds(); ++m) std::printf("  mds%-6d", m);
  std::printf("  %8s\n", "total");
  const Time end = s.makespan();
  for (Time t = 0; t < end; t += step) {
    std::printf("%8.0f", to_seconds(t));
    double total = 0.0;
    for (int m = 0; m < s.cluster().num_mds(); ++m) {
      const Timeline& tl = s.cluster().node(m).stats().throughput;
      double sum = 0.0;
      std::size_t n = 0;
      for (Time u = t; u < t + step && u < end; u += tl.bucket_width()) {
        sum += tl.rate(u / tl.bucket_width());
        ++n;
      }
      const double rate = n ? sum / static_cast<double>(n) : 0.0;
      total += rate;
      std::printf("  %-9.0f", rate);
    }
    std::printf("  %8.0f\n", total);
  }
}

inline void print_result_row(const char* label, const RunResult& r) {
  std::printf(
      "%-28s runtime=%7.1fs  thru=%7.0f/s  lat=%6.3fms (p99 %7.3f, sd %6.3f)"
      "  fwd=%-7llu mig=%-4llu sess=%llu\n",
      label, r.makespan_s, r.throughput, r.mean_latency_ms, r.p99_latency_ms,
      r.latency_stddev_ms, static_cast<unsigned long long>(r.forwards),
      static_cast<unsigned long long>(r.migrations),
      static_cast<unsigned long long>(r.sessions_flushed));
}

}  // namespace mantle::bench
