/// Extension — control-feedback balancing (paper §4.4 future work).
///
/// Compares the PI-controller balancer against the paper's policies on
/// the shared-directory create storm, including a noisy-metrics variant.
/// The interesting outcome (see the trailing note) is that a well-damped
/// balance-seeking controller is *stable* but still loses to the
/// locality-first Fill & Spill -- the paper's locality-vs-distribution
/// conclusion, rediscovered from the control-theory side.

#include "balancers/feedback.hpp"
#include "harness.hpp"

using namespace mantle;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::size_t files = quick ? 8000 : 30000;
  const std::vector<std::uint64_t> seeds = {41, 42, 43};

  auto spec_for = [&](bench::BalancerFactory f, double noise) {
    bench::RunSpec spec;
    spec.label = "ext_feedback";
    spec.num_mds = 3;
    spec.base.split_size = quick ? 2500 : 12500;
    spec.base.bal_interval = kSec;
    spec.base.cpu_noise_pct = noise;
    spec.balancer = std::move(f);
    spec.add_clients = [files](sim::Scenario& s) {
      for (int c = 0; c < 4; ++c)
        s.add_client(workloads::make_shared_create_workload(c, "/shared", files, 100));
    };
    return spec;
  };

  struct Entry {
    const char* label;
    bench::BalancerFactory factory;
  };
  const std::vector<Entry> entries = {
      {"none (baseline)", nullptr},
      {"greedy spill (Listing 1)",
       [](int) {
         return std::make_unique<core::MantleBalancer>(core::scripts::greedy_spill());
       }},
      {"fill & spill (Listing 3)",
       [](int) {
         return std::make_unique<core::MantleBalancer>(core::scripts::fill_and_spill());
       }},
      {"feedback PI (extension)",
       [](int) { return std::make_unique<balancers::FeedbackBalancer>(); }},
  };

  for (const double noise : {4.0, 20.0}) {
    std::printf("\n# CPU measurement noise: %.0f percentage points\n", noise);
    std::printf("%-28s %10s %9s %12s %10s\n", "balancer", "runtime(s)",
                "rt sd", "migrations", "sessions");
    for (const Entry& e : entries) {
      const bench::SeededStats st =
          bench::run_seeds_parallel(spec_for(e.factory, noise), seeds);
      std::printf("%-28s %10.1f %9.2f %12.1f %10.0f\n", e.label,
                  st.runtime.mean(), st.runtime.stddev(), st.migrations.mean(),
                  st.sessions.mean());
    }
  }
  std::printf(
      "\n# finding: the PI controller is stable (no churn blow-up, low rt\n"
      "# stddev) but chases an even *distribution*, so it migrates more than\n"
      "# the locality-first Fill & Spill and does not beat it -- independent\n"
      "# support for the paper's conclusion that balance-seeking per se is\n"
      "# not the right objective for metadata\n");
  return 0;
}
