/// Figure 10 — "With 5 clients compiling code in separate directories,
/// distributing metadata load early helps the cluster handle a flash
/// crowd at the end of the job."
///
/// 5 clients compile on a 5-MDS cluster under three aggressiveness
/// variants of the Adaptable balancer, plus a 1-MDS baseline:
///   conservative   — minimum-offload gate; stays on one MDS until the
///                    load spike forces distribution
///   aggressive     — Listing 4 as written; distributes immediately
///   too aggressive — rebalances on any imbalance; constant churn
/// The link phase ends the job with a readdir flash crowd; the paper's
/// too-aggressive variant produced ~60x as many forwards as the
/// aggressive one and much higher runtime variance.

#include "harness.hpp"

using namespace mantle;

namespace {

void add_compile_clients(sim::Scenario& s, bool quick) {
  for (int c = 0; c < 5; ++c) {
    workloads::CompileOptions o;
    o.root = "/client" + std::to_string(c);
    o.files_per_dir = quick ? 15 : 40;
    o.compile_ops = quick ? 2500 : 12000;
    o.read_ops = quick ? 500 : 2500;
    o.link_rounds = quick ? 5 : 10;
    s.add_client(std::make_unique<workloads::CompileWorkload>(o));
  }
}

struct VariantResult {
  double runtime = 0.0;
  std::uint64_t forwards = 0;
};

VariantResult run_variant(const char* label,
                          const bench::BalancerFactory& factory, int num_mds,
                          bool quick, std::uint64_t seed) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = num_mds;
  cfg.cluster.seed = seed;
  cfg.cluster.bal_interval = quick ? kSec : 4 * kSec;
  sim::Scenario s(cfg);
  if (factory) s.cluster().set_balancer_all(factory);
  add_compile_clients(s, quick);
  s.run();
  bench::dump_observability("fig10_adaptable", cfg.cluster.seed, s);
  if (seed == 31) {  // print the timeline once per variant
    std::printf("\n");
    bench::print_throughput_series(s, quick ? 2 * kSec : 5 * kSec, label);
    std::printf("runtime %.1f s; %zu migrations; %llu forwards\n",
                to_seconds(s.makespan()), s.cluster().migrations().size(),
                static_cast<unsigned long long>(s.cluster().total_forwards()));
  }
  return {to_seconds(s.makespan()), s.cluster().total_forwards()};
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{31, 32} : std::vector<std::uint64_t>{31, 32, 33};

  std::printf("# Figure 10: Adaptable balancer aggressiveness, 5 clients compiling\n");

  struct Variant {
    const char* label;
    int num_mds;
    bench::BalancerFactory factory;
  };
  const double min_offload = quick ? 800.0 : 2000.0;
  const std::vector<Variant> variants = {
      {"1 MDS baseline", 1, nullptr},
      {"conservative (min offload)", 5,
       [min_offload](int) {
         balancers::AdaptableBalancer::Options o;
         o.mode = balancers::AdaptableBalancer::Mode::kConservative;
         o.min_offload = min_offload;
         return std::make_unique<balancers::AdaptableBalancer>(o);
       }},
      {"aggressive (Listing 4)", 5,
       [](int) {
         return std::make_unique<core::MantleBalancer>(core::scripts::adaptable());
       }},
      {"too aggressive", 5,
       [](int) {
         balancers::AdaptableBalancer::Options o;
         o.mode = balancers::AdaptableBalancer::Mode::kTooAggressive;
         return std::make_unique<balancers::AdaptableBalancer>(o);
       }},
  };

  std::printf("\n%-30s %12s %9s %14s\n", "variant", "runtime(s)", "rt sd",
              "forwards(mean)");
  double aggressive_forwards = 1.0;
  for (const Variant& v : variants) {
    OnlineStats rt;
    OnlineStats fwd;
    for (const std::uint64_t seed : seeds) {
      const VariantResult r = run_variant(v.label, v.factory, v.num_mds, quick, seed);
      rt.add(r.runtime);
      fwd.add(static_cast<double>(r.forwards));
    }
    if (std::string(v.label) == "aggressive (Listing 4)")
      aggressive_forwards = std::max(fwd.mean(), 1.0);
    std::printf("%-30s %12.1f %9.2f %14.0f\n", v.label, rt.mean(), rt.stddev(),
                fwd.mean());
  }
  std::printf(
      "\n# forwards ratio too-aggressive / aggressive should be large (paper: ~60x)\n");
  std::printf(
      "# paper shape: conservative keeps metadata on one MDS until the spike;\n"
      "# aggressive absorbs the final readdir flash crowd; too-aggressive\n"
      "# thrashes subtrees (worse runtime, high stddev). (aggressive fwd mean: %.0f)\n",
      aggressive_forwards);
  return 0;
}
