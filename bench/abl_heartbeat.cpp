/// Ablation — heartbeat staleness (DESIGN.md §5.1).
///
/// The paper blames "decentralized MDS state ... slightly stale" views
/// for poor decisions (§2.2.2). This harness sweeps the heartbeat
/// delivery delay and the balancing interval under the original
/// balancer and reports decision churn (migrations), forwards and
/// runtime: the staler the view, the more the balancers overreact to
/// load that has already moved.

#include "harness.hpp"

using namespace mantle;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::size_t files = quick ? 6000 : 25000;
  const std::vector<std::uint64_t> seeds = {5, 6, 7};

  std::printf("# Ablation: heartbeat staleness (original balancer, 3 MDS)\n");
  std::printf("%12s %12s %10s %9s %10s %10s\n", "hb delay", "interval",
              "runtime(s)", "rt sd", "migrations", "forwards");

  for (const Time interval : {kSec, 2 * kSec, 4 * kSec}) {
    for (const Time delay : {Time(10 * kMsec), Time(250 * kMsec), Time(interval)}) {
      bench::RunSpec spec;
      spec.label = "abl_heartbeat";
      spec.num_mds = 3;
      spec.base.bal_interval = interval;
      spec.base.hb_delay = delay;
      spec.base.split_size = quick ? 1500 : 5000;
      spec.balancer = [](int) {
        return std::make_unique<balancers::OriginalBalancer>();
      };
      spec.add_clients = [files](sim::Scenario& s) {
        for (int c = 0; c < 4; ++c)
          s.add_client(workloads::make_private_create_workload(c, files, 100));
      };
      const bench::SeededStats st = bench::run_seeds_parallel(spec, seeds);
      std::printf("%9.0fms %10.0fs %10.1f %9.2f %10.1f %10.0f\n",
                  to_seconds(delay) * 1e3, to_seconds(interval),
                  st.runtime.mean(), st.runtime.stddev(), st.migrations.mean(),
                  st.forwards.mean());
    }
  }
  std::printf(
      "\n# expectation: delay ~= interval (fully stale views) increases\n"
      "# migration churn and forwards relative to near-fresh views\n");
  return 0;
}
