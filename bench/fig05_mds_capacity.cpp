/// Figure 5 — "For the create heavy workload, the throughput (x axis)
/// stops improving and the latency (y axis) continues to increase with
/// 5, 6, or 7 clients."
///
/// One MDS, 1..7 closed-loop clients creating files in separate
/// directories. Reported per point: aggregate throughput, mean latency,
/// and the stddev of both across seeds. Expected shape: throughput
/// scales ~linearly to 4 clients then saturates at the MDS service
/// capacity while latency and its variance climb (the paper: "a single
/// MDS can handle up to 4 clients without being overloaded").

#include "harness.hpp"

using namespace mantle;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::size_t files = quick ? 3000 : 20000;
  const std::vector<std::uint64_t> seeds = quick
                                               ? std::vector<std::uint64_t>{1, 2}
                                               : std::vector<std::uint64_t>{1, 2, 3, 4};

  std::printf("# Figure 5: single-MDS scaling with client count\n");
  std::printf("%8s %12s %14s %12s %14s %12s\n", "clients", "thru(req/s)",
              "thru stddev", "lat(ms)", "lat stddev", "p99(ms)");

  for (int clients = 1; clients <= 7; ++clients) {
    OnlineStats thru;
    OnlineStats lat;
    OnlineStats lat_sd;  // within-run latency spread, the paper's metric
    OnlineStats p99;
    for (const std::uint64_t seed : seeds) {
      sim::ScenarioConfig cfg;
      cfg.cluster.num_mds = 1;
      cfg.cluster.seed = seed;
      sim::Scenario s(cfg);
      for (int c = 0; c < clients; ++c)
        s.add_client(workloads::make_private_create_workload(c, files, 350));
      s.run();
      bench::dump_observability("fig05_mds_capacity", cfg.cluster.seed, s);
      thru.add(s.aggregate_throughput());
      const auto l = s.pooled_latencies_ms();
      lat.add(l.mean());
      lat_sd.add(l.stddev());
      p99.add(l.percentile(0.99));
    }
    std::printf("%8d %12.0f %14.1f %12.4f %14.4f %12.4f\n", clients,
                thru.mean(), thru.stddev(), lat.mean(), lat_sd.mean(),
                p99.mean());
  }
  std::printf(
      "# paper shape: linear to ~4 clients; with 5-7 clients throughput is flat\n"
      "# while latency keeps rising and both standard deviations grow (up to 3x)\n");
  return 0;
}
