#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "harness.hpp"
#include "sim/population.hpp"

/// \file fig_scale.cpp
/// Scale sweep for the rebuilt event engine (ROADMAP item 1): 16 -> 128 ->
/// 512 MDS ranks driven by 10k -> 100k -> 1M modeled clients. Clients
/// scale as mean-field ClientPopulation aggregates (each simulated request
/// stands for `weight` modeled ops), so the event count tracks the
/// sampling rate, not the client count; a handful of object clients ride
/// along at every point to exercise the mixed path. A naive
/// one-object-per-client baseline at the largest pre-rebuild scale
/// anchors the speedup figure. Emits BENCH_scale.json:
///   - per point: wall seconds, engine events (and /sec), modeled ops
///     (and /sec), peak live events + pooled bytes (the RSS proxy),
///     per-second imbalance-CV series over per-rank completions,
///     forwards, migrations;
///   - baseline ops/sec and the modeled-throughput speedup vs it;
///   - a same-seed determinism self-check (identical metrics snapshots).
/// With MANTLE_OBS_DIR set, every point dumps metrics + traces for
/// `mantle-stat --check`.

namespace {

using namespace mantle;  // NOLINT

struct PointResult {
  int ranks = 0;
  std::uint64_t modeled_clients = 0;
  double wall_s = 0;
  double makespan_s = 0;
  std::uint64_t engine_events = 0;
  std::uint64_t sim_ops = 0;
  std::uint64_t modeled_ops = 0;
  std::uint64_t forwards = 0;
  std::uint64_t migrations = 0;
  std::size_t peak_live_events = 0;
  std::size_t pool_bytes = 0;
  std::vector<double> cv_series;
  double cv_mean = 0;
  std::string metrics_json;  // determinism self-check payload
};

double wall_seconds_since(
    const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Coefficient of variation across per-rank values (0 when flat or idle).
double cv_of(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double mean = 0;
  for (const double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  if (mean <= 0) return 0;
  double var = 0;
  for (const double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  return std::sqrt(var) / mean;
}

PointResult run_point(int ranks, std::uint64_t modeled_clients, bool quick,
                      std::uint64_t seed, int shards = 0, int threads = 1) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = ranks;
  cfg.cluster.seed = seed;
  cfg.cluster.split_size = quick ? 1000 : 5000;
  cfg.cluster.bal_interval = quick ? kSec : 10 * kSec;
  cfg.cluster.shards = shards;
  cfg.threads = threads;
  const Time duration = quick ? 3 * kSec : 20 * kSec;
  cfg.max_time = duration + 30 * kSec;

  sim::Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });

  // A few object clients coexist with the aggregates on the same id space.
  for (int c = 0; c < 4; ++c)
    s.add_client(workloads::make_private_create_workload(
        c, quick ? 50 : 200, 100));

  // Population aggregates: flows spread across per-population subtrees so
  // the balancer has subtrees to migrate between ranks.
  const int npops = std::clamp(ranks / 8, 1, 16);
  const int dirs_per_pop = std::clamp(ranks / npops, 4, 64);
  // The sampling rate is the mean-field knob: it grows with the cluster
  // until a cap, past which each simulated request simply stands for more
  // modeled ops (higher weight) instead of adding events. This is what
  // decouples the event count from the modeled client count.
  const double total_sim_rate = std::min(40.0 * ranks, 6144.0);
  for (int p = 0; p < npops; ++p) {
    sim::PopulationConfig pc;
    pc.modeled_clients = modeled_clients / static_cast<std::uint64_t>(npops);
    pc.ops_per_client = 1.0;
    pc.sim_rate = total_sim_rate / npops;
    pc.duration = duration;
    pc.tick = 50 * kMsec;
    pc.create_frac = 0.3;
    for (int d = 0; d < dirs_per_pop; ++d)
      pc.dirs.push_back("/scale" + std::to_string(p) + "/d" +
                        std::to_string(d));
    s.add_population(pc);
  }

  // Imbalance probe: CV across ranks of per-second completion deltas.
  PointResult r;
  r.ranks = ranks;
  r.modeled_clients = modeled_clients;
  std::vector<std::uint64_t> prev(static_cast<std::size_t>(ranks), 0);
  s.add_probe(quick ? 500 * kMsec : kSec, [&](Time) {
    std::vector<double> delta(prev.size());
    for (int m = 0; m < ranks; ++m) {
      const std::uint64_t done = s.cluster().node(m).stats().completed;
      delta[static_cast<std::size_t>(m)] =
          static_cast<double>(done - prev[static_cast<std::size_t>(m)]);
      prev[static_cast<std::size_t>(m)] = done;
    }
    r.cv_series.push_back(cv_of(delta));
  });

  const auto t0 = std::chrono::steady_clock::now();
  s.run();
  // Let in-flight 2PC exports finish: a migration started on the last
  // balancer tick would otherwise sit open in the trace and trip the
  // stuck-export detector. Bounded — load is gone, so no new exports
  // start once the active set drains.
  for (int i = 0; i < 30 && s.cluster().active_migration_count() > 0; ++i)
    s.run_extra(kSec);
  r.wall_s = wall_seconds_since(t0);

  r.makespan_s = to_seconds(s.makespan());
  r.engine_events = static_cast<std::uint64_t>(
      s.cluster().metrics().counter("sim_events_dispatched_total").value());
  for (const auto& p : s.populations()) {
    r.sim_ops += p->sim_ops_completed();
    r.modeled_ops += p->modeled_ops_completed();
  }
  for (const auto& c : s.clients()) r.modeled_ops += c->ops_completed();
  r.forwards = s.cluster().total_forwards();
  r.migrations = s.cluster().migrations().size();
  const auto pool = s.sim_pool_stats();
  r.peak_live_events = pool.peak_live;
  r.pool_bytes = pool.bytes_reserved;
  for (const double cv : r.cv_series) r.cv_mean += cv;
  if (!r.cv_series.empty())
    r.cv_mean /= static_cast<double>(r.cv_series.size());
  r.metrics_json = s.cluster().metrics().to_json();

  // Sharded runs share one dump stem per (label, seed, config) — the
  // digest covers shards but deliberately not the thread count, so every
  // K overwrites the files with what must be identical bytes.
  bench::dump_observability("fig_scale_r" + std::to_string(ranks), seed, s);
  return r;
}

/// The pre-rebuild shape: one object client per simulated client, at the
/// largest point the old engine could hold. Modeled ops == real ops.
PointResult run_baseline(bool quick, std::uint64_t seed) {
  const int ranks = 16;
  // Big enough that wall time is a stable measurement (hundreds of ms),
  // small enough that the old engine's shape could still have held it.
  const int clients = quick ? 100 : 1000;
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = ranks;
  cfg.cluster.seed = seed;
  cfg.cluster.split_size = quick ? 1000 : 5000;
  cfg.cluster.bal_interval = quick ? kSec : 10 * kSec;
  cfg.max_time = 60 * kSec;

  sim::Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  for (int c = 0; c < clients; ++c)
    s.add_client(workloads::make_private_create_workload(
        c, quick ? 20 : 120, 100));

  const auto t0 = std::chrono::steady_clock::now();
  s.run();

  PointResult r;
  r.ranks = ranks;
  r.modeled_clients = static_cast<std::uint64_t>(clients);
  r.wall_s = wall_seconds_since(t0);
  r.makespan_s = to_seconds(s.makespan());
  r.engine_events = static_cast<std::uint64_t>(
      s.cluster().metrics().counter("sim_events_dispatched_total").value());
  for (const auto& c : s.clients()) r.modeled_ops += c->ops_completed();
  r.sim_ops = r.modeled_ops;
  const auto pool = s.engine().pool_stats();
  r.peak_live_events = pool.peak_live;
  r.pool_bytes = pool.bytes_reserved;
  bench::dump_observability("fig_scale_baseline", seed, s);
  return r;
}

void print_point_json(std::FILE* f, const PointResult& r, bool last) {
  std::fprintf(f,
               "    {\"ranks\": %d, \"modeled_clients\": %" PRIu64
               ", \"wall_s\": %.3f, \"makespan_s\": %.3f,\n"
               "     \"engine_events\": %" PRIu64
               ", \"engine_events_per_sec\": %.0f,\n"
               "     \"sim_ops\": %" PRIu64 ", \"modeled_ops\": %" PRIu64
               ", \"modeled_ops_per_sec\": %.0f,\n"
               "     \"peak_live_events\": %zu, \"pool_bytes\": %zu,\n"
               "     \"forwards\": %" PRIu64 ", \"migrations\": %" PRIu64
               ", \"imbalance_cv_mean\": %.4f,\n"
               "     \"imbalance_cv\": [",
               r.ranks, r.modeled_clients, r.wall_s, r.makespan_s,
               r.engine_events,
               r.wall_s > 0 ? static_cast<double>(r.engine_events) / r.wall_s
                            : 0.0,
               r.sim_ops, r.modeled_ops,
               r.wall_s > 0 ? static_cast<double>(r.modeled_ops) / r.wall_s
                            : 0.0,
               r.peak_live_events, r.pool_bytes, r.forwards, r.migrations,
               r.cv_mean);
  for (std::size_t i = 0; i < r.cv_series.size(); ++i)
    std::fprintf(f, "%s%.4f", i ? ", " : "", r.cv_series[i]);
  std::fprintf(f, "]}%s\n", last ? "" : ",");
}

/// --threads mode: the parallel-engine sweep (ISSUE 10). Re-runs the
/// scale points on the sharded engine at K = 1, 2, 4, 8 worker threads
/// and reports wall-clock events/sec, the speedup over the K=1 run of
/// the *same* sharded schedule, and a byte-identity check of the
/// metrics snapshot across K. Emits BENCH_parallel.json.
int run_threads_sweep(bool quick, const std::string& out_path,
                      std::uint64_t seed) {
  struct Point {
    int ranks;
    std::uint64_t clients;
  };
  const std::vector<Point> sweep =
      quick ? std::vector<Point>{{4, 10'000}, {8, 50'000}, {16, 100'000}}
            : std::vector<Point>{{16, 10'000}, {128, 100'000},
                                 {512, 1'000'000}};
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const int shards = 8;
  const unsigned host_cpus = std::thread::hardware_concurrency();

  std::printf(
      "## fig_scale --threads — %s sweep (seed %llu, %d shards, %u cpus)\n",
      quick ? "quick" : "full", static_cast<unsigned long long>(seed), shards,
      host_cpus);
  if (host_cpus < 4)
    std::printf(
        "  note: only %u hardware thread%s — K>1 cannot beat serial here;\n"
        "  the sweep still proves byte-identity and measures barrier cost\n",
        host_cpus, host_cpus == 1 ? "" : "s");

  // Classic single-queue reference at the largest point: the sharded
  // schedule's serial run is itself faster (S+1 small ladder queues beat
  // one big one), so report both axes of the speedup story.
  std::printf("classic single-queue reference (largest point):\n");
  const PointResult classic = run_point(sweep.back().ranks,
                                        sweep.back().clients, quick, seed);
  const double classic_eps =
      classic.wall_s > 0
          ? static_cast<double>(classic.engine_events) / classic.wall_s
          : 0;
  std::printf("  %3d ranks, shards=0: %.2fs wall, %" PRIu64
              " events (%.0f/s)\n",
              classic.ranks, classic.wall_s, classic.engine_events,
              classic_eps);

  struct Cell {
    int ranks = 0;
    int threads = 0;
    double wall_s = 0;
    std::uint64_t engine_events = 0;
    double events_per_sec = 0;
    double speedup = 1.0;
    bool identical = true;
  };
  std::vector<Cell> cells;
  bool all_identical = true;
  double speedup_at_max_ranks = 0;

  for (const Point& p : sweep) {
    std::string serial_metrics;
    double serial_wall = 0;
    for (const int k : thread_counts) {
      const PointResult r =
          run_point(p.ranks, p.clients, quick, seed, shards, k);
      Cell c;
      c.ranks = p.ranks;
      c.threads = k;
      c.wall_s = r.wall_s;
      c.engine_events = r.engine_events;
      c.events_per_sec =
          r.wall_s > 0 ? static_cast<double>(r.engine_events) / r.wall_s : 0;
      if (k == 1) {
        serial_metrics = r.metrics_json;
        serial_wall = r.wall_s;
      } else {
        c.identical = r.metrics_json == serial_metrics;
        c.speedup = r.wall_s > 0 ? serial_wall / r.wall_s : 0;
      }
      all_identical = all_identical && c.identical;
      if (p.ranks == sweep.back().ranks && k >= 4)
        speedup_at_max_ranks = std::max(speedup_at_max_ranks, c.speedup);
      std::printf("  %3d ranks x %d thread%s: %.2fs wall, %" PRIu64
                  " events (%.0f/s), speedup %.2fx, snapshot %s\n",
                  c.ranks, c.threads, c.threads == 1 ? " " : "s", c.wall_s,
                  c.engine_events, c.events_per_sec, c.speedup,
                  c.identical ? "identical" : "DIVERGED");
      cells.push_back(c);
    }
  }

  std::printf("max-ranks speedup at >=4 threads: %.2fx; byte-identity: %s\n",
              speedup_at_max_ranks, all_identical ? "ok" : "FAILED");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fig_scale_parallel\",\n  \"quick\": %s,\n"
               "  \"seed\": %llu,\n  \"shards\": %d,\n  \"host_cpus\": %u,\n"
               "  \"classic_reference\": {\"ranks\": %d, \"wall_s\": %.3f, "
               "\"engine_events\": %" PRIu64
               ", \"engine_events_per_sec\": %.0f},\n  \"points\": [\n",
               quick ? "true" : "false",
               static_cast<unsigned long long>(seed), shards, host_cpus,
               classic.ranks, classic.wall_s, classic.engine_events,
               classic_eps);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"ranks\": %d, \"threads\": %d, \"wall_s\": %.3f, "
                 "\"engine_events\": %" PRIu64
                 ", \"engine_events_per_sec\": %.0f, \"speedup_vs_serial\": "
                 "%.3f, \"identical_to_serial\": %s}%s\n",
                 c.ranks, c.threads, c.wall_s, c.engine_events,
                 c.events_per_sec, c.speedup, c.identical ? "true" : "false",
                 i + 1 == cells.size() ? "" : ",");
  }
  double serial_vs_classic = 0;
  for (const Cell& c : cells)
    if (c.ranks == sweep.back().ranks && c.threads == 1 && classic_eps > 0)
      serial_vs_classic = c.events_per_sec / classic_eps;
  std::fprintf(f, "  ],\n  \"speedup_at_max_ranks_4_threads\": %.3f,\n",
               speedup_at_max_ranks);
  std::fprintf(f, "  \"sharded_serial_vs_classic\": %.3f,\n",
               serial_vs_classic);
  std::fprintf(f, "  \"determinism_ok\": %s\n}\n",
               all_identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  mantle::bench::print_phase_profile();
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = mantle::bench::quick_mode(argc, argv);
  bool threads_mode = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) threads_mode = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[i + 1];
  }
  const std::uint64_t seed = 42;
  if (threads_mode) {
    if (out_path.empty()) out_path = "BENCH_parallel.json";
    return run_threads_sweep(quick, out_path, seed);
  }
  if (out_path.empty()) out_path = "BENCH_scale.json";

  struct Point {
    int ranks;
    std::uint64_t clients;
  };
  const std::vector<Point> sweep =
      quick ? std::vector<Point>{{4, 10'000}, {8, 50'000}, {16, 100'000}}
            : std::vector<Point>{{16, 10'000}, {128, 100'000}, {512, 1'000'000}};

  std::printf("## fig_scale — %s sweep (seed %llu)\n", quick ? "quick" : "full",
              static_cast<unsigned long long>(seed));

  std::printf("baseline: one object client per modeled client (old shape)\n");
  const PointResult base = run_baseline(quick, seed);
  std::printf(
      "  16 ranks, %" PRIu64 " clients: %.2fs wall, %" PRIu64
      " ops (%.0f ops/s), %" PRIu64 " engine events\n",
      base.modeled_clients, base.wall_s, base.modeled_ops,
      base.wall_s > 0 ? static_cast<double>(base.modeled_ops) / base.wall_s : 0,
      base.engine_events);

  std::vector<PointResult> points;
  for (const Point& p : sweep) {
    PointResult r = run_point(p.ranks, p.clients, quick, seed);
    std::printf(
        "  %3d ranks / %7" PRIu64 " modeled: %.2fs wall, %" PRIu64
        " engine events (%.0f/s), %" PRIu64
        " modeled ops (%.0f/s), peak live %zu, cv %.3f, fwd %" PRIu64
        ", mig %" PRIu64 "\n",
        r.ranks, r.modeled_clients, r.wall_s, r.engine_events,
        r.wall_s > 0 ? static_cast<double>(r.engine_events) / r.wall_s : 0,
        r.modeled_ops,
        r.wall_s > 0 ? static_cast<double>(r.modeled_ops) / r.wall_s : 0,
        r.peak_live_events, r.cv_mean, r.forwards, r.migrations);
    points.push_back(std::move(r));
  }

  // Determinism self-check: the smallest point, same seed, must reproduce
  // the exact metrics snapshot (counter for counter).
  const PointResult again =
      run_point(sweep.front().ranks, sweep.front().clients, quick, seed);
  const bool deterministic = again.metrics_json == points.front().metrics_json;
  std::printf("determinism self-check (%d ranks, same seed): %s\n",
              sweep.front().ranks, deterministic ? "identical" : "DIVERGED");

  const double base_rate =
      base.wall_s > 0 ? static_cast<double>(base.modeled_ops) / base.wall_s : 0;
  const double top_rate =
      points.back().wall_s > 0
          ? static_cast<double>(points.back().modeled_ops) /
                points.back().wall_s
          : 0;
  const double speedup = base_rate > 0 ? top_rate / base_rate : 0;
  std::printf("modeled throughput speedup vs per-object baseline: %.1fx\n",
              speedup);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig_scale\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f,
               "  \"baseline\": {\"ranks\": %d, \"clients\": %" PRIu64
               ", \"wall_s\": %.3f, \"ops\": %" PRIu64
               ", \"ops_per_sec\": %.0f, \"engine_events\": %" PRIu64 "},\n",
               base.ranks, base.modeled_clients, base.wall_s, base.modeled_ops,
               base_rate, base.engine_events);
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i)
    print_point_json(f, points[i], i + 1 == points.size());
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_vs_baseline\": %.2f,\n", speedup);
  std::fprintf(f, "  \"determinism_ok\": %s\n}\n",
               deterministic ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  mantle::bench::print_phase_profile();
  return deterministic ? 0 : 1;
}
