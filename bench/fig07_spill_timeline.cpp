/// Figure 7 — "With clients creating files in the same directory,
/// spilling load unevenly with Fill & Spill has the highest throughput."
///
/// 4 clients create files in one shared directory on a 4-MDS cluster;
/// the directory fragments GIGA+-style once it crosses the split
/// threshold. Each balancer is the *Mantle Lua script* from the paper's
/// listings, run through the real interpreter. Printed: per-MDS
/// throughput over time for Greedy Spill (uneven halving chain: 1/2,
/// 1/4, 1/8, 1/8), Greedy Spill Evenly (even quarters), Fill & Spill
/// (only spills once the first MDS passes its CPU threshold), and the
/// original CephFS balancer.

#include "harness.hpp"

using namespace mantle;

namespace {

void run_one(const char* label, const bench::BalancerFactory& factory,
             bool quick) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 4;
  cfg.cluster.seed = 11;
  cfg.cluster.split_size = quick ? 2500 : 12500;  // paper: 50k entries
  cfg.cluster.bal_interval = quick ? kSec : 4 * kSec;
  cfg.cluster.split_bits = 3;                     // 2^3 = 8 dirfrags
  sim::Scenario s(cfg);
  if (factory) s.cluster().set_balancer_all(factory);
  const std::size_t files = quick ? 10000 : 50000;  // paper: 100k x 4 clients
  for (int c = 0; c < 4; ++c)
    s.add_client(workloads::make_shared_create_workload(c, "/shared", files, 100));
  s.run();
  bench::dump_observability("fig07_spill_timeline", cfg.cluster.seed, s);

  std::printf("\n");
  bench::print_throughput_series(s, quick ? 2 * kSec : 5 * kSec, label);
  std::printf(
      "runtime %.1f s; %zu migrations; %llu forwards; %llu sessions flushed\n",
      to_seconds(s.makespan()), s.cluster().migrations().size(),
      static_cast<unsigned long long>(s.cluster().total_forwards()),
      static_cast<unsigned long long>(s.cluster().total_sessions_flushed()));
  std::printf("per-MDS completions:");
  for (int m = 0; m < s.cluster().num_mds(); ++m)
    std::printf(" mds%d=%llu", m,
                static_cast<unsigned long long>(s.cluster().node(m).stats().completed));
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  std::printf("# Figure 7: per-MDS throughput, 4 clients in one shared dir\n");

  run_one("greedy spill (Listing 1, Lua)", [](int) {
    return std::make_unique<core::MantleBalancer>(core::scripts::greedy_spill());
  }, quick);

  run_one("greedy spill evenly (Listing 2, Lua)", [](int) {
    return std::make_unique<core::MantleBalancer>(core::scripts::greedy_spill_even());
  }, quick);

  run_one("fill & spill (Listing 3, Lua)", [](int) {
    return std::make_unique<core::MantleBalancer>(core::scripts::fill_and_spill());
  }, quick);

  run_one("original balancer (Table 1, Lua)", [](int) {
    return std::make_unique<core::MantleBalancer>(core::scripts::original());
  }, quick);

  std::printf(
      "\n# paper shape: Greedy Spill sheds half immediately (uneven at 4 MDS:\n"
      "# each node spills less than its predecessor); Fill & Spill sheds only\n"
      "# when overloaded and uses a subset of the nodes\n");
  return 0;
}
