/// Figure 3 — "Spreading metadata to multiple MDS nodes hurts performance
/// when compared to keeping all metadata on one MDS."
///
/// Three setups for one client compiling the modelled source tree:
///   high locality    — everything on one MDS (paper: untar+compile @1MDS)
///   spread evenly    — hot *subtrees* placed whole on 3 MDS nodes at the
///                      untar/compile boundary (hot metadata correctly
///                      distributed; paper: untar@1 + compile@3)
///   spread unevenly  — hot directories *fragmented* and the fragments
///                      scattered across 3 MDS nodes (hot metadata
///                      incorrectly distributed; paper: untar+compile@3)
///
/// Figure 3a = total requests the MDS cluster served (client ops +
/// forwards) and job runtime; Figure 3b = path traversals ending in hits
/// vs forwards. Expected shape: locality wins (the paper reports an
/// 18-19% speedup for 1 MDS), and the uneven spread forwards the most.

#include "harness.hpp"

using namespace mantle;

namespace {

enum class Setup { kHighLocality, kSpreadEvenly, kSpreadUnevenly };

const char* setup_name(Setup s) {
  switch (s) {
    case Setup::kHighLocality: return "high locality (1 MDS)";
    case Setup::kSpreadEvenly: return "spread evenly (3 MDS)";
    case Setup::kSpreadUnevenly: return "spread unevenly (3 MDS)";
  }
  return "?";
}

bench::RunResult run_setup(Setup setup, bool quick) {
  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = setup == Setup::kHighLocality ? 1 : 3;
  sim::Scenario s(cfg);

  workloads::CompileOptions opt;
  opt.root = "/client0";
  opt.files_per_dir = quick ? 20 : 60;
  opt.compile_ops = quick ? 3000 : 25000;
  opt.read_ops = quick ? 600 : 5000;
  opt.link_rounds = quick ? 4 : 10;
  auto wl = std::make_unique<workloads::CompileWorkload>(opt);
  workloads::CompileWorkload* wl_raw = wl.get();
  s.add_client(std::move(wl));

  // Manual placement at the untar/compile boundary, mirroring how the
  // paper engineers its three setups by changing when MDS nodes join.
  bool placed = setup == Setup::kHighLocality;
  s.add_probe(200 * kMsec, [&, wl_raw, setup](Time now) {
    if (placed || wl_raw->phase() == workloads::CompileWorkload::Phase::Untar)
      return;
    placed = true;
    auto& ns = s.cluster().ns();
    const auto& spec = workloads::compile_tree_spec();
    int rr = 0;
    for (const auto& d : spec) {
      const auto res = ns.resolve(std::string("/client0/") + d.name);
      if (!res.found) continue;
      if (setup == Setup::kSpreadEvenly) {
        // Whole hot subtrees, one MDS each.
        const int target = rr++ % 3;
        if (target != 0)
          s.cluster().export_subtree({res.ino, mds::frag_t()}, target);
      } else {
        // Fragment the directory and scatter the pieces: hot metadata
        // incorrectly distributed.
        const auto kids = ns.split({res.ino, mds::frag_t()}, 2, now);
        for (const mds::frag_t k : kids) {
          const int target = rr++ % 3;
          if (target != s.cluster().auth_of({res.ino, k}))
            s.cluster().export_subtree({res.ino, k}, target);
        }
      }
    }
  });

  s.run();
  bench::dump_observability("fig03_locality", cfg.cluster.seed, s);

  bench::RunResult r;
  r.makespan_s = to_seconds(s.makespan());
  r.throughput = s.aggregate_throughput();
  r.forwards = s.cluster().total_forwards();
  r.hits = s.cluster().total_hits();
  r.migrations = s.cluster().migrations().size();
  r.sessions_flushed = s.cluster().total_sessions_flushed();
  r.total_ops = s.cluster().total_completed();
  const auto lat = s.pooled_latencies_ms();
  r.mean_latency_ms = lat.mean();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);

  std::printf("# Figure 3a: requests served & runtime per setup\n");
  std::printf("%-26s %10s %12s %12s %10s\n", "setup", "runtime(s)",
              "client ops", "MDS reqs", "lat(ms)");
  bench::RunResult results[3];
  const Setup setups[] = {Setup::kHighLocality, Setup::kSpreadEvenly,
                          Setup::kSpreadUnevenly};
  for (int i = 0; i < 3; ++i) {
    results[i] = run_setup(setups[i], quick);
    const auto& r = results[i];
    std::printf("%-26s %10.1f %12llu %12llu %10.3f\n", setup_name(setups[i]),
                r.makespan_s, static_cast<unsigned long long>(r.total_ops),
                static_cast<unsigned long long>(r.hits + r.forwards),
                r.mean_latency_ms);
  }

  std::printf("\n# Figure 3b: path traversals ending in hits vs forwards\n");
  std::printf("%-26s %12s %12s %9s\n", "setup", "hits", "forwards", "fwd%");
  for (int i = 0; i < 3; ++i) {
    const auto& r = results[i];
    const double pct = r.hits + r.forwards == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(r.forwards) /
                                 static_cast<double>(r.hits + r.forwards);
    std::printf("%-26s %12llu %12llu %8.2f%%\n", setup_name(setups[i]),
                static_cast<unsigned long long>(r.hits),
                static_cast<unsigned long long>(r.forwards), pct);
  }

  const double speedup = (results[1].makespan_s / results[0].makespan_s - 1.0) * 100.0;
  const double speedup2 = (results[2].makespan_s / results[0].makespan_s - 1.0) * 100.0;
  std::printf("\n# high-locality speedup vs spread evenly: %.1f%%  (paper: 18-19%%)\n",
              speedup);
  std::printf("# high-locality speedup vs spread unevenly: %.1f%%\n", speedup2);
  return 0;
}
