/// Figure 4 — "The same create-intensive workload has different
/// throughput because of how CephFS maintains state and sets policies."
///
/// Four runs of the identical job — 4 clients each creating N files in
/// separate directories on a 3-MDS cluster under the original (hard-coded
/// Table 1) balancer — differing only in the RNG seed. The instantaneous
/// CPU measurements, heartbeat staleness and service jitter make the
/// balancer take different migration decisions at different times, so the
/// per-MDS throughput curves and finish times diverge run to run (the
/// paper saw finish times between 5 and 10 minutes).

#include "harness.hpp"

using namespace mantle;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::size_t files = quick ? 8000 : 60000;

  std::printf("# Figure 4: run-to-run variance of the original balancer\n");
  OnlineStats finish;
  for (int run = 0; run < 4; ++run) {
    sim::ScenarioConfig cfg;
    cfg.cluster.num_mds = 3;
    cfg.cluster.seed = 1000 + static_cast<std::uint64_t>(run) * 77;
    cfg.cluster.split_size = quick ? 1000 : 5000;
    // CephFS balances every 10 s; the quick run compresses the tick so
    // several balancing rounds still land inside the shorter job.
    cfg.cluster.bal_interval = quick ? kSec : 10 * kSec;
    sim::Scenario s(cfg);
    s.cluster().set_balancer_all(
        [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
    for (int c = 0; c < 4; ++c)
      s.add_client(workloads::make_private_create_workload(c, files, 100));
    s.run();
    bench::dump_observability("fig04_reproducibility", cfg.cluster.seed, s);

    std::printf("\n### run %d (seed %llu): finished at %.1f s, %zu migrations\n",
                run, static_cast<unsigned long long>(cfg.cluster.seed),
                to_seconds(s.makespan()), s.cluster().migrations().size());
    bench::print_throughput_series(s, quick ? 2 * kSec : 10 * kSec,
                                   "run " + std::to_string(run));
    std::printf("migration log:\n");
    for (const auto& m : s.cluster().migrations())
      std::printf("  t=%6.1fs mds%d -> mds%d  %6zu entries (%zu sessions flushed)\n",
                  to_seconds(m.started), m.from, m.to, m.entries,
                  m.sessions_flushed);
    finish.add(to_seconds(s.makespan()));
  }
  std::printf("\n# finish times: mean %.1f s, stddev %.1f s, spread %.1f-%.1f s\n",
              finish.mean(), finish.stddev(), finish.min(), finish.max());
  std::printf("# paper: finish times varied between 5 and 10 minutes; load was\n"
              "# migrated to different servers at different times in different orders\n");
  return 0;
}
