/// Table 1 — the hard-coded CephFS policies, demonstrated live:
///   * the metaload / MDSload scalarizations evaluated on sample inputs,
///     in both the native (hard-coded) and Mantle (injected Lua) forms;
///   * the when/where partitioning on a sample cluster view;
///   * the §2.2.3 how-much anecdote: with the mds_bal_need_min-style 0.8
///     target scaling, big_first ships only 3 of 8 hot dirfrags (44.9 of
///     a 55.6 target); Mantle's selector list picks big_small instead.

#include "harness.hpp"

using namespace mantle;

int main() {
  std::printf("# Table 1: the CephFS policies, native vs Mantle script\n\n");

  balancers::OriginalBalancer native;
  core::MantleBalancer script(core::scripts::original());

  cluster::PopSnapshot pop;
  pop.ird = 10;
  pop.iwr = 20;
  pop.readdir = 5;
  pop.fetch = 2;
  pop.store = 1;
  std::printf("metaload(ird=10 iwr=20 readdir=5 fetch=2 store=1):\n");
  std::printf("  hard-coded: %.1f\n", native.metaload(pop));
  std::printf("  mantle lua: %.1f   (script: %s)\n\n", script.metaload(pop),
              script.policy().metaload.c_str());

  cluster::HeartbeatPayload hb;
  hb.rank = 0;
  hb.auth_metaload = 100;
  hb.all_metaload = 150;
  hb.req_rate = 42;
  hb.queue_len = 3;
  std::printf("MDSload(auth=100 all=150 req=42 q=3):\n");
  std::printf("  hard-coded: %.1f\n", native.mdsload(hb));
  std::printf("  mantle lua: %.1f\n\n", script.mdsload(hb));

  cluster::ClusterView view;
  view.whoami = 0;
  view.mdss.resize(3);
  for (int i = 0; i < 3; ++i) view.mdss[static_cast<std::size_t>(i)].rank = i;
  view.loads = {90, 10, 20};
  view.total_load = 120;
  std::printf("when (loads 90/10/20, whoami=mds0): native=%s mantle=%s\n",
              native.when(view) ? "migrate" : "hold",
              script.when(view) ? "migrate" : "hold");
  const auto nt = native.where(view);
  const auto st = script.where(view);
  std::printf("where: native targets = [%.1f %.1f %.1f], mantle = [%.1f %.1f %.1f]\n\n",
              nt[0], nt[1], nt[2], st[0], st[1], st[2]);

  // §2.2.3: the how-much accuracy anecdote.
  std::printf("how-much accuracy (dirfrag loads from §2.2.3, target %.1f):\n", 55.6);
  std::vector<double> loads{12.7, 13.3, 13.3, 14.6, 15.7, 13.5, 13.7, 14.6};
  std::sort(loads.rbegin(), loads.rend());
  std::vector<cluster::ExportCandidate> cands;
  for (std::size_t i = 0; i < loads.size(); ++i)
    cands.push_back({{mds::InodeId(i + 2), {}}, loads[i], 1});
  const double target = 55.6;

  for (const char* sel : {"big_first", "small_first", "big_small", "half"}) {
    const auto picks = cluster::run_selector(sel, cands, target);
    std::printf("  %-12s ships %zu dirfrags, load %5.1f (|d|=%4.1f)\n", sel,
                picks.size(), cluster::selection_load(cands, picks),
                std::abs(cluster::selection_load(cands, picks) - target));
  }
  const auto scaled = cluster::run_selector("big_first", cands, target * 0.8);
  std::printf(
      "  original balancer (target scaled by mds_bal_need_min=0.8): ships %zu "
      "dirfrags, load %.1f — the paper's under-shipping anecdote\n",
      scaled.size(), cluster::selection_load(cands, scaled));
  const auto best = cluster::best_selection(
      {"big_first", "small_first", "big_small", "half"}, cands, target);
  std::printf("  mantle best_selection picks load %.1f (big_small)\n",
              cluster::selection_load(cands, best));
  return 0;
}
