/// Robustness harness — crash/recovery timeline (no paper figure; this
/// exercises the fault layer the way fig07 exercises spill).
///
/// Kills one of three MDS ranks in the middle of a create-heavy shared
/// workload, restarts it later, and reports the throughput timeline
/// around the outage: steady state before the crash, the dip while the
/// rank is down, and the level after replay completes. Sweeps the client
/// retry timeout to show its effect on time-to-recover (a short timeout
/// resubmits parked ops sooner; 0 disables retries and strands in-flight
/// ops on the dead rank).

#include "fault/fault.hpp"
#include "harness.hpp"

using namespace mantle;

namespace {

struct FaultTimeline {
  double pre_tput = 0.0;    // completed ops/s in [2s, crash)
  double down_tput = 0.0;   // while the rank is dead
  double post_tput = 0.0;   // same-length window after replay completes
  double recover_s = 0.0;   // restart -> ReplayComplete
  double makespan_s = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t dropped = 0;
  std::uint64_t aborted = 0;
};

FaultTimeline run_once(std::size_t files, Time retry_timeout, Time kCrashAt,
                       Time kRestartAt) {

  sim::ScenarioConfig cfg;
  cfg.cluster.num_mds = 3;
  cfg.cluster.seed = 11;
  cfg.cluster.bal_interval = kSec;
  cfg.cluster.split_size = 300;
  cfg.retry.timeout = retry_timeout;
  cfg.max_time = 10 * kMinute;
  sim::Scenario s(cfg);
  s.cluster().set_balancer_all(
      [](int) { return std::make_unique<balancers::OriginalBalancer>(); });
  for (int c = 0; c < 6; ++c)
    s.add_client(
        workloads::make_shared_create_workload(c, "/shared", files, 200));

  fault::FaultPlan plan;
  plan.seed = 11;
  plan.crashes.push_back({kCrashAt, 1});
  plan.restarts.push_back({kRestartAt, 1});
  fault::FaultInjector inj(plan);
  inj.arm(s.cluster());

  std::vector<std::pair<Time, std::uint64_t>> samples;
  s.add_probe(kSec / 2, [&](Time t) {
    samples.emplace_back(t, s.cluster().total_completed());
  });

  FaultTimeline tl;
  tl.makespan_s = to_seconds(s.run());
  bench::dump_observability("fault_recovery", cfg.cluster.seed, s);
  for (const auto& c : s.clients()) {
    tl.completed += c->ops_completed();
    tl.failed += c->ops_failed();
    tl.retries += c->retries();
  }
  tl.dropped = s.cluster().requests_dropped();
  tl.aborted = s.cluster().aborted_migrations().size();

  Time recovered = kRestartAt;
  for (const auto& e : s.cluster().recovery_log())
    if (e.kind == cluster::RecoveryEvent::Kind::ReplayComplete)
      recovered = e.at;
  tl.recover_s = to_seconds(recovered - kRestartAt);

  auto ops_at = [&](Time t) -> double {
    std::uint64_t prev = 0;
    for (const auto& [st, n] : samples) {
      if (st > t) break;
      prev = n;
    }
    return static_cast<double>(prev);
  };
  const double w = to_seconds(kCrashAt - 2 * kSec);
  tl.pre_tput = (ops_at(kCrashAt) - ops_at(2 * kSec)) / w;
  tl.down_tput =
      (ops_at(kRestartAt) - ops_at(kCrashAt)) / to_seconds(kRestartAt - kCrashAt);
  const Time w0 = recovered + 2 * kSec;
  tl.post_tput = (ops_at(w0 + (kCrashAt - 2 * kSec)) - ops_at(w0)) / w;
  return tl;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  // The outage must sit in the middle of the run: quick mode shrinks the
  // workload, so the crash/restart times shrink with it.
  const std::size_t files = quick ? 12000 : 30000;
  const Time crash_at = quick ? 3 * kSec : 8 * kSec;
  const Time restart_at = quick ? 6 * kSec : 16 * kSec;

  std::printf(
      "# Fault recovery: crash mds1 of 3 at t=%.0fs, restart at t=%.0fs\n"
      "# (6 clients, shared create-heavy, original balancer)\n",
      to_seconds(crash_at), to_seconds(restart_at));
  std::printf("%9s %9s %10s %10s %10s %9s %8s %8s %8s %8s\n", "retry(s)",
              "mksp(s)", "pre(op/s)", "down(op/s)", "post(op/s)", "recov(s)",
              "retries", "dropped", "aborted", "failed");

  for (const Time timeout : {Time(0), kSec, 2 * kSec, 4 * kSec}) {
    const FaultTimeline tl = run_once(files, timeout, crash_at, restart_at);
    std::printf("%9.0f %9.1f %10.0f %10.0f %10.0f %9.2f %8llu %8llu %8llu %8llu\n",
                to_seconds(timeout), tl.makespan_s, tl.pre_tput, tl.down_tput,
                tl.post_tput, tl.recover_s,
                static_cast<unsigned long long>(tl.retries),
                static_cast<unsigned long long>(tl.dropped),
                static_cast<unsigned long long>(tl.aborted),
                static_cast<unsigned long long>(tl.failed));
  }
  std::printf(
      "\n# expectation: with retries on, post-recovery throughput returns to\n"
      "# the pre-fault level and no ops fail beyond losing shared-mkdir\n"
      "# races; retry(s)=0 strands in-flight ops (failed > 0, larger mksp\n"
      "# only bounded by the run ending)\n");
  return 0;
}
