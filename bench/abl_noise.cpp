/// Ablation — instantaneous-measurement noise (DESIGN.md §5.2).
///
/// §2.2.2: "Instantaneous measurements ... make the balancer sensitive
/// to common system perturbations". Fill & Spill triggers on a CPU
/// threshold, so its decisions inherit the noise of the CPU metric.
/// Sweeping the measurement noise shows the decision flapping: with a
/// noisy metric the spill fires earlier/later per seed and run-to-run
/// variance rises.

#include "harness.hpp"

using namespace mantle;

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const std::size_t files = quick ? 6000 : 25000;
  const std::vector<std::uint64_t> seeds = {11, 12, 13, 14, 15, 16};

  std::printf("# Ablation: CPU measurement noise vs Fill & Spill stability\n");
  std::printf("%12s %12s %10s %12s %10s\n", "noise (pp)", "runtime(s)",
              "rt sd", "migrations", "mig sd");

  for (const double noise : {0.0, 2.0, 4.0, 10.0, 20.0}) {
    bench::RunSpec spec;
    spec.label = "abl_noise";
    spec.num_mds = 2;
    spec.base.bal_interval = kSec;
    spec.base.cpu_noise_pct = noise;
    spec.base.split_size = quick ? 2500 : 12500;
    spec.balancer = [](int) {
      // Two clients hold one MDS at ~45% CPU: right at the threshold,
      // where measurement noise decides whether the balancer fires.
      balancers::FillSpillBalancer::Options opt;
      opt.cpu_threshold = 46.0;
      return std::make_unique<balancers::FillSpillBalancer>(opt);
    };
    spec.add_clients = [files](sim::Scenario& s) {
      for (int c = 0; c < 2; ++c)
        s.add_client(workloads::make_shared_create_workload(c, "/shared", files, 100));
    };
    const bench::SeededStats st = bench::run_seeds_parallel(spec, seeds);
    std::printf("%12.1f %12.1f %10.3f %12.1f %10.2f\n", noise,
                st.runtime.mean(), st.runtime.stddev(), st.migrations.mean(),
                st.migrations.stddev());
  }
  std::printf(
      "\n# expectation: noise near the threshold raises run-to-run stddev of\n"
      "# both runtime and migration count (decision flapping)\n");
  return 0;
}
