#pragma once

#include <string>
#include <vector>

/// \file lexer.hpp
/// Tokenizer for luam. Handles the full Lua 5.1 token set that the parser
/// supports: names, keywords, numbers (decimal, fractional with leading
/// dot, exponents, hex), short strings with escapes, line comments `--`
/// and block comments `--[[ ... ]]`.

namespace mantle::lua {

enum class Tok {
  // literals / atoms
  Eof, Name, Number, String,
  // keywords
  And, Break, Do, Else, Elseif, End, False, For, Function, If, In, Local,
  Nil, Not, Or, Repeat, Return, Then, True, Until, While,
  // symbols
  Plus, Minus, Star, Slash, Percent, Caret, Hash,
  Eq, Ne, Le, Ge, Lt, Gt, Assign,
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semi, Colon, Comma, Dot, Concat, Ellipsis,
};

const char* tok_name(Tok t);

struct Token {
  Tok kind = Tok::Eof;
  std::string text;   // name / string payload / raw number text
  double number = 0;  // value for Tok::Number
  int line = 0;
};

/// Tokenize a chunk. Throws LuaError (with chunk name + line) on malformed
/// input: unterminated strings/comments, bad escapes, bad numbers, stray
/// characters.
std::vector<Token> tokenize(const std::string& src, const std::string& chunk_name);

}  // namespace mantle::lua
