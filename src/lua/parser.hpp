#pragma once

#include <string>

#include "lua/ast.hpp"

/// \file parser.hpp
/// Recursive-descent parser for luam with Lua 5.1 operator precedence.
/// parse() throws LuaError on syntax errors; the Mantle policy validator
/// uses this to reject malformed balancers before they reach a live MDS.

namespace mantle::lua {

/// Parse + resolve: the returned chunk has every Name bound to a frame
/// slot or the globals table and every block annotated with its frame
/// size (see resolve.cpp), so it is ready for slot-based execution.
ChunkPtr parse(const std::string& src, const std::string& chunk_name);

/// The resolution pass alone (parse() already calls it).
void resolve_chunk(Chunk& chunk);

}  // namespace mantle::lua
