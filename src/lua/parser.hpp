#pragma once

#include <string>

#include "lua/ast.hpp"

/// \file parser.hpp
/// Recursive-descent parser for luam with Lua 5.1 operator precedence.
/// parse() throws LuaError on syntax errors; the Mantle policy validator
/// uses this to reject malformed balancers before they reach a live MDS.

namespace mantle::lua {

ChunkPtr parse(const std::string& src, const std::string& chunk_name);

}  // namespace mantle::lua
