#include <algorithm>
#include <cmath>
#include <cstdio>

#include "lua/interp.hpp"

/// \file stdlib.cpp
/// Built-in library for luam: the base functions plus `math`, `string`
/// and `table` subsets. `max`/`min` are also installed as plain globals
/// because the Mantle environment (paper Table 2) exposes them that way.

namespace mantle::lua {

namespace {

Value arg_or_nil(const std::vector<Value>& args, std::size_t i) {
  return i < args.size() ? args[i] : Value{};
}

double need_number(const std::vector<Value>& args, std::size_t i,
                   const char* fname) {
  const auto n = arg_or_nil(args, i).to_number();
  if (!n)
    throw LuaError(std::string("bad argument #") + std::to_string(i + 1) +
                   " to '" + fname + "' (number expected, got " +
                   arg_or_nil(args, i).type_name() + ")");
  return *n;
}

/// A number argument that must convert to an integer: finite and within
/// the exactly-representable range. `table.insert(t, -math.huge, v)` must
/// raise, not spin forever shifting slots, and `%d` of NaN must raise,
/// not hit undefined casts.
long long need_int(const std::vector<Value>& args, std::size_t i,
                   const char* fname) {
  const double d = need_number(args, i, fname);
  if (!std::isfinite(d) || std::fabs(d) > 9007199254740992.0)
    throw LuaError(std::string("bad argument #") + std::to_string(i + 1) +
                   " to '" + fname + "' (number has no integer representation)");
  return static_cast<long long>(d);
}

/// Like need_int but tolerant of the `sub(s, 1, math.huge)` idiom:
/// infinities clamp to the integer range instead of raising. NaN still
/// raises — there is no sane clamp for it.
long long need_int_clamped(const std::vector<Value>& args, std::size_t i,
                           const char* fname) {
  const double d = need_number(args, i, fname);
  if (std::isnan(d))
    throw LuaError(std::string("bad argument #") + std::to_string(i + 1) +
                   " to '" + fname + "' (number has no integer representation)");
  if (d >= 9007199254740992.0) return 9007199254740992LL;
  if (d <= -9007199254740992.0) return -9007199254740992LL;
  return static_cast<long long>(d);
}

/// Deterministic text for a non-finite double under any %f/%e/%g-family
/// conversion: glibc prints "-nan" for negative NaNs and platforms vary
/// in capitalization, either of which breaks byte-identical runs.
const char* nonfinite_text(double d) {
  if (std::isnan(d)) return "nan";
  return d > 0 ? "inf" : "-inf";
}

std::string need_string(const std::vector<Value>& args, std::size_t i,
                        const char* fname) {
  const Value v = arg_or_nil(args, i);
  if (v.is_string()) return v.str();
  if (v.is_number()) return v.to_display_string();
  throw LuaError(std::string("bad argument #") + std::to_string(i + 1) +
                 " to '" + fname + "' (string expected, got " +
                 std::string(v.type_name()) + ")");
}

TablePtr need_table(const std::vector<Value>& args, std::size_t i,
                    const char* fname) {
  const Value v = arg_or_nil(args, i);
  if (!v.is_table())
    throw LuaError(std::string("bad argument #") + std::to_string(i + 1) +
                   " to '" + fname + "' (table expected, got " +
                   std::string(v.type_name()) + ")");
  return v.table();
}

/// Stateless `next` over a table: numeric keys in order, then string keys.
std::vector<Value> table_next(const TablePtr& t, const Value& key) {
  if (key.is_nil()) {
    if (!t->num_keys.empty()) {
      const auto it = t->num_keys.begin();
      return {Value(it->first), it->second};
    }
    if (!t->str_keys.empty()) {
      const auto it = t->str_keys.begin();
      return {Value(it->first), it->second};
    }
    return {Value{}};
  }
  if (key.is_number()) {
    auto it = t->num_keys.upper_bound(key.number());
    if (it != t->num_keys.end()) return {Value(it->first), it->second};
    if (!t->str_keys.empty()) {
      const auto sit = t->str_keys.begin();
      return {Value(sit->first), sit->second};
    }
    return {Value{}};
  }
  if (key.is_string()) {
    auto it = t->str_keys.upper_bound(key.str());
    if (it != t->str_keys.end()) return {Value(it->first), it->second};
    return {Value{}};
  }
  return {Value{}};
}

std::string lua_format(const std::vector<Value>& args) {
  const std::string fmt = need_string(args, 0, "format");
  std::string out;
  std::size_t argi = 1;
  char buf[128];
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') {
      out += fmt[i];
      continue;
    }
    ++i;
    if (i >= fmt.size()) throw LuaError("invalid format string to 'format'");
    if (fmt[i] == '%') {
      out += '%';
      continue;
    }
    // Copy the conversion spec (flags, width, precision).
    std::string spec = "%";
    while (i < fmt.size() &&
           (std::string("-+ #0123456789.").find(fmt[i]) != std::string::npos)) {
      spec += fmt[i++];
    }
    if (i >= fmt.size()) throw LuaError("invalid format string to 'format'");
    const char conv = fmt[i];
    switch (conv) {
      case 'd':
      case 'i': {
        spec += "lld";
        std::snprintf(buf, sizeof(buf), spec.c_str(),
                      need_int(args, argi++, "format"));
        out += buf;
        break;
      }
      case 'u':
      case 'x':
      case 'X': {
        spec += "ll";
        spec += conv;
        const long long v = need_int(args, argi++, "format");
        if (v < 0)
          throw LuaError("bad argument to 'format' (negative number for '%" +
                         std::string(1, conv) + "')");
        std::snprintf(buf, sizeof(buf), spec.c_str(),
                      static_cast<unsigned long long>(v));
        out += buf;
        break;
      }
      case 'f':
      case 'F':
      case 'e':
      case 'E':
      case 'g':
      case 'G': {
        const double v = need_number(args, argi++, "format");
        if (!std::isfinite(v)) {
          // Pinned text, ignoring width/precision: "nan" / "inf" / "-inf"
          // on every platform.
          out += nonfinite_text(v);
          break;
        }
        spec += conv;
        std::snprintf(buf, sizeof(buf), spec.c_str(), v);
        out += buf;
        break;
      }
      case 's': {
        const std::string s = arg_or_nil(args, argi).is_nil()
                                  ? "nil"
                                  : arg_or_nil(args, argi).to_display_string();
        ++argi;
        spec += 's';
        if (spec == "%s") {
          out += s;
        } else {
          std::snprintf(buf, sizeof(buf), spec.c_str(), s.c_str());
          out += buf;
        }
        break;
      }
      case 'q': {
        out += '"';
        for (char ch : need_string(args, argi++, "format")) {
          if (ch == '"' || ch == '\\') out += '\\';
          if (ch == '\n') {
            out += "\\n";
            continue;
          }
          out += ch;
        }
        out += '"';
        break;
      }
      default:
        throw LuaError(std::string("invalid conversion '%") + conv +
                       "' to 'format'");
    }
  }
  return out;
}

}  // namespace

void Interp::install_stdlib() {
  set_function("print", [](std::vector<Value>& args, Interp& in) {
    std::string line;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i) line += '\t';
      line += args[i].to_display_string();
    }
    line += '\n';
    in.append_output(line);
    return std::vector<Value>{};
  });

  set_function("type", [](std::vector<Value>& args, Interp&) {
    return std::vector<Value>{Value(std::string(arg_or_nil(args, 0).type_name()))};
  });

  set_function("tostring", [](std::vector<Value>& args, Interp&) {
    return std::vector<Value>{Value(arg_or_nil(args, 0).to_display_string())};
  });

  set_function("tonumber", [](std::vector<Value>& args, Interp&) {
    const auto n = arg_or_nil(args, 0).to_number();
    return std::vector<Value>{n ? Value(*n) : Value{}};
  });

  set_function("assert", [](std::vector<Value>& args, Interp&) {
    if (!arg_or_nil(args, 0).truthy()) {
      const Value msg = arg_or_nil(args, 1);
      throw LuaError(msg.is_nil() ? "assertion failed!"
                                  : msg.to_display_string());
    }
    return args;
  });

  set_function("error", [](std::vector<Value>& args, Interp&) -> std::vector<Value> {
    throw LuaError(arg_or_nil(args, 0).to_display_string());
  });

  set_function("next", [](std::vector<Value>& args, Interp&) {
    return table_next(need_table(args, 0, "next"), arg_or_nil(args, 1));
  });

  // pcall(fn, ...) -> true, results... | false, errmsg. Lets policies
  // guard risky sections instead of aborting the whole balancing tick.
  set_function("pcall", [](std::vector<Value>& args, Interp& in) {
    if (args.empty() || !args[0].is_callable())
      return std::vector<Value>{Value(false),
                                Value("attempt to call a non-function")};
    std::vector<Value> fargs(args.begin() + 1, args.end());
    try {
      std::vector<Value> r = in.call_callable(args[0].callable(), std::move(fargs));
      r.insert(r.begin(), Value(true));
      return r;
    } catch (const LuaError& e) {
      return std::vector<Value>{Value(false), Value(std::string(e.what()))};
    }
  });

  // select('#', ...) / select(n, ...).
  set_function("select", [](std::vector<Value>& args, Interp&) {
    const Value sel = arg_or_nil(args, 0);
    if (sel.is_string() && sel.str() == "#")
      return std::vector<Value>{Value(static_cast<double>(args.size() - 1))};
    const auto n = sel.to_number();
    if (!n || !(*n >= 1.0) || *n != std::floor(*n) || *n > 1e15)
      throw LuaError("bad argument #1 to 'select' (index out of range)");
    const auto start = static_cast<std::size_t>(*n);
    if (start >= args.size()) return std::vector<Value>{};
    return std::vector<Value>(args.begin() + static_cast<std::ptrdiff_t>(start),
                              args.end());
  });

  // unpack(t [, i [, j]]) -> t[i], ..., t[j].
  set_function("unpack", [](std::vector<Value>& args, Interp&) {
    TablePtr t = need_table(args, 0, "unpack");
    const long long i =
        args.size() > 1 ? need_int_clamped(args, 1, "unpack") : 1;
    const long long j = args.size() > 2
                            ? need_int_clamped(args, 2, "unpack")
                            : static_cast<long long>(t->length());
    // `unpack(t, 1, math.huge)` must raise, not allocate until the
    // machine dies; the cap is far above any sane hook's needs.
    if (j - i >= 1 << 20)
      throw LuaError("too many results to unpack");
    std::vector<Value> out;
    for (long long k = i; k <= j; ++k)
      out.push_back(t->get(Value(static_cast<double>(k))));
    return out;
  });

  set_function("pairs", [](std::vector<Value>& args, Interp&) {
    TablePtr t = need_table(args, 0, "pairs");
    auto iter = make_builtin("next", [](std::vector<Value>& a, Interp&) {
      return table_next(need_table(a, 0, "next"), arg_or_nil(a, 1));
    });
    return std::vector<Value>{Value(iter), Value(t), Value{}};
  });

  set_function("ipairs", [](std::vector<Value>& args, Interp&) {
    TablePtr t = need_table(args, 0, "ipairs");
    auto iter = make_builtin("ipairs-iter", [](std::vector<Value>& a, Interp&) {
      TablePtr tt = need_table(a, 0, "ipairs");
      const double i = need_number(a, 1, "ipairs") + 1.0;
      Value v = tt->get(Value(i));
      if (v.is_nil()) return std::vector<Value>{Value{}};
      return std::vector<Value>{Value(i), std::move(v)};
    });
    return std::vector<Value>{Value(iter), Value(t), Value(0.0)};
  });

  // max/min as globals, as in the Mantle environment (paper Table 2).
  set_function("max", [](std::vector<Value>& args, Interp&) {
    double m = need_number(args, 0, "max");
    for (std::size_t i = 1; i < args.size(); ++i)
      m = std::max(m, need_number(args, i, "max"));
    return std::vector<Value>{Value(m)};
  });
  set_function("min", [](std::vector<Value>& args, Interp&) {
    double m = need_number(args, 0, "min");
    for (std::size_t i = 1; i < args.size(); ++i)
      m = std::min(m, need_number(args, i, "min"));
    return std::vector<Value>{Value(m)};
  });

  // ---- math -----------------------------------------------------------
  TablePtr math = make_table();
  auto math_fn1 = [&](const char* name, double (*fn)(double)) {
    math->set(Value(name),
              Value(make_builtin(name, [fn, name](std::vector<Value>& a, Interp&) {
                return std::vector<Value>{Value(fn(need_number(a, 0, name)))};
              })));
  };
  math_fn1("floor", [](double x) { return std::floor(x); });
  math_fn1("ceil", [](double x) { return std::ceil(x); });
  math_fn1("abs", [](double x) { return std::fabs(x); });
  math_fn1("sqrt", [](double x) { return std::sqrt(x); });
  math_fn1("exp", [](double x) { return std::exp(x); });
  math_fn1("log", [](double x) { return std::log(x); });
  math_fn1("sin", [](double x) { return std::sin(x); });
  math_fn1("cos", [](double x) { return std::cos(x); });
  math->set(Value("pow"),
            Value(make_builtin("pow", [](std::vector<Value>& a, Interp&) {
              return std::vector<Value>{Value(
                  std::pow(need_number(a, 0, "pow"), need_number(a, 1, "pow")))};
            })));
  math->set(Value("fmod"),
            Value(make_builtin("fmod", [](std::vector<Value>& a, Interp&) {
              const double x = need_number(a, 0, "fmod");
              const double y = need_number(a, 1, "fmod");
              // fmod(x, 0) is a platform NaN in C; raise instead so a
              // policy bug surfaces as a counted hook error, not as a NaN
              // silently steering migration sizing.
              if (y == 0.0)
                throw LuaError("bad argument #2 to 'fmod' (zero)");
              return std::vector<Value>{Value(std::fmod(x, y))};
            })));
  math->set(Value("max"), get_global("max"));
  math->set(Value("min"), get_global("min"));
  math->set(Value("huge"), Value(HUGE_VAL));
  math->set(Value("pi"), Value(3.14159265358979323846));
  math->set(Value("random"),
            Value(make_builtin("random", [](std::vector<Value>& a, Interp& in) {
              if (a.empty())
                return std::vector<Value>{Value(in.rng().next_double())};
              if (a.size() == 1) {
                const auto hi = static_cast<std::uint64_t>(
                    need_number(a, 0, "random"));
                return std::vector<Value>{
                    Value(static_cast<double>(in.rng().uniform(1, hi)))};
              }
              const auto lo =
                  static_cast<std::uint64_t>(need_number(a, 0, "random"));
              const auto hi =
                  static_cast<std::uint64_t>(need_number(a, 1, "random"));
              return std::vector<Value>{
                  Value(static_cast<double>(in.rng().uniform(lo, hi)))};
            })));
  set_global("math", Value(math));

  // ---- string ----------------------------------------------------------
  TablePtr str = make_table();
  str->set(Value("len"),
           Value(make_builtin("len", [](std::vector<Value>& a, Interp&) {
             return std::vector<Value>{
                 Value(static_cast<double>(need_string(a, 0, "len").size()))};
           })));
  str->set(Value("sub"),
           Value(make_builtin("sub", [](std::vector<Value>& a, Interp&) {
             const std::string s = need_string(a, 0, "sub");
             const auto n = static_cast<long long>(s.size());
             long long i = need_int_clamped(a, 1, "sub");
             long long j = a.size() > 2 ? need_int_clamped(a, 2, "sub") : -1;
             if (i < 0) i = std::max<long long>(n + i + 1, 1);
             if (i < 1) i = 1;
             if (j < 0) j = n + j + 1;
             if (j > n) j = n;
             if (i > j) return std::vector<Value>{Value(std::string())};
             return std::vector<Value>{Value(s.substr(
                 static_cast<std::size_t>(i - 1), static_cast<std::size_t>(j - i + 1)))};
           })));
  str->set(Value("upper"),
           Value(make_builtin("upper", [](std::vector<Value>& a, Interp&) {
             std::string s = need_string(a, 0, "upper");
             for (char& c : s) c = static_cast<char>(std::toupper(c));
             return std::vector<Value>{Value(std::move(s))};
           })));
  str->set(Value("lower"),
           Value(make_builtin("lower", [](std::vector<Value>& a, Interp&) {
             std::string s = need_string(a, 0, "lower");
             for (char& c : s) c = static_cast<char>(std::tolower(c));
             return std::vector<Value>{Value(std::move(s))};
           })));
  str->set(Value("rep"),
           Value(make_builtin("rep", [](std::vector<Value>& a, Interp&) {
             const std::string s = need_string(a, 0, "rep");
             const long long n = need_int_clamped(a, 1, "rep");
             // Bound the result: a hook asking for gigabytes of string is
             // a bug, and the budget meter cannot see inside builtins.
             if (n > 0 && static_cast<unsigned long long>(n) * s.size() >
                              (1ULL << 24))
               throw LuaError("resulting string too large in 'rep'");
             std::string out;
             for (long long i = 0; i < n; ++i) out += s;
             return std::vector<Value>{Value(std::move(out))};
           })));
  str->set(Value("find"),
           Value(make_builtin("find", [](std::vector<Value>& a, Interp&) {
             // Plain substring find (no patterns).
             const std::string s = need_string(a, 0, "find");
             const std::string needle = need_string(a, 1, "find");
             const auto pos = s.find(needle);
             if (pos == std::string::npos) return std::vector<Value>{Value{}};
             return std::vector<Value>{
                 Value(static_cast<double>(pos + 1)),
                 Value(static_cast<double>(pos + needle.size()))};
           })));
  str->set(Value("format"),
           Value(make_builtin("format", [](std::vector<Value>& a, Interp&) {
             return std::vector<Value>{Value(lua_format(a))};
           })));
  set_global("string", Value(str));

  // ---- table -----------------------------------------------------------
  TablePtr tbl = make_table();
  tbl->set(Value("insert"),
           Value(make_builtin("insert", [](std::vector<Value>& a, Interp&) {
             TablePtr t = need_table(a, 0, "insert");
             if (a.size() <= 2) {
               t->set(Value(t->length() + 1.0), arg_or_nil(a, 1));
             } else {
               const double pos = static_cast<double>(need_int(a, 1, "insert"));
               // Out-of-bounds positions raise (as in Lua 5.2+): a
               // far-negative pos would otherwise walk the shift loop for
               // billions of iterations the budget meter cannot see.
               if (pos < 1.0 || pos > t->length() + 1.0)
                 throw LuaError(
                     "bad argument #2 to 'insert' (position out of bounds)");
               // Shift elements [pos, len] up by one.
               for (double i = t->length(); i >= pos; i -= 1.0)
                 t->set(Value(i + 1.0), t->get(Value(i)));
               t->set(Value(pos), arg_or_nil(a, 2));
             }
             return std::vector<Value>{};
           })));
  tbl->set(Value("remove"),
           Value(make_builtin("remove", [](std::vector<Value>& a, Interp&) {
             TablePtr t = need_table(a, 0, "remove");
             const double len = t->length();
             if (len == 0.0) return std::vector<Value>{Value{}};
             const double pos =
                 a.size() > 1 ? static_cast<double>(need_int(a, 1, "remove"))
                              : len;
             if (pos < 1.0 || pos > len)
               throw LuaError(
                   "bad argument #2 to 'remove' (position out of bounds)");
             Value removed = t->get(Value(pos));
             for (double i = pos; i < len; i += 1.0)
               t->set(Value(i), t->get(Value(i + 1.0)));
             t->set(Value(len), Value{});
             return std::vector<Value>{std::move(removed)};
           })));
  tbl->set(Value("concat"),
           Value(make_builtin("concat", [](std::vector<Value>& a, Interp&) {
             TablePtr t = need_table(a, 0, "concat");
             const std::string sep = a.size() > 1 ? need_string(a, 1, "concat") : "";
             std::string out;
             const double len = t->length();
             for (double i = 1.0; i <= len; i += 1.0) {
               if (i > 1.0) out += sep;
               out += t->get(Value(i)).to_display_string();
             }
             return std::vector<Value>{Value(std::move(out))};
           })));
  tbl->set(Value("sort"),
           Value(make_builtin("sort", [](std::vector<Value>& a, Interp& in) {
             TablePtr t = need_table(a, 0, "sort");
             const Value cmp = arg_or_nil(a, 1);
             const auto len = static_cast<std::size_t>(t->length());
             std::vector<Value> items;
             items.reserve(len);
             for (std::size_t i = 1; i <= len; ++i)
               items.push_back(t->get(Value(static_cast<double>(i))));
             auto less = [&](const Value& x, const Value& y) {
               if (!cmp.is_nil()) {
                 std::vector<Value> cargs{x, y};
                 auto r = in.call_callable(cmp.callable(), std::move(cargs));
                 return !r.empty() && r[0].truthy();
               }
               if (x.is_number() && y.is_number()) return x.number() < y.number();
               if (x.is_string() && y.is_string()) return x.str() < y.str();
               throw LuaError("attempt to compare incompatible values in sort");
             };
             std::stable_sort(items.begin(), items.end(), less);
             for (std::size_t i = 0; i < items.size(); ++i)
               t->set(Value(static_cast<double>(i + 1)), items[i]);
             return std::vector<Value>{};
           })));
  set_global("table", Value(tbl));
}

}  // namespace mantle::lua
