#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "lua/ast.hpp"
#include "lua/value.hpp"

/// \file interp.hpp
/// Tree-walking interpreter for luam. One Interp is one isolated "VM":
/// the Mantle policy engine creates one per MDS so balancer state cannot
/// leak between nodes. Execution is metered by an instruction budget —
/// this is what makes the paper's future-work item ("check the logic
/// before injecting policies"; a `while 1` must not take the MDS down)
/// implementable: a dry run with a finite budget terminates.

namespace mantle::lua {

struct Scope {
  std::unordered_map<std::string, Value> vars;
  std::shared_ptr<Scope> parent;

  /// Innermost binding of `name`, or nullptr if not a local.
  Value* find(const std::string& name);
};

/// Outcome of loading/running a chunk.
struct RunResult {
  bool ok = false;
  std::vector<Value> values;  // values from a top-level `return`
  std::string error;

  Value first() const { return values.empty() ? Value{} : values.front(); }
};

class Interp {
 public:
  Interp();

  /// Parse + execute a chunk against the global environment. Errors
  /// (syntax, runtime, budget exhaustion) are captured in the result —
  /// they never escape as C++ exceptions, so a broken policy cannot
  /// unwind the MDS.
  RunResult run(const std::string& src, const std::string& chunk_name = "policy");

  /// Evaluate a single expression and return its value.
  RunResult eval(const std::string& expr_src, const std::string& chunk_name = "expr");

  /// Call a Lua value that must be callable.
  RunResult call(const Value& fn, std::vector<Value> args);

  // -- Globals -------------------------------------------------------------
  void set_global(const std::string& name, Value v);
  Value get_global(const std::string& name) const;
  const TablePtr& globals() const { return globals_; }

  /// Convenience: register a C++ builtin function as a global.
  void set_function(const std::string& name, Callable::Builtin fn);

  // -- Budget --------------------------------------------------------------
  /// Maximum number of interpreter steps per run()/eval()/call(); 0 means
  /// unlimited. Each statement and expression node costs one step.
  void set_budget(std::uint64_t steps) { budget_ = steps; }
  std::uint64_t steps_used() const { return steps_used_; }

  /// Seed for math.random (deterministic; default seed 0).
  void seed_random(std::uint64_t seed) { rng_ = Rng(seed); }
  Rng& rng() { return rng_; }

  /// Output accumulated by print(); cleared on demand.
  const std::string& output() const { return output_; }
  void clear_output() { output_.clear(); }
  void append_output(const std::string& s) { output_ += s; }

  /// True while an error message should carry "<chunk>:<line>:" prefixes.
  [[noreturn]] void runtime_error(int line, const std::string& msg) const;

  // -- Internal execution (used by Callable dispatch) ------------------------
  std::vector<Value> call_callable(const CallablePtr& fn, std::vector<Value> args);

 private:
  enum class Flow { Normal, Break, Return };

  struct ExecState {
    Flow flow = Flow::Normal;
    std::vector<Value> ret;
  };

  void step(int line);

  ExecState exec_block(const Block& block, const std::shared_ptr<Scope>& scope);
  ExecState exec_stmt(const Stmt& s, const std::shared_ptr<Scope>& scope);

  Value eval_expr(const Expr& e, const std::shared_ptr<Scope>& scope);
  std::vector<Value> eval_multi(const Expr& e, const std::shared_ptr<Scope>& scope);
  std::vector<Value> eval_exprlist(const std::vector<ExprPtr>& list,
                                   const std::shared_ptr<Scope>& scope);

  Value eval_binary(const Expr& e, const std::shared_ptr<Scope>& scope);
  Value eval_unary(const Expr& e, const std::shared_ptr<Scope>& scope);
  Value eval_table(const Expr& e, const std::shared_ptr<Scope>& scope);
  std::vector<Value> eval_call(const Expr& e, const std::shared_ptr<Scope>& scope);

  void assign(const Expr& target, Value v, const std::shared_ptr<Scope>& scope);

  double arith_operand(const Value& v, int line, const char* side) const;

  void install_stdlib();

  TablePtr globals_;
  std::vector<ChunkPtr> chunks_;  // keeps ASTs alive for registered closures
  std::uint64_t budget_ = 0;
  std::uint64_t steps_used_ = 0;
  std::string chunk_name_;
  std::string output_;
  Rng rng_{0};
  int call_depth_ = 0;
  static constexpr int kMaxCallDepth = 200;
};

/// Syntax-check only (no execution). Returns empty string on success or the
/// error message on failure.
std::string check_syntax(const std::string& src, const std::string& chunk_name = "policy");

}  // namespace mantle::lua
