#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "lua/ast.hpp"
#include "lua/value.hpp"

/// \file interp.hpp
/// Tree-walking interpreter for luam. One Interp is one isolated "VM":
/// the Mantle policy engine creates one per MDS so balancer state cannot
/// leak between nodes. Execution is metered by an instruction budget —
/// this is what makes the paper's future-work item ("check the logic
/// before injecting policies"; a `while 1` must not take the MDS down)
/// implementable: a dry run with a finite budget terminates.
///
/// Compile-once pipeline: compile()/compile_expr() produce a
/// CompiledChunk (parse + name resolution, done exactly once) that
/// run(const CompiledChunk&) executes any number of times. Variable
/// accesses are slot indices into a chain of Frames resolved at compile
/// time (resolve.cpp); frames come from a per-Interp pool, so steady-state
/// hook evaluation allocates nothing on the scope path.

namespace mantle::lua {

/// Runtime scope frame: a flat slot vector plus the lexical parent link.
/// Closures capture frames by reference (shared_ptr), exactly like the
/// old per-block Scope maps — only the lookup is now an index.
struct Frame {
  std::vector<Value> slots;
  std::shared_ptr<Frame> parent;
};

using FramePtr = std::shared_ptr<Frame>;

/// A source string compiled exactly once (lex + parse + resolve). Cheap
/// to copy (shared AST); safe to run on any Interp. On a syntax error
/// `chunk` is null and `error` carries the message — running a failed
/// CompiledChunk yields a failed RunResult with that message, so callers
/// can treat compile and runtime errors uniformly.
struct CompiledChunk {
  ChunkPtr chunk;
  std::string error;

  bool ok() const { return chunk != nullptr; }
};

/// Compile a chunk (sequence of statements).
CompiledChunk compile(const std::string& src,
                      const std::string& chunk_name = "policy");

/// Compile a single expression: wraps it as `return (<src>)` once, at
/// compile time — the form Interp::eval() used to rebuild on every call.
CompiledChunk compile_expr(const std::string& expr_src,
                           const std::string& chunk_name = "expr");

/// Outcome of loading/running a chunk.
struct RunResult {
  bool ok = false;
  std::vector<Value> values;  // values from a top-level `return`
  std::string error;

  Value first() const { return values.empty() ? Value{} : values.front(); }
};

class Interp {
 public:
  Interp();

  /// Execute a pre-compiled chunk against the global environment. Errors
  /// (compile, runtime, budget exhaustion) are captured in the result —
  /// they never escape as C++ exceptions, so a broken policy cannot
  /// unwind the MDS.
  RunResult run(const CompiledChunk& chunk);

  /// Parse + execute in one call (compiles every time; hot callers should
  /// compile() once and reuse).
  RunResult run(const std::string& src, const std::string& chunk_name = "policy");

  /// Evaluate a single expression and return its value (compiles every
  /// time; hot callers should compile_expr() once and reuse).
  RunResult eval(const std::string& expr_src, const std::string& chunk_name = "expr");

  /// Call a Lua value that must be callable.
  RunResult call(const Value& fn, std::vector<Value> args);

  // -- Globals -------------------------------------------------------------
  void set_global(const std::string& name, Value v);
  Value get_global(const std::string& name) const;
  const TablePtr& globals() const { return globals_; }

  /// Convenience: register a C++ builtin function as a global.
  void set_function(const std::string& name, Callable::Builtin fn);

  // -- Budget --------------------------------------------------------------
  /// Maximum number of interpreter steps per run()/eval()/call(); 0 means
  /// unlimited. Each statement and expression node costs one step.
  void set_budget(std::uint64_t steps) { budget_ = steps; }
  std::uint64_t steps_used() const { return steps_used_; }

  /// Seed for math.random (deterministic; default seed 0).
  void seed_random(std::uint64_t seed) { rng_ = Rng(seed); }
  Rng& rng() { return rng_; }

  /// Output accumulated by print(); cleared on demand.
  const std::string& output() const { return output_; }
  void clear_output() { output_.clear(); }
  void append_output(const std::string& s) { output_ += s; }

  /// True while an error message should carry "<chunk>:<line>:" prefixes.
  [[noreturn]] void runtime_error(int line, const std::string& msg) const;

  // -- Internal execution (used by Callable dispatch) ------------------------
  std::vector<Value> call_callable(const CallablePtr& fn, std::vector<Value> args);

 private:
  enum class Flow { Normal, Break, Return };

  struct ExecState {
    Flow flow = Flow::Normal;
    std::vector<Value> ret;
  };

  void step(int line);

  /// Take a frame from the pool (or allocate), sized and parented.
  FramePtr acquire_frame(std::size_t slots, FramePtr parent);
  /// Return a frame to the pool if nothing else (no closure) captured it.
  void release_frame(FramePtr& f);

  /// Execute a block's statements in the given frame (no materialization).
  ExecState exec_stmts(const Block& block, const FramePtr& frame);
  /// Execute a block, materializing its own frame if the resolver said so.
  ExecState exec_block(const Block& block, const FramePtr& frame);
  ExecState exec_stmt(const Stmt& s, const FramePtr& frame);

  /// The frame `hops` levels up the chain (0 = frame itself).
  static Frame* walk(const FramePtr& frame, std::uint16_t hops) {
    Frame* f = frame.get();
    for (std::uint16_t h = hops; h != 0; --h) f = f->parent.get();
    return f;
  }

  Value eval_expr(const Expr& e, const FramePtr& frame);
  std::vector<Value> eval_multi(const Expr& e, const FramePtr& frame);
  std::vector<Value> eval_exprlist(const std::vector<ExprPtr>& list,
                                   const FramePtr& frame);

  Value eval_binary(const Expr& e, const FramePtr& frame);
  Value eval_unary(const Expr& e, const FramePtr& frame);
  Value eval_table(const Expr& e, const FramePtr& frame);
  std::vector<Value> eval_call(const Expr& e, const FramePtr& frame);

  void assign(const Expr& target, Value v, const FramePtr& frame);

  double arith_operand(const Value& v, int line, const char* side) const;

  void install_stdlib();

  TablePtr globals_;
  std::vector<FramePtr> frame_pool_;
  std::uint64_t budget_ = 0;
  std::uint64_t steps_used_ = 0;
  std::string chunk_name_;
  std::string output_;
  Rng rng_{0};
  int call_depth_ = 0;
  static constexpr int kMaxCallDepth = 200;
};

/// Syntax-check only (no execution). Returns empty string on success or the
/// error message on failure.
std::string check_syntax(const std::string& src, const std::string& chunk_name = "policy");

}  // namespace mantle::lua
