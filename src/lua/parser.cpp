#include "lua/parser.hpp"

#include <cmath>

#include "lua/lexer.hpp"
#include "lua/value.hpp"

namespace mantle::lua {

namespace {

/// Fold arithmetic on two numeric literals at parse time, replicating the
/// interpreter's formulas exactly (including Lua's floored modulo and
/// IEEE inf/NaN results) so folded and unfolded code compute identical
/// values. Comparison/concat/logic operators are left to the runtime:
/// they carry type-error and short-circuit semantics.
bool fold_arith(BinOp op, double a, double b, double* out) {
  switch (op) {
    case BinOp::Add: *out = a + b; return true;
    case BinOp::Sub: *out = a - b; return true;
    case BinOp::Mul: *out = a * b; return true;
    case BinOp::Div: *out = a / b; return true;
    case BinOp::Mod: *out = a - std::floor(a / b) * b; return true;
    case BinOp::Pow: *out = std::pow(a, b); return true;
    default: return false;
  }
}

struct BinPriority {
  int left;
  int right;  // smaller right => right-associative
};

bool bin_op_for(Tok t, BinOp& op, BinPriority& pri) {
  switch (t) {
    case Tok::Or: op = BinOp::Or; pri = {1, 1}; return true;
    case Tok::And: op = BinOp::And; pri = {2, 2}; return true;
    case Tok::Lt: op = BinOp::Lt; pri = {3, 3}; return true;
    case Tok::Gt: op = BinOp::Gt; pri = {3, 3}; return true;
    case Tok::Le: op = BinOp::Le; pri = {3, 3}; return true;
    case Tok::Ge: op = BinOp::Ge; pri = {3, 3}; return true;
    case Tok::Ne: op = BinOp::Ne; pri = {3, 3}; return true;
    case Tok::Eq: op = BinOp::Eq; pri = {3, 3}; return true;
    case Tok::Concat: op = BinOp::Concat; pri = {5, 4}; return true;
    case Tok::Plus: op = BinOp::Add; pri = {6, 6}; return true;
    case Tok::Minus: op = BinOp::Sub; pri = {6, 6}; return true;
    case Tok::Star: op = BinOp::Mul; pri = {7, 7}; return true;
    case Tok::Slash: op = BinOp::Div; pri = {7, 7}; return true;
    case Tok::Percent: op = BinOp::Mod; pri = {7, 7}; return true;
    case Tok::Caret: op = BinOp::Pow; pri = {10, 9}; return true;
    default: return false;
  }
}

constexpr int kUnaryPriority = 8;

class Parser {
 public:
  Parser(std::vector<Token> toks, std::string chunk)
      : toks_(std::move(toks)), chunk_(std::move(chunk)) {}

  ChunkPtr run() {
    auto chunk = std::make_shared<Chunk>();
    chunk->name = chunk_;
    chunk->block = parse_block();
    expect(Tok::Eof);
    return chunk;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& ahead() const {
    return pos_ + 1 < toks_.size() ? toks_[pos_ + 1] : toks_.back();
  }
  Token take() { return toks_[pos_++]; }
  bool check(Tok t) const { return cur().kind == t; }
  bool accept(Tok t) {
    if (!check(t)) return false;
    ++pos_;
    return true;
  }
  Token expect(Tok t) {
    if (!check(t))
      fail(std::string("expected '") + tok_name(t) + "', got '" +
           tok_name(cur().kind) + "'");
    return take();
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw LuaError(chunk_ + ":" + std::to_string(cur().line) + ": " + msg);
  }

  static bool block_terminator(Tok t) {
    return t == Tok::Eof || t == Tok::End || t == Tok::Else ||
           t == Tok::Elseif || t == Tok::Until;
  }

  ExprPtr make_expr(Expr::Kind k) {
    auto e = std::make_unique<Expr>();
    e->kind = k;
    e->line = cur().line;
    return e;
  }

  Block parse_block() {
    Block b;
    while (!block_terminator(cur().kind)) {
      if (accept(Tok::Semi)) continue;
      const bool last = check(Tok::Return) || check(Tok::Break);
      b.stmts.push_back(parse_statement());
      if (last) {
        while (accept(Tok::Semi)) {}
        if (!block_terminator(cur().kind))
          fail("'return'/'break' must be the last statement in a block");
        break;
      }
    }
    return b;
  }

  StmtPtr make_stmt(Stmt::Kind k) {
    auto s = std::make_unique<Stmt>();
    s->kind = k;
    s->line = cur().line;
    return s;
  }

  StmtPtr parse_statement() {
    switch (cur().kind) {
      case Tok::If: return parse_if();
      case Tok::While: return parse_while();
      case Tok::Repeat: return parse_repeat();
      case Tok::For: return parse_for();
      case Tok::Do: return parse_do();
      case Tok::Local: return parse_local();
      case Tok::Function: return parse_function_stat();
      case Tok::Return: return parse_return();
      case Tok::Break: {
        auto s = make_stmt(Stmt::Kind::Break);
        take();
        return s;
      }
      default: return parse_expr_stat();
    }
  }

  StmtPtr parse_if() {
    auto s = make_stmt(Stmt::Kind::If);
    expect(Tok::If);
    for (;;) {
      ExprPtr cond = parse_expr();
      expect(Tok::Then);
      Block body = parse_block();
      s->clauses.emplace_back(std::move(cond), std::move(body));
      if (accept(Tok::Elseif)) continue;
      if (accept(Tok::Else)) {
        s->else_body = parse_block();
      }
      expect(Tok::End);
      return s;
    }
  }

  StmtPtr parse_while() {
    auto s = make_stmt(Stmt::Kind::While);
    expect(Tok::While);
    s->e1 = parse_expr();
    expect(Tok::Do);
    s->body = parse_block();
    expect(Tok::End);
    return s;
  }

  StmtPtr parse_repeat() {
    auto s = make_stmt(Stmt::Kind::Repeat);
    expect(Tok::Repeat);
    s->body = parse_block();
    expect(Tok::Until);
    s->e1 = parse_expr();
    return s;
  }

  StmtPtr parse_for() {
    expect(Tok::For);
    std::vector<std::string> names;
    names.push_back(expect(Tok::Name).text);
    if (check(Tok::Assign)) {
      auto s = make_stmt(Stmt::Kind::NumFor);
      s->names = std::move(names);
      take();
      s->e1 = parse_expr();
      expect(Tok::Comma);
      s->e2 = parse_expr();
      if (accept(Tok::Comma)) s->e3 = parse_expr();
      expect(Tok::Do);
      s->body = parse_block();
      expect(Tok::End);
      return s;
    }
    auto s = make_stmt(Stmt::Kind::GenFor);
    while (accept(Tok::Comma)) names.push_back(expect(Tok::Name).text);
    s->names = std::move(names);
    expect(Tok::In);
    s->rhs = parse_exprlist();
    expect(Tok::Do);
    s->body = parse_block();
    expect(Tok::End);
    return s;
  }

  StmtPtr parse_do() {
    auto s = make_stmt(Stmt::Kind::Do);
    expect(Tok::Do);
    s->body = parse_block();
    expect(Tok::End);
    return s;
  }

  StmtPtr parse_local() {
    expect(Tok::Local);
    if (accept(Tok::Function)) {
      // `local function f ...` declares f before the body so it can recurse.
      auto s = make_stmt(Stmt::Kind::Local);
      s->local_function = true;
      const std::string name = expect(Tok::Name).text;
      s->names.push_back(name);
      auto fe = make_expr(Expr::Kind::Function);
      fe->fn = parse_function_body(name);
      s->rhs.push_back(std::move(fe));
      return s;
    }
    auto s = make_stmt(Stmt::Kind::Local);
    s->names.push_back(expect(Tok::Name).text);
    while (accept(Tok::Comma)) s->names.push_back(expect(Tok::Name).text);
    if (accept(Tok::Assign)) s->rhs = parse_exprlist();
    return s;
  }

  StmtPtr parse_function_stat() {
    expect(Tok::Function);
    // funcname: Name {'.' Name} [':' Name]
    auto target = make_expr(Expr::Kind::Name);
    target->str = expect(Tok::Name).text;
    std::string fname = target->str;
    bool is_method = false;
    while (check(Tok::Dot) || check(Tok::Colon)) {
      const bool method = check(Tok::Colon);
      take();
      auto idx = make_expr(Expr::Kind::Index);
      auto key = make_expr(Expr::Kind::String);
      key->str = expect(Tok::Name).text;
      fname += (method ? ":" : ".") + key->str;
      idx->a = std::move(target);
      idx->b = std::move(key);
      target = std::move(idx);
      if (method) {
        is_method = true;
        break;
      }
    }
    auto fe = make_expr(Expr::Kind::Function);
    fe->fn = parse_function_body(fname);
    if (is_method) fe->fn->params.insert(fe->fn->params.begin(), "self");
    auto s = make_stmt(Stmt::Kind::Assign);
    s->lhs.push_back(std::move(target));
    s->rhs.push_back(std::move(fe));
    return s;
  }

  std::shared_ptr<FunctionDef> parse_function_body(const std::string& name) {
    auto def = std::make_shared<FunctionDef>();
    def->name = name.empty() ? "<anonymous>" : name;
    def->line = cur().line;
    expect(Tok::LParen);
    if (!check(Tok::RParen)) {
      for (;;) {
        if (accept(Tok::Ellipsis)) {
          def->is_vararg = true;
          break;
        }
        def->params.push_back(expect(Tok::Name).text);
        if (!accept(Tok::Comma)) break;
      }
    }
    expect(Tok::RParen);
    def->body = parse_block();
    expect(Tok::End);
    return def;
  }

  StmtPtr parse_return() {
    auto s = make_stmt(Stmt::Kind::Return);
    expect(Tok::Return);
    if (!block_terminator(cur().kind) && !check(Tok::Semi))
      s->rhs = parse_exprlist();
    return s;
  }

  StmtPtr parse_expr_stat() {
    ExprPtr e = parse_suffixed();
    if (check(Tok::Assign) || check(Tok::Comma)) {
      auto s = make_stmt(Stmt::Kind::Assign);
      auto check_assignable = [this](const Expr& x) {
        if (x.kind != Expr::Kind::Name && x.kind != Expr::Kind::Index)
          fail("cannot assign to this expression");
      };
      check_assignable(*e);
      s->lhs.push_back(std::move(e));
      while (accept(Tok::Comma)) {
        auto lhs = parse_suffixed();
        check_assignable(*lhs);
        s->lhs.push_back(std::move(lhs));
      }
      expect(Tok::Assign);
      s->rhs = parse_exprlist();
      return s;
    }
    if (e->kind != Expr::Kind::Call && e->kind != Expr::Kind::Method)
      fail("syntax error: expression is not a statement (expected call or assignment)");
    auto s = make_stmt(Stmt::Kind::ExprStat);
    s->rhs.push_back(std::move(e));
    return s;
  }

  std::vector<ExprPtr> parse_exprlist() {
    std::vector<ExprPtr> list;
    list.push_back(parse_expr());
    while (accept(Tok::Comma)) list.push_back(parse_expr());
    return list;
  }

  ExprPtr parse_expr(int limit = 0) {
    ExprPtr left;
    UnOp uop;
    if (check(Tok::Not)) {
      uop = UnOp::Not;
      goto unary;
    }
    if (check(Tok::Minus)) {
      uop = UnOp::Neg;
      goto unary;
    }
    if (check(Tok::Hash)) {
      uop = UnOp::Len;
      goto unary;
    }
    left = parse_simple();
    goto binloop;

  unary: {
    auto u = make_expr(Expr::Kind::Unary);
    take();
    u->uop = uop;
    u->a = parse_expr(kUnaryPriority);
    if (uop == UnOp::Neg && u->a->kind == Expr::Kind::Number) {
      u->kind = Expr::Kind::Number;
      u->number = -u->a->number;
      u->a.reset();
    }
    left = std::move(u);
  }

  binloop:
    for (;;) {
      BinOp op;
      BinPriority pri;
      if (!bin_op_for(cur().kind, op, pri) || pri.left <= limit) break;
      auto bin = make_expr(Expr::Kind::Binary);
      take();
      bin->bop = op;
      bin->b = parse_expr(pri.right);
      bin->a = std::move(left);
      double folded = 0.0;
      if (bin->a->kind == Expr::Kind::Number &&
          bin->b->kind == Expr::Kind::Number &&
          fold_arith(op, bin->a->number, bin->b->number, &folded)) {
        bin->kind = Expr::Kind::Number;
        bin->number = folded;
        bin->a.reset();
        bin->b.reset();
      }
      left = std::move(bin);
    }
    return left;
  }

  ExprPtr parse_simple() {
    switch (cur().kind) {
      case Tok::Nil: {
        auto e = make_expr(Expr::Kind::Nil);
        take();
        return e;
      }
      case Tok::True: {
        auto e = make_expr(Expr::Kind::True);
        take();
        return e;
      }
      case Tok::False: {
        auto e = make_expr(Expr::Kind::False);
        take();
        return e;
      }
      case Tok::Number: {
        auto e = make_expr(Expr::Kind::Number);
        e->number = take().number;
        return e;
      }
      case Tok::String: {
        auto e = make_expr(Expr::Kind::String);
        e->str = take().text;
        return e;
      }
      case Tok::Ellipsis: {
        auto e = make_expr(Expr::Kind::Vararg);
        take();
        return e;
      }
      case Tok::Function: {
        take();
        auto e = make_expr(Expr::Kind::Function);
        e->fn = parse_function_body("");
        return e;
      }
      case Tok::LBrace: return parse_table();
      default: return parse_suffixed();
    }
  }

  ExprPtr parse_primary() {
    if (check(Tok::Name)) {
      auto e = make_expr(Expr::Kind::Name);
      e->str = take().text;
      return e;
    }
    if (accept(Tok::LParen)) {
      ExprPtr e = parse_expr();
      expect(Tok::RParen);
      return e;
    }
    fail(std::string("unexpected symbol '") + tok_name(cur().kind) + "'");
  }

  ExprPtr parse_suffixed() {
    ExprPtr e = parse_primary();
    for (;;) {
      switch (cur().kind) {
        case Tok::Dot: {
          take();
          auto idx = make_expr(Expr::Kind::Index);
          auto key = make_expr(Expr::Kind::String);
          key->str = expect(Tok::Name).text;
          idx->a = std::move(e);
          idx->b = std::move(key);
          e = std::move(idx);
          break;
        }
        case Tok::LBracket: {
          take();
          auto idx = make_expr(Expr::Kind::Index);
          idx->b = parse_expr();
          expect(Tok::RBracket);
          idx->a = std::move(e);
          e = std::move(idx);
          break;
        }
        case Tok::Colon: {
          take();
          auto call = make_expr(Expr::Kind::Method);
          call->str = expect(Tok::Name).text;
          call->list = parse_call_args();
          call->a = std::move(e);
          e = std::move(call);
          break;
        }
        case Tok::LParen:
        case Tok::String:
        case Tok::LBrace: {
          auto call = make_expr(Expr::Kind::Call);
          call->list = parse_call_args();
          call->a = std::move(e);
          e = std::move(call);
          break;
        }
        default:
          return e;
      }
    }
  }

  std::vector<ExprPtr> parse_call_args() {
    std::vector<ExprPtr> args;
    if (check(Tok::String)) {
      auto e = make_expr(Expr::Kind::String);
      e->str = take().text;
      args.push_back(std::move(e));
      return args;
    }
    if (check(Tok::LBrace)) {
      args.push_back(parse_table());
      return args;
    }
    expect(Tok::LParen);
    if (!check(Tok::RParen)) args = parse_exprlist();
    expect(Tok::RParen);
    return args;
  }

  ExprPtr parse_table() {
    auto e = make_expr(Expr::Kind::Table);
    expect(Tok::LBrace);
    while (!check(Tok::RBrace)) {
      if (check(Tok::LBracket)) {
        take();
        ExprPtr key = parse_expr();
        expect(Tok::RBracket);
        expect(Tok::Assign);
        e->fields.emplace_back(std::move(key), parse_expr());
      } else if (check(Tok::Name) && ahead().kind == Tok::Assign) {
        auto key = make_expr(Expr::Kind::String);
        key->str = take().text;
        take();  // '='
        e->fields.emplace_back(std::move(key), parse_expr());
      } else {
        e->list.push_back(parse_expr());
      }
      if (!accept(Tok::Comma) && !accept(Tok::Semi)) break;
    }
    expect(Tok::RBrace);
    return e;
  }

  std::vector<Token> toks_;
  std::string chunk_;
  std::size_t pos_ = 0;
};

}  // namespace

ChunkPtr parse(const std::string& src, const std::string& chunk_name) {
  ChunkPtr chunk = Parser(tokenize(src, chunk_name), chunk_name).run();
  resolve_chunk(*chunk);
  return chunk;
}

}  // namespace mantle::lua
