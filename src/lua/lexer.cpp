#include "lua/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "lua/value.hpp"

namespace mantle::lua {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::Eof: return "<eof>";
    case Tok::Name: return "name";
    case Tok::Number: return "number";
    case Tok::String: return "string";
    case Tok::And: return "and";
    case Tok::Break: return "break";
    case Tok::Do: return "do";
    case Tok::Else: return "else";
    case Tok::Elseif: return "elseif";
    case Tok::End: return "end";
    case Tok::False: return "false";
    case Tok::For: return "for";
    case Tok::Function: return "function";
    case Tok::If: return "if";
    case Tok::In: return "in";
    case Tok::Local: return "local";
    case Tok::Nil: return "nil";
    case Tok::Not: return "not";
    case Tok::Or: return "or";
    case Tok::Repeat: return "repeat";
    case Tok::Return: return "return";
    case Tok::Then: return "then";
    case Tok::True: return "true";
    case Tok::Until: return "until";
    case Tok::While: return "while";
    case Tok::Plus: return "+";
    case Tok::Minus: return "-";
    case Tok::Star: return "*";
    case Tok::Slash: return "/";
    case Tok::Percent: return "%";
    case Tok::Caret: return "^";
    case Tok::Hash: return "#";
    case Tok::Eq: return "==";
    case Tok::Ne: return "~=";
    case Tok::Le: return "<=";
    case Tok::Ge: return ">=";
    case Tok::Lt: return "<";
    case Tok::Gt: return ">";
    case Tok::Assign: return "=";
    case Tok::LParen: return "(";
    case Tok::RParen: return ")";
    case Tok::LBrace: return "{";
    case Tok::RBrace: return "}";
    case Tok::LBracket: return "[";
    case Tok::RBracket: return "]";
    case Tok::Semi: return ";";
    case Tok::Colon: return ":";
    case Tok::Comma: return ",";
    case Tok::Dot: return ".";
    case Tok::Concat: return "..";
    case Tok::Ellipsis: return "...";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, Tok>& keywords() {
  static const std::unordered_map<std::string, Tok> kw = {
      {"and", Tok::And},       {"break", Tok::Break},
      {"do", Tok::Do},         {"else", Tok::Else},
      {"elseif", Tok::Elseif}, {"end", Tok::End},
      {"false", Tok::False},   {"for", Tok::For},
      {"function", Tok::Function}, {"if", Tok::If},
      {"in", Tok::In},         {"local", Tok::Local},
      {"nil", Tok::Nil},       {"not", Tok::Not},
      {"or", Tok::Or},         {"repeat", Tok::Repeat},
      {"return", Tok::Return}, {"then", Tok::Then},
      {"true", Tok::True},     {"until", Tok::Until},
      {"while", Tok::While},
  };
  return kw;
}

class Lexer {
 public:
  Lexer(const std::string& src, std::string chunk)
      : src_(src), chunk_(std::move(chunk)) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_space_and_comments();
      Token t = next_token();
      const bool eof = t.kind == Tok::Eof;
      out.push_back(std::move(t));
      if (eof) break;
    }
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw LuaError(chunk_ + ":" + std::to_string(line_) + ": " + msg);
  }

  bool at_end() const { return pos_ >= src_.size(); }
  char peek(std::size_t off = 0) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }
  bool match(char c) {
    if (at_end() || src_[pos_] != c) return false;
    advance();
    return true;
  }

  void skip_space_and_comments() {
    for (;;) {
      while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
      if (peek() == '-' && peek(1) == '-') {
        advance();
        advance();
        if (peek() == '[' && peek(1) == '[') {
          advance();
          advance();
          skip_long_bracket("comment");
        } else {
          while (!at_end() && peek() != '\n') advance();
        }
        continue;
      }
      break;
    }
  }

  void skip_long_bracket(const char* what) {
    const int start_line = line_;
    while (!at_end()) {
      if (peek() == ']' && peek(1) == ']') {
        advance();
        advance();
        return;
      }
      advance();
    }
    line_ = start_line;
    fail(std::string("unterminated long ") + what);
  }

  Token make(Tok k) const {
    Token t;
    t.kind = k;
    t.line = line_;
    return t;
  }

  Token next_token() {
    if (at_end()) return make(Tok::Eof);
    const int line = line_;
    const char c = peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return name_or_keyword();
    if (std::isdigit(static_cast<unsigned char>(c))) return number();
    if (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) return number();
    if (c == '"' || c == '\'') return string_literal();

    advance();
    Token t;
    t.line = line;
    switch (c) {
      case '+': t.kind = Tok::Plus; return t;
      case '-': t.kind = Tok::Minus; return t;
      case '*': t.kind = Tok::Star; return t;
      case '/': t.kind = Tok::Slash; return t;
      case '%': t.kind = Tok::Percent; return t;
      case '^': t.kind = Tok::Caret; return t;
      case '#': t.kind = Tok::Hash; return t;
      case '(': t.kind = Tok::LParen; return t;
      case ')': t.kind = Tok::RParen; return t;
      case '{': t.kind = Tok::LBrace; return t;
      case '}': t.kind = Tok::RBrace; return t;
      case '[': t.kind = Tok::LBracket; return t;
      case ']': t.kind = Tok::RBracket; return t;
      case ';': t.kind = Tok::Semi; return t;
      case ':': t.kind = Tok::Colon; return t;
      case ',': t.kind = Tok::Comma; return t;
      case '=':
        t.kind = match('=') ? Tok::Eq : Tok::Assign;
        return t;
      case '~':
        if (match('=')) {
          t.kind = Tok::Ne;
          return t;
        }
        fail("unexpected '~' (did you mean '~='?)");
      case '<':
        t.kind = match('=') ? Tok::Le : Tok::Lt;
        return t;
      case '>':
        t.kind = match('=') ? Tok::Ge : Tok::Gt;
        return t;
      case '.':
        if (match('.')) {
          t.kind = match('.') ? Tok::Ellipsis : Tok::Concat;
        } else {
          t.kind = Tok::Dot;
        }
        return t;
      default:
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  Token name_or_keyword() {
    Token t;
    t.line = line_;
    std::string s;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_'))
      s += advance();
    const auto it = keywords().find(s);
    if (it != keywords().end()) {
      t.kind = it->second;
    } else {
      t.kind = Tok::Name;
      t.text = std::move(s);
    }
    return t;
  }

  Token number() {
    Token t;
    t.line = line_;
    t.kind = Tok::Number;
    std::string s;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      s += advance();
      s += advance();
      while (!at_end() && std::isxdigit(static_cast<unsigned char>(peek()))) s += advance();
      if (s.size() == 2) fail("malformed hex number");
      t.number = static_cast<double>(std::strtoull(s.c_str() + 2, nullptr, 16));
      t.text = std::move(s);
      return t;
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) s += advance();
    if (peek() == '.') {
      s += advance();
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) s += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      s += advance();
      if (peek() == '+' || peek() == '-') s += advance();
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("malformed number exponent");
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) s += advance();
    }
    char* end = nullptr;
    t.number = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size()) fail("malformed number '" + s + "'");
    t.text = std::move(s);
    return t;
  }

  Token string_literal() {
    Token t;
    t.line = line_;
    t.kind = Tok::String;
    const char quote = advance();
    std::string s;
    for (;;) {
      if (at_end() || peek() == '\n') fail("unterminated string");
      const char c = advance();
      if (c == quote) break;
      if (c == '\\') {
        if (at_end()) fail("unterminated string");
        const char e = advance();
        switch (e) {
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          case 'r': s += '\r'; break;
          case 'a': s += '\a'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'v': s += '\v'; break;
          case '\\': s += '\\'; break;
          case '"': s += '"'; break;
          case '\'': s += '\''; break;
          case '\n': s += '\n'; break;
          default:
            if (std::isdigit(static_cast<unsigned char>(e))) {
              int code = e - '0';
              for (int i = 0; i < 2 && std::isdigit(static_cast<unsigned char>(peek())); ++i)
                code = code * 10 + (advance() - '0');
              if (code > 255) fail("decimal escape too large");
              s += static_cast<char>(code);
            } else {
              fail(std::string("invalid escape sequence '\\") + e + "'");
            }
        }
        continue;
      }
      s += c;
    }
    t.text = std::move(s);
    return t;
  }

  const std::string& src_;
  std::string chunk_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::vector<Token> tokenize(const std::string& src, const std::string& chunk_name) {
  return Lexer(src, chunk_name).run();
}

}  // namespace mantle::lua
