#include "lua/interp.hpp"

#include <cmath>

#include "lua/parser.hpp"

namespace mantle::lua {

Interp::Interp() : globals_(make_table()) { install_stdlib(); }

void Interp::runtime_error(int line, const std::string& msg) const {
  throw LuaError(chunk_name_ + ":" + std::to_string(line) + ": " + msg);
}

void Interp::step(int line) {
  ++steps_used_;
  if (budget_ != 0 && steps_used_ > budget_)
    runtime_error(line, "instruction budget exceeded (possible infinite loop)");
}

// ---------------------------------------------------------------------------
// Frame pool
// ---------------------------------------------------------------------------

FramePtr Interp::acquire_frame(std::size_t slots, FramePtr parent) {
  FramePtr f;
  if (!frame_pool_.empty()) {
    f = std::move(frame_pool_.back());
    frame_pool_.pop_back();
  } else {
    f = std::make_shared<Frame>();
  }
  f->parent = std::move(parent);
  f->slots.resize(slots);  // pooled frames are cleared, so all slots are nil
  return f;
}

void Interp::release_frame(FramePtr& f) {
  // use_count == 1 means no closure captured the frame: recycle it. A
  // captured frame keeps its slots and parent chain alive for the closure.
  if (f.use_count() == 1) {
    f->slots.clear();  // drop value refs, keep capacity
    f->parent.reset();
    frame_pool_.push_back(std::move(f));
  }
  f.reset();
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

CompiledChunk compile(const std::string& src, const std::string& chunk_name) {
  CompiledChunk c;
  try {
    c.chunk = parse(src, chunk_name);
  } catch (const LuaError& e) {
    c.error = e.what();
  }
  return c;
}

CompiledChunk compile_expr(const std::string& expr_src,
                           const std::string& chunk_name) {
  return compile("return (" + expr_src + ")", chunk_name);
}

RunResult Interp::run(const CompiledChunk& cc) {
  RunResult r;
  steps_used_ = 0;
  if (!cc.ok()) {
    r.error = cc.error;
    return r;
  }
  chunk_name_ = cc.chunk->name;
  try {
    FramePtr top = acquire_frame(cc.chunk->frame_slots, nullptr);
    ExecState st = exec_stmts(cc.chunk->block, top);
    release_frame(top);
    r.ok = true;
    if (st.flow == Flow::Return) r.values = std::move(st.ret);
  } catch (const LuaError& e) {
    r.error = e.what();
  }
  return r;
}

RunResult Interp::run(const std::string& src, const std::string& chunk_name) {
  return run(compile(src, chunk_name));
}

RunResult Interp::eval(const std::string& expr_src, const std::string& chunk_name) {
  return run(compile_expr(expr_src, chunk_name));
}

RunResult Interp::call(const Value& fn, std::vector<Value> args) {
  RunResult r;
  if (!fn.is_callable()) {
    r.error = "attempt to call a " + std::string(fn.type_name()) + " value";
    return r;
  }
  steps_used_ = 0;
  try {
    r.values = call_callable(fn.callable(), std::move(args));
    r.ok = true;
  } catch (const LuaError& e) {
    r.error = e.what();
  }
  return r;
}

void Interp::set_global(const std::string& name, Value v) {
  globals_->set_str(name, std::move(v));
}

Value Interp::get_global(const std::string& name) const {
  return globals_->get_str(name);
}

void Interp::set_function(const std::string& name, Callable::Builtin fn) {
  set_global(name, Value(make_builtin(name, std::move(fn))));
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

Interp::ExecState Interp::exec_stmts(const Block& block, const FramePtr& frame) {
  for (const StmtPtr& s : block.stmts) {
    ExecState st = exec_stmt(*s, frame);
    if (st.flow != Flow::Normal) return st;
  }
  return {};
}

Interp::ExecState Interp::exec_block(const Block& block, const FramePtr& frame) {
  if (block.frame_slots < 0) return exec_stmts(block, frame);
  FramePtr inner =
      acquire_frame(static_cast<std::size_t>(block.frame_slots), frame);
  ExecState st = exec_stmts(block, inner);
  release_frame(inner);
  return st;
}

Interp::ExecState Interp::exec_stmt(const Stmt& s, const FramePtr& frame) {
  step(s.line);
  switch (s.kind) {
    case Stmt::Kind::ExprStat:
      eval_multi(*s.rhs[0], frame);
      return {};

    case Stmt::Kind::Assign: {
      std::vector<Value> vals = eval_exprlist(s.rhs, frame);
      vals.resize(s.lhs.size());
      for (std::size_t i = 0; i < s.lhs.size(); ++i)
        assign(*s.lhs[i], std::move(vals[i]), frame);
      return {};
    }

    case Stmt::Kind::Local: {
      std::vector<Value> vals = eval_exprlist(s.rhs, frame);
      vals.resize(s.slots.size());
      for (std::size_t i = 0; i < s.slots.size(); ++i)
        frame->slots[s.slots[i]] = std::move(vals[i]);
      return {};
    }

    case Stmt::Kind::If: {
      for (const auto& [cond, body] : s.clauses) {
        if (eval_expr(*cond, frame).truthy()) return exec_block(body, frame);
      }
      if (s.else_body) return exec_block(*s.else_body, frame);
      return {};
    }

    case Stmt::Kind::While: {
      while (eval_expr(*s.e1, frame).truthy()) {
        step(s.line);
        ExecState st = exec_block(s.body, frame);
        if (st.flow == Flow::Break) break;
        if (st.flow == Flow::Return) return st;
      }
      return {};
    }

    case Stmt::Kind::Repeat: {
      const bool own_frame = s.body.frame_slots >= 0;
      for (;;) {
        step(s.line);
        FramePtr target =
            own_frame
                ? acquire_frame(static_cast<std::size_t>(s.body.frame_slots),
                                frame)
                : frame;
        ExecState st = exec_stmts(s.body, target);
        // `until` sees locals declared in the body (Lua scoping rule).
        const bool done =
            st.flow == Flow::Break ||
            (st.flow == Flow::Normal && eval_expr(*s.e1, target).truthy());
        if (own_frame) release_frame(target);
        if (st.flow == Flow::Return) return st;
        if (done) break;
      }
      return {};
    }

    case Stmt::Kind::NumFor: {
      const Value vstart = eval_expr(*s.e1, frame);
      const Value vstop = eval_expr(*s.e2, frame);
      Value vstep = s.e3 ? eval_expr(*s.e3, frame) : Value(1.0);
      const auto start = vstart.to_number();
      const auto stop = vstop.to_number();
      const auto stepv = vstep.to_number();
      if (!start || !stop || !stepv)
        runtime_error(s.line, "'for' bounds must be numbers");
      if (*stepv == 0.0) runtime_error(s.line, "'for' step is zero");
      const bool own_frame = s.body.frame_slots >= 0;
      for (double i = *start;
           (*stepv > 0.0) ? (i <= *stop) : (i >= *stop); i += *stepv) {
        step(s.line);
        FramePtr target =
            own_frame
                ? acquire_frame(static_cast<std::size_t>(s.body.frame_slots),
                                frame)
                : frame;
        target->slots[s.slots[0]] = Value(i);
        ExecState st = exec_stmts(s.body, target);
        if (own_frame) release_frame(target);
        if (st.flow == Flow::Break) break;
        if (st.flow == Flow::Return) return st;
      }
      return {};
    }

    case Stmt::Kind::GenFor: {
      // for vars in f, s, ctrl do ... end
      std::vector<Value> iter = eval_exprlist(s.rhs, frame);
      iter.resize(3);
      Value fn = iter[0];
      Value state = iter[1];
      Value control = iter[2];
      if (!fn.is_callable())
        runtime_error(s.line, "'for in' iterator is not callable");
      const bool own_frame = s.body.frame_slots >= 0;
      for (;;) {
        step(s.line);
        std::vector<Value> args{state, control};
        std::vector<Value> vals = call_callable(fn.callable(), std::move(args));
        vals.resize(std::max(vals.size(), s.slots.size()));
        if (vals[0].is_nil()) break;
        control = vals[0];
        FramePtr target =
            own_frame
                ? acquire_frame(static_cast<std::size_t>(s.body.frame_slots),
                                frame)
                : frame;
        for (std::size_t i = 0; i < s.slots.size(); ++i)
          target->slots[s.slots[i]] = vals[i];
        ExecState st = exec_stmts(s.body, target);
        if (own_frame) release_frame(target);
        if (st.flow == Flow::Break) break;
        if (st.flow == Flow::Return) return st;
      }
      return {};
    }

    case Stmt::Kind::Do:
      return exec_block(s.body, frame);

    case Stmt::Kind::Return: {
      ExecState st;
      st.flow = Flow::Return;
      st.ret = eval_exprlist(s.rhs, frame);
      return st;
    }

    case Stmt::Kind::Break: {
      ExecState st;
      st.flow = Flow::Break;
      return st;
    }
  }
  return {};
}

void Interp::assign(const Expr& target, Value v, const FramePtr& frame) {
  if (target.kind == Expr::Kind::Name) {
    if (target.ref == Expr::RefKind::Local) {
      walk(frame, target.hops)->slots[target.slot] = std::move(v);
    } else {
      globals_->set_str(target.str, std::move(v));
    }
    return;
  }
  // Index assignment: a[b] = v
  Value obj = eval_expr(*target.a, frame);
  if (!obj.is_table())
    runtime_error(target.line, "attempt to index a " +
                                   std::string(obj.type_name()) + " value");
  // Constant string keys (a.b sugar, a["b"]) skip Value construction.
  if (target.b->kind == Expr::Kind::String) {
    step(target.b->line);
    obj.table()->set_str(target.b->str, std::move(v));
    return;
  }
  Value key = eval_expr(*target.b, frame);
  try {
    obj.table()->set(key, std::move(v));
  } catch (const LuaError& e) {
    runtime_error(target.line, e.what());
  }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

std::vector<Value> Interp::eval_exprlist(const std::vector<ExprPtr>& list,
                                         const FramePtr& frame) {
  std::vector<Value> out;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i + 1 == list.size()) {
      // Last expression expands all of its results.
      std::vector<Value> vals = eval_multi(*list[i], frame);
      for (Value& v : vals) out.push_back(std::move(v));
    } else {
      out.push_back(eval_expr(*list[i], frame));
    }
  }
  return out;
}

std::vector<Value> Interp::eval_multi(const Expr& e, const FramePtr& frame) {
  if (e.kind == Expr::Kind::Call || e.kind == Expr::Kind::Method)
    return eval_call(e, frame);
  return {eval_expr(e, frame)};
}

Value Interp::eval_expr(const Expr& e, const FramePtr& frame) {
  step(e.line);
  switch (e.kind) {
    case Expr::Kind::Nil: return {};
    case Expr::Kind::True: return Value(true);
    case Expr::Kind::False: return Value(false);
    case Expr::Kind::Number: return Value(e.number);
    case Expr::Kind::String: return Value(e.str);
    case Expr::Kind::Vararg:
      runtime_error(e.line, "'...' is not supported outside function calls");

    case Expr::Kind::Name: {
      if (e.ref == Expr::RefKind::Local)
        return walk(frame, e.hops)->slots[e.slot];
      return globals_->get_str(e.str);
    }

    case Expr::Kind::Index: {
      Value obj = eval_expr(*e.a, frame);
      if (!obj.is_table())
        runtime_error(e.line, "attempt to index a " +
                                  std::string(obj.type_name()) + " value" +
                                  (e.a->kind == Expr::Kind::Name
                                       ? " (global '" + e.a->str + "')"
                                       : ""));
      // Constant keys use the string interned in the AST node — no Value
      // (and no std::string) construction per access.
      if (e.b->kind == Expr::Kind::String) {
        step(e.b->line);
        return obj.table()->get_str(e.b->str);
      }
      if (e.b->kind == Expr::Kind::Number) {
        step(e.b->line);
        return obj.table()->get_num(e.b->number);
      }
      Value key = eval_expr(*e.b, frame);
      try {
        return obj.table()->get(key);
      } catch (const LuaError& err) {
        runtime_error(e.line, err.what());
      }
    }

    case Expr::Kind::Call:
    case Expr::Kind::Method: {
      std::vector<Value> vals = eval_call(e, frame);
      return vals.empty() ? Value{} : std::move(vals.front());
    }

    case Expr::Kind::Function: {
      auto c = std::make_shared<Callable>();
      c->name = e.fn->name;
      c->def = e.fn.get();
      c->closure = frame;
      c->owner = e.fn;  // pins the FunctionDef (and its body) alive
      return Value(std::move(c));
    }

    case Expr::Kind::Table: return eval_table(e, frame);
    case Expr::Kind::Binary: return eval_binary(e, frame);
    case Expr::Kind::Unary: return eval_unary(e, frame);
  }
  return {};
}

Value Interp::eval_table(const Expr& e, const FramePtr& frame) {
  TablePtr t = make_table();
  double idx = 1.0;
  for (std::size_t i = 0; i < e.list.size(); ++i) {
    if (i + 1 == e.list.size()) {
      // Trailing call expands into consecutive array slots.
      std::vector<Value> vals = eval_multi(*e.list[i], frame);
      for (Value& v : vals) t->set_num(idx++, std::move(v));
    } else {
      t->set_num(idx++, eval_expr(*e.list[i], frame));
    }
  }
  for (const auto& [k, v] : e.fields) {
    Value key = eval_expr(*k, frame);
    try {
      t->set(key, eval_expr(*v, frame));
    } catch (const LuaError& err) {
      runtime_error(e.line, err.what());
    }
  }
  return Value(std::move(t));
}

double Interp::arith_operand(const Value& v, int line, const char* what) const {
  const auto n = v.to_number();
  if (!n)
    runtime_error(line, std::string("attempt to perform arithmetic on a ") +
                            v.type_name() + " value (" + what + ")");
  return *n;
}

Value Interp::eval_binary(const Expr& e, const FramePtr& frame) {
  // Short-circuit operators return one of their operand values, like Lua.
  if (e.bop == BinOp::And) {
    Value a = eval_expr(*e.a, frame);
    return a.truthy() ? eval_expr(*e.b, frame) : a;
  }
  if (e.bop == BinOp::Or) {
    Value a = eval_expr(*e.a, frame);
    return a.truthy() ? a : eval_expr(*e.b, frame);
  }

  Value a = eval_expr(*e.a, frame);
  Value b = eval_expr(*e.b, frame);

  switch (e.bop) {
    case BinOp::Add:
      return Value(arith_operand(a, e.line, "left operand") +
                   arith_operand(b, e.line, "right operand"));
    case BinOp::Sub:
      return Value(arith_operand(a, e.line, "left operand") -
                   arith_operand(b, e.line, "right operand"));
    case BinOp::Mul:
      return Value(arith_operand(a, e.line, "left operand") *
                   arith_operand(b, e.line, "right operand"));
    case BinOp::Div:
      return Value(arith_operand(a, e.line, "left operand") /
                   arith_operand(b, e.line, "right operand"));
    case BinOp::Mod: {
      const double x = arith_operand(a, e.line, "left operand");
      const double y = arith_operand(b, e.line, "right operand");
      // Lua modulo: result has the sign of the divisor.
      return Value(x - std::floor(x / y) * y);
    }
    case BinOp::Pow:
      return Value(std::pow(arith_operand(a, e.line, "left operand"),
                            arith_operand(b, e.line, "right operand")));
    case BinOp::Concat: {
      auto piece = [&](const Value& v) -> std::string {
        if (v.is_string()) return v.str();
        if (v.is_number()) return v.to_display_string();
        runtime_error(e.line, std::string("attempt to concatenate a ") +
                                  v.type_name() + " value");
      };
      return Value(piece(a) + piece(b));
    }
    case BinOp::Eq: return Value(a.equals(b));
    case BinOp::Ne: return Value(!a.equals(b));
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge: {
      if (a.is_number() && b.is_number()) {
        const double x = a.number();
        const double y = b.number();
        switch (e.bop) {
          case BinOp::Lt: return Value(x < y);
          case BinOp::Le: return Value(x <= y);
          case BinOp::Gt: return Value(x > y);
          default: return Value(x >= y);
        }
      }
      if (a.is_string() && b.is_string()) {
        const int c = a.str().compare(b.str());
        switch (e.bop) {
          case BinOp::Lt: return Value(c < 0);
          case BinOp::Le: return Value(c <= 0);
          case BinOp::Gt: return Value(c > 0);
          default: return Value(c >= 0);
        }
      }
      runtime_error(e.line, std::string("attempt to compare ") + a.type_name() +
                                " with " + b.type_name());
    }
    default:
      runtime_error(e.line, "internal: unexpected binary operator");
  }
}

Value Interp::eval_unary(const Expr& e, const FramePtr& frame) {
  Value a = eval_expr(*e.a, frame);
  switch (e.uop) {
    case UnOp::Neg: return Value(-arith_operand(a, e.line, "operand"));
    case UnOp::Not: return Value(!a.truthy());
    case UnOp::Len:
      if (a.is_string()) return Value(static_cast<double>(a.str().size()));
      if (a.is_table()) return Value(a.table()->length());
      runtime_error(e.line, std::string("attempt to get length of a ") +
                                a.type_name() + " value");
  }
  return {};
}

std::vector<Value> Interp::eval_call(const Expr& e, const FramePtr& frame) {
  Value fn;
  std::vector<Value> args;
  if (e.kind == Expr::Kind::Method) {
    Value obj = eval_expr(*e.a, frame);
    if (!obj.is_table())
      runtime_error(e.line, "attempt to call method on a " +
                                std::string(obj.type_name()) + " value");
    fn = obj.table()->get_str(e.str);
    args.push_back(std::move(obj));
  } else {
    fn = eval_expr(*e.a, frame);
  }
  for (std::size_t i = 0; i < e.list.size(); ++i) {
    if (i + 1 == e.list.size()) {
      std::vector<Value> vals = eval_multi(*e.list[i], frame);
      for (Value& v : vals) args.push_back(std::move(v));
    } else {
      args.push_back(eval_expr(*e.list[i], frame));
    }
  }
  if (!fn.is_callable()) {
    std::string hint;
    if (e.kind == Expr::Kind::Call && e.a->kind == Expr::Kind::Name)
      hint = " (global '" + e.a->str + "')";
    runtime_error(e.line, "attempt to call a " + std::string(fn.type_name()) +
                              " value" + hint);
  }
  return call_callable(fn.callable(), std::move(args));
}

std::vector<Value> Interp::call_callable(const CallablePtr& fn,
                                         std::vector<Value> args) {
  if (++call_depth_ > kMaxCallDepth) {
    --call_depth_;
    throw LuaError(chunk_name_ + ": call stack overflow in '" + fn->name + "'");
  }
  struct DepthGuard {
    int& d;
    ~DepthGuard() { --d; }
  } guard{call_depth_};

  if (fn->builtin) return fn->builtin(args, *this);

  const FunctionDef& def = *fn->def;
  FramePtr f = acquire_frame(def.frame_slots, fn->closure);
  const std::size_t nparams = def.params.size();  // params are slots 0..n-1
  for (std::size_t i = 0; i < nparams && i < args.size(); ++i)
    f->slots[i] = std::move(args[i]);
  ExecState st = exec_stmts(def.body, f);
  release_frame(f);
  if (st.flow == Flow::Return) return std::move(st.ret);
  return {};
}

std::string check_syntax(const std::string& src, const std::string& chunk_name) {
  try {
    parse(src, chunk_name);
    return "";
  } catch (const LuaError& e) {
    return e.what();
  }
}

}  // namespace mantle::lua
