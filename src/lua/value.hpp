#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

/// \file value.hpp
/// Runtime values for luam, the embedded Lua-subset used by the Mantle
/// policy engine. The paper injects balancer policies as Lua; offline we
/// cannot ship LuaJIT, so luam implements the subset those policies need
/// (plus a healthy margin): nil/boolean/number/string/table/function,
/// full expression grammar, control flow, closures, and a small stdlib.

namespace mantle::lua {

class Interp;
struct Table;
struct Callable;

using TablePtr = std::shared_ptr<Table>;
using CallablePtr = std::shared_ptr<Callable>;

/// A single Lua value. Numbers are doubles (Lua 5.1 semantics).
class Value {
 public:
  Value() = default;  // nil
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(int i) : v_(static_cast<double>(i)) {}
  Value(std::size_t i) : v_(static_cast<double>(i)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(TablePtr t) : v_(std::move(t)) {}
  Value(CallablePtr f) : v_(std::move(f)) {}

  bool is_nil() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_table() const { return std::holds_alternative<TablePtr>(v_); }
  bool is_callable() const { return std::holds_alternative<CallablePtr>(v_); }

  bool boolean() const { return std::get<bool>(v_); }
  double number() const { return std::get<double>(v_); }
  const std::string& str() const { return std::get<std::string>(v_); }
  const TablePtr& table() const { return std::get<TablePtr>(v_); }
  const CallablePtr& callable() const { return std::get<CallablePtr>(v_); }

  /// Lua truthiness: everything but nil and false is true.
  bool truthy() const {
    if (is_nil()) return false;
    if (is_bool()) return boolean();
    return true;
  }

  /// Raw (non-metamethod) equality, Lua `==` semantics.
  bool equals(const Value& o) const;

  const char* type_name() const;

  /// tostring() rendering: integers print without a decimal point.
  std::string to_display_string() const;

  /// tonumber() semantics: numbers pass through, numeric strings parse,
  /// anything else yields nullopt.
  std::optional<double> to_number() const;

 private:
  std::variant<std::monostate, bool, double, std::string, TablePtr, CallablePtr> v_;
};

/// Lua table: separate numeric and string key maps (the only key types the
/// interpreter accepts; boolean/nil keys raise runtime errors). Numeric
/// keys are stored as doubles, matching Lua 5.1.
struct Table {
  std::map<double, Value> num_keys;
  std::map<std::string, Value> str_keys;
  /// Bumped whenever a key node is erased (nil assignment or clear()).
  /// std::map nodes are address-stable under insert, so a Value* obtained
  /// from slot_str()/slot_num() stays valid exactly as long as this does
  /// not change — the guard used by the Mantle hook-environment caches.
  std::uint32_t erase_version = 0;

  /// Raw get; nil for missing keys. Throws LuaError for nil keys.
  Value get(const Value& key) const;

  /// Raw set; assigning nil erases the key.
  void set(const Value& key, Value value);

  // -- Fast paths: typed keys by reference, no Value construction. --------
  Value get_str(const std::string& key) const {
    const auto it = str_keys.find(key);
    return it == str_keys.end() ? Value{} : it->second;
  }
  Value get_num(double key) const {
    const auto it = num_keys.find(key);
    return it == num_keys.end() ? Value{} : it->second;
  }
  /// set() semantics with a typed key (nil erases; NaN numeric key throws).
  void set_str(const std::string& key, Value value);
  void set_num(double key, Value value);
  /// Find-or-insert returning a stable pointer to the value cell. The cell
  /// is nil-initialized on insert; callers must assign a real value before
  /// the table is observed (a nil-valued cell would be visible to pairs()).
  Value* slot_str(const std::string& key) { return &str_keys[key]; }
  Value* slot_num(double key);

  /// Erase everything (and invalidate outstanding slot pointers).
  void clear() {
    num_keys.clear();
    str_keys.clear();
    ++erase_version;
  }

  /// `#t`: the border — largest n >= 1 with t[1..n] all non-nil.
  double length() const;

  /// Number of populated entries across both key spaces.
  std::size_t size() const { return num_keys.size() + str_keys.size(); }
};

TablePtr make_table();

/// Error raised by the lexer/parser/interpreter; carries a message with
/// chunk name and line number already formatted in.
class LuaError : public std::exception {
 public:
  explicit LuaError(std::string msg) : msg_(std::move(msg)) {}
  const char* what() const noexcept override { return msg_.c_str(); }

 private:
  std::string msg_;
};

struct FunctionDef;  // AST node, defined in ast.hpp
struct Frame;        // runtime scope frame, defined in interp.hpp

/// A callable: either a C++ builtin or a luam closure.
struct Callable {
  /// Builtins receive their arguments and the interpreter (for calling back
  /// into script code or reading globals) and return the result values.
  using Builtin =
      std::function<std::vector<Value>(std::vector<Value>&, Interp&)>;

  std::string name;
  Builtin builtin;                        // set for builtins
  const FunctionDef* def = nullptr;       // set for luam closures
  std::shared_ptr<Frame> closure;         // captured environment
  std::shared_ptr<const void> owner;      // pins the AST the def lives in
};

CallablePtr make_builtin(std::string name, Callable::Builtin fn);

}  // namespace mantle::lua
