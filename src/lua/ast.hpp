#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

/// \file ast.hpp
/// Syntax tree for luam. One tagged-union node type per syntactic class
/// (expression / statement) keeps the tree-walking interpreter compact;
/// nodes carry source lines for error reporting.

namespace mantle::lua {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

struct Block {
  std::vector<StmtPtr> stmts;
  /// Filled by the resolver: true if a Function expression appears anywhere
  /// in this block's subtree, meaning its locals may be captured.
  bool contains_closure = false;
  /// >= 0: this block runs in its own frame of that many slots (fresh per
  /// entry, so closures created inside capture per-iteration variables).
  /// -1: the block's locals are merged into the enclosing frame.
  int frame_slots = -1;
};

enum class BinOp {
  Add, Sub, Mul, Div, Mod, Pow, Concat,
  Eq, Ne, Lt, Le, Gt, Ge, And, Or,
};

enum class UnOp { Neg, Not, Len };

struct FunctionDef {
  std::string name;  // for diagnostics; "<anonymous>" when unnamed
  std::vector<std::string> params;
  bool is_vararg = false;
  Block body;
  int line = 0;
  /// Call-frame size (params occupy slots [0, params.size())); set by the
  /// resolver. The body block is merged into this frame (frame_slots == -1).
  std::uint32_t frame_slots = 0;
};

struct Expr {
  enum class Kind {
    Nil, True, False, Number, String, Vararg,
    Name,      // str = identifier
    Index,     // a[b]  (a.b desugars to a["b"])
    Call,      // a = callee, list = args
    Method,    // a = object, str = method name, list = args
    Function,  // fn
    Table,     // list = positional items, fields = keyed items
    Binary,    // bop, a, b
    Unary,     // uop, a
  };

  /// How a Name expression was bound by the resolver. Global is the safe
  /// default: an unresolved name behaves like the pre-resolver dynamic
  /// lookup falling through to the globals table.
  enum class RefKind : std::uint8_t { Global, Local };

  Kind kind;
  int line = 0;
  double number = 0.0;
  std::string str;
  ExprPtr a;
  ExprPtr b;
  std::vector<ExprPtr> list;
  std::vector<std::pair<ExprPtr, ExprPtr>> fields;  // key expr -> value expr
  BinOp bop = BinOp::Add;
  UnOp uop = UnOp::Neg;
  std::shared_ptr<FunctionDef> fn;
  RefKind ref = RefKind::Global;  // Name only
  std::uint16_t hops = 0;         // frames to walk up (Name/Local only)
  std::uint32_t slot = 0;         // slot index in that frame
};

struct Stmt {
  enum class Kind {
    ExprStat,   // rhs[0] is a call expression
    Assign,     // lhs = rhs (lists)
    Local,      // names = rhs
    If,         // clauses + optional else_body
    While,      // e1 cond, body
    Repeat,     // body, e1 cond (until)
    NumFor,     // names[0], e1 start, e2 stop, e3 step, body
    GenFor,     // names, rhs explist, body
    Do,         // body
    Return,     // rhs explist
    Break,
  };

  Kind kind;
  int line = 0;
  std::vector<ExprPtr> lhs;
  std::vector<ExprPtr> rhs;
  std::vector<std::string> names;
  ExprPtr e1;
  ExprPtr e2;
  ExprPtr e3;
  Block body;
  std::vector<std::pair<ExprPtr, Block>> clauses;
  std::optional<Block> else_body;
  /// Resolver-assigned frame slots for `names` (Local/NumFor/GenFor).
  std::vector<std::uint32_t> slots;
  /// `local function f`: f is in scope inside its own body (recursion),
  /// unlike `local f = function() ... end` where the body sees global f.
  bool local_function = false;
};

/// A parsed chunk. Shared ownership: closures created while running the
/// chunk pin it alive via shared_ptr.
struct Chunk {
  std::string name;
  Block block;
  /// Top-level frame size; the chunk block is merged into it.
  std::uint32_t frame_slots = 0;
};

using ChunkPtr = std::shared_ptr<Chunk>;

}  // namespace mantle::lua
