#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

/// \file ast.hpp
/// Syntax tree for luam. One tagged-union node type per syntactic class
/// (expression / statement) keeps the tree-walking interpreter compact;
/// nodes carry source lines for error reporting.

namespace mantle::lua {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

struct Block {
  std::vector<StmtPtr> stmts;
};

enum class BinOp {
  Add, Sub, Mul, Div, Mod, Pow, Concat,
  Eq, Ne, Lt, Le, Gt, Ge, And, Or,
};

enum class UnOp { Neg, Not, Len };

struct FunctionDef {
  std::string name;  // for diagnostics; "<anonymous>" when unnamed
  std::vector<std::string> params;
  bool is_vararg = false;
  Block body;
  int line = 0;
};

struct Expr {
  enum class Kind {
    Nil, True, False, Number, String, Vararg,
    Name,      // str = identifier
    Index,     // a[b]  (a.b desugars to a["b"])
    Call,      // a = callee, list = args
    Method,    // a = object, str = method name, list = args
    Function,  // fn
    Table,     // list = positional items, fields = keyed items
    Binary,    // bop, a, b
    Unary,     // uop, a
  };

  Kind kind;
  int line = 0;
  double number = 0.0;
  std::string str;
  ExprPtr a;
  ExprPtr b;
  std::vector<ExprPtr> list;
  std::vector<std::pair<ExprPtr, ExprPtr>> fields;  // key expr -> value expr
  BinOp bop = BinOp::Add;
  UnOp uop = UnOp::Neg;
  std::shared_ptr<FunctionDef> fn;
};

struct Stmt {
  enum class Kind {
    ExprStat,   // rhs[0] is a call expression
    Assign,     // lhs = rhs (lists)
    Local,      // names = rhs
    If,         // clauses + optional else_body
    While,      // e1 cond, body
    Repeat,     // body, e1 cond (until)
    NumFor,     // names[0], e1 start, e2 stop, e3 step, body
    GenFor,     // names, rhs explist, body
    Do,         // body
    Return,     // rhs explist
    Break,
  };

  Kind kind;
  int line = 0;
  std::vector<ExprPtr> lhs;
  std::vector<ExprPtr> rhs;
  std::vector<std::string> names;
  ExprPtr e1;
  ExprPtr e2;
  ExprPtr e3;
  Block body;
  std::vector<std::pair<ExprPtr, Block>> clauses;
  std::optional<Block> else_body;
};

/// A parsed chunk. Shared ownership: closures created while running the
/// chunk pin it alive via shared_ptr.
struct Chunk {
  std::string name;
  Block block;
};

using ChunkPtr = std::shared_ptr<Chunk>;

}  // namespace mantle::lua
