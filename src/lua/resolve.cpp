#include "lua/parser.hpp"

/// \file resolve.cpp
/// Compile-time name resolution for luam: a single post-parse pass that
/// binds every Name expression to either a (hops, slot) pair into the
/// runtime frame chain or to the globals table, assigns dense slot
/// indices to all locals, and decides which blocks need their own
/// runtime frame. The tree-walker then indexes vectors instead of
/// hashing strings on every variable access.
///
/// Frame layout rules:
///   - The chunk top level and every function body are frames.
///   - A block materializes its own frame (fresh per entry) only if a
///     Function expression appears anywhere in its subtree — closures
///     capture frames by reference, so per-iteration loop locals must
///     live in per-iteration frames (the ClosuresShareLoopVariableScope
///     contract). Closure-free blocks are merged into the enclosing
///     frame with a watermark allocator: sibling blocks reuse slots.
///   - Merged-block slots never leak stale values: a `local` statement
///     always (re)writes its slots when executed, and any use before
///     that execution lexically resolves to an outer binding instead.

namespace mantle::lua {

namespace {

// ---------------------------------------------------------------------------
// Pass 1: mark blocks whose subtree creates closures.
// ---------------------------------------------------------------------------

bool scan_block(Block& b);

bool scan_expr(const ExprPtr& e) {
  if (!e) return false;
  bool found = false;
  if (e->kind == Expr::Kind::Function) {
    // The body still needs its own scan so nested blocks get marked.
    scan_block(e->fn->body);
    return true;
  }
  found |= scan_expr(e->a);
  found |= scan_expr(e->b);
  for (const ExprPtr& x : e->list) found |= scan_expr(x);
  for (const auto& [k, v] : e->fields) {
    found |= scan_expr(k);
    found |= scan_expr(v);
  }
  return found;
}

bool scan_stmt(const StmtPtr& s) {
  bool found = false;
  for (const ExprPtr& e : s->lhs) found |= scan_expr(e);
  for (const ExprPtr& e : s->rhs) found |= scan_expr(e);
  found |= scan_expr(s->e1);
  found |= scan_expr(s->e2);
  found |= scan_expr(s->e3);
  found |= scan_block(s->body);
  for (auto& [cond, body] : s->clauses) {
    found |= scan_expr(cond);
    found |= scan_block(body);
  }
  if (s->else_body) found |= scan_block(*s->else_body);
  return found;
}

bool scan_block(Block& b) {
  bool found = false;
  for (const StmtPtr& s : b.stmts) found |= scan_stmt(s);
  b.contains_closure = found;
  return found;
}

// ---------------------------------------------------------------------------
// Pass 2: slot assignment and name binding.
// ---------------------------------------------------------------------------

struct FrameCtx {
  std::uint32_t watermark = 0;  // next free slot
  std::uint32_t max_slots = 0;  // high watermark -> allocated frame size
  int depth = 0;                // runtime frame-chain depth

  std::uint32_t alloc() {
    const std::uint32_t s = watermark++;
    if (watermark > max_slots) max_slots = watermark;
    return s;
  }
};

struct Binding {
  std::string name;
  std::uint32_t slot;
  int frame_depth;
};

class Resolver {
 public:
  void run(Chunk& chunk) {
    FrameCtx top;
    frames_.push_back(&top);
    const std::size_t mark = bindings_.size();
    resolve_stmts(chunk.block);
    bindings_.resize(mark);
    frames_.pop_back();
    chunk.block.frame_slots = -1;  // merged into the chunk frame
    chunk.frame_slots = top.max_slots;
  }

 private:
  FrameCtx& frame() { return *frames_.back(); }

  std::uint32_t declare(const std::string& name) {
    const std::uint32_t slot = frame().alloc();
    bindings_.push_back({name, slot, frame().depth});
    return slot;
  }

  void bind_name(Expr& e) {
    for (std::size_t i = bindings_.size(); i-- > 0;) {
      if (bindings_[i].name != e.str) continue;
      e.ref = Expr::RefKind::Local;
      e.hops = static_cast<std::uint16_t>(frame().depth -
                                          bindings_[i].frame_depth);
      e.slot = bindings_[i].slot;
      return;
    }
    e.ref = Expr::RefKind::Global;
  }

  /// Resolve a block in its own lexical scope. When `materialize` the
  /// block gets a fresh FrameCtx (its own runtime frame); otherwise its
  /// locals extend the current frame and the watermark rolls back on
  /// exit so sibling blocks reuse the slots.
  void resolve_block(Block& b) {
    if (b.contains_closure) {
      FrameCtx inner;
      inner.depth = frame().depth + 1;
      frames_.push_back(&inner);
      const std::size_t mark = bindings_.size();
      resolve_stmts(b);
      bindings_.resize(mark);
      frames_.pop_back();
      b.frame_slots = static_cast<int>(inner.max_slots);
    } else {
      const std::uint32_t saved = frame().watermark;
      const std::size_t mark = bindings_.size();
      resolve_stmts(b);
      bindings_.resize(mark);
      frame().watermark = saved;
      b.frame_slots = -1;
    }
  }

  void resolve_stmts(Block& b) {
    for (const StmtPtr& s : b.stmts) resolve_stmt(*s);
  }

  /// Shared body for NumFor/GenFor: the loop variables live inside the
  /// body's scope (a fresh frame per iteration when closures capture
  /// them), so declare them after entering the body scope.
  void resolve_loop_body(Stmt& s) {
    const auto declare_names = [&] {
      s.slots.clear();
      for (const std::string& n : s.names) s.slots.push_back(declare(n));
    };
    if (s.body.contains_closure) {
      FrameCtx inner;
      inner.depth = frame().depth + 1;
      frames_.push_back(&inner);
      const std::size_t mark = bindings_.size();
      declare_names();
      resolve_stmts(s.body);
      bindings_.resize(mark);
      frames_.pop_back();
      s.body.frame_slots = static_cast<int>(inner.max_slots);
    } else {
      const std::uint32_t saved = frame().watermark;
      const std::size_t mark = bindings_.size();
      declare_names();
      resolve_stmts(s.body);
      bindings_.resize(mark);
      frame().watermark = saved;
      s.body.frame_slots = -1;
    }
  }

  void resolve_stmt(Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::ExprStat:
      case Stmt::Kind::Return:
        for (const ExprPtr& e : s.rhs) resolve_expr(*e);
        return;

      case Stmt::Kind::Assign:
        for (const ExprPtr& e : s.rhs) resolve_expr(*e);
        for (const ExprPtr& e : s.lhs) resolve_expr(*e);
        return;

      case Stmt::Kind::Local:
        if (s.local_function) {
          // `local function f`: f is visible to its own body.
          s.slots.clear();
          for (const std::string& n : s.names) s.slots.push_back(declare(n));
          for (const ExprPtr& e : s.rhs) resolve_expr(*e);
        } else {
          for (const ExprPtr& e : s.rhs) resolve_expr(*e);
          s.slots.clear();
          for (const std::string& n : s.names) s.slots.push_back(declare(n));
        }
        return;

      case Stmt::Kind::If:
        for (auto& [cond, body] : s.clauses) {
          resolve_expr(*cond);
          resolve_block(body);
        }
        if (s.else_body) resolve_block(*s.else_body);
        return;

      case Stmt::Kind::While:
        resolve_expr(*s.e1);
        resolve_block(s.body);
        return;

      case Stmt::Kind::Repeat: {
        // `until` sees the body's locals (Lua scoping rule), so the
        // condition resolves inside the body scope.
        if (s.body.contains_closure) {
          FrameCtx inner;
          inner.depth = frame().depth + 1;
          frames_.push_back(&inner);
          const std::size_t mark = bindings_.size();
          resolve_stmts(s.body);
          resolve_expr(*s.e1);
          bindings_.resize(mark);
          frames_.pop_back();
          s.body.frame_slots = static_cast<int>(inner.max_slots);
        } else {
          const std::uint32_t saved = frame().watermark;
          const std::size_t mark = bindings_.size();
          resolve_stmts(s.body);
          resolve_expr(*s.e1);
          bindings_.resize(mark);
          frame().watermark = saved;
          s.body.frame_slots = -1;
        }
        return;
      }

      case Stmt::Kind::NumFor:
        resolve_expr(*s.e1);
        resolve_expr(*s.e2);
        if (s.e3) resolve_expr(*s.e3);
        resolve_loop_body(s);
        return;

      case Stmt::Kind::GenFor:
        for (const ExprPtr& e : s.rhs) resolve_expr(*e);
        resolve_loop_body(s);
        return;

      case Stmt::Kind::Do:
        resolve_block(s.body);
        return;

      case Stmt::Kind::Break:
        return;
    }
  }

  void resolve_function(FunctionDef& def) {
    FrameCtx inner;
    inner.depth = frame().depth + 1;
    frames_.push_back(&inner);
    const std::size_t mark = bindings_.size();
    for (const std::string& p : def.params) declare(p);  // slots 0..n-1
    resolve_stmts(def.body);
    bindings_.resize(mark);
    frames_.pop_back();
    def.body.frame_slots = -1;  // merged into the call frame
    def.frame_slots = inner.max_slots;
  }

  void resolve_expr(Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Nil:
      case Expr::Kind::True:
      case Expr::Kind::False:
      case Expr::Kind::Number:
      case Expr::Kind::String:
      case Expr::Kind::Vararg:
        return;
      case Expr::Kind::Name:
        bind_name(e);
        return;
      case Expr::Kind::Function:
        resolve_function(*e.fn);
        return;
      case Expr::Kind::Index:
      case Expr::Kind::Binary:
        resolve_expr(*e.a);
        resolve_expr(*e.b);
        return;
      case Expr::Kind::Unary:
        resolve_expr(*e.a);
        return;
      case Expr::Kind::Call:
      case Expr::Kind::Method:
        resolve_expr(*e.a);
        for (const ExprPtr& x : e.list) resolve_expr(*x);
        return;
      case Expr::Kind::Table:
        for (const ExprPtr& x : e.list) resolve_expr(*x);
        for (auto& [k, v] : e.fields) {
          resolve_expr(*k);
          resolve_expr(*v);
        }
        return;
    }
  }

  std::vector<FrameCtx*> frames_;
  std::vector<Binding> bindings_;
};

}  // namespace

void resolve_chunk(Chunk& chunk) {
  scan_block(chunk.block);
  Resolver{}.run(chunk);
}

}  // namespace mantle::lua
