#include "lua/value.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mantle::lua {

bool Value::equals(const Value& o) const {
  if (v_.index() != o.v_.index()) return false;
  if (is_nil()) return true;
  if (is_bool()) return boolean() == o.boolean();
  if (is_number()) return number() == o.number();
  if (is_string()) return str() == o.str();
  if (is_table()) return table() == o.table();
  return callable() == o.callable();
}

const char* Value::type_name() const {
  switch (v_.index()) {
    case 0: return "nil";
    case 1: return "boolean";
    case 2: return "number";
    case 3: return "string";
    case 4: return "table";
    default: return "function";
  }
}

std::string Value::to_display_string() const {
  if (is_nil()) return "nil";
  if (is_bool()) return boolean() ? "true" : "false";
  if (is_number()) {
    const double d = number();
    // Non-finite text is pinned: platforms disagree on "inf" vs "Inf" and
    // negative NaNs print as "-nan" with glibc, which breaks byte-identical
    // determinism of traces and fuzz corpora. NaN has no meaningful sign.
    if (std::isnan(d)) return "nan";
    if (std::isinf(d)) return d > 0 ? "inf" : "-inf";
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f", d);
      return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.14g", d);
    return buf;
  }
  if (is_string()) return str();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s: %p", type_name(),
                is_table() ? static_cast<const void*>(table().get())
                           : static_cast<const void*>(callable().get()));
  return buf;
}

namespace {

bool is_space_byte(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<double> Value::to_number() const {
  if (is_number()) return number();
  if (!is_string()) return std::nullopt;
  // String coercion, done deterministically instead of leaning on platform
  // strtod quirks: leading/trailing whitespace (the full Lua set, newlines
  // included) is skipped, and 0x/0X hex literals are parsed here — C
  // libraries disagree on partial hex forms like "0x" and hex-float
  // extensions, and a policy fuzzer needs one answer everywhere.
  const std::string& raw = str();
  std::size_t b = 0;
  std::size_t e = raw.size();
  while (b < e && is_space_byte(raw[b])) ++b;
  while (e > b && is_space_byte(raw[e - 1])) --e;
  if (b == e) return std::nullopt;
  const std::string body = raw.substr(b, e - b);

  std::size_t i = 0;
  double sign = 1.0;
  if (body[i] == '+' || body[i] == '-') {
    if (body[i] == '-') sign = -1.0;
    ++i;
  }
  if (i + 1 < body.size() && body[i] == '0' &&
      (body[i + 1] == 'x' || body[i + 1] == 'X')) {
    // Hex integer: one or more hex digits, nothing else (Lua 5.1 hex
    // literals are integers; no hex floats).
    i += 2;
    if (i >= body.size()) return std::nullopt;
    double v = 0.0;
    for (; i < body.size(); ++i) {
      const int d = hex_digit(body[i]);
      if (d < 0) return std::nullopt;
      v = v * 16.0 + d;
    }
    return sign * v;
  }

  const char* s = body.c_str();
  char* end = nullptr;
  const double d = std::strtod(s, &end);
  if (end == s || *end != '\0') return std::nullopt;
  return d;
}

Value Table::get(const Value& key) const {
  if (key.is_number()) {
    const auto it = num_keys.find(key.number());
    return it == num_keys.end() ? Value{} : it->second;
  }
  if (key.is_string()) {
    const auto it = str_keys.find(key.str());
    return it == str_keys.end() ? Value{} : it->second;
  }
  if (key.is_nil()) throw LuaError("table index is nil");
  throw LuaError(std::string("unsupported table key type: ") + key.type_name());
}

void Table::set(const Value& key, Value value) {
  if (key.is_number()) return set_num(key.number(), std::move(value));
  if (key.is_string()) return set_str(key.str(), std::move(value));
  if (key.is_nil()) throw LuaError("table index is nil");
  throw LuaError(std::string("unsupported table key type: ") + key.type_name());
}

void Table::set_num(double key, Value value) {
  if (std::isnan(key)) throw LuaError("table index is NaN");
  if (value.is_nil()) {
    if (num_keys.erase(key) != 0) ++erase_version;
  } else {
    num_keys[key] = std::move(value);
  }
}

void Table::set_str(const std::string& key, Value value) {
  if (value.is_nil()) {
    if (str_keys.erase(key) != 0) ++erase_version;
  } else {
    str_keys[key] = std::move(value);
  }
}

Value* Table::slot_num(double key) {
  if (std::isnan(key)) throw LuaError("table index is NaN");
  return &num_keys[key];
}

double Table::length() const {
  double n = 0.0;
  while (num_keys.count(n + 1.0) != 0) n += 1.0;
  return n;
}

TablePtr make_table() { return std::make_shared<Table>(); }

CallablePtr make_builtin(std::string name, Callable::Builtin fn) {
  auto c = std::make_shared<Callable>();
  c->name = std::move(name);
  c->builtin = std::move(fn);
  return c;
}

}  // namespace mantle::lua
