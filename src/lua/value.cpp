#include "lua/value.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mantle::lua {

bool Value::equals(const Value& o) const {
  if (v_.index() != o.v_.index()) return false;
  if (is_nil()) return true;
  if (is_bool()) return boolean() == o.boolean();
  if (is_number()) return number() == o.number();
  if (is_string()) return str() == o.str();
  if (is_table()) return table() == o.table();
  return callable() == o.callable();
}

const char* Value::type_name() const {
  switch (v_.index()) {
    case 0: return "nil";
    case 1: return "boolean";
    case 2: return "number";
    case 3: return "string";
    case 4: return "table";
    default: return "function";
  }
}

std::string Value::to_display_string() const {
  if (is_nil()) return "nil";
  if (is_bool()) return boolean() ? "true" : "false";
  if (is_number()) {
    const double d = number();
    if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f", d);
      return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.14g", d);
    return buf;
  }
  if (is_string()) return str();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s: %p", type_name(),
                is_table() ? static_cast<const void*>(table().get())
                           : static_cast<const void*>(callable().get()));
  return buf;
}

std::optional<double> Value::to_number() const {
  if (is_number()) return number();
  if (is_string()) {
    const char* s = str().c_str();
    char* end = nullptr;
    const double d = std::strtod(s, &end);
    if (end == s) return std::nullopt;
    while (*end == ' ' || *end == '\t') ++end;
    if (*end != '\0') return std::nullopt;
    return d;
  }
  return std::nullopt;
}

Value Table::get(const Value& key) const {
  if (key.is_number()) {
    const auto it = num_keys.find(key.number());
    return it == num_keys.end() ? Value{} : it->second;
  }
  if (key.is_string()) {
    const auto it = str_keys.find(key.str());
    return it == str_keys.end() ? Value{} : it->second;
  }
  if (key.is_nil()) throw LuaError("table index is nil");
  throw LuaError(std::string("unsupported table key type: ") + key.type_name());
}

void Table::set(const Value& key, Value value) {
  if (key.is_number()) return set_num(key.number(), std::move(value));
  if (key.is_string()) return set_str(key.str(), std::move(value));
  if (key.is_nil()) throw LuaError("table index is nil");
  throw LuaError(std::string("unsupported table key type: ") + key.type_name());
}

void Table::set_num(double key, Value value) {
  if (std::isnan(key)) throw LuaError("table index is NaN");
  if (value.is_nil()) {
    if (num_keys.erase(key) != 0) ++erase_version;
  } else {
    num_keys[key] = std::move(value);
  }
}

void Table::set_str(const std::string& key, Value value) {
  if (value.is_nil()) {
    if (str_keys.erase(key) != 0) ++erase_version;
  } else {
    str_keys[key] = std::move(value);
  }
}

Value* Table::slot_num(double key) {
  if (std::isnan(key)) throw LuaError("table index is NaN");
  return &num_keys[key];
}

double Table::length() const {
  double n = 0.0;
  while (num_keys.count(n + 1.0) != 0) n += 1.0;
  return n;
}

TablePtr make_table() { return std::make_shared<Table>(); }

CallablePtr make_builtin(std::string name, Callable::Builtin fn) {
  auto c = std::make_shared<Callable>();
  c->name = std::move(name);
  c->builtin = std::move(fn);
  return c;
}

}  // namespace mantle::lua
