#include "cluster/config_bridge.hpp"

#include <set>

namespace mantle::cluster {

namespace {

struct KeyBinding {
  const char* key;
  void (*apply)(ClusterConfig&, const mantle::Config&, const char*);
};

void set_time_us(Time& slot, const mantle::Config& cfg, const char* key) {
  slot = static_cast<Time>(cfg.get_int(key, static_cast<long long>(slot)));
}

#define MANTLE_TIME_KEY(key, field)                                   \
  {key, [](ClusterConfig& c, const mantle::Config& v, const char* k) { \
     set_time_us(c.field, v, k);                                      \
   }}
#define MANTLE_DOUBLE_KEY(key, field)                                  \
  {key, [](ClusterConfig& c, const mantle::Config& v, const char* k) { \
     c.field = v.get_double(k, c.field);                               \
   }}
#define MANTLE_SIZE_KEY(key, field)                                    \
  {key, [](ClusterConfig& c, const mantle::Config& v, const char* k) { \
     c.field = static_cast<std::size_t>(                               \
         v.get_int(k, static_cast<long long>(c.field)));               \
   }}
#define MANTLE_INT_KEY(key, field)                                     \
  {key, [](ClusterConfig& c, const mantle::Config& v, const char* k) { \
     c.field = static_cast<int>(v.get_int(k, c.field));                \
   }}
#define MANTLE_BOOL_KEY(key, field)                                    \
  {key, [](ClusterConfig& c, const mantle::Config& v, const char* k) { \
     c.field = v.get_bool(k, c.field);                                 \
   }}

const std::vector<KeyBinding>& bindings() {
  static const std::vector<KeyBinding> b = {
      // CephFS-vocabulary balancing knobs.
      {"mds_bal_interval",
       [](ClusterConfig& c, const mantle::Config& v, const char* k) {
         c.bal_interval = static_cast<Time>(
             v.get_double(k, to_seconds(c.bal_interval)) * 1e6);
       }},
      MANTLE_SIZE_KEY("mds_bal_split_size", split_size),
      {"mds_bal_fragment_bits",
       [](ClusterConfig& c, const mantle::Config& v, const char* k) {
         c.split_bits = static_cast<std::uint8_t>(
             v.get_int(k, static_cast<long long>(c.split_bits)));
       }},
      MANTLE_SIZE_KEY("mds_bal_merge_size", merge_size),
      MANTLE_DOUBLE_KEY("mds_bal_need_min", need_min_factor),
      MANTLE_DOUBLE_KEY("mds_bal_min_rebalance", bal_min_load),

      // Graceful-degradation hardening (docs/ROBUSTNESS.md). Defaults:
      // retry_max=3, base=500ms, cap=10s, stuck=30 ticks, guard=on,
      // readmit=1 tick (no hysteresis).
      MANTLE_INT_KEY("mds_bal_export_retry_max", export_retry_max),
      MANTLE_TIME_KEY("mds_bal_export_retry_base_us", export_retry_base),
      MANTLE_TIME_KEY("mds_bal_export_retry_cap_us", export_retry_cap),
      MANTLE_INT_KEY("mds_bal_export_stuck_ticks", export_stuck_ticks),
      MANTLE_BOOL_KEY("mds_bal_hb_stale_guard", hb_stale_guard),
      MANTLE_INT_KEY("mds_bal_laggy_readmit_ticks", laggy_readmit_ticks),
      MANTLE_DOUBLE_KEY("mds_bal_laggy_factor", laggy_factor),

      // Simulator knobs.
      {"sim_num_mds",
       [](ClusterConfig& c, const mantle::Config& v, const char* k) {
         c.num_mds = static_cast<int>(v.get_int(k, c.num_mds));
       }},
      {"sim_seed",
       [](ClusterConfig& c, const mantle::Config& v, const char* k) {
         c.seed = static_cast<std::uint64_t>(
             v.get_int(k, static_cast<long long>(c.seed)));
       }},
      MANTLE_TIME_KEY("sim_net_latency_us", net_latency),
      MANTLE_TIME_KEY("sim_svc_create_us", svc_create),
      MANTLE_TIME_KEY("sim_svc_mkdir_us", svc_mkdir),
      MANTLE_TIME_KEY("sim_svc_getattr_us", svc_getattr),
      MANTLE_TIME_KEY("sim_svc_lookup_us", svc_lookup),
      MANTLE_TIME_KEY("sim_svc_readdir_us", svc_readdir),
      MANTLE_TIME_KEY("sim_svc_unlink_us", svc_unlink),
      MANTLE_TIME_KEY("sim_svc_forward_us", svc_forward),
      MANTLE_TIME_KEY("sim_svc_remote_prefix_us", svc_remote_prefix),
      MANTLE_TIME_KEY("sim_svc_scatter_gather_us", svc_scatter_gather),
      MANTLE_DOUBLE_KEY("sim_svc_jitter", svc_jitter),
      MANTLE_TIME_KEY("sim_hb_delay_us", hb_delay),
      MANTLE_TIME_KEY("sim_tick_jitter_us", tick_jitter),
      MANTLE_DOUBLE_KEY("sim_hb_jitter_frac", hb_jitter_frac),
      MANTLE_DOUBLE_KEY("sim_cpu_noise_pct", cpu_noise_pct),
      MANTLE_TIME_KEY("sim_mig_base_us", mig_base),
      MANTLE_TIME_KEY("sim_mig_per_entry_us", mig_per_entry),
      MANTLE_TIME_KEY("sim_session_flush_stall_us", session_flush_stall),
      MANTLE_DOUBLE_KEY("sim_mem_capacity_entries", mem_capacity_entries),
      MANTLE_SIZE_KEY("sim_trace_capacity", trace_capacity),
      MANTLE_SIZE_KEY("sim_provenance_capacity", provenance_capacity),
      MANTLE_SIZE_KEY("sim_provenance_max_ranks", provenance_max_ranks),
  };
  return b;
}

#undef MANTLE_TIME_KEY
#undef MANTLE_DOUBLE_KEY
#undef MANTLE_SIZE_KEY
#undef MANTLE_INT_KEY
#undef MANTLE_BOOL_KEY

}  // namespace

ClusterConfig apply_config(ClusterConfig base, const mantle::Config& cfg) {
  for (const KeyBinding& b : bindings())
    if (cfg.contains(b.key)) b.apply(base, cfg, b.key);
  return base;
}

std::vector<std::string> unknown_config_keys(const mantle::Config& cfg) {
  std::set<std::string> known;
  for (const KeyBinding& b : bindings()) known.insert(b.key);
  // Mantle policy hooks are consumed by MantleBalancer, not here.
  for (const char* k : {"mds_bal_metaload", "mds_bal_mdsload", "mds_bal_when",
                        "mds_bal_where", "mds_bal_howmuch"})
    known.insert(k);
  std::vector<std::string> unknown;
  for (const auto& [k, v] : cfg.all())
    if (known.count(k) == 0) unknown.push_back(k);
  return unknown;
}

}  // namespace mantle::cluster
