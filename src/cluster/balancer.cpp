#include "cluster/balancer.hpp"

#include <algorithm>
#include <cmath>

namespace mantle::cluster {

namespace {

/// big_first: ship the biggest dirfrags until the target is reached —
/// the original CephFS heuristic (Table 1, "how-much accuracy" row).
std::vector<std::size_t> select_big_first(
    const std::vector<ExportCandidate>& c, double target) {
  std::vector<std::size_t> picks;
  double sent = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (sent >= target) break;
    picks.push_back(i);
    sent += c[i].load;
  }
  return picks;
}

std::vector<std::size_t> select_small_first(
    const std::vector<ExportCandidate>& c, double target) {
  std::vector<std::size_t> picks;
  double sent = 0.0;
  for (std::size_t i = c.size(); i-- > 0;) {
    if (sent >= target) break;
    picks.push_back(i);
    sent += c[i].load;
  }
  std::reverse(picks.begin(), picks.end());
  return picks;
}

/// big_small: alternate biggest / smallest until the target is reached.
std::vector<std::size_t> select_big_small(
    const std::vector<ExportCandidate>& c, double target) {
  std::vector<std::size_t> picks;
  double sent = 0.0;
  std::size_t lo = 0;
  std::size_t hi = c.size();
  bool big = true;
  while (lo < hi && sent < target) {
    if (big) {
      picks.push_back(lo);
      sent += c[lo].load;
      ++lo;
    } else {
      --hi;
      picks.push_back(hi);
      sent += c[hi].load;
    }
    big = !big;
  }
  std::sort(picks.begin(), picks.end());
  return picks;
}

/// half: ship the first half of the candidates regardless of target —
/// Greedy Spill's "send exactly half the dirfrags" strategy.
std::vector<std::size_t> select_half(const std::vector<ExportCandidate>& c,
                                     double /*target*/) {
  std::vector<std::size_t> picks;
  for (std::size_t i = 0; i < (c.size() + 1) / 2; ++i) picks.push_back(i);
  return picks;
}

}  // namespace

std::vector<std::size_t> run_selector(
    const std::string& name, const std::vector<ExportCandidate>& candidates,
    double target) {
  if (candidates.empty() || target <= 0.0) return {};
  if (name == "big_first" || name == "big") return select_big_first(candidates, target);
  if (name == "small_first" || name == "small") return select_small_first(candidates, target);
  if (name == "big_small") return select_big_small(candidates, target);
  if (name == "half") return select_half(candidates, target);
  return {};  // unknown selector selects nothing
}

double selection_load(const std::vector<ExportCandidate>& candidates,
                      const std::vector<std::size_t>& picks) {
  double s = 0.0;
  for (const std::size_t i : picks) s += candidates[i].load;
  return s;
}

std::vector<std::size_t> best_selection(
    const std::vector<std::string>& names,
    const std::vector<ExportCandidate>& candidates, double target) {
  std::vector<std::size_t> best;
  double best_dist = HUGE_VAL;
  for (const std::string& name : names) {
    std::vector<std::size_t> picks = run_selector(name, candidates, target);
    if (picks.empty()) continue;
    const double dist = std::fabs(selection_load(candidates, picks) - target);
    if (dist < best_dist) {
      best_dist = dist;
      best = std::move(picks);
    }
  }
  return best;
}

}  // namespace mantle::cluster
