#pragma once

#include <array>
#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/balancer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timeline.hpp"
#include "mds/namespace.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "store/object_store.hpp"

/// \file cluster.hpp
/// The simulated CephFS metadata cluster: N MDS nodes serving one shared
/// namespace, with dynamic subtree partitioning, directory fragmentation,
/// heartbeat-based load exchange, and two-phase-commit inode migration.
/// This is the mechanism layer of Figure 2 in the paper ("send HB /
/// recv HB / rebalance / fragment / partition cluster / partition
/// namespace / migrate"); the policy decisions are delegated to a
/// per-node Balancer (either the hard-coded CephFS one or Mantle).

namespace mantle::sim {
class ShardRuntime;
}

namespace mantle::cluster {

using mantle::Rng;
using mantle::Time;
using mantle::Timeline;
using mantle::mds::DirFragId;
using mantle::mds::InodeId;
using mantle::mds::MdsRank;
using mantle::mds::MetaOp;

struct ClusterConfig {
  int num_mds = 1;
  std::uint64_t seed = 1;

  // -- service model (all times in simulated microseconds) -----------------
  Time net_latency = 100;        // one-way client<->MDS / MDS<->MDS hop
  Time svc_create = 150;
  Time svc_mkdir = 250;
  Time svc_getattr = 60;
  Time svc_lookup = 60;
  Time svc_readdir = 400;
  Time svc_unlink = 120;
  Time svc_forward = 30;         // cost of bouncing a misdirected request
  /// Extra per-request cost when the serving MDS is not the authority of
  /// the target's parent directory: it must resolve the path against
  /// replicated ancestor prefixes and keep them coherent. Part of the
  /// locality tax of §2.1 (fewer forwards, less coherency communication,
  /// less prefix-replica memory).
  Time svc_remote_prefix = 10;
  /// Per-mutation cost for each *additional* MDS sharing fragments of the
  /// target directory: updating fragstats/rstats on a directory whose
  /// dirfrags span k MDS nodes requires scatter-gather rounds with the
  /// other k-1 ("halting updates on a directory, sending stats around the
  /// cluster, and waiting for the authoritative MDS", §4.1 footnote).
  /// This is what makes spreading one hot directory progressively more
  /// expensive as more MDS nodes share it.
  Time svc_scatter_gather = 18;
  double svc_jitter = 0.08;      // +/- fraction on service times

  // -- balancing -------------------------------------------------------------
  Time bal_interval = 10 * kSec;   // heartbeat + rebalance period (CephFS: 10s)
  Time hb_delay = 250 * kMsec;     // pack + network + unpack => stale views
  /// Daemons are not synchronized: each balancer tick lands up to this
  /// much after its nominal time, and heartbeat delays vary by up to
  /// +/- hb_jitter_frac. Both feed the run-to-run irreproducibility the
  /// paper documents in Figure 4 (decisions race against stale state).
  Time tick_jitter = 500 * kMsec;
  double hb_jitter_frac = 0.5;
  double cpu_noise_pct = 4.0;      // stddev of instantaneous CPU measurement
  double bal_min_load = 0.01;      // below this an MDS is "idle"
  double need_min_factor = 1.0;    // target-load fudge (ablation: 0.8, §2.2.3)
  int max_drill_depth = 8;         // namespace drill-down bound
  double too_big_factor = 1.0;     // candidates above target*factor get drilled

  // -- directory fragmentation -------------------------------------------------
  std::size_t split_size = 50000;  // dentries before a dirfrag splits (paper)
  std::uint8_t split_bits = 3;     // first split makes 2^3 = 8 dirfrags (paper)
  std::size_t merge_size = 50;     // fragmented dirs below this merge back

  // -- migration cost model ------------------------------------------------------
  Time mig_base = 20 * kMsec;       // 2PC journaling handshake floor
  Time mig_per_entry = 10;          // per exported dentry
  Time session_flush_stall = 10 * kMsec;  // per-client stall on session flush
  double mem_capacity_entries = 400000;  // entries mapping to 100% memory

  // -- fault tolerance -----------------------------------------------------------
  /// A peer whose last heartbeat is older than laggy_factor * bal_interval
  /// is treated as dead-or-laggy: zero load in the ClusterView, excluded
  /// from total_load and from export targets. <= 0 disables detection.
  double laggy_factor = 3.0;
  /// Journal replay cost on MDS takeover/restart: base handshake plus a
  /// per-live-entry charge (recovery time proportional to journal size).
  Time replay_base = 50 * kMsec;
  Time replay_per_entry = 200;
  /// On a crash, survivors adopt the dead rank's auth subtrees after
  /// replaying its journal. When false the subtrees stay with the dead
  /// rank and only become serviceable once it restarts and replays.
  bool takeover_on_crash = true;
  /// Reject heartbeats that would regress a peer's state: payloads whose
  /// epoch predates the sender's last crash (duplicated/delayed from a
  /// dead incarnation) or whose sent_at is older than what is already
  /// stored (out-of-order delivery under injected delays). Disabling this
  /// reintroduces the stale-epoch bug the chaos shrinker is seeded with.
  bool hb_stale_guard = true;
  /// Bounded retry for 2PC exports aborted by a peer crash: up to
  /// export_retry_max re-attempts per subtree, delayed by exponential
  /// backoff (base * 2^attempt, capped, +/- deterministic jitter).
  /// 0 disables retries.
  int export_retry_max = 3;
  Time export_retry_base = 500 * kMsec;
  Time export_retry_cap = 10 * kSec;
  /// Watchdog on in-flight 2PC exports: a migration still active after
  /// this many balance intervals is aborted and rolled back instead of
  /// freezing its subtree forever. 0 disables the watchdog. The default
  /// is far above any simulated migration duration, so it only fires on
  /// genuinely wedged exports.
  int export_stuck_ticks = 30;
  /// Readmission hysteresis for laggy peers: a rank that was excluded
  /// from the ClusterView must look fresh for this many consecutive
  /// balancer ticks before it is trusted as an export target again, so a
  /// flapping peer does not oscillate in and out of the view. 1 =
  /// readmit on the first fresh observation (the pre-hysteresis
  /// behavior).
  int laggy_readmit_ticks = 1;

  // -- observability -----------------------------------------------------------
  /// Bound on the cluster's trace sink. Overflowing events are counted in
  /// trace().dropped_events() instead of stored; the cap is part of the
  /// config, so truncated timelines are still deterministic.
  std::size_t trace_capacity = std::size_t{1} << 20;
  /// Bound on the decision provenance recorder (one record per balancer
  /// tick per rank). Overflowing records are counted, not stored, with
  /// the same determinism argument as trace_capacity.
  std::size_t provenance_capacity = 4096;
  /// Above this many ranks the per-rank input tables (mdss/loads/alive)
  /// are elided from stored records — the input digest still covers the
  /// full table, so cross-run comparisons keep working at 512 ranks
  /// without each record costing O(ranks) memory.
  std::size_t provenance_max_ranks = 64;

  // -- parallel execution ------------------------------------------------------
  /// Rank shards for the parallel engine (0 = classic single-engine
  /// mode; rank r lives on shard r % shards). Part of the *schedule*:
  /// changing it changes the (still deterministic) event interleaving,
  /// so it belongs in the config and the obs dump digest. The worker
  /// thread count deliberately does NOT live here — it must never be
  /// able to change output.
  int shards = 0;
  /// Epoch lookahead window of the sharded engine, simulated
  /// microseconds. Must not exceed the minimum cross-shard (heartbeat)
  /// latency. 0 = auto: min(50ms, hb_delay * (1 - hb_jitter_frac)).
  Time lookahead = 0;
};

enum class OpType { Create, Mkdir, Getattr, Lookup, Readdir, Unlink, Rename };

/// Number of OpType values (keep in sync with the enum; Rename is last).
inline constexpr std::size_t kNumOpTypes =
    static_cast<std::size_t>(OpType::Rename) + 1;

const char* op_name(OpType op);

/// A client metadata request, addressed by directory inode + dentry name.
struct Request {
  std::uint64_t id = 0;
  int client = -1;
  OpType op = OpType::Getattr;
  InodeId dir = mantle::mds::kNoInode;
  std::string name;
  // Rename only: destination directory + dentry name.
  InodeId dst_dir = mantle::mds::kNoInode;
  std::string dst_name;
  Time issued_at = 0;
  int hops = 0;  // forwards experienced so far
  /// Root causal span of the logical client op. Forwards and client
  /// retries reuse it (new request id, same span), so everything one op
  /// caused — bounces, dead-letter parks, re-injections — shares one id.
  obs::SpanId span = obs::kNoSpan;
};

struct Reply {
  std::uint64_t req_id = 0;
  int client = -1;
  bool ok = false;
  MdsRank served_by = mantle::mds::kNoRank;
  InodeId dir = mantle::mds::kNoInode;   // for the client's auth cache
  mantle::mds::frag_t frag;              // which dirfrag served the op
  InodeId result_ino = mantle::mds::kNoInode;
  int hops = 0;
  Time issued_at = 0;
  Time finished_at = 0;
  obs::SpanId span = obs::kNoSpan;  // echoed from the request
};

/// A completed or in-flight subtree migration, for logs and tests.
struct MigrationRecord {
  Time started = 0;
  Time finished = 0;
  MdsRank from = mantle::mds::kNoRank;
  MdsRank to = mantle::mds::kNoRank;
  DirFragId frag;
  std::size_t entries = 0;
  std::size_t sessions_flushed = 0;

  bool operator==(const MigrationRecord&) const = default;
};

/// One entry of the cluster's recovery log: every fault-handling action
/// (crash observed, migration aborted, takeover, replay) is recorded here
/// in event order, so tests can assert the recovery timeline and the
/// determinism suite can compare two runs event by event.
struct RecoveryEvent {
  enum class Kind {
    Crash,             // rank went down
    MigrationAborted,  // 2PC export aborted because rank died (peer = other end)
    TakeoverStart,     // peer begins replaying rank's journal
    TakeoverComplete,  // peer now owns rank's former subtrees
    RestartStart,      // rank is back, replaying its own journal
    ReplayComplete,    // rank finished replay and is serving again
  };
  Time at = 0;
  Kind kind = Kind::Crash;
  MdsRank rank = mantle::mds::kNoRank;  // the subject of the event
  MdsRank peer = mantle::mds::kNoRank;  // survivor / migration peer, if any
  std::uint64_t detail = 0;  // journal entries replayed, requests dropped, ...

  bool operator==(const RecoveryEvent&) const = default;
};

const char* recovery_kind_name(RecoveryEvent::Kind kind);

/// Network-level fault decisions, consulted on every heartbeat send. The
/// default (null) injects nothing; fault::FaultInjector implements this
/// with seeded probabilistic drops/duplicates/delays.
class NetworkFaults {
 public:
  virtual ~NetworkFaults() = default;
  virtual bool drop_heartbeat(MdsRank from, MdsRank to) = 0;
  virtual bool duplicate_heartbeat(MdsRank from, MdsRank to) = 0;
  virtual Time extra_heartbeat_delay(MdsRank from, MdsRank to) = 0;
};

struct MdsStats {
  std::uint64_t completed = 0;
  std::uint64_t forwards_out = 0;  // requests this node had to bounce
  std::uint64_t hits = 0;          // requests it served as the authority
  std::uint64_t remote_prefix_ops = 0;  // served with a foreign parent dir
  std::uint64_t exports = 0;
  std::uint64_t imports = 0;
  /// Completions by op type, indexed by static_cast<size_t>(OpType). A
  /// fixed array bumped in MdsNode::complete(): per-rank op mixes without
  /// any per-client container on the hot path.
  std::array<std::uint64_t, kNumOpTypes> ops_by_type{};
  Timeline throughput{mantle::kSec};  // completed requests per second
};

/// Dense per-rank session bookkeeping. This used to be a std::set<int>
/// per rank: O(log n) node-allocating insert on every completed request.
/// Client ids are dense (Scenario hands them out 0..N-1), so a byte map
/// plus a membership vector gives O(1) amortized note() and iteration in
/// first-contact order.
class SessionTable {
 public:
  /// Record a session for `client` (idempotent). Caller guards client >= 0.
  void note(int client) {
    const auto id = static_cast<std::size_t>(client);
    if (id >= seen_.size()) seen_.resize(id + 1, 0);
    if (seen_[id] == 0) {
      seen_[id] = 1;
      members_.push_back(client);
    }
  }

  /// Clients with a session on this rank, in first-contact order.
  const std::vector<int>& members() const noexcept { return members_; }
  std::size_t size() const noexcept { return members_.size(); }

 private:
  std::vector<std::uint8_t> seen_;
  std::vector<int> members_;
};

class MdsCluster;

/// Cached handles into the cluster's metrics registry. Hot paths (request
/// completion, heartbeat fan-out) bump these directly instead of paying a
/// name lookup per event; the registry owns the storage.
struct ClusterMetrics {
  explicit ClusterMetrics(obs::MetricsRegistry& reg);

  obs::Counter& requests_completed;
  obs::Counter& requests_dropped;
  obs::Counter& forwards;
  obs::Counter& hb_sent;
  obs::Counter& hb_received;
  obs::Counter& hb_dropped;
  obs::Counter& hb_duplicated;
  obs::Counter& hb_stale_rejected;
  obs::Counter& when_true;
  obs::Counter& when_false;
  obs::Counter& exports_started;
  obs::Counter& exports_committed;
  obs::Counter& exports_aborted;
  obs::Counter& exports_retried;
  obs::Counter& exports_timed_out;
  obs::Counter& splits;
  obs::Counter& merges;
  obs::Counter& dead_letter_parked;
  obs::Counter& dead_letter_flushed;
  obs::Counter& crashes;
  obs::Counter& restarts;
  obs::Counter& takeovers;
  obs::Counter& sessions_flushed;
  obs::Counter& provenance_records;
  obs::Counter& provenance_dropped;
  obs::Histogram& request_latency_ms;
  obs::Histogram& migration_entries;
  obs::Histogram& migration_duration_ms;
  obs::Histogram& replay_entries;
};

/// One metadata server: a FIFO service queue, per-window utilization
/// accounting, heartbeat state, and a pluggable balancing policy.
class MdsNode {
 public:
  MdsNode(MdsCluster& cluster, MdsRank rank, Rng rng);

  MdsRank rank() const { return rank_; }

  void set_balancer(std::unique_ptr<Balancer> b) { balancer_ = std::move(b); }
  Balancer* balancer() { return balancer_.get(); }

  /// A request arrives over the network (from a client or a forward).
  void on_arrival(Request r);

  /// Heartbeat from a peer lands after its network delay.
  void on_heartbeat(const HeartbeatPayload& hb);

  /// Periodic balancer tick: measure, send heartbeats, maybe rebalance.
  void tick();

  const MdsStats& stats() const { return stats_; }
  MdsStats& stats() { return stats_; }
  std::size_t queue_length() const { return queue_.size(); }

  /// Last heartbeat applied from each rank (index = rank; [rank()] is
  /// this node's own latest measurement). Read by the chaos invariant
  /// checker to assert per-sender (epoch, sent_at) never regresses.
  const std::vector<HeartbeatPayload>& heartbeats() const { return hb_; }

  /// Fresh metrics snapshot (also what goes into this node's heartbeat).
  HeartbeatPayload measure();

 private:
  friend class MdsCluster;

  void maybe_start();
  void process_front();
  void complete(Request r, Time svc);
  Time service_time(OpType op);

  /// Crash teardown: drop the queue and the op in service, invalidate
  /// every scheduled continuation (epoch bump), reset window accounting.
  /// Returns the number of requests lost.
  std::size_t reset_for_crash(Time now);

  MdsCluster& cluster_;
  MdsRank rank_;
  Rng rng_;
  std::deque<Request> queue_;
  bool busy_ = false;
  /// Bumped on every crash; scheduled service continuations capture the
  /// epoch they were created under and no-op if it has moved on (the
  /// request they carried died with the process).
  std::uint64_t epoch_ = 0;

  // Window accounting for CPU / request-rate metrics.
  Time window_start_ = 0;
  Time busy_in_window_ = 0;
  std::uint64_t done_in_window_ = 0;

  std::vector<HeartbeatPayload> hb_;  // last received from each rank
  /// Consecutive ticks each peer has looked fresh (non-laggy); a peer
  /// must reach laggy_readmit_ticks before it is trusted again.
  std::vector<int> fresh_streak_;
  std::unique_ptr<Balancer> balancer_;
  MdsStats stats_;
  mantle::DecayCounter forward_pop_;  // decayed load from misdirected reqs
};

/// The cluster: owns the namespace, the object store, the MDS nodes, the
/// subtree-authority map and the migration machinery.
class MdsCluster {
 public:
  MdsCluster(sim::Engine& engine, ClusterConfig cfg);

  sim::Engine& engine() { return engine_; }
  const ClusterConfig& config() const { return cfg_; }

  // -- Sharded execution --------------------------------------------------------
  /// Wire the cluster to a sharded runtime: enables per-shard lanes on
  /// the metrics/trace/provenance sinks and builds the per-rank
  /// tick-jitter rng streams. Call before start(); nullptr detaches.
  /// The cluster must have been constructed on the runtime's global()
  /// engine.
  void attach_shard_runtime(sim::ShardRuntime* rt);
  sim::ShardRuntime* shard_runtime() const { return shards_rt_; }

  /// Clock of the calling lane: during phase A this is the running shard
  /// engine's clock, otherwise the serial engine's. All cluster event
  /// code uses this instead of engine().now().
  Time sim_now() const;
  /// Schedule onto the serial (global) lane — every shared-state
  /// mutation goes through here. From a shard lane the event is routed
  /// via the epoch mailbox; classic mode schedules directly.
  void sched_after(Time delay, sim::Callback fn);
  void sched_at(Time when, sim::Callback fn);
  /// Schedule a rank-affine event (balancer tick, heartbeat delivery)
  /// onto `rank`'s lane: its shard engine in sharded mode, else the
  /// classic engine.
  void sched_rank_after(MdsRank rank, Time delay, sim::Callback fn);
  /// Fold the per-shard trace/provenance buffers into the serial sinks
  /// in fixed shard order. The shard runtime calls this at every epoch
  /// barrier (set_epoch_drain).
  void drain_obs_shards();
  mantle::mds::Namespace& ns() { return ns_; }
  const mantle::mds::Namespace& ns() const { return ns_; }
  store::ObjectStore& object_store() { return store_; }

  /// Cluster-wide metrics registry and structured trace sink. Always on:
  /// every counter bump and trace record uses simulated time and
  /// deterministic ordering, so two identical seeded runs export
  /// byte-identical snapshots.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::TraceSink& trace() { return trace_; }
  const obs::TraceSink& trace() const { return trace_; }

  /// Decision provenance flight recorder: one DecisionRecord per
  /// balancer tick, linked to the tick's trace span.
  obs::ProvenanceRecorder& provenance() { return provenance_; }
  const obs::ProvenanceRecorder& provenance() const { return provenance_; }

  /// Finalize and store one decision record: compute the input digest,
  /// apply the provenance_max_ranks truncation, bump the provenance
  /// counters and mirror a `provenance-decision` event onto the
  /// record's tick span.
  void record_provenance(obs::DecisionRecord rec);

  int num_mds() const { return static_cast<int>(nodes_.size()); }
  MdsNode& node(MdsRank r) { return *nodes_.at(static_cast<std::size_t>(r)); }
  /// A rank's MDS journal (migration events; replayed on recovery).
  store::Journal& journal(MdsRank r) {
    return *journals_.at(static_cast<std::size_t>(r));
  }

  /// Install a balancing policy on one node (or all nodes via rank -1).
  void set_balancer(MdsRank rank, std::unique_ptr<Balancer> b);

  /// Factory used by set_balancer_all to give each node its own instance.
  using BalancerFactory = std::function<std::unique_ptr<Balancer>(MdsRank)>;
  void set_balancer_all(const BalancerFactory& factory);

  /// Kick off periodic balancer ticks (call once before running the engine).
  void start();

  /// Deliver replies to whoever owns the clients.
  void set_reply_handler(std::function<void(const Reply&)> cb) {
    reply_cb_ = std::move(cb);
  }

  /// Client entry point: send a request toward `guess` (the client's
  /// cached authority); the cluster applies network latency. Requests
  /// addressed to a down rank are dropped on delivery (dead host) — the
  /// client's retry timer is what recovers them.
  void client_submit(Request r, MdsRank guess);

  /// Batched client entry point: one network event carries a whole batch
  /// of requests toward the same guessed rank, instead of one engine
  /// event per request. Arrival order at the MDS is the batch order.
  /// Used by ClientPopulation aggregates, whose per-tick arrival counts
  /// would otherwise dominate the event queue at 1M modeled clients.
  void client_submit_batch(MdsRank guess, std::vector<Request> batch);

  // -- Liveness / fault handling ----------------------------------------------
  /// Is this rank serving? (false while down or replaying its journal).
  bool is_up(MdsRank rank) const;
  /// Is this rank mid-replay (restarted, not yet serving)?
  bool is_replaying(MdsRank rank) const;
  int num_up() const;

  /// How many times this rank has crashed (its incarnation number). New
  /// heartbeats carry it; the stale guard rejects payloads from older
  /// incarnations.
  std::uint64_t crash_epoch(MdsRank rank) const;

  /// Lowest up rank != avoid (else lowest up rank, else 0): where a client
  /// re-aims a timed-out request, standing in for the MDSMap it would get
  /// from the monitors.
  MdsRank pick_up_rank(MdsRank avoid) const;

  /// Kill an MDS: its queue and in-service request are lost, in-flight
  /// migrations it participates in abort (rollback + deferred-request
  /// re-injection), and — with takeover_on_crash — the lowest surviving
  /// rank replays its journal and adopts its auth subtrees. Returns false
  /// if the rank was already down.
  bool crash_mds(MdsRank rank);

  /// Bring a crashed MDS back: it replays its own journal (time
  /// proportional to live entries) and then rejoins heartbeating and
  /// balancing with whatever subtrees it still owns. Returns false if the
  /// rank was not down.
  bool restart_mds(MdsRank rank);

  /// Install probabilistic network faults (heartbeat drop/dup/delay).
  /// Caller keeps ownership; pass nullptr to disable.
  void set_network_faults(NetworkFaults* nf) { net_faults_ = nf; }
  NetworkFaults* network_faults() const { return net_faults_; }

  // -- Authority / subtree map -------------------------------------------------
  MdsRank auth_of(const DirFragId& id) const;
  const std::map<DirFragId, MdsRank>& subtree_roots() const { return subtree_roots_; }

  /// Subtree roots owned by one rank.
  std::vector<DirFragId> roots_of(MdsRank rank) const;

  /// True if `outer` is an ancestor-or-equal dirfrag of `inner` (i.e. the
  /// path from inner up to the root passes through outer).
  bool frag_contains(const DirFragId& outer, const DirFragId& inner) const;

  /// A dirfrag is frozen while a migration that covers it is in flight.
  bool is_frozen(const DirFragId& id) const;

  /// Aggregate popularity of the auth-subtree rooted at `root` counting
  /// only fragments owned by `rank` (kNoRank = count everything).
  PopSnapshot subtree_pop(const DirFragId& root, MdsRank rank, Time now) const;

  /// Dentries in the subtree hanging below `root` (same rank filter).
  std::size_t subtree_entry_count(const DirFragId& root, MdsRank rank) const;

  /// Start a two-phase-commit export of `frag` from its current authority
  /// to `to`. No-op if already owned by `to`, frozen, or invalid. The
  /// migration gets its own causal span; `parent_span` links it to the
  /// balancer-tick decision that ordered it (kNoSpan for manual exports).
  bool export_subtree(const DirFragId& frag, MdsRank to,
                      obs::SpanId parent_span = obs::kNoSpan);

  /// Order an export from a balancer tick. In sharded mode the tick runs
  /// on a shard lane while 2PC/journal state is serial, so the export is
  /// deferred to the global lane; same-epoch picks from two ranks that
  /// overlap are refused there deterministically by export_subtree's
  /// re-checks (frozen / authority moved). Classic mode exports inline.
  void request_export(const DirFragId& frag, MdsRank to,
                      obs::SpanId parent_span);

  /// Forward a request to another MDS (one network hop).
  void route_to(MdsRank rank, Request r);

  /// Park a request on the in-flight migration covering `id`; it is
  /// re-injected at the importer when the migration commits.
  void defer_to_migration(const DirFragId& id, Request r);

  /// Split a dirfrag that crossed the size threshold (GIGA+-style
  /// mechanism; policy is just the threshold in the config).
  void maybe_split(const DirFragId& id);

  /// Merge a shrunken fragmented directory back into a single fragment.
  /// Only possible when every fragment has the same authority (CephFS
  /// cannot merge across an auth boundary) and none is mid-migration.
  /// Returns true if a merge happened.
  bool maybe_merge(InodeId dir);

  /// Write back dirty dirfrags owned by `rank` (bumps STORE pops).
  void flush_dirty(MdsRank rank);

  /// Flush the client sessions attached to two ranks (metadata moved
  /// between them: migration commit or a cross-MDS "slave" rename). Each
  /// affected client stalls for session_flush_stall. Returns the number
  /// of sessions flushed.
  std::size_t flush_client_sessions(MdsRank a, MdsRank b);

  /// Hand the subtree rooted at `dir` from one authority to another
  /// (directory renamed across an auth boundary: it follows its new
  /// parent). Nested foreign bounds keep their owners.
  void reparent_subtree(InodeId dir, MdsRank from, MdsRank to);

  /// Build the export-candidate pool for `rank` against a target load,
  /// drilling into candidates too hot to move whole (paper: "subtrees are
  /// divided and migrated only if their ancestors are too popular").
  /// Sorted by descending load; frozen and foreign fragments excluded.
  std::vector<ExportCandidate> gather_candidates(MdsRank rank, double target,
                                                 Balancer& policy, Time now);

  // -- Introspection -----------------------------------------------------------
  /// In-flight 2PC exports (records with finished == 0). The chaos
  /// invariant checker asserts both ends of every active migration are
  /// alive (no orphaned export state survives a crash).
  std::vector<MigrationRecord> active_migration_records() const;
  std::size_t active_migration_count() const { return active_migrations_.size(); }
  /// Requests currently parked on down subtrees (must drain at quiesce).
  std::size_t dead_letter_size() const { return dead_letter_.size(); }
  /// Heartbeats rejected by the stale-epoch/ordering guard.
  std::uint64_t stale_heartbeats_rejected() const {
    return hb_stale_rejected_.load(std::memory_order_relaxed);
  }
  const std::vector<MigrationRecord>& migrations() const { return migrations_; }
  /// Exports that aborted mid-2PC because one end died (finished = abort time).
  const std::vector<MigrationRecord>& aborted_migrations() const {
    return aborted_migrations_;
  }
  /// Crash/takeover/replay events in order (see RecoveryEvent).
  const std::vector<RecoveryEvent>& recovery_log() const { return recovery_log_; }
  /// Requests lost to dead ranks (dropped queues + dead-host deliveries).
  std::uint64_t requests_dropped() const { return requests_dropped_; }
  std::uint64_t total_sessions_flushed() const { return sessions_flushed_; }
  std::uint64_t total_forwards() const;
  std::uint64_t total_hits() const;
  std::uint64_t total_completed() const;

  /// Per-rank count of dentries currently under its authority.
  std::vector<std::size_t> auth_entry_counts() const;

  /// Dentries under one rank's authority. The heartbeat path uses this:
  /// walking only the caller's subtrees keeps a 512-rank cluster's
  /// per-interval measurement cost at one namespace sweep total, not one
  /// per rank.
  std::size_t auth_entry_count(MdsRank rank) const;

 private:
  friend class MdsNode;

  struct ActiveMigration {
    MigrationRecord rec;
    std::vector<Request> deferred;
    obs::SpanId span = obs::kNoSpan;  // start/commit/abort share it
  };

  enum class NodeLife { Up, Down, Replaying };

  void deliver_reply(Reply rep);
  void note_session(MdsRank rank, int client);
  void finish_migration(std::size_t idx);
  void schedule_tick(MdsRank rank);
  void abort_migrations_of(MdsRank dead);
  /// Tear down one active migration (2PC abort): journal the abort on the
  /// surviving end(s), re-route deferred requests, log the recovery
  /// event. `dead` = kNoRank for a watchdog (stuck-export) abort where
  /// both ends are still alive.
  void abort_migration(std::size_t id, MdsRank dead, const char* reason);
  /// Re-attempt an aborted export after exponential backoff, bounded by
  /// export_retry_max per subtree.
  void schedule_export_retry(const DirFragId& frag, MdsRank to);
  /// Flip every frag of `rank`'s subtrees (and the subtree map) to `to`,
  /// charging FETCH heat on the adopter. Used by takeover.
  void adopt_subtrees(MdsRank from, MdsRank to);
  /// Re-inject parked requests whose current authority is up again.
  void flush_dead_letters();
  /// Route toward the authority of `frag`, parking in the dead-letter
  /// queue if that rank is down (re-injected when it recovers).
  void route_or_park(const DirFragId& frag, Request r);
  Time replay_duration(MdsRank rank) const;
  /// `span` overrides the trace span of the mirrored trace event (used by
  /// migration aborts, which belong to the migration's span); kNoSpan
  /// falls back to the rank's current crash-recovery span.
  void log_recovery(RecoveryEvent::Kind kind, MdsRank rank, MdsRank peer,
                    std::uint64_t detail, obs::SpanId span = obs::kNoSpan);

  sim::Engine& engine_;
  ClusterConfig cfg_;
  Rng rng_;
  mantle::mds::Namespace ns_;
  store::ObjectStore store_;
  obs::MetricsRegistry metrics_;
  obs::TraceSink trace_;
  obs::ProvenanceRecorder provenance_;
  ClusterMetrics om_;  // cached handles into metrics_ (must follow it)
  std::vector<std::unique_ptr<MdsNode>> nodes_;
  std::vector<std::unique_ptr<store::Journal>> journals_;

  std::map<DirFragId, MdsRank> subtree_roots_;
  std::map<std::size_t, ActiveMigration> active_migrations_;  // by id
  std::size_t next_migration_id_ = 0;
  std::vector<MigrationRecord> migrations_;
  std::vector<MigrationRecord> aborted_migrations_;
  /// Crash-abort retry accounting per subtree (cleared on commit). The
  /// backoff jitter draws from a dedicated stream derived from the seed,
  /// so arming retries never perturbs the main rng's event sequence.
  std::map<DirFragId, int> export_retry_attempts_;
  Rng retry_rng_;
  /// Bumped from the heartbeat-delivery path, which runs on shard lanes
  /// concurrently in sharded mode (rare path: atomic, not a shard cell).
  std::atomic<std::uint64_t> hb_stale_rejected_{0};

  // -- sharded execution -------------------------------------------------------
  sim::ShardRuntime* shards_rt_ = nullptr;
  /// Per-rank tick-jitter streams for sharded mode: the tick re-arm draw
  /// happens on the rank's shard lane and cannot share the cluster rng.
  /// Empty in classic mode (which keeps drawing from rng_, so classic
  /// event sequences are untouched by this feature).
  std::vector<Rng> tick_rng_;

  std::vector<SessionTable> sessions_;     // per-rank client sessions (dense)
  std::vector<Time> client_stall_until_;   // session-flush stall, by client id
  /// Scratch for flush_client_sessions' two-rank union: ids stamped with
  /// the current generation are already counted in this flush.
  std::vector<std::uint64_t> flush_mark_;
  std::uint64_t flush_gen_ = 0;
  std::uint64_t sessions_flushed_ = 0;

  // -- fault state -------------------------------------------------------------
  std::vector<NodeLife> life_;
  std::vector<std::uint64_t> crash_epoch_;  // guards stale takeover timers
  /// Per-rank span of the current crash→takeover→replay episode; the
  /// whole recovery sequence of one crash shares it.
  std::vector<obs::SpanId> recovery_span_;
  std::vector<std::pair<DirFragId, Request>> dead_letter_;
  std::vector<RecoveryEvent> recovery_log_;
  std::uint64_t requests_dropped_ = 0;
  NetworkFaults* net_faults_ = nullptr;

  std::function<void(const Reply&)> reply_cb_;
};

}  // namespace mantle::cluster
