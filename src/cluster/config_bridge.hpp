#pragma once

#include "cluster/cluster.hpp"
#include "common/config.hpp"

/// \file config_bridge.hpp
/// Maps the string-keyed Config registry (the `ceph.conf` / `injectargs`
/// surface) onto the typed ClusterConfig. Key names follow the CephFS
/// option vocabulary where one exists (`mds_bal_interval`,
/// `mds_bal_split_size`, `mds_bal_fragment_bits`, `mds_bal_need_min`);
/// simulator-only knobs use the `sim_` prefix.

namespace mantle::cluster {

/// Overlay every recognized key of `cfg` onto `base` and return the
/// result. Unknown keys are ignored (callers can validate separately
/// with unknown_config_keys()).
ClusterConfig apply_config(ClusterConfig base, const mantle::Config& cfg);

/// Keys in `cfg` that apply_config would not consume (likely typos).
std::vector<std::string> unknown_config_keys(const mantle::Config& cfg);

}  // namespace mantle::cluster
