#include "cluster/cluster.hpp"
#include <bit>

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "obs/profile.hpp"
#include "sim/shard.hpp"

namespace mantle::cluster {

using mantle::mds::DirFrag;
using mantle::mds::frag_t;
using mantle::mds::hash_dentry_name;
using mantle::mds::kNoInode;
using mantle::mds::kNoRank;

const char* recovery_kind_name(RecoveryEvent::Kind kind) {
  switch (kind) {
    case RecoveryEvent::Kind::Crash: return "crash";
    case RecoveryEvent::Kind::MigrationAborted: return "migration-aborted";
    case RecoveryEvent::Kind::TakeoverStart: return "takeover-start";
    case RecoveryEvent::Kind::TakeoverComplete: return "takeover-complete";
    case RecoveryEvent::Kind::RestartStart: return "restart-start";
    case RecoveryEvent::Kind::ReplayComplete: return "replay-complete";
  }
  return "?";
}

const char* op_name(OpType op) {
  switch (op) {
    case OpType::Create: return "create";
    case OpType::Mkdir: return "mkdir";
    case OpType::Getattr: return "getattr";
    case OpType::Lookup: return "lookup";
    case OpType::Readdir: return "readdir";
    case OpType::Unlink: return "unlink";
    case OpType::Rename: return "rename";
  }
  return "?";
}

namespace {

/// The hard-coded CephFS metaload used whenever no policy is installed.
double default_metaload(const PopSnapshot& p) {
  return p.ird + 2.0 * p.iwr + p.readdir + 2.0 * p.fetch + 4.0 * p.store;
}

MetaOp op_to_meta(OpType op) {
  switch (op) {
    case OpType::Create:
    case OpType::Mkdir:
    case OpType::Unlink:
    case OpType::Rename:
      return MetaOp::IWR;
    case OpType::Getattr:
    case OpType::Lookup:
      return MetaOp::IRD;
    case OpType::Readdir:
      return MetaOp::READDIR;
  }
  return MetaOp::IRD;
}

}  // namespace

// ===========================================================================
// ClusterMetrics
// ===========================================================================

ClusterMetrics::ClusterMetrics(obs::MetricsRegistry& reg)
    : requests_completed(reg.counter("mds_requests_completed_total",
                                     "client requests answered")),
      requests_dropped(reg.counter("mds_requests_dropped_total",
                                   "requests lost to dead ranks")),
      forwards(reg.counter("mds_forwards_total",
                           "misdirected requests bounced to the authority")),
      hb_sent(reg.counter("mds_heartbeats_sent_total",
                          "heartbeat deliveries scheduled")),
      hb_received(reg.counter("mds_heartbeats_received_total",
                              "heartbeats landed at a live peer")),
      hb_dropped(reg.counter("mds_heartbeats_dropped_total",
                             "heartbeats lost to injected network faults")),
      hb_duplicated(reg.counter("mds_heartbeats_duplicated_total",
                                "heartbeats duplicated by network faults")),
      hb_stale_rejected(reg.counter(
          "mds_heartbeats_stale_rejected_total",
          "heartbeats refused by the stale-epoch/ordering guard")),
      when_true(reg.counter("bal_when_true_total",
                            "balancer ticks that decided to migrate")),
      when_false(reg.counter("bal_when_false_total",
                             "balancer ticks that decided to hold")),
      exports_started(reg.counter("migrations_started_total",
                                  "2PC subtree exports begun")),
      exports_committed(reg.counter("migrations_committed_total",
                                    "2PC subtree exports committed")),
      exports_aborted(reg.counter("migrations_aborted_total",
                                  "2PC exports aborted by a crash")),
      exports_retried(reg.counter("migrations_retried_total",
                                  "aborted exports re-attempted after "
                                  "exponential backoff")),
      exports_timed_out(reg.counter("migrations_timed_out_total",
                                    "stuck 2PC exports aborted by the "
                                    "watchdog")),
      splits(reg.counter("dirfrag_splits_total",
                         "directory fragments split on size")),
      merges(reg.counter("dirfrag_merges_total",
                         "fragmented directories merged back")),
      dead_letter_parked(reg.counter("dead_letter_parked_total",
                                     "requests parked on down subtrees")),
      dead_letter_flushed(reg.counter("dead_letter_flushed_total",
                                      "parked requests re-injected")),
      crashes(reg.counter("mds_crashes_total", "MDS processes killed")),
      restarts(reg.counter("mds_restarts_total", "MDS restarts begun")),
      takeovers(reg.counter("mds_takeovers_total",
                            "dead ranks adopted by a survivor")),
      sessions_flushed(reg.counter("client_sessions_flushed_total",
                                   "client sessions flushed on moves")),
      provenance_records(reg.counter("mantle_provenance_records_total",
                                     "balancer decisions captured by the "
                                     "provenance recorder")),
      provenance_dropped(reg.counter("mantle_provenance_dropped_total",
                                     "decisions dropped at provenance "
                                     "capacity")),
      request_latency_ms(reg.histogram("request_latency_ms",
                                       obs::buckets::latency_ms(),
                                       "client-visible request latency")),
      migration_entries(reg.histogram("migration_entries",
                                      obs::buckets::entries(),
                                      "dentries moved per committed export")),
      migration_duration_ms(reg.histogram("migration_duration_ms",
                                          obs::buckets::latency_ms(),
                                          "2PC start-to-commit wall time")),
      replay_entries(reg.histogram("journal_replay_entries",
                                   obs::buckets::entries(),
                                   "journal entries replayed per recovery")) {}

// ===========================================================================
// MdsNode
// ===========================================================================

MdsNode::MdsNode(MdsCluster& cluster, MdsRank rank, Rng rng)
    : cluster_(cluster), rank_(rank), rng_(rng) {
  hb_.resize(static_cast<std::size_t>(cluster_.config().num_mds));
  for (std::size_t i = 0; i < hb_.size(); ++i)
    hb_[i].rank = static_cast<MdsRank>(i);
  fresh_streak_.assign(hb_.size(), 0);
}

void MdsNode::on_arrival(Request r) {
  queue_.push_back(std::move(r));
  maybe_start();
}

void MdsNode::on_heartbeat(const HeartbeatPayload& hb) {
  if (hb.rank >= 0 && static_cast<std::size_t>(hb.rank) < hb_.size()) {
    const Time now = cluster_.sim_now();
    if (cluster_.config().hb_stale_guard) {
      // A payload from a dead incarnation (duplicated/delayed across the
      // sender's crash) or one older than what is already stored must not
      // overwrite fresher state: after a takeover it would resurrect the
      // dead rank's pre-crash load in every survivor's view.
      const HeartbeatPayload& cur = hb_[static_cast<std::size_t>(hb.rank)];
      if (hb.epoch < cluster_.crash_epoch(hb.rank) || hb.epoch < cur.epoch ||
          (hb.epoch == cur.epoch && hb.sent_at < cur.sent_at)) {
        cluster_.hb_stale_rejected_.fetch_add(1, std::memory_order_relaxed);
        cluster_.om_.hb_stale_rejected.inc();
        cluster_.trace_.event(
            now, obs::EventKind::HeartbeatStaleRejected, rank_, hb.rank, {},
            {{"sent_at_us", static_cast<double>(hb.sent_at)},
             {"epoch", static_cast<double>(hb.epoch)},
             {"current_epoch",
              static_cast<double>(cluster_.crash_epoch(hb.rank))}});
        return;
      }
    }
    hb_[static_cast<std::size_t>(hb.rank)] = hb;
    cluster_.om_.hb_received.inc();
    cluster_.trace_.event(
        now, obs::EventKind::HeartbeatReceived, rank_, hb.rank, {},
        {{"age_us", static_cast<double>(now - hb.sent_at)},
         {"load", hb.all_metaload},
         {"cpu", hb.cpu_pct}});
  }
}

void MdsNode::maybe_start() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  process_front();
}

Time MdsNode::service_time(OpType op) {
  const ClusterConfig& cfg = cluster_.config();
  Time base = cfg.svc_getattr;
  switch (op) {
    case OpType::Create: base = cfg.svc_create; break;
    case OpType::Mkdir: base = cfg.svc_mkdir; break;
    case OpType::Getattr: base = cfg.svc_getattr; break;
    case OpType::Lookup: base = cfg.svc_lookup; break;
    case OpType::Readdir: base = cfg.svc_readdir; break;
    case OpType::Unlink: base = cfg.svc_unlink; break;
    case OpType::Rename: base = cfg.svc_mkdir; break;  // link+unlink work
  }
  if (cfg.svc_jitter > 0.0) {
    const double f = 1.0 + cfg.svc_jitter * (2.0 * rng_.next_double() - 1.0);
    base = static_cast<Time>(static_cast<double>(base) * f);
  }
  return std::max<Time>(base, 1);
}

void MdsNode::process_front() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  Request r = std::move(queue_.front());
  queue_.pop_front();

  auto& ns = cluster_.ns();

  // Continuations scheduled below die with the process on a crash: they
  // capture the current epoch and no-op if it has moved on.
  const std::uint64_t ep = epoch_;

  const mantle::mds::Dir* d = ns.dir(r.dir);
  if (d == nullptr) {
    // Unknown directory: answer with an error after a lookup-ish cost.
    const Time svc = service_time(OpType::Lookup);
    busy_in_window_ += svc;
    cluster_.sched_after(svc, [this, ep, r]() {
      if (ep != epoch_) return;
      Reply rep;
      rep.req_id = r.id;
      rep.client = r.client;
      rep.ok = false;
      rep.served_by = rank_;
      rep.dir = r.dir;
      rep.hops = r.hops;
      rep.span = r.span;
      rep.issued_at = r.issued_at;
      rep.finished_at = cluster_.sim_now();
      cluster_.deliver_reply(rep);
      process_front();
    });
    return;
  }

  const DirFragId target =
      r.name.empty() ? DirFragId{r.dir, d->frags.begin()->first}
                     : ns.frag_of(r.dir, r.name);

  if (cluster_.is_frozen(target)) {
    // The covering subtree is mid-migration: park the request with the
    // migration; it is re-injected at the importer on completion.
    cluster_.defer_to_migration(target, std::move(r));
    cluster_.sched_after(0, [this, ep]() {
      if (ep == epoch_) process_front();
    });
    return;
  }

  const MdsRank auth = cluster_.auth_of(target);
  if (auth != rank_ && auth != kNoRank) {
    // Misdirected: bounce to the authority (the "forward" of Figure 3b).
    ++stats_.forwards_out;
    cluster_.om_.forwards.inc();
    ++r.hops;
    forward_pop_.hit(cluster_.sim_now(), cluster_.ns().decay_rate());
    const Time fwd = cluster_.config().svc_forward;
    busy_in_window_ += fwd;
    cluster_.sched_after(fwd, [this, ep, r = std::move(r), target]() mutable {
      if (ep != epoch_) return;
      // Re-resolve at send time; if the authority is down the request
      // parks on the dead-letter queue instead of vanishing into a dead
      // host, and is re-injected when the subtree recovers.
      cluster_.route_or_park(target, std::move(r));
      process_front();
    });
    return;
  }

  ++stats_.hits;
  Time svc = service_time(r.op);
  // Coherency taxes of lost locality (§2.1):
  // 1. Replicated-prefix traversal: the target's parent directory is
  //    owned elsewhere, so the path is resolved against replicas that
  //    must be kept coherent with their authority.
  if (target.ino != ns.root()) {
    const mantle::mds::Inode* node = ns.inode(target.ino);
    if (node != nullptr && node->parent != mantle::mds::kNoInode) {
      const DirFragId parent_frag = ns.frag_of(node->parent, node->name);
      if (cluster_.auth_of(parent_frag) != rank_) {
        svc += cluster_.config().svc_remote_prefix;
        ++stats_.remote_prefix_ops;
      }
    }
  }
  // 1b. Cross-MDS ("slave") rename: the destination fragment lives on a
  //     different MDS, which must participate in a two-phase update.
  if (r.op == OpType::Rename && r.dst_dir != kNoInode) {
    const mantle::mds::Dir* dd = ns.dir(r.dst_dir);
    if (dd != nullptr) {
      const DirFragId dst = ns.frag_of(r.dst_dir, r.dst_name);
      if (cluster_.auth_of(dst) != rank_)
        svc += 2 * cluster_.config().net_latency +
               cluster_.config().svc_remote_prefix;
    }
  }
  // 2. Scatter-gather on mutations: a directory whose fragments span k
  //    MDS nodes needs its fragstats/rstats kept coherent across all of
  //    them; every sharer exchanges scatter-gather rounds with every
  //    other and the lock hand-offs compound, so the per-op tax is
  //    quadratic in the number of extra sharers. The coefficient is
  //    calibrated (see DESIGN.md §5) so the single-shared-directory
  //    experiments reproduce the paper's crossover: spilling to 2 MDS
  //    wins, spreading over 4 loses.
  if (r.op == OpType::Create || r.op == OpType::Mkdir ||
      r.op == OpType::Unlink || r.op == OpType::Rename) {
    int sharer_mask = 0;
    for (const auto& [fg, df] : d->frags)
      if (df.auth >= 0 && df.auth < 31) sharer_mask |= 1 << df.auth;
    const int sharers = std::popcount(static_cast<unsigned>(sharer_mask));
    if (sharers > 1)
      svc += cluster_.config().svc_scatter_gather *
             static_cast<Time>((sharers - 1) * (sharers - 1));
  }
  busy_in_window_ += svc;
  cluster_.sched_after(svc, [this, ep, r = std::move(r), svc]() mutable {
    if (ep != epoch_) return;
    complete(std::move(r), svc);
    process_front();
  });
}

std::size_t MdsNode::reset_for_crash(Time now) {
  // The queue and the op in service die with the process; the epoch bump
  // cancels every scheduled continuation.
  std::size_t lost = queue_.size() + (busy_ ? 1 : 0);
  queue_.clear();
  busy_ = false;
  ++epoch_;
  window_start_ = now;
  busy_in_window_ = 0;
  done_in_window_ = 0;
  return lost;
}

void MdsNode::complete(Request r, Time /*svc*/) {
  auto& ns = cluster_.ns();
  const Time now = cluster_.sim_now();

  Reply rep;
  rep.req_id = r.id;
  rep.client = r.client;
  rep.served_by = rank_;
  rep.dir = r.dir;
  rep.hops = r.hops;
  rep.span = r.span;
  rep.issued_at = r.issued_at;
  rep.finished_at = now;

  const mantle::mds::Dir* d = ns.dir(r.dir);
  if (d != nullptr) {
    // Tell the client which fragment this landed in, so it can keep a
    // frag-granular map of the namespace (CephFS clients learn the
    // dirfragtree from replies).
    rep.frag = r.name.empty() ? d->frags.begin()->first
                              : ns.frag_of(r.dir, r.name).frag;
  }
  if (d == nullptr) {
    rep.ok = false;
  } else {
    switch (r.op) {
      case OpType::Create: {
        const auto ino = ns.create(r.dir, r.name, now);
        rep.ok = ino != kNoInode;
        rep.result_ino = ino;
        break;
      }
      case OpType::Mkdir: {
        const auto ino = ns.mkdir(r.dir, r.name, now);
        rep.ok = ino != kNoInode;
        rep.result_ino = ino;
        break;
      }
      case OpType::Getattr:
      case OpType::Lookup: {
        const auto ino = ns.lookup(r.dir, r.name);
        rep.ok = ino != kNoInode;
        rep.result_ino = ino;
        break;
      }
      case OpType::Readdir:
        rep.ok = true;
        break;
      case OpType::Unlink:
        rep.ok = ns.remove(r.dir, r.name);
        break;
      case OpType::Rename: {
        const InodeId moving = ns.lookup(r.dir, r.name);
        const bool moving_dir =
            moving != kNoInode && ns.inode(moving) != nullptr &&
            ns.inode(moving)->is_dir;
        const DirFragId dst = ns.frag_of(r.dst_dir, r.dst_name);
        rep.ok = ns.rename(r.dir, r.name, r.dst_dir, r.dst_name);
        rep.result_ino = moving;
        if (rep.ok && moving_dir) {
          const MdsRank dst_auth = cluster_.auth_of(dst);
          if (dst_auth != rank_ && dst_auth != kNoRank) {
            // A directory renamed across an auth boundary follows its new
            // parent: the whole moved subtree changes hands, and "client
            // sessions ... are flushed when slave MDS nodes rename or
            // migrate directories."
            cluster_.reparent_subtree(moving, rank_, dst_auth);
            cluster_.flush_client_sessions(rank_, dst_auth);
          }
        }
        break;
      }
    }
  }

  // Load accounting: the op heats the dirfrag it touched (and, nested, all
  // of its ancestors).
  if (d != nullptr) {
    if (r.op == OpType::Readdir) {
      // A listing touches every fragment of the directory.
      std::vector<frag_t> frags;
      for (const auto& [f, df] : d->frags) frags.push_back(f);
      for (const frag_t f : frags)
        ns.record_op({r.dir, f}, MetaOp::READDIR, now);
    } else {
      const DirFragId target = ns.frag_of(r.dir, r.name);
      ns.record_op(target, op_to_meta(r.op), now);
      if (r.op == OpType::Create || r.op == OpType::Mkdir)
        cluster_.maybe_split(target);
      else if (r.op == OpType::Unlink)
        cluster_.maybe_merge(r.dir);
    }
  }

  ++stats_.completed;
  ++stats_.ops_by_type[static_cast<std::size_t>(r.op)];
  ++done_in_window_;
  cluster_.om_.requests_completed.inc();
  stats_.throughput.record(now);
  cluster_.note_session(rank_, r.client);
  cluster_.deliver_reply(rep);
}

HeartbeatPayload MdsNode::measure() {
  const Time now = cluster_.sim_now();
  const ClusterConfig& cfg = cluster_.config();
  HeartbeatPayload hb;
  hb.rank = rank_;
  hb.sent_at = now;
  hb.epoch = cluster_.crash_epoch(rank_);

  const Time window = std::max<Time>(now - window_start_, 1);
  const double busy_frac =
      static_cast<double>(busy_in_window_) / static_cast<double>(window);
  // Instantaneous CPU measurement: true utilization plus sampling noise —
  // the paper's "instantaneous measurements make the balancer sensitive to
  // common system perturbations".
  double cpu = busy_frac * 100.0;
  if (cfg.cpu_noise_pct > 0.0) cpu += rng_.gaussian(0.0, cfg.cpu_noise_pct);
  hb.cpu_pct = std::clamp(cpu, 0.0, 100.0);
  hb.req_rate = static_cast<double>(done_in_window_) / to_seconds(window);
  hb.queue_len = static_cast<double>(queue_.size());

  const auto own_entries = cluster_.auth_entry_count(rank_);
  hb.mem_pct = std::clamp(
      100.0 * static_cast<double>(own_entries) / cfg.mem_capacity_entries,
      0.0, 100.0);

  // Metadata loads via the installed policy (or the CephFS default).
  auto apply_metaload = [&](const PopSnapshot& p) {
    return balancer_ ? balancer_->metaload(p) : default_metaload(p);
  };
  double auth_load = 0.0;
  for (const DirFragId& root : cluster_.roots_of(rank_))
    auth_load += apply_metaload(cluster_.subtree_pop(root, rank_, now));
  hb.auth_metaload = auth_load;
  hb.all_metaload = auth_load + forward_pop_.get(now, cluster_.ns().decay_rate());
  return hb;
}

void MdsNode::tick() {
  obs::ScopedPhase prof(obs::ProfilePhase::ClusterTick);
  const Time now = cluster_.sim_now();
  const ClusterConfig& cfg = cluster_.config();

  // Snapshot the policy's cumulative evaluation cost before any hook
  // runs (measure() already calls metaload), so the provenance record
  // carries the deltas this tick cost.
  const Balancer::EvalStats ev0 =
      balancer_ != nullptr ? balancer_->eval_stats() : Balancer::EvalStats{};

  HeartbeatPayload me = measure();
  hb_[static_cast<std::size_t>(rank_)] = me;

  // Heartbeats take time to pack, travel and unpack; peers see the past,
  // and how far in the past varies per delivery. The network fault layer
  // may drop a delivery, duplicate it, or stretch its delay further.
  NetworkFaults* nf = cluster_.network_faults();
  for (int p = 0; p < cluster_.num_mds(); ++p) {
    if (p == rank_) continue;
    if (nf != nullptr && nf->drop_heartbeat(rank_, p)) {
      cluster_.om_.hb_dropped.inc();
      cluster_.trace_.event(now, obs::EventKind::HeartbeatDropped, rank_, p);
      continue;
    }
    int copies = 1;
    if (nf != nullptr && nf->duplicate_heartbeat(rank_, p)) {
      copies = 2;
      cluster_.om_.hb_duplicated.inc();
      cluster_.trace_.event(now, obs::EventKind::HeartbeatDuplicated, rank_, p);
    }
    cluster_.om_.hb_sent.inc();
    cluster_.trace_.event(now, obs::EventKind::HeartbeatSent, rank_, p, {},
                          {{"load", me.all_metaload}, {"cpu", me.cpu_pct}});
    for (int c = 0; c < copies; ++c) {
      Time delay = cfg.hb_delay;
      if (cfg.hb_jitter_frac > 0.0) {
        const double f =
            1.0 + cfg.hb_jitter_frac * (2.0 * rng_.next_double() - 1.0);
        delay = static_cast<Time>(static_cast<double>(delay) * f);
      }
      if (nf != nullptr) delay += nf->extra_heartbeat_delay(rank_, p);
      // Rank-affine delivery: lands on the receiver's shard lane. The
      // delay is bounded below by hb_delay * (1 - hb_jitter_frac), which
      // is what caps the sharded runtime's lookahead window.
      cluster_.sched_rank_after(p, delay, [this, p, me]() {
        if (cluster_.is_up(p)) cluster_.node(p).on_heartbeat(me);
      });
    }
  }

  if (balancer_ != nullptr) {
    ClusterView view;
    view.whoami = rank_;
    view.now = now;
    view.mdss = hb_;
    // Laggy-peer detection: a rank whose heartbeat is older than
    // laggy_factor balance intervals is presumed dead. Its stale load is
    // dropped from the view so policies neither count it toward the
    // cluster total nor pick it as an importer. Readmission applies
    // hysteresis: a peer that went laggy must look fresh for
    // laggy_readmit_ticks consecutive ticks before it is trusted again,
    // so a flapping rank does not oscillate in and out of the view (each
    // oscillation would re-aim exports at it).
    view.alive.assign(hb_.size(), 1);
    if (cfg.laggy_factor > 0.0) {
      const Time window = static_cast<Time>(
          cfg.laggy_factor * static_cast<double>(cfg.bal_interval));
      const int need = std::max(cfg.laggy_readmit_ticks, 1);
      for (std::size_t i = 0; i < hb_.size(); ++i) {
        if (static_cast<MdsRank>(i) == rank_) continue;
        const bool fresh = now - hb_[i].sent_at <= window;
        fresh_streak_[i] = fresh ? fresh_streak_[i] + 1 : 0;
        if (fresh_streak_[i] < need) view.alive[i] = 0;
      }
    }
    view.loads.resize(hb_.size());
    view.total_load = 0.0;
    for (std::size_t i = 0; i < hb_.size(); ++i) {
      view.loads[i] = view.alive[i] ? balancer_->mdsload(hb_[i]) : 0.0;
      view.total_load += view.loads[i];
    }

    // The whole tick's decision chain (when -> where -> howmuch) shares
    // one causal span; migrations it orders are child spans of it.
    const obs::SpanId tick_span = cluster_.trace_.next_span();

    // Provenance: capture the exact hook environment the decision saw.
    obs::DecisionRecord rec;
    rec.at = now;
    rec.rank = rank_;
    rec.span = tick_span;
    rec.policy = balancer_->name();
    rec.min_load = cfg.bal_min_load;
    rec.mdss.reserve(hb_.size());
    for (const HeartbeatPayload& h : hb_)
      rec.mdss.push_back({h.auth_metaload, h.all_metaload, h.cpu_pct,
                          h.mem_pct, h.queue_len, h.req_rate});
    rec.loads = view.loads;
    rec.alive = view.alive;
    rec.total_load = view.total_load;

    const bool migrate =
        view.total_load >= cfg.bal_min_load && balancer_->when(view);
    rec.go = migrate;
    (migrate ? cluster_.om_.when_true : cluster_.om_.when_false).inc();
    const std::size_t me_idx = static_cast<std::size_t>(rank_);
    cluster_.trace_.event(
        now, obs::EventKind::WhenDecision, rank_, -1, {},
        {{"go", migrate ? 1.0 : 0.0},
         {"my_load", me_idx < view.loads.size() ? view.loads[me_idx] : 0.0},
         {"total_load", view.total_load}},
        tick_span);
    if (migrate) {
      std::vector<double> targets = balancer_->where(view);
      targets.resize(hb_.size(), 0.0);
      rec.targets = targets;
      {
        obs::TraceEvent ev;
        ev.at = now;
        ev.kind = obs::EventKind::WhereDecision;
        ev.rank = rank_;
        ev.span = tick_span;
        // Always emit the totals, even when every target was sanitized
        // away, so analyzers can tell "chose to send nothing" (fields
        // present, zero) from a malformed event.
        double surviving = 0.0;
        double load_total = 0.0;
        for (std::size_t t = 0; t < targets.size(); ++t) {
          if (targets[t] > 0.0 && static_cast<MdsRank>(t) != rank_) {
            surviving += 1.0;
            load_total += targets[t];
          }
        }
        ev.fields.emplace_back("targets_total", surviving);
        ev.fields.emplace_back("shipped_total", load_total);
        for (std::size_t t = 0; t < targets.size(); ++t)
          if (targets[t] > 0.0 && static_cast<MdsRank>(t) != rank_)
            ev.fields.emplace_back("to" + std::to_string(t), targets[t]);
        cluster_.trace_.record(std::move(ev));
      }
      // One howmuch() per tick: the strategy list is a per-policy constant,
      // not a per-target one.
      const std::vector<std::string> selectors = balancer_->howmuch();
      rec.selectors = selectors;
      for (std::size_t t = 0; t < targets.size(); ++t) {
        if (static_cast<MdsRank>(t) == rank_) continue;
        if (!view.alive[t]) continue;  // never export to a laggy/dead peer
        const double goal = targets[t] * cfg.need_min_factor;
        if (goal <= cfg.bal_min_load) continue;
        std::vector<ExportCandidate> pool =
            cluster_.gather_candidates(rank_, goal, *balancer_, now);
        const std::vector<std::size_t> picks =
            best_selection(selectors, pool, goal);
        cluster_.trace_.event(
            now, obs::EventKind::HowmuchDecision, rank_, static_cast<int>(t),
            {},
            {{"goal", goal},
             {"pool", static_cast<double>(pool.size())},
             {"picked", static_cast<double>(picks.size())},
             {"shipped", selection_load(pool, picks)}},
            tick_span);
        obs::ProvenanceShipment ship;
        ship.target = static_cast<int>(t);
        ship.goal = goal;
        ship.pool = pool.size();
        ship.shipped = selection_load(pool, picks);
        for (const std::size_t idx : picks) {
          ship.picks.push_back({pool[idx].frag.str(), pool[idx].load,
                                static_cast<std::uint64_t>(pool[idx].entries)});
          cluster_.request_export(pool[idx].frag, static_cast<MdsRank>(t),
                                  tick_span);
        }
        rec.ships.push_back(std::move(ship));
      }
    }

    const Balancer::EvalStats ev1 = balancer_->eval_stats();
    rec.lua_steps = ev1.lua_steps - ev0.lua_steps;
    rec.hook_errors = ev1.hook_errors - ev0.hook_errors;
    rec.cache_hits = ev1.cache_hits - ev0.cache_hits;
    rec.cache_misses = ev1.cache_misses - ev0.cache_misses;
    rec.cache_recompiles = ev1.cache_recompiles - ev0.cache_recompiles;
    cluster_.record_provenance(std::move(rec));
  }

  // Reset the measurement window.
  window_start_ = now;
  busy_in_window_ = 0;
  done_in_window_ = 0;
}

// ===========================================================================
// MdsCluster
// ===========================================================================

MdsCluster::MdsCluster(sim::Engine& engine, ClusterConfig cfg)
    : engine_(engine), cfg_(cfg), rng_(cfg.seed), trace_(cfg.trace_capacity),
      provenance_(cfg.provenance_capacity), om_(metrics_),
      // Independent backoff-jitter stream: derived from the seed but not
      // forked from rng_, so arming export retries never shifts the event
      // sequences of fault-free runs.
      retry_rng_(cfg.seed ^ 0x9e3779b97f4a7c15ULL) {
  // The recorder bumps these itself so that in sharded mode the bump
  // happens at the (deterministic) epoch drain, not on the shard lane.
  provenance_.attach_counters(&om_.provenance_records, &om_.provenance_dropped);
  sessions_.resize(static_cast<std::size_t>(cfg_.num_mds));
  life_.resize(static_cast<std::size_t>(cfg_.num_mds), NodeLife::Up);
  crash_epoch_.resize(static_cast<std::size_t>(cfg_.num_mds), 0);
  recovery_span_.resize(static_cast<std::size_t>(cfg_.num_mds), obs::kNoSpan);
  for (int r = 0; r < cfg_.num_mds; ++r) {
    nodes_.push_back(std::make_unique<MdsNode>(*this, r, rng_.fork()));
    journals_.push_back(std::make_unique<store::Journal>(
        store_, "mds" + std::to_string(r) + ".journal"));
  }
  // Rank 0 starts as the authority for the whole namespace.
  const DirFragId root{ns_.root(), frag_t()};
  ns_.frag(root)->auth = 0;
  subtree_roots_[root] = 0;
}

void MdsCluster::record_provenance(obs::DecisionRecord rec) {
  // Digest the *full* input table before any truncation, so same-seed
  // runs compare equal digests even when stored tables are elided.
  rec.digest = obs::input_digest(rec);
  if (rec.mdss.size() > cfg_.provenance_max_ranks) {
    rec.mdss.clear();
    rec.loads.clear();
    rec.alive.clear();
    rec.truncated = true;
  }
  const Time at = rec.at;
  const int rank = rec.rank;
  const obs::SpanId span = rec.span;
  const std::string digest = rec.digest;
  provenance_.record(std::move(rec));  // bumps the attached counters
  trace_.event(at, obs::EventKind::ProvenanceRecorded, rank, -1, digest, {},
               span);
}

// ===========================================================================
// Sharded execution plumbing
// ===========================================================================

void MdsCluster::attach_shard_runtime(sim::ShardRuntime* rt) {
  shards_rt_ = rt;
  tick_rng_.clear();
  if (rt == nullptr) return;
  const int shards = rt->num_shards();
  metrics_.enable_sharding(shards);
  trace_.enable_sharding(shards);
  provenance_.enable_sharding(shards);
  // Derived from the seed but not forked from rng_: arming these streams
  // must not shift the classic-mode event sequences.
  tick_rng_.reserve(static_cast<std::size_t>(cfg_.num_mds));
  for (int r = 0; r < cfg_.num_mds; ++r)
    tick_rng_.emplace_back(cfg_.seed ^
                           (0xc2b2ae3d27d4eb4fULL *
                            (static_cast<std::uint64_t>(r) + 1)));
}

Time MdsCluster::sim_now() const {
  return shards_rt_ != nullptr ? shards_rt_->context_now() : engine_.now();
}

void MdsCluster::sched_after(Time delay, sim::Callback fn) {
  if (shards_rt_ != nullptr)
    shards_rt_->post_global_after(delay, std::move(fn));
  else
    engine_.schedule_after(delay, std::move(fn));
}

void MdsCluster::sched_at(Time when, sim::Callback fn) {
  if (shards_rt_ != nullptr)
    shards_rt_->post_global_at(when, std::move(fn));
  else
    engine_.schedule_at(when, std::move(fn));
}

void MdsCluster::sched_rank_after(MdsRank rank, Time delay, sim::Callback fn) {
  if (shards_rt_ != nullptr)
    shards_rt_->post_shard_after(shards_rt_->shard_of_rank(rank), delay,
                                 std::move(fn));
  else
    engine_.schedule_after(delay, std::move(fn));
}

void MdsCluster::drain_obs_shards() {
  trace_.drain_shards();
  provenance_.drain_shards();
}

void MdsCluster::request_export(const DirFragId& frag, MdsRank to,
                                obs::SpanId parent_span) {
  if (shards_rt_ == nullptr) {
    export_subtree(frag, to, parent_span);
    return;
  }
  sched_after(0, [this, frag, to, parent_span]() {
    export_subtree(frag, to, parent_span);
  });
}

void MdsCluster::set_balancer(MdsRank rank, std::unique_ptr<Balancer> b) {
  if (b != nullptr) b->attach_observability(&metrics_, &trace_);
  node(rank).set_balancer(std::move(b));
}

void MdsCluster::set_balancer_all(const BalancerFactory& factory) {
  for (int r = 0; r < num_mds(); ++r) {
    std::unique_ptr<Balancer> b = factory(r);
    if (b != nullptr) b->attach_observability(&metrics_, &trace_);
    node(r).set_balancer(std::move(b));
  }
}

void MdsCluster::schedule_tick(MdsRank rank) {
  // Daemons drift: each tick lands somewhere inside its jitter window, so
  // the order in which balancers observe and react to each other differs
  // run to run (seed-dependent), as on a real cluster. The re-arm draw
  // happens on the rank's own lane in sharded mode, so it uses the rank's
  // private jitter stream there.
  Time when = cfg_.bal_interval + static_cast<Time>(rank) * kMsec;
  if (cfg_.tick_jitter > 0) {
    Rng& jr = tick_rng_.empty() ? rng_
                                : tick_rng_[static_cast<std::size_t>(rank)];
    when += jr.uniform(0, static_cast<std::uint64_t>(cfg_.tick_jitter));
  }
  sched_rank_after(rank, when, [this, rank]() {
    // A down/replaying daemon skips the tick (no heartbeat, no balancing)
    // but the schedule keeps re-arming so it resumes after recovery.
    if (is_up(rank)) {
      node(rank).tick();
      if (shards_rt_ == nullptr) {
        flush_dirty(rank);
      } else {
        // Writeback touches the shared object store: run it on the
        // serial lane (same timestamp, epoch-merged order).
        sched_after(0, [this, rank]() {
          if (is_up(rank)) flush_dirty(rank);
        });
      }
    }
    schedule_tick(rank);
  });
}

void MdsCluster::start() {
  for (int r = 0; r < num_mds(); ++r) schedule_tick(r);
}

void MdsCluster::client_submit(Request r, MdsRank guess) {
  if (guess < 0 || guess >= num_mds()) guess = 0;
  sched_after(cfg_.net_latency, [this, guess, r = std::move(r)]() mutable {
    if (!is_up(guess)) {
      ++requests_dropped_;  // dead host: no reply; client retry recovers
      om_.requests_dropped.inc();
      return;
    }
    node(guess).on_arrival(std::move(r));
  });
}

void MdsCluster::client_submit_batch(MdsRank guess, std::vector<Request> batch) {
  if (batch.empty()) return;
  if (guess < 0 || guess >= num_mds()) guess = 0;
  sched_after(
      cfg_.net_latency, [this, guess, batch = std::move(batch)]() mutable {
        if (!is_up(guess)) {
          requests_dropped_ += batch.size();
          om_.requests_dropped.inc(batch.size());
          return;
        }
        MdsNode& n = node(guess);
        for (Request& r : batch) n.on_arrival(std::move(r));
      });
}

void MdsCluster::route_to(MdsRank rank, Request r) {
  sched_after(cfg_.net_latency, [this, rank, r = std::move(r)]() mutable {
    if (!is_up(rank)) {
      ++requests_dropped_;
      om_.requests_dropped.inc();
      return;
    }
    node(rank).on_arrival(std::move(r));
  });
}

MdsRank MdsCluster::auth_of(const DirFragId& id) const {
  const DirFrag* f = ns_.frag(id);
  if (f == nullptr) return kNoRank;
  return f->auth == kNoRank ? 0 : f->auth;
}

std::vector<DirFragId> MdsCluster::roots_of(MdsRank rank) const {
  std::vector<DirFragId> out;
  for (const auto& [frag, r] : subtree_roots_)
    if (r == rank) out.push_back(frag);
  return out;
}

bool MdsCluster::frag_contains(const DirFragId& outer,
                               const DirFragId& inner) const {
  if (outer.ino == inner.ino) return outer.frag.contains(inner.frag);
  InodeId cur = inner.ino;
  while (cur != kNoInode) {
    const mantle::mds::Inode* node = ns_.inode(cur);
    if (node == nullptr) return false;
    if (node->parent == outer.ino)
      return outer.frag.contains(hash_dentry_name(node->name));
    cur = node->parent;
  }
  return false;
}

bool MdsCluster::is_frozen(const DirFragId& id) const {
  for (const auto& [mid, mig] : active_migrations_)
    if (frag_contains(mig.rec.frag, id)) return true;
  return false;
}

void MdsCluster::defer_to_migration(const DirFragId& id, Request r) {
  for (auto& [mid, mig] : active_migrations_) {
    if (frag_contains(mig.rec.frag, id)) {
      mig.deferred.push_back(std::move(r));
      return;
    }
  }
  // Raced with completion (or an abort): resend toward the current
  // authority, parking if that rank happens to be down.
  route_or_park(id, std::move(r));
}

PopSnapshot MdsCluster::subtree_pop(const DirFragId& root, MdsRank rank,
                                    Time now) const {
  PopSnapshot out;
  const auto& rate = ns_.decay_rate();
  // Depth-first over the frag-scoped subtree, stopping at foreign bounds.
  std::vector<DirFragId> stack{root};
  while (!stack.empty()) {
    const DirFragId cur = stack.back();
    stack.pop_back();
    const DirFrag* f = ns_.frag(cur);
    if (f == nullptr) continue;
    if (rank != kNoRank && f->auth != rank) continue;  // foreign bound
    out.ird += f->pop.get(MetaOp::IRD, now, rate);
    out.iwr += f->pop.get(MetaOp::IWR, now, rate);
    out.readdir += f->pop.get(MetaOp::READDIR, now, rate);
    out.fetch += f->pop.get(MetaOp::FETCH, now, rate);
    out.store += f->pop.get(MetaOp::STORE, now, rate);
    for (const auto& [name, ino] : f->dentries) {
      const mantle::mds::Dir* child = ns_.dir(ino);
      if (child == nullptr) continue;
      for (const auto& [cf, cdf] : child->frags) stack.push_back({ino, cf});
    }
  }
  return out;
}

std::size_t MdsCluster::subtree_entry_count(const DirFragId& root,
                                            MdsRank rank) const {
  std::size_t out = 0;
  std::vector<DirFragId> stack{root};
  while (!stack.empty()) {
    const DirFragId cur = stack.back();
    stack.pop_back();
    const DirFrag* f = ns_.frag(cur);
    if (f == nullptr) continue;
    if (rank != kNoRank && f->auth != rank) continue;
    out += f->dentries.size();
    for (const auto& [name, ino] : f->dentries) {
      const mantle::mds::Dir* child = ns_.dir(ino);
      if (child == nullptr) continue;
      for (const auto& [cf, cdf] : child->frags) stack.push_back({ino, cf});
    }
  }
  return out;
}

std::vector<ExportCandidate> MdsCluster::gather_candidates(MdsRank rank,
                                                           double target,
                                                           Balancer& policy,
                                                           Time now) {
  struct Item {
    ExportCandidate cand;
    bool drillable = true;
  };
  std::vector<Item> pool;
  auto add = [&](const DirFragId& id) {
    if (is_frozen(id)) return;
    Item item;
    item.cand.frag = id;
    item.cand.load = policy.metaload(subtree_pop(id, rank, now));
    item.cand.entries = subtree_entry_count(id, rank);
    pool.push_back(std::move(item));
  };
  for (const DirFragId& root : roots_of(rank)) add(root);

  // Drill down: a candidate too hot to ship whole is replaced by its child
  // directories' fragments ("subtrees are divided and migrated only if
  // their ancestors are too popular to migrate", §3.2).
  const double too_big = target * cfg_.too_big_factor;
  for (int depth = 0; depth < cfg_.max_drill_depth; ++depth) {
    bool drilled = false;
    std::vector<Item> next;
    for (Item& item : pool) {
      if (!item.drillable || item.cand.load <= too_big) {
        next.push_back(std::move(item));
        continue;
      }
      const DirFrag* f = ns_.frag(item.cand.frag);
      if (f == nullptr) {
        continue;
      }
      std::vector<DirFragId> children;
      for (const auto& [name, ino] : f->dentries) {
        const mantle::mds::Dir* child = ns_.dir(ino);
        if (child == nullptr) continue;
        for (const auto& [cf, cdf] : child->frags)
          if (cdf.auth == rank) children.push_back({ino, cf});
      }
      if (children.empty()) {
        // A hot flat directory: nothing below to descend into, so it is
        // exportable as-is (directory fragmentation handles splitting).
        item.drillable = false;
        next.push_back(std::move(item));
        continue;
      }
      drilled = true;
      for (const DirFragId& c : children) {
        if (is_frozen(c)) continue;
        Item ci;
        ci.cand.frag = c;
        ci.cand.load = policy.metaload(subtree_pop(c, rank, now));
        ci.cand.entries = subtree_entry_count(c, rank);
        next.push_back(std::move(ci));
      }
    }
    pool = std::move(next);
    if (!drilled) break;
  }

  std::vector<ExportCandidate> out;
  out.reserve(pool.size());
  for (Item& item : pool)
    if (item.cand.load > 0.0 || item.cand.entries > 0)
      out.push_back(std::move(item.cand));
  std::sort(out.begin(), out.end(),
            [](const ExportCandidate& a, const ExportCandidate& b) {
              if (a.load != b.load) return a.load > b.load;
              return a.frag < b.frag;
            });
  return out;
}

bool MdsCluster::export_subtree(const DirFragId& frag, MdsRank to,
                                obs::SpanId parent_span) {
  if (to < 0 || to >= num_mds()) return false;
  const MdsRank from = auth_of(frag);
  if (from == kNoRank || from == to) return false;
  if (!is_up(from) || !is_up(to)) return false;  // both 2PC ends must live
  if (is_frozen(frag)) return false;
  // The symmetric overlap: exporting an *ancestor* of an in-flight export
  // races its commit. Whichever 2PC finishes second flips only the auth
  // annotations still matching its recorded exporter — annotations the
  // other commit already rewrote — yet still installs itself in the
  // subtree map, leaving map and annotations disagreeing forever. Real
  // CephFS freezes the whole bounded region; we refuse until the inner
  // migration settles.
  for (const auto& [mid, m] : active_migrations_)
    if (frag_contains(frag, m.rec.frag)) return false;
  if (ns_.frag(frag) == nullptr) return false;

  const Time now = sim_now();
  const std::size_t entries = subtree_entry_count(frag, from);

  ActiveMigration mig;
  mig.rec.started = now;
  mig.rec.from = from;
  mig.rec.to = to;
  mig.rec.frag = frag;
  mig.rec.entries = entries;
  mig.span = trace_.next_span();
  const obs::SpanId span = mig.span;
  const std::size_t id = next_migration_id_++;
  active_migrations_[id] = std::move(mig);

  // Two-phase commit: the exporter logs the export, the importer journals
  // the incoming metadata, the exporter journals the commit. The handshake
  // plus per-entry copying dominates migration latency.
  journals_[static_cast<std::size_t>(from)]->append(
      "EExport " + frag.str() + " to=" + std::to_string(to));
  journals_[static_cast<std::size_t>(to)]->append(
      "EImportStart " + frag.str() + " from=" + std::to_string(from));

  node(from).stats().exports++;
  node(to).stats().imports++;
  om_.exports_started.inc();

  const Time duration =
      cfg_.mig_base + cfg_.mig_per_entry * static_cast<Time>(entries);
  trace_.event(now, obs::EventKind::ExportStart, from, to, frag.str(),
               {{"entries", static_cast<double>(entries)},
                {"eta_ms", static_cast<double>(duration) / kMsec}},
               span, parent_span);
  sched_after(duration, [this, id]() { finish_migration(id); });
  // Stuck-export watchdog: a migration still in flight after
  // export_stuck_ticks balance intervals is wedged (in a real cluster:
  // a hung importer, a lost 2PC message). Abort and roll back instead of
  // leaving the subtree frozen — frozen subtrees park every request that
  // touches them.
  if (cfg_.export_stuck_ticks > 0) {
    const Time deadline = static_cast<Time>(cfg_.export_stuck_ticks) *
                          cfg_.bal_interval;
    if (deadline <= duration) {
      sched_after(deadline, [this, id]() {
        if (active_migrations_.count(id) == 0) return;
        om_.exports_timed_out.inc();
        abort_migration(id, kNoRank, "stuck-timeout");
      });
    }
  }
  MANTLE_LOG_INFO("migration start %s: mds%d -> mds%d (%zu entries)",
                  frag.str().c_str(), from, to, entries);
  return true;
}

void MdsCluster::finish_migration(std::size_t idx) {
  const auto it = active_migrations_.find(idx);
  if (it == active_migrations_.end()) return;
  ActiveMigration mig = std::move(it->second);
  active_migrations_.erase(it);

  const Time now = sim_now();
  const MdsRank from = mig.rec.from;
  const MdsRank to = mig.rec.to;

  // Flip authority on the exported fragment and everything nested under it
  // that the exporter owned (foreign bounds keep their owners). Exporter-
  // owned subtree roots the walk passes through stop being roots: their
  // region is annotated `to` now and the exported frag covers it. Roots
  // the walk does NOT reach — nested islands beyond a foreign bound —
  // keep their entries and their annotations; ancestry alone must not
  // absorb them, since the migration never touched them.
  std::vector<DirFragId> absorbed;
  DirFrag* rootf = ns_.frag(mig.rec.frag);
  if (rootf != nullptr) {
    std::vector<DirFragId> stack{mig.rec.frag};
    while (!stack.empty()) {
      const DirFragId cur = stack.back();
      stack.pop_back();
      DirFrag* f = ns_.frag(cur);
      if (f == nullptr || f->auth != from) continue;
      f->auth = to;
      if (cur != mig.rec.frag && subtree_roots_.count(cur) != 0)
        absorbed.push_back(cur);
      // The importer has to fetch the dirfrag object from RADOS.
      ns_.record_op(cur, MetaOp::FETCH, now);
      for (const auto& [name, ino] : f->dentries) {
        mantle::mds::Dir* child = ns_.dir(ino);
        if (child == nullptr) continue;
        for (const auto& [cf, cdf] : child->frags) stack.push_back({ino, cf});
      }
    }
  }

  // Update the subtree map: the exported frag becomes a bound owned by the
  // importer, absorbing exactly the inner roots the flip traversed.
  for (const DirFragId& r : absorbed) subtree_roots_.erase(r);
  subtree_roots_[mig.rec.frag] = to;

  journals_[static_cast<std::size_t>(from)]->append("EExportCommit " +
                                                    mig.rec.frag.str());
  journals_[static_cast<std::size_t>(to)]->append("EImportCommit " +
                                                  mig.rec.frag.str());

  // Client sessions on both ends are flushed (coherency: capabilities and
  // leases must be re-established), stalling those clients briefly. The
  // paper correlates per-balancer slowdown with exactly these flushes.
  mig.rec.sessions_flushed = flush_client_sessions(from, to);

  mig.rec.finished = now;
  export_retry_attempts_.erase(mig.rec.frag);  // made it; reset the budget
  om_.exports_committed.inc();
  om_.migration_entries.observe(static_cast<double>(mig.rec.entries));
  om_.migration_duration_ms.observe(
      static_cast<double>(now - mig.rec.started) / kMsec);
  trace_.event(
      now, obs::EventKind::ExportCommit, from, to, mig.rec.frag.str(),
      {{"entries", static_cast<double>(mig.rec.entries)},
       {"sessions_flushed", static_cast<double>(mig.rec.sessions_flushed)},
       {"deferred", static_cast<double>(mig.deferred.size())}},
      mig.span);
  migrations_.push_back(mig.rec);

  // Re-inject requests that arrived mid-migration at the new authority.
  for (Request& r : mig.deferred) route_to(to, std::move(r));
  MANTLE_LOG_INFO("migration done %s: mds%d -> mds%d (%zu sessions flushed)",
                  mig.rec.frag.str().c_str(), from, to,
                  mig.rec.sessions_flushed);
}

// ===========================================================================
// Crash, takeover and replay
// ===========================================================================

bool MdsCluster::is_up(MdsRank rank) const {
  return rank >= 0 && rank < num_mds() &&
         life_[static_cast<std::size_t>(rank)] == NodeLife::Up;
}

bool MdsCluster::is_replaying(MdsRank rank) const {
  return rank >= 0 && rank < num_mds() &&
         life_[static_cast<std::size_t>(rank)] == NodeLife::Replaying;
}

std::uint64_t MdsCluster::crash_epoch(MdsRank rank) const {
  if (rank < 0 || rank >= num_mds()) return 0;
  return crash_epoch_[static_cast<std::size_t>(rank)];
}

std::vector<MigrationRecord> MdsCluster::active_migration_records() const {
  std::vector<MigrationRecord> out;
  out.reserve(active_migrations_.size());
  for (const auto& [id, mig] : active_migrations_) out.push_back(mig.rec);
  return out;
}

int MdsCluster::num_up() const {
  int n = 0;
  for (const NodeLife l : life_) n += l == NodeLife::Up;
  return n;
}

MdsRank MdsCluster::pick_up_rank(MdsRank avoid) const {
  MdsRank any = kNoRank;
  for (int r = 0; r < num_mds(); ++r) {
    if (!is_up(r)) continue;
    if (r != avoid) return r;
    if (any == kNoRank) any = r;
  }
  return any == kNoRank ? 0 : any;
}

Time MdsCluster::replay_duration(MdsRank rank) const {
  return cfg_.replay_base +
         cfg_.replay_per_entry *
             static_cast<Time>(
                 journals_[static_cast<std::size_t>(rank)]->live_entries());
}

void MdsCluster::log_recovery(RecoveryEvent::Kind kind, MdsRank rank,
                              MdsRank peer, std::uint64_t detail,
                              obs::SpanId span) {
  const Time now = sim_now();
  recovery_log_.push_back({now, kind, rank, peer, detail});
  if (span == obs::kNoSpan && rank >= 0 && rank < num_mds())
    span = recovery_span_[static_cast<std::size_t>(rank)];

  // Mirror the recovery timeline into the trace sink (with counters), so
  // crash/takeover/replay land on the same timeline as the balancing and
  // migration events they perturb.
  obs::EventKind ek = obs::EventKind::Crash;
  switch (kind) {
    case RecoveryEvent::Kind::Crash:
      ek = obs::EventKind::Crash;
      om_.crashes.inc();
      break;
    case RecoveryEvent::Kind::MigrationAborted:
      ek = obs::EventKind::ExportAbort;
      om_.exports_aborted.inc();
      break;
    case RecoveryEvent::Kind::TakeoverStart:
      ek = obs::EventKind::TakeoverStart;
      om_.replay_entries.observe(static_cast<double>(detail));
      break;
    case RecoveryEvent::Kind::TakeoverComplete:
      ek = obs::EventKind::TakeoverComplete;
      om_.takeovers.inc();
      break;
    case RecoveryEvent::Kind::RestartStart:
      ek = obs::EventKind::Restart;
      om_.restarts.inc();
      om_.replay_entries.observe(static_cast<double>(detail));
      break;
    case RecoveryEvent::Kind::ReplayComplete:
      ek = obs::EventKind::ReplayComplete;
      break;
  }
  trace_.event(now, ek, rank, peer, recovery_kind_name(kind),
               {{"detail", static_cast<double>(detail)}}, span);
}

void MdsCluster::route_or_park(const DirFragId& frag, Request r) {
  // The addressed fragment can split or merge away while the request is
  // in flight (forward latency, migration freeze, dead-letter parking all
  // open a window). A stale frag id resolves to no authority; re-resolve
  // against the current fragmentation instead of parking a request that
  // nothing would ever un-park.
  DirFragId target = frag;
  if (ns_.frag(target) == nullptr && ns_.dir(r.dir) != nullptr)
    target = ns_.frag_of(r.dir, r.name);
  const MdsRank auth = auth_of(target);
  if (is_up(auth)) {
    route_to(auth, std::move(r));
  } else {
    om_.dead_letter_parked.inc();
    trace_.event(sim_now(), obs::EventKind::DeadLetterParked, auth, -1,
                 target.str(), {{"req", static_cast<double>(r.id)}}, r.span);
    dead_letter_.emplace_back(target, std::move(r));
  }
}

void MdsCluster::flush_dead_letters() {
  std::vector<std::pair<DirFragId, Request>> pending;
  pending.swap(dead_letter_);
  if (pending.empty()) return;
  om_.dead_letter_flushed.inc(pending.size());
  // One flush event per request, carrying the op's span: parked and
  // flushed events pair 1:1, so parked - flushed at any cut of the
  // timeline is exactly the number of requests still parked (the
  // dead-letter-leak detector counts on this).
  for (auto& [frag, req] : pending) {
    trace_.event(sim_now(), obs::EventKind::DeadLetterFlushed,
                 auth_of(frag), -1, frag.str(),
                 {{"req", static_cast<double>(req.id)}}, req.span);
    route_or_park(frag, std::move(req));
  }
}

void MdsCluster::abort_migration(std::size_t id, MdsRank dead,
                                 const char* reason) {
  const auto it = active_migrations_.find(id);
  if (it == active_migrations_.end()) return;
  ActiveMigration mig = std::move(it->second);
  active_migrations_.erase(it);
  const Time now = sim_now();

  // Rollback is cheap because authority only flips at commit: the
  // exporter (if alive) still owns the subtree and just journals the
  // abort; a dead exporter's subtree is handled by takeover/replay.
  if (dead == kNoRank) {
    // Watchdog abort: both ends live; both journal their abort.
    journals_[static_cast<std::size_t>(mig.rec.from)]->append(
        "EExportAbort " + mig.rec.frag.str() + " reason=" + reason);
    journals_[static_cast<std::size_t>(mig.rec.to)]->append(
        "EImportAbort " + mig.rec.frag.str() + " reason=" + reason);
    log_recovery(RecoveryEvent::Kind::MigrationAborted, mig.rec.from,
                 mig.rec.to, mig.deferred.size(), mig.span);
  } else {
    const MdsRank survivor = mig.rec.from == dead ? mig.rec.to : mig.rec.from;
    if (is_up(survivor)) {
      journals_[static_cast<std::size_t>(survivor)]->append(
          (survivor == mig.rec.from ? "EExportAbort " : "EImportAbort ") +
          mig.rec.frag.str() + " peer=" + std::to_string(dead));
    }
    log_recovery(RecoveryEvent::Kind::MigrationAborted, dead, survivor,
                 mig.deferred.size(), mig.span);
    // A crash-aborted export is worth re-attempting once the dust
    // settles: the load imbalance that motivated it is still there.
    if (is_up(mig.rec.from) || is_replaying(mig.rec.from))
      schedule_export_retry(mig.rec.frag, mig.rec.to);
  }
  mig.rec.finished = now;
  MANTLE_LOG_INFO("migration abort %s: mds%d -> mds%d (%s, "
                  "%zu deferred re-injected)",
                  mig.rec.frag.str().c_str(), mig.rec.from, mig.rec.to, reason,
                  mig.deferred.size());
  aborted_migrations_.push_back(mig.rec);

  // Requests parked on the frozen subtree thaw toward its (unchanged)
  // authority — or the dead-letter queue if the exporter is the casualty.
  for (Request& r : mig.deferred) route_or_park(mig.rec.frag, std::move(r));
}

void MdsCluster::abort_migrations_of(MdsRank dead) {
  std::vector<std::size_t> doomed;
  for (const auto& [id, mig] : active_migrations_)
    if (mig.rec.from == dead || mig.rec.to == dead) doomed.push_back(id);
  for (const std::size_t id : doomed) abort_migration(id, dead, "peer-died");
}

void MdsCluster::schedule_export_retry(const DirFragId& frag, MdsRank to) {
  if (cfg_.export_retry_max <= 0) return;
  int& attempts = export_retry_attempts_[frag];
  if (attempts >= cfg_.export_retry_max) {
    export_retry_attempts_.erase(frag);
    return;
  }
  const int attempt = attempts++;
  // Exponential backoff with deterministic jitter (+/- 25%): retries of
  // distinct subtrees de-synchronize instead of slamming the recovering
  // peer in one burst, and the same seed always yields the same delays.
  const Time base = std::max<Time>(cfg_.export_retry_base, 1);
  Time delay = base;
  for (int i = 0; i < attempt && delay < cfg_.export_retry_cap; ++i)
    delay *= 2;
  delay = std::min(delay, std::max<Time>(cfg_.export_retry_cap, base));
  const double jitter = 0.75 + 0.5 * retry_rng_.next_double();
  delay = std::max<Time>(static_cast<Time>(
                             static_cast<double>(delay) * jitter),
                         1);
  om_.exports_retried.inc();
  trace_.event(sim_now(), obs::EventKind::ExportRetry, auth_of(frag), to,
               frag.str(),
               {{"attempt", static_cast<double>(attempt + 1)},
                {"delay_ms", static_cast<double>(delay) / kMsec}});
  MANTLE_LOG_INFO("export retry %d/%d for %s -> mds%d in %lld us",
                  attempt + 1, cfg_.export_retry_max, frag.str().c_str(), to,
                  static_cast<long long>(delay));
  sched_after(delay, [this, frag, to]() {
    // Conditions are re-checked inside export_subtree: the exporter may
    // have lost the subtree, either end may be down, the frag may be
    // frozen by a newer migration. A refused retry re-arms until the
    // attempt budget is spent.
    if (!export_subtree(frag, to)) {
      const MdsRank from = auth_of(frag);
      if (from != kNoRank && from != to && ns_.frag(frag) != nullptr)
        schedule_export_retry(frag, to);
      else
        export_retry_attempts_.erase(frag);
    }
  });
}

bool MdsCluster::crash_mds(MdsRank rank) {
  if (rank < 0 || rank >= num_mds()) return false;
  const auto idx = static_cast<std::size_t>(rank);
  // A rank can die while Up (serving) or while Replaying (killed again in
  // the middle of recovering from its previous crash — the back-to-back
  // crash case). Only an already-down rank cannot crash further.
  if (life_[idx] == NodeLife::Down) return false;

  const Time now = sim_now();
  life_[idx] = NodeLife::Down;
  ++crash_epoch_[idx];
  const std::uint64_t epoch = crash_epoch_[idx];

  const std::size_t lost = node(rank).reset_for_crash(now);
  requests_dropped_ += lost;
  // One recovery span per crash arc: crash, takeover/restart and replay
  // events for this rank all share it (log_recovery falls back to it).
  recovery_span_[idx] = trace_.next_span();
  log_recovery(RecoveryEvent::Kind::Crash, rank, kNoRank, lost);
  MANTLE_LOG_INFO("mds%d crashed (%zu queued requests lost)", rank, lost);

  abort_migrations_of(rank);

  // Survivor takeover: the lowest up rank replays the dead journal and
  // adopts its subtrees. Skipped when the rank restarts first (the replay
  // then happens on the restarting rank itself) or nobody survives.
  if (cfg_.takeover_on_crash && !roots_of(rank).empty()) {
    const MdsRank survivor = pick_up_rank(rank);
    if (is_up(survivor) && survivor != rank) {
      const Time replay = replay_duration(rank);
      log_recovery(RecoveryEvent::Kind::TakeoverStart, rank, survivor,
                   journals_[idx]->live_entries());
      sched_after(replay, [this, rank, survivor, epoch]() {
        const auto i = static_cast<std::size_t>(rank);
        // The rank came back (or crashed again) in the meantime: its own
        // restart replay owns recovery now.
        if (crash_epoch_[i] != epoch || life_[i] != NodeLife::Down) return;
        if (!is_up(survivor)) return;  // adopter died too; wait for restart
        adopt_subtrees(rank, survivor);
        journals_[i]->trim(journals_[i]->next_seq());  // consumed by replay
        journals_[static_cast<std::size_t>(survivor)]->append(
            "ETakeover from=" + std::to_string(rank));
        log_recovery(RecoveryEvent::Kind::TakeoverComplete, rank, survivor, 0);
        MANTLE_LOG_INFO("mds%d took over mds%d's subtrees", survivor, rank);
        flush_dead_letters();
      });
    }
  }
  return true;
}

void MdsCluster::adopt_subtrees(MdsRank from, MdsRank to) {
  const Time now = sim_now();
  for (const DirFragId& root : roots_of(from)) {
    std::vector<DirFragId> stack{root};
    while (!stack.empty()) {
      const DirFragId cur = stack.back();
      stack.pop_back();
      DirFrag* f = ns_.frag(cur);
      if (f == nullptr || f->auth != from) continue;  // foreign bound
      f->auth = to;
      // The adopter fetches the dirfrag objects from the object store.
      ns_.record_op(cur, MetaOp::FETCH, now);
      for (const auto& [name, ino] : f->dentries) {
        mantle::mds::Dir* child = ns_.dir(ino);
        if (child == nullptr) continue;
        for (const auto& [cf, cdf] : child->frags) stack.push_back({ino, cf});
      }
    }
    subtree_roots_[root] = to;
  }
}

bool MdsCluster::restart_mds(MdsRank rank) {
  if (rank < 0 || rank >= num_mds()) return false;
  const auto idx = static_cast<std::size_t>(rank);
  if (life_[idx] != NodeLife::Down) return false;

  life_[idx] = NodeLife::Replaying;
  const std::uint64_t epoch = crash_epoch_[idx];
  const Time replay = replay_duration(rank);
  log_recovery(RecoveryEvent::Kind::RestartStart, rank, kNoRank,
               journals_[idx]->live_entries());
  MANTLE_LOG_INFO("mds%d restarting: replaying %zu journal entries", rank,
                  journals_[idx]->live_entries());
  sched_after(replay, [this, rank, epoch]() {
    const auto i = static_cast<std::size_t>(rank);
    if (crash_epoch_[i] != epoch || life_[i] != NodeLife::Replaying) return;
    life_[i] = NodeLife::Up;
    journals_[i]->trim(journals_[i]->next_seq());
    journals_[i]->append("ERestart");
    log_recovery(RecoveryEvent::Kind::ReplayComplete, rank, kNoRank, 0);
    MANTLE_LOG_INFO("mds%d finished replay, serving again", rank);
    // Subtrees it still owns (no takeover happened) are serviceable again.
    flush_dead_letters();
  });
  return true;
}

bool MdsCluster::maybe_merge(InodeId dirino) {
  mantle::mds::Dir* d = ns_.dir(dirino);
  if (d == nullptr || d->frags.size() <= 1) return false;
  if (d->num_entries() >= cfg_.merge_size) return false;
  MdsRank owner = kNoRank;
  std::vector<DirFragId> child_roots;
  for (const auto& [f, df] : d->frags) {
    const MdsRank a = df.auth == kNoRank ? 0 : df.auth;
    if (owner == kNoRank) owner = a;
    if (a != owner) return false;  // auth boundary inside the directory
    const DirFragId id{dirino, f};
    if (is_frozen(id)) return false;
    if (subtree_roots_.count(id) != 0) child_roots.push_back(id);
  }
  if (!ns_.merge(dirino, frag_t(), sim_now())) return false;
  ns_.frag({dirino, frag_t()})->auth = owner;
  if (!child_roots.empty()) {
    for (const DirFragId& r : child_roots) subtree_roots_.erase(r);
    subtree_roots_[{dirino, frag_t()}] = owner;
  }
  om_.merges.inc();
  trace_.event(sim_now(), obs::EventKind::DirfragMerge, owner, -1,
               DirFragId{dirino, frag_t()}.str());
  MANTLE_LOG_INFO("dirfrag merge: dir %llu back to a single fragment",
                  static_cast<unsigned long long>(dirino));
  return true;
}

void MdsCluster::maybe_split(const DirFragId& id) {
  DirFrag* f = ns_.frag(id);
  if (f == nullptr || f->dentries.size() <= cfg_.split_size) return;
  if (is_frozen(id)) return;
  const auto rit = subtree_roots_.find(id);
  const bool was_root = rit != subtree_roots_.end();
  const MdsRank owner = was_root ? rit->second : auth_of(id);
  const std::vector<frag_t> kids = ns_.split(id, cfg_.split_bits, sim_now());
  if (kids.empty()) return;
  if (was_root) {
    subtree_roots_.erase(id);
    for (const frag_t k : kids) subtree_roots_[{id.ino, k}] = owner;
  }
  om_.splits.inc();
  trace_.event(sim_now(), obs::EventKind::DirfragSplit, owner, -1,
               id.str(), {{"fragments", static_cast<double>(kids.size())}});
  MANTLE_LOG_INFO("dirfrag split %s into %zu fragments", id.str().c_str(),
                  kids.size());
}

void MdsCluster::flush_dirty(MdsRank rank) {
  // Periodic dirty-dirfrag writeback: each flush is a STORE on the frag
  // (feeding the `store` term of the metaload) and an omap write.
  const Time now = sim_now();
  for (const DirFragId& root : roots_of(rank)) {
    std::vector<DirFragId> stack{root};
    while (!stack.empty()) {
      const DirFragId cur = stack.back();
      stack.pop_back();
      DirFrag* f = ns_.frag(cur);
      if (f == nullptr || f->auth != rank) continue;
      if (f->dirty) {
        f->dirty = false;
        store_.omap_set("dir." + cur.str(), "version",
                        std::to_string(now / kMsec));
        ns_.record_op(cur, MetaOp::STORE, now);
      }
      for (const auto& [name, ino] : f->dentries) {
        mantle::mds::Dir* child = ns_.dir(ino);
        if (child == nullptr) continue;
        for (const auto& [cf, cdf] : child->frags) stack.push_back({ino, cf});
      }
    }
  }
}

void MdsCluster::reparent_subtree(InodeId dir, MdsRank from, MdsRank to) {
  mantle::mds::Dir* d = ns_.dir(dir);
  if (d == nullptr || from == to) return;
  std::vector<DirFragId> stack;
  for (const auto& [f, df] : d->frags) stack.push_back({dir, f});
  while (!stack.empty()) {
    const DirFragId cur = stack.back();
    stack.pop_back();
    DirFrag* f = ns_.frag(cur);
    if (f == nullptr || f->auth != from) continue;  // keep foreign bounds
    f->auth = to;
    const auto rit = subtree_roots_.find(cur);
    if (rit != subtree_roots_.end() && rit->second == from)
      rit->second = to;
    for (const auto& [name, ino] : f->dentries) {
      mantle::mds::Dir* child = ns_.dir(ino);
      if (child == nullptr) continue;
      for (const auto& [cf, cdf] : child->frags) stack.push_back({ino, cf});
    }
  }
}

std::size_t MdsCluster::flush_client_sessions(MdsRank a, MdsRank b) {
  if (a < 0 || b < 0 || a >= num_mds() || b >= num_mds()) return 0;
  const Time stall_until = sim_now() + cfg_.session_flush_stall;
  // Union of the two ranks' session lists without materializing a set:
  // a generation stamp marks ids already counted in this flush.
  ++flush_gen_;
  std::size_t flushed = 0;
  for (const MdsRank rk : {a, b}) {
    for (const int c : sessions_[static_cast<std::size_t>(rk)].members()) {
      const auto id = static_cast<std::size_t>(c);
      if (id >= flush_mark_.size()) flush_mark_.resize(id + 1, 0);
      if (flush_mark_[id] == flush_gen_) continue;
      flush_mark_[id] = flush_gen_;
      ++flushed;
      if (id >= client_stall_until_.size())
        client_stall_until_.resize(id + 1, 0);
      Time& until = client_stall_until_[id];
      until = std::max(until, stall_until);
    }
  }
  sessions_flushed_ += flushed;
  om_.sessions_flushed.inc(flushed);
  return flushed;
}

void MdsCluster::deliver_reply(Reply rep) {
  if (rep.finished_at >= rep.issued_at)
    om_.request_latency_ms.observe(
        static_cast<double>(rep.finished_at - rep.issued_at) / kMsec);
  Time when = sim_now() + cfg_.net_latency;
  if (rep.client >= 0) {
    const auto id = static_cast<std::size_t>(rep.client);
    if (id < client_stall_until_.size() && client_stall_until_[id] > when)
      when = client_stall_until_[id];
  }
  if (reply_cb_) {
    sched_at(when, [this, rep = std::move(rep)]() { reply_cb_(rep); });
  }
}

void MdsCluster::note_session(MdsRank rank, int client) {
  if (client >= 0) sessions_[static_cast<std::size_t>(rank)].note(client);
}

std::uint64_t MdsCluster::total_forwards() const {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) n += node->stats().forwards_out;
  return n;
}

std::uint64_t MdsCluster::total_hits() const {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) n += node->stats().hits;
  return n;
}

std::uint64_t MdsCluster::total_completed() const {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) n += node->stats().completed;
  return n;
}

std::vector<std::size_t> MdsCluster::auth_entry_counts() const {
  std::vector<std::size_t> out(static_cast<std::size_t>(num_mds()), 0);
  for (const auto& [frag, rank] : subtree_roots_)
    out[static_cast<std::size_t>(rank)] += subtree_entry_count(frag, rank);
  return out;
}

std::size_t MdsCluster::auth_entry_count(MdsRank rank) const {
  std::size_t n = 0;
  for (const auto& [frag, r] : subtree_roots_)
    if (r == rank) n += subtree_entry_count(frag, rank);
  return n;
}

}  // namespace mantle::cluster
