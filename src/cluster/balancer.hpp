#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "mds/types.hpp"

namespace mantle::obs {
class MetricsRegistry;
class TraceSink;
}  // namespace mantle::obs

/// \file balancer.hpp
/// The policy boundary. CephFS hard-wires balancing policy into the MDS
/// ("the problem is that the policies are hardwired into the system, not
/// the policies themselves"); Mantle splits it into the five decisions
/// listed below. Everything in this header is *policy-facing data*: the
/// mechanisms (heartbeats, freezing, two-phase-commit migration, dirfrag
/// traversal) live in MdsNode / Migrator and never change.

namespace mantle::cluster {

using mantle::Time;
using mantle::mds::DirFragId;
using mantle::mds::MdsRank;

/// Decayed per-op popularity of one dirfrag/subtree at policy-evaluation
/// time — the inputs available to mds_bal_metaload (paper Table 2:
/// IRD, IWR, READDIR, FETCH, STORE).
struct PopSnapshot {
  double ird = 0.0;
  double iwr = 0.0;
  double readdir = 0.0;
  double fetch = 0.0;
  double store = 0.0;
};

/// One MDS's heartbeat payload: what every other MDS learns about it.
/// By design this is a *snapshot taken at send time* and therefore stale
/// on arrival — the staleness the paper blames for erratic decisions is
/// real in this simulator, not modelled noise.
struct HeartbeatPayload {
  MdsRank rank = mantle::mds::kNoRank;
  double auth_metaload = 0.0;  // metadata load on authority subtrees
  double all_metaload = 0.0;   // metadata load incl. replicated/nested
  double cpu_pct = 0.0;        // instantaneous CPU utilization, 0..100
  double mem_pct = 0.0;        // cache occupancy, 0..100
  double queue_len = 0.0;      // requests waiting at snapshot time
  double req_rate = 0.0;       // requests/s over the last interval
  Time sent_at = 0;
  /// Sender incarnation (its crash count at send time). A heartbeat
  /// duplicated or delayed from before a crash carries the old epoch and
  /// is rejected on arrival instead of resurrecting pre-crash load state
  /// after a successor has taken over (ClusterConfig::hb_stale_guard).
  std::uint64_t epoch = 0;
};

/// The cluster as one MDS sees it when its balancer runs: its own fresh
/// metrics plus the last heartbeat received from everyone else.
struct ClusterView {
  MdsRank whoami = 0;
  Time now = 0;
  std::vector<HeartbeatPayload> mdss;  // index = rank; [whoami] is fresh
  std::vector<double> loads;           // result of the mdsload policy
  double total_load = 0.0;
  /// Laggy-peer detection: ranks whose last heartbeat is older than
  /// laggy_factor * bal_interval are marked dead-or-laggy (0). Their
  /// `loads` entry is zeroed, they are excluded from `total_load`, and the
  /// mechanism refuses to export toward them regardless of what the
  /// policy's where() says. Empty = everyone presumed alive (views built
  /// by tests or the policy validator).
  std::vector<std::uint8_t> alive;

  std::size_t size() const { return mdss.size(); }

  bool is_alive(std::size_t rank) const {
    return rank >= alive.size() || alive[rank] != 0;
  }

  std::size_t alive_count() const {
    if (alive.empty()) return mdss.size();
    std::size_t n = 0;
    for (const std::uint8_t a : alive) n += a != 0;
    return n;
  }
};

/// An export candidate discovered while partitioning the namespace:
/// a dirfrag plus the (policy-computed) load it would carry away.
struct ExportCandidate {
  DirFragId frag;
  double load = 0.0;
  std::size_t entries = 0;
};

/// Balancing policy. One instance per MDS node (policies may keep
/// per-node state, e.g. Fill & Spill's consecutive-overload counter).
class Balancer {
 public:
  virtual ~Balancer() = default;

  virtual std::string name() const = 0;

  /// Cumulative evaluation-cost counters, sampled by the provenance
  /// recorder before and after each balancer tick so every
  /// DecisionRecord carries the Lua steps / cache traffic / hook
  /// errors *that decision* cost. Native (C++) policies report zeros.
  struct EvalStats {
    std::uint64_t lua_steps = 0;
    std::uint64_t hook_errors = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_recompiles = 0;
  };
  virtual EvalStats eval_stats() const { return {}; }

  /// mds_bal_metaload: scalar load of one dirfrag/subtree.
  virtual double metaload(const PopSnapshot& pop) const = 0;

  /// mds_bal_mdsload: scalar load of one MDS from its heartbeat.
  virtual double mdsload(const HeartbeatPayload& hb) const = 0;

  /// mds_bal_when: should this MDS migrate anything this tick?
  /// `view.loads` and `view.total_load` are already filled via mdsload().
  virtual bool when(const ClusterView& view) = 0;

  /// mds_bal_where: how much load to ship to each rank. Return value is
  /// indexed by rank; entries <= 0 mean "send nothing there".
  virtual std::vector<double> where(const ClusterView& view) = 0;

  /// mds_bal_howmuch: the dirfrag-selector strategies to try when picking
  /// which candidates to ship toward a target load. The mechanism runs
  /// every listed selector and keeps the one whose shipped load lands
  /// closest to the target (paper §3.2).
  virtual std::vector<std::string> howmuch() const = 0;

  /// Called when the balancer is installed on a node: policies that keep
  /// their own instrumentation (e.g. Mantle's per-hook timing and
  /// sanitization counters) register it against the cluster's registry
  /// and trace sink here. Either pointer may be null; the default is a
  /// no-op so plain policies need not care.
  virtual void attach_observability(obs::MetricsRegistry* /*metrics*/,
                                    obs::TraceSink* /*trace*/) {}
};

/// A dirfrag selector: given candidates (sorted by descending load) and a
/// target load, choose which to export. Returns indices into `candidates`.
/// The four built-ins are the paper's big_first / small_first / big_small /
/// half; custom selectors can be registered by name.
std::vector<std::size_t> run_selector(const std::string& name,
                                      const std::vector<ExportCandidate>& candidates,
                                      double target);

/// Total load of a selection.
double selection_load(const std::vector<ExportCandidate>& candidates,
                      const std::vector<std::size_t>& picks);

/// Run every selector in `names` and return the picks whose total load is
/// closest to `target` (absolute distance). Empty result if no selector
/// picks anything.
std::vector<std::size_t> best_selection(const std::vector<std::string>& names,
                                        const std::vector<ExportCandidate>& candidates,
                                        double target);

}  // namespace mantle::cluster
