#include "sim/population.hpp"

#include <algorithm>
#include <cmath>

#include "obs/profile.hpp"

namespace mantle::sim {

using cluster::OpType;
using cluster::Reply;
using cluster::Request;
using mantle::mds::DirFragId;
using mantle::mds::kNoInode;
using mantle::mds::MdsRank;

namespace {
constexpr std::size_t kSlotBits = 20;
constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
}  // namespace

ClientPopulation::ClientPopulation(int id, cluster::MdsCluster& cluster,
                                   PopulationConfig cfg, Rng rng)
    : id_(id), cluster_(cluster), cfg_(std::move(cfg)), rng_(rng),
      // As with Client, the reservoir's eviction stream is independent of
      // rng_ so sampling never perturbs the arrival event sequence.
      latencies_(cfg_.latency_reservoir,
                 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(id) + 1)),
      m_arrivals_(cluster.metrics().counter(
          "pop_arrivals_total", "simulated population request arrivals")),
      m_completed_(cluster.metrics().counter(
          "pop_ops_completed_total", "simulated population ops completed")),
      m_modeled_(cluster.metrics().counter(
          "pop_modeled_ops_total", "weight-scaled modeled ops completed")),
      m_failed_(cluster.metrics().counter("pop_ops_failed_total",
                                          "simulated population ops failed")),
      m_forwards_(cluster.metrics().counter(
          "pop_forwards_total", "forward hops seen by population requests")),
      m_retries_(cluster.metrics().counter(
          "pop_retries_total", "population requests resubmitted on timeout")),
      m_stale_(cluster.metrics().counter(
          "pop_stale_replies_total",
          "late replies to superseded population requests")),
      m_outstanding_(cluster.metrics().gauge(
          "pop_outstanding", "simulated population requests in flight")),
      m_latency_(cluster.metrics().histogram(
          "pop_request_latency_ms", obs::buckets::latency_ms(),
          "sampled population request latency")) {
  weight_ = cfg_.weight;
  if (weight_ == 0) {
    const double modeled_rate = static_cast<double>(cfg_.modeled_clients) *
                                cfg_.ops_per_client;
    const double per_sim = cfg_.sim_rate > 0 ? modeled_rate / cfg_.sim_rate : 1;
    weight_ = static_cast<std::uint64_t>(std::ceil(per_sim));
  }
  if (weight_ == 0) weight_ = 1;

  const std::size_t nslots =
      std::min<std::size_t>(std::max<std::size_t>(cfg_.max_outstanding, 1),
                            kSlotMask);
  slots_.resize(nslots);
  free_slots_.reserve(nslots);
  // Handed out from the back, so slot 0 goes first.
  for (std::size_t i = nslots; i > 0; --i)
    free_slots_.push_back(static_cast<std::uint32_t>(i - 1));

  if (cfg_.dirs.empty()) cfg_.dirs = {"/pop" + std::to_string(id_)};
  flows_.resize(cfg_.dirs.size());
  double cum = 0;
  for (std::size_t i = 0; i < cfg_.dirs.size(); ++i) {
    flows_[i].path = cfg_.dirs[i];
    const double w = i < cfg_.dir_weights.size() && cfg_.dir_weights[i] > 0
                         ? cfg_.dir_weights[i]
                         : 1.0;
    cum += w;
    flows_[i].cum_weight = cum;
  }
  total_flow_weight_ = cum;
}

void ClientPopulation::bootstrap_dirs() {
  // Admin setup, not workload: the flow directories are created directly
  // in the namespace (no requests, no heat), like a pre-existing tree.
  auto& ns = cluster_.ns();
  const Time now = cluster_.sim_now();
  for (Flow& f : flows_) {
    mds::InodeId cur = ns.root();
    std::size_t pos = 0;
    const std::string& path = f.path;
    while (pos < path.size() && cur != kNoInode) {
      while (pos < path.size() && path[pos] == '/') ++pos;
      std::size_t end = pos;
      while (end < path.size() && path[end] != '/') ++end;
      if (end == pos) break;
      const std::string comp = path.substr(pos, end - pos);
      const auto res = ns.resolve(path.substr(0, end));
      cur = res.found && res.is_dir ? res.ino : ns.mkdir(cur, comp, now);
      pos = end;
    }
    f.ino = cur;
  }
}

void ClientPopulation::start() {
  if (started_) return;
  started_ = true;
  started_at_ = cluster_.sim_now();
  window_end_ = started_at_ + cfg_.duration;
  window_open_ = true;
  bootstrap_dirs();
  tick();
}

std::uint64_t ClientPopulation::sample_arrivals() {
  const double lambda =
      cfg_.sim_rate * to_seconds(std::min(cfg_.tick, window_end_ -
                                                        cluster_.sim_now()));
  if (lambda <= 0) return 0;
  if (lambda < 32.0) {
    // Knuth's product method for small means.
    const double limit = std::exp(-lambda);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= rng_.next_double();
    } while (p > limit);
    return k - 1;
  }
  // Gaussian approximation for large means.
  const double n = rng_.gaussian(lambda, std::sqrt(lambda));
  return n <= 0 ? 0 : static_cast<std::uint64_t>(n + 0.5);
}

MdsRank ClientPopulation::guess_for(const DirFragId& frag) {
  auto it = beliefs_.find(frag);
  if (it == beliefs_.end()) {
    // Unknown fragment (e.g. freshly split): inherit the whole-directory
    // belief when there is one, else assume mds0 like a cold client.
    const auto dir_it = beliefs_.find({frag.ino, {}});
    if (dir_it != beliefs_.end()) it = dir_it;
  }
  if (it == beliefs_.end()) return 0;
  const FragBelief& b = it->second;
  // A modeled client that refreshed recently guesses the current belief;
  // a straggler still uses the previous authority. hit_ema is the
  // learned fraction of refreshed clients.
  return rng_.next_double() < b.hit_ema ? b.auth : b.prev_auth;
}

Request ClientPopulation::make_request(std::uint32_t slot_idx) {
  Slot& s = slots_[slot_idx];
  // Pick the flow by cumulative weight.
  const double x = rng_.next_double() * total_flow_weight_;
  std::size_t di = 0;
  while (di + 1 < flows_.size() && flows_[di].cum_weight <= x) ++di;
  Flow& f = flows_[di];

  // Op mix: creates grow the flow's dentry universe; reads sample it.
  // The first ops of a flow create regardless so reads have targets.
  const double r = rng_.next_double();
  if (f.created == 0 || r < cfg_.create_frac) {
    s.op = OpType::Create;
    s.name = "p" + std::to_string(id_) + "_" + std::to_string(di) + "_" +
             std::to_string(f.created);
    ++f.created;
  } else {
    s.op = rng_.next_double() < 0.5 ? OpType::Getattr : OpType::Lookup;
    const std::uint64_t pick = rng_.uniform(0, f.created - 1);
    s.name = "p" + std::to_string(id_) + "_" + std::to_string(di) + "_" +
             std::to_string(pick);
  }
  s.dir = di;

  Request req;
  req.id = req_id(slot_idx);
  req.client = id_;
  req.op = s.op;
  req.dir = f.ino;
  req.name = s.name;
  req.span = cluster_.trace().next_span();
  req.issued_at = cluster_.sim_now();
  return req;
}

void ClientPopulation::tick() {
  obs::ScopedPhase prof(obs::ProfilePhase::PopulationSample);
  const Time now = cluster_.sim_now();
  if (now >= window_end_) {
    // Arrival window closed: stop generating; done() flips when the last
    // in-flight request resolves (or immediately if already drained).
    window_open_ = false;
    if (outstanding_ == 0 && !done_) {
      done_ = true;
      finished_at_ = now;
    }
    return;
  }

  std::uint64_t want = sample_arrivals() + backlog_;
  const std::uint64_t room = free_slots_.size();
  backlog_ = want > room ? want - room : 0;
  if (want > room) want = room;

  if (want > 0) {
    // One network event per (guess rank, batch), not per request: group
    // the tick's arrivals while preserving issue order within a rank.
    std::map<MdsRank, std::vector<Request>> batches;
    for (std::uint64_t i = 0; i < want; ++i) {
      const std::uint32_t slot_idx = free_slots_.back();
      free_slots_.pop_back();
      Slot& s = slots_[slot_idx];
      ++s.gen;
      s.inflight = true;
      s.issued_at = now;
      s.attempt = 1;
      s.backoff = cfg_.retry.timeout;

      Request req = make_request(slot_idx);
      const DirFragId frag = cluster_.ns().frag_of(req.dir, req.name);
      s.last_guess = guess_for(frag);
      batches[s.last_guess].push_back(std::move(req));

      ++outstanding_;
      ++arrivals_;
      if (cfg_.retry.timeout > 0) arm_timeout(slot_idx);
    }
    m_arrivals_.inc(want);
    m_outstanding_.set(static_cast<double>(outstanding_));
    for (auto& [rank, batch] : batches)
      cluster_.client_submit_batch(rank, std::move(batch));
  }

  cluster_.sched_after(cfg_.tick, [this]() { tick(); });
}

void ClientPopulation::arm_timeout(std::uint32_t slot_idx) {
  const std::uint64_t gen = slots_[slot_idx].gen;
  cluster_.sched_after(slots_[slot_idx].backoff,
                                   [this, slot_idx, gen]() {
    Slot& s = slots_[slot_idx];
    if (!s.inflight || s.gen != gen) return;  // already resolved/reissued
    if (cfg_.retry.max_attempts > 0 && s.attempt >= cfg_.retry.max_attempts) {
      resolve(slot_idx, false);
      return;
    }
    // Resubmit under a fresh id toward a rank believed up; the gen bump
    // makes any late reply to the old id identify itself as stale.
    ++retries_;
    m_retries_.inc();
    ++s.attempt;
    ++s.gen;
    if (!cluster_.is_up(s.last_guess))
      s.last_guess = cluster_.pick_up_rank(s.last_guess);
    s.backoff = std::min(s.backoff * 2, cfg_.retry.max_backoff);

    Request req;
    req.id = req_id(slot_idx);
    req.client = id_;
    req.op = s.op;
    req.dir = flows_[s.dir].ino;
    req.name = s.name;
    req.span = cluster_.trace().next_span();
    req.issued_at = s.issued_at;  // latency spans the logical op
    cluster_.client_submit(std::move(req), s.last_guess);
    arm_timeout(slot_idx);
  });
}

void ClientPopulation::resolve(std::uint32_t slot_idx, bool ok) {
  Slot& s = slots_[slot_idx];
  const Time now = cluster_.sim_now();
  const double ms = to_seconds(now - s.issued_at) * 1e3;
  latencies_.add(ms);
  m_latency_.observe(ms);
  if (ok) {
    ++sim_completed_;
    m_completed_.inc();
    m_modeled_.inc(weight_);
  } else {
    ++sim_failed_;
    m_failed_.inc();
  }
  ++s.gen;  // invalidates late replies and armed timers
  s.inflight = false;
  s.name.clear();
  free_slots_.push_back(slot_idx);
  --outstanding_;
  m_outstanding_.set(static_cast<double>(outstanding_));
  if (!window_open_ && outstanding_ == 0 && !done_) {
    done_ = true;
    finished_at_ = now;
  }
}

void ClientPopulation::on_reply(const Reply& rep) {
  const auto slot_idx = static_cast<std::uint32_t>(rep.req_id & kSlotMask);
  const std::uint64_t gen = rep.req_id >> kSlotBits;
  if (slot_idx >= slots_.size() || !slots_[slot_idx].inflight ||
      slots_[slot_idx].gen != gen) {
    ++stale_replies_;
    m_stale_.inc();
    return;
  }
  Slot& s = slots_[slot_idx];
  forwards_seen_ += static_cast<std::uint64_t>(rep.hops);
  if (rep.hops > 0) m_forwards_.inc(static_cast<std::uint64_t>(rep.hops));

  // Learn: shift the belief window on an authority change, and track the
  // forward-free fraction as the modeled cache hit rate.
  if (rep.dir != kNoInode) {
    FragBelief& b = beliefs_[{rep.dir, rep.frag}];
    if (b.auth != rep.served_by) {
      b.prev_auth = b.auth;
      b.auth = rep.served_by;
    }
    const double hit = rep.hops == 0 ? 1.0 : 0.0;
    b.hit_ema += cfg_.hit_alpha * (hit - b.hit_ema);
  }

  // At-least-once, as in Client: a retried mutation refused as a
  // duplicate (e.g. create -> already exists) still completed.
  const bool is_mut = s.op == OpType::Create || s.op == OpType::Mkdir ||
                      s.op == OpType::Unlink || s.op == OpType::Rename;
  resolve(slot_idx, rep.ok || (s.attempt > 1 && is_mut));
}

double ClientPopulation::hit_rate_estimate() const {
  if (beliefs_.empty()) return 0.0;
  double sum = 0;
  for (const auto& [frag, b] : beliefs_) sum += b.hit_ema;
  return sum / static_cast<double>(beliefs_.size());
}

}  // namespace mantle::sim
