#pragma once

#include <optional>
#include <string>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"

/// \file workload.hpp
/// Workload interface: a client pulls one operation at a time (closed
/// loop). Operations address a directory by path plus a dentry name; the
/// client resolves the path and issues the request against the cluster.

namespace mantle::sim {

struct WorkOp {
  cluster::OpType op = cluster::OpType::Getattr;
  std::string dir_path;  // absolute path of the target directory
  std::string name;      // dentry name ("" for whole-directory ops)
  // Rename only: destination directory path + new dentry name.
  std::string dst_dir_path;
  std::string dst_name;
};

class Workload {
 public:
  virtual ~Workload() = default;

  /// The next operation, or nullopt when the workload is finished.
  virtual std::optional<WorkOp> next(Rng& rng) = 0;

  /// Client-side delay between receiving a reply and issuing the next
  /// request (compute / compile time between metadata ops).
  virtual Time think_time(Rng& rng) {
    (void)rng;
    return 0;
  }

  /// Optional label for reports.
  virtual std::string name() const { return "workload"; }
};

}  // namespace mantle::sim
