#include "sim/engine.hpp"

#include <utility>

namespace mantle::sim {

void Engine::schedule_at(Time when, Callback fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Engine::set_metrics(obs::MetricsRegistry* reg) {
  if (reg == nullptr) {
    m_dispatched_ = nullptr;
    m_now_s_ = nullptr;
    m_pending_ = nullptr;
    return;
  }
  m_dispatched_ = &reg->counter("sim_events_dispatched_total",
                                "events executed by the discrete-event loop");
  m_now_s_ = &reg->gauge("sim_now_seconds", "simulated clock");
  m_pending_ = &reg->gauge("sim_pending_events", "events still queued");
}

std::uint64_t Engine::run_until(Time horizon) {
  std::uint64_t dispatched = 0;
  while (!queue_.empty()) {
    // priority_queue::top() is const; the callback must be moved out before
    // pop, so copy the small parts and move the function via const_cast-free
    // re-push avoidance: take a copy of the handle first.
    const Event& top = queue_.top();
    if (top.when > horizon) break;
    Time when = top.when;
    Callback fn = std::move(const_cast<Event&>(top).fn);
    queue_.pop();
    now_ = when;
    fn();
    ++dispatched;
    if (m_dispatched_ != nullptr) m_dispatched_->inc();
  }
  if (m_now_s_ != nullptr) m_now_s_->set(to_seconds(now_));
  if (m_pending_ != nullptr)
    m_pending_->set(static_cast<double>(queue_.size()));
  return dispatched;
}

}  // namespace mantle::sim
