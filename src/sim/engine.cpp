#include "sim/engine.hpp"

#include <utility>

namespace mantle::sim {

void Engine::schedule_at(Time when, Callback fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

std::uint64_t Engine::run_until(Time horizon) {
  std::uint64_t dispatched = 0;
  while (!queue_.empty()) {
    // priority_queue::top() is const; the callback must be moved out before
    // pop, so copy the small parts and move the function via const_cast-free
    // re-push avoidance: take a copy of the handle first.
    const Event& top = queue_.top();
    if (top.when > horizon) break;
    Time when = top.when;
    Callback fn = std::move(const_cast<Event&>(top).fn);
    queue_.pop();
    now_ = when;
    fn();
    ++dispatched;
  }
  if (queue_.empty() && now_ < horizon) {
    // Nothing left; clock stays at the last dispatched event.
  }
  return dispatched;
}

}  // namespace mantle::sim
