#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "obs/profile.hpp"

namespace mantle::sim {

void Engine::schedule_at(Time when, Callback fn) {
  if (when < now_) when = now_;
  if (when == kTimeMax) {
    // "Never" sentinel: the event is disabled, not deferred. Dropping it
    // here (instead of parking it forever) keeps empty()/pending() honest
    // and the drop is deterministic — it depends only on `when`.
    ++saturated_;
    return;
  }
  const Ref r = pool_.alloc(when, next_seq_++, std::move(fn));
  enqueue(r);
  ++size_;
}

void Engine::enqueue(Ref r) {
  const Time when = pool_[r].when;
  if ((!top_.empty() || !rungs_.empty() || !bottom_.empty()) &&
      when >= top_start_) {
    top_.push_back(r);
    if (when < top_min_) top_min_ = when;
    if (when > top_max_) top_max_ = when;
    return;
  }
  if (top_.empty() && rungs_.empty() && bottom_.empty()) {
    // Completely drained: restart the ladder around this event.
    top_start_ = when;
    top_min_ = top_max_ = when;
    top_.push_back(r);
    return;
  }
  // Below the top tier: find the coarsest rung whose drain cursor has not
  // yet passed this time. Each deeper rung covers a strictly earlier span,
  // so the first match is the right home.
  for (Rung& g : rungs_) {
    if (when >= g.cur_start()) {
      std::size_t b = static_cast<std::size_t>((when - g.start) / g.width);
      if (b >= g.buckets.size()) b = g.buckets.size() - 1;
      g.buckets[b].push_back(r);
      ++g.count;
      return;
    }
  }
  bottom_insert(r);
}

void Engine::bottom_insert(Ref r) {
  // bottom_ is sorted descending by (when, seq); dispatch pops from the
  // back. Keys are unique (seq), so this is a total order.
  const auto pos = std::lower_bound(
      bottom_.begin(), bottom_.end(), r,
      [this](Ref a, Ref b) { return earlier(b, a); });
  bottom_.insert(pos, r);
}

void Engine::spawn_rung(Time start, Time span, std::vector<Ref> events) {
  Rung g;
  g.start = start;
  g.width = std::max<Time>(1, span / static_cast<Time>(kFanout));
  const std::size_t nbuckets = static_cast<std::size_t>(span / g.width) + 1;
  g.buckets.assign(nbuckets, {});
  rungs_.push_back(std::move(g));
  Rung& back = rungs_.back();
  for (const Ref r : events) {
    std::size_t b =
        static_cast<std::size_t>((pool_[r].when - back.start) / back.width);
    if (b >= back.buckets.size()) b = back.buckets.size() - 1;
    back.buckets[b].push_back(r);
    ++back.count;
  }
}

void Engine::spawn_rung_from_top() {
  const Time span = top_max_ - top_min_ + 1;
  std::vector<Ref> events = std::move(top_);
  top_.clear();
  spawn_rung(top_min_, span, std::move(events));
  // Everything at or beyond the new rung's end goes back to the top tier.
  top_start_ = rungs_.back().end();
  top_min_ = kTimeMax;
  top_max_ = 0;
}

void Engine::refill() {
  for (;;) {
    while (!rungs_.empty() && rungs_.back().count == 0) rungs_.pop_back();
    if (rungs_.empty()) {
      if (top_.empty()) return;  // queue fully drained
      spawn_rung_from_top();
      continue;
    }
    Rung& g = rungs_.back();
    while (g.buckets[g.cur].empty()) ++g.cur;
    std::vector<Ref> bucket = std::move(g.buckets[g.cur]);
    g.buckets[g.cur].clear();
    const Time b_start = g.cur_start();
    ++g.cur;
    g.count -= bucket.size();
    if (bucket.size() > kSortThreshold && g.width > 1 &&
        rungs_.size() < kMaxRungs) {
      // Too many events to sort in one go: shatter the bucket into a
      // finer rung and keep descending. Each event moves at most kMaxRungs
      // times, which keeps the amortized cost O(1).
      spawn_rung(b_start, g.width, std::move(bucket));
      continue;
    }
    std::sort(bucket.begin(), bucket.end(),
              [this](Ref a, Ref b) { return earlier(a, b); });
    bottom_.assign(bucket.rbegin(), bucket.rend());
    return;
  }
}

void Engine::set_metrics(obs::MetricsRegistry* reg) {
  if (reg == nullptr) {
    m_dispatched_ = nullptr;
    m_now_s_ = nullptr;
    m_pending_ = nullptr;
    m_pool_live_ = nullptr;
    m_pool_peak_live_ = nullptr;
    m_pool_capacity_ = nullptr;
    m_pool_reserved_bytes_ = nullptr;
    return;
  }
  m_dispatched_ = &reg->counter("sim_events_dispatched_total",
                                "events executed by the discrete-event loop");
  m_now_s_ = &reg->gauge("sim_now_seconds", "simulated clock");
  m_pending_ = &reg->gauge("sim_pending_events", "events still queued");
  m_pool_live_ = &reg->gauge("sim_pool_live_events",
                             "event-pool slots currently in use");
  m_pool_peak_live_ = &reg->gauge("sim_pool_peak_live_events",
                                  "high-water mark of live event slots");
  m_pool_capacity_ = &reg->gauge("sim_pool_capacity_events",
                                 "event-pool slots allocated");
  m_pool_reserved_bytes_ = &reg->gauge("sim_pool_reserved_bytes",
                                       "event-arena memory reserved");
}

Time Engine::next_when() {
  if (bottom_.empty()) refill();
  if (bottom_.empty()) return kTimeMax;
  return pool_[bottom_.back()].when;
}

std::uint64_t Engine::run_until(Time horizon) {
  obs::ScopedPhase prof(obs::ProfilePhase::EngineDispatch);
  std::uint64_t dispatched = 0;
  for (;;) {
    if (bottom_.empty()) refill();
    if (bottom_.empty()) break;  // drained: now() stays at the last event
    const Ref r = bottom_.back();
    if (pool_[r].when > horizon) {
      // Work remains beyond the horizon: catch the clock up to it so
      // horizon-sliced drivers always make forward progress.
      if (horizon > now_) now_ = horizon;
      break;
    }
    bottom_.pop_back();
    now_ = pool_[r].when;
    Callback fn = std::move(pool_[r].fn);
    pool_.release(r);
    --size_;
    fn();
    ++dispatched;
    if (m_dispatched_ != nullptr) m_dispatched_->inc();
  }
  if (m_now_s_ != nullptr) m_now_s_->set(to_seconds(now_));
  if (m_pending_ != nullptr) m_pending_->set(static_cast<double>(size_));
  if (m_pool_live_ != nullptr) {
    const EventPool::Stats ps = pool_.stats();
    m_pool_live_->set(static_cast<double>(ps.live));
    m_pool_peak_live_->set(static_cast<double>(ps.peak_live));
    m_pool_capacity_->set(static_cast<double>(ps.capacity));
    m_pool_reserved_bytes_->set(static_cast<double>(ps.bytes_reserved));
  }
  return dispatched;
}

}  // namespace mantle::sim
