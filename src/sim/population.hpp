#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/client.hpp"

/// \file population.hpp
/// A mean-field client aggregate: one object stands in for N modeled
/// clients (up to ~1M) hammering a set of directories. Instead of one
/// closed loop per client — which caps simulations at a few thousand
/// clients — the population issues sampled request arrivals per dirfrag
/// flow, where each simulated request represents `weight` modeled ops.
/// Simulated requests travel the real cluster path (network latency,
/// forwards on stale caches, session-flush stalls, retries after crashes),
/// so balancer-visible load, forward rates and latency tails behave like a
/// population of real clients while the event count stays bounded by the
/// sampling rate, not the client count.

namespace mantle::sim {

struct PopulationConfig {
  /// How many clients this flow stands for (reporting + default weight).
  std::uint64_t modeled_clients = 10000;
  /// Modeled per-client op rate (ops/sec); modeled aggregate arrival rate
  /// is modeled_clients * ops_per_client.
  double ops_per_client = 1.0;
  /// Simulated request arrivals per second for the whole population: the
  /// sampling rate. This — not modeled_clients — is what the event queue
  /// pays for.
  double sim_rate = 2000.0;
  /// Modeled ops represented by each simulated request. 0 derives
  /// ceil(modeled_clients * ops_per_client / sim_rate), floored at 1.
  std::uint64_t weight = 0;

  Time tick = 50 * kMsec;       ///< arrival-batch granularity
  Time duration = 30 * kSec;    ///< arrival-generation window
  /// Bound on simulated in-flight requests (slot pool; must be < 2^20).
  /// Arrivals finding no free slot carry over to the next tick.
  std::size_t max_outstanding = 8192;

  /// Op mix: fraction of arrivals that create a fresh dentry; the rest
  /// split evenly between Getattr and Lookup on already-created names
  /// (a flow's first ops create regardless, so reads have targets).
  double create_frac = 0.5;
  /// EMA step for the learned per-dirfrag auth-cache hit model.
  double hit_alpha = 0.05;

  /// Same semantics as Client: 0 timeout disables retries. Without
  /// retries a request dropped by a dead rank leaks its slot until the
  /// scenario horizon, so faulty runs should enable this.
  RetryPolicy retry;

  /// Directory flows. Paths are bootstrap-created directly in the
  /// namespace at start() (admin setup, no heat). Empty = {"/pop<id>"}.
  std::vector<std::string> dirs;
  /// Relative flow popularity (same length as dirs); empty = uniform.
  std::vector<double> dir_weights;

  std::size_t latency_reservoir = mantle::ReservoirSample::kDefaultCapacity;
};

/// The aggregate itself. Shares Scenario's dense client-id space with
/// object Clients: all its requests carry the population's single id, and
/// replies route back through Scenario's sink table.
class ClientPopulation {
 public:
  ClientPopulation(int id, cluster::MdsCluster& cluster, PopulationConfig cfg,
                   Rng rng);

  int id() const { return id_; }
  const PopulationConfig& config() const { return cfg_; }

  /// Bootstrap the directory flows and arm the first arrival tick.
  void start();

  /// Scenario routes replies here by client id.
  void on_reply(const cluster::Reply& rep);

  /// True once the arrival window closed and every in-flight simulated
  /// request resolved.
  bool done() const { return done_; }
  Time started_at() const { return started_at_; }
  Time finished_at() const { return finished_at_; }

  /// Modeled ops per simulated request (resolved from the config).
  std::uint64_t weight() const { return weight_; }

  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t sim_ops_completed() const { return sim_completed_; }
  std::uint64_t sim_ops_failed() const { return sim_failed_; }
  /// Weight-scaled completions: what the flow stands for.
  std::uint64_t modeled_ops_completed() const {
    return sim_completed_ * weight_;
  }
  std::uint64_t forwards_seen() const { return forwards_seen_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t stale_replies() const { return stale_replies_; }
  std::size_t outstanding() const { return outstanding_; }

  /// Sampled per-request latency tail (milliseconds). Uniform over
  /// simulated requests, which all carry equal weight.
  const mantle::ReservoirSample& latencies_ms() const { return latencies_; }

  /// Flow-weighted mean of the per-dirfrag hit-model EMAs: the
  /// population's current belief in its own auth cache.
  double hit_rate_estimate() const;

 private:
  /// Per-dirfrag learned authority: current belief, the previous belief
  /// (what a straggler modeled client would still use), and an EMA of
  /// forward-free replies. A guess uses the current belief with
  /// probability hit_ema, else the stale one — so forwards persist after
  /// a migration in proportion to how recently the flow re-learned.
  struct FragBelief {
    mds::MdsRank auth = 0;
    mds::MdsRank prev_auth = 0;
    double hit_ema = 0.5;
  };

  /// One simulated in-flight request. `gen` is bumped on every issue and
  /// every resolve, and is encoded into the request id, so late replies
  /// and stale timeout timers identify themselves by mismatch.
  struct Slot {
    std::uint64_t gen = 0;
    bool inflight = false;
    Time issued_at = 0;
    int attempt = 0;
    Time backoff = 0;
    mds::MdsRank last_guess = 0;
    std::size_t dir = 0;
    cluster::OpType op = cluster::OpType::Getattr;
    std::string name;
  };

  struct Flow {
    std::string path;
    mds::InodeId ino = mds::kNoInode;
    double cum_weight = 0;          ///< cumulative, for sampled dir choice
    std::uint64_t created = 0;      ///< dentries this flow has created
  };

  void bootstrap_dirs();
  void tick();
  std::uint64_t sample_arrivals();
  cluster::Request make_request(std::uint32_t slot_idx);
  mds::MdsRank guess_for(const mds::DirFragId& frag);
  void arm_timeout(std::uint32_t slot_idx);
  void resolve(std::uint32_t slot_idx, bool ok);
  std::uint64_t req_id(std::uint32_t slot_idx) const {
    return (slots_[slot_idx].gen << 20) | slot_idx;
  }

  int id_;
  cluster::MdsCluster& cluster_;
  PopulationConfig cfg_;
  Rng rng_;
  std::uint64_t weight_ = 1;

  std::vector<Flow> flows_;
  double total_flow_weight_ = 0;
  std::map<mds::DirFragId, FragBelief> beliefs_;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t outstanding_ = 0;
  std::uint64_t backlog_ = 0;  ///< arrivals deferred by slot exhaustion

  bool started_ = false;
  bool window_open_ = false;
  bool done_ = false;
  Time started_at_ = 0;
  Time window_end_ = 0;
  Time finished_at_ = 0;

  std::uint64_t arrivals_ = 0;
  std::uint64_t sim_completed_ = 0;
  std::uint64_t sim_failed_ = 0;
  std::uint64_t forwards_seen_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t stale_replies_ = 0;
  mantle::ReservoirSample latencies_;

  // Cached registry handles (shared names across populations).
  obs::Counter& m_arrivals_;
  obs::Counter& m_completed_;
  obs::Counter& m_modeled_;
  obs::Counter& m_failed_;
  obs::Counter& m_forwards_;
  obs::Counter& m_retries_;
  obs::Counter& m_stale_;
  obs::Gauge& m_outstanding_;
  obs::Histogram& m_latency_;
};

}  // namespace mantle::sim
