#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/client.hpp"
#include "sim/engine.hpp"
#include "sim/population.hpp"
#include "sim/shard.hpp"

/// \file scenario.hpp
/// Experiment runner: wires an engine, a cluster and a set of clients
/// together, runs to completion (or a horizon) and exposes the metrics the
/// paper's figures are made of: per-client runtimes, latency
/// distributions, per-MDS throughput timelines, forwards/hits, session
/// flushes and the migration log.

namespace mantle::sim {

struct ScenarioConfig {
  cluster::ClusterConfig cluster;
  Time max_time = 60 * mantle::kMinute;  // safety horizon
  Time slice = mantle::kSec;             // completion-check granularity
  RetryPolicy retry;                     // client fault tolerance (off by default)
  /// Worker threads for the sharded engine (K). Only meaningful when
  /// cluster.shards > 0. An execution detail: K must never change any
  /// output, so it is deliberately absent from the schedule/obs digest.
  int threads = 1;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig cfg);

  /// The serial-lane engine (classic mode: the only engine; sharded
  /// mode: the global lane G). Direct scheduling through this stays
  /// valid in both modes — it lands on the serial lane.
  Engine& engine() { return runtime_ ? runtime_->global() : engine_; }
  cluster::MdsCluster& cluster() { return *cluster_; }

  /// Non-null when cluster.shards > 0 selected the sharded engine.
  ShardRuntime* runtime() { return runtime_.get(); }

  // -- Mode-agnostic simulation clock/queue accessors --------------------------
  Time sim_now() const { return runtime_ ? runtime_->now() : engine_.now(); }
  bool sim_empty() const { return runtime_ ? runtime_->empty() : engine_.empty(); }
  std::size_t sim_pending() const {
    return runtime_ ? runtime_->pending() : engine_.pending();
  }
  std::uint64_t sim_saturated() const {
    return runtime_ ? runtime_->saturated_events() : engine_.saturated_events();
  }
  EventPool::Stats sim_pool_stats() const {
    return runtime_ ? runtime_->pool_stats() : engine_.pool_stats();
  }
  /// Run the simulation a further `span` past its current clock
  /// (post-run drain loops in the bench harness use this).
  void run_extra(Time span);

  /// Add a closed-loop client running the given workload. Returns its id.
  int add_client(std::unique_ptr<Workload> wl);

  /// Add a mean-field client population (N modeled clients as sampled
  /// per-dirfrag arrival flows). Shares the dense client-id space with
  /// object clients; returns the population's id.
  int add_population(PopulationConfig cfg);

  /// Register a periodic probe (e.g. heat-map sampling for Figure 1).
  /// Probes stop firing when the scenario ends.
  void add_probe(Time interval, std::function<void(Time)> fn);

  /// Run until every client finished or cfg.max_time. Returns makespan
  /// (time of the last client finishing, or the horizon).
  Time run();

  // -- Results -----------------------------------------------------------------
  const std::vector<std::unique_ptr<Client>>& clients() const { return clients_; }
  const std::vector<std::unique_ptr<ClientPopulation>>& populations() const {
    return populations_;
  }
  /// The object client with this id. Ids are shared with populations;
  /// asking for a population's id here throws.
  Client& client(int id);
  ClientPopulation& population(int id);

  /// Makespan of the last run.
  Time makespan() const { return makespan_; }

  /// All client latencies pooled (milliseconds); populations contribute
  /// their retained reservoir samples.
  mantle::SampleSet pooled_latencies_ms() const;

  /// Aggregate client-visible throughput (completed ops / makespan).
  /// Populations contribute weight-scaled modeled ops.
  double aggregate_throughput() const;

 private:
  /// One slot of the dense client-id space: exactly one pointer is set.
  /// Replies and results dispatch through here, so object clients and
  /// population aggregates coexist against the same cluster.
  struct Sink {
    Client* client = nullptr;
    ClientPopulation* pop = nullptr;
  };

  ScenarioConfig cfg_;
  Engine engine_;  // classic single-queue mode (cluster.shards == 0)
  // Declared before cluster_: the cluster is constructed on the
  // runtime's global engine and must be destroyed first.
  std::unique_ptr<ShardRuntime> runtime_;
  std::unique_ptr<cluster::MdsCluster> cluster_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<std::unique_ptr<ClientPopulation>> populations_;
  std::vector<Sink> sinks_;
  void run_slice(Time horizon);

  struct Probe {
    Time interval;
    std::function<void(Time)> fn;
  };
  std::vector<Probe> probes_;
  bool running_ = false;
  Time makespan_ = 0;
};

}  // namespace mantle::sim
