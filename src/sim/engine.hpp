#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"

/// \file engine.hpp
/// Deterministic discrete-event engine. Events scheduled for the same
/// timestamp fire in scheduling order (FIFO by sequence number), so a run
/// is a pure function of its inputs and seeds — which is exactly what the
/// Figure 4 reproduction needs: the paper shows CephFS balancing is *not*
/// reproducible run to run, and we reproduce that by varying only seeds.

namespace mantle::sim {

using mantle::Time;

class Engine {
 public:
  using Callback = std::function<void()>;

  Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `when` (>= now; earlier times are
  /// clamped to now).
  void schedule_at(Time when, Callback fn);

  /// Schedule `fn` after a delay from now.
  void schedule_after(Time delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the queue is empty or the horizon is reached. Returns the
  /// number of events dispatched.
  std::uint64_t run_until(Time horizon);

  /// Drain everything (no horizon).
  std::uint64_t run() { return run_until(~Time{0}); }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Attach a metrics registry: the engine keeps a dispatched-event
  /// counter and clock/queue gauges fresh. Caller keeps ownership;
  /// nullptr detaches.
  void set_metrics(obs::MetricsRegistry* reg);

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;

  // Cached handles into the attached registry (null = not attached).
  obs::Counter* m_dispatched_ = nullptr;
  obs::Gauge* m_now_s_ = nullptr;
  obs::Gauge* m_pending_ = nullptr;
};

}  // namespace mantle::sim
