#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"

/// \file engine.hpp
/// Deterministic discrete-event engine. Events scheduled for the same
/// timestamp fire in scheduling order (FIFO by sequence number), so a run
/// is a pure function of its inputs and seeds — which is exactly what the
/// Figure 4 reproduction needs: the paper shows CephFS balancing is *not*
/// reproducible run to run, and we reproduce that by varying only seeds.
///
/// Scale architecture (ROADMAP item 1): the engine used to keep one
/// heap-allocated `std::function` per event in a binary heap, which caps
/// simulations at tens of ranks. It now runs on
///   - an arena-allocated event pool (`EventPool`): events live in fixed
///     chunks recycled through a free list, so steady-state scheduling
///     performs no per-event allocation, and
///   - a ladder queue: far-future events sit unsorted in a top tier,
///     get shattered into progressively finer bucket rungs as the clock
///     approaches, and are only fully sorted in a small bottom tier just
///     before dispatch. Enqueue and dequeue are O(1) amortized; the total
///     order is the exact (when, seq) order of the old heap, verified by a
///     property test against a reference heap.
///
/// Callbacks are `sim::Callback`: a move-only type-erased function with
/// 48 bytes of inline storage (heap fallback for oversized captures), so
/// the common `[this]`-style continuations never touch the allocator.

namespace mantle::sim {

using mantle::Time;

/// "Never": the saturation sentinel for schedule_after overflow. An event
/// scheduled exactly at kTimeMax is treated as disabled and dropped (its
/// callback is destroyed, never invoked) — the deterministic analogue of a
/// timer armed for the end of time.
inline constexpr Time kTimeMax = ~Time{0};

/// Move-only callable with inline storage. Anything invocable as `void()`
/// fits; captures larger than kInlineSize (or with throwing moves) fall
/// back to a single heap cell. Replaces `std::function` on the event hot
/// path: no copy requirement, no allocation for small captures, and
/// dispatch is a plain move out of the pool slot.
class Callback {
 public:
  static constexpr std::size_t kInlineSize = 48;

  Callback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>,
                                Callback> &&
                std::is_invocable_r_v<void,
                                      std::remove_cv_t<std::remove_reference_t<F>>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cv_t<std::remove_reference_t<F>>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  Callback(Callback&& o) noexcept { move_from(o); }
  Callback& operator=(Callback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  void operator()() { ops_->invoke(buf_); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static inline const Ops kInlineOps = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static inline const Ops kHeapOps = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) noexcept { delete *static_cast<Fn**>(p); },
  };

  void move_from(Callback& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(o.buf_, buf_);
      o.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

/// Chunked arena of events with a free-list: slots are recycled, never
/// returned to the allocator, so a long run's event traffic is served out
/// of a handful of fixed chunks. Refs are 32-bit indices.
class EventPool {
 public:
  using Ref = std::uint32_t;
  static constexpr Ref kNullRef = 0xffffffffu;

  struct Event {
    Time when = 0;
    std::uint64_t seq = 0;
    Callback fn;
  };

  struct Stats {
    std::size_t live = 0;        ///< events currently scheduled
    std::size_t peak_live = 0;   ///< high-water mark of live events
    std::size_t capacity = 0;    ///< slots reserved across all chunks
    std::size_t bytes_reserved = 0;  ///< arena + free-list footprint
  };

  Ref alloc(Time when, std::uint64_t seq, Callback fn) {
    if (free_.empty()) grow();
    const Ref r = free_.back();
    free_.pop_back();
    Event& e = (*this)[r];
    e.when = when;
    e.seq = seq;
    e.fn = std::move(fn);
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    return r;
  }

  void release(Ref r) {
    (*this)[r].fn.reset();
    free_.push_back(r);
    --live_;
  }

  Event& operator[](Ref r) {
    return chunks_[r >> kChunkShift][r & kChunkMask];
  }
  const Event& operator[](Ref r) const {
    return chunks_[r >> kChunkShift][r & kChunkMask];
  }

  Stats stats() const {
    Stats s;
    s.live = live_;
    s.peak_live = peak_live_;
    s.capacity = chunks_.size() * kChunkSize;
    s.bytes_reserved = chunks_.size() * kChunkSize * sizeof(Event) +
                       free_.capacity() * sizeof(Ref);
    return s;
  }

 private:
  static constexpr unsigned kChunkShift = 12;  // 4096 events per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr Ref kChunkMask = static_cast<Ref>(kChunkSize - 1);

  void grow() {
    const Ref base = static_cast<Ref>(chunks_.size() * kChunkSize);
    chunks_.push_back(std::make_unique<Event[]>(kChunkSize));
    free_.reserve(free_.size() + kChunkSize);
    // Pushed high-to-low so fresh slots are handed out in ascending order
    // (cosmetic: keeps early refs cache-adjacent). Dispatch order never
    // depends on ref values, only on (when, seq).
    for (std::size_t i = kChunkSize; i > 0; --i)
      free_.push_back(base + static_cast<Ref>(i - 1));
  }

  std::vector<std::unique_ptr<Event[]>> chunks_;
  std::vector<Ref> free_;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
};

class Engine {
 public:
  using Callback = sim::Callback;
  using Ref = EventPool::Ref;

  Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `when` (>= now; earlier times are
  /// clamped to now). Scheduling at kTimeMax means "never": the callback
  /// is dropped (destroyed, not invoked) and saturated_events() is bumped.
  void schedule_at(Time when, Callback fn);

  /// Schedule `fn` after a delay from now. `now + delay` saturates at the
  /// kTimeMax horizon sentinel instead of wrapping: a huge delay (e.g. a
  /// disabled-timeout sentinel) parks the event at "never" rather than
  /// scheduling it in the past.
  void schedule_after(Time delay, Callback fn) {
    Time when = now_ + delay;
    if (when < now_) when = kTimeMax;  // unsigned wrap: saturate
    schedule_at(when, std::move(fn));
  }

  /// Run until the queue is empty or the horizon is reached. Returns the
  /// number of events dispatched. Every event with `when <= horizon`
  /// fires; on return `now()` is the horizon when work remains pending
  /// beyond it (the clock catches up to the horizon), or the time of the
  /// last dispatched event when the queue drained first.
  std::uint64_t run_until(Time horizon);

  /// Drain everything (no horizon).
  std::uint64_t run() { return run_until(kTimeMax); }

  /// Timestamp of the earliest pending event, or kTimeMax when empty.
  /// Non-const: peeking may pull the next batch down into the bottom
  /// tier (the same refill run_until would do — deterministic and
  /// order-preserving, just earlier). The conservative epoch scheduler
  /// uses this to pick each epoch's base time.
  Time next_when();

  bool empty() const { return size_ == 0; }
  std::size_t pending() const { return size_; }

  /// Events dropped by the kTimeMax "never" saturation.
  std::uint64_t saturated_events() const { return saturated_; }

  /// Arena footprint: live/peak event counts and bytes reserved — the
  /// peak-RSS proxy reported by bench/fig_scale.
  EventPool::Stats pool_stats() const { return pool_.stats(); }

  /// Attach a metrics registry: the engine keeps a dispatched-event
  /// counter and clock/queue gauges fresh. Caller keeps ownership;
  /// nullptr detaches.
  void set_metrics(obs::MetricsRegistry* reg);

  /// Counter-only attachment for sharded mode: per-shard engines bump
  /// the shared dispatched counter (whose per-shard cells make that
  /// contention-free) but leave the clock/queue gauges to the shard
  /// runtime, which writes them serially at each epoch barrier.
  void set_dispatch_counter(obs::Counter* c) { m_dispatched_ = c; }

 private:
  /// One rung of the ladder: an array of buckets of width `width` ticks
  /// starting at `start`. `cur` is the next bucket to drain; events may
  /// only be inserted at or after it (earlier times belong to a finer
  /// rung or the bottom tier).
  struct Rung {
    Time start = 0;
    Time width = 1;
    std::size_t cur = 0;
    std::size_t count = 0;
    std::vector<std::vector<Ref>> buckets;

    Time cur_start() const { return start + width * static_cast<Time>(cur); }
    Time end() const {
      return start + width * static_cast<Time>(buckets.size());
    }
  };

  void enqueue(Ref r);
  void bottom_insert(Ref r);
  /// Move the next chunk of events into the (empty) bottom tier, shattering
  /// oversized buckets into finer rungs on the way down.
  void refill();
  void spawn_rung(Time start, Time span, std::vector<Ref> events);
  void spawn_rung_from_top();

  bool earlier(Ref a, Ref b) const {
    const EventPool::Event& ea = pool_[a];
    const EventPool::Event& eb = pool_[b];
    if (ea.when != eb.when) return ea.when < eb.when;
    return ea.seq < eb.seq;
  }

  static constexpr std::size_t kFanout = 64;  // buckets per spawned rung
  static constexpr std::size_t kSortThreshold = 64;  // bucket -> bottom cutoff
  static constexpr std::size_t kMaxRungs = 10;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
  std::uint64_t saturated_ = 0;

  EventPool pool_;
  std::vector<Ref> bottom_;  // sorted by (when, seq) descending; pop back
  std::vector<Rung> rungs_;  // [0] coarsest; back() finest
  std::vector<Ref> top_;     // unsorted far future: when >= top_start_
  Time top_start_ = 0;
  Time top_min_ = kTimeMax;
  Time top_max_ = 0;

  // Cached handles into the attached registry (null = not attached).
  obs::Counter* m_dispatched_ = nullptr;
  obs::Gauge* m_now_s_ = nullptr;
  obs::Gauge* m_pending_ = nullptr;
  obs::Gauge* m_pool_live_ = nullptr;
  obs::Gauge* m_pool_peak_live_ = nullptr;
  obs::Gauge* m_pool_capacity_ = nullptr;
  obs::Gauge* m_pool_reserved_bytes_ = nullptr;
};

}  // namespace mantle::sim
