#pragma once

#include <map>
#include <memory>

#include "common/stats.hpp"
#include "sim/workload.hpp"

/// \file client.hpp
/// A closed-loop metadata client: one outstanding request, a think time
/// between requests, and a cached map of directory -> authoritative MDS
/// learned from replies (the paper: "as the client receives responses
/// from MDS nodes, it builds up its own mapping of subtrees to MDS
/// nodes"). Stale cache entries after a migration produce forwards.

namespace mantle::sim {

/// Client-side fault tolerance: when an MDS dies holding a request, the
/// reply never comes. With a timeout set, the client resubmits toward a
/// surviving rank with capped exponential backoff. Semantics are
/// at-least-once: a retried mutation may have been applied by a previous
/// attempt, so a "failed" (e.g. already-exists) reply to a retry still
/// counts the op as completed. Disabled by default (timeout = 0) so
/// existing experiments keep their exact event sequences.
struct RetryPolicy {
  Time timeout = 0;               // 0 disables retries entirely
  Time max_backoff = 8 * kSec;    // backoff doubles per retry up to this
  int max_attempts = 0;           // 0 = retry forever
};

class Client {
 public:
  Client(int id, cluster::MdsCluster& cluster, std::unique_ptr<Workload> wl,
         Rng rng, RetryPolicy retry = {});

  int id() const { return id_; }

  /// Issue the first request (call after the cluster reply handler is set).
  void start();

  /// Scenario routes replies here by client id.
  void on_reply(const cluster::Reply& rep);

  bool done() const { return done_; }
  Time started_at() const { return started_at_; }
  Time finished_at() const { return finished_at_; }
  /// Wall-clock of the client's run. Before done() this is the elapsed
  /// time so far (never the old `0 - started_at_` unsigned underflow,
  /// which poisoned scenario aggregates when a run hit its horizon);
  /// before start() it is 0.
  Time runtime() const;

  std::uint64_t ops_completed() const { return ops_completed_; }
  std::uint64_t ops_failed() const { return ops_failed_; }
  std::uint64_t forwards_seen() const { return forwards_seen_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t stale_replies() const { return stale_replies_; }

  /// Per-request latency distribution in milliseconds. Reservoir-backed:
  /// count/mean/stddev are exact, percentiles come from a bounded sample,
  /// so memory no longer grows linearly with ops on million-op runs.
  const mantle::ReservoirSample& latencies_ms() const { return latencies_; }

 private:
  void issue_next();
  void submit(cluster::Request r, mantle::mds::MdsRank guess);
  void arm_timeout();
  void finish_op(bool ok, Time started);

  int id_;
  cluster::MdsCluster& cluster_;
  std::unique_ptr<Workload> workload_;
  Rng rng_;
  RetryPolicy retry_;

  // Retry state for the (single) outstanding logical op. The token guards
  // scheduled timeout closures: it is bumped whenever the op resolves, so
  // a timer racing a late reply finds a stale token and does nothing.
  cluster::Request pending_;
  std::uint64_t inflight_id_ = 0;
  std::uint64_t timer_token_ = 0;
  mantle::mds::MdsRank last_guess_ = 0;
  Time backoff_ = 0;
  int attempt_ = 0;
  bool waiting_ = false;
  std::uint64_t retries_ = 0;
  std::uint64_t stale_replies_ = 0;

  // Learned dirfrag -> MDS map (CephFS clients build "their own mapping
  // of subtrees to MDS nodes" from replies, at fragment granularity).
  std::map<mantle::mds::DirFragId, mantle::mds::MdsRank> auth_cache_;
  std::uint64_t next_req_id_ = 1;
  std::uint64_t ops_completed_ = 0;
  std::uint64_t ops_failed_ = 0;
  std::uint64_t forwards_seen_ = 0;
  bool done_ = false;
  bool started_ = false;
  Time started_at_ = 0;
  Time finished_at_ = 0;
  mantle::ReservoirSample latencies_;
};

}  // namespace mantle::sim
