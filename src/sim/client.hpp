#pragma once

#include <map>
#include <memory>

#include "common/stats.hpp"
#include "sim/workload.hpp"

/// \file client.hpp
/// A closed-loop metadata client: one outstanding request, a think time
/// between requests, and a cached map of directory -> authoritative MDS
/// learned from replies (the paper: "as the client receives responses
/// from MDS nodes, it builds up its own mapping of subtrees to MDS
/// nodes"). Stale cache entries after a migration produce forwards.

namespace mantle::sim {

class Client {
 public:
  Client(int id, cluster::MdsCluster& cluster, std::unique_ptr<Workload> wl,
         Rng rng);

  int id() const { return id_; }

  /// Issue the first request (call after the cluster reply handler is set).
  void start();

  /// Scenario routes replies here by client id.
  void on_reply(const cluster::Reply& rep);

  bool done() const { return done_; }
  Time started_at() const { return started_at_; }
  Time finished_at() const { return finished_at_; }
  Time runtime() const { return finished_at_ - started_at_; }

  std::uint64_t ops_completed() const { return ops_completed_; }
  std::uint64_t ops_failed() const { return ops_failed_; }
  std::uint64_t forwards_seen() const { return forwards_seen_; }

  /// Per-request latency samples in milliseconds.
  const mantle::SampleSet& latencies_ms() const { return latencies_; }

 private:
  void issue_next();

  int id_;
  cluster::MdsCluster& cluster_;
  std::unique_ptr<Workload> workload_;
  Rng rng_;

  // Learned dirfrag -> MDS map (CephFS clients build "their own mapping
  // of subtrees to MDS nodes" from replies, at fragment granularity).
  std::map<mantle::mds::DirFragId, mantle::mds::MdsRank> auth_cache_;
  std::uint64_t next_req_id_ = 1;
  std::uint64_t ops_completed_ = 0;
  std::uint64_t ops_failed_ = 0;
  std::uint64_t forwards_seen_ = 0;
  bool done_ = false;
  bool started_ = false;
  Time started_at_ = 0;
  Time finished_at_ = 0;
  mantle::SampleSet latencies_;
};

}  // namespace mantle::sim
