#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

/// \file shard.hpp
/// Sharded parallel execution mode for the discrete-event engine
/// (ROADMAP item 1's "sharded parallel engine with deterministic
/// merge", and the stepping stone toward item 4's threaded runtime).
///
/// The simulator's event load at 512 ranks is dominated by rank-affine
/// work: per-MDS balancer ticks and the O(ranks^2) heartbeat fan-in.
/// Those events touch (a) the owning rank's private state and (b)
/// shared cluster structures in read-only ways that are safe under
/// concurrent readers. Everything else — request service, migrations
/// and their 2PC timers, crash/recovery, client and population arcs —
/// mutates shared state and stays serial.
///
/// ShardRuntime therefore runs S+1 ladder-queue engines in two lanes:
///
///   - S *shard* engines, rank r owned by shard r % S, holding only
///     rank-affine events (tick re-arms and heartbeat deliveries);
///   - one *global* engine G holding every shared-state event.
///
/// Time advances in conservative lookahead epochs. Each epoch picks
///   T = min over all engines of next_when(),   window = [T, T + L)
/// and runs two phases with no wall-clock overlap between lanes:
///
///   Phase A (parallel): K worker threads run the shard engines
///   through the window (worker w owns shards s ≡ w mod K). Events
///   that need to schedule outside their own shard append to a
///   per-src-shard outbox instead of touching a foreign queue.
///
///   Phase B (serial, on the driver thread): outbox posts from all
///   shards are merged in the canonical (when, src_shard, seq) order
///   and injected into their destination engines — sequence numbers
///   are assigned in that canonical order, which is what pins the
///   downstream dispatch order; per-shard observability buffers are
///   drained in fixed shard order; then G runs through the window.
///
/// Correctness of the parallelism is an ordering argument, not a
/// locking one: the epoch schedule is a pure function of (config,
/// seeds, S, L). The thread count K only changes which worker runs
/// which shard slice, never the order anything is injected, merged or
/// drained — so a K-thread run produces byte-identical MANTLE_OBS_DIR
/// dumps to the K=1 run of the same sharded schedule. The existing
/// determinism suite is the correctness oracle.
///
/// The lookahead L bounds how far a shard may run ahead of cross-shard
/// effects; it must not exceed the minimum cross-shard (heartbeat)
/// latency or deliveries would land in an epoch the receiver already
/// ran. L is a fidelity knob, not a correctness knob: any L gives a
/// deterministic schedule, smaller L tracks the serial interleaving
/// more closely at the cost of more barriers.

namespace mantle::sim {

class ShardRuntime {
 public:
  struct Config {
    int shards = 1;    ///< S: fixed by config — part of the schedule
    int threads = 1;   ///< K: execution detail — must never change output
    Time lookahead = 50 * kMsec;  ///< L: epoch window width
  };

  explicit ShardRuntime(Config cfg);
  ~ShardRuntime();
  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  int num_shards() const { return cfg_.shards; }
  int num_threads() const { return cfg_.threads; }
  Time lookahead() const { return cfg_.lookahead; }
  int shard_of_rank(int rank) const { return rank % cfg_.shards; }

  /// The serial global-lane engine (G). The cluster is constructed on
  /// this engine; classic accessors keep working against it.
  Engine& global() { return global_; }
  Engine& shard_engine(int s) { return shards_[static_cast<std::size_t>(s)]; }

  /// Clock of the calling lane: a shard engine's clock during phase A,
  /// otherwise G's. Event code must use this (via the cluster's
  /// sim_now()) instead of reaching for a fixed engine.
  Time context_now() const;

  /// Schedule onto the global lane. From a shard lane this appends to
  /// the shard's outbox (merged at the epoch barrier); from the serial
  /// lane it schedules directly.
  void post_global_after(Time delay, Callback fn);
  void post_global_at(Time when, Callback fn);

  /// Schedule a rank-affine event onto `shard`. Same-shard posts are
  /// direct (the common case: tick re-arm); cross-shard posts go
  /// through the outbox; serial-lane posts are direct (workers parked).
  void post_shard_after(int shard, Time delay, Callback fn);

  /// Epoch-barrier hook: runs after phase A's merge point and before
  /// the global slice, on the driver thread. The cluster drains its
  /// per-shard trace/provenance buffers here, in fixed shard order.
  void set_epoch_drain(std::function<void()> fn) { drain_ = std::move(fn); }

  /// Run every event with `when <= horizon` across all lanes, in
  /// conservative epochs. Mirrors Engine::run_until clock semantics.
  void run_until(Time horizon);

  Time now() const { return now_; }
  bool empty() const;
  std::size_t pending() const;
  std::uint64_t saturated_events() const;
  /// Aggregated arena footprint across all lanes (bench RSS proxy).
  EventPool::Stats pool_stats() const;

  /// Wire the dispatched-event counter into every lane's engine and
  /// cache gauge handles; the runtime refreshes the clock/queue/pool
  /// gauges serially at the end of each run_until.
  void attach_metrics(obs::MetricsRegistry* reg);

 private:
  struct Post {
    Time when = 0;
    int dst = -1;  ///< destination shard; -1 = global lane
    Callback fn;
  };
  struct alignas(64) Outbox {  // padded: written concurrently per shard
    std::vector<Post> posts;
  };

  void run_shard_slice(int shard, Time horizon);
  void run_phase_a(Time horizon);  // K == 1 inline path
  void apply_outboxes();
  void update_gauges();

  Config cfg_;
  Engine global_;
  std::vector<Engine> shards_;
  std::vector<Outbox> outboxes_;
  std::function<void()> drain_;
  Time now_ = 0;

  obs::Gauge* m_now_s_ = nullptr;
  obs::Gauge* m_pending_ = nullptr;
  obs::Gauge* m_pool_live_ = nullptr;
  obs::Gauge* m_pool_peak_live_ = nullptr;
  obs::Gauge* m_pool_capacity_ = nullptr;
  obs::Gauge* m_pool_reserved_bytes_ = nullptr;
};

}  // namespace mantle::sim
