#include "sim/scenario.hpp"

#include <algorithm>
#include <stdexcept>

namespace mantle::sim {

Scenario::Scenario(ScenarioConfig cfg) : cfg_(cfg) {
  if (cfg_.cluster.shards > 0) {
    ShardRuntime::Config rc;
    rc.shards = cfg_.cluster.shards;
    rc.threads = cfg_.threads;
    // Auto lookahead: generous enough to amortise epoch barriers, but
    // never beyond the minimum cross-shard (heartbeat) latency.
    Time la = cfg_.cluster.lookahead;
    if (la <= 0) {
      const Time hb_min = static_cast<Time>(
          static_cast<double>(cfg_.cluster.hb_delay) *
          (1.0 - cfg_.cluster.hb_jitter_frac));
      la = std::min<Time>(50 * kMsec, hb_min);
    }
    rc.lookahead = la > 0 ? la : 1;
    cfg_.cluster.lookahead = rc.lookahead;  // make the digest see the
                                            // effective value
    runtime_ = std::make_unique<ShardRuntime>(rc);
  }
  Engine& eng = runtime_ ? runtime_->global() : engine_;
  cluster_ = std::make_unique<cluster::MdsCluster>(eng, cfg_.cluster);
  if (runtime_) {
    cluster_->attach_shard_runtime(runtime_.get());
    runtime_->set_epoch_drain([this]() { cluster_->drain_obs_shards(); });
    runtime_->attach_metrics(&cluster_->metrics());
  } else {
    engine_.set_metrics(&cluster_->metrics());
  }
  cluster_->set_reply_handler([this](const cluster::Reply& rep) {
    if (rep.client < 0 || static_cast<std::size_t>(rep.client) >= sinks_.size())
      return;
    const Sink& s = sinks_[static_cast<std::size_t>(rep.client)];
    if (s.client != nullptr)
      s.client->on_reply(rep);
    else if (s.pop != nullptr)
      s.pop->on_reply(rep);
  });
}

int Scenario::add_client(std::unique_ptr<Workload> wl) {
  const int id = static_cast<int>(sinks_.size());
  // Each client gets an independent deterministic stream derived from the
  // scenario seed and its id.
  Rng rng(cfg_.cluster.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(id) + 1);
  clients_.push_back(
      std::make_unique<Client>(id, *cluster_, std::move(wl), rng, cfg_.retry));
  sinks_.push_back({clients_.back().get(), nullptr});
  return id;
}

int Scenario::add_population(PopulationConfig pcfg) {
  const int id = static_cast<int>(sinks_.size());
  Rng rng(cfg_.cluster.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(id) + 1);
  populations_.push_back(std::make_unique<ClientPopulation>(
      id, *cluster_, std::move(pcfg), rng));
  sinks_.push_back({nullptr, populations_.back().get()});
  return id;
}

Client& Scenario::client(int id) {
  Client* c = sinks_.at(static_cast<std::size_t>(id)).client;
  if (c == nullptr) throw std::out_of_range("id is not an object client");
  return *c;
}

ClientPopulation& Scenario::population(int id) {
  ClientPopulation* p = sinks_.at(static_cast<std::size_t>(id)).pop;
  if (p == nullptr) throw std::out_of_range("id is not a population");
  return *p;
}

void Scenario::add_probe(Time interval, std::function<void(Time)> fn) {
  probes_.push_back({interval, std::move(fn)});
}

Time Scenario::run() {
  cluster_->start();
  for (auto& c : clients_) c->start();
  for (auto& p : populations_) p->start();

  // Periodic probes re-arm themselves while the scenario runs. They
  // observe shared cluster state, so they live on the serial lane.
  struct Rearm {
    Scenario* s;
    const Probe* p;
    void operator()() const {
      if (!s->running_) return;
      p->fn(s->cluster_->sim_now());
      s->cluster_->sched_after(p->interval, Rearm{s, p});
    }
  };
  for (const Probe& p : probes_)
    cluster_->sched_after(p.interval, Rearm{this, &p});

  running_ = true;
  while (sim_now() < cfg_.max_time) {
    const bool all_done = [&] {
      for (const auto& c : clients_)
        if (!c->done()) return false;
      for (const auto& p : populations_)
        if (!p->done()) return false;
      return true;
    }();
    if (all_done) break;
    run_slice(sim_now() + cfg_.slice);
    if (sim_empty()) break;  // deadlock guard; should not happen
  }
  running_ = false;

  makespan_ = 0;
  for (const auto& c : clients_)
    makespan_ = std::max(makespan_, c->done() ? c->finished_at() : sim_now());
  for (const auto& p : populations_)
    makespan_ = std::max(makespan_, p->done() ? p->finished_at() : sim_now());
  return makespan_;
}

void Scenario::run_slice(Time horizon) {
  if (runtime_)
    runtime_->run_until(horizon);
  else
    engine_.run_until(horizon);
}

void Scenario::run_extra(Time span) { run_slice(sim_now() + span); }

mantle::SampleSet Scenario::pooled_latencies_ms() const {
  mantle::SampleSet all;
  for (const auto& c : clients_)
    for (const double x : c->latencies_ms().samples()) all.add(x);
  for (const auto& p : populations_)
    for (const double x : p->latencies_ms().samples()) all.add(x);
  return all;
}

double Scenario::aggregate_throughput() const {
  std::uint64_t ops = 0;
  for (const auto& c : clients_) ops += c->ops_completed();
  for (const auto& p : populations_) ops += p->modeled_ops_completed();
  const double secs = to_seconds(makespan_);
  return secs > 0.0 ? static_cast<double>(ops) / secs : 0.0;
}

}  // namespace mantle::sim
