#include "sim/client.hpp"

namespace mantle::sim {

using cluster::Reply;
using cluster::Request;
using mantle::mds::kNoInode;
using mantle::mds::MdsRank;

namespace {
bool is_mutation(cluster::OpType op) {
  switch (op) {
    case cluster::OpType::Create:
    case cluster::OpType::Mkdir:
    case cluster::OpType::Unlink:
    case cluster::OpType::Rename:
      return true;
    default:
      return false;
  }
}
}  // namespace

Client::Client(int id, cluster::MdsCluster& cluster,
               std::unique_ptr<Workload> wl, Rng rng, RetryPolicy retry)
    : id_(id), cluster_(cluster), workload_(std::move(wl)), rng_(rng),
      retry_(retry),
      // The reservoir's eviction stream is derived from the id alone, not
      // drawn from rng_, so adding it left every workload event sequence
      // bit-identical.
      latencies_(mantle::ReservoirSample::kDefaultCapacity,
                 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(id) + 1)) {}

Time Client::runtime() const {
  if (!started_) return 0;
  const Time end = done_ ? finished_at_ : cluster_.sim_now();
  return end > started_at_ ? end - started_at_ : 0;
}

void Client::start() {
  if (started_) return;
  started_ = true;
  started_at_ = cluster_.sim_now();
  issue_next();
}

void Client::issue_next() {
  std::optional<WorkOp> op = workload_->next(rng_);
  if (!op) {
    done_ = true;
    finished_at_ = cluster_.sim_now();
    return;
  }

  const auto res = cluster_.ns().resolve(op->dir_path);
  if (!res.found || !res.is_dir) {
    // The target directory does not exist (workload ordering bug or a
    // failed earlier mkdir): count it and move on without a round trip.
    ++ops_failed_;
    cluster_.sched_after(1, [this]() { issue_next(); });
    return;
  }

  Request r;
  r.id = next_req_id_++;
  r.client = id_;
  r.op = op->op;
  r.dir = res.ino;
  r.name = op->name;
  // Root causal span for the op: forwards carry the same Request, and
  // retries copy pending_, so the span survives both under fresh req ids.
  r.span = cluster_.trace().next_span();
  r.issued_at = cluster_.sim_now();

  if (op->op == cluster::OpType::Rename) {
    const auto dst = cluster_.ns().resolve(op->dst_dir_path);
    if (!dst.found || !dst.is_dir) {
      ++ops_failed_;
      cluster_.sched_after(1, [this]() { issue_next(); });
      return;
    }
    r.dst_dir = dst.ino;
    r.dst_name = op->dst_name;
  }

  // Route by the learned fragment map: the client hashes the dentry name
  // into the directory's fragtree (which it caches) and sends to the MDS
  // it last saw serve that fragment.
  const mantle::mds::DirFragId frag =
      r.name.empty()
          ? mantle::mds::DirFragId{res.ino, {}}
          : cluster_.ns().frag_of(res.ino, r.name);
  auto it = auth_cache_.find(frag);
  if (it == auth_cache_.end()) {
    // Unknown fragment (e.g. freshly split): fall back to any entry for
    // the same directory, else to mds0.
    it = auth_cache_.lower_bound({res.ino, {}});
    if (it == auth_cache_.end() || it->first.ino != res.ino)
      it = auth_cache_.end();
  }
  const MdsRank guess = it == auth_cache_.end() ? 0 : it->second;
  submit(std::move(r), guess);
}

void Client::submit(Request r, MdsRank guess) {
  if (retry_.timeout > 0) {
    pending_ = r;
    inflight_id_ = r.id;
    last_guess_ = guess;
    attempt_ = 1;
    backoff_ = retry_.timeout;
    waiting_ = true;
    arm_timeout();
  }
  cluster_.client_submit(std::move(r), guess);
}

void Client::arm_timeout() {
  const std::uint64_t tok = timer_token_;
  cluster_.sched_after(backoff_, [this, tok]() {
    if (tok != timer_token_ || !waiting_) return;
    if (retry_.max_attempts > 0 && attempt_ >= retry_.max_attempts) {
      // Out of attempts: report failure so the workload can move on.
      waiting_ = false;
      ++timer_token_;
      finish_op(false, pending_.issued_at);
      return;
    }
    // Resubmit under a fresh request id toward a rank believed up — the
    // old id keeps any late reply from the first attempt recognizable as
    // a stale duplicate. Standing in for the client re-reading the MDSMap.
    ++retries_;
    ++attempt_;
    Request r = pending_;
    r.id = next_req_id_++;
    r.hops = 0;
    inflight_id_ = r.id;
    if (!cluster_.is_up(last_guess_))
      last_guess_ = cluster_.pick_up_rank(last_guess_);
    backoff_ = std::min(backoff_ * 2, retry_.max_backoff);
    cluster_.client_submit(std::move(r), last_guess_);
    arm_timeout();
  });
}

void Client::finish_op(bool ok, Time started) {
  const Time now = cluster_.sim_now();
  latencies_.add(to_seconds(now - started) * 1e3);
  if (ok)
    ++ops_completed_;
  else
    ++ops_failed_;
  const Time think = workload_->think_time(rng_);
  if (think == 0) {
    issue_next();
  } else {
    cluster_.sched_after(think, [this]() { issue_next(); });
  }
}

void Client::on_reply(const Reply& rep) {
  forwards_seen_ += static_cast<std::uint64_t>(rep.hops);
  if (rep.dir != kNoInode)
    auth_cache_[{rep.dir, rep.frag}] = rep.served_by;

  if (retry_.timeout > 0) {
    if (!waiting_ || rep.req_id != inflight_id_) {
      // A superseded attempt completed after we had already retried (or
      // after the op resolved): at-least-once, drop the duplicate.
      ++stale_replies_;
      return;
    }
    waiting_ = false;
    ++timer_token_;  // cancel the armed timeout
    // A retried mutation can fail only because an earlier attempt already
    // applied it (e.g. create -> already exists); that is a success.
    const bool ok = rep.ok || (attempt_ > 1 && is_mutation(pending_.op));
    finish_op(ok, pending_.issued_at);
    return;
  }

  finish_op(rep.ok, rep.issued_at);
}

}  // namespace mantle::sim
