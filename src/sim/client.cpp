#include "sim/client.hpp"

namespace mantle::sim {

using cluster::Reply;
using cluster::Request;
using mantle::mds::kNoInode;
using mantle::mds::MdsRank;

Client::Client(int id, cluster::MdsCluster& cluster,
               std::unique_ptr<Workload> wl, Rng rng)
    : id_(id), cluster_(cluster), workload_(std::move(wl)), rng_(rng) {}

void Client::start() {
  if (started_) return;
  started_ = true;
  started_at_ = cluster_.engine().now();
  issue_next();
}

void Client::issue_next() {
  std::optional<WorkOp> op = workload_->next(rng_);
  if (!op) {
    done_ = true;
    finished_at_ = cluster_.engine().now();
    return;
  }

  const auto res = cluster_.ns().resolve(op->dir_path);
  if (!res.found || !res.is_dir) {
    // The target directory does not exist (workload ordering bug or a
    // failed earlier mkdir): count it and move on without a round trip.
    ++ops_failed_;
    cluster_.engine().schedule_after(1, [this]() { issue_next(); });
    return;
  }

  Request r;
  r.id = next_req_id_++;
  r.client = id_;
  r.op = op->op;
  r.dir = res.ino;
  r.name = op->name;
  r.issued_at = cluster_.engine().now();

  if (op->op == cluster::OpType::Rename) {
    const auto dst = cluster_.ns().resolve(op->dst_dir_path);
    if (!dst.found || !dst.is_dir) {
      ++ops_failed_;
      cluster_.engine().schedule_after(1, [this]() { issue_next(); });
      return;
    }
    r.dst_dir = dst.ino;
    r.dst_name = op->dst_name;
  }

  // Route by the learned fragment map: the client hashes the dentry name
  // into the directory's fragtree (which it caches) and sends to the MDS
  // it last saw serve that fragment.
  const mantle::mds::DirFragId frag =
      r.name.empty()
          ? mantle::mds::DirFragId{res.ino, {}}
          : cluster_.ns().frag_of(res.ino, r.name);
  auto it = auth_cache_.find(frag);
  if (it == auth_cache_.end()) {
    // Unknown fragment (e.g. freshly split): fall back to any entry for
    // the same directory, else to mds0.
    it = auth_cache_.lower_bound({res.ino, {}});
    if (it == auth_cache_.end() || it->first.ino != res.ino)
      it = auth_cache_.end();
  }
  const MdsRank guess = it == auth_cache_.end() ? 0 : it->second;
  cluster_.client_submit(std::move(r), guess);
}

void Client::on_reply(const Reply& rep) {
  const Time now = cluster_.engine().now();
  latencies_.add(to_seconds(now - rep.issued_at) * 1e3);
  if (rep.ok)
    ++ops_completed_;
  else
    ++ops_failed_;
  forwards_seen_ += static_cast<std::uint64_t>(rep.hops);
  if (rep.dir != kNoInode)
    auth_cache_[{rep.dir, rep.frag}] = rep.served_by;

  const Time think = workload_->think_time(rng_);
  if (think == 0) {
    issue_next();
  } else {
    cluster_.engine().schedule_after(think, [this]() { issue_next(); });
  }
}

}  // namespace mantle::sim
