#include "sim/shard.hpp"

#include <algorithm>
#include <barrier>
#include <thread>
#include <tuple>

#include "obs/lane.hpp"

namespace mantle::sim {

namespace {

/// The shard engine the calling thread is currently dispatching for
/// (phase A only). Null on the serial lane. Paired with obs::lane_shard()
/// — the runtime sets both around each shard slice.
thread_local Engine* t_shard_engine = nullptr;

}  // namespace

ShardRuntime::ShardRuntime(Config cfg) : cfg_(cfg) {
  if (cfg_.shards < 1) cfg_.shards = 1;
  if (cfg_.lookahead < 1) cfg_.lookahead = 1;
  cfg_.threads = std::clamp(cfg_.threads, 1, cfg_.shards);
  shards_ = std::vector<Engine>(static_cast<std::size_t>(cfg_.shards));
  outboxes_.resize(static_cast<std::size_t>(cfg_.shards));
}

ShardRuntime::~ShardRuntime() = default;

Time ShardRuntime::context_now() const {
  return t_shard_engine != nullptr ? t_shard_engine->now() : global_.now();
}

void ShardRuntime::post_global_after(Time delay, Callback fn) {
  if (t_shard_engine != nullptr) {
    const Time base = t_shard_engine->now();
    Time when = base + delay;
    if (when < base) when = kTimeMax;  // unsigned wrap: saturate
    outboxes_[static_cast<std::size_t>(obs::lane_shard())].posts.push_back(
        {when, -1, std::move(fn)});
    return;
  }
  global_.schedule_after(delay, std::move(fn));
}

void ShardRuntime::post_global_at(Time when, Callback fn) {
  if (t_shard_engine != nullptr) {
    if (when < t_shard_engine->now()) when = t_shard_engine->now();
    outboxes_[static_cast<std::size_t>(obs::lane_shard())].posts.push_back(
        {when, -1, std::move(fn)});
    return;
  }
  global_.schedule_at(when, std::move(fn));
}

void ShardRuntime::post_shard_after(int shard, Time delay, Callback fn) {
  if (t_shard_engine != nullptr) {
    if (shard == obs::lane_shard()) {  // own queue: the tick re-arm path
      t_shard_engine->schedule_after(delay, std::move(fn));
      return;
    }
    const Time base = t_shard_engine->now();
    Time when = base + delay;
    if (when < base) when = kTimeMax;
    outboxes_[static_cast<std::size_t>(obs::lane_shard())].posts.push_back(
        {when, shard, std::move(fn)});
    return;
  }
  // Serial lane: workers are parked at the barrier, direct scheduling
  // into a shard queue is race-free and happens in G's (deterministic)
  // dispatch order.
  const Time base = global_.now();
  Time when = base + delay;
  if (when < base) when = kTimeMax;
  shards_[static_cast<std::size_t>(shard)].schedule_at(when, std::move(fn));
}

void ShardRuntime::run_shard_slice(int shard, Time horizon) {
  Engine& e = shards_[static_cast<std::size_t>(shard)];
  obs::ScopedLane lane(shard);
  t_shard_engine = &e;
  e.run_until(horizon);
  t_shard_engine = nullptr;
}

void ShardRuntime::run_phase_a(Time horizon) {
  for (int s = 0; s < cfg_.shards; ++s) run_shard_slice(s, horizon);
}

void ShardRuntime::apply_outboxes() {
  // Canonical merge order: (when, src_shard, per-src seq). The per-src
  // seq is the append index — each outbox is filled in its shard's
  // deterministic dispatch order. Injecting in this order assigns
  // destination-engine sequence numbers canonically, which pins the
  // downstream (when, seq) dispatch order independent of K.
  std::vector<std::tuple<Time, int, std::size_t>> order;
  for (int src = 0; src < cfg_.shards; ++src) {
    auto& posts = outboxes_[static_cast<std::size_t>(src)].posts;
    for (std::size_t i = 0; i < posts.size(); ++i)
      order.emplace_back(posts[i].when, src, i);
  }
  if (order.empty()) return;
  std::sort(order.begin(), order.end());
  for (const auto& [when, src, i] : order) {
    Post& p = outboxes_[static_cast<std::size_t>(src)].posts[i];
    if (p.dst < 0)
      global_.schedule_at(when, std::move(p.fn));
    else
      shards_[static_cast<std::size_t>(p.dst)].schedule_at(when,
                                                           std::move(p.fn));
  }
  for (auto& box : outboxes_) box.posts.clear();
}

void ShardRuntime::run_until(Time horizon) {
  const int K = cfg_.threads;

  const auto next_event_time = [this]() {
    Time t = global_.next_when();
    for (Engine& e : shards_) t = std::min(t, e.next_when());
    return t;
  };
  const auto epoch_horizon = [this, horizon](Time t) {
    Time end = t + cfg_.lookahead;
    if (end < t) end = kTimeMax;  // unsigned wrap: saturate
    return std::min<Time>(end - 1, horizon);
  };
  const auto phase_b = [this](Time h) {
    apply_outboxes();
    if (drain_) drain_();
    global_.run_until(h);
  };

  if (K == 1) {
    // Same epoch structure, no threads: this *is* the "serial run" the
    // differential suite compares the K-thread runs against.
    for (;;) {
      const Time t = next_event_time();
      if (t == kTimeMax || t > horizon) break;
      const Time h = epoch_horizon(t);
      run_phase_a(h);
      phase_b(h);
    }
  } else {
    Time phase_h = 0;
    bool stop = false;
    std::barrier<> sync(K);
    const auto worker = [&](int w) {
      for (;;) {
        sync.arrive_and_wait();  // epoch params published
        if (stop) return;
        for (int s = w; s < cfg_.shards; s += K) run_shard_slice(s, phase_h);
        sync.arrive_and_wait();  // phase A complete
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(K - 1));
    for (int w = 1; w < K; ++w) pool.emplace_back(worker, w);
    for (;;) {
      const Time t = next_event_time();
      if (t == kTimeMax || t > horizon) break;
      phase_h = epoch_horizon(t);
      sync.arrive_and_wait();  // B1: release workers into phase A
      for (int s = 0; s < cfg_.shards; s += K) run_shard_slice(s, phase_h);
      sync.arrive_and_wait();  // B2: phase A complete everywhere
      phase_b(phase_h);
    }
    stop = true;
    sync.arrive_and_wait();
    for (std::thread& th : pool) th.join();
  }

  // Clock semantics mirror Engine::run_until: catch up to the horizon
  // when work remains pending beyond it, else rest at the last event.
  Time maxnow = global_.now();
  for (const Engine& e : shards_) maxnow = std::max(maxnow, e.now());
  now_ = empty() ? std::max(now_, maxnow) : std::max(now_, horizon);
  update_gauges();
}

bool ShardRuntime::empty() const {
  if (!global_.empty()) return false;
  for (const Engine& e : shards_)
    if (!e.empty()) return false;
  return true;
}

std::size_t ShardRuntime::pending() const {
  std::size_t n = global_.pending();
  for (const Engine& e : shards_) n += e.pending();
  return n;
}

std::uint64_t ShardRuntime::saturated_events() const {
  std::uint64_t n = global_.saturated_events();
  for (const Engine& e : shards_) n += e.saturated_events();
  return n;
}

EventPool::Stats ShardRuntime::pool_stats() const {
  EventPool::Stats total = global_.pool_stats();
  for (const Engine& e : shards_) {
    const EventPool::Stats s = e.pool_stats();
    total.live += s.live;
    total.peak_live += s.peak_live;
    total.capacity += s.capacity;
    total.bytes_reserved += s.bytes_reserved;
  }
  return total;
}

void ShardRuntime::attach_metrics(obs::MetricsRegistry* reg) {
  if (reg == nullptr) {
    global_.set_dispatch_counter(nullptr);
    for (Engine& e : shards_) e.set_dispatch_counter(nullptr);
    m_now_s_ = nullptr;
    m_pending_ = nullptr;
    m_pool_live_ = nullptr;
    m_pool_peak_live_ = nullptr;
    m_pool_capacity_ = nullptr;
    m_pool_reserved_bytes_ = nullptr;
    return;
  }
  obs::Counter& dispatched =
      reg->counter("sim_events_dispatched_total",
                   "events executed by the discrete-event loop");
  global_.set_dispatch_counter(&dispatched);
  for (Engine& e : shards_) e.set_dispatch_counter(&dispatched);
  m_now_s_ = &reg->gauge("sim_now_seconds", "simulated clock");
  m_pending_ = &reg->gauge("sim_pending_events", "events still queued");
  m_pool_live_ = &reg->gauge("sim_pool_live_events",
                             "event-pool slots currently in use");
  m_pool_peak_live_ = &reg->gauge("sim_pool_peak_live_events",
                                  "high-water mark of live event slots");
  m_pool_capacity_ = &reg->gauge("sim_pool_capacity_events",
                                 "event-pool slots allocated");
  m_pool_reserved_bytes_ = &reg->gauge("sim_pool_reserved_bytes",
                                       "event-arena memory reserved");
}

void ShardRuntime::update_gauges() {
  if (m_now_s_ == nullptr) return;
  m_now_s_->set(to_seconds(now_));
  m_pending_->set(static_cast<double>(pending()));
  const EventPool::Stats ps = pool_stats();
  m_pool_live_->set(static_cast<double>(ps.live));
  m_pool_peak_live_->set(static_cast<double>(ps.peak_live));
  m_pool_capacity_->set(static_cast<double>(ps.capacity));
  m_pool_reserved_bytes_->set(static_cast<double>(ps.bytes_reserved));
}

}  // namespace mantle::sim
