#include "store/object_store.hpp"

namespace mantle::store {

namespace {
Time apply_jitter(Time base, double frac, Rng* rng) {
  if (rng == nullptr || frac <= 0.0) return base;
  const double f = 1.0 + frac * (2.0 * rng->next_double() - 1.0);
  return static_cast<Time>(static_cast<double>(base) * (f < 0.0 ? 0.0 : f));
}
}  // namespace

Time LatencyModel::read_cost(std::size_t bytes, Rng* rng) const {
  const Time t = read_base + static_cast<Time>(per_byte * static_cast<double>(bytes));
  return apply_jitter(t, jitter_frac, rng);
}

Time LatencyModel::write_cost(std::size_t bytes, Rng* rng) const {
  const Time t = write_base + static_cast<Time>(per_byte * static_cast<double>(bytes));
  return apply_jitter(t, jitter_frac, rng);
}

OpResult ObjectStore::write_full(const std::string& oid, std::string data) {
  ++stats_.writes;
  const Time lat = model_.write_cost(data.size(), rng_);
  if (faulted(StoreOp::Write, oid)) return {false, lat};
  stats_.bytes_written += data.size();
  objects_[oid].data = std::move(data);
  return {true, lat};
}

OpResult ObjectStore::append(const std::string& oid, const std::string& data) {
  ++stats_.writes;
  const Time lat = model_.write_cost(data.size(), rng_);
  if (faulted(StoreOp::Write, oid)) return {false, lat};
  stats_.bytes_written += data.size();
  objects_[oid].data += data;
  return {true, lat};
}

OpResult ObjectStore::read(const std::string& oid, std::string* out) {
  ++stats_.reads;
  if (faulted(StoreOp::Read, oid)) return {false, model_.read_cost(0, rng_)};
  const auto it = objects_.find(oid);
  if (it == objects_.end()) return {false, model_.read_cost(0, rng_)};
  stats_.bytes_read += it->second.data.size();
  if (out != nullptr) *out = it->second.data;
  return {true, model_.read_cost(it->second.data.size(), rng_)};
}

OpResult ObjectStore::omap_set(const std::string& oid, const std::string& key,
                               std::string value) {
  ++stats_.omap_writes;
  const Time lat = model_.write_cost(key.size() + value.size(), rng_);
  if (faulted(StoreOp::OmapWrite, oid)) return {false, lat};
  stats_.bytes_written += key.size() + value.size();
  objects_[oid].omap[key] = std::move(value);
  return {true, lat};
}

OpResult ObjectStore::omap_remove(const std::string& oid, const std::string& key) {
  ++stats_.omap_writes;
  const Time lat = model_.write_cost(key.size(), rng_);
  if (faulted(StoreOp::OmapWrite, oid)) return {false, lat};
  const auto it = objects_.find(oid);
  if (it == objects_.end()) return {false, lat};
  it->second.omap.erase(key);
  return {true, lat};
}

OpResult ObjectStore::omap_get(const std::string& oid, const std::string& key,
                               std::string* out) {
  ++stats_.omap_reads;
  if (faulted(StoreOp::OmapRead, oid)) return {false, model_.read_cost(0, rng_)};
  const auto it = objects_.find(oid);
  if (it == objects_.end()) return {false, model_.read_cost(0, rng_)};
  const auto kit = it->second.omap.find(key);
  if (kit == it->second.omap.end()) return {false, model_.read_cost(key.size(), rng_)};
  stats_.bytes_read += kit->second.size();
  if (out != nullptr) *out = kit->second;
  return {true, model_.read_cost(kit->second.size(), rng_)};
}

OpResult ObjectStore::omap_list(
    const std::string& oid,
    std::vector<std::pair<std::string, std::string>>* out) {
  ++stats_.omap_reads;
  if (faulted(StoreOp::OmapRead, oid)) return {false, model_.read_cost(0, rng_)};
  const auto it = objects_.find(oid);
  if (it == objects_.end()) return {false, model_.read_cost(0, rng_)};
  std::size_t bytes = 0;
  if (out != nullptr) out->clear();
  for (const auto& [k, v] : it->second.omap) {
    bytes += k.size() + v.size();
    if (out != nullptr) out->emplace_back(k, v);
  }
  stats_.bytes_read += bytes;
  return {true, model_.read_cost(bytes, rng_)};
}

OpResult ObjectStore::remove(const std::string& oid) {
  ++stats_.deletes;
  const Time lat = model_.write_cost(0, rng_);
  if (faulted(StoreOp::Delete, oid)) return {false, lat};
  return {objects_.erase(oid) != 0, lat};
}

OpResult Journal::append(const std::string& event, std::uint64_t* seq_out) {
  const std::uint64_t seq = next_seq_++;
  entries_[seq] = event;
  if (seq_out != nullptr) *seq_out = seq;
  return store_.append(oid_, event);
}

void Journal::trim(std::uint64_t upto) {
  entries_.erase(entries_.begin(), entries_.lower_bound(upto));
  if (upto > trimmed_to_) trimmed_to_ = upto;
}

std::vector<std::pair<std::uint64_t, std::string>> Journal::entries() const {
  return {entries_.begin(), entries_.end()};
}

}  // namespace mantle::store
