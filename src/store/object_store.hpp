#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

/// \file object_store.hpp
/// RADOS-stand-in: a reliable, flat object store with a latency model.
/// CephFS journals MDS events to RADOS and stores directory objects there
/// (so a namespace larger than MDS memory can swap dirfrags in and out).
/// The simulator needs the same two properties the paper's results depend
/// on: (1) journaling migrations costs time, (2) fetching/storing dirfrags
/// costs time and bumps the FETCH/STORE load counters. Operations are
/// synchronous and return the simulated latency to charge the caller.

namespace mantle::store {

using mantle::Rng;
using mantle::Time;

/// Latency model for object operations: fixed base cost plus a per-byte
/// cost plus optional lognormal-ish jitter. All parameters in microseconds.
struct LatencyModel {
  Time read_base = 150;    // ~150us: journal/omap read on SSD
  Time write_base = 400;   // ~400us: replicated write ack
  double per_byte = 0.002; // 2ns/byte ~ 500 MB/s effective
  double jitter_frac = 0.10;

  Time read_cost(std::size_t bytes, Rng* rng) const;
  Time write_cost(std::size_t bytes, Rng* rng) const;
};

struct Object {
  std::string data;
  std::map<std::string, std::string> omap;  // dirfrag dentries live here
};

/// Cumulative operation counters (per store).
struct StoreStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t omap_reads = 0;
  std::uint64_t omap_writes = 0;
  std::uint64_t deletes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t faults_injected = 0;  // ops failed by the fault hook
};

/// Operation classes a fault hook can discriminate on.
enum class StoreOp { Read, Write, OmapRead, OmapWrite, Delete };

/// Result of a store operation: whether it succeeded and how long it took
/// in simulated time. Failures happen for reads of missing objects and for
/// any op an installed fault hook chooses to fail.
struct OpResult {
  bool ok = true;
  Time latency = 0;
};

class ObjectStore {
 public:
  /// rng may be null for a deterministic, jitter-free store.
  explicit ObjectStore(LatencyModel model = {}, Rng* rng = nullptr)
      : model_(model), rng_(rng) {}

  OpResult write_full(const std::string& oid, std::string data);
  OpResult append(const std::string& oid, const std::string& data);

  /// Read full object data into `out`.
  OpResult read(const std::string& oid, std::string* out);

  OpResult omap_set(const std::string& oid, const std::string& key,
                    std::string value);
  OpResult omap_remove(const std::string& oid, const std::string& key);

  /// Read a single omap value; !ok if the object or key is missing.
  OpResult omap_get(const std::string& oid, const std::string& key,
                    std::string* out);

  /// Read every omap entry (a dirfrag fetch / readdir backfill).
  OpResult omap_list(const std::string& oid,
                     std::vector<std::pair<std::string, std::string>>* out);

  OpResult remove(const std::string& oid);

  bool exists(const std::string& oid) const { return objects_.count(oid) != 0; }
  std::size_t object_count() const { return objects_.size(); }
  const StoreStats& stats() const { return stats_; }

  /// Fault injection: when set, the hook is consulted before every
  /// operation; returning true fails that op (ok=false, mutation not
  /// applied) after charging its normal latency — a transient RADOS op
  /// failure. Counted in stats().faults_injected.
  using FaultHook = std::function<bool(StoreOp, const std::string& oid)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  bool faulted(StoreOp op, const std::string& oid) {
    if (fault_hook_ && fault_hook_(op, oid)) {
      ++stats_.faults_injected;
      return true;
    }
    return false;
  }

  LatencyModel model_;
  Rng* rng_;
  std::map<std::string, Object> objects_;
  StoreStats stats_;
  FaultHook fault_hook_;
};

/// Per-MDS journal on top of the object store: an append-only event log
/// with sequence numbers and trimming, as the MDS journal in RADOS.
class Journal {
 public:
  Journal(ObjectStore& store, std::string oid)
      : store_(store), oid_(std::move(oid)) {}

  /// Append an event; returns the op result plus assigns a sequence number.
  OpResult append(const std::string& event, std::uint64_t* seq_out = nullptr);

  /// Discard entries with seq < upto (cheap metadata-only op).
  void trim(std::uint64_t upto);

  std::uint64_t next_seq() const { return next_seq_; }
  std::uint64_t trimmed_to() const { return trimmed_to_; }
  std::size_t live_entries() const { return entries_.size(); }

  /// Events still in the journal, oldest first.
  std::vector<std::pair<std::uint64_t, std::string>> entries() const;

 private:
  ObjectStore& store_;
  std::string oid_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t trimmed_to_ = 0;
  std::map<std::uint64_t, std::string> entries_;
};

}  // namespace mantle::store
