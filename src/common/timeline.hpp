#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"

/// \file timeline.hpp
/// Fixed-interval time series used by the figure harnesses: per-MDS
/// throughput curves (Figures 4, 7, 10) are series of requests-per-second
/// sampled on a shared grid so curves can be stacked and compared.

namespace mantle {

/// Accumulates events into fixed-width buckets; value(i) is the event count
/// (or summed weight) in bucket i.
class Timeline {
 public:
  explicit Timeline(Time bucket_width = kSec) : width_(bucket_width) {}

  void record(Time t, double weight = 1.0) {
    const std::size_t idx = static_cast<std::size_t>(t / width_);
    if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0.0);
    buckets_[idx] += weight;
  }

  Time bucket_width() const noexcept { return width_; }
  std::size_t size() const noexcept { return buckets_.size(); }

  double value(std::size_t i) const noexcept {
    return i < buckets_.size() ? buckets_[i] : 0.0;
  }

  /// Events per second in bucket i.
  double rate(std::size_t i) const noexcept {
    return value(i) / to_seconds(width_);
  }

  /// Sum over all buckets.
  double total() const noexcept {
    double s = 0.0;
    for (double b : buckets_) s += b;
    return s;
  }

  /// Downsample to `n` coarse points (for compact terminal plots).
  std::vector<double> resample_rates(std::size_t n) const;

 private:
  Time width_;
  std::vector<double> buckets_;
};

/// Render a set of named series as an ASCII table, one row per bucket —
/// the textual equivalent of the paper's stacked throughput plots.
std::string render_series_table(
    const std::vector<std::pair<std::string, const Timeline*>>& series,
    Time step);

}  // namespace mantle
