#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

/// \file stats.hpp
/// Small online/offline statistics helpers used by the experiment harnesses
/// (the paper reports means and standard deviations of runtime, latency and
/// throughput across repeated runs).

namespace mantle {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains all samples; supports percentiles. Used for latency
/// distributions in the Figure 5 reproduction.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const noexcept { return samples_.size(); }

  double mean() const noexcept {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  double stddev() const noexcept {
    const std::size_t n = samples_.size();
    if (n < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double x : samples_) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(n - 1));
  }

  /// p in [0,1]; nearest-rank on a sorted copy.
  double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double idx = p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace mantle
