#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

/// \file stats.hpp
/// Small online/offline statistics helpers used by the experiment harnesses
/// (the paper reports means and standard deviations of runtime, latency and
/// throughput across repeated runs).

namespace mantle {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains all samples; supports percentiles. Used for latency
/// distributions in the Figure 5 reproduction.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const noexcept { return samples_.size(); }

  double mean() const noexcept {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  double stddev() const noexcept {
    const std::size_t n = samples_.size();
    if (n < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double x : samples_) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(n - 1));
  }

  /// p in [0,1]; nearest-rank on a sorted copy.
  double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double idx = p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Bounded-memory sample distribution: Vitter's Algorithm R reservoir for
/// percentiles plus an exact Welford accumulator for count/mean/stddev.
/// Memory stays O(capacity) however many values stream through, so a
/// million-op client no longer grows linearly; quantile estimates drift by
/// well under 1% at the default capacity (verified by a seeded test).
/// Deterministic: the eviction stream is SplitMix64 from an explicit seed,
/// never global state.
class ReservoirSample {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit ReservoirSample(std::size_t capacity = kDefaultCapacity,
                           std::uint64_t seed = 0x5eed5eed5eed5eedULL)
      : capacity_(std::max<std::size_t>(capacity, 1)), rng_state_(seed) {}

  void add(double x) {
    exact_.add(x);
    if (samples_.size() < capacity_) {
      samples_.push_back(x);
      return;
    }
    // Algorithm R: keep each of the n values seen so far with equal
    // probability capacity/n.
    const std::uint64_t j = next_u64() % exact_.count();
    if (j < capacity_) samples_[static_cast<std::size_t>(j)] = x;
  }

  /// Total values streamed through (not the retained count).
  std::size_t count() const noexcept { return exact_.count(); }
  std::size_t retained() const noexcept { return samples_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  // Exact moments (independent of the reservoir).
  double mean() const noexcept { return exact_.mean(); }
  double stddev() const noexcept { return exact_.stddev(); }
  double min() const noexcept { return exact_.min(); }
  double max() const noexcept { return exact_.max(); }

  /// p in [0,1]; interpolated rank over the retained reservoir. Exact
  /// whenever count() <= capacity().
  double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double idx = p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  /// The retained (unsorted) reservoir, for pooling across clients.
  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::size_t capacity_;
  std::uint64_t rng_state_;
  OnlineStats exact_;
  std::vector<double> samples_;
};

}  // namespace mantle
