#pragma once

#include <cstdint>

/// \file rng.hpp
/// Deterministic random number generation. Every scenario owns one Rng
/// seeded explicitly; no global state, no std::random_device, so runs are
/// reproducible across platforms (std::mt19937 distributions are not
/// portable across standard libraries; these generators are).

namespace mantle {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++: fast, high-quality, portable PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double next_double() noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// Gaussian with the given mean and standard deviation (Box–Muller).
  double gaussian(double mean, double stddev) noexcept;

  /// Exponential with the given mean (inter-arrival modelling).
  double exponential(double mean) noexcept;

  /// Derive an independent child generator (per client / per MDS streams).
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace mantle
