#include "common/time.hpp"

#include <cstdio>

namespace mantle {

std::string format_time(Time t) {
  const std::uint64_t total_ms = t / kMsec;
  const std::uint64_t minutes = total_ms / 60000;
  const std::uint64_t seconds = (total_ms / 1000) % 60;
  const std::uint64_t millis = total_ms % 1000;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu:%02llu.%03llu",
                static_cast<unsigned long long>(minutes),
                static_cast<unsigned long long>(seconds),
                static_cast<unsigned long long>(millis));
  return buf;
}

}  // namespace mantle
