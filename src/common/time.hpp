#pragma once

#include <cstdint>
#include <string>

/// \file time.hpp
/// Simulated-time primitives. The whole system runs on a deterministic
/// discrete-event clock measured in integer microseconds, so two runs with
/// the same seed produce bit-identical timelines.

namespace mantle {

/// Simulation timestamp / duration, in microseconds since scenario start.
using Time = std::uint64_t;

inline constexpr Time kUsec = 1;
inline constexpr Time kMsec = 1000 * kUsec;
inline constexpr Time kSec = 1000 * kMsec;
inline constexpr Time kMinute = 60 * kSec;

/// Convert a simulated timestamp to fractional seconds (for math and output).
constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSec);
}

/// Convert fractional seconds to a simulated duration, rounding to the
/// nearest microsecond. Negative inputs clamp to zero: durations in the
/// simulator are never negative.
constexpr Time from_seconds(double s) noexcept {
  if (s <= 0.0) return 0;
  return static_cast<Time>(s * static_cast<double>(kSec) + 0.5);
}

/// Render as "M:SS.mmm" for human-readable timelines.
std::string format_time(Time t);

}  // namespace mantle
