#pragma once

#include <cstdio>
#include <string>

/// \file log.hpp
/// Minimal leveled logger. Off (Warn) by default so test and benchmark
/// output stays clean; harnesses raise the level with --verbose-style
/// flags. Not thread-safe beyond what stdio provides, which is fine: the
/// simulator is single-threaded and the threaded cluster driver logs only
/// from the coordinating thread.

namespace mantle {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

class Log {
 public:
  static LogLevel level() noexcept { return level_; }
  static void set_level(LogLevel lvl) noexcept { level_ = lvl; }

  template <typename... Args>
  static void write(LogLevel lvl, const char* fmt, Args... args) {
    if (lvl < level_) return;
    std::fprintf(stderr, "[%s] ", name(lvl));
    std::fprintf(stderr, fmt, args...);
    std::fputc('\n', stderr);
  }

  static void write(LogLevel lvl, const char* msg) {
    if (lvl < level_) return;
    std::fprintf(stderr, "[%s] %s\n", name(lvl), msg);
  }

 private:
  static const char* name(LogLevel lvl) noexcept {
    switch (lvl) {
      case LogLevel::Trace: return "trace";
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
  }

  static inline LogLevel level_ = LogLevel::Warn;
};

#define MANTLE_LOG_DEBUG(...) \
  ::mantle::Log::write(::mantle::LogLevel::Debug, __VA_ARGS__)
#define MANTLE_LOG_INFO(...) \
  ::mantle::Log::write(::mantle::LogLevel::Info, __VA_ARGS__)
#define MANTLE_LOG_WARN(...) \
  ::mantle::Log::write(::mantle::LogLevel::Warn, __VA_ARGS__)

}  // namespace mantle
