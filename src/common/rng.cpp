#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace mantle {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> uniform double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full range when hi-lo+1 wraps
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + r % span;
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

double Rng::gaussian(double mean, double stddev) noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double mean) noexcept {
  double u = next_double();
  while (u <= 1e-300) u = next_double();
  return -mean * std::log(u);
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

}  // namespace mantle
