#include "common/timeline.hpp"

#include <cstdio>

namespace mantle {

std::vector<double> Timeline::resample_rates(std::size_t n) const {
  std::vector<double> out(n, 0.0);
  if (n == 0 || buckets_.empty()) return out;
  const double group = static_cast<double>(buckets_.size()) / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto lo = static_cast<std::size_t>(static_cast<double>(i) * group);
    auto hi = static_cast<std::size_t>(static_cast<double>(i + 1) * group);
    if (hi <= lo) hi = lo + 1;
    if (hi > buckets_.size()) hi = buckets_.size();
    double s = 0.0;
    for (std::size_t j = lo; j < hi; ++j) s += buckets_[j];
    out[i] = s / (to_seconds(width_) * static_cast<double>(hi - lo));
  }
  return out;
}

std::string render_series_table(
    const std::vector<std::pair<std::string, const Timeline*>>& series,
    Time step) {
  std::string out;
  char buf[64];
  std::size_t max_len = 0;
  for (const auto& [name, tl] : series) {
    (void)name;
    max_len = std::max(max_len, tl->size() * static_cast<std::size_t>(tl->bucket_width()));
  }
  out += "time     ";
  for (const auto& [name, tl] : series) {
    (void)tl;
    std::snprintf(buf, sizeof(buf), " %12s", name.c_str());
    out += buf;
  }
  out += '\n';
  for (Time t = 0; t < max_len; t += step) {
    out += format_time(t);
    out += "  ";
    for (const auto& [name, tl] : series) {
      (void)name;
      // average rate across the [t, t+step) window
      double sum = 0.0;
      std::size_t cnt = 0;
      for (Time u = t; u < t + step; u += tl->bucket_width()) {
        sum += tl->rate(u / tl->bucket_width());
        ++cnt;
      }
      std::snprintf(buf, sizeof(buf), " %12.1f", cnt ? sum / static_cast<double>(cnt) : 0.0);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace mantle
