#pragma once

#include <map>
#include <optional>
#include <string>

/// \file config.hpp
/// String-keyed configuration registry. This is the moral equivalent of
/// Ceph's config observer plus `ceph tell mds.N injectargs ...`: Mantle
/// policies are injected at runtime by setting keys like
/// `mds_bal_metaload` on a live cluster, and balancer tunables
/// (`mds_bal_interval`, `mds_bal_need_min`, dirfrag split thresholds) live
/// here too.

namespace mantle {

class Config {
 public:
  void set(const std::string& key, std::string value) {
    values_[key] = std::move(value);
  }
  void set_double(const std::string& key, double v);
  void set_int(const std::string& key, long long v);
  void set_bool(const std::string& key, bool v);

  bool contains(const std::string& key) const {
    return values_.count(key) != 0;
  }

  /// String value, or `def` when unset.
  std::string get(const std::string& key, const std::string& def = "") const;

  /// Typed accessors; fall back to `def` when unset or unparsable.
  double get_double(const std::string& key, double def) const;
  long long get_int(const std::string& key, long long def) const;
  bool get_bool(const std::string& key, bool def) const;

  std::optional<std::string> find(const std::string& key) const;

  /// Parse a whitespace-separated "key=value key=value" injectargs string.
  /// Returns the number of keys applied.
  int inject_args(const std::string& args);

  const std::map<std::string, std::string>& all() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace mantle
