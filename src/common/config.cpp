#include "common/config.hpp"

#include <cstdlib>
#include <sstream>

namespace mantle {

void Config::set_double(const std::string& key, double v) {
  std::ostringstream os;
  os << v;
  values_[key] = os.str();
}

void Config::set_int(const std::string& key, long long v) {
  values_[key] = std::to_string(v);
}

void Config::set_bool(const std::string& key, bool v) {
  values_[key] = v ? "true" : "false";
}

std::string Config::get(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

double Config::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? def : v;
}

long long Config::get_int(const std::string& key, long long def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return end == it->second.c_str() ? def : v;
}

bool Config::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& s = it->second;
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  return def;
}

std::optional<std::string> Config::find(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

int Config::inject_args(const std::string& args) {
  std::istringstream is(args);
  std::string tok;
  int applied = 0;
  while (is >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    values_[tok.substr(0, eq)] = tok.substr(eq + 1);
    ++applied;
  }
  return applied;
}

}  // namespace mantle
