#pragma once

#include <cmath>

#include "common/time.hpp"

/// \file decay_counter.hpp
/// Exponentially-decayed load counter, modelled on Ceph's DecayCounter.
/// CephFS tracks per-dirfrag popularity (inode reads/writes, readdirs,
/// fetches, stores) with counters whose value halves every `half_life`
/// seconds of inactivity, so "hot" is always relative to the recent past —
/// this is the smoothing visible in the paper's Figure 1 heat map.

namespace mantle {

/// Decay rate shared by a family of counters (one per MDS in CephFS,
/// mds_decay_halflife; default 5 seconds as in Ceph).
class DecayRate {
 public:
  explicit DecayRate(double half_life_seconds = 5.0) noexcept
      : k_(std::log(0.5) / half_life_seconds) {}

  /// exp(k * dt): the multiplicative decay over dt seconds.
  double decay_factor(double dt_seconds) const noexcept {
    return std::exp(k_ * dt_seconds);
  }

  double half_life() const noexcept { return std::log(0.5) / k_; }

 private:
  double k_;  // negative
};

/// A single decayed counter. Values are folded in with hit() and read with
/// get(); both take the current simulated time and lazily apply the decay
/// accumulated since the last touch.
class DecayCounter {
 public:
  DecayCounter() = default;

  /// Current decayed value at time `now`.
  double get(Time now, const DecayRate& rate) const noexcept {
    decay_to(now, rate);
    return value_;
  }

  /// Add `delta` (default one event) at time `now`.
  void hit(Time now, const DecayRate& rate, double delta = 1.0) noexcept {
    decay_to(now, rate);
    value_ += delta;
  }

  /// Scale the counter at time `now` (used when splitting a dirfrag: each
  /// child inherits a proportional share of the parent's heat). Pending
  /// decay is applied first, so the factor multiplies the value an
  /// observer would read at `now` — scaling a stale raw value would hand
  /// children a share of heat that should already have decayed away.
  void scale(Time now, const DecayRate& rate, double f) noexcept {
    decay_to(now, rate);
    value_ *= f;
  }

  /// Merge another counter that has already been decayed to the same time.
  void merge(const DecayCounter& other) noexcept { value_ += other.value_; }

  void reset(Time now) noexcept {
    value_ = 0.0;
    last_ = now;
  }

  /// Raw value without decay; only meaningful immediately after get()/hit().
  double raw() const noexcept { return value_; }

 private:
  void decay_to(Time now, const DecayRate& rate) const noexcept {
    if (now <= last_) return;  // never decay backwards in time
    const double dt = to_seconds(now - last_);
    value_ *= rate.decay_factor(dt);
    if (value_ < 1e-9) value_ = 0.0;
    last_ = now;
  }

  mutable double value_ = 0.0;
  mutable Time last_ = 0;
};

}  // namespace mantle
