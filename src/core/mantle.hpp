#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/balancer.hpp"
#include "lua/interp.hpp"
#include "store/object_store.hpp"

/// \file mantle.hpp
/// Mantle: the programmable metadata balancer. A MantleBalancer is a
/// cluster::Balancer whose five decisions are made by injected Lua code
/// running in the environment of the paper's Table 2:
///
///   globals while evaluating hooks
///     whoami                      current MDS (1-based, as in the paper)
///     MDSs[i]["auth"|"all"|"cpu"|"mem"|"q"|"req"|"load"|"alive"]
///     total                       sum of MDSs[i]["load"] over alive ranks
///     authmetaload, allmetaload   current MDS's metadata loads
///     IRD, IWR, READDIR, FETCH, STORE   (metaload hook only)
///     i                           index being scored (mdsload hook only)
///     targets[i]                  output of the where hook
///     WRstate(s) / RDstate()      persistent per-balancer state
///     max(a,b), min(a,b)
///
///   hooks (injected via config keys, as `ceph tell mds.N injectargs ...`)
///     mds_bal_metaload   expression or chunk assigning `metaload`
///     mds_bal_mdsload    expression over MDSs[i] or chunk assigning `mdsload`
///     mds_bal_when       condition; three accepted forms (see below)
///     mds_bal_where      chunk filling `targets`
///     mds_bal_howmuch    expression: list of dirfrag selector names
///
/// The `when` hook accepts (a) an `if <cond> then` fragment, exactly as
/// printed in the paper's Table 1 ("when: if my load > ... then"); (b) a
/// chunk that sets the global `go` to 1 (Listing 3 style); or (c) a chunk
/// whose last statement is `return <bool>`. A `when` chunk may also fill
/// `targets` directly (Listings 1-3 inline their where policy); if it
/// does and no separate `where` hook is set, those targets are used.
///
/// MDSs[i]["alive"] is 1 for ranks heartbeating normally and 0 for ranks
/// the laggy-peer detector has written off (heartbeat older than
/// laggy_factor * bal_interval); dead ranks also show load 0 and are
/// excluded from `total`. Policies may branch on it, but they do not have
/// to: the mechanism refuses to export toward a dead rank regardless.
///
/// The `targets` a hook produces are sanitized before the mechanism acts
/// on them: non-finite or negative entries clamp to 0, fractional or
/// out-of-range indices are ignored, and each occurrence increments
/// hook_errors() — a buggy policy degrades to "no migration", never to a
/// corrupted export.

namespace mantle::obs {
class Counter;
class Histogram;
}  // namespace mantle::obs

namespace mantle::core {

/// The five injectable policies.
struct MantlePolicy {
  std::string metaload;
  std::string mdsload;
  std::string when;
  std::string where;
  std::string howmuch;  // e.g. {"big_first"} or {"half","small","big_small"}
};

/// Pre-canned policies replicating the paper's listings (runnable through
/// the real interpreter; the native C++ twins live in balancers/builtin).
namespace scripts {
MantlePolicy original();           // Table 1
MantlePolicy greedy_spill();       // Listing 1
MantlePolicy greedy_spill_even();  // Listing 2 (see EXPERIMENTS.md note)
MantlePolicy fill_and_spill(double cpu_threshold = 48.0,
                            double spill_fraction = 0.25);  // Listing 3
MantlePolicy adaptable();          // Listing 4
}  // namespace scripts

class MantleBalancer final : public cluster::Balancer {
 public:
  /// Compile-once pipeline counters. Every hook source is parsed exactly
  /// once per injection: `misses` counts first compiles (one per non-empty
  /// hook, at construction), `recompiles` counts re-injections replacing a
  /// cached program, `hits` counts evaluations served from the cache, and
  /// `parses` counts raw parser invocations (a hook that is not a bare
  /// expression costs one failed expression parse plus one chunk parse).
  struct PolicyCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t recompiles = 0;
    std::uint64_t parses = 0;
  };

  struct Options {
    std::uint64_t budget = 1 << 20;  // interpreter steps per hook call
    std::uint64_t lua_seed = 0;      // for math.random in policies
    /// Optional durable backing for WRstate/RDstate. The paper kept the
    /// state in temporary files and lists "store them in RADOS objects"
    /// as future work; wiring an ObjectStore here does exactly that —
    /// state survives balancer reconstruction (e.g. an MDS restart).
    store::ObjectStore* state_store = nullptr;
    std::string state_oid;  // object name, e.g. "mantle.state.mds0"
  };

  MantleBalancer(MantlePolicy policy, Options opt);
  explicit MantleBalancer(MantlePolicy policy)
      : MantleBalancer(std::move(policy), Options{}) {}

  std::string name() const override { return "mantle"; }

  double metaload(const cluster::PopSnapshot& pop) const override;
  double mdsload(const cluster::HeartbeatPayload& hb) const override;
  bool when(const cluster::ClusterView& view) override;
  std::vector<double> where(const cluster::ClusterView& view) override;
  std::vector<std::string> howmuch() const override;

  /// Register per-hook instrumentation: invocation/error counters, a
  /// sanitization counter, and an interpreter-step histogram per hook.
  /// Steps stand in for wall time — they measure the same thing (how much
  /// work the injected policy does) while staying deterministic, so
  /// instrumented runs remain byte-reproducible.
  void attach_observability(obs::MetricsRegistry* metrics,
                            obs::TraceSink* trace) override;

  /// Replace one hook at runtime (the `injectargs` path). Returns the
  /// validation error, or empty on success.
  std::string inject(const std::string& key, const std::string& script);

  const MantlePolicy& policy() const { return policy_; }

  /// Number of hook evaluations that failed (bad policies never take the
  /// MDS down; they just skip that tick and are counted here).
  std::uint64_t hook_errors() const { return hook_errors_; }
  const std::string& last_error() const { return last_error_; }

  /// Policy-cache counters (also exported as mantle_policy_cache_*_total
  /// once attach_observability() has run).
  const PolicyCacheStats& cache_stats() const { return cache_stats_; }

  /// Cumulative evaluation cost for the provenance recorder. Always
  /// tracked (unlike the registry handles, which need
  /// attach_observability()), so recorded decisions carry real deltas
  /// even on bare balancers.
  EvalStats eval_stats() const override;

 private:
  /// Index into the per-hook instrumentation arrays.
  enum Hook { kMetaload = 0, kMdsload, kWhen, kWhere, kHowmuch, kNumHooks };

  /// One hook's compiled form. Classification (bare expression vs chunk,
  /// Table-1 `... then` fragment) happens at compile time, never per call.
  struct HookProgram {
    std::string source;        // what was compiled (cache key)
    lua::CompiledChunk chunk;  // ready-to-run AST (or compile error)
    bool is_expr = false;      // compiled via compile_expr()
    bool then_style = false;   // when-hook "if <cond> then" fragment
    bool compiled = false;
  };

  /// One MDSs[i] row reused across ticks: the table plus stable pointers
  /// to its eight value cells. Rebuilt only if a policy changed the row's
  /// shape (added/erased keys) — detected via erase_version + key counts.
  struct RowCache {
    lua::TablePtr row;
    std::uint32_t version = 0;
    lua::Value* cells[8] = {};  // auth all cpu mem q req load alive

    void update(const cluster::HeartbeatPayload& hb, double load, double alive);
  };

  /// The when/where hook environment, built once and refreshed in place.
  struct ViewEnv {
    lua::TablePtr mdss;
    lua::TablePtr targets;
    std::uint32_t mdss_version = 0;
    std::uint32_t targets_version = 0;
    std::vector<RowCache> rows;
    std::vector<lua::Value*> mdss_cells;    // MDSs[i] container cells
    std::vector<lua::Value*> target_cells;  // targets[i] cells
  };

  /// Single-row MDSs environment for the mdsload hook, one per rank.
  struct SoloEnv {
    lua::TablePtr mdss;
    std::uint32_t version = 0;
    double idx = 0.0;
    RowCache row;
    lua::Value* cell = nullptr;
  };

  /// The cached compiled program for hook `h`, (re)compiling iff `src`
  /// differs from what is cached. Counts hits/misses/recompiles.
  const HookProgram& program(Hook h, const std::string& src) const;
  /// Eagerly compile every non-empty hook of the current policy.
  void compile_policy();
  /// Push cache-stat deltas into the registry counters. The five
  /// construction-time compiles predate attach_observability(), so the
  /// counters are reconciled from cache_stats_ instead of incremented
  /// inline (pushed_ remembers what the registry has already seen).
  void sync_cache_counters() const;

  void bind_view(const cluster::ClusterView& view);
  void bind_state_functions();
  double eval_load_hook(Hook h, const std::string& script,
                        const char* result_global) const;
  /// Bump the hook's call/error counters and record the interpreter steps
  /// the evaluation consumed. No-op until attach_observability().
  void note_hook(Hook h, bool failed) const;

  MantlePolicy policy_;
  Options opt_;
  mutable lua::Interp lua_;
  mutable std::uint64_t total_steps_ = 0;  // Lua steps across all hook calls
  mutable std::uint64_t hook_errors_ = 0;
  mutable std::string last_error_;
  lua::Value state_;                     // WRstate/RDstate slot
  std::vector<double> pending_targets_;  // filled by a combined when-hook
  bool when_filled_targets_ = false;

  mutable HookProgram programs_[kNumHooks];
  mutable PolicyCacheStats cache_stats_;
  mutable PolicyCacheStats pushed_;  // already reflected in the registry
  mutable ViewEnv view_env_;
  mutable std::vector<SoloEnv> solo_envs_;
  mutable Time last_now_ = 0;     // latest view.now seen (trace timestamps)
  mutable int last_whoami_ = -1;  // latest view.whoami seen

  // Observability handles (owned by the cluster's registry; null until
  // attach_observability). The pointees are updated from const hooks.
  obs::Counter* hook_calls_[kNumHooks] = {};
  obs::Counter* hook_fail_[kNumHooks] = {};
  obs::Histogram* hook_steps_[kNumHooks] = {};
  obs::Counter* sanitized_ = nullptr;
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
  obs::Counter* cache_recompiles_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
};

/// Validate a policy before injecting it into a live cluster: parse every
/// hook and dry-run it against a synthetic two-MDS view with an
/// instruction budget, so `while 1 do end` is rejected instead of taking
/// the MDS down (the paper's "Analyzing Security and Safety" item).
/// Returns "" on success or a description of the first problem.
std::string validate_policy(const MantlePolicy& policy,
                            std::uint64_t budget = 1 << 20);

}  // namespace mantle::core
