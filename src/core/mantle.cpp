#include "core/mantle.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace mantle::core {

using cluster::ClusterView;
using cluster::HeartbeatPayload;
using cluster::PopSnapshot;
using lua::Value;

namespace {

/// Is `src` usable as a bare expression (`return (src)` parses)?
bool is_expression(const std::string& src) {
  return lua::check_syntax("return (" + src + ")").empty();
}

/// Does the hook end with a dangling `then` (Table 1's "when" style)?
bool ends_with_then(const std::string& src) {
  // Strip trailing whitespace and line comments, then look for the token.
  std::string s;
  s.reserve(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '-' && i + 1 < src.size() && src[i + 1] == '-') {
      while (i < src.size() && src[i] != '\n') ++i;
      if (i < src.size()) s += '\n';
      continue;
    }
    s += src[i];
  }
  std::size_t end = s.find_last_not_of(" \t\r\n");
  if (end == std::string::npos || end + 1 < 4) return false;
  return s.compare(end - 3, 4, "then") == 0 &&
         (end == 3 || !std::isalnum(static_cast<unsigned char>(s[end - 4])));
}

constexpr const char* kHookNames[] = {"metaload", "mdsload", "when", "where",
                                      "howmuch"};

constexpr const char* kRowFields[8] = {"auth", "all", "cpu", "mem",
                                       "q",    "req", "load", "alive"};

/// Read the `targets` table a hook produced into a dense rank-indexed
/// vector, defending the mechanism against policy bugs: non-finite and
/// negative entries clamp to 0, fractional or out-of-range indices are
/// ignored, and every such occurrence is a counted hook error. The
/// mechanism must never export load because a policy emitted NaN.
std::vector<double> sanitize_targets(const Value& targets, std::size_t n,
                                     const char* hook,
                                     std::uint64_t& hook_errors,
                                     std::string& last_error,
                                     obs::Counter* sanitized) {
  const auto note = [&] {
    ++hook_errors;
    if (sanitized != nullptr) sanitized->inc();
  };
  std::vector<double> out(n, 0.0);
  if (!targets.is_table()) return out;
  const lua::TablePtr t = targets.table();
  for (const auto& [key, val] : t->num_keys) {
    if (!std::isfinite(key) || key != std::floor(key) || key < 1.0 ||
        key > static_cast<double>(n)) {
      note();
      last_error = std::string(hook) + ": targets index out of range";
      MANTLE_LOG_WARN("mantle %s hook: ignoring targets[%g] (valid: 1..%zu)",
                      hook, key, n);
      continue;
    }
    const double x = val.to_number().value_or(0.0);
    if (!std::isfinite(x) || x < 0.0) {
      note();
      last_error = std::string(hook) + ": non-finite or negative target";
      MANTLE_LOG_WARN("mantle %s hook: clamping targets[%g]=%g to 0", hook,
                      key, x);
      continue;  // out[key-1] stays 0
    }
    out[static_cast<std::size_t>(key) - 1] = x;
  }
  for (const auto& [key, val] : t->str_keys) {
    (void)val;
    note();
    last_error = std::string(hook) + ": string key in targets";
    MANTLE_LOG_WARN("mantle %s hook: ignoring targets[\"%s\"]", hook,
                    key.c_str());
  }
  return out;
}

}  // namespace

namespace {

/// Serialize a scalar state value for the durable backend. Only scalar
/// state round-trips (tables would need a real codec); policies that
/// need more keep it in Lua globals, which live as long as the VM.
std::string encode_state(const Value& v) {
  if (v.is_number()) return "n:" + v.to_display_string();
  if (v.is_bool()) return std::string("b:") + (v.boolean() ? "1" : "0");
  if (v.is_string()) return "s:" + v.str();
  return "x:";
}

Value decode_state(const std::string& s) {
  if (s.size() < 2 || s[1] != ':') return Value(0.0);
  const std::string payload = s.substr(2);
  switch (s[0]) {
    case 'n': return Value(std::strtod(payload.c_str(), nullptr));
    case 'b': return Value(payload == "1");
    case 's': return Value(payload);
    default: return Value{};
  }
}

}  // namespace

MantleBalancer::MantleBalancer(MantlePolicy policy, Options opt)
    : policy_(std::move(policy)), opt_(opt), state_(0.0) {
  lua_.set_budget(opt_.budget);
  lua_.seed_random(opt_.lua_seed);
  if (opt_.state_store != nullptr && !opt_.state_oid.empty()) {
    // Recover durable state left by a previous incarnation.
    std::string raw;
    if (opt_.state_store->read(opt_.state_oid, &raw).ok)
      state_ = decode_state(raw);
  }
  bind_state_functions();
  compile_policy();
}

// ---------------------------------------------------------------------------
// Compile-once policy pipeline
// ---------------------------------------------------------------------------

void MantleBalancer::compile_policy() {
  const std::string* srcs[kNumHooks] = {&policy_.metaload, &policy_.mdsload,
                                        &policy_.when, &policy_.where,
                                        &policy_.howmuch};
  for (int h = 0; h < kNumHooks; ++h) {
    if (srcs[h]->empty()) continue;
    // Skip hooks whose cached program is already current so re-injection
    // of one hook does not inflate the hit counter for the other four.
    const HookProgram& p = programs_[h];
    if (p.compiled && p.source == *srcs[h]) continue;
    program(static_cast<Hook>(h), *srcs[h]);
  }
}

const MantleBalancer::HookProgram& MantleBalancer::program(
    Hook h, const std::string& src) const {
  HookProgram& p = programs_[h];
  if (p.compiled && p.source == src) {
    ++cache_stats_.hits;
    sync_cache_counters();
    return p;
  }
  const bool recompile = p.compiled;
  p.source = src;
  p.is_expr = false;
  p.then_style = false;
  const char* name = kHookNames[h];
  switch (h) {
    case kMetaload:
    case kMdsload:
      // Expression or chunk assigning the result global; try the cheaper
      // expression form first (one parse in the common case).
      p.chunk = lua::compile_expr(src, name);
      ++cache_stats_.parses;
      if (p.chunk.ok()) {
        p.is_expr = true;
      } else {
        p.chunk = lua::compile(src, name);
        ++cache_stats_.parses;
      }
      break;
    case kWhen:
      if (ends_with_then(src)) {
        // Table 1 style: "if <cond> then" — complete the statement once,
        // here, so truth of the condition is observable at run time.
        p.chunk = lua::compile(src + "\n__go = 1 end", name);
        p.then_style = true;
      } else {
        p.chunk = lua::compile(src, name);
      }
      ++cache_stats_.parses;
      break;
    case kWhere:
      p.chunk = lua::compile(src, name);
      ++cache_stats_.parses;
      break;
    case kHowmuch:
    default:
      p.chunk = lua::compile_expr(src, name);
      ++cache_stats_.parses;
      break;
  }
  p.compiled = true;
  if (recompile) {
    ++cache_stats_.recompiles;
    if (trace_ != nullptr)
      trace_->event(last_now_, obs::EventKind::PolicyRecompile, last_whoami_,
                    -1, name);
  } else {
    ++cache_stats_.misses;
  }
  sync_cache_counters();
  return p;
}

void MantleBalancer::sync_cache_counters() const {
  if (cache_hits_ == nullptr) return;
  cache_hits_->inc(cache_stats_.hits - pushed_.hits);
  cache_misses_->inc(cache_stats_.misses - pushed_.misses);
  cache_recompiles_->inc(cache_stats_.recompiles - pushed_.recompiles);
  pushed_ = cache_stats_;
}

void MantleBalancer::bind_state_functions() {
  // WRstate/RDstate persist decisions across balancer invocations
  // (paper §3.1). In-memory by default; with Options::state_store set,
  // every write also lands in the object store (the paper's "store them
  // in RADOS objects to improve scalability" follow-up). Both
  // capitalizations from the paper are accepted.
  auto wr = [this](std::vector<Value>& args, lua::Interp&) {
    state_ = args.empty() ? Value(0.0) : args[0];
    if (opt_.state_store != nullptr && !opt_.state_oid.empty())
      opt_.state_store->write_full(opt_.state_oid, encode_state(state_));
    return std::vector<Value>{};
  };
  auto rd = [this](std::vector<Value>&, lua::Interp&) {
    return std::vector<Value>{state_};
  };
  lua_.set_function("WRstate", wr);
  lua_.set_function("WRState", wr);
  lua_.set_function("RDstate", rd);
  lua_.set_function("RDState", rd);
}

double MantleBalancer::eval_load_hook(Hook h, const std::string& script,
                                      const char* result_global) const {
  if (script.empty()) return 0.0;
  const HookProgram& prog = program(h, script);
  lua::RunResult r = lua_.run(prog.chunk);
  if (r.ok && !prog.is_expr) r.values = {lua_.get_global(result_global)};
  if (!r.ok) {
    ++hook_errors_;
    last_error_ = r.error;
    MANTLE_LOG_WARN("mantle %s hook failed: %s", result_global,
                    r.error.c_str());
    return 0.0;
  }
  const Value v = r.first();
  const double x = v.to_number().value_or(0.0);
  // Load fractions get the same treatment as targets: a NaN/Inf metaload
  // or mdsload would flow straight into migration sizing (candidate
  // gathering sums metaloads; where() goals scale mdsloads), so clamp to
  // 0 and count it instead of trusting the policy.
  if (!std::isfinite(x) || x < 0.0) {
    ++hook_errors_;
    last_error_ = std::string(result_global) + ": non-finite or negative load";
    if (sanitized_ != nullptr) sanitized_->inc();
    MANTLE_LOG_WARN("mantle %s hook: clamping non-finite/negative load %g to 0",
                    result_global, x);
    return 0.0;
  }
  return x;
}

void MantleBalancer::attach_observability(obs::MetricsRegistry* metrics,
                                          obs::TraceSink* trace) {
  trace_ = trace;
  if (metrics == nullptr) {
    for (int h = 0; h < kNumHooks; ++h)
      hook_calls_[h] = hook_fail_[h] = nullptr;
    for (int h = 0; h < kNumHooks; ++h) hook_steps_[h] = nullptr;
    sanitized_ = nullptr;
    cache_hits_ = cache_misses_ = cache_recompiles_ = nullptr;
    return;
  }
  for (int h = 0; h < kNumHooks; ++h) {
    const std::string base = std::string("mantle_") + kHookNames[h];
    hook_calls_[h] =
        &metrics->counter(base + "_calls_total", "hook evaluations");
    hook_fail_[h] =
        &metrics->counter(base + "_errors_total", "failed hook evaluations");
    hook_steps_[h] = &metrics->histogram(base + "_lua_steps",
                                         obs::buckets::lua_steps(),
                                         "interpreter steps per evaluation");
  }
  sanitized_ = &metrics->counter("mantle_targets_sanitized_total",
                                 "bogus targets entries clamped/ignored");
  cache_hits_ = &metrics->counter("mantle_policy_cache_hits_total",
                                  "hook evaluations served from the cache");
  cache_misses_ = &metrics->counter("mantle_policy_cache_misses_total",
                                    "first-time hook compilations");
  cache_recompiles_ =
      &metrics->counter("mantle_policy_cache_recompiles_total",
                        "cached hooks replaced by re-injection");
  // The construction-time compiles predate this attach; reconcile.
  sync_cache_counters();
}

void MantleBalancer::note_hook(Hook h, bool failed) const {
  // steps_used() resets at the start of every run/eval, so reading it
  // after the hook gives exactly this evaluation's cost. The running
  // total feeds eval_stats() and is kept even without a registry.
  const std::uint64_t steps = lua_.steps_used();
  total_steps_ += steps;
  if (hook_calls_[h] == nullptr) return;
  hook_calls_[h]->inc();
  if (failed) hook_fail_[h]->inc();
  hook_steps_[h]->observe(static_cast<double>(steps));
}

cluster::Balancer::EvalStats MantleBalancer::eval_stats() const {
  EvalStats s;
  s.lua_steps = total_steps_;
  s.hook_errors = hook_errors_;
  s.cache_hits = cache_stats_.hits;
  s.cache_misses = cache_stats_.misses;
  s.cache_recompiles = cache_stats_.recompiles;
  return s;
}

// ---------------------------------------------------------------------------
// Zero-rebuild hook environments
// ---------------------------------------------------------------------------

void MantleBalancer::RowCache::update(const HeartbeatPayload& hb, double load,
                                      double alive) {
  // Intact = the exact eight canonical fields and no erasures since the
  // cell pointers were taken. A policy that reshaped the row (added or
  // nilled keys) gets a fresh row next tick, matching the old
  // table-per-tick behavior.
  const bool intact = row != nullptr && row->erase_version == version &&
                      row->str_keys.size() == 8 && row->num_keys.empty();
  if (!intact) {
    if (row == nullptr) row = lua::make_table();
    else row->clear();
    for (int f = 0; f < 8; ++f) cells[f] = row->slot_str(kRowFields[f]);
    version = row->erase_version;
  }
  *cells[0] = Value(hb.auth_metaload);
  *cells[1] = Value(hb.all_metaload);
  *cells[2] = Value(hb.cpu_pct);
  *cells[3] = Value(hb.mem_pct);
  *cells[4] = Value(hb.queue_len);
  *cells[5] = Value(hb.req_rate);
  *cells[6] = Value(load);
  *cells[7] = Value(alive);
}

double MantleBalancer::metaload(const PopSnapshot& pop) const {
  obs::ScopedPhase prof(obs::ProfilePhase::HookEval);
  lua_.set_global("IRD", Value(pop.ird));
  lua_.set_global("IWR", Value(pop.iwr));
  lua_.set_global("READDIR", Value(pop.readdir));
  lua_.set_global("FETCH", Value(pop.fetch));
  lua_.set_global("STORE", Value(pop.store));
  const std::uint64_t errs = hook_errors_;
  const double v = eval_load_hook(kMetaload, policy_.metaload, "metaload");
  note_hook(kMetaload, hook_errors_ != errs);
  return v;
}

double MantleBalancer::mdsload(const HeartbeatPayload& hb) const {
  obs::ScopedPhase prof(obs::ProfilePhase::HookEval);
  // The hook is an expression over MDSs[i]; bind a table holding the
  // entry being scored at its 1-based index. One cached single-row
  // environment per rank, refreshed in place.
  const std::size_t slot =
      hb.rank > 0 ? static_cast<std::size_t>(hb.rank) : std::size_t{0};
  if (solo_envs_.size() <= slot) solo_envs_.resize(slot + 1);
  SoloEnv& se = solo_envs_[slot];
  const double idx = static_cast<double>(hb.rank + 1);
  const bool intact = se.mdss != nullptr && se.idx == idx &&
                      se.mdss->erase_version == se.version &&
                      se.mdss->num_keys.size() == 1 &&
                      se.mdss->str_keys.empty();
  if (!intact) {
    if (se.mdss == nullptr) se.mdss = lua::make_table();
    else se.mdss->clear();
    se.cell = se.mdss->slot_num(idx);
    se.version = se.mdss->erase_version;
    se.idx = idx;
  }
  se.row.update(hb, 0.0, 1.0);
  if (!(se.cell->is_table() && se.cell->table() == se.row.row))
    *se.cell = Value(se.row.row);
  lua_.set_global("MDSs", Value(se.mdss));
  lua_.set_global("i", Value(idx));
  const std::uint64_t errs = hook_errors_;
  const double v = eval_load_hook(kMdsload, policy_.mdsload, "mdsload");
  note_hook(kMdsload, hook_errors_ != errs);
  return v;
}

void MantleBalancer::bind_view(const ClusterView& view) {
  last_now_ = view.now;
  last_whoami_ = view.whoami;
  const std::size_t n = view.size();
  ViewEnv& env = view_env_;
  if (env.mdss == nullptr) {
    env.mdss = lua::make_table();
    env.targets = lua::make_table();
  }

  // MDSs container: reuse the rank->row cells unless a policy erased keys
  // or the cluster changed size.
  const bool mdss_intact = env.rows.size() == n &&
                           env.mdss->erase_version == env.mdss_version &&
                           env.mdss->num_keys.size() == n &&
                           env.mdss->str_keys.empty();
  if (!mdss_intact) {
    env.mdss->clear();
    env.rows.resize(n);
    env.mdss_cells.assign(n, nullptr);
    for (std::size_t i = 0; i < n; ++i)
      env.mdss_cells[i] = env.mdss->slot_num(static_cast<double>(i + 1));
    env.mdss_version = env.mdss->erase_version;
  }
  for (std::size_t i = 0; i < n; ++i) {
    RowCache& rc = env.rows[i];
    // Defensive: a foreign/replayed view may carry fewer loads than ranks.
    const double load = i < view.loads.size() ? view.loads[i] : 0.0;
    rc.update(view.mdss[i], load, view.is_alive(i) ? 1.0 : 0.0);
    // Heal MDSs[i] if a policy overwrote the container cell itself.
    lua::Value& cell = *env.mdss_cells[i];
    if (!(cell.is_table() && cell.table() == rc.row)) cell = Value(rc.row);
  }

  // targets: same table every tick, cells reset to 0.
  const bool targets_intact = env.target_cells.size() == n &&
                              env.targets->erase_version ==
                                  env.targets_version &&
                              env.targets->num_keys.size() == n &&
                              env.targets->str_keys.empty();
  if (!targets_intact) {
    env.targets->clear();
    env.target_cells.assign(n, nullptr);
    for (std::size_t i = 0; i < n; ++i)
      env.target_cells[i] = env.targets->slot_num(static_cast<double>(i + 1));
    env.targets_version = env.targets->erase_version;
  }
  for (std::size_t i = 0; i < n; ++i) *env.target_cells[i] = Value(0.0);

  // Globals are rebound every tick: a policy may have replaced them.
  lua_.set_global("MDSs", Value(env.mdss));
  lua_.set_global("targets", Value(env.targets));
  lua_.set_global("whoami", Value(static_cast<double>(view.whoami + 1)));
  // A NaN/Inf total (possible in a hand-built or replayed view) is as
  // dangerous as a NaN target: policies divide by it. Present 0 instead.
  lua_.set_global("total", Value(std::isfinite(view.total_load)
                                     ? view.total_load
                                     : 0.0));
  // `whoami` was validated by the caller (when()/where() refuse to run a
  // hook for an out-of-range rank), but keep the access guarded anyway.
  if (view.whoami >= 0 && static_cast<std::size_t>(view.whoami) < n) {
    const HeartbeatPayload& me =
        view.mdss[static_cast<std::size_t>(view.whoami)];
    lua_.set_global("authmetaload", Value(me.auth_metaload));
    lua_.set_global("allmetaload", Value(me.all_metaload));
  } else {
    lua_.set_global("authmetaload", Value(0.0));
    lua_.set_global("allmetaload", Value(0.0));
  }
}

bool MantleBalancer::when(const ClusterView& view) {
  obs::ScopedPhase prof(obs::ProfilePhase::HookEval);
  pending_targets_.assign(view.size(), 0.0);
  when_filled_targets_ = false;
  if (policy_.when.empty()) return false;
  // An empty view or an out-of-range whoami means the caller handed us a
  // view this rank is not part of (seen from fuzzed and replayed inputs).
  // There is nothing meaningful to evaluate: count it, decline to migrate.
  if (view.size() == 0 || view.whoami < 0 ||
      static_cast<std::size_t>(view.whoami) >= view.size()) {
    ++hook_errors_;
    last_error_ = "when: whoami outside the cluster view";
    if (sanitized_ != nullptr) sanitized_->inc();
    return false;
  }

  bind_view(view);
  lua_.set_global("go", Value{});

  const HookProgram& prog = program(kWhen, policy_.when);
  lua::RunResult r;
  bool explicit_result = false;
  bool result = false;
  if (prog.then_style) {
    lua_.set_global("__go", Value(0.0));
    r = lua_.run(prog.chunk);
    if (r.ok) {
      explicit_result = true;
      result = lua_.get_global("__go").to_number().value_or(0.0) == 1.0;
    }
  } else {
    r = lua_.run(prog.chunk);
    if (r.ok) {
      if (!r.values.empty() && r.values[0].is_bool()) {
        explicit_result = true;
        result = r.values[0].boolean();
      } else {
        const Value go = lua_.get_global("go");
        if (go.is_number()) {
          explicit_result = true;
          result = go.number() == 1.0;
        }
      }
    }
  }
  if (!r.ok) {
    ++hook_errors_;
    last_error_ = r.error;
    MANTLE_LOG_WARN("mantle when hook failed: %s", r.error.c_str());
    note_hook(kWhen, true);
    return false;
  }

  // A combined hook may have filled targets directly (Listings 1-2 style).
  const std::uint64_t errs = hook_errors_;
  pending_targets_ =
      sanitize_targets(lua_.get_global("targets"), view.size(), "when",
                       hook_errors_, last_error_, sanitized_);
  for (const double x : pending_targets_)
    if (x > 0.0) when_filled_targets_ = true;
  note_hook(kWhen, hook_errors_ != errs);
  return explicit_result ? result : when_filled_targets_;
}

std::vector<double> MantleBalancer::where(const ClusterView& view) {
  obs::ScopedPhase prof(obs::ProfilePhase::HookEval);
  if (policy_.where.empty()) {
    // Combined when+where policy: reuse what the when hook computed.
    return pending_targets_;
  }
  if (view.size() == 0 || view.whoami < 0 ||
      static_cast<std::size_t>(view.whoami) >= view.size()) {
    ++hook_errors_;
    last_error_ = "where: whoami outside the cluster view";
    if (sanitized_ != nullptr) sanitized_->inc();
    return std::vector<double>(view.size(), 0.0);
  }
  bind_view(view);
  lua::RunResult r = lua_.run(program(kWhere, policy_.where).chunk);
  if (!r.ok) {
    ++hook_errors_;
    last_error_ = r.error;
    MANTLE_LOG_WARN("mantle where hook failed: %s", r.error.c_str());
    note_hook(kWhere, true);
    return std::vector<double>(view.size(), 0.0);
  }
  const std::uint64_t errs = hook_errors_;
  std::vector<double> out =
      sanitize_targets(lua_.get_global("targets"), view.size(), "where",
                       hook_errors_, last_error_, sanitized_);
  note_hook(kWhere, hook_errors_ != errs);
  return out;
}

std::vector<std::string> MantleBalancer::howmuch() const {
  obs::ScopedPhase prof(obs::ProfilePhase::HookEval);
  if (policy_.howmuch.empty()) return {"big_first"};
  lua::RunResult r = lua_.run(program(kHowmuch, policy_.howmuch).chunk);
  note_hook(kHowmuch, !r.ok);
  if (!r.ok || !r.first().is_table()) {
    if (!r.ok) {
      ++hook_errors_;
      last_error_ = r.error;
    }
    return {"big_first"};
  }
  std::vector<std::string> out;
  const lua::TablePtr t = r.first().table();
  const double len = t->length();
  for (double i = 1.0; i <= len; i += 1.0) {
    const Value v = t->get(Value(i));
    if (v.is_string()) out.push_back(v.str());
  }
  return out.empty() ? std::vector<std::string>{"big_first"} : out;
}

std::string MantleBalancer::inject(const std::string& key,
                                   const std::string& script) {
  MantlePolicy candidate = policy_;
  if (key == "mds_bal_metaload") candidate.metaload = script;
  else if (key == "mds_bal_mdsload") candidate.mdsload = script;
  else if (key == "mds_bal_when") candidate.when = script;
  else if (key == "mds_bal_where") candidate.where = script;
  else if (key == "mds_bal_howmuch") candidate.howmuch = script;
  else return "unknown policy key: " + key;

  const std::string err = validate_policy(candidate, opt_.budget);
  if (!err.empty()) return err;
  policy_ = std::move(candidate);
  // Invalidate the cached program for the replaced hook right away: the
  // next tick runs the new code (counted as a recompile, traced as a
  // policy-recompile event). Unchanged hooks stay cached.
  compile_policy();
  return "";
}

std::string validate_policy(const MantlePolicy& policy, std::uint64_t budget) {
  // 1. Syntax: every hook must at least parse in its evaluation form.
  auto check_hook = [&](const char* name, const std::string& src,
                        bool allow_then) -> std::string {
    if (src.empty()) return "";
    if (is_expression(src)) return "";
    std::string body = src;
    if (allow_then && ends_with_then(src)) body += " __go = 1 end";
    const std::string err = lua::check_syntax(body, name);
    if (!err.empty()) return std::string(name) + ": " + err;
    return "";
  };
  for (const auto& [name, src, allow_then] :
       {std::tuple<const char*, const std::string&, bool>{"mds_bal_metaload", policy.metaload, false},
        {"mds_bal_mdsload", policy.mdsload, false},
        {"mds_bal_when", policy.when, true},
        {"mds_bal_where", policy.where, false},
        {"mds_bal_howmuch", policy.howmuch, false}}) {
    const std::string err = check_hook(name, src, allow_then);
    if (!err.empty()) return err;
  }

  // 2. Dry run against a synthetic 3-MDS view with a finite budget: this
  // is the "simulator that checks the logic before injecting policies"
  // from §4.4 — `while 1 do end` fails here, not on the live MDS.
  // Expected-failure probes should not spam the log.
  struct LogSilencer {
    LogLevel prev = Log::level();
    LogSilencer() { Log::set_level(LogLevel::Error); }
    ~LogSilencer() { Log::set_level(prev); }
  } silence;
  MantleBalancer::Options opt;
  opt.budget = budget;
  MantleBalancer probe(policy, opt);

  PopSnapshot pop{10.0, 20.0, 5.0, 2.0, 1.0};
  probe.metaload(pop);

  ClusterView view;
  view.whoami = 0;
  view.now = mantle::kSec;
  view.mdss.resize(3);
  for (int i = 0; i < 3; ++i) {
    HeartbeatPayload& hb = view.mdss[static_cast<std::size_t>(i)];
    hb.rank = i;
    hb.auth_metaload = i == 0 ? 100.0 : 0.0;
    hb.all_metaload = i == 0 ? 120.0 : 0.0;
    hb.cpu_pct = i == 0 ? 90.0 : 5.0;
    hb.mem_pct = 10.0;
    hb.queue_len = i == 0 ? 12.0 : 0.0;
    hb.req_rate = i == 0 ? 4000.0 : 0.0;
  }
  view.loads.resize(3);
  for (std::size_t i = 0; i < 3; ++i)
    view.loads[i] = probe.mdsload(view.mdss[i]);
  view.total_load = view.loads[0] + view.loads[1] + view.loads[2];

  // Exercise when/where from each rank's perspective, twice (stateful
  // policies like Fill & Spill take several iterations to act).
  for (int round = 0; round < 4; ++round) {
    for (int who = 0; who < 3; ++who) {
      view.whoami = who;
      if (probe.when(view)) probe.where(view);
    }
  }
  probe.howmuch();

  if (probe.hook_errors() > 0) return probe.last_error();
  return "";
}

// ===========================================================================
// The paper's policies as Mantle scripts
// ===========================================================================

namespace scripts {

MantlePolicy original() {
  MantlePolicy p;
  p.metaload = "IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE";
  p.mdsload =
      "0.8*MDSs[i][\"auth\"] + 0.2*MDSs[i][\"all\"]"
      " + MDSs[i][\"req\"] + 10*MDSs[i][\"q\"]";
  p.when = "if MDSs[whoami][\"load\"] > total/#MDSs then";
  p.where = R"lua(
-- Partition the cluster into importers/exporters around the mean and send
-- my excess toward each importer's deficit (the ~20-line original "where").
avg = total/#MDSs
myload = MDSs[whoami]["load"]
excess = myload - avg
deficit = 0
for i=1,#MDSs do
  if i ~= whoami and MDSs[i]["load"] < avg then
    deficit = deficit + (avg - MDSs[i]["load"])
  end
end
if excess > 0 and deficit > 0 then
  for i=1,#MDSs do
    if i ~= whoami and MDSs[i]["load"] < avg then
      targets[i] = excess * (avg - MDSs[i]["load"]) / deficit
    end
  end
end
)lua";
  p.howmuch = "{\"big_first\"}";
  return p;
}

MantlePolicy greedy_spill() {
  MantlePolicy p;
  // Listing 1, with an explicit existence guard on the right neighbour
  // (in the paper the bare nil index simply errors on the last MDS, which
  // Mantle treats as "no migration"; the guard keeps the log clean).
  p.metaload = "IWR";
  p.mdsload = "MDSs[i][\"all\"]";
  p.when = R"lua(
-- When policy
if MDSs[whoami+1] ~= nil and MDSs[whoami]["load"]>.01 and
   MDSs[whoami+1]["load"]<.01 then
-- Where policy
targets[whoami+1]=allmetaload/2
end
)lua";
  p.howmuch = "{\"half\"}";
  return p;
}

MantlePolicy greedy_spill_even() {
  MantlePolicy p;
  p.metaload = "IWR";
  p.mdsload = "MDSs[i][\"all\"]";
  // Listing 2 with the walk-down loop's comparison as described in the
  // text (walk past loaded nodes toward an empty one); see EXPERIMENTS.md.
  p.when = R"lua(
t=((#MDSs-whoami+1)/2)+whoami
if t ~= math.floor(t) then t=whoami end
if t>#MDSs then t=whoami end
while t~=whoami and MDSs[t]["load"]>=.01 do t=t-1 end
if t~=whoami and MDSs[whoami]["load"]>.01 and MDSs[t]["load"]<.01 then
  targets[t]=MDSs[whoami]["load"]/2
end
)lua";
  p.howmuch = "{\"half\"}";
  return p;
}

MantlePolicy fill_and_spill(double cpu_threshold, double spill_fraction) {
  MantlePolicy p;
  p.metaload = "IRD + IWR";
  p.mdsload = "MDSs[i][\"all\"]";
  char buf[512];
  // Listing 3 counts *down* from persistent state, but the state slot
  // starts at 0, which would spill on the very first overloaded tick
  // instead of after the advertised "3 straight iterations". Counting the
  // streak *up* from 0 arms the full hold from a cold start and after
  // every cool tick (matches builtin::FillSpillBalancer).
  std::snprintf(buf, sizeof(buf), R"lua(
-- When policy (Listing 3)
streak=RDState(); go = 0;
if MDSs[whoami]["cpu"]>%g then
  if streak<2 then WRState(streak+1)
  else WRState(0); go=1; end
else WRState(0) end
if go==1 and MDSs[whoami+1] ~= nil then
-- Where policy
targets[whoami+1] = MDSs[whoami]["load"]*%g
end
)lua",
                cpu_threshold, spill_fraction);
  p.when = buf;
  p.howmuch = "{\"small_first\"}";
  return p;
}

MantlePolicy adaptable() {
  MantlePolicy p;
  // Listing 4. As printed the listing assigns `max=0`, which shadows the
  // env function max() and would fault on the next line in real Lua; the
  // accumulator is renamed `m` here.
  p.metaload = "IWR + IRD";
  p.mdsload = "MDSs[i][\"all\"]";
  p.when = R"lua(
m=0
for i=1,#MDSs do
  m = max(MDSs[i]["load"], m)
end
myLoad = MDSs[whoami]["load"]
if myLoad>total/2 and myLoad>=m then
  targetLoad=total/#MDSs
  for i=1,#MDSs do
    if i~=whoami and MDSs[i]["load"]<targetLoad then
      targets[i]=targetLoad-MDSs[i]["load"]
    end
  end
end
)lua";
  p.howmuch = "{\"half\",\"small\",\"big\",\"big_small\"}";
  return p;
}

}  // namespace scripts

}  // namespace mantle::core
