#pragma once

#include <array>

#include "common/decay_counter.hpp"

/// \file pop.hpp
/// Popularity vectors: the per-dirfrag/per-directory metadata counters the
/// paper's balancers consume. Five op classes, matching the Mantle
/// environment (Table 2): inode reads, inode writes, readdirs, dirfrag
/// fetches, dirfrag stores. The default CephFS metadata load is
/// IRD + 2*IWR + READDIR + 2*FETCH + 4*STORE over these decayed counters.

namespace mantle::mds {

enum class MetaOp : int {
  IRD = 0,      // inode read (lookup/getattr/open-for-read)
  IWR = 1,      // inode write (create/setattr/unlink)
  READDIR = 2,  // directory listing
  FETCH = 3,    // dirfrag fetched from the object store
  STORE = 4,    // dirfrag flushed to the object store
};
inline constexpr int kNumMetaOps = 5;

class PopVector {
 public:
  void hit(MetaOp op, Time now, const DecayRate& rate, double delta = 1.0) {
    counters_[static_cast<int>(op)].hit(now, rate, delta);
  }

  double get(MetaOp op, Time now, const DecayRate& rate) const {
    return counters_[static_cast<int>(op)].get(now, rate);
  }

  /// CephFS's hard-coded scalarization (Table 1, "metaload" row):
  /// ird + 2*iwr + readdir + 2*fetch + 4*store.
  double cephfs_metaload(Time now, const DecayRate& rate) const {
    return get(MetaOp::IRD, now, rate) + 2.0 * get(MetaOp::IWR, now, rate) +
           get(MetaOp::READDIR, now, rate) + 2.0 * get(MetaOp::FETCH, now, rate) +
           4.0 * get(MetaOp::STORE, now, rate);
  }

  /// Scale every counter at `now` (decays first; see DecayCounter::scale).
  void scale(Time now, const DecayRate& rate, double f) {
    for (auto& c : counters_) c.scale(now, rate, f);
  }

  /// Apply pending decay on all counters up to `now` so that scale() and
  /// merge() operate on values from the same instant.
  void sync(Time now, const DecayRate& rate) const {
    for (const auto& c : counters_) c.get(now, rate);
  }

  /// Fold another vector in; both must have been decayed to the same time
  /// (call get() on each counter first if unsure).
  void merge(const PopVector& other) {
    for (int i = 0; i < kNumMetaOps; ++i) counters_[i].merge(other.counters_[i]);
  }

  void reset(Time now) {
    for (auto& c : counters_) c.reset(now);
  }

 private:
  std::array<DecayCounter, kNumMetaOps> counters_;
};

}  // namespace mantle::mds
