#include "mds/namespace.hpp"

#include <algorithm>

namespace mantle::mds {

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : path) {
    if (c == '/') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

const DirFrag& Dir::pick_frag(std::uint32_t hash) const {
  // Leaves partition the hash space; the covering leaf is the greatest one
  // whose value does not exceed the hash.
  auto it = frags.upper_bound(frag_t(hash, 32));
  if (it != frags.begin()) --it;
  return it->second;
}

DirFrag& Dir::pick_frag(std::uint32_t hash) {
  auto it = frags.upper_bound(frag_t(hash, 32));
  if (it != frags.begin()) --it;
  return it->second;
}

Namespace::Namespace(DecayRate rate) : rate_(rate) {
  Inode root;
  root.id = kRootInode;
  root.parent = kNoInode;
  root.name = "";
  root.is_dir = true;
  inodes_[kRootInode] = root;

  Dir d;
  d.ino = kRootInode;
  DirFrag f;
  f.frag = frag_t();
  d.frags[frag_t()] = std::move(f);
  dirs_[kRootInode] = std::move(d);
}

InodeId Namespace::mkdir(InodeId parent, const std::string& name, Time now) {
  Dir* pd = dir(parent);
  if (pd == nullptr || name.empty()) return kNoInode;
  DirFrag& f = pd->pick_frag(hash_dentry_name(name));
  if (f.dentries.count(name) != 0) return kNoInode;

  const InodeId ino = alloc_ino();
  Inode node;
  node.id = ino;
  node.parent = parent;
  node.name = name;
  node.is_dir = true;
  node.ctime = now;
  inodes_[ino] = std::move(node);

  Dir d;
  d.ino = ino;
  DirFrag rootfrag;
  rootfrag.frag = frag_t();
  rootfrag.auth = f.auth;  // new directory starts on its parent's authority
  d.frags[frag_t()] = std::move(rootfrag);
  dirs_[ino] = std::move(d);

  f.dentries[name] = ino;
  f.dirty = true;
  children_dirs_[parent].push_back(ino);
  return ino;
}

InodeId Namespace::create(InodeId parent, const std::string& name, Time now) {
  Dir* pd = dir(parent);
  if (pd == nullptr || name.empty()) return kNoInode;
  DirFrag& f = pd->pick_frag(hash_dentry_name(name));
  if (f.dentries.count(name) != 0) return kNoInode;

  const InodeId ino = alloc_ino();
  Inode node;
  node.id = ino;
  node.parent = parent;
  node.name = name;
  node.is_dir = false;
  node.ctime = now;
  inodes_[ino] = std::move(node);

  f.dentries[name] = ino;
  f.dirty = true;
  return ino;
}

bool Namespace::remove(InodeId parent, const std::string& name) {
  Dir* pd = dir(parent);
  if (pd == nullptr) return false;
  DirFrag& f = pd->pick_frag(hash_dentry_name(name));
  const auto it = f.dentries.find(name);
  if (it == f.dentries.end()) return false;
  const InodeId ino = it->second;
  const Inode& node = inodes_.at(ino);
  if (node.is_dir) {
    const Dir& d = dirs_.at(ino);
    if (d.num_entries() != 0) return false;  // only empty dirs are removable
    dirs_.erase(ino);
    auto& siblings = children_dirs_[parent];
    siblings.erase(std::remove(siblings.begin(), siblings.end(), ino),
                   siblings.end());
    children_dirs_.erase(ino);
  }
  inodes_.erase(ino);
  f.dentries.erase(it);
  f.dirty = true;
  return true;
}

bool Namespace::rename(InodeId src_dir, const std::string& src_name,
                       InodeId dst_dir, const std::string& dst_name) {
  Dir* sd = dir(src_dir);
  Dir* dd = dir(dst_dir);
  if (sd == nullptr || dd == nullptr || dst_name.empty()) return false;
  DirFrag& sf = sd->pick_frag(hash_dentry_name(src_name));
  const auto it = sf.dentries.find(src_name);
  if (it == sf.dentries.end()) return false;
  const InodeId moving = it->second;
  DirFrag& df = dd->pick_frag(hash_dentry_name(dst_name));
  if (df.dentries.count(dst_name) != 0) return false;

  Inode& node = inodes_.at(moving);
  if (node.is_dir) {
    // Reject cycles: the destination must not live inside the subtree
    // being moved (includes renaming a directory into itself).
    InodeId cur = dst_dir;
    while (cur != kNoInode) {
      if (cur == moving) return false;
      const auto pit = inodes_.find(cur);
      if (pit == inodes_.end()) break;
      cur = pit->second.parent;
    }
  }

  sf.dentries.erase(it);
  sf.dirty = true;
  df.dentries[dst_name] = moving;
  df.dirty = true;
  if (node.is_dir && src_dir != dst_dir) {
    auto& old_sibs = children_dirs_[src_dir];
    old_sibs.erase(std::remove(old_sibs.begin(), old_sibs.end(), moving),
                   old_sibs.end());
    children_dirs_[dst_dir].push_back(moving);
  }
  node.parent = dst_dir;
  node.name = dst_name;
  return true;
}

Resolution Namespace::resolve(const std::string& path) const {
  Resolution r;
  const std::vector<std::string> parts = split_path(path);
  InodeId cur = kRootInode;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const Dir* d = dir(cur);
    if (d == nullptr) {
      r.missing_at = i;
      return r;
    }
    const DirFrag& f = d->pick_frag(hash_dentry_name(parts[i]));
    r.steps.push_back({DirFragId{cur, f.frag}, parts[i]});
    const auto it = f.dentries.find(parts[i]);
    if (it == f.dentries.end()) {
      r.missing_at = i;
      return r;
    }
    cur = it->second;
  }
  r.found = true;
  r.ino = cur;
  const auto it = inodes_.find(cur);
  r.is_dir = it != inodes_.end() && it->second.is_dir;
  return r;
}

InodeId Namespace::lookup(InodeId dirino, const std::string& name) const {
  const Dir* d = dir(dirino);
  if (d == nullptr) return kNoInode;
  const DirFrag& f = d->pick_frag(hash_dentry_name(name));
  const auto it = f.dentries.find(name);
  return it == f.dentries.end() ? kNoInode : it->second;
}

std::vector<std::string> Namespace::readdir(InodeId dirino) const {
  std::vector<std::string> out;
  const Dir* d = dir(dirino);
  if (d == nullptr) return out;
  for (const auto& [frag, df] : d->frags)
    for (const auto& [name, ino] : df.dentries) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

const Inode* Namespace::inode(InodeId ino) const {
  const auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : &it->second;
}

Dir* Namespace::dir(InodeId ino) {
  const auto it = dirs_.find(ino);
  return it == dirs_.end() ? nullptr : &it->second;
}

const Dir* Namespace::dir(InodeId ino) const {
  const auto it = dirs_.find(ino);
  return it == dirs_.end() ? nullptr : &it->second;
}

DirFrag* Namespace::frag(const DirFragId& id) {
  Dir* d = dir(id.ino);
  if (d == nullptr) return nullptr;
  const auto it = d->frags.find(id.frag);
  return it == d->frags.end() ? nullptr : &it->second;
}

const DirFrag* Namespace::frag(const DirFragId& id) const {
  const Dir* d = dir(id.ino);
  if (d == nullptr) return nullptr;
  const auto it = d->frags.find(id.frag);
  return it == d->frags.end() ? nullptr : &it->second;
}

std::string Namespace::path_of(InodeId ino) const {
  if (ino == kRootInode) return "/";
  std::vector<const std::string*> parts;
  InodeId cur = ino;
  while (cur != kRootInode && cur != kNoInode) {
    const auto it = inodes_.find(cur);
    if (it == inodes_.end()) return "<unlinked>";
    parts.push_back(&it->second.name);
    cur = it->second.parent;
  }
  std::string out;
  for (auto rit = parts.rbegin(); rit != parts.rend(); ++rit) {
    out += '/';
    out += **rit;
  }
  return out;
}

DirFragId Namespace::frag_of(InodeId dirino, const std::string& name) const {
  const Dir* d = dir(dirino);
  if (d == nullptr) return {};
  return {dirino, d->pick_frag(hash_dentry_name(name)).frag};
}

void Namespace::record_op(const DirFragId& where, MetaOp op, Time now) {
  DirFrag* f = frag(where);
  if (f == nullptr) return;
  f->pop.hit(op, now, rate_);
  // Hierarchical heat: every ancestor directory (including this one)
  // accumulates the op in its nested counters.
  InodeId cur = where.ino;
  while (cur != kNoInode) {
    const auto dit = dirs_.find(cur);
    if (dit == dirs_.end()) break;
    dit->second.pop_nested.hit(op, now, rate_);
    const auto iit = inodes_.find(cur);
    if (iit == inodes_.end()) break;
    cur = iit->second.parent;
  }
}

double Namespace::frag_pop(const DirFragId& id, MetaOp op, Time now) const {
  const DirFrag* f = frag(id);
  return f == nullptr ? 0.0 : f->pop.get(op, now, rate_);
}

double Namespace::nested_pop(InodeId dirino, MetaOp op, Time now) const {
  const Dir* d = dir(dirino);
  return d == nullptr ? 0.0 : d->pop_nested.get(op, now, rate_);
}

std::vector<frag_t> Namespace::split(const DirFragId& id, std::uint8_t bits,
                                     Time now) {
  std::vector<frag_t> out;
  Dir* d = dir(id.ino);
  if (d == nullptr || bits == 0) return out;
  const auto it = d->frags.find(id.frag);
  if (it == d->frags.end()) return out;
  if (it->second.frag.bits() + bits > 24) return out;  // fragtree depth cap

  DirFrag parent = std::move(it->second);
  d->frags.erase(it);

  const std::uint32_t n = 1u << bits;
  const double share = 1.0 / static_cast<double>(n);
  std::vector<DirFrag*> kids;
  for (std::uint32_t i = 0; i < n; ++i) {
    const frag_t cf = parent.frag.child(i, bits);
    DirFrag child;
    child.frag = cf;
    child.auth = parent.auth;
    child.dirty = parent.dirty;
    // Each child inherits a proportional share of the parent's heat so the
    // balancer's view stays continuous across a split.
    child.pop = parent.pop;
    child.pop.scale(now, rate_, share);
    auto [kit, inserted] = d->frags.emplace(cf, std::move(child));
    kids.push_back(&kit->second);
    out.push_back(cf);
  }
  for (auto& [name, ino] : parent.dentries) {
    const std::uint32_t h = hash_dentry_name(name);
    for (DirFrag* k : kids) {
      if (k->frag.contains(h)) {
        k->dentries.emplace(name, ino);
        break;
      }
    }
  }
  return out;
}

bool Namespace::merge(InodeId dirino, frag_t parent_frag, Time now) {
  Dir* d = dir(dirino);
  if (d == nullptr) return false;
  DirFrag merged;
  merged.frag = parent_frag;
  bool any = false;
  for (auto it = d->frags.begin(); it != d->frags.end();) {
    if (parent_frag.contains(it->second.frag) &&
        it->second.frag != parent_frag) {
      any = true;
      DirFrag& child = it->second;
      merged.dentries.insert(child.dentries.begin(), child.dentries.end());
      child.pop.sync(now, rate_);
      merged.pop.sync(now, rate_);
      merged.pop.merge(child.pop);
      merged.auth = child.auth;  // callers merge only within one authority
      merged.dirty = merged.dirty || child.dirty;
      it = d->frags.erase(it);
    } else {
      ++it;
    }
  }
  if (!any) return false;
  d->frags.emplace(parent_frag, std::move(merged));
  return true;
}

std::vector<InodeId> Namespace::subtree_dirs(InodeId dirino) const {
  std::vector<InodeId> out;
  std::vector<InodeId> stack{dirino};
  while (!stack.empty()) {
    const InodeId cur = stack.back();
    stack.pop_back();
    if (dirs_.count(cur) == 0) continue;
    out.push_back(cur);
    const auto it = children_dirs_.find(cur);
    if (it != children_dirs_.end())
      for (const InodeId child : it->second) stack.push_back(child);
  }
  return out;
}

std::size_t Namespace::subtree_entries(InodeId dirino) const {
  std::size_t n = 0;
  for (const InodeId d : subtree_dirs(dirino)) n += dirs_.at(d).num_entries();
  return n;
}

}  // namespace mantle::mds
