#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "mds/pop.hpp"
#include "mds/types.hpp"

/// \file namespace.hpp
/// The hierarchical namespace: inodes, dentries, directories and their
/// fragments. This is the *mechanism* layer of dynamic subtree
/// partitioning — it knows how to resolve paths, how to split and merge
/// dirfrags, and how to account popularity, but nothing about policies,
/// authority or migration (those live in the cluster layer).
///
/// In CephFS the namespace is "kept in the collective memory of the MDS
/// cluster"; the simulator keeps one ground-truth Namespace that all
/// simulated MDS nodes operate on, with per-dirfrag authority annotations
/// deciding which node is allowed to serve which part.

namespace mantle::mds {

struct Inode {
  InodeId id = kNoInode;
  InodeId parent = kNoInode;  // parent directory inode
  std::string name;           // dentry name under the parent
  bool is_dir = false;
  Time ctime = 0;
};

/// One fragment of one directory: the unit of authority and migration.
struct DirFrag {
  frag_t frag;
  std::map<std::string, InodeId> dentries;  // names whose hash lands here
  PopVector pop;                            // ops directly on this fragment
  MdsRank auth = kNoRank;                   // maintained by the cluster layer
  bool dirty = false;                       // needs a STORE before eviction
};

/// A directory: a set of leaf fragments partitioning the dentry-hash
/// space, plus the hierarchically accumulated popularity that the
/// balancer reads ("counters are stored in the directories and updated
/// whenever a namespace operation hits that directory or its children").
struct Dir {
  InodeId ino = kNoInode;
  std::map<frag_t, DirFrag> frags;
  PopVector pop_nested;  // this dir plus all descendants

  std::size_t num_entries() const {
    std::size_t n = 0;
    for (const auto& [f, df] : frags) n += df.dentries.size();
    return n;
  }

  /// The leaf fragment covering a dentry hash.
  const DirFrag& pick_frag(std::uint32_t hash) const;
  DirFrag& pick_frag(std::uint32_t hash);
};

/// One hop of a path traversal: the dirfrag that was consulted to resolve
/// a component. The cluster layer uses these to route, count forwards, and
/// charge per-hop work.
struct ResolveStep {
  DirFragId frag;
  std::string component;
};

struct Resolution {
  bool found = false;
  InodeId ino = kNoInode;  // final inode when found
  bool is_dir = false;
  std::vector<ResolveStep> steps;
  std::size_t missing_at = 0;  // index into steps of the failing component
};

class Namespace {
 public:
  explicit Namespace(DecayRate rate = DecayRate(5.0));

  InodeId root() const { return kRootInode; }
  const DecayRate& decay_rate() const { return rate_; }

  // -- Mutation (mechanism only; callers record the MetaOps) ---------------
  /// Create a directory under `parent`; returns its inode id or kNoInode if
  /// the name exists or `parent` is not a directory.
  InodeId mkdir(InodeId parent, const std::string& name, Time now);

  /// Create a file; same contract as mkdir.
  InodeId create(InodeId parent, const std::string& name, Time now);

  /// Remove a dentry (file or *empty* directory). False on failure.
  bool remove(InodeId parent, const std::string& name);

  /// Move a dentry (file or whole directory subtree) to a new parent
  /// and/or name. Fails when the source is missing, the destination
  /// exists, either directory is invalid, or the move would create a
  /// cycle (destination inside the moved subtree).
  bool rename(InodeId src_dir, const std::string& src_name, InodeId dst_dir,
              const std::string& dst_name);

  // -- Lookup ---------------------------------------------------------------
  /// Resolve an absolute path ("/a/b/c"). Always fills `steps` for every
  /// component consulted, even when resolution fails partway.
  Resolution resolve(const std::string& path) const;

  /// Resolve one component under a directory.
  InodeId lookup(InodeId dir, const std::string& name) const;

  /// All dentry names in a directory (across fragments, sorted).
  std::vector<std::string> readdir(InodeId dir) const;

  // -- Accessors -------------------------------------------------------------
  const Inode* inode(InodeId ino) const;
  Dir* dir(InodeId ino);
  const Dir* dir(InodeId ino) const;
  DirFrag* frag(const DirFragId& id);
  const DirFrag* frag(const DirFragId& id) const;

  /// Absolute path of an inode (for diagnostics and heat maps).
  std::string path_of(InodeId ino) const;

  /// Which dirfrag holds the dentry `name` under `dir`.
  DirFragId frag_of(InodeId dir, const std::string& name) const;

  // -- Popularity -------------------------------------------------------------
  /// Record an op on a dirfrag: bumps the fragment's own counters and the
  /// nested counters of every ancestor directory (the hierarchical heat of
  /// the paper's Figure 1).
  void record_op(const DirFragId& where, MetaOp op, Time now);

  /// Decayed op count directly on a fragment.
  double frag_pop(const DirFragId& id, MetaOp op, Time now) const;

  /// Decayed nested op count for a directory subtree.
  double nested_pop(InodeId dir, MetaOp op, Time now) const;

  // -- Fragmentation mechanism -------------------------------------------------
  /// Split a leaf fragment into 2^bits children. Dentries are
  /// redistributed by hash; heat is split proportionally; children inherit
  /// the parent fragment's authority. Returns the new fragments.
  std::vector<frag_t> split(const DirFragId& id, std::uint8_t bits, Time now);

  /// Merge all leaves under `parent_frag` back into it. False if the
  /// directory has no leaves strictly under parent_frag.
  bool merge(InodeId dir, frag_t parent_frag, Time now);

  // -- Introspection -------------------------------------------------------------
  std::size_t num_inodes() const { return inodes_.size(); }
  std::size_t num_dirs() const { return dirs_.size(); }

  /// Inodes of every directory in the subtree rooted at `dir` (inclusive),
  /// preorder. Used by migration size accounting and the heat map harness.
  std::vector<InodeId> subtree_dirs(InodeId dir) const;

  /// Total dentries in the subtree rooted at `dir`.
  std::size_t subtree_entries(InodeId dir) const;

 private:
  InodeId alloc_ino() { return next_ino_++; }

  DecayRate rate_;
  InodeId next_ino_ = kRootInode + 1;
  std::unordered_map<InodeId, Inode> inodes_;
  std::unordered_map<InodeId, Dir> dirs_;
  std::unordered_map<InodeId, std::vector<InodeId>> children_dirs_;
};

/// Split an absolute path into components; leading/trailing/duplicate
/// slashes are tolerated.
std::vector<std::string> split_path(const std::string& path);

}  // namespace mantle::mds
