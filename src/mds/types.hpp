#pragma once

#include <compare>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

/// \file types.hpp
/// Core identifiers for the metadata service: inode numbers, directory
/// fragments (Ceph's frag_t), and the (inode, frag) pair that is the unit
/// of authority and migration in dynamic subtree partitioning.

namespace mantle::mds {

using InodeId = std::uint64_t;
inline constexpr InodeId kNoInode = 0;
inline constexpr InodeId kRootInode = 1;

/// MDS rank within the cluster (0-based); -1 = unknown/none.
using MdsRank = int;
inline constexpr MdsRank kNoRank = -1;

/// 32-bit FNV-1a hash with a murmur-style avalanche finalizer, used to
/// place dentry names into dirfrags. The finalizer matters: dirfrags
/// partition the hash space by *prefix bits*, and plain FNV-1a over
/// sequential names ("f0", "f1", ...) is badly skewed in its high bits,
/// which would make "ship half the dirfrags" ship much more or less than
/// half the load.
constexpr std::uint32_t hash_dentry_name(std::string_view name) noexcept {
  std::uint32_t h = 2166136261u;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619u;
  }
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}

/// A directory fragment descriptor, modelled on Ceph's frag_t: a prefix of
/// the 32-bit dentry-hash space. `bits` leading bits of `value` identify
/// the fragment; bits == 0 is the whole directory (the root fragment).
/// Splitting by n bits yields 2^n children, exactly the GIGA+-equivalent
/// mechanism the paper describes ("the first iteration fragments into
/// 2^3 = 8 dirfrags").
class frag_t {
 public:
  constexpr frag_t() = default;  // root fragment: everything
  constexpr frag_t(std::uint32_t value, std::uint8_t bits)
      : value_(bits == 0 ? 0 : (value & mask(bits))), bits_(bits) {}

  constexpr std::uint32_t value() const { return value_; }
  constexpr std::uint8_t bits() const { return bits_; }
  constexpr bool is_root() const { return bits_ == 0; }

  /// Does this fragment cover the given dentry hash?
  constexpr bool contains(std::uint32_t hash) const {
    return bits_ == 0 || ((hash & mask(bits_)) == value_);
  }

  /// Does this fragment fully contain another (equal or ancestor of it)?
  constexpr bool contains(frag_t other) const {
    return bits_ <= other.bits_ && other.contains_prefix(value_, bits_);
  }

  /// The i-th child after splitting this fragment by `nbits` more bits.
  constexpr frag_t child(std::uint32_t i, std::uint8_t nbits) const {
    return frag_t(value_ | (i << (32 - bits_ - nbits)),
                  static_cast<std::uint8_t>(bits_ + nbits));
  }

  /// The fragment `nbits` levels up; nbits must be <= bits().
  constexpr frag_t parent(std::uint8_t nbits = 1) const {
    const auto b = static_cast<std::uint8_t>(bits_ - nbits);
    return frag_t(b == 0 ? 0 : (value_ & mask(b)), b);
  }

  /// Which sibling index this fragment has under parent(nbits).
  constexpr std::uint32_t index_under_parent(std::uint8_t nbits = 1) const {
    return (value_ >> (32 - bits_)) & ((1u << nbits) - 1u);
  }

  constexpr auto operator<=>(const frag_t&) const = default;

  std::string str() const {
    // Matches Ceph's "value/bits" rendering, e.g. "0x80000000/1".
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%08x/%u", value_, bits_);
    return buf;
  }

 private:
  constexpr bool contains_prefix(std::uint32_t value, std::uint8_t bits) const {
    return bits == 0 || ((value_ & mask(bits)) == value);
  }
  static constexpr std::uint32_t mask(std::uint8_t bits) {
    return bits == 0 ? 0u : (~0u << (32 - bits));
  }

  std::uint32_t value_ = 0;
  std::uint8_t bits_ = 0;
};

/// The unit of authority, load accounting and migration.
struct DirFragId {
  InodeId ino = kNoInode;
  frag_t frag;

  constexpr auto operator<=>(const DirFragId&) const = default;

  std::string str() const {
    return std::to_string(ino) + "." + frag.str();
  }
};

}  // namespace mantle::mds
