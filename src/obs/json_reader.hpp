// Minimal JSON reader shared by the offline analyzers (analyze.cpp,
// provenance.cpp, safety/whatif.cpp): just enough for the dumps this
// layer itself emits (objects, arrays, strings with the escapes
// json_escape produces, numbers, true/false/null). Malformed input
// yields as much as could be parsed rather than an exception, so
// truncated dumps still analyze. Header-only; lives in a `jsonr`
// sub-namespace to keep it out of the public obs surface.
#pragma once

#include <cctype>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace mantle::obs::jsonr {

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object } type =
      Type::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;  // insertion order

  const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& s) : s_(s) {}

  JsonValue parse() {
    JsonValue v;
    skip_ws();
    parse_value(v);
    return v;
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_])) != 0)
      ++i_;
  }
  bool eat(char c) {
    skip_ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (i_ >= s_.size()) return false;
    const char c = s_[i_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.type = JsonValue::Type::String;
      return parse_string(out.str);
    }
    if (s_.compare(i_, 4, "true") == 0) {
      out.type = JsonValue::Type::Bool;
      out.b = true;
      i_ += 4;
      return true;
    }
    if (s_.compare(i_, 5, "false") == 0) {
      out.type = JsonValue::Type::Bool;
      i_ += 5;
      return true;
    }
    if (s_.compare(i_, 4, "null") == 0) {
      i_ += 4;
      return true;
    }
    return parse_number(out);
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::Object;
    if (!eat('{')) return false;
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      if (!eat(':')) return false;
      JsonValue v;
      if (!parse_value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::Array;
    if (!eat('[')) return false;
    if (eat(']')) return true;
    while (true) {
      JsonValue v;
      if (!parse_value(v)) return false;
      out.arr.push_back(std::move(v));
      if (eat(',')) continue;
      return eat(']');
    }
  }

  bool parse_string(std::string& out) {
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    ++i_;
    while (i_ < s_.size()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (c == '\\' && i_ < s_.size()) {
        const char e = s_[i_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            // json_escape only emits \u00XX for control bytes.
            if (i_ + 4 <= s_.size()) {
              out += static_cast<char>(
                  std::strtoul(s_.substr(i_, 4).c_str(), nullptr, 16));
              i_ += 4;
            }
            break;
          default: out += e; break;
        }
      } else {
        out += c;
      }
    }
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
            s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.' || s_[i_] == 'e' ||
            s_[i_] == 'E'))
      ++i_;
    if (i_ == start) return false;
    out.type = JsonValue::Type::Number;
    out.num = std::strtod(s_.substr(start, i_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace mantle::obs::jsonr
