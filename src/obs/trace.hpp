#pragma once

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"

/// \file trace.hpp
/// The tracing half of the observability layer: a bounded, append-only
/// sink of typed events with *simulated* timestamps. Everything an
/// operator would want on a timeline when debugging a balancing run goes
/// through here — heartbeat traffic, the when/where/howmuch decisions
/// with their inputs and outputs, the 2PC export phases, dirfrag
/// split/merge, crash/takeover/replay, dead-letter parking and fault
/// injections. Because timestamps come from the discrete-event clock and
/// payloads are appended in dispatch order, two identical seeded runs
/// (faults included) serialize to byte-identical JSON.

namespace mantle::obs {

using mantle::Time;

enum class EventKind : int {
  HeartbeatSent = 0,
  HeartbeatReceived,
  HeartbeatDropped,
  HeartbeatDuplicated,
  WhenDecision,
  WhereDecision,
  HowmuchDecision,
  ExportStart,
  ExportCommit,
  ExportAbort,
  DirfragSplit,
  DirfragMerge,
  DeadLetterParked,
  DeadLetterFlushed,
  Crash,
  Restart,
  TakeoverStart,
  TakeoverComplete,
  ReplayComplete,
  FaultInjected,
};

const char* event_kind_name(EventKind kind);

/// One timeline entry. `rank` is the subject MDS, `peer` the other end
/// (importer, heartbeat receiver, takeover survivor, ...); -1 = n/a.
/// `detail` is a short deterministic string (dirfrag id, fault kind);
/// `fields` carries the numeric inputs/outputs of the event in
/// append order.
struct TraceEvent {
  Time at = 0;
  EventKind kind = EventKind::HeartbeatSent;
  int rank = -1;
  int peer = -1;
  std::string detail;
  std::vector<std::pair<std::string, double>> fields;
};

class TraceSink {
 public:
  /// `capacity` bounds memory on long runs; once full, new events are
  /// counted in dropped_events() instead of stored (the cap itself is
  /// deterministic, so bounded timelines still compare byte-for-byte).
  explicit TraceSink(std::size_t capacity = std::size_t{1} << 20)
      : capacity_(capacity) {}

  void record(TraceEvent ev);

  /// Convenience builder for call sites.
  void event(Time at, EventKind kind, int rank = -1, int peer = -1,
             std::string detail = {},
             std::initializer_list<std::pair<const char*, double>> fields = {});

  std::size_t size() const;
  std::uint64_t dropped_events() const;
  std::vector<TraceEvent> snapshot() const;

  /// The whole timeline as one JSON array of event objects.
  std::string to_json() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace mantle::obs
