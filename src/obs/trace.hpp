#pragma once

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"

/// \file trace.hpp
/// The tracing half of the observability layer: a bounded, append-only
/// sink of typed events with *simulated* timestamps. Everything an
/// operator would want on a timeline when debugging a balancing run goes
/// through here — heartbeat traffic, the when/where/howmuch decisions
/// with their inputs and outputs, the 2PC export phases, dirfrag
/// split/merge, crash/takeover/replay, dead-letter parking and fault
/// injections. Because timestamps come from the discrete-event clock and
/// payloads are appended in dispatch order, two identical seeded runs
/// (faults included) serialize to byte-identical JSON.
///
/// Events are *causal*: every client op, 2PC migration, balancer tick and
/// crash-recovery episode is assigned a monotonic span id (allocated from
/// this sink, so two identical runs number spans identically), and events
/// belonging to the same episode carry that id. `parent` links a span to
/// the span that caused it (a migration to the balancer tick that decided
/// it). to_perfetto() renders the same timeline in Chrome-trace JSON so a
/// dump opens in ui.perfetto.dev as one track per MDS rank.

namespace mantle::obs {

using mantle::Time;

enum class EventKind : int {
  HeartbeatSent = 0,
  HeartbeatReceived,
  HeartbeatDropped,
  HeartbeatDuplicated,
  WhenDecision,
  WhereDecision,
  HowmuchDecision,
  ExportStart,
  ExportCommit,
  ExportAbort,
  DirfragSplit,
  DirfragMerge,
  DeadLetterParked,
  DeadLetterFlushed,
  Crash,
  Restart,
  TakeoverStart,
  TakeoverComplete,
  ReplayComplete,
  FaultInjected,
  PolicyRecompile,
  ShadowVerdict,  ///< shadow evaluation accepted/rejected a candidate policy
  FuzzCrash,      ///< hook-input fuzzer found an invariant violation
  HeartbeatStaleRejected,  ///< stale-epoch/out-of-order heartbeat refused
  ExportRetry,             ///< aborted 2PC export re-attempted after backoff
  InvariantViolation,      ///< chaos invariant checker caught a violation
  ProvenanceRecorded,      ///< decision provenance record captured this tick
  // Keep kLastEventKind in sync when appending kinds.
};

inline constexpr EventKind kLastEventKind = EventKind::ProvenanceRecorded;

const char* event_kind_name(EventKind kind);

/// Span ids are positive; kNoSpan marks an event outside any span.
using SpanId = std::int64_t;
inline constexpr SpanId kNoSpan = -1;

/// One timeline entry. `rank` is the subject MDS, `peer` the other end
/// (importer, heartbeat receiver, takeover survivor, ...); -1 = n/a.
/// `detail` is a short deterministic string (dirfrag id, fault kind);
/// `fields` carries the numeric inputs/outputs of the event in
/// append order. `span` groups events of one causal episode (a client
/// op, a 2PC migration, a balancer tick, a crash-recovery sequence);
/// `parent` is the span that caused this one, if any.
struct TraceEvent {
  Time at = 0;
  EventKind kind = EventKind::HeartbeatSent;
  int rank = -1;
  int peer = -1;
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
  std::string detail;
  std::vector<std::pair<std::string, double>> fields;
};

class TraceSink {
 public:
  /// `capacity` bounds memory on long runs; once full, new events are
  /// counted in dropped_events() instead of stored (the cap itself is
  /// deterministic, so bounded timelines still compare byte-for-byte).
  explicit TraceSink(std::size_t capacity = std::size_t{1} << 20)
      : capacity_(capacity) {}

  /// Sharded mode: give each shard lane a private event buffer and a
  /// private span-id stream. Events recorded from shard lanes are
  /// buffered lock-free (one thread per shard) and folded into the main
  /// timeline by drain_shards() — called by the shard runtime at every
  /// epoch barrier, in fixed shard order, with the capacity bound and
  /// dropped accounting applied at drain time. That makes the stored
  /// timeline a pure function of the (config, seed, shard count)
  /// schedule, independent of how many worker threads ran it.
  ///
  /// Shard span ids live in disjoint ranges — shard s allocates
  /// ((s+1) << 44) | n — so they never collide with the serial-lane
  /// stream and stay deterministic without cross-shard coordination.
  void enable_sharding(int shards);
  /// Fold all shard buffers into the timeline (fixed shard order).
  void drain_shards();

  void record(TraceEvent ev);

  /// Convenience builder for call sites.
  void event(Time at, EventKind kind, int rank = -1, int peer = -1,
             std::string detail = {},
             std::initializer_list<std::pair<const char*, double>> fields = {},
             SpanId span = kNoSpan, SpanId parent = kNoSpan);

  /// Allocate the next causal span id. Allocation order follows event
  /// dispatch order, so identical seeded runs number spans identically.
  SpanId next_span();
  /// Spans allocated so far (equals the largest id handed out).
  std::uint64_t spans_allocated() const;

  std::size_t size() const;
  std::uint64_t dropped_events() const;
  std::vector<TraceEvent> snapshot() const;

  /// The whole timeline as one JSON array of event objects.
  std::string to_json() const;

  /// The timeline in Chrome-trace/Perfetto JSON: one track (tid) per MDS
  /// rank under a single "mantle" process, migrations as async
  /// begin/end pairs keyed by span id, everything else as instants.
  /// Open the dump directly in ui.perfetto.dev or chrome://tracing.
  ///
  /// The default (no profiler) output is a pure function of the
  /// recorded events and stays byte-identical across same-seed runs.
  /// Passing a Profiler additionally appends one wall-clock counter
  /// track per phase ("profile:<phase>") — that overload is for the
  /// opt-in MANTLE_PROFILE_DUMP side files only, never the
  /// deterministic dumps.
  std::string to_perfetto() const;
  std::string to_perfetto(const class Profiler* profiler) const;

  void clear();

 private:
  struct alignas(64) ShardLane {  // padded: lanes are written concurrently
    std::vector<TraceEvent> buffer;
    std::uint64_t spans = 0;  // local span counter for this shard's stream
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
  std::uint64_t next_span_ = 0;
  std::vector<ShardLane> lanes_;  // empty in classic serial mode
};

}  // namespace mantle::obs
