#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/metrics.hpp"  // format_metric_value

namespace mantle::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::HeartbeatSent: return "hb-sent";
    case EventKind::HeartbeatReceived: return "hb-received";
    case EventKind::HeartbeatDropped: return "hb-dropped";
    case EventKind::HeartbeatDuplicated: return "hb-duplicated";
    case EventKind::WhenDecision: return "when";
    case EventKind::WhereDecision: return "where";
    case EventKind::HowmuchDecision: return "howmuch";
    case EventKind::ExportStart: return "export-start";
    case EventKind::ExportCommit: return "export-commit";
    case EventKind::ExportAbort: return "export-abort";
    case EventKind::DirfragSplit: return "dirfrag-split";
    case EventKind::DirfragMerge: return "dirfrag-merge";
    case EventKind::DeadLetterParked: return "dead-letter-parked";
    case EventKind::DeadLetterFlushed: return "dead-letter-flushed";
    case EventKind::Crash: return "crash";
    case EventKind::Restart: return "restart";
    case EventKind::TakeoverStart: return "takeover-start";
    case EventKind::TakeoverComplete: return "takeover-complete";
    case EventKind::ReplayComplete: return "replay-complete";
    case EventKind::FaultInjected: return "fault-injected";
  }
  return "?";
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void TraceSink::record(TraceEvent ev) {
  std::lock_guard<std::mutex> lk(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void TraceSink::event(
    Time at, EventKind kind, int rank, int peer, std::string detail,
    std::initializer_list<std::pair<const char*, double>> fields) {
  TraceEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.rank = rank;
  ev.peer = peer;
  ev.detail = std::move(detail);
  ev.fields.reserve(fields.size());
  for (const auto& [k, v] : fields) ev.fields.emplace_back(k, v);
  record(std::move(ev));
}

std::size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

std::uint64_t TraceSink::dropped_events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

void TraceSink::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  events_.clear();
  dropped_ = 0;
}

std::string TraceSink::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "[";
  char buf[64];
  bool first_ev = true;
  for (const TraceEvent& ev : events_) {
    if (!first_ev) out += ",";
    first_ev = false;
    std::snprintf(buf, sizeof(buf), "%" PRIu64, ev.at);
    out += "{\"t_us\":";
    out += buf;
    out += ",\"kind\":\"";
    out += event_kind_name(ev.kind);
    out += "\"";
    if (ev.rank >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"rank\":%d", ev.rank);
      out += buf;
    }
    if (ev.peer >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"peer\":%d", ev.peer);
      out += buf;
    }
    if (!ev.detail.empty())
      out += ",\"detail\":\"" + json_escape(ev.detail) + "\"";
    if (!ev.fields.empty()) {
      out += ",\"fields\":{";
      bool first_f = true;
      for (const auto& [k, v] : ev.fields) {
        if (!first_f) out += ",";
        first_f = false;
        out += "\"" + json_escape(k) + "\":" + format_metric_value(v);
      }
      out += "}";
    }
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace mantle::obs
