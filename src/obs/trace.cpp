#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/lane.hpp"
#include "obs/metrics.hpp"  // format_metric_value
#include "obs/profile.hpp"

namespace mantle::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::HeartbeatSent: return "hb-sent";
    case EventKind::HeartbeatReceived: return "hb-received";
    case EventKind::HeartbeatDropped: return "hb-dropped";
    case EventKind::HeartbeatDuplicated: return "hb-duplicated";
    case EventKind::WhenDecision: return "when";
    case EventKind::WhereDecision: return "where";
    case EventKind::HowmuchDecision: return "howmuch";
    case EventKind::ExportStart: return "export-start";
    case EventKind::ExportCommit: return "export-commit";
    case EventKind::ExportAbort: return "export-abort";
    case EventKind::DirfragSplit: return "dirfrag-split";
    case EventKind::DirfragMerge: return "dirfrag-merge";
    case EventKind::DeadLetterParked: return "dead-letter-parked";
    case EventKind::DeadLetterFlushed: return "dead-letter-flushed";
    case EventKind::Crash: return "crash";
    case EventKind::Restart: return "restart";
    case EventKind::TakeoverStart: return "takeover-start";
    case EventKind::TakeoverComplete: return "takeover-complete";
    case EventKind::ReplayComplete: return "replay-complete";
    case EventKind::FaultInjected: return "fault-injected";
    case EventKind::PolicyRecompile: return "policy-recompile";
    case EventKind::ShadowVerdict: return "shadow-verdict";
    case EventKind::FuzzCrash: return "fuzz-crash";
    case EventKind::HeartbeatStaleRejected: return "hb-stale-rejected";
    case EventKind::ExportRetry: return "export-retry";
    case EventKind::InvariantViolation: return "invariant-violation";
    case EventKind::ProvenanceRecorded: return "provenance-decision";
  }
  return "?";
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void TraceSink::enable_sharding(int shards) {
  std::lock_guard<std::mutex> lk(mu_);
  if (shards > 0 && lanes_.size() < static_cast<std::size_t>(shards))
    lanes_.resize(static_cast<std::size_t>(shards));
}

void TraceSink::drain_shards() {
  std::lock_guard<std::mutex> lk(mu_);
  for (ShardLane& lane : lanes_) {
    for (TraceEvent& ev : lane.buffer) {
      if (events_.size() >= capacity_) {
        ++dropped_;
        continue;
      }
      events_.push_back(std::move(ev));
    }
    lane.buffer.clear();
  }
}

void TraceSink::record(TraceEvent ev) {
  if (!lanes_.empty()) {
    const int s = lane_shard();
    if (s >= 0 && s < static_cast<int>(lanes_.size())) {
      // Shard lane: private buffer, one thread per shard, no lock. The
      // capacity bound is applied at drain time so dropped accounting
      // follows the canonical merge order, not thread interleaving.
      lanes_[static_cast<std::size_t>(s)].buffer.push_back(std::move(ev));
      return;
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void TraceSink::event(
    Time at, EventKind kind, int rank, int peer, std::string detail,
    std::initializer_list<std::pair<const char*, double>> fields, SpanId span,
    SpanId parent) {
  TraceEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.rank = rank;
  ev.peer = peer;
  ev.span = span;
  ev.parent = parent;
  ev.detail = std::move(detail);
  ev.fields.reserve(fields.size());
  for (const auto& [k, v] : fields) ev.fields.emplace_back(k, v);
  record(std::move(ev));
}

SpanId TraceSink::next_span() {
  if (!lanes_.empty()) {
    const int s = lane_shard();
    if (s >= 0 && s < static_cast<int>(lanes_.size())) {
      // Disjoint per-shard id range: no lock, no cross-shard ordering.
      const std::uint64_t n = ++lanes_[static_cast<std::size_t>(s)].spans;
      return static_cast<SpanId>(
          (static_cast<std::uint64_t>(s + 1) << 44) | n);
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<SpanId>(++next_span_);
}

std::uint64_t TraceSink::spans_allocated() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = next_span_;
  for (const ShardLane& lane : lanes_) total += lane.spans;
  return total;
}

std::size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

std::uint64_t TraceSink::dropped_events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

void TraceSink::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  events_.clear();
  dropped_ = 0;
  next_span_ = 0;
  for (ShardLane& lane : lanes_) {
    lane.buffer.clear();
    lane.spans = 0;
  }
}

std::string TraceSink::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "[";
  char buf[64];
  bool first_ev = true;
  for (const TraceEvent& ev : events_) {
    if (!first_ev) out += ",";
    first_ev = false;
    std::snprintf(buf, sizeof(buf), "%" PRIu64, ev.at);
    out += "{\"t_us\":";
    out += buf;
    out += ",\"kind\":\"";
    out += event_kind_name(ev.kind);
    out += "\"";
    if (ev.rank >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"rank\":%d", ev.rank);
      out += buf;
    }
    if (ev.peer >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"peer\":%d", ev.peer);
      out += buf;
    }
    if (ev.span >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"span\":%" PRId64, ev.span);
      out += buf;
    }
    if (ev.parent >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"parent\":%" PRId64, ev.parent);
      out += buf;
    }
    if (!ev.detail.empty())
      out += ",\"detail\":\"" + json_escape(ev.detail) + "\"";
    if (!ev.fields.empty()) {
      out += ",\"fields\":{";
      bool first_f = true;
      for (const auto& [k, v] : ev.fields) {
        if (!first_f) out += ",";
        first_f = false;
        out += "\"" + json_escape(k) + "\":" + format_metric_value(v);
      }
      out += "}";
    }
    out += "}";
  }
  out += "]";
  return out;
}

std::string TraceSink::to_perfetto() const { return to_perfetto(nullptr); }

std::string TraceSink::to_perfetto(const Profiler* profiler) const {
  std::lock_guard<std::mutex> lk(mu_);
  char buf[96];
  // Ranks become threads of one "mantle" process; rank -1 (cluster-wide
  // events) maps to tid 0, rank r to tid r+1.
  int max_rank = -1;
  for (const TraceEvent& ev : events_)
    max_rank = std::max({max_rank, ev.rank, ev.peer});

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out +=
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,"
      "\"args\":{\"name\":\"mantle\"}}";
  out +=
      ",{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"cluster\"}}";
  for (int r = 0; r <= max_rank; ++r) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,"
                  "\"tid\":%d,\"args\":{\"name\":\"mds%d\"}}",
                  r + 1, r);
    out += buf;
  }

  const auto append_common = [&](const TraceEvent& ev) {
    std::snprintf(buf, sizeof(buf), ",\"ts\":%" PRIu64 ",\"pid\":0,\"tid\":%d",
                  ev.at, ev.rank + 1);
    out += buf;
    out += ",\"args\":{";
    bool first = true;
    const auto arg = [&](const std::string& k, const std::string& v) {
      if (!first) out += ",";
      first = false;
      out += "\"" + k + "\":" + v;
    };
    if (ev.peer >= 0) arg("peer", std::to_string(ev.peer));
    if (ev.span >= 0) arg("span", std::to_string(ev.span));
    if (ev.parent >= 0) arg("parent", std::to_string(ev.parent));
    if (!ev.detail.empty()) arg("detail", "\"" + json_escape(ev.detail) + "\"");
    for (const auto& [k, v] : ev.fields)
      arg(json_escape(k), format_metric_value(v));
    out += "}}";
  };

  for (const TraceEvent& ev : events_) {
    // Migrations with a span additionally render as async begin/end pairs
    // (Perfetto pairs them on (cat, id)), so each 2PC export shows as a
    // bar spanning start -> commit/abort on the exporter's track.
    const bool begins = ev.kind == EventKind::ExportStart;
    const bool ends = ev.kind == EventKind::ExportCommit ||
                      ev.kind == EventKind::ExportAbort;
    if ((begins || ends) && ev.span >= 0) {
      std::snprintf(buf, sizeof(buf),
                    ",{\"ph\":\"%s\",\"cat\":\"migration\",\"id\":%" PRId64
                    ",\"name\":\"migration\"",
                    begins ? "b" : "e", ev.span);
      out += buf;
      append_common(ev);
    }
    out += ",{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"mantle\",\"name\":\"";
    out += event_kind_name(ev.kind);
    out += "\"";
    append_common(ev);
  }

  // Wall-clock phase counter tracks (opt-in overload only): one
  // "profile:<phase>" track per phase, sampled at the start and end of
  // the simulated timeline so the cumulative wall/self milliseconds
  // render as counters alongside the event tracks.
  if (profiler != nullptr) {
    Time t_end = 0;
    for (const TraceEvent& ev : events_) t_end = std::max(t_end, ev.at);
    for (int i = 0; i < kNumProfilePhases; ++i) {
      const auto phase = static_cast<ProfilePhase>(i);
      const Profiler::PhaseStats s = profiler->stats(phase);
      const auto sample = [&](Time ts, double wall_ms, double self_ms) {
        char cbuf[192];
        std::snprintf(cbuf, sizeof(cbuf),
                      ",{\"ph\":\"C\",\"name\":\"profile:%s\",\"pid\":0,"
                      "\"ts\":%" PRIu64 ",\"args\":{\"self_ms\":%.3f,"
                      "\"wall_ms\":%.3f}}",
                      profile_phase_name(phase), ts, self_ms, wall_ms);
        out += cbuf;
      };
      sample(0, 0.0, 0.0);
      sample(t_end, static_cast<double>(s.wall_ns) / 1e6,
             static_cast<double>(s.self_ns) / 1e6);
    }
  }
  out += "]}";
  return out;
}

}  // namespace mantle::obs
