#pragma once

/// \file lane.hpp
/// Execution-lane context for the sharded parallel engine.
///
/// When the simulator runs in sharded mode (sim/shard.hpp), rank-affine
/// events execute concurrently on per-shard worker threads while all
/// shared-state mutation stays on the serial global lane. Observability
/// sinks cannot take a wall-clock-ordered view of concurrent appends and
/// stay deterministic, so instead every sink routes hot-path writes by
/// the *lane* of the calling thread: shard lanes write to private
/// per-shard cells/buffers (no contention, no ordering dependence on the
/// thread count K) and the global lane writes to the classic serial
/// structures. A deterministic merge — fixed shard order, canonical
/// within-shard order — folds the shards back in at epoch barriers or at
/// export time, which is what keeps MANTLE_OBS_DIR dumps byte-identical
/// for any K.
///
/// The lane is plain thread-local state: -1 (default) means the serial /
/// global lane, s >= 0 means shard s. Only the shard runtime sets it, via
/// the RAII scope below, around each shard's epoch slice.

namespace mantle::obs {

namespace detail {
inline thread_local int t_lane_shard = -1;
}  // namespace detail

/// Shard index of the calling thread's lane: -1 = serial/global lane.
inline int lane_shard() { return detail::t_lane_shard; }

/// RAII lane marker. The shard runtime wraps each per-shard event slice
/// in one of these; everything else runs on the default lane.
class ScopedLane {
 public:
  explicit ScopedLane(int shard) : prev_(detail::t_lane_shard) {
    detail::t_lane_shard = shard;
  }
  ~ScopedLane() { detail::t_lane_shard = prev_; }
  ScopedLane(const ScopedLane&) = delete;
  ScopedLane& operator=(const ScopedLane&) = delete;

 private:
  int prev_;
};

}  // namespace mantle::obs
