// Wall-clock phase profiler: RAII scoped timers over the real
// (steady) clock, accounting where process time goes across the big
// simulator phases — engine dispatch, cluster ticks, Mantle hook
// evaluation, population sampling and trace/dump I/O.
//
// Determinism contract: the profiler measures *wall* time and
// therefore varies run to run. Its numbers must never leak into the
// deterministic MANTLE_OBS_DIR dumps — same-seed runs stay
// byte-identical with the profiler enabled. Wall-clock output goes
// only to (a) bench stdout phase tables, (b) the opt-in
// MANTLE_PROFILE_DUMP side files, and (c) the non-default
// TraceSink::to_perfetto(&profiler) counter-track overload.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace mantle::obs {

enum class ProfilePhase : int {
  EngineDispatch = 0,  ///< Engine::run_until event loop
  ClusterTick,         ///< MdsNode balancer/heartbeat tick
  HookEval,            ///< one Mantle Lua hook invocation
  PopulationSample,    ///< mean-field ClientPopulation tick
  TraceIo,             ///< observability dump serialization + writes
};
inline constexpr int kNumProfilePhases = 5;

/// Kebab-case phase name ("engine-dispatch", ...). Stable; used as the
/// Perfetto counter-track suffix and the phase-table row label.
const char* profile_phase_name(ProfilePhase p);

/// Counter-style metric name for the phase's scope count
/// ("mantle_profile_engine_dispatch_scopes_total", ...). These names
/// follow the registry lint (counters end in _total) even though the
/// profiler keeps them out of the deterministic registry.
std::string profile_metric_name(ProfilePhase p);

/// Process-wide singleton accumulating per-phase wall/self time.
/// All mutation is relaxed-atomic: the parallel seed sweep hammers it
/// from many threads at once.
class Profiler {
 public:
  struct PhaseStats {
    std::uint64_t scopes = 0;   ///< completed ScopedPhase instances
    std::uint64_t wall_ns = 0;  ///< inclusive wall time
    std::uint64_t self_ns = 0;  ///< wall minus time in child scopes
  };

  static Profiler& instance();

  /// Honors MANTLE_PROFILE=0 at first use; defaults to enabled.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  void add(ProfilePhase p, std::uint64_t wall_ns, std::uint64_t self_ns);
  PhaseStats stats(ProfilePhase p) const;
  std::array<PhaseStats, kNumProfilePhases> snapshot() const;
  void reset();

  /// Human phase table for bench stdout (header + one row per phase).
  std::string table() const;

  /// JSON object keyed by mantle_profile_* metric names. Wall-clock —
  /// never written into deterministic dumps.
  std::string to_json() const;

 private:
  Profiler();
  struct Cell {
    std::atomic<std::uint64_t> scopes{0};
    std::atomic<std::uint64_t> wall{0};
    std::atomic<std::uint64_t> self{0};
  };
  std::atomic<bool> enabled_{true};
  std::array<Cell, kNumProfilePhases> cells_;
};

/// RAII scope: times its lifetime on the steady clock and charges the
/// phase. Nesting-aware — a child's wall time is subtracted from the
/// enclosing scope's self time via a thread-local scope stack.
class ScopedPhase {
 public:
  explicit ScopedPhase(ProfilePhase p);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  ProfilePhase phase_;
  bool active_ = false;
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;
  ScopedPhase* parent_ = nullptr;
};

}  // namespace mantle::obs
