#include "obs/analyze.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/json_reader.hpp"
#include "obs/metrics.hpp"  // format_metric_value

namespace mantle::obs {

namespace {

using jsonr::JsonReader;
using jsonr::JsonValue;

bool event_kind_from_name(const std::string& name, EventKind& out) {
  // Iterate through the *last* kind, not a hard-coded one: stopping at
  // FaultInjected silently dropped policy-recompile events from parsed
  // dumps (found by the shadow-replay round-trip tests).
  for (int k = static_cast<int>(EventKind::HeartbeatSent);
       k <= static_cast<int>(kLastEventKind); ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (name == event_kind_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

double field(const TraceEvent& ev, const char* name, double fallback = 0.0) {
  for (const auto& [k, v] : ev.fields)
    if (k == name) return v;
  return fallback;
}

bool has_field(const TraceEvent& ev, const char* name) {
  for (const auto& [k, v] : ev.fields)
    if (k == name) return true;
  return false;
}

/// Fragment depth (bits) from a DirFragId string "ino.0xXXXXXXXX/bits";
/// -1 if unparseable.
int frag_bits_of(const std::string& detail) {
  const std::size_t slash = detail.rfind('/');
  if (slash == std::string::npos || slash + 1 >= detail.size()) return -1;
  int bits = 0;
  for (std::size_t i = slash + 1; i < detail.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(detail[i])) == 0) return -1;
    bits = bits * 10 + (detail[i] - '0');
  }
  return bits;
}

std::string u64(std::uint64_t x) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, x);
  return buf;
}

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

}  // namespace

// ---------------------------------------------------------------------------
// Parsers
// ---------------------------------------------------------------------------

std::vector<TraceEvent> parse_trace_json(const std::string& json) {
  std::vector<TraceEvent> out;
  const JsonValue root = JsonReader(json).parse();
  if (root.type != JsonValue::Type::Array) return out;
  for (const JsonValue& e : root.arr) {
    if (e.type != JsonValue::Type::Object) continue;
    const JsonValue* kind = e.get("kind");
    if (kind == nullptr || kind->type != JsonValue::Type::String) continue;
    TraceEvent ev;
    if (!event_kind_from_name(kind->str, ev.kind)) continue;
    if (const JsonValue* v = e.get("t_us")) ev.at = static_cast<Time>(v->num);
    if (const JsonValue* v = e.get("rank")) ev.rank = static_cast<int>(v->num);
    if (const JsonValue* v = e.get("peer")) ev.peer = static_cast<int>(v->num);
    if (const JsonValue* v = e.get("span"))
      ev.span = static_cast<SpanId>(v->num);
    if (const JsonValue* v = e.get("parent"))
      ev.parent = static_cast<SpanId>(v->num);
    if (const JsonValue* v = e.get("detail")) ev.detail = v->str;
    if (const JsonValue* f = e.get("fields");
        f != nullptr && f->type == JsonValue::Type::Object)
      for (const auto& [k, v] : f->obj) ev.fields.emplace_back(k, v.num);
    out.push_back(std::move(ev));
  }
  return out;
}

std::map<std::string, double> parse_metrics_counters(const std::string& json) {
  std::map<std::string, double> out;
  const JsonValue root = JsonReader(json).parse();
  const JsonValue* counters = root.get("counters");
  if (counters == nullptr || counters->type != JsonValue::Type::Object)
    return out;
  for (const auto& [k, v] : counters->obj)
    if (v.type == JsonValue::Type::Number) out[k] = v.num;
  return out;
}

MetricsSnapshot parse_metrics_json(const std::string& json) {
  MetricsSnapshot out;
  const JsonValue root = JsonReader(json).parse();
  if (const JsonValue* counters = root.get("counters");
      counters != nullptr && counters->type == JsonValue::Type::Object)
    for (const auto& [k, v] : counters->obj)
      if (v.type == JsonValue::Type::Number) out.counters[k] = v.num;
  if (const JsonValue* gauges = root.get("gauges");
      gauges != nullptr && gauges->type == JsonValue::Type::Object)
    for (const auto& [k, v] : gauges->obj)
      if (v.type == JsonValue::Type::Number) out.gauges[k] = v.num;
  if (const JsonValue* hists = root.get("histograms");
      hists != nullptr && hists->type == JsonValue::Type::Object)
    for (const auto& [k, v] : hists->obj) {
      if (v.type != JsonValue::Type::Object) continue;
      HistogramSummary s;
      if (const JsonValue* x = v.get("count"))
        s.count = static_cast<std::uint64_t>(x->num);
      if (const JsonValue* x = v.get("sum")) s.sum = x->num;
      if (const JsonValue* q = v.get("quantiles");
          q != nullptr && q->type == JsonValue::Type::Object) {
        if (const JsonValue* x = q->get("p50")) s.p50 = x->num;
        if (const JsonValue* x = q->get("p95")) s.p95 = x->num;
        if (const JsonValue* x = q->get("p99")) s.p99 = x->num;
      }
      out.histograms[k] = s;
    }
  return out;
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

Report analyze(const TraceSink& sink, const AnalyzeConfig& cfg,
               const std::map<std::string, double>* counters) {
  return analyze(sink.snapshot(), cfg, counters);
}

Report analyze(const std::vector<TraceEvent>& events, const AnalyzeConfig& cfg,
               const MetricsSnapshot& metrics) {
  Report rep = analyze(events, cfg, &metrics.counters);
  const auto gauge = [&](const char* name, double& out) {
    const auto it = metrics.gauges.find(name);
    if (it == metrics.gauges.end()) return false;
    out = it->second;
    return true;
  };
  if (gauge("sim_pool_peak_live_events", rep.pool_peak_live)) {
    rep.has_pool = true;
    gauge("sim_pool_live_events", rep.pool_live);
    gauge("sim_pool_capacity_events", rep.pool_capacity);
    gauge("sim_pool_reserved_bytes", rep.pool_reserved_bytes);
  }
  for (const auto& [name, s] : metrics.histograms)
    rep.histogram_rows.push_back({name, s});
  return rep;
}

Report analyze(const std::vector<TraceEvent>& events, const AnalyzeConfig& cfg,
               const std::map<std::string, double>* counters) {
  Report rep;
  rep.events = events.size();
  const Time tick_us = cfg.tick > 0 ? cfg.tick : kSec;

  // Pass 1: extent of the run.
  Time t_end = 0;
  int max_rank = -1;
  std::vector<SpanId> span_ids;
  for (const TraceEvent& ev : events) {
    t_end = std::max(t_end, ev.at);
    max_rank = std::max({max_rank, ev.rank, ev.peer});
    if (ev.span >= 0) span_ids.push_back(ev.span);
  }
  std::sort(span_ids.begin(), span_ids.end());
  rep.spans = static_cast<std::uint64_t>(
      std::unique(span_ids.begin(), span_ids.end()) - span_ids.begin());
  rep.num_ranks = max_rank + 1;
  rep.ticks = events.empty() ? 0 : t_end / tick_us + 1;

  const auto nranks = static_cast<std::size_t>(rep.num_ranks);
  rep.series.resize(rep.ticks);
  for (std::uint64_t t = 0; t < rep.ticks; ++t) {
    rep.series[t].tick = t;
    rep.series[t].load.assign(nranks, 0.0);
  }

  // Pass 2: series, totals, and detector state.
  // Load observations, carried forward: seen[r] is the latest load.
  std::vector<double> last_load(nranks, 0.0);
  std::vector<bool> saw_load(nranks, false);

  // Ping-pong: per subtree, the last completed direction and how many
  // quick reversals it has accumulated.
  struct LastExport {
    int from = -1;
    int to = -1;
    std::uint64_t tick = 0;
    std::uint64_t reversals = 0;
    bool reported = false;
  };
  std::map<std::string, LastExport> last_export;

  // Thrash: per rank, the current run of go-with-zero-shipped ticks.
  // `when` go=1 arms the tick; the matching `where` (same span) with
  // shipped_total <= eps extends the run, shipping anything resets it.
  std::vector<std::uint64_t> thrash_run(nranks, 0);
  std::vector<bool> thrash_reported(nranks, false);
  std::vector<SpanId> armed_span(nranks, kNoSpan);
  std::vector<Time> armed_at(nranks, 0);

  // Stuck exports: spans started and not yet finished. For traces
  // without spans (foreign or pre-span dumps) fall back to a
  // (from,to,frag) key.
  struct OpenExport {
    Time at = 0;
    std::string detail;
  };
  std::map<SpanId, OpenExport> open_spans;
  std::map<std::string, std::uint64_t> open_keyed;  // key -> open count

  const auto keyed = [](const TraceEvent& ev) {
    return std::to_string(ev.rank) + ">" + std::to_string(ev.peer) + ">" +
           ev.detail;
  };

  std::uint64_t prev_tick = 0;
  const auto flush_tick_loads = [&](std::uint64_t upto) {
    // Write carried-forward loads into every bucket up to (exclusive)
    // `upto`, then keep carrying.
    for (std::uint64_t t = prev_tick; t < upto && t < rep.ticks; ++t)
      for (std::size_t r = 0; r < nranks; ++r)
        rep.series[t].load[r] = last_load[r];
    prev_tick = std::max(prev_tick, upto);
  };

  for (const TraceEvent& ev : events) {
    const std::uint64_t tick = ev.at / tick_us;
    flush_tick_loads(tick);
    // events non-empty implies ticks >= 1, so the index is always valid.
    TickPoint& tp =
        rep.series[std::min<std::uint64_t>(tick, rep.ticks - 1)];

    switch (ev.kind) {
      case EventKind::HeartbeatSent:
        if (ev.rank >= 0 && static_cast<std::size_t>(ev.rank) < nranks &&
            has_field(ev, "load")) {
          last_load[static_cast<std::size_t>(ev.rank)] = field(ev, "load");
          saw_load[static_cast<std::size_t>(ev.rank)] = true;
        }
        break;

      case EventKind::WhenDecision: {
        if (ev.rank < 0 || static_cast<std::size_t>(ev.rank) >= nranks) break;
        const auto r = static_cast<std::size_t>(ev.rank);
        if (has_field(ev, "my_load")) {
          last_load[r] = field(ev, "my_load");
          saw_load[r] = true;
        }
        if (field(ev, "go") >= 0.5) {
          armed_span[r] = ev.span;
          armed_at[r] = ev.at;
        } else {
          armed_span[r] = kNoSpan;
          thrash_run[r] = 0;
        }
        break;
      }

      case EventKind::WhereDecision: {
        if (ev.rank < 0 || static_cast<std::size_t>(ev.rank) >= nranks) break;
        const auto r = static_cast<std::size_t>(ev.rank);
        if (armed_span[r] == kNoSpan ||
            (ev.span >= 0 && ev.span != armed_span[r]))
          break;
        armed_span[r] = kNoSpan;
        if (field(ev, "shipped_total") <= cfg.thrash_shipped_epsilon) {
          ++thrash_run[r];
          if (thrash_run[r] >= cfg.thrash_min_run && !thrash_reported[r]) {
            thrash_reported[r] = true;
            rep.anomalies.push_back(
                {"thrash", ev.at, ev.span,
                 "mds" + std::to_string(ev.rank) + " decided to migrate on " +
                     u64(thrash_run[r]) +
                     " consecutive ticks but shipped ~zero load"});
          }
        } else {
          thrash_run[r] = 0;
        }
        break;
      }

      case EventKind::ExportStart: {
        ++rep.exports_started;
        ++tp.migrations;
        if (ev.span >= 0)
          open_spans[ev.span] = {ev.at, ev.detail};
        else
          ++open_keyed[keyed(ev)];

        // Ping-pong check against the last completed export of this
        // subtree: a start going straight back is a reversal, whether or
        // not it later commits — the churn cost is already paid. One
        // reversal is tolerated (load legitimately moves back after a
        // workload shift or crash); a subtree racking up
        // ping_pong_min_reversals of them is being tossed around.
        const auto it = last_export.find(ev.detail);
        if (it != last_export.end() && ev.rank == it->second.to &&
            ev.peer == it->second.from &&
            tick - it->second.tick <= cfg.ping_pong_window_ticks) {
          ++it->second.reversals;
          if (it->second.reversals >= cfg.ping_pong_min_reversals &&
              !it->second.reported) {
            it->second.reported = true;
            rep.anomalies.push_back(
                {"ping-pong", ev.at, ev.span,
                 ev.detail + " bounced between mds" + std::to_string(ev.peer) +
                     " and mds" + std::to_string(ev.rank) + " " +
                     u64(it->second.reversals) +
                     " times, each within " +
                     u64(cfg.ping_pong_window_ticks) + " ticks"});
          }
        }
        break;
      }

      case EventKind::ExportCommit: {
        ++rep.exports_committed;
        const auto entries = static_cast<std::uint64_t>(field(ev, "entries"));
        rep.entries_shipped += entries;
        tp.entries_shipped += entries;
        if (ev.span >= 0)
          open_spans.erase(ev.span);
        else if (auto it = open_keyed.find(keyed(ev));
                 it != open_keyed.end() && it->second > 0)
          --it->second;
        {
          // Update direction/time but keep the accumulated reversal
          // count — ping-pong is a pattern across many round trips.
          LastExport& le = last_export[ev.detail];
          le.from = ev.rank;
          le.to = ev.peer;
          le.tick = tick;
        }
        break;
      }

      case EventKind::ExportAbort:
        ++rep.exports_aborted;
        if (ev.span >= 0) open_spans.erase(ev.span);
        // Keyed fallback can't match aborts (they carry no frag) —
        // span-less aborted exports stay open and surface as stuck,
        // which is the right conservative answer for foreign dumps.
        break;

      case EventKind::DirfragSplit: {
        ++rep.splits;
        ++tp.splits;
        const int parent_bits = frag_bits_of(ev.detail);
        const double fanout = field(ev, "fragments", 2.0);
        if (parent_bits >= 0 && fanout >= 2.0) {
          const int child_bits =
              parent_bits +
              static_cast<int>(std::lround(std::log2(fanout)));
          rep.max_split_depth = std::max(rep.max_split_depth, child_bits);
        }
        break;
      }

      case EventKind::DirfragMerge:
        ++rep.merges;
        ++tp.merges;
        break;

      case EventKind::DeadLetterParked:
        ++rep.parked;
        break;
      case EventKind::DeadLetterFlushed:
        ++rep.flushed;
        break;

      case EventKind::Crash:
        ++rep.crashes;
        break;

      default:
        break;
    }
  }
  flush_tick_loads(rep.ticks);

  // CV per tick over ranks that ever reported a load.
  std::size_t reporting = 0;
  for (const bool s : saw_load) reporting += s ? 1 : 0;
  double cv_sum = 0.0;
  std::uint64_t cv_ticks = 0;
  for (TickPoint& tp : rep.series) {
    if (reporting >= 2) {
      double sum = 0.0;
      for (std::size_t r = 0; r < nranks; ++r)
        if (saw_load[r]) sum += tp.load[r];
      const double mean = sum / static_cast<double>(reporting);
      if (mean > 0.0) {
        double var = 0.0;
        for (std::size_t r = 0; r < nranks; ++r)
          if (saw_load[r]) {
            const double d = tp.load[r] - mean;
            var += d * d;
          }
        var /= static_cast<double>(reporting);
        tp.cv = std::sqrt(var) / mean;
      }
    }
    cv_sum += tp.cv;
    ++cv_ticks;
    rep.cv_max = std::max(rep.cv_max, tp.cv);
  }
  rep.cv_mean = cv_ticks > 0 ? cv_sum / static_cast<double>(cv_ticks) : 0.0;
  rep.churn = rep.ticks > 0 ? static_cast<double>(rep.exports_started) /
                                  static_cast<double>(rep.ticks)
                            : 0.0;

  // Stuck exports: anything still open at end of trace.
  for (const auto& [span, open] : open_spans)
    rep.anomalies.push_back(
        {"stuck-export", open.at, span,
         open.detail + " export started but neither committed nor aborted"});
  for (const auto& [key, n] : open_keyed)
    for (std::uint64_t i = 0; i < n; ++i)
      rep.anomalies.push_back(
          {"stuck-export", t_end, kNoSpan,
           key + " export started but neither committed nor aborted"});

  // Dead-letter leak.
  if (rep.parked > rep.flushed)
    rep.anomalies.push_back(
        {"dead-letter-leak", t_end, kNoSpan,
         u64(rep.parked - rep.flushed) + " request(s) still parked on the "
                                         "dead-letter queue at end of run"});

  // Locality ratio from the metrics snapshot, when provided.
  if (counters != nullptr) {
    const auto completed = counters->find("mds_requests_completed_total");
    const auto forwards = counters->find("mds_forwards_total");
    if (completed != counters->end() && forwards != counters->end() &&
        completed->second + forwards->second > 0.0) {
      rep.has_locality = true;
      rep.locality_ratio =
          completed->second / (completed->second + forwards->second);
    }
  }

  // Deterministic ordering: detection walks events in timeline order, but
  // end-of-trace findings are appended from maps — sort by (detector,
  // at, span, detail) so the report never depends on map iteration quirks.
  std::stable_sort(rep.anomalies.begin(), rep.anomalies.end(),
                   [](const Anomaly& a, const Anomaly& b) {
                     if (a.detector != b.detector) return a.detector < b.detector;
                     if (a.at != b.at) return a.at < b.at;
                     if (a.span != b.span) return a.span < b.span;
                     return a.detail < b.detail;
                   });
  return rep;
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

namespace {
const char* const kDetectors[] = {"dead-letter-leak", "ping-pong",
                                  "stuck-export", "thrash"};
}

std::uint64_t Report::count(const std::string& detector) const {
  std::uint64_t n = 0;
  for (const Anomaly& a : anomalies) n += a.detector == detector ? 1 : 0;
  return n;
}

int Report::tripped() const {
  int n = 0;
  for (const char* d : kDetectors) n += count(d) > 0 ? 1 : 0;
  return n;
}

std::string Report::to_json() const {
  std::string out = "{\"summary\":{";
  out += "\"churn\":" + format_metric_value(churn);
  out += ",\"crashes\":" + u64(crashes);
  out += ",\"cv_max\":" + format_metric_value(cv_max);
  out += ",\"cv_mean\":" + format_metric_value(cv_mean);
  out += ",\"entries_shipped\":" + u64(entries_shipped);
  out += ",\"events\":" + u64(events);
  out += ",\"exports_aborted\":" + u64(exports_aborted);
  out += ",\"exports_committed\":" + u64(exports_committed);
  out += ",\"exports_started\":" + u64(exports_started);
  out += ",\"flushed\":" + u64(flushed);
  if (has_locality)
    out += ",\"locality_ratio\":" + format_metric_value(locality_ratio);
  out += ",\"max_split_depth\":" + std::to_string(max_split_depth);
  out += ",\"merges\":" + u64(merges);
  out += ",\"num_ranks\":" + std::to_string(num_ranks);
  out += ",\"parked\":" + u64(parked);
  if (has_pool) {
    out += ",\"pool_capacity_events\":" + format_metric_value(pool_capacity);
    out += ",\"pool_live_events\":" + format_metric_value(pool_live);
    out += ",\"pool_peak_live_events\":" + format_metric_value(pool_peak_live);
    out += ",\"pool_reserved_bytes\":" + format_metric_value(pool_reserved_bytes);
  }
  out += ",\"spans\":" + u64(spans);
  out += ",\"splits\":" + u64(splits);
  out += ",\"ticks\":" + u64(ticks);
  out += "},";
  if (!histogram_rows.empty()) {
    out += "\"histograms\":{";
    bool first_h = true;
    for (const HistogramRow& h : histogram_rows) {
      if (!first_h) out += ",";
      first_h = false;
      out += json_str(h.name) + ":{\"count\":" + u64(h.summary.count);
      out += ",\"p50\":" + format_metric_value(h.summary.p50);
      out += ",\"p95\":" + format_metric_value(h.summary.p95);
      out += ",\"p99\":" + format_metric_value(h.summary.p99);
      out += ",\"sum\":" + format_metric_value(h.summary.sum) + "}";
    }
    out += "},";
  }
  out += "\"detectors\":{";
  bool first = true;
  for (const char* d : kDetectors) {
    if (!first) out += ",";
    first = false;
    out += json_str(d) + ":" + u64(count(d));
  }
  out += "},\"anomalies\":[";
  first = true;
  for (const Anomaly& a : anomalies) {
    if (!first) out += ",";
    first = false;
    out += "{\"detector\":" + json_str(a.detector) + ",\"t_us\":" + u64(a.at);
    if (a.span >= 0)
      out += ",\"span\":" + u64(static_cast<std::uint64_t>(a.span));
    out += ",\"detail\":" + json_str(a.detail) + "}";
  }
  out += "],\"series\":[";
  first = true;
  for (const TickPoint& tp : series) {
    if (!first) out += ",";
    first = false;
    out += "{\"tick\":" + u64(tp.tick) + ",\"cv\":" + format_metric_value(tp.cv);
    out += ",\"load\":[";
    for (std::size_t r = 0; r < tp.load.size(); ++r) {
      if (r > 0) out += ",";
      out += format_metric_value(tp.load[r]);
    }
    out += "],\"migrations\":" + u64(tp.migrations);
    out += ",\"entries_shipped\":" + u64(tp.entries_shipped);
    out += ",\"splits\":" + u64(tp.splits);
    out += ",\"merges\":" + u64(tp.merges) + "}";
  }
  out += "]}";
  return out;
}

std::string Report::to_table() const {
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "  events %-10" PRIu64 " ticks %-8" PRIu64 " ranks %-4d"
                " spans %" PRIu64 "\n",
                events, ticks, num_ranks, spans);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  imbalance CV  mean %-8.4f max %-8.4f\n", cv_mean, cv_max);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  migrations    started %" PRIu64 " committed %" PRIu64
                " aborted %" PRIu64 " (churn %.3f/tick, %" PRIu64
                " entries)\n",
                exports_started, exports_committed, exports_aborted, churn,
                entries_shipped);
  out += buf;
  if (has_locality) {
    std::snprintf(buf, sizeof(buf), "  locality      %.4f\n", locality_ratio);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  dirfrags      splits %" PRIu64 " merges %" PRIu64
                " max depth %d bits\n",
                splits, merges, max_split_depth);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  dead letters  parked %" PRIu64 " flushed %" PRIu64
                "   crashes %" PRIu64 "\n",
                parked, flushed, crashes);
  out += buf;
  if (has_pool) {
    std::snprintf(buf, sizeof(buf),
                  "  event pool    live %.0f peak %.0f capacity %.0f"
                  " reserved %.1f KiB\n",
                  pool_live, pool_peak_live, pool_capacity,
                  pool_reserved_bytes / 1024.0);
    out += buf;
  }
  for (const HistogramRow& h : histogram_rows) {
    if (h.summary.count == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "  [hist] %-28s n %-8" PRIu64
                  " p50 %-10.4g p95 %-10.4g p99 %.4g\n",
                  h.name.c_str(), h.summary.count, h.summary.p50,
                  h.summary.p95, h.summary.p99);
    out += buf;
  }
  for (const char* d : kDetectors) {
    const std::uint64_t n = count(d);
    std::snprintf(buf, sizeof(buf), "  [%s] %-16s %" PRIu64 " finding(s)\n",
                  n > 0 ? "TRIP" : " ok ", d, n);
    out += buf;
  }
  for (const Anomaly& a : anomalies) {
    std::snprintf(buf, sizeof(buf), "    - %s @%" PRIu64 "us: ",
                  a.detector.c_str(), a.at);
    out += buf;
    out += a.detail + "\n";
  }
  return out;
}

}  // namespace mantle::obs
