// Decision provenance flight recorder: one DecisionRecord per
// balancer tick, capturing the full hook input table (per-rank
// heartbeat rows, derived loads, aliveness, whoami) and the resulting
// outputs (when verdict, where targets, howmuch selectors, the exact
// fragments picked for each shipment) plus policy evaluation metadata
// (Lua steps, policy-cache hits/misses, hook errors). Records link to
// the balancer-tick span in the trace, so migration spans started by
// the decision are recoverable from the sibling trace dump.
//
// Determinism contract: records carry only simulated-time data, and
// to_json() serializes them with name-ordered keys and
// format_metric_value() numbers — same (seed, config) runs dump
// byte-identical `<label>-provenance.json` files.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace mantle::obs {

/// One per-rank row of the hook input table, mirroring the
/// HeartbeatPayload fields the Lua MDSs binding exposes.
struct HookInputRow {
  double auth_metaload = 0.0;
  double all_metaload = 0.0;
  double cpu_pct = 0.0;
  double mem_pct = 0.0;
  double queue_len = 0.0;
  double req_rate = 0.0;
};

/// One fragment picked by the selector chain for a shipment.
struct ProvenancePick {
  std::string frag;  ///< DirFragId::str()
  double load = 0.0;
  std::uint64_t entries = 0;
};

/// One per-target shipment attempt (the howmuch phase of a decision).
struct ProvenanceShipment {
  int target = -1;
  double goal = 0.0;          ///< target load scaled by need_min_factor
  std::uint64_t pool = 0;     ///< export candidates gathered
  double shipped = 0.0;       ///< load actually exported
  std::vector<ProvenancePick> picks;
};

/// Everything one balancer tick decided, and why.
struct DecisionRecord {
  Time at = 0;
  int rank = -1;
  SpanId span = kNoSpan;  ///< balancer-tick span in the sibling trace
  std::string policy;     ///< balancer/policy name
  double min_load = 0.0;  ///< mds_bal_min_load gate in force

  // --- inputs (the hook environment) ---
  std::vector<HookInputRow> mdss;  ///< per-rank heartbeat snapshot
  std::vector<double> loads;       ///< mdsload() per rank (0 when dead)
  std::vector<std::uint8_t> alive; ///< 1 = in view
  double total_load = 0.0;
  std::string digest;     ///< FNV-1a over the *untruncated* inputs
  bool truncated = false; ///< per-rank tables elided (provenance_max_ranks)

  // --- outputs ---
  bool go = false;                     ///< when() verdict (after min_load gate)
  std::vector<double> targets;         ///< where() output, sized to ranks
  std::vector<std::string> selectors;  ///< howmuch() selector chain
  std::vector<ProvenanceShipment> ships;

  // --- policy evaluation metadata (deltas across this decision) ---
  std::uint64_t lua_steps = 0;
  std::uint64_t hook_errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_recompiles = 0;

  /// Deterministic JSON object (name-ordered keys).
  std::string to_json() const;
};

/// 16-hex-char FNV-1a digest over a record's input fields (at, rank,
/// min_load, total_load, loads, alive, mdss rows). Compute *before*
/// truncating the per-rank tables so the digest always covers the full
/// input table.
std::string input_digest(const DecisionRecord& rec);

/// Bounded, thread-safe record store (same shape as TraceSink): keeps
/// the first `capacity` records, counts the rest as dropped.
class ProvenanceRecorder {
 public:
  explicit ProvenanceRecorder(std::size_t capacity = 4096)
      : capacity_(capacity) {}

  /// Optional stored/dropped counters, bumped exactly when a record is
  /// accepted into / rejected from the bounded store. Owned by the
  /// recorder (not the call site) so that in sharded mode the bump can
  /// happen at drain time, where the capacity decision is made in
  /// canonical merge order.
  void attach_counters(class Counter* recorded, class Counter* dropped);

  /// Sharded mode: buffer records from shard lanes (obs/lane.hpp) in
  /// private per-shard buffers; drain_shards() folds them into the
  /// bounded store in fixed shard order, applying the capacity bound
  /// and counter bumps there. Mirrors TraceSink::enable_sharding.
  void enable_sharding(int shards);
  void drain_shards();

  /// Returns false when the record was dropped (capacity reached). In
  /// sharded mode, records from shard lanes are buffered and always
  /// return true here; the real accept/drop decision happens at drain.
  bool record(DecisionRecord rec);

  std::vector<DecisionRecord> snapshot() const;
  std::uint64_t dropped() const;
  std::size_t size() const;
  void clear();

  /// Deterministic dump: {"records":[...],"dropped":N}.
  std::string to_json() const;

 private:
  struct alignas(64) ShardLane {
    std::vector<DecisionRecord> buffer;
  };

  bool store_locked(DecisionRecord rec);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<DecisionRecord> records_;
  std::uint64_t dropped_ = 0;
  std::vector<ShardLane> lanes_;
  class Counter* c_recorded_ = nullptr;
  class Counter* c_dropped_ = nullptr;
};

/// Parse a `*-provenance.json` dump (the exact format
/// ProvenanceRecorder::to_json() emits) back into records. Malformed
/// entries are skipped, mirroring parse_trace_json().
std::vector<DecisionRecord> parse_provenance_json(const std::string& json);

/// Filters for render_explain(): restrict to one tick bucket (record
/// time / tick_us) and/or one rank. Negative = no filter.
struct ExplainOptions {
  Time tick_us = kSec;    ///< bucket width for --tick
  std::int64_t tick = -1; ///< bucket index filter
  int rank = -1;          ///< rank filter
};

/// Render human-readable decision narratives. `events` (may be empty)
/// is the sibling trace timeline, used to resolve migration outcomes
/// (committed / aborted / unresolved) for each shipment via the
/// record's tick span. Deterministic: pure function of its inputs.
std::string render_explain(const std::vector<DecisionRecord>& records,
                           const std::vector<TraceEvent>& events,
                           const ExplainOptions& opt = {});

}  // namespace mantle::obs
