#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace mantle::obs {

namespace {

/// Scratch instances handed out on name/kind collisions so misuse never
/// dereferences a null handle. Their values are shared process-wide and
/// meaningless; the `obs_registry_collisions_total` counter is the real
/// signal.
Counter& scratch_counter() {
  static Counter c;
  return c;
}
Gauge& scratch_gauge() {
  static Gauge g;
  return g;
}
Histogram& scratch_histogram() {
  static Histogram h{{1.0}};
  return h;
}

/// Minimal JSON string escaping (names and help strings are ASCII-ish,
/// but a policy name could smuggle a quote).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void MetricsRegistry::note_collision_locked() {
  auto it = entries_.find(kCollisionCounterName);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kCounter;
    e.help = "metric registered twice with conflicting kinds";
    e.counter = std::make_unique<Counter>();
    it = entries_.emplace(kCollisionCounterName, std::move(e)).first;
  }
  it->second.counter->inc();
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  for (const auto& [name, e] : entries_)
    if (e.kind == Kind::kCounter) out.push_back(name);
  return out;
}

std::string format_metric_value(double x) {
  if (!std::isfinite(x)) return x > 0 ? "1e999" : (x < 0 ? "-1e999" : "0");
  char buf[64];
  if (x == std::floor(x) && std::fabs(x) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", x);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", x);
  }
  return buf;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::observe(double x) noexcept {
  std::size_t i = 0;
  while (i < bounds_.size() && x > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (sum_cells_ != nullptr) {
    const int s = lane_shard();
    if (s >= 0 && s < num_cells_) {
      sum_cells_[s].v.fetch_add(x, std::memory_order_relaxed);
      return;
    }
  }
  sum_.fetch_add(x, std::memory_order_relaxed);
}

void Histogram::enable_sharding(int shards) {
  if (shards <= 0 || num_cells_ >= shards) return;
  sum_cells_ = std::make_unique<SumCell[]>(static_cast<std::size_t>(shards));
  num_cells_ = shards;
}

void Counter::enable_sharding(int shards) {
  if (shards <= 0 || num_cells_ >= shards) return;
  cells_ = std::make_unique<CounterCell[]>(static_cast<std::size_t>(shards));
  num_cells_ = shards;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::quantile(double q) const {
  return estimate_quantile(bounds_, bucket_counts(), q);
}

double estimate_quantile(const std::vector<double>& bounds,
                         const std::vector<std::uint64_t>& counts, double q) {
  if (counts.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= target && counts[i] > 0) {
      if (i >= bounds.size()) {
        // +Inf bucket: no upper edge to interpolate toward — clamp to
        // the largest finite bound (0 for a bound-less histogram).
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac = (target - cum) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
    cum = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

namespace buckets {
std::vector<double> latency_ms() {
  return {0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096};
}
std::vector<double> entries() {
  return {1, 10, 100, 1000, 10000, 100000, 1000000};
}
std::vector<double> lua_steps() {
  return {16, 64, 256, 1024, 4096, 16384, 65536, 262144};
}
}  // namespace buckets

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

void MetricsRegistry::enable_sharding(int shards) {
  std::lock_guard<std::mutex> lk(mu_);
  shards_ = shards;
  for (auto& [name, e] : entries_) {
    (void)name;
    if (e.counter) e.counter->enable_sharding(shards);
    if (e.histogram) e.histogram->enable_sharding(shards);
  }
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kCounter;
    e.help = help;
    e.counter = std::make_unique<Counter>();
    if (shards_ > 0) e.counter->enable_sharding(shards_);
    it = entries_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != Kind::kCounter) {
    note_collision_locked();
    return scratch_counter();
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kGauge;
    e.help = help;
    e.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != Kind::kGauge) {
    note_collision_locked();
    return scratch_gauge();
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kHistogram;
    e.help = help;
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    if (shards_ > 0) e.histogram->enable_sharding(shards_);
    it = entries_.emplace(name, std::move(e)).first;
  } else if (it->second.kind != Kind::kHistogram) {
    note_collision_locked();
    return scratch_histogram();
  }
  return *it->second.histogram;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  char buf[128];
  for (const auto& [name, e] : entries_) {
    if (!e.help.empty()) out += "# HELP " + name + " " + e.help + "\n";
    switch (e.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, e.counter->value());
        out += name + " " + buf + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + format_metric_value(e.gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        const auto counts = e.histogram->bucket_counts();
        const auto& bounds = e.histogram->bounds();
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          cum += counts[i];
          std::snprintf(buf, sizeof(buf), "%" PRIu64, cum);
          out += name + "_bucket{le=\"" + format_metric_value(bounds[i]) +
                 "\"} " + buf + "\n";
        }
        cum += counts[bounds.size()];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, cum);
        out += name + "_bucket{le=\"+Inf\"} " + buf + "\n";
        out += name + "_sum " + format_metric_value(e.histogram->sum()) + "\n";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, e.histogram->count());
        out += name + "_count " + buf + "\n";
        // Estimated quantiles as a comment: native histograms have no
        // quantile sample type, and emitting summary-style samples
        // would clash with TYPE histogram.
        out += "# QUANTILES " + name +
               " p50=" + format_metric_value(estimate_quantile(bounds, counts, 0.5)) +
               " p95=" + format_metric_value(estimate_quantile(bounds, counts, 0.95)) +
               " p99=" + format_metric_value(estimate_quantile(bounds, counts, 0.99)) +
               "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string counters;
  std::string gauges;
  std::string histograms;
  char buf[128];
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ",";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, e.counter->value());
        counters += "\"" + json_escape(name) + "\":" + buf;
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += "\"" + json_escape(name) +
                  "\":" + format_metric_value(e.gauge->value());
        break;
      case Kind::kHistogram: {
        if (!histograms.empty()) histograms += ",";
        const auto counts = e.histogram->bucket_counts();
        const auto& bounds = e.histogram->bounds();
        std::string bkt;
        for (std::size_t i = 0; i < counts.size(); ++i) {
          if (!bkt.empty()) bkt += ",";
          const std::string le =
              i < bounds.size() ? format_metric_value(bounds[i]) : "\"+Inf\"";
          std::snprintf(buf, sizeof(buf), "%" PRIu64, counts[i]);
          bkt += "{\"le\":" + le + ",\"count\":" + buf + "}";
        }
        std::snprintf(buf, sizeof(buf), "%" PRIu64, e.histogram->count());
        histograms += "\"" + json_escape(name) + "\":{\"buckets\":[" + bkt +
                      "],\"sum\":" + format_metric_value(e.histogram->sum()) +
                      ",\"count\":" + buf + ",\"quantiles\":{\"p50\":" +
                      format_metric_value(estimate_quantile(bounds, counts, 0.5)) +
                      ",\"p95\":" +
                      format_metric_value(estimate_quantile(bounds, counts, 0.95)) +
                      ",\"p99\":" +
                      format_metric_value(estimate_quantile(bounds, counts, 0.99)) +
                      "}}";
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

}  // namespace mantle::obs
