#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/lane.hpp"

/// \file metrics.hpp
/// The metrics half of the observability layer: a registry of named
/// counters, gauges and fixed-bucket histograms with Prometheus-text and
/// JSON exporters. Registration (name -> handle) is mutex-guarded and
/// rare; every update on a returned handle is a single relaxed atomic
/// op, so instrumented hot paths (request completion, heartbeat sends)
/// stay cheap and the registry can be hammered from the parallel seed
/// sweep without locking.
///
/// Determinism contract: exporters iterate a name-ordered map and format
/// numbers with a fixed printf recipe, so a single-threaded simulator
/// run produces byte-identical snapshots for identical (seed, config)
/// inputs — the property the reproducibility suite asserts.
///
/// Sharded mode (sim/shard.hpp): MetricsRegistry::enable_sharding(S)
/// gives every counter and histogram S cache-line-padded per-shard cells.
/// Hot-path increments from a shard lane (obs/lane.hpp) land in the
/// caller's private cell — no shared-line contention between worker
/// threads — and exports fold base + cells in fixed shard order, so the
/// merged value is independent of the thread count K. Gauges are only
/// ever written from the serial lane (the shard runtime and the global
/// event lane), so they need no cells.

namespace mantle::obs {

/// One cache line per shard so neighbouring shards' increments never
/// false-share.
struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> v{0};
};
struct alignas(64) SumCell {
  std::atomic<double> v{0.0};
};

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    if (cells_ != nullptr) {
      const int s = lane_shard();
      if (s >= 0 && s < num_cells_) {
        cells_[s].v.fetch_add(delta, std::memory_order_relaxed);
        return;
      }
    }
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = v_.load(std::memory_order_relaxed);
    for (int i = 0; i < num_cells_; ++i)
      total += cells_[i].v.load(std::memory_order_relaxed);
    return total;
  }

  /// Allocate per-shard cells. Must be called before worker threads
  /// exist (the shard runtime does this at scenario setup).
  void enable_sharding(int shards);

 private:
  std::atomic<std::uint64_t> v_{0};
  std::unique_ptr<CounterCell[]> cells_;
  int num_cells_ = 0;
};

/// A value that can go up and down (queue depth, simulated clock, ...).
class Gauge {
 public:
  void set(double x) noexcept { v_.store(x, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram (cumulative buckets, Prometheus-style): bucket
/// i counts observations <= bounds[i]; an implicit +Inf bucket catches
/// the rest. Bounds are fixed at registration, so observe() is two
/// relaxed atomic ops plus a branchless-ish scan over a handful of
/// doubles.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  /// Base sum plus per-shard sums folded in fixed shard order. Bucket
  /// and count totals are integer sums and therefore order-independent,
  /// but floating-point addition is not associative — the fixed fold
  /// order is what keeps the exported _sum byte-identical for any K.
  double sum() const noexcept {
    double total = sum_.load(std::memory_order_relaxed);
    for (int i = 0; i < num_cells_; ++i)
      total += sum_cells_[i].v.load(std::memory_order_relaxed);
    return total;
  }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is +Inf.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Estimated q-quantile (q in [0,1]) by linear interpolation within
  /// the bucket holding the target rank — see estimate_quantile().
  double quantile(double q) const;

  /// Allocate per-shard sum cells (see Counter::enable_sharding).
  void enable_sharding(int shards);

 private:
  std::vector<double> bounds_;                       // sorted ascending
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::unique_ptr<SumCell[]> sum_cells_;
  int num_cells_ = 0;
};

/// Common bucket layouts used across the instrumentation.
namespace buckets {
/// Request/migration latencies in milliseconds.
std::vector<double> latency_ms();
/// Entry counts (migration sizes, journal replays): powers of ten.
std::vector<double> entries();
/// Lua interpreter steps per hook evaluation.
std::vector<double> lua_steps();
}  // namespace buckets

/// Every registered counter must carry the Prometheus `_total` suffix;
/// the obs name-lint test enforces this over a fully instrumented run.
inline constexpr const char* kCollisionCounterName =
    "obs_registry_collisions_total";

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. Returned references live as long as the
  /// registry. If the name exists with a different kind, a warning
  /// counter (`obs_registry_collisions_total`) is bumped and a
  /// process-wide scratch instance is returned so callers never crash on
  /// a naming bug — the collision is visible in the snapshot instead.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Switch every registered (and future) counter/histogram to
  /// per-shard cells. Called once at scenario setup by the shard
  /// runtime, before any worker thread exists.
  void enable_sharding(int shards);

  /// Names of all registered counters (name order) — the lint surface for
  /// the `_total` suffix convention.
  std::vector<std::string> counter_names() const;

  /// Prometheus text exposition format (HELP/TYPE + samples), metrics in
  /// name order.
  std::string to_prometheus() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;

  std::size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  void note_collision_locked();

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // name-ordered => stable exports
  int shards_ = 0;  // 0 = classic serial mode; >0 shards new entries too
};

/// Deterministic number formatting shared by both exporters: integers
/// print without a fraction, everything else as shortest round-trip-ish
/// "%.17g".
std::string format_metric_value(double x);

/// Quantile estimation over fixed buckets (Prometheus
/// histogram_quantile style): find the bucket holding rank q*count in
/// the cumulative distribution and interpolate linearly inside it
/// (the first bucket interpolates from 0). Observations in the +Inf
/// bucket clamp to the largest finite bound. Returns 0 when the
/// histogram is empty. `counts` are non-cumulative with the +Inf
/// bucket at index bounds.size(), exactly Histogram::bucket_counts().
double estimate_quantile(const std::vector<double>& bounds,
                         const std::vector<std::uint64_t>& counts, double q);

}  // namespace mantle::obs
