#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

/// \file analyze.hpp
/// Trace analytics: turns a recorded timeline (a live TraceSink or a
/// parsed `*.trace.json` dump) into per-tick time series, a run summary
/// and a set of anomaly findings. This is the read side of the
/// observability layer — nothing here feeds back into the simulation, so
/// it can run offline over dumped traces (the `mantle-stat` CLI) or
/// inline in tests.
///
/// Determinism contract: given the same events and config, analyze()
/// produces the same Report and Report::to_json() serializes it
/// byte-identically (name-ordered keys, fixed number formatting) — the
/// analysis of a deterministic run is itself part of the reproducibility
/// surface.
///
/// Metric definitions (documented in docs/OBSERVABILITY.md):
///  - per-rank load: last load observation for the rank in each tick
///    (from `hb-sent`/`when` events), carried forward across silent
///    ticks;
///  - imbalance CV: population stddev / mean of the per-rank loads of a
///    tick (0 when the mean is 0);
///  - migration churn: export-starts per tick, averaged over the run;
///  - locality ratio: requests served by the first MDS tried /
///    requests completed, from the sibling metrics snapshot
///    (completed / (completed + forwards)); absent without counters;
///  - split depth: deepest dirfrag produced by a split (parent fragment
///    bits + log2 of the fan-out).
///
/// Anomaly detectors (each trips at most one distinct detector; the CLI
/// exit code is the number of tripped detectors):
///  - ping-pong: the same subtree keeps being exported back to its
///    previous owner — at least `ping_pong_min_reversals` reversals,
///    each within `ping_pong_window_ticks` of the export it undoes
///    (single reversals are tolerated: load legitimately moves back
///    after a workload shift or a crash recovery);
///  - thrash: a rank strings together `thrash_min_run` balancer ticks
///    that decide to migrate (`when` go=1) while shipping ~zero load
///    (`where` shipped_total <= thrash_shipped_epsilon);
///  - stuck-export: an export-start whose span never reaches a commit
///    or abort by the end of the trace;
///  - dead-letter-leak: more requests parked than flushed at the end of
///    the run.

namespace mantle::obs {

/// Thresholds for the anomaly detectors. Defaults are conservative: they
/// hold on every healthy bench scenario, so a trip in CI is a real
/// behaviour change.
struct AnalyzeConfig {
  /// Time-series bucket width (simulated time).
  Time tick = kSec;
  /// Ping-pong: a reversal is a subtree re-exported back to its previous
  /// owner within this many ticks of the export it undoes...
  std::uint64_t ping_pong_window_ticks = 3;
  /// ...and the detector trips once one subtree racks up this many
  /// reversals (one finding per subtree, at the crossing event).
  std::uint64_t ping_pong_min_reversals = 6;
  /// Thrash: this many consecutive go-ticks with ~zero shipped load trip.
  std::uint64_t thrash_min_run = 5;
  double thrash_shipped_epsilon = 1e-9;
};

/// One time-series bucket.
struct TickPoint {
  std::uint64_t tick = 0;     ///< bucket index (at / cfg.tick)
  std::vector<double> load;   ///< per-rank load (carried forward)
  double cv = 0.0;            ///< imbalance CV across ranks
  std::uint64_t migrations = 0;        ///< export-starts begun this tick
  std::uint64_t entries_shipped = 0;   ///< entries committed this tick
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
};

/// One anomaly finding.
struct Anomaly {
  std::string detector;  ///< "ping-pong" | "thrash" | "stuck-export" | ...
  Time at = 0;           ///< when it was detected (last contributing event)
  SpanId span = kNoSpan; ///< causal span of the episode, if any
  std::string detail;    ///< human-readable description
};

/// Parsed `*.metrics.json` dump: counters, gauges and per-histogram
/// quantile summaries (the parts the analyzers consume — raw buckets
/// are not retained).
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;
};

/// Everything analyze() derives from a timeline.
struct Report {
  // --- run summary ---
  std::uint64_t events = 0;
  std::uint64_t ticks = 0;
  int num_ranks = 0;
  std::uint64_t spans = 0;  ///< distinct span ids seen on events
  double cv_mean = 0.0;
  double cv_max = 0.0;
  std::uint64_t exports_started = 0;
  std::uint64_t exports_committed = 0;
  std::uint64_t exports_aborted = 0;
  double churn = 0.0;  ///< export-starts per tick
  std::uint64_t entries_shipped = 0;
  bool has_locality = false;
  double locality_ratio = 0.0;
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
  int max_split_depth = 0;  ///< deepest dirfrag bits produced by a split
  std::uint64_t parked = 0;
  std::uint64_t flushed = 0;
  std::uint64_t crashes = 0;

  /// Event-pool memory gauges from the metrics snapshot (PR 8's
  /// sim_pool_* gauges); absent without a snapshot carrying them.
  bool has_pool = false;
  double pool_live = 0.0;
  double pool_peak_live = 0.0;
  double pool_capacity = 0.0;
  double pool_reserved_bytes = 0.0;

  /// Histogram quantile rows from the metrics snapshot (name order).
  struct HistogramRow {
    std::string name;
    HistogramSummary summary;
  };
  std::vector<HistogramRow> histogram_rows;

  std::vector<TickPoint> series;
  std::vector<Anomaly> anomalies;

  /// Number of *distinct* detectors with at least one finding — the
  /// mantle-stat exit code under --check.
  int tripped() const;
  /// Findings of one detector.
  std::uint64_t count(const std::string& detector) const;

  /// Deterministic JSON: {"summary":{...},"detectors":{...},
  /// "anomalies":[...],"series":[...]} with name-ordered keys and
  /// format_metric_value() numbers.
  std::string to_json() const;
  /// Human-readable table for terminals.
  std::string to_table() const;
};

/// Analyze a timeline. `counters` (optional) is a metrics snapshot —
/// e.g. from parse_metrics_counters() — used for the locality ratio.
Report analyze(const std::vector<TraceEvent>& events,
               const AnalyzeConfig& cfg = {},
               const std::map<std::string, double>* counters = nullptr);
Report analyze(const TraceSink& sink, const AnalyzeConfig& cfg = {},
               const std::map<std::string, double>* counters = nullptr);

/// Analyze with a full metrics snapshot: same as the counters overload,
/// plus pool-memory gauges and histogram quantile rows in the report.
Report analyze(const std::vector<TraceEvent>& events,
               const AnalyzeConfig& cfg, const MetricsSnapshot& metrics);

/// Parse a `*.trace.json` dump (the exact format TraceSink::to_json()
/// emits) back into events. Unknown kinds and malformed entries are
/// skipped rather than fatal, so analyzers tolerate truncated dumps.
std::vector<TraceEvent> parse_trace_json(const std::string& json);

/// Parse the "counters" object of a `*.metrics.json` dump
/// (MetricsRegistry::to_json()) into name -> value.
std::map<std::string, double> parse_metrics_counters(const std::string& json);

/// Parse a full `*.metrics.json` dump (counters + gauges + histogram
/// summaries with their exported quantiles).
MetricsSnapshot parse_metrics_json(const std::string& json);

}  // namespace mantle::obs
